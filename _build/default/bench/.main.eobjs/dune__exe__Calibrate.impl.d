bench/calibrate.ml: Array Mdh_lowering Mdh_machine Mdh_reports Mdh_runtime Mdh_support Mdh_workloads Printf
