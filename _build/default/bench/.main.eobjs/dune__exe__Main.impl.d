bench/main.ml: Array Calibrate Mdh_reports Micro Sys
