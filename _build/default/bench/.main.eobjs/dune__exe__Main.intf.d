bench/main.mli:
