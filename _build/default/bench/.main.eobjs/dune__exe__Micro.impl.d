bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Mdh_reports Mdh_runtime Mdh_support Measure Printf Staged Test Time Toolkit
