(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) plus the ablations and the
   wall-clock micro-benchmarks.

     dune exec bench/main.exe                   -- everything
     dune exec bench/main.exe figure3           -- Figure 3 table
     dune exec bench/main.exe figure4 [gpu|cpu] -- Figure 4 speedups
     dune exec bench/main.exe failure-matrix    -- Section 5.2 failures
     dune exec bench/main.exe prl-study         -- PRL Inp.1/Inp.2 study
     dune exec bench/main.exe ablation-openacc-tiling
     dune exec bench/main.exe ablation-tiling
     dune exec bench/main.exe ablation-reduction-parallel
     dune exec bench/main.exe ablation-tuning-budget
     dune exec bench/main.exe micro             -- Bechamel kernels *)

let usage () =
  print_endline
    "usage: main.exe [figure3|figure4 [gpu|cpu]|failure-matrix|prl-study|\n\
    \                 ablation-openacc-tiling|ablation-tiling|\n\
    \                 ablation-reduction-parallel|ablation-tuning-budget|micro]";
  exit 2

let everything () =
  Mdh_reports.Figure3.run ();
  Mdh_reports.Figure4.run `Both;
  Mdh_reports.Failures.run ();
  Mdh_reports.Prl_study.run ();
  Mdh_reports.Portability.run ();
  Mdh_reports.Transfer_study.run ();
  Mdh_reports.Ablations.run ();
  Calibrate.run ();
  Micro.run ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> everything ()
  | [ _; "figure3" ] -> Mdh_reports.Figure3.run ()
  | [ _; "figure4" ] -> Mdh_reports.Figure4.run `Both
  | [ _; "figure4"; "gpu" ] | [ _; "figure4"; "--device"; "gpu" ] -> Mdh_reports.Figure4.run `Gpu
  | [ _; "figure4"; "cpu" ] | [ _; "figure4"; "--device"; "cpu" ] -> Mdh_reports.Figure4.run `Cpu
  | [ _; "failure-matrix" ] -> Mdh_reports.Failures.run ()
  | [ _; "prl-study" ] -> Mdh_reports.Prl_study.run ()
  | [ _; "portability" ] -> Mdh_reports.Portability.run ()
  | [ _; "transfer-study" ] -> Mdh_reports.Transfer_study.run ()
  | [ _; "ablation-openacc-tiling" ] -> Mdh_reports.Ablations.openacc_tiling ()
  | [ _; "ablation-tiling" ] -> Mdh_reports.Ablations.tiling ()
  | [ _; "ablation-reduction-parallel" ] -> Mdh_reports.Ablations.reduction_parallel ()
  | [ _; "ablation-tuning-budget" ] -> Mdh_reports.Ablations.tuning_budget ()
  | [ _; "micro" ] -> Micro.run ()
  | [ _; "calibrate" ] -> Calibrate.run ()
  | _ -> usage ()
