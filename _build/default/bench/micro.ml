(* Wall-clock micro-benchmarks (Bechamel): one Test.make per paper
   table/figure domain, timing the specialised float kernels on the host —
   sequential vs tiled vs pool-parallel — to demonstrate for real that the
   mechanisms the cost model credits (tiling, reduction parallelisation,
   scan parallelisation) behave as modelled. Measurement methodology
   follows Hoefler & Belli (Section 5.1): Bechamel collects samples until
   its quota and fits execution time by ordinary least squares. *)

open Bechamel
open Toolkit
module Kernels = Mdh_runtime.Kernels
module Pool = Mdh_runtime.Pool
module Rng = Mdh_support.Rng

let floats seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0)

let tests pool =
  let dot_n = 1 lsl 20 in
  let x = floats 1 dot_n and y = floats 2 dot_n in
  let mv_m = 1024 and mv_k = 1024 in
  let mat = floats 3 (mv_m * mv_k) and vec = floats 4 mv_k in
  let mm = 256 in
  let a = floats 5 (mm * mm) and b = floats 6 (mm * mm) in
  let scan_n = 1 lsl 20 in
  let xs = floats 7 scan_n in
  let jn = 48 in
  let grid = floats 8 (jn * jn * jn) in
  [ Test.make_grouped ~name:"dot(2^20)"
      [ Test.make ~name:"seq" (Staged.stage (fun () -> Kernels.dot_seq x y));
        Test.make ~name:"par" (Staged.stage (fun () -> Kernels.dot_par pool x y)) ];
    Test.make_grouped ~name:"matvec(1024x1024)"
      [ Test.make ~name:"seq"
          (Staged.stage (fun () -> Kernels.matvec_seq ~m:mv_m ~k:mv_k mat vec));
        Test.make ~name:"par"
          (Staged.stage (fun () -> Kernels.matvec_par pool ~m:mv_m ~k:mv_k mat vec)) ];
    Test.make_grouped ~name:"matmul(256^3)"
      [ Test.make ~name:"naive"
          (Staged.stage (fun () -> Kernels.matmul_seq ~m:mm ~n:mm ~k:mm a b));
        Test.make ~name:"tiled"
          (Staged.stage (fun () -> Kernels.matmul_tiled ~tile:32 ~m:mm ~n:mm ~k:mm a b));
        Test.make ~name:"tiled+par"
          (Staged.stage (fun () -> Kernels.matmul_par pool ~tile:32 ~m:mm ~n:mm ~k:mm a b)) ];
    Test.make_grouped ~name:"scan(2^20)"
      [ Test.make ~name:"seq" (Staged.stage (fun () -> Kernels.scan_seq xs));
        Test.make ~name:"par" (Staged.stage (fun () -> Kernels.scan_par pool xs)) ];
    Test.make_grouped ~name:"jacobi3d(48^3)"
      [ Test.make ~name:"seq" (Staged.stage (fun () -> Kernels.jacobi3d_seq ~n:jn grid));
        Test.make ~name:"par" (Staged.stage (fun () -> Kernels.jacobi3d_par pool ~n:jn grid)) ] ]

let run () =
  Mdh_reports.Report.section "Wall-clock micro-benchmarks (host machine, Bechamel OLS ns/run)";
  Pool.with_pool (fun pool ->
      let ols =
        Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let all_tests = Test.make_grouped ~name:"micro" (tests pool) in
      let raw = Benchmark.all cfg instances all_tests in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let table = Mdh_support.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
      List.iter
        (fun (name, ols) ->
          let estimate =
            match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols with Some r -> Printf.sprintf "%.3f" r | None -> "-"
          in
          Mdh_support.Table.add_row table
            [ name; Mdh_reports.Report.time_str (estimate *. 1e-9); r2 ])
        (List.sort compare rows);
      Mdh_support.Table.print table;
      Printf.printf "\npool workers: %d\n" (Pool.num_workers pool))
