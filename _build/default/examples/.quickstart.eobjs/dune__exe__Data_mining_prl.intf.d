examples/data_mining_prl.mli:
