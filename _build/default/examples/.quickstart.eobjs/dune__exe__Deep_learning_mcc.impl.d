examples/deep_learning_mcc.ml: Format List Mdh_baselines Mdh_core Mdh_directive Mdh_lowering Mdh_machine Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Option Printf
