examples/deep_learning_mcc.mli:
