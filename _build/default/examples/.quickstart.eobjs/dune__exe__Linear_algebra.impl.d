examples/linear_algebra.ml: Array List Mdh_baselines Mdh_core Mdh_machine Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Printf
