examples/mbbs_prefix_sum.ml: Array Format Mdh_baselines Mdh_core Mdh_directive Mdh_machine Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Printf
