examples/mbbs_prefix_sum.mli:
