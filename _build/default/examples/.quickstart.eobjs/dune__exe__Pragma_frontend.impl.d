examples/pragma_frontend.ml: Format Mdh_core Mdh_directive Mdh_pragma Mdh_tensor Mdh_workloads Option Printf
