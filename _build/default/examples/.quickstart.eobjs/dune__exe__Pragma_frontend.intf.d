examples/pragma_frontend.mli:
