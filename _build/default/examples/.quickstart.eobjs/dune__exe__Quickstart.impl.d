examples/quickstart.ml: Format List Mdh_atf Mdh_combine Mdh_core Mdh_directive Mdh_expr Mdh_lowering Mdh_machine Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Printf
