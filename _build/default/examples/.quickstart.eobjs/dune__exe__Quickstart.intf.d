examples/quickstart.mli:
