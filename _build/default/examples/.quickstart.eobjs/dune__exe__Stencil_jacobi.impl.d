examples/stencil_jacobi.ml: Array Format List Mdh_atf Mdh_core Mdh_lowering Mdh_machine Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Option Printf
