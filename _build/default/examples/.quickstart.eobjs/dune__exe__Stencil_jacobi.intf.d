examples/stencil_jacobi.mli:
