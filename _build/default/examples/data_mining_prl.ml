(* Probabilistic Record Linkage (Listing 11): the workload whose
   *user-defined* reduction operator is exactly what generic directives
   cannot express. The example builds a synthetic cancer-registry, links a
   batch of new records against it, and shows which systems of the Figure 4
   line-up can compile the computation at all.

     dune exec examples/data_mining_prl.exe *)

module W = Mdh_workloads.Workload
module Scalar = Mdh_tensor.Scalar
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Common = Mdh_baselines.Common
module Device = Mdh_machine.Device

let () =
  let params = [ ("N", 64); ("I", 512) ] in
  let w = Mdh_workloads.Prl.prl in
  let md = W.to_md_hom w params in
  Format.printf "%a@.@." Mdh_directive.Directive.pp (w.W.make params);

  (* synthesise the registry and link; plant one exact duplicate so we can
     see a certain match come out *)
  let env = w.W.gen params ~seed:2 in
  let db = Buffer.data (Buffer.env_find env "db") in
  let newp = Buffer.data (Buffer.env_find env "newp") in
  Dense.set db [| 137 |] (Dense.get newp [| 3 |]);
  let out = Mdh_runtime.Exec.run_seq md env in
  let matches = Buffer.data (Buffer.env_find out "match") in
  let certain = ref 0 in
  for n = 0 to 63 do
    let m = Dense.get matches [| n |] in
    if Scalar.to_int (Scalar.field m "id_measure") = Mdh_workloads.Prl.certain_measure
    then incr certain
  done;
  let planted = Dense.get matches [| 3 |] in
  Printf.printf
    "linked 64 new records against 512 registry entries: %d certain match(es)\n"
    !certain;
  Printf.printf "planted duplicate matched id=%d with measure %d (weight %.2f)\n\n"
    (Scalar.to_int (Scalar.field planted "match_id"))
    (Scalar.to_int (Scalar.field planted "id_measure"))
    (Scalar.to_float (Scalar.field planted "match_weight"));

  (* who can even compile this? *)
  print_endline "compilation across the Figure 4 line-up:";
  List.iter
    (fun ((sys : Common.system), dev) ->
      match sys.Common.compile ~tuned:false md dev with
      | Ok o ->
        Printf.printf "  %-8s ok   (reduction parallelised: %b)\n" sys.Common.sys_name
          (List.mem 1 o.Common.schedule.Mdh_lowering.Schedule.parallel_dims)
      | Error f ->
        Printf.printf "  %-8s %s\n" sys.Common.sys_name (Common.failure_to_string f))
    [ (Mdh_baselines.Registry.mdh, Device.a100_like);
      (Mdh_baselines.Openmp.system, Device.xeon6140_like);
      (Mdh_baselines.Openacc.system, Device.a100_like);
      (Mdh_baselines.Polyhedral.pluto, Device.xeon6140_like);
      (Mdh_baselines.Tvm.system, Device.xeon6140_like) ];
  print_newline ();
  print_endline
    "Only the MDH directive both compiles PRL and parallelises its reduction:\n\
     prl_best is associative, and combine_ops carries that fact to the lowering.\n";

  (* the expressiveness gap, in code: the OpenMP-annotated C that a user
     would have to write — note the un-annotatable reduction loop *)
  (match Mdh_codegen.Openmp_c.generate md with
  | Ok src -> Printf.printf "the OpenMP equivalent a C programmer writes:\n\n%s" src
  | Error e -> Format.printf "openmp emission: %a@." Mdh_codegen.Kernel.pp_error e)
