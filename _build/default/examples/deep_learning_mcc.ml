(* Multi-Channel Convolution (Listing 12): a 7-dimensional computation with
   three reduction dimensions, a strided sliding window, and an explicitly
   enlarged input buffer — the deep-learning case study.

     dune exec examples/deep_learning_mcc.exe *)

module W = Mdh_workloads.Workload
module Buffer = Mdh_tensor.Buffer
module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common

let () =
  let w = Mdh_workloads.Deep_learning.mcc in
  let params = w.W.test_params in
  let md = W.to_md_hom w params in
  Format.printf "%a@.@." Mdh_directive.Directive.pp (w.W.make params);

  (* the declared img buffer is larger than the accessed region
     (footnote 7 / Listing 12 lines 4-5) *)
  let img = Option.get (Md_hom.find_input md "img") in
  Printf.printf "img declared %s for a %s iteration space (stride-2 windows)\n\n"
    (Mdh_support.Util.string_of_dims img.Md_hom.inp_shape)
    (Mdh_support.Util.string_of_dims md.Md_hom.sizes);

  (* correctness at test sizes against the direct convolution oracle *)
  let env = w.W.gen params ~seed:4 in
  let got = Mdh_runtime.Exec.run_seq md env in
  let expected = (Option.get w.W.reference) params env in
  Printf.printf "conv result matches direct convolution: %b\n\n"
    (Mdh_tensor.Dense.approx_equal ~rel:1e-3 ~abs:1e-4
       (Buffer.data (Buffer.env_find got "res"))
       (Buffer.data (Buffer.env_find expected "res")));

  (* the ResNet-50 shapes of Figure 3, tuned for the GPU model, against the
     cuDNN-style library model *)
  List.iter
    (fun inp ->
      let md = W.to_md_hom w (List.assoc inp w.W.paper_inputs) in
      let mdh =
        match Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md Device.a100_like with
        | Ok o -> o
        | Error f -> failwith (Common.failure_to_string f)
      in
      Format.printf "MCC Inp.%s on %s:@." inp Device.a100_like.Device.device_name;
      Format.printf "  MDH   %.3gs  %a@." (Common.seconds mdh)
        Mdh_lowering.Schedule.pp mdh.Common.schedule;
      match Mdh_baselines.Vendor.system.Common.compile ~tuned:false md Device.a100_like with
      | Ok o ->
        Format.printf "  %-5s %.3gs  -> MDH is %.2fx@." o.Common.system
          (Common.seconds o)
          (Common.seconds o /. Common.seconds mdh)
      | Error f -> Format.printf "  vendor: %a@." Common.pp_failure f)
    [ "1"; "2" ]
