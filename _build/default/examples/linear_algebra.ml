(* Linear algebra with the MDH directive: MatMul (Listing 9) on the square
   and the tall-skinny deep-learning shape, demonstrating (i) the MDH
   decomposition law that justifies tiling, and (ii) the shape-sensitivity
   of fixed vendor kernels vs auto-tuned MDH code.

     dune exec examples/linear_algebra.exe *)

module W = Mdh_workloads.Workload
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common

let () =
  (* The decomposition law, executably: evaluating MatMul tile-by-tile and
     recombining partial results with (cc, cc, pw(add)) gives the same
     result for every tiling — the property every schedule relies on. *)
  let params = [ ("I", 24); ("J", 20); ("K", 28) ] in
  let md = W.to_md_hom Mdh_workloads.Linalg.matmul params in
  let env = Mdh_workloads.Linalg.matmul.W.gen params ~seed:7 in
  let reference = Mdh_core.Semantics.reference md env in
  List.iter
    (fun tiles ->
      let tiled = Mdh_core.Semantics.eval_tiled md env ~tile_sizes:tiles in
      Printf.printf "tiles %-10s -> recombined result matches: %b\n"
        (Mdh_support.Util.string_of_dims tiles)
        (Dense.approx_equal ~rel:1e-4 ~abs:1e-5
           (Buffer.data (Buffer.env_find tiled "C"))
           (Buffer.data (Buffer.env_find reference "C"))))
    [ [| 8; 8; 8 |]; [| 5; 7; 9 |]; [| 24; 1; 28 |] ];
  print_newline ();

  (* Shape sensitivity: compare auto-tuned MDH against the vendor-library
     model on the square 1024^3 MatMul and on the paper's deep-learning
     shapes (1x1000x2048 GEMM, the transposed GEMM, the batched GEMM). *)
  List.iter
    (fun ((w : W.t), inp) ->
      let md = W.to_md_hom w (List.assoc inp w.W.paper_inputs) in
      List.iter
        (fun dev ->
          let mdh =
            match Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md dev with
            | Ok o -> Common.seconds o
            | Error f -> failwith (Common.failure_to_string f)
          in
          match Mdh_baselines.Vendor.system.Common.compile ~tuned:false md dev with
          | Ok o ->
            Printf.printf "%-9s inp%s on %-14s: MDH %-9s %-7s %-9s -> MDH is %.2fx\n"
              w.W.wl_name inp dev.Device.device_name
              (Printf.sprintf "%.3gs" mdh) o.Common.system
              (Printf.sprintf "%.3gs" (Common.seconds o))
              (Common.seconds o /. mdh)
          | Error f -> Printf.printf "%s: %s\n" w.W.wl_name (Common.failure_to_string f))
        [ Device.a100_like; Device.xeon6140_like ])
    [ (Mdh_workloads.Linalg.matmul, "1"); (Mdh_workloads.Linalg.matmul, "2");
      (Mdh_workloads.Linalg.matmul_t, "1"); (Mdh_workloads.Linalg.bmatmul, "1") ];
  print_newline ();

  (* Real parallel speedup on the host, with the specialised kernels. *)
  Mdh_runtime.Pool.with_pool (fun pool ->
      let n = 384 in
      let rng = Mdh_support.Rng.create 3 in
      let a = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let b = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let _, t_naive =
        Mdh_support.Util.time_it (fun () -> Mdh_runtime.Kernels.matmul_seq ~m:n ~n ~k:n a b)
      in
      let _, t_tiled =
        Mdh_support.Util.time_it (fun () ->
            Mdh_runtime.Kernels.matmul_tiled ~tile:32 ~m:n ~n ~k:n a b)
      in
      let _, t_par =
        Mdh_support.Util.time_it (fun () ->
            Mdh_runtime.Kernels.matmul_par pool ~tile:32 ~m:n ~n ~k:n a b)
      in
      Printf.printf
        "host matmul %d^3: naive %.3fs, tiled %.3fs (%.1fx), tiled+parallel %.3fs \
         (%.1fx, %d workers)\n"
        n t_naive t_tiled (t_naive /. t_tiled) t_par (t_naive /. t_par)
        (Mdh_runtime.Pool.num_workers pool))
