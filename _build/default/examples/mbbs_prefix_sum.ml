(* MBBS (Listing 13): the prefix-sum combine operator ps. Unlike pw, ps
   preserves the reduction dimension's extent: b[i,j] holds the sum of
   column j up to row i. The two-phase parallel scan in the runtime and the
   carry-propagating combine in the semantics implement the same operator.

     dune exec examples/mbbs_prefix_sum.exe *)

module W = Mdh_workloads.Workload
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Common = Mdh_baselines.Common

let () =
  let params = [ ("I", 8); ("J", 4) ] in
  let w = Mdh_workloads.Mbbs.mbbs in
  let md = W.to_md_hom w params in
  Format.printf "%a@.@." Mdh_directive.Directive.pp (w.W.make params);

  (* ps keeps the dimension: an 8x4 input yields an 8x4 output *)
  Printf.printf "result shape: %s (the ps dimension keeps its extent)\n\n"
    (Mdh_support.Util.string_of_dims (Mdh_core.Md_hom.result_shape md));

  let env = w.W.gen params ~seed:6 in
  let out = Mdh_runtime.Exec.run_seq md env in
  let b = Buffer.data (Buffer.env_find out "b") in
  print_endline "column prefix sums (b[i,j] = sum of a[0..i, j]):";
  for i = 0 to 7 do
    for j = 0 to 3 do
      Printf.printf "%8.3f" (Mdh_tensor.Scalar.to_float (Dense.get b [| i; j |]))
    done;
    print_newline ()
  done;
  print_newline ();

  (* tile-wise evaluation recombines partial scans with carries *)
  let tiled = Mdh_core.Semantics.eval_tiled md env ~tile_sizes:[| 3; 4 |] in
  Printf.printf "tiled evaluation (3-row tiles, carries propagated): matches = %b\n\n"
    (Dense.approx_equal ~rel:1e-5 ~abs:1e-6 b
       (Buffer.data (Buffer.env_find tiled "b")));

  (* the expressiveness gap: TVM's comm_reducer cannot express ps *)
  (match
     Mdh_baselines.Tvm.system.Common.compile ~tuned:true md
       Mdh_machine.Device.xeon6140_like
   with
  | Error f -> Format.printf "TVM on MBBS: %a@." Common.pp_failure f
  | Ok _ -> print_endline "TVM unexpectedly accepted MBBS");

  (* parallel scan on the host: the runtime's two-phase implementation *)
  Mdh_runtime.Pool.with_pool (fun pool ->
      let n = 1 lsl 22 in
      let rng = Mdh_support.Rng.create 9 in
      let xs = Array.init n (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let seq, t_seq = Mdh_support.Util.time_it (fun () -> Mdh_runtime.Kernels.scan_seq xs) in
      let par, t_par = Mdh_support.Util.time_it (fun () -> Mdh_runtime.Kernels.scan_par pool xs) in
      let agree =
        Mdh_support.Util.float_equal ~rel:1e-6 seq.(n - 1) par.(n - 1)
      in
      Printf.printf
        "host scan of 2^22 floats: seq %.4fs, parallel %.4fs (%.1fx, agree: %b)\n"
        t_seq t_par (t_seq /. t_par) agree)
