(* The textual #pragma mdh frontend (Section 8 future work): parse a C-style
   annotated loop nest, validate it, transform it to the MDH representation,
   execute it, and show the error reporting on broken inputs.

     dune exec examples/pragma_frontend.exe *)

module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense

let gaussian_src =
  {|
/* a 3x3 Gaussian blur, written as ordinary C loops */
#pragma mdh out(blur : fp32) inp(img : fp32) combine_ops(cc, cc)
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    blur[i, j] = 0.0625 * (1.0 * img[i,     j] + 2.0 * img[i,     j + 1] + 1.0 * img[i,     j + 2]
                         + 2.0 * img[i + 1, j] + 4.0 * img[i + 1, j + 1] + 2.0 * img[i + 1, j + 2]
                         + 1.0 * img[i + 2, j] + 2.0 * img[i + 2, j + 1] + 1.0 * img[i + 2, j + 2]);
|}

let broken_src =
  {|
#pragma mdh out(w : fp32) inp(v : fp32) combine_ops(cc)
for (i = 0; i < 8; i++)
  w[i] = v[i] +;
|}

let () =
  (* parse + validate + transform *)
  let dir =
    match Mdh_pragma.Parser.parse ~name:"gaussian" ~params:[ ("N", 64) ] gaussian_src with
    | Ok dir -> dir
    | Error e -> failwith (Mdh_pragma.Parser.error_to_string e)
  in
  let md = Mdh_directive.Transform.to_md_hom_exn dir in
  Format.printf "parsed and transformed:@.@.%a@.@." Mdh_core.Md_hom.pp md;

  (* run it and compare against the embedded-API Gaussian workload *)
  let params = [ ("N", 64); ("M", 64) ] in
  let env = Mdh_workloads.Stencils.gaussian_2d.Mdh_workloads.Workload.gen params ~seed:8 in
  let got = Mdh_core.Semantics.exec md env in
  let expected =
    (Option.get Mdh_workloads.Stencils.gaussian_2d.Mdh_workloads.Workload.reference)
      params env
  in
  Printf.printf "pragma Gaussian matches the embedded-API Gaussian: %b\n\n"
    (Dense.approx_equal ~rel:1e-3 ~abs:1e-4
       (Buffer.data (Buffer.env_find got "blur"))
       (Buffer.data (Buffer.env_find expected "blur")));

  (* diagnostics carry positions *)
  (match Mdh_pragma.Parser.parse broken_src with
  | Ok _ -> print_endline "unexpectedly parsed"
  | Error e -> Printf.printf "broken input: %s\n" (Mdh_pragma.Parser.error_to_string e))
