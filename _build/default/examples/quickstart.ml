(* Quickstart: express MatVec with the MDH directive (the OCaml counterpart
   of Listing 8), transform it into the MDH DSL representation, execute it,
   and auto-tune it for both modelled devices.

     dune exec examples/quickstart.exe *)

module Scalar = Mdh_tensor.Scalar
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Device = Mdh_machine.Device

let () =
  (* 1. The directive. Note the key design decision of Section 4.1: the
     body assigns a *single point* with `=` — there is no `+=`, no `sum`
     temporary, no zero-initialisation. The reduction over k is carried
     entirely by the combine operator pw(add). *)
  let i_ext = 512 and k_ext = 256 in
  let matvec =
    D.make ~name:"matvec"
      ~out:[ D.buffer "w" Scalar.Fp32 ]
      ~inp:[ D.buffer "M" Scalar.Fp32; D.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (D.for_ "i" i_ext
         (D.for_ "k" k_ext
            (D.body
               [ D.assign "w" [ Expr.idx "i" ]
                   Expr.(read "M" [ idx "i"; idx "k" ] * read "v" [ idx "k" ]) ])))
  in
  Format.printf "The directive:@.@.%a@.@." D.pp matvec;

  (* 2. Validation and transformation to the MDH DSL (Section 4.3). Buffer
     shapes are inferred from the iteration space and index functions. *)
  let md = Mdh_directive.Transform.to_md_hom_exn matvec in
  Format.printf "Transformed to the high-level representation:@.@.%a@.@."
    Mdh_core.Md_hom.pp md;

  (* 3. Execute on the host: sequential and in parallel over the domain
     pool, checking the two agree. *)
  let rng = Mdh_support.Rng.create 42 in
  let env =
    Buffer.env_of_list
      [ Mdh_workloads.Workload.float_buffer "M" rng [| i_ext; k_ext |];
        Mdh_workloads.Workload.float_buffer "v" rng [| k_ext |] ]
  in
  let seq = Mdh_runtime.Exec.run_seq md env in
  let par =
    Mdh_runtime.Pool.with_pool (fun pool ->
        let schedule =
          { (Mdh_lowering.Schedule.sequential md) with
            Mdh_lowering.Schedule.parallel_dims = [ 0; 1 ] }
        in
        match Mdh_runtime.Exec.run pool md schedule env with
        | Ok env -> env
        | Error e -> failwith e)
  in
  let agree =
    Dense.approx_equal ~rel:1e-4 ~abs:1e-5
      (Buffer.data (Buffer.env_find seq "w"))
      (Buffer.data (Buffer.env_find par "w"))
  in
  Printf.printf "parallel execution matches sequential: %b\n\n" agree;

  (* 4. Auto-tune for each device and report what the tuner chose. *)
  List.iter
    (fun dev ->
      match Mdh_atf.Tuner.tune md dev Mdh_lowering.Cost.tuned_codegen with
      | Error e -> failwith e
      | Ok t ->
        Format.printf "%s: best schedule %a, estimated %.3g s@."
          dev.Device.device_name Mdh_lowering.Schedule.pp t.Mdh_atf.Tuner.schedule
          t.Mdh_atf.Tuner.estimated_s)
    [ Device.a100_like; Device.xeon6140_like ]
