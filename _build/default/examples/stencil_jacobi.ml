(* Stencils with the MDH directive: Jacobi 3D (the Figure 3 case study, a
   generalisation of Listing 10's Jacobi1D). Stencils are reduction-free —
   every dimension combines with cc — and the multiple shifted accesses per
   buffer are the #ACC counting of Listing 14.

     dune exec examples/stencil_jacobi.exe *)

module W = Mdh_workloads.Workload
module Buffer = Mdh_tensor.Buffer
module Md_hom = Mdh_core.Md_hom

let () =
  let params = [ ("N", 16) ] in
  let w = Mdh_workloads.Stencils.jacobi_3d in
  let md = W.to_md_hom w params in

  (* the transformation found the 7 shifted accesses of the 7-point stencil *)
  let grid = Option.get (Md_hom.find_input md "grid") in
  Printf.printf "input %s: %d accesses, inferred shape %s (padded by the radius)\n"
    grid.Md_hom.inp_name
    (List.length grid.Md_hom.accesses)
    (Mdh_support.Util.string_of_dims grid.Md_hom.inp_shape);
  let c = Md_hom.characteristics md in
  Printf.printf "reduction dims: %d, accesses injective: %s\n\n"
    c.Md_hom.n_reduction_dims
    (match c.Md_hom.injective_accesses with
    | Some false -> "no (elements shared between neighbouring points)"
    | Some true -> "yes"
    | None -> "undecided");

  (* run several sweeps on the host pool, each sweep checked against the
     hand-written oracle *)
  let env = w.W.gen params ~seed:11 in
  (match w.W.reference with
  | Some oracle ->
    let got = Mdh_runtime.Exec.run_seq md env in
    let expected = oracle params env in
    Printf.printf "sweep matches 7-point oracle: %b\n"
      (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5
         (Buffer.data (Buffer.env_find got "next"))
         (Buffer.data (Buffer.env_find expected "next")))
  | None -> ());

  (* wall-clock: one parallel sweep on a larger grid *)
  Mdh_runtime.Pool.with_pool (fun pool ->
      let n = 128 in
      let rng = Mdh_support.Rng.create 5 in
      let grid = Array.init (n * n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let _, t_seq =
        Mdh_support.Util.time_it (fun () -> Mdh_runtime.Kernels.jacobi3d_seq ~n grid)
      in
      let _, t_par =
        Mdh_support.Util.time_it (fun () -> Mdh_runtime.Kernels.jacobi3d_par pool ~n grid)
      in
      Printf.printf "host jacobi3d %d^3 sweep: seq %.4fs, parallel %.4fs (%.1fx on %d workers)\n"
        n t_seq t_par (t_seq /. t_par) (Mdh_runtime.Pool.num_workers pool));

  (* how the tuner schedules the stencil on each device *)
  let md_big = W.to_md_hom w (List.assoc "1" w.W.paper_inputs) in
  List.iter
    (fun dev ->
      match Mdh_atf.Tuner.tune md_big dev Mdh_lowering.Cost.tuned_codegen with
      | Ok t ->
        Format.printf "%s: %a (estimated %.3g s)@."
          dev.Mdh_machine.Device.device_name Mdh_lowering.Schedule.pp
          t.Mdh_atf.Tuner.schedule t.Mdh_atf.Tuner.estimated_s
      | Error e -> failwith e)
    [ Mdh_machine.Device.a100_like; Mdh_machine.Device.xeon6140_like ]
