lib/atf/param.ml: Format List
