lib/atf/param.mli: Format
