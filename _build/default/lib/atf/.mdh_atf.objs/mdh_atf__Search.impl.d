lib/atf/search.ml: Float List Mdh_support Param Space
