lib/atf/search.mli: Param Space
