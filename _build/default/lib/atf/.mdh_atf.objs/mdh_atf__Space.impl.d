lib/atf/space.ml: Array List Mdh_support Param
