lib/atf/space.mli: Mdh_support Param
