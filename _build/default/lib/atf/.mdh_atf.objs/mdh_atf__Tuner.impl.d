lib/atf/tuner.ml: Array Fun List Mdh_core Mdh_lowering Mdh_machine Param Printf Search Space String
