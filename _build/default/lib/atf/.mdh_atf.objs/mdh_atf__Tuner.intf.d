lib/atf/tuner.mli: Mdh_core Mdh_lowering Mdh_machine Param Search Space Stdlib
