type config = (string * int) list

type t = {
  p_name : string;
  domain : config -> int list;
}

let independent name values = { p_name = name; domain = (fun _ -> values) }
let dependent name domain = { p_name = name; domain }

let value config name = List.assoc name config

let pp_config ppf config =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (name, v) -> Format.fprintf ppf "%s=%d" name v))
    config
