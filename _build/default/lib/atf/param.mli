(** Tuning parameters with interdependent constraints, in the style of the
    Auto-Tuning Framework (ATF; Rasch et al., TACO 2021 / pyATF, CC 2025)
    used by the paper's MDH pipeline.

    A parameter's domain is a function of the values chosen for *earlier*
    parameters — ATF's signature feature ("interdependent tuning
    parameters"), which lets a space express constraints such as "the
    product of all tile sizes must fit the cache" natively instead of by
    rejection. *)

type config = (string * int) list
(** Chosen values, in parameter order (earlier parameters first). *)

type t = {
  p_name : string;
  domain : config -> int list;
      (** legal values given the earlier choices; may be empty (dead end) *)
}

val independent : string -> int list -> t
(** A parameter whose domain ignores earlier choices. *)

val dependent : string -> (config -> int list) -> t

val value : config -> string -> int
(** Raises [Not_found]. *)

val pp_config : Format.formatter -> config -> unit
