module Rng = Mdh_support.Rng

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
  trace : (int * float) list;
}

type state = {
  mutable s_best : Param.config option;
  mutable s_best_cost : float;
  mutable s_evals : int;
  mutable s_trace : (int * float) list;
}

let fresh () = { s_best = None; s_best_cost = infinity; s_evals = 0; s_trace = [] }

let evaluate st cost config =
  st.s_evals <- st.s_evals + 1;
  match cost config with
  | None -> None
  | Some c ->
    if c < st.s_best_cost then begin
      st.s_best <- Some config;
      st.s_best_cost <- c;
      st.s_trace <- (st.s_evals, c) :: st.s_trace
    end;
    Some c

let finish st =
  match st.s_best with
  | None -> None
  | Some best ->
    Some
      { best; best_cost = st.s_best_cost; evaluations = st.s_evals;
        trace = List.rev st.s_trace }

let exhaustive space ~cost =
  let st = fresh () in
  List.iter (fun config -> ignore (evaluate st cost config)) (Space.enumerate space);
  finish st

let random_search space ~seed ~budget ~cost =
  let st = fresh () in
  let rng = Rng.create seed in
  let attempts = ref 0 in
  while st.s_evals < budget && !attempts < budget * 10 do
    incr attempts;
    match Space.sample space rng with
    | None -> ()
    | Some config -> ignore (evaluate st cost config)
  done;
  finish st

let simulated_annealing space ~seed ~budget ~cost =
  let st = fresh () in
  let rng = Rng.create seed in
  let rec initial tries =
    if tries = 0 then None
    else
      match Space.sample space rng with
      | None -> initial (tries - 1)
      | Some config -> (
        match evaluate st cost config with
        | Some c -> Some (config, c)
        | None -> initial (tries - 1))
  in
  (match initial 100 with
  | None -> ()
  | Some (start, start_cost) ->
    let current = ref start and current_cost = ref start_cost in
    let t0 = Float.max 1e-30 (start_cost *. 0.5) in
    while st.s_evals < budget do
      let progress = float_of_int st.s_evals /. float_of_int budget in
      let temp = t0 *. exp (-5.0 *. progress) in
      let candidate = Space.neighbour space rng !current in
      match evaluate st cost candidate with
      | None -> ()
      | Some c ->
        let accept =
          c < !current_cost
          || Rng.float rng 1.0 < exp ((!current_cost -. c) /. Float.max 1e-30 temp)
        in
        if accept then begin
          current := candidate;
          current_cost := c
        end
    done);
  finish st
