(** Search strategies over a tuning space. The cost function returns [None]
    for configurations the cost model rejects (illegal schedules); all
    strategies skip them. The budget counts cost evaluations — the
    reproduction's stand-in for the paper's 12-hour wall-clock tuning
    budget. *)

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
  trace : (int * float) list;
      (** (evaluation index, best-so-far) at every improvement *)
}

val exhaustive : Space.t -> cost:(Param.config -> float option) -> result option
(** Evaluate every configuration (capped at 100k); [None] when the space has
    no valid configuration. *)

val random_search :
  Space.t -> seed:int -> budget:int -> cost:(Param.config -> float option) ->
  result option

val simulated_annealing :
  Space.t -> seed:int -> budget:int -> cost:(Param.config -> float option) ->
  result option
(** Random restart + neighbourhood walk with exponential cooling. *)
