module Rng = Mdh_support.Rng

type t = { params : Param.t list }

let make params =
  let names = List.map (fun p -> p.Param.p_name) params in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Space.make: duplicate parameter names";
  { params }

exception Done

let enumerate ?(cap = 100_000) t =
  let acc = ref [] in
  let count = ref 0 in
  let rec go prefix = function
    | [] ->
      acc := List.rev prefix :: !acc;
      incr count;
      if !count >= cap then raise Done
    | (p : Param.t) :: rest ->
      List.iter
        (fun v -> go ((p.p_name, v) :: prefix) rest)
        (p.domain (List.rev prefix))
  in
  (try go [] t.params with Done -> ());
  List.rev !acc

let size ?cap t = List.length (enumerate ?cap t)

let sample t rng =
  let rec go prefix = function
    | [] -> Some (List.rev prefix)
    | (p : Param.t) :: rest -> (
      match p.domain (List.rev prefix) with
      | [] -> None
      | domain -> go ((p.p_name, Rng.choice rng (Array.of_list domain)) :: prefix) rest)
  in
  go [] t.params

let neighbour t rng config =
  if config = [] then config
  else begin
    let idx = Rng.int rng (List.length t.params) in
    (* keep the prefix before [idx], move parameter [idx] to an adjacent
       domain value, re-sample the suffix *)
    let rec rebuild i prefix params =
      match params with
      | [] -> Some (List.rev prefix)
      | (p : Param.t) :: rest ->
        let here = List.rev prefix in
        let domain = p.domain here in
        if domain = [] then None
        else begin
          let chosen =
            if i < idx then
              (* keep the original value when still valid, else nearest *)
              let orig = try Param.value config p.p_name with Not_found -> List.hd domain in
              if List.mem orig domain then orig
              else
                List.fold_left
                  (fun best v -> if abs (v - orig) < abs (best - orig) then v else best)
                  (List.hd domain) domain
            else if i = idx then begin
              let orig = try Param.value config p.p_name with Not_found -> List.hd domain in
              let pos =
                match List.find_index (( = ) orig) domain with
                | Some pos -> pos
                | None -> 0
              in
              let n = List.length domain in
              if n = 1 then List.nth domain 0
              else begin
                let dir = if Rng.bool rng then 1 else -1 in
                let pos' = max 0 (min (n - 1) (pos + dir)) in
                let pos' = if pos' = pos then (pos + 1) mod n else pos' in
                List.nth domain pos'
              end
            end
            else Rng.choice rng (Array.of_list domain)
          in
          rebuild (i + 1) ((p.p_name, chosen) :: prefix) rest
        end
    in
    match rebuild 0 [] t.params with Some c -> c | None -> config
  end
