(** Search spaces: ordered parameter lists with dependency-respecting
    enumeration, sampling and neighbourhood moves. *)

type t = { params : Param.t list }

val make : Param.t list -> t
(** Raises [Invalid_argument] on duplicate parameter names. *)

val enumerate : ?cap:int -> t -> Param.config list
(** All valid configurations in lexicographic order, depth-first; stops
    after [cap] (default 100_000) configurations. *)

val size : ?cap:int -> t -> int
(** Number of valid configurations (capped like {!enumerate}). *)

val sample : t -> Mdh_support.Rng.t -> Param.config option
(** One random valid configuration: parameters chosen in order, uniformly
    from each conditional domain; [None] when a dead end is reached. *)

val neighbour : t -> Mdh_support.Rng.t -> Param.config -> Param.config
(** Mutate one randomly-chosen parameter to an adjacent value in its
    conditional domain, re-sampling the dependent suffix so the result is
    valid; returns the input configuration when no move exists. *)
