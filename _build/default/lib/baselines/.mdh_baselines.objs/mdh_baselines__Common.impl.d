lib/baselines/common.ml: Array Format List Mdh_combine Mdh_core Mdh_expr Mdh_lowering Mdh_machine Printf
