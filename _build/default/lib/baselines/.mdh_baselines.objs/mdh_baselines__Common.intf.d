lib/baselines/common.mli: Format Mdh_core Mdh_lowering Mdh_machine
