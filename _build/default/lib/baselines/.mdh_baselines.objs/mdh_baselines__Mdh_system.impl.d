lib/baselines/mdh_system.ml: Common Fun List Mdh_atf Mdh_lowering Mdh_machine Polyhedral Result
