lib/baselines/mdh_system.mli: Common
