lib/baselines/numba.ml: Array Common List Mdh_core Mdh_lowering Mdh_machine
