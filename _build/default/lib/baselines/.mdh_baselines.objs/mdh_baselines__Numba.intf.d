lib/baselines/numba.mli: Common
