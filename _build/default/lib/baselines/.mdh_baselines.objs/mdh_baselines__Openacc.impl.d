lib/baselines/openacc.ml: Array Common Fun List Mdh_core Mdh_lowering Mdh_machine
