lib/baselines/openacc.mli: Common Mdh_core Mdh_machine
