lib/baselines/openmp.mli: Common
