lib/baselines/polyhedral.ml: Array Common Fun List Mdh_atf Mdh_core Mdh_lowering Mdh_machine
