lib/baselines/polyhedral.mli: Common Mdh_core Mdh_lowering Mdh_machine
