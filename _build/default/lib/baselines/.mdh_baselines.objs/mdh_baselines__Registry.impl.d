lib/baselines/registry.ml: Mdh_machine Mdh_system Numba Openacc Openmp Polyhedral Tvm Vendor
