lib/baselines/registry.mli: Common Mdh_machine
