lib/baselines/tvm.ml: Common List Mdh_atf Mdh_core Mdh_lowering Mdh_machine
