lib/baselines/tvm.mli: Common
