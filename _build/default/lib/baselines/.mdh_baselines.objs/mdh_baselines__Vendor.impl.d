lib/baselines/vendor.ml: Array Common Float Fun List Mdh_atf Mdh_combine Mdh_core Mdh_lowering Mdh_machine Mdh_support Mdh_tensor Printf String
