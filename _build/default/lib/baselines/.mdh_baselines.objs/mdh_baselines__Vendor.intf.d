lib/baselines/vendor.mli: Common Mdh_core
