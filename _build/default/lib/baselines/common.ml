module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Roofline = Mdh_machine.Roofline

type failure =
  | Unsupported_reduction of string
  | Polyhedral_extraction_error of string
  | No_parallel_dim of string
  | Out_of_resources of string
  | Wrong_device of string
  | Not_supported of string

let pp_failure ppf = function
  | Unsupported_reduction m -> Format.fprintf ppf "unsupported reduction: %s" m
  | Polyhedral_extraction_error m ->
    Format.fprintf ppf "error extracting polyhedra from source: %s" m
  | No_parallel_dim m -> Format.fprintf ppf "no parallelisable dimension: %s" m
  | Out_of_resources m -> Format.fprintf ppf "out of resources: %s" m
  | Wrong_device m -> Format.fprintf ppf "wrong device: %s" m
  | Not_supported m -> Format.fprintf ppf "not supported: %s" m

let failure_to_string f = Format.asprintf "%a" pp_failure f

type outcome = {
  system : string;
  schedule : Schedule.t;
  codegen : Cost.codegen;
  analysis : Cost.analysis;
  tuned : bool;
}

let seconds o = o.analysis.Cost.breakdown.Roofline.total_s

type system = {
  sys_name : string;
  targets : Device.kind list;
  compile :
    tuned:bool -> Md_hom.t -> Device.t -> (outcome, failure) result;
}

let check_device name ~system_targets (dev : Device.t) =
  if List.mem dev.Device.kind system_targets then Ok ()
  else
    Error
      (Wrong_device
         (Printf.sprintf "%s does not target %s" name
            (match dev.Device.kind with Device.Gpu -> "GPUs" | Device.Cpu -> "CPUs")))

let outcome_of_schedule ~system ~tuned md dev codegen schedule =
  match Cost.analyse md dev codegen schedule with
  | Ok analysis -> Ok { system; schedule; codegen; analysis; tuned }
  | Error msg ->
    invalid_arg (Printf.sprintf "%s produced an illegal schedule: %s" system msg)

let cc_dims = Md_hom.cc_dims

let builtin_reduction_dims (md : Md_hom.t) =
  List.filter
    (fun d ->
      match Combine.custom_fn_of md.combine_ops.(d) with
      | Some f -> f.Combine.builtin
      | None -> false)
    (Md_hom.reduction_dims md)

let has_custom_reduction (md : Md_hom.t) =
  List.exists
    (fun d ->
      match Combine.custom_fn_of md.combine_ops.(d) with
      | Some f -> not f.Combine.builtin
      | None -> false)
    (Md_hom.reduction_dims md)

let has_prefix_sum (md : Md_hom.t) =
  Array.exists (function Combine.Ps _ -> true | Cc | Pw _ -> false) md.combine_ops

(* The dimensions an OpenMP/OpenACC-style directive parallelises
   (Listings 2 and 3): the outermost loop (parallel for / gang), the
   built-in-operator reduction loops (reduction clauses), and — when no
   reduction is annotated — the auto-vectorised innermost cc loop. *)
let directive_parallel_dims (md : Md_hom.t) =
  let cc = cc_dims md in
  let outer = match cc with outer :: _ -> [ outer ] | [] -> [] in
  let reds = builtin_reduction_dims md in
  let vector =
    if reds = [] then
      match List.rev cc with inner :: _ -> [ inner ] | [] -> []
    else []
  in
  List.sort_uniq compare (outer @ reds @ vector)

let data_dependent_branch (md : Md_hom.t) =
  List.exists
    (fun (o : Md_hom.output) ->
      Mdh_expr.Analysis.contains_data_dependent_branch o.value)
    md.outputs
