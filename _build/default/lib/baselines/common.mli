(** Shared vocabulary of the baseline system models.

    Each system in the paper's evaluation — OpenMP, OpenACC, PPCG, Pluto,
    Numba, TVM, the vendor libraries, and MDH itself — is modelled as a
    *schedule generator restricted to that system's documented capabilities*
    plus a code-generation quality profile. All systems are costed on the
    same machine model, so Figure 4's relative results derive from
    capability differences (can it tile? can it parallelise this reduction?
    which device layers can one parallel loop feed?), not per-system magic
    numbers. Systems that reject a computation in the paper reject it here,
    as typed failures. *)

type failure =
  | Unsupported_reduction of string
      (** e.g. TVM's "Invalid comm_reducer" on PRL/MBBS (Section 5.2) *)
  | Polyhedral_extraction_error of string
      (** Pluto's "Error extracting polyhedra from source" on PRL *)
  | No_parallel_dim of string
      (** PPCG on Dot: a reduction-only nest yields no GPU parallelism *)
  | Out_of_resources of string
      (** PPCG's crash on deep-learning shapes with untuned tile sizes *)
  | Wrong_device of string  (** CPU-only system asked to target a GPU etc. *)
  | Not_supported of string  (** vendor library has no such routine *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

type outcome = {
  system : string;
  schedule : Mdh_lowering.Schedule.t;
  codegen : Mdh_lowering.Cost.codegen;
  analysis : Mdh_lowering.Cost.analysis;
  tuned : bool;
}

val seconds : outcome -> float

type system = {
  sys_name : string;
  targets : Mdh_machine.Device.kind list;
  compile :
    tuned:bool ->
    Mdh_core.Md_hom.t ->
    Mdh_machine.Device.t ->
    (outcome, failure) result;
}

val check_device : string -> system_targets:Mdh_machine.Device.kind list ->
  Mdh_machine.Device.t -> (unit, failure) result

val outcome_of_schedule :
  system:string -> tuned:bool -> Mdh_core.Md_hom.t -> Mdh_machine.Device.t ->
  Mdh_lowering.Cost.codegen -> Mdh_lowering.Schedule.t -> (outcome, failure) result
(** Cost the schedule; an illegal schedule is a programming error here and
    raises [Invalid_argument]. *)

val cc_dims : Mdh_core.Md_hom.t -> int list
val builtin_reduction_dims : Mdh_core.Md_hom.t -> int list
(** Reduction dimensions whose customising function is an OpenMP/OpenACC
    built-in operator ([+], [*], [min], [max]). *)

val directive_parallel_dims : Mdh_core.Md_hom.t -> int list
(** What an OpenMP/OpenACC-style annotation parallelises: the outermost
    loop, built-in-operator reduction loops, and the auto-vectorised
    innermost loop when no reduction is annotated. *)

val has_custom_reduction : Mdh_core.Md_hom.t -> bool
val has_prefix_sum : Mdh_core.Md_hom.t -> bool
val data_dependent_branch : Mdh_core.Md_hom.t -> bool
