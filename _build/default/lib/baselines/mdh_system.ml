module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Lower = Mdh_lowering.Lower
module Tuner = Mdh_atf.Tuner

let tune_budget = ref 400

let compile ~tuned md dev =
  if tuned then begin
    (* The MDH schedule space is a superset of every baseline's space, so
       the tuner's answer is floored by the restricted-space optima: the
       annealer's best over the full space competes against a search with
       the parallel set pinned to all parallelisable dimensions, the
       reduction-sequential (polyhedral-style) optimum, and the untuned
       heuristic. *)
    let full = Tuner.tune ~budget:!tune_budget md dev Cost.tuned_codegen in
    let pinned =
      Tuner.tune ~budget:!tune_budget
        ~parallel_options:[ Lower.parallelisable_dims md ]
        md dev Cost.tuned_codegen
    in
    let candidates =
      List.filter_map Fun.id
        [ Result.to_option (Result.map (fun t -> t.Tuner.schedule) full);
          Result.to_option (Result.map (fun t -> t.Tuner.schedule) pinned);
          Some (Polyhedral.tuned_schedule md dev);
          Some (Lower.mdh_default md dev) ]
    in
    match Lower.best_of md dev Cost.tuned_codegen candidates with
    | Some (schedule, _) ->
      Common.outcome_of_schedule ~system:"MDH" ~tuned:true md dev Cost.tuned_codegen
        schedule
    | None -> Error (Common.Not_supported "tuning found no legal schedule")
  end
  else
    Common.outcome_of_schedule ~system:"MDH(untuned)" ~tuned:false md dev
      Cost.tuned_codegen (Lower.mdh_default md dev)

let system =
  { Common.sys_name = "MDH"; targets = [ Device.Gpu; Device.Cpu ]; compile }
