(** The paper's approach: the MDH directive, transformed to the DSL
    representation and compiled by the MDH pipeline with ATF auto-tuning
    (Sections 3-5).

    Capabilities — the union the baselines each lack a piece of: multi-level
    tiling of every dimension, parallelisation of *any* dimension whose
    combine operator is associative (including user-defined [pw] operators
    and [ps] prefix sums), full use of all device layers, and auto-tuned
    tile/parallelisation choices. *)

val system : Common.system
(** [compile ~tuned:false] uses the untuned heuristic schedule (the ablation
    baseline); [~tuned:true] runs the ATF search. *)

val tune_budget : int ref
(** Cost-model evaluations per tuning run (default 400) — the stand-in for
    the paper's 12-hour tuning budget; the tuning-budget ablation sweeps
    it. *)
