module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost

let compile ~tuned:_ (md : Md_hom.t) dev =
  match Common.check_device "Numba" ~system_targets:[ Device.Cpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    (* the user puts prange on the most profitable (largest) loop; Numba
       additionally auto-parallelises the simple 1D builtin reduction *)
    let parallel_dims =
      match Common.cc_dims md with
      | [] ->
        if Md_hom.rank md = 1 && Common.builtin_reduction_dims md = [ 0 ] then [ 0 ]
        else []
      | cc ->
        [ List.fold_left
            (fun best d -> if md.Md_hom.sizes.(d) > md.Md_hom.sizes.(best) then d else best)
            (List.hd cc) cc ]
    in
    let schedule =
      { Schedule.tile_sizes = Array.copy md.sizes;
        parallel_dims;
        used_layers = [ 0 ] (* prange feeds cores; no vector layer control *) }
    in
    Common.outcome_of_schedule ~system:"Numba" ~tuned:false md dev Cost.jit_codegen
      schedule

let system = { Common.sys_name = "Numba"; targets = [ Device.Cpu ]; compile }
