(** Numba capability model (CPU; Listing 4).

    [@jit(parallel=True)] with [prange] parallelises the annotated outer
    loop across cores. Reductions are auto-parallelised only in the simple
    cases the documentation describes (footnote 4 / [26]): a
    one-dimensional nest reducing with a built-in operator. No tiling is
    applied to the generated CPU code (Section 5.2), and the directive
    carries no reduction-operator information. The GPU path requires a
    distinct [cuda.jit] kernel (Listing 5) — a different program, so the
    system is CPU-only here, as in the paper's Figure 4 grouping. *)

val system : Common.system
