module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost

(* Listing 3: `parallel loop` annotates the outermost loop (gangs);
   `loop reduction(op:...)` the reduction loop (vector), expressible only
   for built-in operators; absent an annotated reduction the compiler maps
   the innermost loop to the vector lanes. *)
let parallel_dims = Common.directive_parallel_dims

let schedule_with_tiles tiles (md : Md_hom.t) dev =
  { Schedule.tile_sizes = tiles;
    parallel_dims = parallel_dims md;
    used_layers = List.init (Array.length dev.Device.layers) Fun.id }

let compile ~tuned:_ (md : Md_hom.t) dev =
  match Common.check_device "OpenACC" ~system_targets:[ Device.Gpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    Common.outcome_of_schedule ~system:"OpenACC" ~tuned:false md dev Cost.plain_codegen
      (schedule_with_tiles (Array.copy md.sizes) md dev)

let compile_with_tiles tiles (md : Md_hom.t) dev =
  match Common.check_device "OpenACC" ~system_targets:[ Device.Gpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    Common.outcome_of_schedule ~system:"OpenACC+tile" ~tuned:false md dev
      Cost.plain_codegen
      (Schedule.clamp md (schedule_with_tiles tiles md dev))

let system = { Common.sys_name = "OpenACC"; targets = [ Device.Gpu ]; compile }
