(** OpenACC capability model (GPU).

    Mirrors the OpenMP model on the GPU side (Listing 3): [parallel loop]
    over the outer dimensions feeding gangs and vectors, [loop reduction]
    for built-in operators only, no automatic tiling. OpenACC does offer a
    manual [tile] directive (footnote 12); {!compile_with_tiles} models a
    user who hand-picked tile sizes — the error-prone manual process the
    Section 5.2 CCSD(T) discussion walks through — and is exercised by the
    [ablation-openacc-tiling] bench target. *)

val system : Common.system

val compile_with_tiles :
  int array ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  (Common.outcome, Common.failure) result
(** Manual [tile(...)] clause with the given sizes. *)
