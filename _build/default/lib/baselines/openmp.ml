module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost

let untiled (md : Md_hom.t) = Array.copy md.Md_hom.sizes

(* OpenMP has no auto-tuning integration (Section 5.1), so [tuned] is
   ignored. *)
let compile ~tuned:_ (md : Md_hom.t) dev =
  match Common.check_device "OpenMP" ~system_targets:[ Device.Cpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    (* Listing 2: `parallel for` annotates the outermost loop; `simd
       reduction(op:...)` the reduction loop, expressible only for built-in
       operators; when no reduction is annotated the compiler auto-vectorises
       the innermost loop. Custom reduction operators leave their loop — and
       the vector units — unused. *)
    let parallel_dims = Common.directive_parallel_dims md in
    let schedule =
      { Schedule.tile_sizes = untiled md;
        parallel_dims;
        used_layers = List.init (Array.length dev.Device.layers) Fun.id }
    in
    Common.outcome_of_schedule ~system:"OpenMP" ~tuned:false md dev Cost.plain_codegen
      schedule

let system =
  { Common.sys_name = "OpenMP"; targets = [ Device.Cpu ]; compile }
