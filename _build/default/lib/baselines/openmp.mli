(** OpenMP capability model (CPU).

    What the OpenMP code of Listing 2 gives the compiler: the outer loops
    are parallelised across cores ([parallel for]) and vector lanes
    ([simd]); a reduction loop is parallelised only when its operator can be
    named in a [reduction(op:var)] clause — the built-in operators. No
    automatic tiling (Section 5.2: "it provides no built-in tile directive,
    which makes tiling technically cumbersome to express"). Custom combine
    functions such as PRL's [prl_max] cannot appear in a reduction clause,
    so those dimensions execute sequentially. *)

val system : Common.system
