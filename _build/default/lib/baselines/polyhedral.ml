module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Footprint = Mdh_lowering.Footprint
module Tuner = Mdh_atf.Tuner

(* default blocking: a 16x16 face on the two outermost dimensions, depth 4
   beyond — the shape of PPCG's and Pluto's default block/tile choices *)
let heuristic_tiles (md : Md_hom.t) =
  Array.mapi (fun d n -> min (if d < 2 then 16 else 4) n) md.sizes

let all_layers (dev : Device.t) = List.init (Array.length dev.Device.layers) Fun.id

let tuned_schedule (md : Md_hom.t) dev =
  (* tile sizes searched by ATF; parallelism restricted to cc dims *)
  match
    Tuner.tune ~parallel_options:[ Common.cc_dims md ] md dev Cost.good_codegen
  with
  | Ok t -> t.Tuner.schedule
  | Error _ ->
    { Schedule.tile_sizes = heuristic_tiles md;
      parallel_dims = Common.cc_dims md;
      used_layers = all_layers dev }

let heuristic_schedule (md : Md_hom.t) dev =
  { Schedule.tile_sizes = heuristic_tiles md;
    parallel_dims = Common.cc_dims md;
    used_layers = all_layers dev }

(* Static shared-memory limit per block on the modelled GPU. *)
let static_shared_bytes = 48 * 1024

let ppcg_compile ~tuned (md : Md_hom.t) dev =
  match Common.check_device "PPCG" ~system_targets:[ Device.Gpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    if Common.cc_dims md = [] then
      Error
        (Common.No_parallel_dim
           "the nest is reduction-only; PPCG finds no loop to map to the grid")
    else if tuned then
      Common.outcome_of_schedule ~system:"PPCG(ATF)" ~tuned:true md dev
        Cost.good_codegen (tuned_schedule md dev)
    else begin
      (* Section 5.2: PPCG "crashes with an out of resources error on deep
         learning computations when ATF-tuned tile sizes are not used" —
         the high-dimensional multi-reduction kernels (the convolutions)
         exhaust per-block resources under its default mapping. Staged
         shared memory is additionally bounded by the 48 KB static limit. *)
      let deep_learning_kernel =
        Md_hom.rank md >= 5 && List.length (Md_hom.reduction_dims md) >= 2
      in
      let tiles = heuristic_tiles md in
      let shared = Footprint.tile_input_bytes md ~box:tiles in
      if deep_learning_kernel || shared > static_shared_bytes then
        Error
          (Common.Out_of_resources
             "per-block resources exhausted under the default mapping (use ATF-tuned \
              tile sizes)")
      else
        Common.outcome_of_schedule ~system:"PPCG" ~tuned:false md dev Cost.good_codegen
          { (heuristic_schedule md dev) with Schedule.tile_sizes = tiles }
    end

let pluto_compile ~tuned (md : Md_hom.t) dev =
  match Common.check_device "Pluto" ~system_targets:[ Device.Cpu ] dev with
  | Error _ as e -> e
  | Ok () ->
    if Common.data_dependent_branch md then
      Error
        (Common.Polyhedral_extraction_error
           "data-dependent if statement in the loop body (cf. PRL, Listing 11)")
    else if tuned then
      Common.outcome_of_schedule ~system:"Pluto(ATF)" ~tuned:true md dev
        Cost.good_codegen (tuned_schedule md dev)
    else
      Common.outcome_of_schedule ~system:"Pluto" ~tuned:false md dev Cost.good_codegen
        (heuristic_schedule md dev)

let ppcg = { Common.sys_name = "PPCG"; targets = [ Device.Gpu ]; compile = ppcg_compile }
let pluto = { Common.sys_name = "Pluto"; targets = [ Device.Cpu ]; compile = pluto_compile }
