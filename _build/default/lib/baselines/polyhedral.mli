(** Polyhedral compiler models: PPCG (GPU) and Pluto (CPU).

    Polyhedral compilers tile and parallelise loop nests from dependence
    analysis alone; the [#pragma scop] directive carries no reduction
    operators (Listing 1), so reduction dimensions are never parallelised —
    "polyhedral techniques still face challenges" with reductions
    (Section 5.2, citing Doerfert et al.). Consequences reproduced here:

    - PPCG rejects Dot: with the only dimension a reduction, there is
      nothing to map to the GPU grid ([No_parallel_dim]).
    - PPCG's heuristic tile sizes blow the per-SM memory on the
      high-dimensional deep-learning kernels; only ATF-tuned tile sizes fit
      ([Out_of_resources], Section 5.2).
    - Pluto cannot extract polyhedra from PRL's data-dependent [if]
      statements ([Polyhedral_extraction_error]).

    Both support auto-tuned tile sizes (the paper reports heuristic and
    ATF-tuned variants); [tuned:true] searches tile sizes with the ATF
    tuner while keeping reductions sequential. *)

val ppcg : Common.system
val pluto : Common.system

val tuned_schedule :
  Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> Mdh_lowering.Schedule.t
(** The ATF-tuned, reduction-sequential schedule shared by both tuned
    variants (also consulted by the MDH tuner, whose space subsumes it). *)
