module Device = Mdh_machine.Device

let gpu_baselines = [ Openacc.system; Polyhedral.ppcg; Tvm.system; Vendor.system ]

let cpu_baselines =
  [ Openmp.system; Polyhedral.pluto; Numba.system; Tvm.system; Vendor.system ]

let baselines_for (dev : Device.t) =
  match dev.Device.kind with
  | Device.Gpu -> gpu_baselines
  | Device.Cpu -> cpu_baselines

let mdh = Mdh_system.system

let all_systems =
  [ Mdh_system.system; Openmp.system; Openacc.system; Polyhedral.ppcg;
    Polyhedral.pluto; Numba.system; Tvm.system; Vendor.system ]
