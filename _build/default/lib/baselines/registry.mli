(** The evaluation line-up of Figure 4. *)

val gpu_baselines : Common.system list
(** OpenACC, PPCG, TVM, vendor (cuBLAS/cuDNN) — the GPU comparison set. *)

val cpu_baselines : Common.system list
(** OpenMP, Pluto, Numba, TVM, vendor (oneMKL/oneDNN). *)

val baselines_for : Mdh_machine.Device.t -> Common.system list

val mdh : Common.system

val all_systems : Common.system list
