module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Tuner = Mdh_atf.Tuner

let compile ~tuned:_ (md : Md_hom.t) dev =
  if Common.has_custom_reduction md then
    Error (Common.Unsupported_reduction "Invalid comm_reducer: user-defined reduction")
  else if Common.has_prefix_sum md then
    Error
      (Common.Unsupported_reduction
         "prefix-sum (scan) reductions are not expressible as a comm_reducer")
  else begin
    (* TVM always tunes (its own engine); parallelism over cc dims and
       rfactor-able builtin reductions *)
    let options =
      [ Common.cc_dims md;
        List.sort compare (Common.cc_dims md @ Common.builtin_reduction_dims md) ]
    in
    match Tuner.tune ~parallel_options:options md dev Cost.good_codegen with
    | Ok t ->
      Common.outcome_of_schedule ~system:"TVM" ~tuned:true md dev Cost.good_codegen
        t.Tuner.schedule
    | Error msg -> Error (Common.Not_supported msg)
  end

let system =
  { Common.sys_name = "TVM"; targets = [ Device.Gpu; Device.Cpu ]; compile }
