(** TVM capability model (GPU and CPU).

    TVM's tensor-expression DSL schedules tiled, parallelised code on both
    devices and auto-tunes with its own engine (Ansor); it parallelises
    reductions via [rfactor] — but only for reducers its [comm_reducer]
    machinery accepts. User-defined reduction operators like PRL's
    [prl_max] and prefix-sum reductions (MBBS) are rejected
    ("Invalid comm_reducer", "Expressing nested reduce operations" — the
    community issues cited in Section 5.2 [2, 3]). *)

val system : Common.system
