module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Scalar = Mdh_tensor.Scalar
module Index_fn = Mdh_tensor.Index_fn
module Device = Mdh_machine.Device
module Roofline = Mdh_machine.Roofline
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Lower = Mdh_lowering.Lower

type routine = Gemm | Gemv | Dot | Conv

let float_typed (md : Md_hom.t) =
  List.for_all
    (fun (i : Md_hom.input) ->
      match i.inp_ty with Scalar.Fp32 | Fp64 -> true | _ -> false)
    md.inputs

let add_reduction_dims (md : Md_hom.t) =
  List.filter
    (fun d ->
      match md.combine_ops.(d) with
      | Combine.Pw f -> f.Combine.builtin && String.equal f.Combine.fn_name "add"
      | Cc | Ps _ -> false)
    (List.init (Md_hom.rank md) Fun.id)

let strided_window_access (md : Md_hom.t) =
  (* a coordinate combining two iteration dims (e.g. 2p+r) marks a sliding
     window: the convolution signature *)
  List.exists
    (fun (i : Md_hom.input) ->
      List.exists
        (fun (a : Md_hom.access) ->
          match a.fn with
          | Index_fn.Affine { coords; _ } ->
            Array.exists
              (fun c ->
                Array.fold_left
                  (fun n coeff -> if coeff <> 0 then n + 1 else n)
                  0 c.Index_fn.coeffs
                >= 2)
              coords
          | Index_fn.Opaque _ -> false)
        i.accesses)
    md.inputs

let classify (md : Md_hom.t) =
  if not (float_typed md) then None
  else begin
    let reds = add_reduction_dims md in
    let all_reds = Md_hom.reduction_dims md in
    if reds <> all_reds || reds = [] then None
    else
      match (Md_hom.rank md, List.length reds) with
      | 1, 1 -> Some Dot
      | 2, 1 -> Some Gemv
      | 3, 1 -> Some Gemm
      | 4, 1 -> Some Gemm (* batched GEMM *)
      | r, k when r >= 5 && k >= 2 && strided_window_access md -> Some Conv
      | _ -> None
  end

(* Vendor kernels view every supported routine as an MxN output block
   computation (GEMM's M rows x N columns; a convolution's output pixels x
   output channels) and block both at a fixed internal size. Dimensions far
   below the block are padded, wasting compute; kernel variety bounds the
   waste per side. *)
let padding_factor (md : Md_hom.t) block =
  let pad extent =
    Float.min 4.0
      (float_of_int (block * Mdh_support.Util.ceil_div extent block)
      /. float_of_int extent)
  in
  match List.rev (Common.cc_dims md) with
  | [] -> 1.0
  | [ only ] -> pad md.sizes.(only) (* GEMV/DOT: a single output extent *)
  | n_dim :: m_dims ->
    let m = List.fold_left (fun acc d -> acc * md.sizes.(d)) 1 m_dims in
    pad (max 1 m) *. pad md.sizes.(n_dim)

let regular_shape (md : Md_hom.t) =
  List.for_all (fun d -> md.sizes.(d) >= 32) (Common.cc_dims md)

let compile ~tuned:_ (md : Md_hom.t) (dev : Device.t) =
  match classify md with
  | None ->
    Error
      (Common.Not_supported
         (Printf.sprintf "no vendor routine implements %s" md.hom_name))
  | Some routine ->
    let block = match dev.Device.kind with Device.Gpu -> 64 | Device.Cpu -> 16 in
    let pad = padding_factor md block in
    let base =
      if regular_shape md then
        { Cost.cg_name = "vendor"; base_compute_eff = 0.92; base_bw_eff = 0.92 }
      else
        { Cost.cg_name = "vendor-offshape"; base_compute_eff = 0.5; base_bw_eff = 0.55 }
    in
    let codegen =
      { base with
        Cost.base_compute_eff = Float.max 1e-4 (base.Cost.base_compute_eff /. pad) }
    in
    (* vendor kernels are hand-scheduled near-optimally for the routines
       they serve: pick the cost-model-optimal schedule, like MDH does *)
    let schedule =
      match Mdh_atf.Tuner.tune ~budget:150 ~seed:7 md dev codegen with
      | Ok t -> t.Mdh_atf.Tuner.schedule
      | Error _ ->
        { (Lower.mdh_default md dev) with
          Schedule.parallel_dims = Lower.parallelisable_dims md }
    in
    (match Common.outcome_of_schedule ~system:"Vendor" ~tuned:false md dev codegen
             schedule with
    | Error _ as e -> e
    | Ok outcome ->
      (* library dispatch and internal threading setup: a fixed per-call
         overhead the tuned MDH kernels do not pay *)
      let dispatch_s =
        match dev.Device.kind with Device.Gpu -> 8e-6 | Device.Cpu -> 1e-5
      in
      let b = outcome.Common.analysis.Cost.breakdown in
      let breakdown =
        { b with
          Roofline.overhead_s = b.Roofline.overhead_s +. dispatch_s;
          total_s = b.Roofline.total_s +. dispatch_s }
      in
      let analysis = { outcome.Common.analysis with Cost.breakdown = breakdown } in
      Ok
        { outcome with
          Common.analysis;
          system =
            (match (dev.Device.kind, routine) with
            | Device.Gpu, Conv -> "cuDNN"
            | Device.Gpu, _ -> "cuBLAS"
            | Device.Cpu, Conv -> "oneDNN"
            | Device.Cpu, _ -> "oneMKL") })

let system =
  { Common.sys_name = "Vendor"; targets = [ Device.Gpu; Device.Cpu ]; compile }
