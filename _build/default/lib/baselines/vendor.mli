(** Vendor library model: cuBLAS/cuDNN on GPUs, oneMKL/oneDNN on CPUs.

    Vendor libraries ship assembly-tuned kernels for a fixed routine set and
    do not auto-tune per shape (Section 5). The model:

    - routines outside the library's catalogue are [Not_supported]
      (cuBLAS/oneMKL: BLAS; cuDNN/oneDNN: convolution) — PRL, MBBS,
      Gaussian/Jacobi stencils and CCSD(T) have no vendor bar in Figure 4;
    - supported routines run near roofline when the shape matches the
      kernels' fixed internal blocking (large, square-ish dims);
    - shapes far from the tuned regime — the tall/skinny deep-learning GEMMs,
      batch-1 and capsule convolutions of Figure 3 — pay a fixed-blocking
      penalty. This is precisely where the paper reports its up-to-5x (CPU)
      and >2x (GPU) wins over vendor libraries. *)

type routine = Gemm | Gemv | Dot | Conv

val classify : Mdh_core.Md_hom.t -> routine option
(** Structural detection of library-served patterns: dense contractions with
    one [pw(add)] reduction map to BLAS routines by rank; sliding-window
    contractions (strided non-injective accesses with several reduction
    dims) map to [Conv]. *)

val system : Common.system
