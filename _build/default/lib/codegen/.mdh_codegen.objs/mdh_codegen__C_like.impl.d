lib/codegen/c_like.ml: Array Char Float Format Int32 Int64 List Mdh_combine Mdh_core Mdh_expr Mdh_tensor Printf String
