lib/codegen/c_like.mli: Mdh_combine Mdh_core Mdh_expr Mdh_tensor
