lib/codegen/host.ml: Buffer C_like Format Kernel List Mdh_core Mdh_tensor Printf Str_replace String
