lib/codegen/host.mli: Kernel Mdh_core Mdh_lowering Mdh_machine
