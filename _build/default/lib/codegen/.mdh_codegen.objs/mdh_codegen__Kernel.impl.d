lib/codegen/kernel.ml: Array Buffer C_like Format Fun List Mdh_combine Mdh_core Mdh_lowering Mdh_machine Mdh_support Mdh_tensor Option Printf Result Str_replace String
