lib/codegen/openmp_c.ml: Array Buffer C_like Format Kernel List Mdh_combine Mdh_core Printf String
