lib/codegen/openmp_c.mli: Kernel Mdh_core
