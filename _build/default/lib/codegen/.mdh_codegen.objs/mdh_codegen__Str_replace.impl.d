lib/codegen/str_replace.ml: Buffer String
