lib/codegen/str_replace.mli:
