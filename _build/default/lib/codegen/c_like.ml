module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Md_hom = Mdh_core.Md_hom
module Expr = Mdh_expr.Expr
module Typecheck = Mdh_expr.Typecheck
module Combine = Mdh_combine.Combine

type ctx = {
  records : Scalar.ty list;  (** distinct record types, registration order *)
  buffer_shapes : (string * Shape.t) list;
  tc_env : Typecheck.env;
}

let record_name ctx ty =
  let rec index i = function
    | [] -> invalid_arg "C_like: unregistered record type"
    | t :: rest -> if Scalar.equal_ty t ty then i else index (i + 1) rest
  in
  Printf.sprintf "mdh_rec_%d" (index 0 ctx.records)

let c_type ctx = function
  | Scalar.Fp32 -> "float"
  | Fp64 -> "double"
  | Int32 -> "int"
  | Int64 -> "long long"
  | Bool -> "unsigned char"
  | Char -> "char"
  | Record _ as ty -> "struct " ^ record_name ctx ty

let prepare (md : Md_hom.t) =
  let records = ref [] in
  let rec note ty =
    match ty with
    | Scalar.Record fields ->
      List.iter (fun (_, fty) -> note fty) fields;
      if not (List.exists (Scalar.equal_ty ty) !records) then records := !records @ [ ty ]
    | _ -> ()
  in
  List.iter (fun (i : Md_hom.input) -> note i.inp_ty) md.inputs;
  List.iter (fun (o : Md_hom.output) -> note o.out_ty) md.outputs;
  let buffer_shapes =
    List.map (fun (i : Md_hom.input) -> (i.Md_hom.inp_name, i.Md_hom.inp_shape)) md.inputs
    @ List.map (fun (o : Md_hom.output) -> (o.Md_hom.out_name, o.Md_hom.out_shape)) md.outputs
  in
  let tc_env =
    { Typecheck.iter_vars = Array.to_list md.dims;
      buffer_ty =
        (fun name ->
          match Md_hom.find_input md name with
          | Some i -> Some i.Md_hom.inp_ty
          | None -> None) }
  in
  { records = !records; buffer_shapes; tc_env }

let struct_defs ctx =
  String.concat ""
    (List.map
       (fun ty ->
         match ty with
         | Scalar.Record fields ->
           Printf.sprintf "struct %s {\n%s};\n\n" (record_name ctx ty)
             (String.concat ""
                (List.map
                   (fun (fname, fty) -> Printf.sprintf "  %s %s;\n" (c_type ctx fty) fname)
                   fields))
         | _ -> assert false)
       ctx.records)

type emitted = {
  decls : string list;
  expr : string;
}

let linearize name shape idx_strings =
  if Array.length shape <> List.length idx_strings then
    invalid_arg "C_like.linearize: rank mismatch";
  if Array.length shape = 0 || idx_strings = [] then name ^ "[0]"
  else begin
    let acc = ref "" in
    List.iteri
      (fun d idx ->
        acc :=
          if d = 0 then Printf.sprintf "(%s)" idx
          else Printf.sprintf "(%s) * %d + (%s)" !acc shape.(d) idx)
      idx_strings;
    Printf.sprintf "%s[%s]" name !acc
  end

let float_lit x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let rec const_lit ctx ty v =
  match v with
  | Scalar.F32 x -> float_lit x ^ "f"
  | F64 x -> float_lit x
  | I32 x -> Int32.to_string x
  | I64 x -> Int64.to_string x ^ "LL"
  | B b -> if b then "1" else "0"
  | C c -> string_of_int (Char.code c)
  | R fields ->
    let ftys = match ty with Scalar.Record ftys -> ftys | _ -> [] in
    Printf.sprintf "(%s){%s}" (c_type ctx ty)
      (String.concat ", "
         (List.map
            (fun (name, fv) ->
              let fty =
                match List.assoc_opt name ftys with
                | Some t -> t
                | None -> Scalar.type_of_value fv
              in
              const_lit ctx fty fv)
            fields))

(* infer the C type of a subexpression, given the types of let-bound
   locals *)
let type_of ctx locals e =
  let wrapped =
    List.fold_right
      (fun (name, (_, ty)) acc ->
        (* re-introduce locals as lets over zero values of the right type *)
        Expr.Let (name, Expr.Const (Scalar.zero ty), acc))
      locals e
  in
  match Typecheck.infer ctx.tc_env wrapped with
  | Ok ty -> ty
  | Error err ->
    invalid_arg
      (Format.asprintf "C_like.emit_expr: expression does not type-check: %a"
         Typecheck.pp_error err)

let emit_expr ctx ~fresh ~index_of root =
  let root = Mdh_expr.Analysis.simplify root in
  let decls = ref [] in
  let rec go locals e =
    match e with
    | Expr.Const v -> const_lit ctx (Scalar.type_of_value v) v
    | Idx name -> index_of name
    | Var name -> (
      match List.assoc_opt name locals with
      | Some (cname, _) -> cname
      | None -> invalid_arg (Printf.sprintf "C_like.emit_expr: unbound local %S" name))
    | Read (buf, idxs) -> (
      let idx_strings = List.map (go locals) idxs in
      match List.assoc_opt buf ctx.buffer_shapes with
      | Some shape -> linearize buf shape idx_strings
      | None -> invalid_arg (Printf.sprintf "C_like.emit_expr: unknown buffer %S" buf))
    | Binop (op, a, b) ->
      let ca = go locals a and cb = go locals b in
      let infix sym = Printf.sprintf "(%s %s %s)" ca sym cb in
      (match op with
      | Expr.Add -> infix "+"
      | Sub -> infix "-"
      | Mul -> infix "*"
      | Div -> infix "/"
      | Min -> Printf.sprintf "mdh_min(%s, %s)" ca cb
      | Max -> Printf.sprintf "mdh_max(%s, %s)" ca cb
      | Eq -> infix "=="
      | Ne -> infix "!="
      | Lt -> infix "<"
      | Le -> infix "<="
      | Gt -> infix ">"
      | Ge -> infix ">="
      | And -> infix "&&"
      | Or -> infix "||")
    | Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (go locals a)
    | Unop (Expr.Not, a) -> Printf.sprintf "(!%s)" (go locals a)
    | If (c, t, f) ->
      Printf.sprintf "(%s ? %s : %s)" (go locals c) (go locals t) (go locals f)
    | Let (name, value, body) ->
      let cname = fresh () in
      let vty = type_of ctx locals value in
      let cexpr = go locals value in
      decls :=
        Printf.sprintf "const %s %s = %s;" (c_type ctx vty) cname cexpr :: !decls;
      go ((name, (cname, vty)) :: locals) body
    | Field (a, fname) -> Printf.sprintf "%s.%s" (go locals a) fname
    | MkRecord fields ->
      let ty = type_of ctx locals e in
      Printf.sprintf "(%s){%s}" (c_type ctx ty)
        (String.concat ", " (List.map (fun (_, fe) -> go locals fe) fields))
    | Cast (ty, a) -> Printf.sprintf "((%s)%s)" (c_type ctx ty) (go locals a)
  in
  let expr = go [] root in
  { decls = List.rev !decls; expr }

let combine_exprs (fn : Combine.custom_fn) a b =
  if fn.Combine.builtin then
    match fn.Combine.fn_name with
    | "add" -> Printf.sprintf "(%s + %s)" a b
    | "mul" -> Printf.sprintf "(%s * %s)" a b
    | "min" -> Printf.sprintf "mdh_min(%s, %s)" a b
    | "max" -> Printf.sprintf "mdh_max(%s, %s)" a b
    | other -> invalid_arg ("C_like.combine_exprs: unknown builtin " ^ other)
  else Printf.sprintf "mdh_combine_%s(%s, %s)" fn.Combine.fn_name a b

let custom_combiner_note (fn : Combine.custom_fn) =
  if fn.Combine.builtin then None
  else
    Some
      (Printf.sprintf
         "/* mdh_combine_%s: user-defined customising function, supplied by the host \
          (associative%s) */"
         fn.Combine.fn_name
         (if fn.Combine.commutative then ", commutative" else ""))

let min_max_prelude =
  "#define mdh_min(a, b) ((a) < (b) ? (a) : (b))\n\
   #define mdh_max(a, b) ((a) > (b) ? (a) : (b))\n"

let buffer_param ctx ?(const = true) name ty =
  Printf.sprintf "%s%s *%s" (if const then "const " else "") (c_type ctx ty) name

let indent n text =
  let pad = String.make (2 * n) ' ' in
  String.split_on_char '\n' text
  |> List.map (fun line -> if line = "" then line else pad ^ line)
  |> String.concat "\n"
