(** Shared C-family emission: types, expressions and helpers used by both
    the CUDA and OpenCL backends.

    The MDH pipeline's deliverable is generated source — "CUDA for GPUs and
    OpenCL for CPUs" (Section 3). The emitters translate a scheduled
    computation into kernel source with the schedule's decisions visible in
    the code: cache-tiled sequential loops, the parallel concatenation
    subspace decomposed from the hardware index, and (when scheduled) a
    tree reduction over the reduction dimension.

    Record element types become C structs; built-in customising functions
    become operators; user-defined customising functions (which exist as
    OCaml closures) are emitted as calls to a combiner the host must
    supply, with the operator's name preserved. *)

type ctx

val prepare : Mdh_core.Md_hom.t -> ctx
(** Collect record types and buffer shapes/types of a computation. *)

val struct_defs : ctx -> string
(** Struct definitions for the record element types (possibly empty). *)

val c_type : ctx -> Mdh_tensor.Scalar.ty -> string

type emitted = {
  decls : string list;  (** temporary declarations, in order *)
  expr : string;  (** the final C expression *)
}

val emit_expr :
  ctx -> fresh:(unit -> string) -> index_of:(string -> string) ->
  Mdh_expr.Expr.t -> emitted
(** Translate a scalar-function expression: buffer reads become row-major
    linearised accesses, [let] bindings become typed [const] declarations,
    conditionals become ternaries. [index_of] renders an iteration variable
    (e.g. a tile-local name). Raises [Invalid_argument] on expressions that
    do not type-check. *)

val linearize : string -> Mdh_tensor.Shape.t -> string list -> string
(** [linearize "M" [|r;c|] ["i"; "k"]] is ["M[(i) * c + (k)]"]. *)

val combine_exprs :
  Mdh_combine.Combine.custom_fn -> string -> string -> string
(** C expression combining two values: built-in operators inline
    ([(a + b)], [mdh_min(a, b)], ...); custom operators call
    [mdh_combine_<name>(a, b)]. *)

val custom_combiner_note : Mdh_combine.Combine.custom_fn -> string option
(** A comment/prototype line for non-builtin customising functions. *)

val min_max_prelude : string
(** Definitions of the [mdh_min]/[mdh_max] helpers. *)

val buffer_param : ctx -> ?const:bool -> string -> Mdh_tensor.Scalar.ty -> string
(** Render a kernel pointer parameter, e.g. ["const float *M"]. *)

val indent : int -> string -> string
(** Indent every non-empty line by [2 * n] spaces. *)
