(** Host-program generation: a complete, compilable driver around a
    generated kernel — the role of the group's OCAL/dOCAL host-code layer
    (paper references [33, 36]).

    For the CUDA dialect the bundle is a single [.cu] translation unit:
    the kernel followed by a [main] that allocates and fills the buffers,
    moves data to the device, launches with the schedule's configuration,
    times the kernel with events, reads the result back and prints a
    checksum. For OpenCL the kernel is a separate [.cl] source (loaded at
    run time, as is conventional) and the host is a C program with the full
    platform/context/queue/program boilerplate. *)

type bundle = {
  kernel_file : string;  (** suggested file name for the kernel source *)
  kernel_source : string;
  host_file : string;
  host_source : string;
}

val generate :
  Kernel.dialect ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Schedule.t ->
  (bundle, Kernel.error) result
