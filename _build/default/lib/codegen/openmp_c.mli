(** Emission of the OpenMP-annotated sequential C equivalent of a directive
    (the shape of the paper's Listing 2) — the reverse of this repository's
    pipeline, used to show concretely what is and is not expressible in the
    established standards:

    - the outermost concatenation loop gets [#pragma omp parallel for];
    - a reduction dimension with a *built-in* operator gets a scalar
      accumulator and [#pragma omp simd reduction(op:acc)] — including the
      [sum] temporary and the re-write of [=] into [+=]-style accumulation
      that the MDH directive lets users avoid;
    - a reduction with a user-defined customising function (PRL's
      [prl_best]) or a prefix-sum dimension **cannot be annotated**: the
      loop is emitted sequential with a comment naming the inexpressible
      operator — the Section 2/5.2 gap, in code.

    Restrictions: single output buffer, at most one reduction dimension
    (the Listing 2 shape); richer computations return [Unsupported]. *)

val generate : Mdh_core.Md_hom.t -> (string, Kernel.error) result
