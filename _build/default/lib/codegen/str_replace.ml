let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let replace_word text word replacement =
  let n = String.length text and wn = String.length word in
  if wn = 0 then text
  else begin
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      let boundary_before = !i = 0 || not (is_ident_char text.[!i - 1]) in
      if
        boundary_before
        && !i + wn <= n
        && String.sub text !i wn = word
        && (!i + wn = n || not (is_ident_char text.[!i + wn]))
      then begin
        Buffer.add_string buf replacement;
        i := !i + wn
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
