(** Word-boundary token replacement in generated C text (used to rewrite
    collapsed iteration variables to [0] in output index expressions). *)

val replace_word : string -> string -> string -> string
(** [replace_word text word replacement] replaces every occurrence of
    [word] in [text] that is not part of a larger identifier. *)
