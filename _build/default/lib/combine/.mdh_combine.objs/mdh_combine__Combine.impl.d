lib/combine/combine.ml: Array Format Mdh_tensor Printf
