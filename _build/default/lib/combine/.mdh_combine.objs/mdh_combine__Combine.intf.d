lib/combine/combine.mli: Format Mdh_tensor
