lib/core/md_hom.ml: Array Format List Mdh_combine Mdh_expr Mdh_tensor String
