lib/core/md_hom.mli: Format Mdh_combine Mdh_expr Mdh_tensor
