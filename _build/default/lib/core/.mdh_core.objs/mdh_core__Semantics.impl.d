lib/core/semantics.ml: Array Bytes Format Fun List Md_hom Mdh_combine Mdh_expr Mdh_tensor Option String
