lib/core/semantics.mli: Md_hom Mdh_tensor
