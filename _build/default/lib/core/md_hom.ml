module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module Analysis = Mdh_expr.Analysis

type access = {
  fn : Index_fn.t;
  exprs : Expr.t list;
}

type input = {
  inp_name : string;
  inp_ty : Scalar.ty;
  inp_shape : Shape.t;
  accesses : access list;
}

type output = {
  out_name : string;
  out_ty : Scalar.ty;
  out_shape : Shape.t;
  out_access : access;
  value : Expr.t;
}

type t = {
  hom_name : string;
  dims : string array;
  sizes : Shape.t;
  combine_ops : Combine.t array;
  inputs : input list;
  outputs : output list;
}

let rank t = Array.length t.dims

let dim_index t name =
  match Array.find_index (String.equal name) t.dims with
  | Some d -> d
  | None -> raise Not_found

let reduction_dims t =
  Array.to_list t.combine_ops
  |> List.mapi (fun d op -> (d, op))
  |> List.filter_map (fun (d, op) -> if Combine.is_reduction op then Some d else None)

let cc_dims t =
  Array.to_list t.combine_ops
  |> List.mapi (fun d op -> (d, op))
  |> List.filter_map (fun (d, op) -> if Combine.is_reduction op then None else Some d)

let result_shape t =
  Array.mapi (fun d n -> Combine.result_extent t.combine_ops.(d) n) t.sizes

let find_input t name = List.find_opt (fun i -> String.equal i.inp_name name) t.inputs
let find_output t name = List.find_opt (fun o -> String.equal o.out_name name) t.outputs

let total_points t = Shape.num_elements t.sizes

let flops_per_point t =
  List.fold_left (fun acc o -> acc + Analysis.flops o.value) 0 t.outputs

let bytes_read_per_point t =
  List.fold_left
    (fun acc i -> acc + (List.length i.accesses * Scalar.size_bytes i.inp_ty))
    0 t.inputs

let bytes_written t =
  List.fold_left
    (fun acc o -> acc + (Shape.num_elements o.out_shape * Scalar.size_bytes o.out_ty))
    0 t.outputs

let input_bytes t =
  List.fold_left
    (fun acc i -> acc + (Shape.num_elements i.inp_shape * Scalar.size_bytes i.inp_ty))
    0 t.inputs

type characteristics = {
  iter_space_rank : int;
  n_reduction_dims : int;
  injective_accesses : bool option;
  n_inputs : int;
  n_outputs : int;
}

let characteristics t =
  (* Figure 3's "Inj." column: no input element is touched by two distinct
     iteration points. A buffer with several textual accesses (a stencil
     family) re-reads elements across offsets, so it is non-injective even
     when each access alone is. *)
  let injective =
    List.fold_left
      (fun acc input ->
        if List.length input.accesses > 1 then Some false
        else
          List.fold_left
            (fun acc access ->
              match (acc, Index_fn.injective_on access.fn t.sizes) with
              | Some false, _ -> Some false
              | _, Some false -> Some false
              | None, _ | _, None -> None
              | Some true, Some true -> Some true)
            acc input.accesses)
      (Some true) t.inputs
  in
  { iter_space_rank = rank t;
    n_reduction_dims = List.length (reduction_dims t);
    injective_accesses = injective;
    n_inputs = List.length t.inputs;
    n_outputs = List.length t.outputs }

let pp ppf t =
  Format.fprintf ppf "@[<v>md_hom %s:@," t.hom_name;
  Format.fprintf ppf "  iteration space: %s over (%s)@," (Shape.to_string t.sizes)
    (String.concat "," (Array.to_list t.dims));
  Format.fprintf ppf "  combine ops: (%s)@,"
    (String.concat ", " (Array.to_list (Array.map Combine.name t.combine_ops)));
  List.iter
    (fun o ->
      Format.fprintf ppf "  out %s : %a %s via %a = %a@," o.out_name Scalar.pp_ty o.out_ty
        (Shape.to_string o.out_shape) Index_fn.pp o.out_access.fn Expr.pp o.value)
    t.outputs;
  List.iter
    (fun i ->
      Format.fprintf ppf "  inp %s : %a %s via [%a]@," i.inp_name Scalar.pp_ty i.inp_ty
        (Shape.to_string i.inp_shape)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf a -> Index_fn.pp ppf a.fn))
        i.accesses)
    t.inputs;
  Format.fprintf ppf "@]"
