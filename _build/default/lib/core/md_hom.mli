(** The MDH high-level program representation (Section 3, Listing 7):

    {v out_view ∘ md_hom(f, (co_1, ..., co_D)) ∘ inp_view v}

    A value of type {!t} is the target of the directive-to-DSL
    transformation (Section 4.3) and the input of the lowering pipeline.

    The iteration space is a [D]-dimensional box. The scalar function [f] is
    represented by the per-output value expressions (pure, reading input
    buffer elements through the input views). Each dimension carries a
    combine operator. *)

module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn

type access = {
  fn : Index_fn.t;  (** symbolic index function (affine when extractable) *)
  exprs : Mdh_expr.Expr.t list;  (** the original index expressions *)
}

type input = {
  inp_name : string;
  inp_ty : Scalar.ty;
  inp_shape : Shape.t;  (** declared, or inferred from accesses (footnote 7) *)
  accesses : access list;  (** #ACC accesses of this buffer (inp_view) *)
}

type output = {
  out_name : string;
  out_ty : Scalar.ty;
  out_shape : Shape.t;
  out_access : access;  (** out_view entry for this buffer *)
  value : Mdh_expr.Expr.t;  (** scalar-function component for this output *)
}

type t = {
  hom_name : string;
  dims : string array;  (** iteration variable names, outermost first *)
  sizes : Shape.t;  (** iteration-space extents *)
  combine_ops : Mdh_combine.Combine.t array;  (** one per dimension *)
  inputs : input list;
  outputs : output list;
}

val rank : t -> int

val dim_index : t -> string -> int
(** Position of an iteration variable; raises [Not_found]. *)

val reduction_dims : t -> int list
(** Dimensions whose combine operator is [pw] or [ps]. *)

val cc_dims : t -> int list

val result_shape : t -> Shape.t
(** Shape of the combined result tensor over the iteration space: extent 1
    on [pw] dimensions, full extent otherwise. *)

val find_input : t -> string -> input option
val find_output : t -> string -> output option

val total_points : t -> int

val flops_per_point : t -> int
(** Operation count of one scalar-function evaluation (all outputs). *)

val bytes_read_per_point : t -> int
(** Bytes of input elements touched by one evaluation (one per textual
    access). *)

val bytes_written : t -> int
(** Total bytes of all output buffers. *)

val input_bytes : t -> int

(** Characteristics of Figure 3, derived from the representation. *)
type characteristics = {
  iter_space_rank : int;
  n_reduction_dims : int;
  injective_accesses : bool option;
      (** [Some true] when every input access is injective on the iteration
          space ("Inj." in Figure 3); [None] when undecidable (opaque index
          functions). *)
  n_inputs : int;
  n_outputs : int;
}

val characteristics : t -> characteristics

val pp : Format.formatter -> t -> unit
