lib/directive/directive.ml: Format List Mdh_combine Mdh_expr Mdh_tensor String
