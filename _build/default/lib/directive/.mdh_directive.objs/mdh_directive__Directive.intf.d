lib/directive/directive.mli: Format Mdh_combine Mdh_expr Mdh_tensor
