lib/directive/transform.ml: Directive List Mdh_core Result Validate
