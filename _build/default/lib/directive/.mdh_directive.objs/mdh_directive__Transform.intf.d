lib/directive/transform.mli: Directive Mdh_core Validate
