lib/directive/validate.ml: Array Directive Format List Mdh_combine Mdh_expr Mdh_support Mdh_tensor Printf Result String
