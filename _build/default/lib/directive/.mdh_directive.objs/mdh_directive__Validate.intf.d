lib/directive/validate.mli: Directive Format Mdh_combine Mdh_expr Mdh_tensor
