module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Expr = Mdh_expr.Expr
module Combine = Mdh_combine.Combine

type buffer_decl = {
  buf_name : string;
  buf_ty : Scalar.ty;
  buf_shape : Shape.t option;
}

type stmt =
  | Let_stmt of string * Expr.t
  | Assign of { target : string; indices : Expr.t list; value : Expr.t }

type nest =
  | For of { var : string; extent : int; body : nest }
  | Body of stmt list
  | Seq of nest list

type t = {
  dir_name : string;
  outs : buffer_decl list;
  inps : buffer_decl list;
  combine_ops : Combine.t list;
  nest : nest;
}

let buffer ?shape name ty = { buf_name = name; buf_ty = ty; buf_shape = shape }
let for_ var extent body = For { var; extent; body }
let body stmts = Body stmts
let assign target indices value = Assign { target; indices; value }
let let_stmt name e = Let_stmt (name, e)

let make ~name ~out ~inp ~combine_ops nest =
  { dir_name = name; outs = out; inps = inp; combine_ops; nest }

let loops t =
  let rec go acc = function
    | For { var; extent; body } -> go ((var, extent) :: acc) body
    | Body _ | Seq _ -> List.rev acc
  in
  go [] t.nest

let stmts t =
  let rec go = function
    | For { body; _ } -> go body
    | Body stmts -> stmts
    | Seq _ -> []
  in
  go t.nest

let pp_stmt ppf = function
  | Let_stmt (name, e) -> Format.fprintf ppf "let %s = %a" name Expr.pp e
  | Assign { target; indices; value } ->
    Format.fprintf ppf "%s[%a] = %a" target
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Expr.pp)
      indices Expr.pp value

let rec pp_nest indent ppf = function
  | For { var; extent; body } ->
    Format.fprintf ppf "%sfor %s in range(%d):@," indent var extent;
    pp_nest (indent ^ "  ") ppf body
  | Body stmts ->
    List.iter (fun s -> Format.fprintf ppf "%s%a@," indent pp_stmt s) stmts
  | Seq nests -> List.iter (pp_nest indent ppf) nests

let pp_buffer_decl ppf { buf_name; buf_ty; buf_shape } =
  match buf_shape with
  | None -> Format.fprintf ppf "%s = Buffer[%a]" buf_name Scalar.pp_ty buf_ty
  | Some shape ->
    Format.fprintf ppf "%s = Buffer[%a,[%s]]" buf_name Scalar.pp_ty buf_ty
      (Shape.to_string shape)

let pp ppf t =
  let pp_decls = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_buffer_decl
  in
  Format.fprintf ppf "@[<v>@@mdh( out( %a ),@," pp_decls t.outs;
  Format.fprintf ppf "      inp( %a ),@," pp_decls t.inps;
  Format.fprintf ppf "      combine_ops( %s ) )@,"
    (String.concat ", " (List.map Combine.name t.combine_ops));
  Format.fprintf ppf "def %s:@," t.dir_name;
  pp_nest "  " ppf t.nest;
  Format.fprintf ppf "@]"
