(** The MDH directive (Section 4, Listing 14).

    In the paper the directive is a Python decorator over a perfect loop
    nest. In this OCaml reproduction it is an embedded AST with the same
    structure and the same static rules:

    - [out(...)] / [inp(...)] clauses declare named buffers with basic types
      and optional explicit sizes (required when a buffer is larger than its
      accessed region, Listing 12; otherwise sizes are inferred from the
      iteration space and index functions, footnote 7);
    - [combine_ops(...)] associates one combine operator with every loop
      dimension — the semantic information existing directive approaches
      cannot express for user-defined reductions;
    - the body computes a single point of the iteration space *without*
      performing reductions: plain [=] assignment (never [+=]) of a pure
      scalar function of input elements.

    Validation and the transformation into the MDH DSL representation live
    in {!Validate} and {!Transform}. *)

module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape

type buffer_decl = {
  buf_name : string;
  buf_ty : Scalar.ty;
  buf_shape : Shape.t option;  (** explicit size, when declared *)
}

type stmt =
  | Let_stmt of string * Mdh_expr.Expr.t
      (** local binding usable by later statements *)
  | Assign of { target : string; indices : Mdh_expr.Expr.t list; value : Mdh_expr.Expr.t }
      (** single-point write: [target[indices] = value] *)

(** Loop-nest surface syntax. [Seq] exists so that *imperfect* nests are
    representable — and rejected by validation, mirroring the paper's
    restriction to perfect nests. *)
type nest =
  | For of { var : string; extent : int; body : nest }
  | Body of stmt list
  | Seq of nest list

type t = {
  dir_name : string;
  outs : buffer_decl list;
  inps : buffer_decl list;
  combine_ops : Mdh_combine.Combine.t list;
  nest : nest;
}

(* Builders *)

val buffer : ?shape:Shape.t -> string -> Scalar.ty -> buffer_decl
val for_ : string -> int -> nest -> nest
val body : stmt list -> nest
val assign : string -> Mdh_expr.Expr.t list -> Mdh_expr.Expr.t -> stmt
val let_stmt : string -> Mdh_expr.Expr.t -> stmt

val make :
  name:string ->
  out:buffer_decl list ->
  inp:buffer_decl list ->
  combine_ops:Mdh_combine.Combine.t list ->
  nest ->
  t

val loops : t -> (string * int) list
(** Loop variables and extents, outermost first, for a perfect nest; loops
    under the first [Seq]/[Body] are not included. *)

val stmts : t -> stmt list
(** Statements of the innermost body ([] when the nest is imperfect). *)

val pp : Format.formatter -> t -> unit
