module Md_hom = Mdh_core.Md_hom

let to_md_hom (dir : Directive.t) =
  Result.map
    (fun (e : Validate.elab) ->
      { Md_hom.hom_name = dir.dir_name;
        dims = e.el_dims;
        sizes = e.el_sizes;
        combine_ops = e.el_combine_ops;
        inputs =
          List.map
            (fun (i : Validate.einp) ->
              { Md_hom.inp_name = i.ei_name;
                inp_ty = i.ei_ty;
                inp_shape = i.ei_shape;
                accesses =
                  List.map
                    (fun (exprs, fn) -> { Md_hom.fn; exprs })
                    i.ei_accesses })
            e.el_inps;
        outputs =
          List.map
            (fun (o : Validate.eout) ->
              { Md_hom.out_name = o.eo_name;
                out_ty = o.eo_ty;
                out_shape = o.eo_shape;
                out_access = { Md_hom.fn = o.eo_fn; exprs = o.eo_indices };
                value = o.eo_value })
            e.el_outs })
    (Validate.elaborate dir)

let to_md_hom_exn dir =
  match to_md_hom dir with
  | Ok md -> md
  | Error e -> invalid_arg (Validate.error_to_string e)
