(** Transformation of a validated MDH directive into the MDH DSL's high-level
    program representation (Section 4.3, Figures 1 and 2).

    The data-centric part (Figure 1) instantiates [out_view]/[inp_view] from
    the directive's buffer accesses; the computation-centric part (Figure 2)
    instantiates [md_hom] from the loop nest's extents, the assigned scalar
    function and the [combine_ops] clause. The result feeds the existing
    MDH pipeline (lowering, auto-tuning, execution). *)

val to_md_hom : Directive.t -> (Mdh_core.Md_hom.t, Validate.error) result
(** Validates and transforms; errors are validation errors. *)

val to_md_hom_exn : Directive.t -> Mdh_core.Md_hom.t
(** Raises [Invalid_argument] with the rendered validation error. *)
