lib/expr/analysis.ml: Array Eval Expr Int Int32 Int64 List Mdh_tensor String
