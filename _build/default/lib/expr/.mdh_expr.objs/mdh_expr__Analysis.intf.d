lib/expr/analysis.mli: Expr Mdh_tensor
