lib/expr/eval.ml: Array Expr Format Int32 Int64 List Mdh_tensor
