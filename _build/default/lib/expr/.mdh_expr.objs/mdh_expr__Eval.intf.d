lib/expr/eval.mli: Expr Mdh_tensor
