lib/expr/expr.ml: Format Hashtbl List Mdh_tensor
