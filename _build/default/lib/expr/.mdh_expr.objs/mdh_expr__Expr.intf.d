lib/expr/expr.mli: Format Mdh_tensor
