lib/expr/typecheck.ml: Expr Format List Mdh_support Mdh_tensor Result
