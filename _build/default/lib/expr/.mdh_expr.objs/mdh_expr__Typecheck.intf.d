lib/expr/typecheck.mli: Expr Format Mdh_tensor
