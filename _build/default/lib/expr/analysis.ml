module Index_fn = Mdh_tensor.Index_fn
module Scalar = Mdh_tensor.Scalar

(* Affine form: coefficients per iteration dim + constant, or failure. *)
type affine = { coeffs : int array; offset : int }

let rec affine_of_expr ~dims e : affine option =
  let arity = Array.length dims in
  let const offset = Some { coeffs = Array.make arity 0; offset } in
  match e with
  | Expr.Const (Scalar.I32 x) -> const (Int32.to_int x)
  | Const (Scalar.I64 x) -> const (Int64.to_int x)
  | Idx name -> (
    match Array.find_index (String.equal name) dims with
    | Some d ->
      let coeffs = Array.make arity 0 in
      coeffs.(d) <- 1;
      Some { coeffs; offset = 0 }
    | None -> None)
  | Binop (Add, a, b) -> combine ~dims ( + ) a b
  | Binop (Sub, a, b) -> combine ~dims ( - ) a b
  | Binop (Mul, a, b) -> (
    match (affine_of_expr ~dims a, affine_of_expr ~dims b) with
    | Some fa, Some fb ->
      let is_const f = Array.for_all (( = ) 0) f.coeffs in
      if is_const fa then
        Some { coeffs = Array.map (fun c -> c * fa.offset) fb.coeffs;
               offset = fa.offset * fb.offset }
      else if is_const fb then
        Some { coeffs = Array.map (fun c -> c * fb.offset) fa.coeffs;
               offset = fa.offset * fb.offset }
      else None
    | _ -> None)
  | Unop (Neg, a) -> (
    match affine_of_expr ~dims a with
    | Some f -> Some { coeffs = Array.map Int.neg f.coeffs; offset = -f.offset }
    | None -> None)
  | _ -> None

and combine ~dims op a b =
  match (affine_of_expr ~dims a, affine_of_expr ~dims b) with
  | Some fa, Some fb ->
    Some { coeffs = Array.map2 op fa.coeffs fb.coeffs; offset = op fa.offset fb.offset }
  | _ -> None

let affine_of_index_exprs ~dims exprs =
  let rec loop acc = function
    | [] ->
      Some
        (Index_fn.affine ~arity:(Array.length dims)
           (List.rev_map
              (fun { coeffs; offset } -> Index_fn.coord ~coeffs ~offset)
              acc))
    | e :: rest -> (
      match affine_of_expr ~dims e with
      | Some f -> loop (f :: acc) rest
      | None -> None)
  in
  loop [] exprs

let index_fn_of_exprs ~dims exprs =
  match affine_of_index_exprs ~dims exprs with
  | Some fn -> fn
  | None ->
    let arity = Array.length dims in
    let out_rank = List.length exprs in
    Index_fn.opaque ~arity ~out_rank (fun point ->
        let iter = List.init arity (fun d -> (dims.(d), point.(d))) in
        let ctx =
          { Eval.iter;
            read = (fun buf _ -> raise (Eval.Eval_error ("read of " ^ buf ^ " in index")))
          }
        in
        Eval.eval_indices ctx exprs)

let reads e =
  let acc = ref [] in
  Expr.iter_reads e (fun buf idxs -> acc := (buf, idxs) :: !acc);
  List.rev !acc

let rec flops = function
  | Expr.Const _ | Idx _ | Var _ -> 0
  | Read (_, idxs) -> List.fold_left (fun acc i -> acc + flops i) 0 idxs
  | Binop (_, a, b) -> 1 + flops a + flops b
  | Unop (_, a) -> 1 + flops a
  | If (c, a, b) -> 1 + flops c + max (flops a) (flops b)
  | Let (_, e1, e2) -> flops e1 + flops e2
  | Field (a, _) | Cast (_, a) -> flops a
  | MkRecord fields -> List.fold_left (fun acc (_, e) -> acc + flops e) 0 fields

(* --- simplification --- *)

let is_int_const n = function
  | Expr.Const (Scalar.I32 x) -> Int32.to_int x = n
  | Expr.Const (Scalar.I64 x) -> Int64.to_int x = n
  | _ -> false

let int_consts a b =
  match (a, b) with
  | Expr.Const (Scalar.I32 x), Expr.Const (Scalar.I32 y) ->
    Some (Int32.to_int x, Int32.to_int y, fun n -> Expr.Const (Scalar.i32 n))
  | Expr.Const (Scalar.I64 x), Expr.Const (Scalar.I64 y) ->
    Some (Int64.to_int x, Int64.to_int y, fun n -> Expr.Const (Scalar.i64 n))
  | _ -> None

let rec uses_var name = function
  | Expr.Var v -> String.equal v name
  | Const _ | Idx _ -> false
  | Read (_, idxs) -> List.exists (uses_var name) idxs
  | Binop (_, a, b) -> uses_var name a || uses_var name b
  | Unop (_, a) | Field (a, _) | Cast (_, a) -> uses_var name a
  | If (c, a, b) -> uses_var name c || uses_var name a || uses_var name b
  | Let (n, a, b) -> uses_var name a || ((not (String.equal n name)) && uses_var name b)
  | MkRecord fields -> List.exists (fun (_, e) -> uses_var name e) fields

let rec simplify e =
  match e with
  | Expr.Const _ | Idx _ | Var _ -> e
  | Read (buf, idxs) -> Read (buf, List.map simplify idxs)
  | Binop (op, a, b) -> simplify_binop op (simplify a) (simplify b)
  | Unop (Expr.Neg, a) -> (
    match simplify a with
    | Expr.Unop (Expr.Neg, inner) -> inner
    | a' -> Unop (Expr.Neg, a'))
  | Unop (Expr.Not, a) -> (
    match simplify a with
    | Expr.Const (Scalar.B b) -> Const (Scalar.B (not b))
    | Expr.Unop (Expr.Not, inner) -> inner
    | a' -> Unop (Expr.Not, a'))
  | If (c, a, b) -> (
    match simplify c with
    | Expr.Const (Scalar.B true) -> simplify a
    | Expr.Const (Scalar.B false) -> simplify b
    | c' -> If (c', simplify a, simplify b))
  | Let (name, value, body) ->
    let body' = simplify body in
    if uses_var name body' then Let (name, simplify value, body')
    else body' (* the binding is pure by construction *)
  | Field (a, name) -> Field (simplify a, name)
  | MkRecord fields -> MkRecord (List.map (fun (n, fe) -> (n, simplify fe)) fields)
  | Cast (ty, a) -> Cast (ty, simplify a)

and simplify_binop op a b =
  let default = Expr.Binop (op, a, b) in
  match op with
  | Expr.Add -> (
    if is_int_const 0 a then b
    else if is_int_const 0 b then a
    else
      match int_consts a b with
      | Some (x, y, mk) -> mk (x + y)
      | None -> default)
  | Sub -> (
    if is_int_const 0 b then a
    else
      match int_consts a b with
      | Some (x, y, mk) -> mk (x - y)
      | None -> default)
  | Mul -> (
    if is_int_const 1 a then b
    else if is_int_const 1 b then a
    else if is_int_const 0 a then a
    else if is_int_const 0 b then b
    else
      match int_consts a b with
      | Some (x, y, mk) -> mk (x * y)
      | None -> default)
  | And -> (
    match (a, b) with
    | Expr.Const (Scalar.B true), other | other, Expr.Const (Scalar.B true) -> other
    | (Expr.Const (Scalar.B false) as f), _ -> f
    | _ -> default)
  | Or -> (
    match (a, b) with
    | Expr.Const (Scalar.B false), other | other, Expr.Const (Scalar.B false) -> other
    | (Expr.Const (Scalar.B true) as t), _ -> t
    | _ -> default)
  | Div | Min | Max | Eq | Ne | Lt | Le | Gt | Ge -> default

let rec reads_buffer tainted = function
  | Expr.Read _ -> true
  | Const _ | Idx _ -> false
  | Var name -> List.mem name tainted
  | Binop (_, a, b) -> reads_buffer tainted a || reads_buffer tainted b
  | Unop (_, a) | Field (a, _) | Cast (_, a) -> reads_buffer tainted a
  | If (c, a, b) ->
    reads_buffer tainted c || reads_buffer tainted a || reads_buffer tainted b
  | Let (_, e1, e2) -> reads_buffer tainted e1 || reads_buffer tainted e2
  | MkRecord fields -> List.exists (fun (_, e) -> reads_buffer tainted e) fields

let contains_data_dependent_branch e =
  let rec go tainted = function
    | Expr.If (c, a, b) -> reads_buffer tainted c || go tainted a || go tainted b
    | Const _ | Idx _ | Var _ -> false
    | Read (_, idxs) -> List.exists (go tainted) idxs
    | Binop (_, a, b) -> go tainted a || go tainted b
    | Unop (_, a) | Field (a, _) | Cast (_, a) -> go tainted a
    | Let (name, e1, e2) ->
      let tainted' = if reads_buffer tainted e1 then name :: tainted else tainted in
      go tainted e1 || go tainted' e2
    | MkRecord fields -> List.exists (fun (_, fe) -> go tainted fe) fields
  in
  go [] e
