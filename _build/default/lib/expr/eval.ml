module Scalar = Mdh_tensor.Scalar

type ctx = {
  iter : (string * int) list;
  read : string -> int array -> Scalar.value;
}

exception Eval_error of string

let err fmt = Format.kasprintf (fun message -> raise (Eval_error message)) fmt

let as_bool = function
  | Scalar.B b -> b
  | v -> err "expected bool, got %s" (Scalar.value_to_string v)

let cast_to ty v =
  match ty with
  | Scalar.Fp32 -> Scalar.f32 (Scalar.to_float v)
  | Fp64 -> Scalar.F64 (Scalar.to_float v)
  | Int32 -> (
    match v with
    | Scalar.F32 x | F64 x -> Scalar.I32 (Int32.of_float x)
    | I32 _ -> v
    | I64 x -> Scalar.I32 (Int64.to_int32 x)
    | B _ | C _ -> Scalar.i32 (Scalar.to_int v)
    | R _ -> err "cannot cast record value")
  | Int64 -> (
    match v with
    | Scalar.F32 x | F64 x -> Scalar.I64 (Int64.of_float x)
    | I32 x -> Scalar.I64 (Int64.of_int32 x)
    | I64 _ -> v
    | B _ | C _ -> Scalar.i64 (Scalar.to_int v)
    | R _ -> err "cannot cast record value")
  | Bool | Char | Record _ -> err "unsupported cast target %s" (Scalar.ty_to_string ty)

let rec eval_with locals ctx e =
  match e with
  | Expr.Const v -> v
  | Idx name -> (
    match List.assoc_opt name ctx.iter with
    | Some i -> Scalar.i32 i
    | None -> err "unbound iteration variable %S" name)
  | Var name -> (
    match List.assoc_opt name locals with
    | Some v -> v
    | None -> err "unbound local variable %S" name)
  | Read (buf, idxs) ->
    ctx.read buf (Array.of_list (List.map (eval_index_with locals ctx) idxs))
  | Binop (op, a, b) -> (
    match op with
    | And ->
      (* short-circuit *)
      if as_bool (eval_with locals ctx a) then eval_with locals ctx b else Scalar.B false
    | Or ->
      if as_bool (eval_with locals ctx a) then Scalar.B true else eval_with locals ctx b
    | _ ->
      let va = eval_with locals ctx a in
      let vb = eval_with locals ctx b in
      apply_binop op va vb)
  | Unop (Neg, a) -> Scalar.neg (eval_with locals ctx a)
  | Unop (Not, a) -> Scalar.B (not (as_bool (eval_with locals ctx a)))
  | If (c, a, b) ->
    if as_bool (eval_with locals ctx c) then eval_with locals ctx a
    else eval_with locals ctx b
  | Let (name, e1, e2) ->
    let v1 = eval_with locals ctx e1 in
    eval_with ((name, v1) :: locals) ctx e2
  | Field (a, name) -> Scalar.field (eval_with locals ctx a) name
  | MkRecord fields ->
    Scalar.R (List.map (fun (name, fe) -> (name, eval_with locals ctx fe)) fields)
  | Cast (ty, a) -> cast_to ty (eval_with locals ctx a)

and apply_binop op va vb =
  match op with
  | Expr.Add -> Scalar.add va vb
  | Sub -> Scalar.sub va vb
  | Mul -> Scalar.mul va vb
  | Div -> Scalar.div va vb
  | Min -> Scalar.min_v va vb
  | Max -> Scalar.max_v va vb
  | Eq -> Scalar.B (Scalar.equal va vb)
  | Ne -> Scalar.B (not (Scalar.equal va vb))
  | Lt -> Scalar.B (Scalar.compare_num va vb < 0)
  | Le -> Scalar.B (Scalar.compare_num va vb <= 0)
  | Gt -> Scalar.B (Scalar.compare_num va vb > 0)
  | Ge -> Scalar.B (Scalar.compare_num va vb >= 0)
  | And | Or -> err "internal: And/Or handled by eval"

and eval_index_with locals ctx e =
  match eval_with locals ctx e with
  | Scalar.I32 x -> Int32.to_int x
  | I64 x -> Int64.to_int x
  | v -> err "index expression evaluated to non-integer %s" (Scalar.value_to_string v)

let eval ctx e = eval_with [] ctx e
let eval_index ctx e = eval_index_with [] ctx e
let eval_indices ctx idxs = Array.of_list (List.map (eval_index ctx) idxs)
