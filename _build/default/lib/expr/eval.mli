(** Big-step evaluation of scalar-function expressions at one iteration
    point. *)

type ctx = {
  iter : (string * int) list;  (** iteration variable bindings *)
  read : string -> int array -> Mdh_tensor.Scalar.value;
      (** buffer element access; raises on unknown buffer / out of bounds *)
}

exception Eval_error of string

val eval : ctx -> Expr.t -> Mdh_tensor.Scalar.value
(** Raises [Eval_error] on unbound variables or dynamic type errors (a
    type-checked expression never raises). *)

val eval_index : ctx -> Expr.t -> int
(** Evaluate an index expression to an int. *)

val eval_indices : ctx -> Expr.t list -> int array
