module Scalar = Mdh_tensor.Scalar

type binop =
  | Add | Sub | Mul | Div
  | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type t =
  | Const of Scalar.value
  | Idx of string
  | Var of string
  | Read of string * t list
  | Binop of binop * t * t
  | Unop of unop * t
  | If of t * t * t
  | Let of string * t * t
  | Field of t * string
  | MkRecord of (string * t) list
  | Cast of Mdh_tensor.Scalar.ty * t

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Min -> "min" | Max -> "max"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let pp_binop ppf op = Format.pp_print_string ppf (binop_symbol op)

let rec pp ppf = function
  | Const v -> Scalar.pp_value ppf v
  | Idx name | Var name -> Format.pp_print_string ppf name
  | Read (buf, idxs) ->
    Format.fprintf ppf "%s[%a]" buf
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp)
      idxs
  | Binop ((Min | Max) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_symbol op) pp a pp b
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp e
  | Unop (Not, e) -> Format.fprintf ppf "(!%a)" pp e
  | If (c, a, b) -> Format.fprintf ppf "(if %a then %a else %a)" pp c pp a pp b
  | Let (name, e, body) -> Format.fprintf ppf "(let %s = %a in %a)" name pp e pp body
  | Field (e, name) -> Format.fprintf ppf "%a.%s" pp e name
  | MkRecord fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (name, e) -> Format.fprintf ppf "%s=%a" name pp e))
      fields
  | Cast (ty, e) -> Format.fprintf ppf "(%a)%a" Scalar.pp_ty ty pp e

let to_string e = Format.asprintf "%a" pp e

let idx name = Idx name
let var name = Var name
let int n = Const (Scalar.i32 n)
let f32 x = Const (Scalar.f32 x)
let f64 x = Const (Scalar.f64 x)
let read buf idxs = Read (buf, idxs)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let if_ c a b = If (c, a, b)
let let_ name e body = Let (name, e, body)
let field e name = Field (e, name)
let cast ty e = Cast (ty, e)

let rec iter_reads e f =
  match e with
  | Const _ | Idx _ | Var _ -> ()
  | Read (buf, idxs) ->
    f buf idxs;
    List.iter (fun i -> iter_reads i f) idxs
  | Binop (_, a, b) ->
    iter_reads a f;
    iter_reads b f
  | Unop (_, a) | Field (a, _) | Cast (_, a) -> iter_reads a f
  | If (c, a, b) ->
    iter_reads c f;
    iter_reads a f;
    iter_reads b f
  | Let (_, e1, e2) ->
    iter_reads e1 f;
    iter_reads e2 f
  | MkRecord fields -> List.iter (fun (_, e) -> iter_reads e f) fields

let free_idx_vars e =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec go = function
    | Idx name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        order := name :: !order
      end
    | Const _ | Var _ -> ()
    | Read (_, idxs) -> List.iter go idxs
    | Binop (_, a, b) -> go a; go b
    | Unop (_, a) | Field (a, _) | Cast (_, a) -> go a
    | If (c, a, b) -> go c; go a; go b
    | Let (_, e1, e2) -> go e1; go e2
    | MkRecord fields -> List.iter (fun (_, e) -> go e) fields
  in
  go e;
  List.rev !order
