(** The pure scalar-function language [SF] of the MDH directive
    (Listing 14, Section 4.2): expressions over iteration indices, buffer
    element reads, local bindings, conditionals and record fields. The
    language is pure by construction — reads are the only interaction with
    buffers and there is no assignment form — which discharges the paper's
    requirement that the loop body "consists of an arbitrary but pure scalar
    function". *)

type binop =
  | Add | Sub | Mul | Div
  | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type t =
  | Const of Mdh_tensor.Scalar.value
  | Idx of string  (** iteration variable, e.g. ["i"] *)
  | Var of string  (** local binding introduced by [Let] *)
  | Read of string * t list  (** buffer element access: name, index exprs *)
  | Binop of binop * t * t
  | Unop of unop * t
  | If of t * t * t
  | Let of string * t * t
  | Field of t * string  (** record field projection *)
  | MkRecord of (string * t) list
  | Cast of Mdh_tensor.Scalar.ty * t  (** numeric conversion *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_binop : Format.formatter -> binop -> unit

(* Convenient constructors for embedded use (see examples/). *)

val idx : string -> t
val var : string -> t
val int : int -> t
val f32 : float -> t
val f64 : float -> t
val read : string -> t list -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val if_ : t -> t -> t -> t
val let_ : string -> t -> t -> t
val field : t -> string -> t
val cast : Mdh_tensor.Scalar.ty -> t -> t

val iter_reads : t -> (string -> t list -> unit) -> unit
(** Visit every [Read] node (including reads nested in index expressions). *)

val free_idx_vars : t -> string list
(** Iteration variables referenced, in first-use order. *)
