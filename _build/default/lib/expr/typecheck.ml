module Scalar = Mdh_tensor.Scalar

type env = {
  iter_vars : string list;
  buffer_ty : string -> Scalar.ty option;
}

type error = { expr : Expr.t; message : string }

let pp_error ppf { expr; message } =
  Format.fprintf ppf "type error in `%a`: %s" Expr.pp expr message

let error expr fmt = Format.kasprintf (fun message -> Error { expr; message }) fmt

let ( let* ) = Result.bind

let is_numeric = function
  | Scalar.Fp32 | Fp64 | Int32 | Int64 -> true
  | Bool | Char | Record _ -> false

let is_integral = function
  | Scalar.Int32 | Int64 -> true
  | Fp32 | Fp64 | Bool | Char | Record _ -> false

let rec infer_with locals env e =
  match e with
  | Expr.Const v -> Ok (Scalar.type_of_value v)
  | Idx name ->
    if List.mem name env.iter_vars then Ok Scalar.Int32
    else error e "unknown iteration variable %S" name
  | Var name -> (
    match List.assoc_opt name locals with
    | Some ty -> Ok ty
    | None -> error e "unbound local variable %S" name)
  | Read (buf, idxs) -> (
    match env.buffer_ty buf with
    | None -> error e "unknown buffer %S" buf
    | Some ty ->
      let* () = check_indices locals env e idxs in
      Ok ty)
  | Binop ((Add | Sub | Mul | Div | Min | Max) as op, a, b) ->
    let* ta = infer_with locals env a in
    let* tb = infer_with locals env b in
    if not (Scalar.equal_ty ta tb) then
      error e "operands of %a have different types (%a vs %a)" Expr.pp_binop op
        Scalar.pp_ty ta Scalar.pp_ty tb
    else if not (is_numeric ta) then
      error e "operands of %a must be numeric, got %a" Expr.pp_binop op Scalar.pp_ty ta
    else Ok ta
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let* ta = infer_with locals env a in
    let* tb = infer_with locals env b in
    if not (Scalar.equal_ty ta tb) then
      error e "operands of %a have different types (%a vs %a)" Expr.pp_binop op
        Scalar.pp_ty ta Scalar.pp_ty tb
    else Ok Scalar.Bool
  | Binop ((And | Or) as op, a, b) ->
    let* ta = infer_with locals env a in
    let* tb = infer_with locals env b in
    if Scalar.equal_ty ta Scalar.Bool && Scalar.equal_ty tb Scalar.Bool then Ok Scalar.Bool
    else error e "operands of %a must be bool" Expr.pp_binop op
  | Unop (Neg, a) ->
    let* ta = infer_with locals env a in
    if is_numeric ta then Ok ta else error e "operand of unary - must be numeric"
  | Unop (Not, a) ->
    let* ta = infer_with locals env a in
    if Scalar.equal_ty ta Scalar.Bool then Ok Scalar.Bool
    else error e "operand of ! must be bool"
  | If (c, a, b) ->
    let* tc = infer_with locals env c in
    if not (Scalar.equal_ty tc Scalar.Bool) then error e "condition must be bool"
    else
      let* ta = infer_with locals env a in
      let* tb = infer_with locals env b in
      if Scalar.equal_ty ta tb then Ok ta
      else
        error e "branches have different types (%a vs %a)" Scalar.pp_ty ta Scalar.pp_ty tb
  | Let (name, e1, e2) ->
    let* t1 = infer_with locals env e1 in
    infer_with ((name, t1) :: locals) env e2
  | Field (a, name) -> (
    let* ta = infer_with locals env a in
    match ta with
    | Record fields -> (
      match List.assoc_opt name fields with
      | Some ty -> Ok ty
      | None -> error e "record has no field %S" name)
    | _ -> error e "field access on non-record type %a" Scalar.pp_ty ta)
  | MkRecord fields ->
    let* tys =
      Mdh_support.Util.list_result_all
        (List.map
           (fun (name, fe) ->
             Result.map (fun ty -> (name, ty)) (infer_with locals env fe))
           fields)
    in
    Ok (Scalar.Record tys)
  | Cast (ty, a) ->
    let* ta = infer_with locals env a in
    if is_numeric ta && is_numeric ty then Ok ty
    else error e "cast requires numeric source and target"

and check_indices locals env ctx idxs =
  let rec loop = function
    | [] -> Ok ()
    | i :: rest ->
      let* ti = infer_with locals env i in
      if is_integral ti then loop rest
      else error ctx "index expression `%a` is not integral (%a)" Expr.pp i Scalar.pp_ty ti
  in
  loop idxs

let infer env e = infer_with [] env e

let check env ~expected e =
  let* ty = infer env e in
  if Scalar.equal_ty ty expected then Ok ()
  else
    error e "expected type %a but expression has type %a" Scalar.pp_ty expected
      Scalar.pp_ty ty
