(** Static typing of scalar-function expressions.

    Iteration variables have type [Int32]; index expressions must be
    integral; arithmetic requires both operands of the same numeric type;
    [And]/[Or] require [Bool]; comparisons yield [Bool]. *)

type env = {
  iter_vars : string list;  (** iteration variable names in scope *)
  buffer_ty : string -> Mdh_tensor.Scalar.ty option;
      (** element type of a buffer, or [None] if unknown *)
}

type error = { expr : Expr.t; message : string }

val pp_error : Format.formatter -> error -> unit

val infer : env -> Expr.t -> (Mdh_tensor.Scalar.ty, error) result
(** Type of a closed expression (no free [Var]s other than [Let]-bound). *)

val check : env -> expected:Mdh_tensor.Scalar.ty -> Expr.t -> (unit, error) result
