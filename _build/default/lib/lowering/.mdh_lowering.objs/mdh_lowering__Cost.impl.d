lib/lowering/cost.ml: Array Float Footprint List Mdh_combine Mdh_core Mdh_machine Mdh_support Mdh_tensor Result Schedule
