lib/lowering/cost.mli: Mdh_core Mdh_machine Schedule
