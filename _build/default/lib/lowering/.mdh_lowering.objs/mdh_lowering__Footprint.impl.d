lib/lowering/footprint.ml: Array Hashtbl List Mdh_combine Mdh_core Mdh_tensor
