lib/lowering/footprint.mli: Mdh_core Mdh_tensor
