lib/lowering/lower.ml: Array Cost Fun List Mdh_combine Mdh_core Mdh_machine Mdh_support Schedule
