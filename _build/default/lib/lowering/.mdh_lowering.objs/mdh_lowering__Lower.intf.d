lib/lowering/lower.mli: Cost Mdh_core Mdh_machine Schedule
