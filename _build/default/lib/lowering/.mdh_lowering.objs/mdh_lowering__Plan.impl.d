lib/lowering/plan.ml: Array Format Fun List Mdh_combine Mdh_core Mdh_machine Schedule String
