lib/lowering/plan.mli: Format Mdh_core Mdh_machine Schedule
