lib/lowering/schedule.ml: Array Format List Mdh_combine Mdh_core Mdh_machine Mdh_support Printf Result String
