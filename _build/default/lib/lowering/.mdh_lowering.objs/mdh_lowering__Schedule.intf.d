lib/lowering/schedule.mli: Format Mdh_core Mdh_machine
