lib/lowering/simulate.ml: Cost Mdh_core Mdh_machine Mdh_tensor Schedule
