lib/lowering/simulate.mli: Cost Mdh_core Mdh_machine Mdh_tensor Schedule
