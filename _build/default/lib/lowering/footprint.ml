module Md_hom = Mdh_core.Md_hom
module Index_fn = Mdh_tensor.Index_fn
module Shape = Mdh_tensor.Shape
module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine

(* Group affine accesses by their coefficient matrix: members differ only in
   offsets, so the union of their images over a box is the per-coordinate
   range [min offset + lo, max offset + hi]. *)
let union_footprint_of_family ~box coords_list =
  (* coords_list: non-empty list of coord arrays sharing coefficients *)
  let arity = Array.length box in
  let representative = List.hd coords_list in
  let n_out = Array.length representative in
  let size = ref 1 in
  for c = 0 to n_out - 1 do
    let lo = ref max_int and hi = ref min_int in
    List.iter
      (fun coords ->
        let { Index_fn.coeffs; offset } = coords.(c) in
        let clo = ref offset and chi = ref offset in
        for d = 0 to arity - 1 do
          let a = coeffs.(d) in
          if a > 0 then chi := !chi + (a * (box.(d) - 1))
          else if a < 0 then clo := !clo + (a * (box.(d) - 1))
        done;
        if !clo < !lo then lo := !clo;
        if !chi > !hi then hi := !chi)
      coords_list;
    size := !size * (!hi - !lo + 1)
  done;
  !size

let access_bytes (input : Md_hom.input) ~box =
  let elem = Scalar.size_bytes input.inp_ty in
  let affine_families = Hashtbl.create 4 in
  let opaque = ref false in
  List.iter
    (fun (a : Md_hom.access) ->
      match a.fn with
      | Index_fn.Affine { coords; _ } ->
        let key = Array.to_list (Array.map (fun c -> Array.to_list c.Index_fn.coeffs) coords) in
        Hashtbl.replace affine_families key
          (coords :: (try Hashtbl.find affine_families key with Not_found -> []))
      | Index_fn.Opaque _ -> opaque := true)
    input.accesses;
  if !opaque then Shape.num_elements input.inp_shape * elem
  else begin
    let elements =
      Hashtbl.fold
        (fun _ family acc -> acc + union_footprint_of_family ~box family)
        affine_families 0
    in
    (* never more than the buffer itself *)
    min elements (Shape.num_elements input.inp_shape) * elem
  end

let tile_input_bytes (md : Md_hom.t) ~box =
  List.fold_left (fun acc input -> acc + access_bytes input ~box) 0 md.inputs

let tile_output_bytes (md : Md_hom.t) ~box =
  (* per-tile result extent: collapsed dims produce one cell per tile *)
  let result_cells =
    Array.to_list md.combine_ops
    |> List.mapi (fun d op -> Combine.result_extent op box.(d))
    |> List.fold_left ( * ) 1
  in
  List.fold_left
    (fun acc (o : Md_hom.output) -> acc + (result_cells * Scalar.size_bytes o.out_ty))
    0 md.outputs

let naive_read_bytes (md : Md_hom.t) =
  float_of_int (Md_hom.total_points md) *. float_of_int (Md_hom.bytes_read_per_point md)

let compulsory_bytes (md : Md_hom.t) =
  float_of_int (Md_hom.input_bytes md + Md_hom.bytes_written md)
