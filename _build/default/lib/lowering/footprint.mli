(** Working-set (footprint) analysis of buffer accesses over tile boxes —
    the data-movement half of the cost model. *)

val access_bytes :
  Mdh_core.Md_hom.input -> box:Mdh_tensor.Shape.t -> int
(** Bytes of this input buffer touched by one tile of extents [box]:
    the union over the buffer's accesses. Accesses sharing coefficient
    vectors (a stencil family differing only in offsets) are unioned
    exactly; unrelated accesses are summed (conservative). Opaque accesses
    fall back to the whole buffer. *)

val tile_input_bytes : Mdh_core.Md_hom.t -> box:Mdh_tensor.Shape.t -> int
(** Total input working set of one tile. *)

val tile_output_bytes : Mdh_core.Md_hom.t -> box:Mdh_tensor.Shape.t -> int
(** Output cells written by one tile (after per-tile combination). *)

val naive_read_bytes : Mdh_core.Md_hom.t -> float
(** Traffic when every textual access misses: points x bytes per point. *)

val compulsory_bytes : Mdh_core.Md_hom.t -> float
(** Lower bound: every input buffer element read once, every output written
    once. *)
