module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device
module Util = Mdh_support.Util

let all_layers (dev : Device.t) = List.init (Array.length dev.layers) Fun.id

let parallelisable_dims (md : Md_hom.t) =
  List.filter
    (fun d -> Combine.parallelisable md.combine_ops.(d))
    (List.init (Md_hom.rank md) Fun.id)

let mdh_default (md : Md_hom.t) (dev : Device.t) =
  (* choose a uniform power-of-two tile so that the working set roughly fits
     the innermost cache *)
  let cache = (Device.innermost_cache dev).Device.capacity_bytes in
  let bytes_per_point = max 4 (Md_hom.bytes_read_per_point md) in
  let rank = Md_hom.rank md in
  let budget_points = max 1 (cache / bytes_per_point) in
  let per_dim =
    int_of_float (float_of_int budget_points ** (1.0 /. float_of_int (max 1 rank)))
  in
  let tile d =
    let cap = max 1 per_dim in
    let rec pow2 p = if p * 2 <= cap then pow2 (p * 2) else p in
    min md.sizes.(d) (pow2 1)
  in
  { Schedule.tile_sizes = Array.init rank tile;
    parallel_dims = parallelisable_dims md;
    used_layers = all_layers dev }

let tile_options (md : Md_hom.t) ~dim =
  let extent = md.sizes.(dim) in
  List.sort_uniq compare (extent :: Util.pow2_up_to extent)

let parallel_dim_options (md : Md_hom.t) =
  let dims = parallelisable_dims md in
  let n = List.length dims in
  if n = 0 then [ [] ]
  else begin
    let dims = Array.of_list dims in
    let cap = min (1 lsl n) 4096 in
    let subsets = ref [] in
    for mask = 1 to cap - 1 do
      let subset = ref [] in
      for b = n - 1 downto 0 do
        if mask land (1 lsl b) <> 0 then subset := dims.(b) :: !subset
      done;
      subsets := !subset :: !subsets
    done;
    List.sort
      (fun a b -> compare (List.length b, a) (List.length a, b))
      !subsets
  end

let best_of md dev cg schedules =
  List.fold_left
    (fun best sched ->
      match Cost.seconds md dev cg sched with
      | Error _ -> best
      | Ok s -> (
        match best with
        | Some (_, s') when s' <= s -> best
        | _ -> Some (sched, s)))
    None schedules
