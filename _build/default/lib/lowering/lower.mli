(** Schedule construction: heuristic defaults and the candidate space
    searched by the auto-tuner.

    [mdh_default] mirrors what the MDH pipeline does before tuning: tile all
    dimensions to a modest cache block, parallelise every parallelisable
    dimension, use every device layer. [candidate_space] enumerates the
    tuning parameters (per-dimension tile sizes, parallel-dimension subsets)
    that [Mdh_atf] searches. *)

val parallelisable_dims : Mdh_core.Md_hom.t -> int list
(** Dimensions whose combine operator permits parallelisation: all [cc]
    dimensions plus reductions with associative customising functions. *)

val mdh_default : Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> Schedule.t
(** Heuristic schedule: power-of-two tiles sized to the innermost cache,
    all parallelisable dimensions parallel, all layers used. *)

val tile_options : Mdh_core.Md_hom.t -> dim:int -> int list
(** Candidate tile sizes for one dimension: powers of two up to the extent,
    plus the extent itself. *)

val parallel_dim_options : Mdh_core.Md_hom.t -> int list list
(** Candidate parallel-dimension subsets: every subset of the
    parallelisable dimensions that contains at least one dimension (when one
    exists), largest subsets first. Exponential in rank but rank <= 10 for
    the paper's workloads; capped at 4096 subsets. *)

val best_of :
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Cost.codegen ->
  Schedule.t list ->
  (Schedule.t * float) option
(** Pick the cheapest legal schedule by the cost model. *)
