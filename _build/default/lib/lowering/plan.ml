module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device

type level =
  | Distribute of { dims : int list; over : string; units : int; points : int }
  | Tree_reduce of { dim : int; op : string; items : int }
  | Tile of { dim : int; tile : int; extent : int }
  | Seq of { dim : int; extent : int }
  | Accumulate of { dim : int; op : string; extent : int }
  | Scan of { dim : int; op : string; extent : int }

type t = {
  levels : level list;
  point_flops : int;
}

let build (md : Md_hom.t) (dev : Device.t) sched =
  match Schedule.legal md dev sched with
  | Error _ as e -> e
  | Ok () ->
    let sched = Schedule.clamp md sched in
    let rank = Md_hom.rank md in
    let parallel d = List.mem d sched.Schedule.parallel_dims in
    let par_cc =
      List.filter
        (fun d -> parallel d && not (Combine.is_reduction md.combine_ops.(d)))
        (List.init rank Fun.id)
    in
    let layer_names =
      match sched.Schedule.used_layers with
      | [] -> "host"
      | layers ->
        String.concat "+"
          (List.map (fun l -> dev.Device.layers.(l).Device.layer_name) layers)
    in
    let units =
      List.fold_left
        (fun acc l -> acc * dev.Device.layers.(l).Device.max_units)
        1 sched.Schedule.used_layers
    in
    let tree_dim =
      List.find_opt
        (fun d ->
          parallel d
          && match md.combine_ops.(d) with Combine.Pw _ -> true | _ -> false)
        (List.init rank Fun.id)
    in
    let distribute =
      if par_cc = [] then []
      else
        [ Distribute
            { dims = par_cc; over = layer_names; units;
              points = List.fold_left (fun acc d -> acc * md.sizes.(d)) 1 par_cc } ]
    in
    let tree =
      match tree_dim with
      | Some d ->
        [ Tree_reduce
            { dim = d; op = Combine.name md.combine_ops.(d);
              items = min 256 md.sizes.(d) } ]
      | None -> []
    in
    let sequential =
      List.concat_map
        (fun d ->
          if parallel d && (List.mem d par_cc || Some d = tree_dim) then []
          else
            let extent = md.sizes.(d) in
            let tile = sched.Schedule.tile_sizes.(d) in
            match md.combine_ops.(d) with
            | Combine.Cc ->
              if tile < extent then [ Tile { dim = d; tile; extent }; Seq { dim = d; extent = tile } ]
              else [ Seq { dim = d; extent } ]
            | Combine.Pw fn ->
              [ Accumulate { dim = d; op = "pw(" ^ fn.Combine.fn_name ^ ")"; extent } ]
            | Combine.Ps fn ->
              [ Scan { dim = d; op = "ps(" ^ fn.Combine.fn_name ^ ")"; extent } ])
        (List.init rank Fun.id)
    in
    Ok { levels = distribute @ tree @ sequential; point_flops = Md_hom.flops_per_point md }

let pp_level ppf level =
  match level with
  | Distribute { dims; over; units; points } ->
    Format.fprintf ppf "distribute dims [%s] (%d points) over %s (%d units)"
      (String.concat "," (List.map string_of_int dims))
      points over units
  | Tree_reduce { dim; op; items } ->
    Format.fprintf ppf "tree-reduce dim %d with %s (%d cooperating items)" dim op items
  | Tile { dim; tile; extent } ->
    Format.fprintf ppf "tile dim %d: %d-element cache blocks of %d" dim tile extent
  | Seq { dim; extent } -> Format.fprintf ppf "for dim %d in 0..%d" dim extent
  | Accumulate { dim; op; extent } ->
    Format.fprintf ppf "accumulate dim %d with %s over %d" dim op extent
  | Scan { dim; op; extent } ->
    Format.fprintf ppf "scan dim %d with %s over %d" dim op extent

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i level ->
      Format.fprintf ppf "%s%a@," (String.make (2 * i) ' ') pp_level level)
    t.levels;
  Format.fprintf ppf "%spoint: scalar function (%d ops)@]"
    (String.make (2 * List.length t.levels) ' ')
    t.point_flops

let parallelism t =
  List.fold_left
    (fun acc level ->
      match level with
      | Tree_reduce { items; _ } -> acc * items
      | Distribute { units; points; _ } -> acc * min units points
      | Tile _ | Seq _ | Accumulate _ | Scan _ -> acc)
    1 t.levels

let depth t = List.length t.levels + 1
