(** The low-level execution plan: a descriptive IR of how a schedule
    decomposes a computation — the reproduction's counterpart of the MDH
    formalism's *low-level program representation* (paper footnote 5),
    which records the de/re-composition structure the lowering chose.

    The plan is a nest of levels, outermost first: parallel distribution of
    concatenation dimensions over device layers, cooperative tree reduction
    for a parallelised [pw] dimension, cache-tiled or plain sequential
    loops, accumulation for sequential reductions, running scans for [ps],
    and the point computation at the leaf. The same structure drives the
    kernel generator and the simulator; here it is materialised for
    inspection ([mdhc show --plan]) and testing. *)

type level =
  | Distribute of { dims : int list; over : string; units : int; points : int }
      (** cc dims linearised across a device layer *)
  | Tree_reduce of { dim : int; op : string; items : int }
      (** cooperative tree reduction over work items *)
  | Tile of { dim : int; tile : int; extent : int }
      (** cache-tile loop pair *)
  | Seq of { dim : int; extent : int }
      (** plain sequential loop *)
  | Accumulate of { dim : int; op : string; extent : int }
      (** sequential reduction fold *)
  | Scan of { dim : int; op : string; extent : int }
      (** running prefix scan *)

type t = {
  levels : level list;  (** outermost first *)
  point_flops : int;  (** scalar-function cost at the leaf *)
}

val build : Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> Schedule.t -> (t, string) result
(** Fails iff the schedule is illegal. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering. *)

val parallelism : t -> int
(** Product of distributed/tree-reduced extents — the concurrency the plan
    exposes. *)

val depth : t -> int
