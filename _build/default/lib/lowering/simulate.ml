module Semantics = Mdh_core.Semantics
module Roofline = Mdh_machine.Roofline

type run = {
  env : Mdh_tensor.Buffer.env;
  estimated_s : float;
  analysis : Cost.analysis;
}

let run ?include_transfers md dev cg sched env =
  match Cost.analyse ?include_transfers md dev cg sched with
  | Error _ as e -> e
  | Ok analysis ->
    let sched = Schedule.clamp md sched in
    let env = Semantics.eval_tiled md env ~tile_sizes:sched.Schedule.tile_sizes in
    Ok { env; estimated_s = analysis.breakdown.Roofline.total_s; analysis }
