(** Functional execution of a scheduled computation.

    Executes the computation tile-by-tile exactly as the schedule prescribes
    (via the decomposition-law evaluator), so any legal schedule — whatever
    its tile sizes or parallel dimensions — provably computes the reference
    result. Returns both the result environment and the cost model's time
    estimate, the simulated counterpart of a timed run on the real device. *)

type run = {
  env : Mdh_tensor.Buffer.env;  (** inputs extended with computed outputs *)
  estimated_s : float;  (** cost-model wall-clock estimate *)
  analysis : Cost.analysis;
}

val run :
  ?include_transfers:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Cost.codegen ->
  Schedule.t ->
  Mdh_tensor.Buffer.env ->
  (run, string) result
(** Fails iff the schedule is illegal. *)
