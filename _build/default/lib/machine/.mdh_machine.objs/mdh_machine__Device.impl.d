lib/machine/device.ml: Array Format String
