lib/machine/device.mli: Format
