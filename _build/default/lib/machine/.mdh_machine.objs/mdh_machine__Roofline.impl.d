lib/machine/roofline.ml: Array Device Float Format Printf String
