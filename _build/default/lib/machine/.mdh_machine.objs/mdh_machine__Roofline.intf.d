lib/machine/roofline.mli: Device Format
