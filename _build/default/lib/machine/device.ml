type kind = Gpu | Cpu

type layer = {
  layer_name : string;
  max_units : int;
}

type mem_level = {
  level_name : string;
  capacity_bytes : int;
  bandwidth_gbs : float;
}

type t = {
  device_name : string;
  kind : kind;
  layers : layer array;
  peak_gflops : float;
  mem : mem_level array;
  link_gbs : float option;
  launch_overhead_s : float;
  saturation_units : int;
  min_bw_fraction : float;
  compute_saturation_units : int;
}

let a100_like =
  { device_name = "a100_like";
    kind = Gpu;
    layers =
      [| { layer_name = "blocks"; max_units = 108 * 2 };
         (* 2 resident blocks per SM as a throughput proxy *)
         { layer_name = "threads"; max_units = 1024 } |];
    peak_gflops = 19500.0;
    mem =
      [| { level_name = "HBM"; capacity_bytes = 40 * 1024 * 1024 * 1024; bandwidth_gbs = 1555.0 };
         { level_name = "L2"; capacity_bytes = 40 * 1024 * 1024; bandwidth_gbs = 4500.0 };
         { level_name = "L1"; capacity_bytes = 192 * 1024; bandwidth_gbs = 19400.0 } |];
    link_gbs = Some 16.0;
    launch_overhead_s = 5e-6;
    saturation_units = 22000;
    min_bw_fraction = 0.005 (* a single warp stream *);
    compute_saturation_units = 108 * 512 (* ~25% occupancy saturates ILP *) }

let xeon6140_like =
  { device_name = "xeon6140_like";
    kind = Cpu;
    layers =
      [| { layer_name = "cores"; max_units = 18 };
         { layer_name = "simd"; max_units = 16 } |];
    peak_gflops = 2649.0;
    (* 18 cores * 2.3 GHz AVX-512 base * 2 FMA * 16 lanes * 2 ops *)
    mem =
      [| { level_name = "DRAM"; capacity_bytes = 256 * 1024 * 1024 * 1024; bandwidth_gbs = 119.0 };
         { level_name = "L2+L3"; capacity_bytes = 24 * 1024 * 1024; bandwidth_gbs = 900.0 };
         { level_name = "L1"; capacity_bytes = 32 * 1024; bandwidth_gbs = 4000.0 } |];
    link_gbs = None;
    launch_overhead_s = 2e-6;
    saturation_units = 8 (* ~8 concurrent streams fill the socket *);
    min_bw_fraction = 0.125 (* one core's streaming share *);
    compute_saturation_units = 18 * 16 (* every lane must be busy *) }

let total_parallelism t = Array.fold_left (fun acc l -> acc * l.max_units) 1 t.layers

let top_level t =
  if Array.length t.mem = 0 then invalid_arg "Device.top_level: no memory levels";
  t.mem.(0)

let innermost_cache t =
  if Array.length t.mem = 0 then invalid_arg "Device.innermost_cache: no memory levels";
  t.mem.(Array.length t.mem - 1)

let find_layer t name =
  match Array.find_index (fun l -> String.equal l.layer_name name) t.layers with
  | Some i -> i
  | None -> raise Not_found

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (%s):@," t.device_name
    (match t.kind with Gpu -> "GPU" | Cpu -> "CPU");
  Format.fprintf ppf "  peak %.0f GFLOP/s, parallelism %d@," t.peak_gflops
    (total_parallelism t);
  Array.iter
    (fun l -> Format.fprintf ppf "  layer %s: %d units@," l.layer_name l.max_units)
    t.layers;
  Array.iter
    (fun m ->
      Format.fprintf ppf "  mem %s: %d bytes, %.0f GB/s@," m.level_name m.capacity_bytes
        m.bandwidth_gbs)
    t.mem;
  (match t.link_gbs with
  | Some b -> Format.fprintf ppf "  host link: %.0f GB/s@," b
  | None -> ());
  Format.fprintf ppf "@]"
