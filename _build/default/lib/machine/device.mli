(** Abstract parallel machine descriptions.

    The paper evaluates on an NVIDIA A100-PCIE-40GB and an Intel Xeon Gold
    6140 (Section 5.1). Neither is available in this reproduction, so both
    are modelled as parametric abstract machines: a hierarchy of parallel
    layers (how many units can work concurrently at each nesting level) and
    a memory hierarchy (capacity and bandwidth per level), with published
    datasheet numbers. The analytic cost model ({!Roofline}, and
    [Mdh_lowering.Cost]) charges work and traffic against these parameters;
    Figure 4's *relative* results derive from capability differences between
    schedules, not from absolute calibration. *)

type kind = Gpu | Cpu

type layer = {
  layer_name : string;  (** e.g. "blocks", "threads", "cores", "simd" *)
  max_units : int;  (** concurrent units at this layer *)
}

type mem_level = {
  level_name : string;  (** e.g. "DRAM", "L2", "L1" *)
  capacity_bytes : int;  (** capacity of one instance of this level *)
  bandwidth_gbs : float;  (** aggregate bandwidth to the level above *)
}

type t = {
  device_name : string;
  kind : kind;
  layers : layer array;  (** outermost parallel layer first *)
  peak_gflops : float;  (** fp32 peak, fused-multiply-add counted as 2 ops *)
  mem : mem_level array;  (** outermost (DRAM) first; at least one level *)
  link_gbs : float option;  (** host link (PCIe) bandwidth, GPUs only *)
  launch_overhead_s : float;  (** kernel-launch / parallel-region entry cost *)
  saturation_units : int;
      (** concurrent work items needed to saturate DRAM bandwidth; schedules
          exposing less parallelism than this see proportionally reduced
          effective bandwidth (memory-level parallelism) *)
  min_bw_fraction : float;
      (** bandwidth fraction available to even a single work item (one core /
          one warp keeps its own stream going) *)
  compute_saturation_units : int;
      (** concurrent units needed to saturate the compute pipelines: GPUs
          reach near-peak ILP well below full occupancy, CPUs need every
          lane busy *)
}

val a100_like : t
(** NVIDIA A100-PCIE-40GB datasheet model: 108 SMs x 2048 resident threads,
    19.5 TFLOP/s fp32, 1555 GB/s HBM2e, 40 MB L2, 192 KB L1/shared per SM,
    PCIe gen4 x16. *)

val xeon6140_like : t
(** Intel Xeon Gold 6140 datasheet model: 18 cores x AVX-512 (16 fp32 lanes,
    2 FMA units), ~2.6 TFLOP/s fp32 at AVX-512 base clock, ~120 GB/s DRAM,
    24.75 MB L3(+L2), 32 KB L1 per core. *)

val total_parallelism : t -> int
(** Product of [max_units] over all layers. *)

val top_level : t -> mem_level
(** The DRAM level. *)

val innermost_cache : t -> mem_level
(** The innermost (fastest, smallest) cache level. *)

val find_layer : t -> string -> int
(** Index of a layer by name; raises [Not_found]. *)

val pp : Format.formatter -> t -> unit
