type stats = {
  flops : float;
  level_bytes : float array;
  link_bytes : float;
  launches : int;
  serial_ops : float;
}

let zero_stats n_levels =
  { flops = 0.0; level_bytes = Array.make n_levels 0.0; link_bytes = 0.0;
    launches = 0; serial_ops = 0.0 }

type efficiency = {
  parallel_fraction : float;
  compute_efficiency : float;
  bandwidth_efficiency : float;
}

let ideal =
  { parallel_fraction = 1.0; compute_efficiency = 1.0; bandwidth_efficiency = 1.0 }

type breakdown = {
  compute_s : float;
  memory_s : float array;
  link_s : float;
  serial_s : float;
  overhead_s : float;
  total_s : float;
}

let estimate (dev : Device.t) eff stats =
  let clamp01 ~what x =
    if x <= 0.0 || x > 1.0 then
      invalid_arg (Printf.sprintf "Roofline.estimate: %s must be in (0,1], got %g" what x)
    else x
  in
  let pf = clamp01 ~what:"parallel_fraction" eff.parallel_fraction in
  let ce = clamp01 ~what:"compute_efficiency" eff.compute_efficiency in
  let be = clamp01 ~what:"bandwidth_efficiency" eff.bandwidth_efficiency in
  let effective_gflops = dev.peak_gflops *. pf *. ce in
  let compute_s = stats.flops /. (effective_gflops *. 1e9) in
  if Array.length stats.level_bytes <> Array.length dev.mem then
    invalid_arg "Roofline.estimate: stats levels do not match device memory levels";
  let memory_s =
    Array.mapi
      (fun i bytes -> bytes /. (dev.mem.(i).Device.bandwidth_gbs *. be *. 1e9))
      stats.level_bytes
  in
  let link_s =
    match dev.link_gbs with
    | Some gbs when stats.link_bytes > 0.0 -> stats.link_bytes /. (gbs *. 1e9)
    | _ -> 0.0
  in
  (* serial work runs on a single unit at scalar throughput: one unit's share
     of the device peak *)
  let single_unit_gflops =
    dev.peak_gflops /. float_of_int (Device.total_parallelism dev)
  in
  let serial_s = stats.serial_ops /. (single_unit_gflops *. ce *. 1e9) in
  let overhead_s = float_of_int stats.launches *. dev.launch_overhead_s in
  let roof = Array.fold_left Float.max compute_s memory_s in
  { compute_s; memory_s; link_s; serial_s; overhead_s;
    total_s = roof +. serial_s +. link_s +. overhead_s }

let pp_breakdown ppf b =
  Format.fprintf ppf
    "total %.3gs (compute %.3g, mem [%s], link %.3g, serial %.3g, overhead %.3g)"
    b.total_s b.compute_s
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3g") b.memory_s)))
    b.link_s b.serial_s b.overhead_s
