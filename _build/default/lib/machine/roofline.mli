(** Roofline-style execution-time estimation.

    An execution is summarised by {!stats} — operation count, the traffic
    observed at each memory-level boundary, host-link transfers, and launch
    count — together with efficiency factors describing how well the schedule
    exploits the device (parallel utilisation, SIMD efficiency, pipeline
    efficiency). The estimated time is the maximum of the compute and
    per-level memory times (overlapped), plus serial overheads. *)

type stats = {
  flops : float;  (** scalar operations performed (including combine steps) *)
  level_bytes : float array;
      (** traffic crossing into each memory level, indexed as [Device.mem]
          (element 0 = DRAM traffic) *)
  link_bytes : float;  (** host<->device transfer bytes (0 when unused) *)
  launches : int;  (** kernel launches / parallel-region entries *)
  serial_ops : float;
      (** operations that cannot be parallelised (e.g. a serialised
          reduction executed by one unit) *)
}

val zero_stats : int -> stats
(** [zero_stats n_levels] *)

type efficiency = {
  parallel_fraction : float;
      (** effective fraction of the device's parallel units kept busy,
          in (0, 1]; the compute roof is scaled by it *)
  compute_efficiency : float;
      (** pipeline/ILP efficiency of the generated inner loop, in (0, 1] *)
  bandwidth_efficiency : float;  (** achieved fraction of peak bandwidth *)
}

val ideal : efficiency

type breakdown = {
  compute_s : float;
  memory_s : float array;  (** per memory level *)
  link_s : float;
  serial_s : float;
  overhead_s : float;
  total_s : float;
}

val estimate : Device.t -> efficiency -> stats -> breakdown
(** [total_s = max(compute, memory levels...) + serial + link + overhead]. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
