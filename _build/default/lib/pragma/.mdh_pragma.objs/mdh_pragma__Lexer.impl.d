lib/pragma/lexer.ml: Format List Printf Stdlib String Token
