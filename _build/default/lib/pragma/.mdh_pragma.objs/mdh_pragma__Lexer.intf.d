lib/pragma/lexer.mli: Format Token
