lib/pragma/parser.ml: Array Format Lexer List Mdh_combine Mdh_directive Mdh_expr Mdh_tensor Option String Token
