lib/pragma/parser.mli: Format Mdh_directive Token
