lib/pragma/token.ml: Format Printf
