lib/pragma/token.mli: Format
