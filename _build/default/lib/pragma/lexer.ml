type error = { pos : Token.pos; message : string }

let pp_error ppf { pos; message } =
  Format.fprintf ppf "lexical error at %a: %s" Token.pp_pos pos message

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { Token.line = st.line; col = st.col }

let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let lex_while st p =
  let start = st.offset in
  while (match peek st with Some c -> p c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.offset - start)

exception Error of error

let fail st fmt =
  Format.kasprintf (fun message -> raise (Error { pos = pos st; message })) fmt

(* after '#': expect "pragma" ws "mdh" *)
let lex_pragma st =
  advance st (* '#' *);
  let word1 = lex_while st is_ident in
  if word1 <> "pragma" then fail st "expected 'pragma' after '#', got %S" word1;
  while peek st = Some ' ' || peek st = Some '\t' do
    advance st
  done;
  let word2 = lex_while st is_ident in
  if word2 <> "mdh" then fail st "expected 'mdh' after '#pragma', got %S" word2;
  Token.Pragma_mdh

let lex_number st =
  let start_pos = pos st in
  let integral = lex_while st is_digit in
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) -> false
    | (Some ('e' | 'E') | Some _ | None), _ -> (
      match peek st with Some ('e' | 'E') -> true | _ -> false)
  in
  if is_float then begin
    let buf = Stdlib.Buffer.create 16 in
    Stdlib.Buffer.add_string buf integral;
    if peek st = Some '.' then begin
      Stdlib.Buffer.add_char buf '.';
      advance st;
      Stdlib.Buffer.add_string buf (lex_while st is_digit)
    end;
    (match peek st with
    | Some ('e' | 'E') ->
      Stdlib.Buffer.add_char buf 'e';
      advance st;
      (match peek st with
      | Some (('+' | '-') as sign) ->
        Stdlib.Buffer.add_char buf sign;
        advance st
      | _ -> ());
      Stdlib.Buffer.add_string buf (lex_while st is_digit)
    | _ -> ());
    match float_of_string_opt (Stdlib.Buffer.contents buf) with
    | Some x -> Token.Float_lit x
    | None ->
      raise
        (Error { pos = start_pos;
                 message = Printf.sprintf "malformed float literal %S" (Stdlib.Buffer.contents buf) })
  end
  else
    match int_of_string_opt integral with
    | Some n -> Token.Int_lit n
    | None ->
      raise
        (Error
           { pos = start_pos;
             message = Printf.sprintf "malformed integer literal %S" integral })

let keyword = function
  | "for" -> Some Token.Kw_for
  | "let" -> Some Token.Kw_let
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | _ -> None

let next_token st =
  let p = pos st in
  let single tok = advance st; tok in
  let double tok = advance st; advance st; tok in
  let token =
    match peek st with
    | None -> Token.Eof
    | Some '#' -> lex_pragma st
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> (
      let word = lex_while st is_ident in
      match keyword word with Some kw -> kw | None -> Token.Ident word)
    | Some '(' -> single Token.Lparen
    | Some ')' -> single Token.Rparen
    | Some '[' -> single Token.Lbracket
    | Some ']' -> single Token.Rbracket
    | Some '{' -> single Token.Lbrace
    | Some '}' -> single Token.Rbrace
    | Some ',' -> single Token.Comma
    | Some ';' -> single Token.Semicolon
    | Some ':' -> single Token.Colon
    | Some '.' -> single Token.Dot
    | Some '?' -> single Token.Question
    | Some '+' -> if peek2 st = Some '+' then double Token.Plus_plus else single Token.Plus
    | Some '-' -> single Token.Minus
    | Some '*' -> single Token.Star
    | Some '/' -> single Token.Slash
    | Some '<' -> if peek2 st = Some '=' then double Token.Le else single Token.Lt
    | Some '>' -> if peek2 st = Some '=' then double Token.Ge else single Token.Gt
    | Some '=' -> if peek2 st = Some '=' then double Token.Eq_eq else single Token.Assign
    | Some '!' ->
      if peek2 st = Some '=' then double Token.Bang_eq else single Token.Bang
    | Some '&' ->
      if peek2 st = Some '&' then double Token.Amp_amp
      else fail st "unexpected '&' (did you mean '&&'?)"
    | Some '|' ->
      if peek2 st = Some '|' then double Token.Pipe_pipe
      else fail st "unexpected '|' (did you mean '||'?)"
    | Some c -> fail st "unexpected character %C" c
  in
  { Token.token; pos = p }

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '\\', Some '\n' ->
    (* pragma line continuation *)
    advance st;
    advance st;
    skip_trivia st
  | Some '/', Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/', Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | None, _ -> fail st "unterminated block comment"
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | _ -> ()

let tokenize src =
  let st = { src; offset = 0; line = 1; col = 1 } in
  try
    let acc = ref [] in
    let continue = ref true in
    while !continue do
      skip_trivia st;
      let tok = next_token st in
      acc := tok :: !acc;
      if tok.Token.token = Token.Eof then continue := false
    done;
    Ok (List.rev !acc)
  with Error e -> Error e
