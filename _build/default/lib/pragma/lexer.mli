(** Hand-written lexer for the [#pragma mdh] surface language. Handles
    [//] line comments, [/* */] block comments and line continuations in
    pragma lines. *)

type error = { pos : Token.pos; message : string }

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> (Token.spanned list, error) result
(** The token list always ends with [Eof]. *)
