type pos = { line : int; col : int }

type t =
  | Pragma_mdh
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Kw_for | Kw_let | Kw_if | Kw_else | Kw_true | Kw_false
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Comma | Semicolon | Colon | Dot | Assign
  | Plus | Minus | Star | Slash
  | Lt | Le | Gt | Ge | Eq_eq | Bang_eq
  | Amp_amp | Pipe_pipe | Bang
  | Question
  | Plus_plus
  | Eof

type spanned = { token : t; pos : pos }

let describe = function
  | Pragma_mdh -> "#pragma mdh"
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Float_lit x -> Printf.sprintf "float %g" x
  | Kw_for -> "'for'"
  | Kw_let -> "'let'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_true -> "'true'"
  | Kw_false -> "'false'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Semicolon -> "';'"
  | Colon -> "':'"
  | Dot -> "'.'"
  | Assign -> "'='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Eq_eq -> "'=='"
  | Bang_eq -> "'!='"
  | Amp_amp -> "'&&'"
  | Pipe_pipe -> "'||'"
  | Bang -> "'!'"
  | Question -> "'?'"
  | Plus_plus -> "'++'"
  | Eof -> "end of input"

let pp_pos ppf { line; col } = Format.fprintf ppf "line %d, column %d" line col
