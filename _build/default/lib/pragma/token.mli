(** Tokens of the textual [#pragma mdh] surface language (the Section 8
    future-work direction: the MDH directive as a pragma over C-style loop
    nests). *)

type pos = { line : int; col : int }

type t =
  | Pragma_mdh  (** [#pragma mdh] *)
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Kw_for | Kw_let | Kw_if | Kw_else | Kw_true | Kw_false
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Comma | Semicolon | Colon | Dot | Assign
  | Plus | Minus | Star | Slash
  | Lt | Le | Gt | Ge | Eq_eq | Bang_eq
  | Amp_amp | Pipe_pipe | Bang
  | Question
  | Plus_plus
  | Eof

type spanned = { token : t; pos : pos }

val describe : t -> string
val pp_pos : Format.formatter -> pos -> unit
