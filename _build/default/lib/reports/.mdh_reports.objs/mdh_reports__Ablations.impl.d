lib/reports/ablations.ml: Array List Mdh_atf Mdh_baselines Mdh_core Mdh_lowering Mdh_machine Mdh_support Mdh_workloads Printf Report
