lib/reports/ablations.mli: Mdh_support
