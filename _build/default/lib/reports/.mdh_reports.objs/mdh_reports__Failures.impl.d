lib/reports/failures.ml: List Mdh_baselines Mdh_machine Mdh_support Mdh_workloads Report
