lib/reports/failures.mli: Mdh_support
