lib/reports/figure3.ml: List Mdh_core Mdh_support Mdh_workloads Printf Report String
