lib/reports/figure3.mli: Mdh_support
