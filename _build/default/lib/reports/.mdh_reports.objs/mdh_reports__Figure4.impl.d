lib/reports/figure4.ml: List Mdh_baselines Mdh_core Mdh_machine Mdh_support Mdh_workloads Printf Report
