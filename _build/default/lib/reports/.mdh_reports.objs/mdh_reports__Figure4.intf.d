lib/reports/figure4.mli: Mdh_machine Mdh_support
