lib/reports/portability.ml: Float Fun List Mdh_baselines Mdh_machine Mdh_support Mdh_workloads Printf Report
