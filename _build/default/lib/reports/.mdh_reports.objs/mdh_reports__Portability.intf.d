lib/reports/portability.mli: Mdh_support
