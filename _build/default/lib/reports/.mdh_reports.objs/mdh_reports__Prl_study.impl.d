lib/reports/prl_study.ml: List Mdh_baselines Mdh_lowering Mdh_machine Mdh_support Mdh_workloads Report
