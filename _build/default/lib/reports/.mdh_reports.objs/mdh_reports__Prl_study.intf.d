lib/reports/prl_study.mli: Mdh_support
