lib/reports/report.ml: List Mdh_baselines Mdh_machine Mdh_workloads Printf
