lib/reports/report.mli: Mdh_baselines Mdh_core Mdh_machine Mdh_workloads
