lib/reports/transfer_study.ml: List Mdh_baselines Mdh_core Mdh_lowering Mdh_machine Mdh_support Mdh_workloads Printf Report
