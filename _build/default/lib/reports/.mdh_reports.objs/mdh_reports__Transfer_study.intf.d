lib/reports/transfer_study.mli: Mdh_support
