(* Ablation studies for the design choices DESIGN.md calls out:

   - openacc_tiling: the Section 5.2 CCSD(T) narrative — OpenACC untiled vs
     manual tile-directive variants vs MDH (>150x and ~60x in the paper);
   - tiling: MDH with and without cache tiling, per workload;
   - reduction_parallel: MDH with and without reduction-dimension
     parallelisation (the core "reduction-aware" claim);
   - tuning_budget: tuned quality as a function of the search budget. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Lower = Mdh_lowering.Lower
module Table = Mdh_support.Table

let gpu = Device.a100_like
let cpu = Device.xeon6140_like

let openacc_tiling_table () =
  let md = Report.md_of Mdh_workloads.Ccsdt.ccsdt "1" in
  let mdh = Report.mdh_seconds md gpu in
  let table = Table.create ~headers:[ "Variant"; "time"; "slower than MDH" ] in
  let add name seconds =
    Table.add_row table
      [ name; Report.time_str seconds; Report.speedup_str (seconds /. mdh) ]
  in
  add "MDH (auto-tuned)" mdh;
  (match Mdh_baselines.Openacc.system.Common.compile ~tuned:false md gpu with
  | Ok o -> add "OpenACC, no tiling" (Common.seconds o)
  | Error f -> failwith (Common.failure_to_string f));
  (* manual tile choices a user might try, as the paper describes: from a
     seemingly-safe single-loop tile, through a uniform guess, to the tiles
     found by trial and error (here: by searching tile sizes while keeping
     OpenACC's parallelisation) *)
  let trial_and_error =
    match
      Mdh_atf.Tuner.tune ~budget:400
        ~parallel_options:[ Common.directive_parallel_dims md ]
        md gpu Cost.plain_codegen
    with
    | Ok t -> t.Mdh_atf.Tuner.schedule.Schedule.tile_sizes
    | Error e -> failwith e
  in
  List.iter
    (fun (label, tiles) ->
      match Mdh_baselines.Openacc.compile_with_tiles tiles md gpu with
      | Ok o -> add label (Common.seconds o)
      | Error f -> failwith (Common.failure_to_string f))
    [ ("OpenACC, tile first loop only", [| 8; 16; 16; 24; 16; 16; 24 |]);
      ("OpenACC, uniform 4-tiles", [| 4; 4; 4; 4; 4; 4; 4 |]);
      ( Printf.sprintf "OpenACC, trial-and-error tiles (%s)"
          (Mdh_support.Util.string_of_dims trial_and_error),
        trial_and_error ) ];
  table

let openacc_tiling () =
  Report.section
    "Ablation: manual OpenACC tiling on CCSD(T) (Section 5.2 narrative)";
  Table.print (openacc_tiling_table ())

let tiling_table () =
  let table =
    Table.create ~headers:[ "Computation"; "Device"; "untiled"; "tiled(tuned)"; "gain" ]
  in
  List.iter
    (fun (w : W.t) ->
      let md = Report.md_of w "1" in
      List.iter
        (fun dev ->
          let tuned =
            match Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md dev with
            | Ok o -> o
            | Error f -> failwith (Common.failure_to_string f)
          in
          let untiled_schedule =
            { tuned.Common.schedule with
              Schedule.tile_sizes = Array.copy md.Mdh_core.Md_hom.sizes }
          in
          match Cost.seconds md dev Cost.tuned_codegen untiled_schedule with
          | Error e -> failwith e
          | Ok untiled ->
            let tuned_s = Common.seconds tuned in
            Table.add_row table
              [ w.W.wl_name; dev.Device.device_name; Report.time_str untiled;
                Report.time_str tuned_s; Report.speedup_str (untiled /. tuned_s) ])
        [ gpu; cpu ])
    [ Mdh_workloads.Linalg.matmul; Mdh_workloads.Ccsdt.ccsdt;
      Mdh_workloads.Deep_learning.mcc ];
  table

let tiling () =
  Report.section "Ablation: MDH cache tiling on/off";
  Table.print (tiling_table ())

let reduction_parallel_table () =
  let table =
    Table.create
      ~headers:[ "Computation"; "Device"; "cc dims only"; "with reductions"; "gain" ]
  in
  List.iter
    (fun ((w : W.t), inp) ->
      let md = Report.md_of w inp in
      List.iter
        (fun dev ->
          let tuned_with opts =
            match
              Mdh_atf.Tuner.tune ?parallel_options:opts ~budget:300 md dev
                Cost.tuned_codegen
            with
            | Ok t -> t.Mdh_atf.Tuner.estimated_s
            | Error e -> failwith e
          in
          let cc_only = tuned_with (Some [ Mdh_core.Md_hom.cc_dims md ]) in
          let full = tuned_with None in
          Table.add_row table
            [ Printf.sprintf "%s (Inp.%s)" w.W.wl_name inp; dev.Device.device_name;
              Report.time_str cc_only; Report.time_str full;
              Report.speedup_str (cc_only /. full) ])
        [ gpu; cpu ])
    [ (Mdh_workloads.Linalg.dot, "1"); (Mdh_workloads.Prl.prl, "1");
      (Mdh_workloads.Linalg.matvec, "1") ];
  table

let reduction_parallel () =
  Report.section "Ablation: MDH reduction-dimension parallelisation on/off";
  Table.print (reduction_parallel_table ())

let tuning_budget_table () =
  let table =
    Table.create
      ~headers:[ "Computation"; "Device"; "budget"; "estimated time"; "vs budget=800" ]
  in
  List.iter
    (fun (w : W.t) ->
      let md = Report.md_of w "1" in
      List.iter
        (fun dev ->
          let at budget =
            match Mdh_atf.Tuner.tune ~budget md dev Cost.tuned_codegen with
            | Ok t -> t.Mdh_atf.Tuner.estimated_s
            | Error e -> failwith e
          in
          let best = at 800 in
          List.iter
            (fun budget ->
              let s = at budget in
              Table.add_row table
                [ w.W.wl_name; dev.Device.device_name; string_of_int budget;
                  Report.time_str s; Report.speedup_str (s /. best) ])
            [ 25; 100; 400; 800 ])
        [ gpu; cpu ])
    [ Mdh_workloads.Linalg.matmul; Mdh_workloads.Ccsdt.ccsdt ];
  table

let tuning_budget () =
  Report.section "Ablation: tuned quality vs search budget (evaluations)";
  Table.print (tuning_budget_table ())

let run () =
  openacc_tiling ();
  tiling ();
  reduction_parallel ();
  tuning_budget ()
