(** Ablation studies for the design decisions DESIGN.md calls out. *)

val openacc_tiling_table : unit -> Mdh_support.Table.t
(** The Section 5.2 CCSD(T) narrative: OpenACC untiled vs manual tile
    variants vs auto-tuned MDH. *)

val tiling_table : unit -> Mdh_support.Table.t
(** MDH cache tiling on/off. *)

val reduction_parallel_table : unit -> Mdh_support.Table.t
(** MDH reduction-dimension parallelisation on/off — the core
    "reduction-aware" mechanism isolated. *)

val tuning_budget_table : unit -> Mdh_support.Table.t
(** Tuned quality as a function of the evaluation budget. *)

val openacc_tiling : unit -> unit
val tiling : unit -> unit
val reduction_parallel : unit -> unit
val tuning_budget : unit -> unit
val run : unit -> unit
