(* The Section 5.2 failure matrix: which system rejects which computation,
   and why. Covers all Figure 3 workloads plus MBBS (the prefix-sum
   expressiveness example). *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Registry = Mdh_baselines.Registry
module Table = Mdh_support.Table

let systems =
  [ ("MDH", Registry.mdh, Device.xeon6140_like);
    ("OpenMP", Mdh_baselines.Openmp.system, Device.xeon6140_like);
    ("OpenACC", Mdh_baselines.Openacc.system, Device.a100_like);
    ("PPCG", Mdh_baselines.Polyhedral.ppcg, Device.a100_like);
    ("Pluto", Mdh_baselines.Polyhedral.pluto, Device.xeon6140_like);
    ("Numba", Mdh_baselines.Numba.system, Device.xeon6140_like);
    ("TVM", Mdh_baselines.Tvm.system, Device.xeon6140_like);
    ("Vendor", Mdh_baselines.Vendor.system, Device.xeon6140_like) ]

let table () =
  let table =
    Table.create ~headers:("Computation" :: List.map (fun (n, _, _) -> n) systems)
  in
  List.iter
    (fun (w : W.t) ->
      let params = snd (List.hd w.W.paper_inputs) in
      let md = W.to_md_hom w params in
      let cells =
        List.map
          (fun (_, (sys : Common.system), dev) ->
            match sys.Common.compile ~tuned:false md dev with
            | Ok _ -> "ok"
            | Error f -> Report.short_failure f)
          systems
      in
      Table.add_row table (w.W.wl_name :: cells))
    Mdh_workloads.Catalog.all;
  table

let run () =
  Report.section "Failure matrix (Section 5.2): ok / typed failure per system";
  Table.print (table ());
  print_newline ();
  print_endline
    "FAIL:no-par     PPCG: reduction-only nest, nothing to map to the grid (Dot)";
  print_endline
    "FAIL:resources  PPCG: default mapping exhausts per-block resources (deep learning)";
  print_endline
    "FAIL:polyhedra  Pluto: data-dependent if statements defeat extraction (PRL)";
  print_endline
    "FAIL:reducer    TVM: user-defined or prefix-sum reduction operator (PRL, MBBS)";
  print_endline
    "n/a             library has no such routine / system does not target the device"
