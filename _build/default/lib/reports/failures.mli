(** The Section 5.2 failure matrix: which system rejects which computation,
    with the typed reason. *)

val table : unit -> Mdh_support.Table.t
val run : unit -> unit
