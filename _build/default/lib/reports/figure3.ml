(* Regenerates Figure 3: the workload-characteristics table, derived from
   the directive programs themselves (dimensionality, reduction dimensions
   and injectivity come out of the transformation's analyses, not a
   hard-coded table). *)

module W = Mdh_workloads.Workload
module Md_hom = Mdh_core.Md_hom
module Table = Mdh_support.Table

let table () =
  let table =
    Table.create
      ~headers:
        [ "Computation"; "Iter. Space"; "Red. Dim."; "Data Acc."; "Inp."; "Sizes";
          "Basic Type"; "Domain" ]
  in
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (inp, params) ->
          let md = W.to_md_hom w params in
          let c = Md_hom.characteristics md in
          let first = String.equal inp (fst (List.hd w.W.paper_inputs)) in
          Table.add_row table
            [ (if first then w.W.wl_name else "");
              (if first then Printf.sprintf "%dD" c.Md_hom.iter_space_rank else "");
              (if first then
                 (if c.Md_hom.n_reduction_dims > 0 then
                    string_of_int c.Md_hom.n_reduction_dims
                  else "-")
               else "");
              (if first then
                 match c.Md_hom.injective_accesses with
                 | Some true -> "Inj."
                 | Some false -> "Non-Inj."
                 | None -> "?"
               else "");
              inp;
              String.concat "  " (W.sizes_strings w params);
              w.W.basic_type;
              w.W.domain ])
        w.W.paper_inputs;
      Table.add_separator table)
    Mdh_workloads.Catalog.figure3;
  table

let run () =
  Report.section "Figure 3: computation and data characteristics";
  Table.print (table ())
