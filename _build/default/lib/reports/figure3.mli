(** Figure 3 regeneration: the workload-characteristics table, derived from
    the directive programs (dimensionality, reduction dimensions and
    injectivity come out of the transformation's analyses). *)

val table : unit -> Mdh_support.Table.t
val run : unit -> unit
