(** Figure 4 regeneration: speedups of the MDH-generated code over each
    system in the evaluation line-up, per workload and input size. Baseline
    failures render as the typed failure the paper reports. *)

val table : Mdh_machine.Device.t -> Mdh_support.Table.t
val run : [ `Gpu | `Cpu | `Both ] -> unit
