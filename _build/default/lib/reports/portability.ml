module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Table = Mdh_support.Table

type score = {
  system : string;
  strict : float;
  supported_only : float;
  supported : int;
  total : int;
}

let systems : (string * Common.system * bool) list =
  (* (display name, model, tuned) *)
  [ ("MDH", Mdh_baselines.Registry.mdh, true);
    ("OpenMP", Mdh_baselines.Openmp.system, false);
    ("OpenACC", Mdh_baselines.Openacc.system, false);
    ("PPCG(ATF)", Mdh_baselines.Polyhedral.ppcg, true);
    ("Pluto(ATF)", Mdh_baselines.Polyhedral.pluto, true);
    ("Numba", Mdh_baselines.Numba.system, false);
    ("TVM", Mdh_baselines.Tvm.system, true);
    ("Vendor", Mdh_baselines.Vendor.system, false) ]

let cases () =
  List.concat_map
    (fun (w : W.t) ->
      List.concat_map
        (fun (_, params) ->
          List.map
            (fun dev -> (W.to_md_hom w params, dev))
            [ Device.a100_like; Device.xeon6140_like ])
        w.W.paper_inputs)
    Mdh_workloads.Catalog.figure3

let harmonic_mean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let n = float_of_int (List.length xs) in
    if List.exists (fun x -> x <= 0.0) xs then 0.0
    else n /. List.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs

let scores () =
  let cases = cases () in
  (* per case: every system's time (None when it fails), and the best *)
  let case_times =
    List.map
      (fun (md, dev) ->
        let times =
          List.map
            (fun (name, (sys : Common.system), tuned) ->
              match sys.Common.compile ~tuned md dev with
              | Ok o -> (name, Some (Common.seconds o))
              | Error _ -> (name, None))
            systems
        in
        let best =
          List.fold_left
            (fun acc (_, t) -> match t with Some t -> Float.min acc t | None -> acc)
            infinity times
        in
        (times, best))
      cases
  in
  List.map
    (fun (name, _, _) ->
      let efficiencies =
        List.map
          (fun (times, best) ->
            match List.assoc name times with
            | Some t -> Some (best /. t)
            | None -> None)
          case_times
      in
      let supported = List.filter_map Fun.id efficiencies in
      { system = name;
        strict =
          harmonic_mean
            (List.map (function Some e -> e | None -> 0.0) efficiencies);
        supported_only = harmonic_mean supported;
        supported = List.length supported;
        total = List.length efficiencies })
    systems

let table () =
  let t =
    Table.create
      ~headers:
        [ "System"; "PP (strict)"; "PP (supported cases)"; "cases supported" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [ s.system;
          (if s.strict = 0.0 then "0" else Printf.sprintf "%.2f" s.strict);
          Printf.sprintf "%.2f" s.supported_only;
          Printf.sprintf "%d/%d" s.supported s.total ])
    (scores ());
  t

let run () =
  Report.section
    "Performance portability (Pennycook harmonic-mean efficiency, all Figure 3 \
     cases x both devices)";
  Table.print (table ());
  print_newline ();
  print_endline
    "strict = 0 whenever a system rejects a case or does not target a device;\n\
     'supported cases' scores each system only where it runs. MDH is the only\n\
     system defined (and near-best) on every case - the paper's portability claim\n\
     as a single number."
