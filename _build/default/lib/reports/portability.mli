(** Performance-portability scores (Pennycook, Sewall & Lee's metric):
    for each system, the harmonic mean over a set of (workload, input,
    device) cases of its *application efficiency* — achieved performance
    relative to the best observed on that case.

    The paper's central portability claim ("consistently high and portable
    performance", Section 1/footnote 1) becomes one number per system:
    MDH's score must be close to 1; single-device systems and systems that
    reject cases score 0 in the strict metric, so the table also reports
    the mean over each system's supported cases and the supported-case
    count. *)

type score = {
  system : string;
  strict : float;  (** harmonic mean over all cases; 0 if any case fails *)
  supported_only : float;  (** harmonic mean over the cases the system handles *)
  supported : int;
  total : int;
}

val scores : unit -> score list
(** Over every Figure 3 workload and input size on both devices. Systems:
    MDH, OpenMP, OpenACC, PPCG(ATF), Pluto(ATF), Numba, TVM, vendor. *)

val table : unit -> Mdh_support.Table.t
val run : unit -> unit
