(** The PRL input-size study of Section 5.2: per-input, per-device
    comparison of MDH against the OpenMP/OpenACC directive model, with the
    parallel-unit occupancy explaining the Inp.1 collapse. *)

val table : unit -> Mdh_support.Table.t
val run : unit -> unit
