(* Shared helpers for the benchmark reports. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Registry = Mdh_baselines.Registry

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let time_str s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let speedup_str x =
  if x >= 100.0 then Printf.sprintf "%.0fx" x
  else if x >= 10.0 then Printf.sprintf "%.1fx" x
  else Printf.sprintf "%.2fx" x

let short_failure = function
  | Common.Unsupported_reduction _ -> "FAIL:reducer"
  | Common.Polyhedral_extraction_error _ -> "FAIL:polyhedra"
  | Common.No_parallel_dim _ -> "FAIL:no-par"
  | Common.Out_of_resources _ -> "FAIL:resources"
  | Common.Wrong_device _ -> "n/a"
  | Common.Not_supported _ -> "n/a"

let md_of (w : W.t) inp = W.to_md_hom w (List.assoc inp w.W.paper_inputs)

let mdh_seconds md dev =
  match Registry.mdh.Common.compile ~tuned:true md dev with
  | Ok o -> Common.seconds o
  | Error f -> failwith ("MDH failed to compile: " ^ Common.failure_to_string f)
