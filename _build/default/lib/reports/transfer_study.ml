module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Cost = Mdh_lowering.Cost
module Table = Mdh_support.Table

let gpu = Device.a100_like

let table () =
  let t =
    Table.create
      ~headers:
        [ "Computation"; "Inp."; "buffers"; "kernel"; "kernel+PCIe"; "slowdown" ]
  in
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (inp, params) ->
          let md = W.to_md_hom w params in
          match Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md gpu with
          | Error _ -> ()
          | Ok o ->
            let kernel = Common.seconds o in
            let with_transfers =
              match
                Cost.seconds ~include_transfers:true md gpu Cost.tuned_codegen
                  o.Common.schedule
              with
              | Ok s -> s
              | Error _ -> nan
            in
            let bytes =
              Mdh_core.Md_hom.input_bytes md + Mdh_core.Md_hom.bytes_written md
            in
            Table.add_row t
              [ w.W.wl_name; inp;
                Printf.sprintf "%.1f MB" (float_of_int bytes /. 1e6);
                Report.time_str kernel;
                Report.time_str with_transfers;
                Report.speedup_str (with_transfers /. kernel) ])
        w.W.paper_inputs)
    Mdh_workloads.Catalog.figure3;
  t

let run () =
  Report.section
    "Host-transfer study (Listing 3's copyin/copyout): tuned MDH kernel time vs \
     kernel + PCIe movement";
  Table.print (table ());
  print_newline ();
  print_endline
    "Low-intensity kernels (Dot, MatVec, stencils: 70-85x) are dominated by\n\
     the transfer; compute-dense kernels (square MatMul, PRL, MCC_Caps:\n\
     1-3x) amortise it. Figure 4 compares kernel times, as the\n\
     vendor-library baselines do; this table quantifies what that choice\n\
     excludes."
