(** Host-transfer study: the cost of the explicit [copyin]/[copyout] data
    movement that the OpenACC listing manages (Listing 3, lines 7-8), per
    GPU workload — kernel-only time vs kernel-plus-PCIe time for the tuned
    MDH code. Shows which of Figure 3's computations are transfer-dominated
    (the low-intensity linear algebra) and which amortise the movement
    (the deep-learning and quantum-chemistry kernels), the usual argument
    for keeping data resident across kernel launches. *)

val table : unit -> Mdh_support.Table.t
val run : unit -> unit
