lib/runtime/exec.ml: Array List Mdh_combine Mdh_core Mdh_lowering Mdh_machine Mdh_tensor Pool
