lib/runtime/exec.mli: Mdh_core Mdh_lowering Mdh_tensor Pool
