lib/runtime/kernels.ml: Array Pool
