lib/runtime/kernels.mli: Pool
