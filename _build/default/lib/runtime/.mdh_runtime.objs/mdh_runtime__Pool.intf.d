lib/runtime/pool.mli:
