(** Parallel execution of scheduled MDH computations on the host, using the
    domain pool.

    The executor realises the schedule's outermost parallel decision for
    real: the first parallel dimension is split into per-worker boxes, each
    box is evaluated independently ({!Mdh_core.Semantics.eval_box}), and the
    partial results are recombined in order with the dimension's combine
    operator — concatenation for [cc], the customising function for [pw],
    carry propagation for [ps]. Because recombination happens in index
    order, associative (not necessarily commutative) operators yield the
    sequential result, which the tests assert. *)

val run :
  Pool.t ->
  Mdh_core.Md_hom.t ->
  Mdh_lowering.Schedule.t ->
  Mdh_tensor.Buffer.env ->
  (Mdh_tensor.Buffer.env, string) result
(** Fails iff the schedule is illegal (checked against a single-layer host
    description). When the schedule has no parallel dimensions, runs
    sequentially. *)

val run_seq : Mdh_core.Md_hom.t -> Mdh_tensor.Buffer.env -> Mdh_tensor.Buffer.env
(** Sequential in-place execution (alias for [Semantics.exec]), the
    baseline the parallel path is checked against. *)
