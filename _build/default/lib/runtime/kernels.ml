let dot_seq x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Kernels.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let dot_par pool x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Kernels.dot: length mismatch";
  Pool.parallel_reduce pool ~lo:0 ~hi:n
    ~map:(fun i -> x.(i) *. y.(i))
    ~combine:( +. ) 0.0

let matvec_row ~k m v r =
  let base = r * k in
  let acc = ref 0.0 in
  for c = 0 to k - 1 do
    acc := !acc +. (m.(base + c) *. v.(c))
  done;
  !acc

let matvec_seq ~m ~k mat v =
  Array.init m (fun r -> matvec_row ~k mat v r)

let matvec_par pool ~m ~k mat v =
  let out = Array.make m 0.0 in
  Pool.parallel_for pool ~lo:0 ~hi:m (fun r -> out.(r) <- matvec_row ~k mat v r);
  out

let matmul_seq ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + p) *. b.((p * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let matmul_tile_block ~n ~k ~tile a b c i0 i1 =
  (* block over j and p for locality; rows [i0, i1) *)
  let j0 = ref 0 in
  while !j0 < n do
    let j1 = min n (!j0 + tile) in
    let p0 = ref 0 in
    while !p0 < k do
      let p1 = min k (!p0 + tile) in
      for i = i0 to i1 - 1 do
        for p = !p0 to p1 - 1 do
          let aip = a.((i * k) + p) in
          let brow = p * n in
          let crow = i * n in
          for j = !j0 to j1 - 1 do
            c.(crow + j) <- c.(crow + j) +. (aip *. b.(brow + j))
          done
        done
      done;
      p0 := p1
    done;
    j0 := j1
  done

let matmul_tiled ?(tile = 32) ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  let i0 = ref 0 in
  while !i0 < m do
    let i1 = min m (!i0 + tile) in
    matmul_tile_block ~n ~k ~tile a b c !i0 i1;
    i0 := i1
  done;
  c

let matmul_par pool ?(tile = 32) ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  let n_blocks = (m + tile - 1) / tile in
  Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n_blocks (fun blk ->
      let i0 = blk * tile in
      let i1 = min m (i0 + tile) in
      matmul_tile_block ~n ~k ~tile a b c i0 i1);
  c

let scan_seq xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      out.(i) <- out.(i - 1) +. xs.(i)
    done;
    out
  end

let scan_par pool xs = Pool.scan_inclusive pool ( +. ) xs

let jacobi3d_point ~n x i j l =
  let at a b c = x.((((a * n) + b) * n) + c) in
  if i = 0 || j = 0 || l = 0 || i = n - 1 || j = n - 1 || l = n - 1 then at i j l
  else
    (at (i - 1) j l +. at (i + 1) j l +. at i (j - 1) l +. at i (j + 1) l
    +. at i j (l - 1) +. at i j (l + 1) +. at i j l)
    /. 7.0

let jacobi3d_seq ~n x =
  let out = Array.make (n * n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for l = 0 to n - 1 do
        out.((((i * n) + j) * n) + l) <- jacobi3d_point ~n x i j l
      done
    done
  done;
  out

let jacobi3d_par pool ~n x =
  let out = Array.make (n * n * n) 0.0 in
  Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
      for j = 0 to n - 1 do
        for l = 0 to n - 1 do
          out.((((i * n) + j) * n) + l) <- jacobi3d_point ~n x i j l
        done
      done);
  out
