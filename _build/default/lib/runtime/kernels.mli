(** Unboxed float kernels for the wall-clock micro-benchmarks.

    The generic evaluators in [Mdh_core.Semantics] interpret expressions over
    boxed values — fine for correctness, useless for timing. These kernels
    are the hand-specialised counterparts of what the MDH pipeline's code
    generator would emit for the linear-algebra and scan workloads:
    sequential baselines, tiled variants, and pool-parallel variants, over
    [float array]s. The Bechamel micro-benchmarks ([bench/main.exe micro])
    time these to demonstrate — on the host machine, not the modelled
    devices — that tiling and reduction parallelisation behave as the cost
    model predicts. *)

val dot_seq : float array -> float array -> float
val dot_par : Pool.t -> float array -> float array -> float

val matvec_seq : m:int -> k:int -> float array -> float array -> float array
(** Row-major [m x k] matrix times vector. *)

val matvec_par : Pool.t -> m:int -> k:int -> float array -> float array -> float array

val matmul_seq : m:int -> n:int -> k:int -> float array -> float array -> float array
(** Naive i-j-k triple loop, row-major [m x k] times [k x n]. *)

val matmul_tiled :
  ?tile:int -> m:int -> n:int -> k:int -> float array -> float array -> float array
(** Cache-blocked (i,j,k tiles, default 32). *)

val matmul_par :
  Pool.t -> ?tile:int -> m:int -> n:int -> k:int -> float array -> float array ->
  float array
(** Tiled with row-blocks distributed across the pool. *)

val scan_seq : float array -> float array
(** Inclusive prefix sum. *)

val scan_par : Pool.t -> float array -> float array

val jacobi3d_seq : n:int -> float array -> float array
(** One 7-point Jacobi sweep over an [n^3] grid with boundary copy;
    input and output are [n^3] row-major. *)

val jacobi3d_par : Pool.t -> n:int -> float array -> float array
