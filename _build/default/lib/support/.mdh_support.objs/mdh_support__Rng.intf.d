lib/support/rng.mli:
