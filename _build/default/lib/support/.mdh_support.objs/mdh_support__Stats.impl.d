lib/support/stats.ml: Array Float Format Stdlib
