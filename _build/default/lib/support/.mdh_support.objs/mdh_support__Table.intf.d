lib/support/table.mli:
