lib/support/util.mli:
