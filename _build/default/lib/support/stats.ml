let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end

let min xs = Array.fold_left Stdlib.min infinity xs
let max xs = Array.fold_left Stdlib.max neg_infinity xs

let z99 = 2.576

let ci99_halfwidth xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else z99 *. stddev xs /. sqrt (float_of_int n)

type measurement = {
  mean : float;
  stddev : float;
  ci99 : float;
  samples : int;
}

let pp_measurement ppf m =
  Format.fprintf ppf "%.6g ± %.2g (99%% CI, n=%d)" m.mean m.ci99 m.samples

let measure_until_ci ?(rel_ci = 0.05) ?(min_samples = 5) ?(max_samples = 1000) f =
  let samples = ref [] in
  let count = ref 0 in
  let converged () =
    let xs = Array.of_list !samples in
    let m = mean xs in
    !count >= min_samples && (m = 0.0 || ci99_halfwidth xs <= rel_ci *. Float.abs m)
  in
  while !count < max_samples && not (converged ()) do
    samples := f () :: !samples;
    incr count
  done;
  let xs = Array.of_list !samples in
  { mean = mean xs; stddev = stddev xs; ci99 = ci99_halfwidth xs; samples = !count }
