type align = Left | Right | Center

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render ?aligns t =
  let ncols = List.length t.headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) t.headers
  in
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_widths = function
    | Separator -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells
  in
  List.iter note_widths rows;
  let buf = Buffer.create 1024 in
  let sep_line () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  sep_line ();
  emit_cells t.headers;
  sep_line ();
  List.iter
    (function Separator -> sep_line () | Cells cells -> emit_cells cells)
    rows;
  sep_line ();
  Buffer.contents buf

let print ?aligns t = print_string (render ?aligns t)

let headers t = t.headers

let rows t =
  List.rev t.rows
  |> List.filter_map (function Cells cells -> Some cells | Separator -> None)

let cell t ~row ~col =
  let cells =
    match List.nth_opt (rows t) row with
    | Some cells -> cells
    | None -> invalid_arg (Printf.sprintf "Table.cell: no row %d" row)
  in
  let rec find headers cells =
    match (headers, cells) with
    | h :: _, c :: _ when String.equal h col -> c
    | _ :: hs, _ :: cs -> find hs cs
    | _ -> invalid_arg (Printf.sprintf "Table.cell: no column %S" col)
  in
  find t.headers cells
