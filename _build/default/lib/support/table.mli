(** Plain-text table rendering for benchmark and experiment reports. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** Create a table with the given column headers. All rows must have the same
    number of cells as there are headers. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on arity mismatch. *)

val add_separator : t -> unit
(** Append a horizontal separator line. *)

val render : ?aligns:align list -> t -> string
(** Render with box-drawing in ASCII. [aligns] defaults to left for the first
    column and right for the rest. *)

val print : ?aligns:align list -> t -> unit

val headers : t -> string list

val rows : t -> string list list
(** Data rows in insertion order (separators omitted). *)

val cell : t -> row:int -> col:string -> string
(** Cell of the [row]-th data row in the column named [col]; raises
    [Invalid_argument] on unknown column or row. *)
