let product = Array.fold_left ( * ) 1

let divisors n =
  if n <= 0 then invalid_arg "Util.divisors: n must be positive";
  let rec loop d acc =
    if d * d > n then acc
    else if n mod d = 0 then begin
      let acc = d :: acc in
      let acc = if d <> n / d then (n / d) :: acc else acc in
      loop (d + 1) acc
    end
    else loop (d + 1) acc
  in
  List.sort_uniq compare (loop 1 [])

let ceil_div a b =
  if b <= 0 then invalid_arg "Util.ceil_div: divisor must be positive";
  (a + b - 1) / b

let pow2_up_to n =
  let rec loop p acc = if p > n then List.rev acc else loop (p * 2) (p :: acc) in
  loop 1 []

let float_equal ?(rel = 1e-6) ?(abs = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let list_result_all results =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | Ok x :: rest -> loop (x :: acc) rest
    | Error e :: _ -> Error e
  in
  loop [] results

let string_of_dims dims =
  String.concat "x" (Array.to_list (Array.map string_of_int dims))

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
