(** Small shared helpers. *)

val product : int array -> int
(** Product of all elements; 1 for the empty array. *)

val divisors : int -> int list
(** All positive divisors of [n] in increasing order. Raises on [n <= 0]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up; [b > 0]. *)

val pow2_up_to : int -> int list
(** Powers of two [1; 2; 4; ...] not exceeding [n]. *)

val float_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float comparison: true when within [abs] (default 1e-9) or
    relative [rel] (default 1e-6) of each other. *)

val list_result_all : ('a, 'e) result list -> ('a list, 'e) result
(** First error wins; otherwise the list of all [Ok] payloads. *)

val string_of_dims : int array -> string
(** ["4096x4096"]-style rendering of a shape. *)

val time_it : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)
