lib/tensor/buffer.ml: Dense List Map Printf Scalar String
