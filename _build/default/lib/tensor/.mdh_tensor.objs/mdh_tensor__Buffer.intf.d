lib/tensor/buffer.mli: Dense Scalar Shape
