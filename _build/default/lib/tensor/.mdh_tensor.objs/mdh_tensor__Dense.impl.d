lib/tensor/dense.ml: Array Format List Scalar Shape
