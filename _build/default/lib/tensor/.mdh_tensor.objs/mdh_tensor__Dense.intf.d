lib/tensor/dense.mli: Format Scalar Shape
