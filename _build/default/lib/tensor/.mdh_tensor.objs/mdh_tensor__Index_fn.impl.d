lib/tensor/index_fn.ml: Array Float Format Hashtbl List Printf Shape
