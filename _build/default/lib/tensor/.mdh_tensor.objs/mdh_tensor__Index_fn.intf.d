lib/tensor/index_fn.mli: Format Shape
