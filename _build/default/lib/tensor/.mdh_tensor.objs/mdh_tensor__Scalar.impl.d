lib/tensor/scalar.ml: Bool Char Float Format Int32 Int64 List Mdh_support Printf String
