lib/tensor/scalar.mli: Format
