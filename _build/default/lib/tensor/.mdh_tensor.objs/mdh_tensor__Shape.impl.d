lib/tensor/shape.ml: Array Mdh_support Printf
