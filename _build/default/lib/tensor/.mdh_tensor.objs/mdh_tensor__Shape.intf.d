lib/tensor/shape.mli:
