type t = { name : string; data : Dense.t }

let create name ty shape = { name; data = Dense.create ty shape }
let of_dense name data = { name; data }

let name t = t.name
let ty t = Dense.ty t.data
let shape t = Dense.shape t.data
let data t = t.data

let size_bytes t = Dense.num_elements t.data * Scalar.size_bytes (ty t)

module Smap = Map.Make (String)

type env = t Smap.t

let env_of_list buffers =
  List.fold_left
    (fun env buf ->
      if Smap.mem buf.name env then
        invalid_arg (Printf.sprintf "Buffer.env_of_list: duplicate buffer %S" buf.name);
      Smap.add buf.name buf env)
    Smap.empty buffers

let env_find env name = Smap.find name env
let env_find_opt env name = Smap.find_opt name env
let env_mem env name = Smap.mem name env
let env_names env = List.map fst (Smap.bindings env)
let env_add env buf = Smap.add buf.name buf env
