(** Named input/output buffers, as declared in the [inp(...)] / [out(...)]
    clauses of the MDH directive (Listing 14). A buffer is a named dense
    tensor; the environment type maps buffer identifiers to their data. *)

type t = { name : string; data : Dense.t }

val create : string -> Scalar.ty -> Shape.t -> t
val of_dense : string -> Dense.t -> t

val name : t -> string
val ty : t -> Scalar.ty
val shape : t -> Shape.t
val data : t -> Dense.t

val size_bytes : t -> int

type env
(** An immutable name -> buffer mapping (buffers themselves are mutable). *)

val env_of_list : t list -> env
(** Raises [Invalid_argument] on duplicate names. *)

val env_find : env -> string -> t
(** Raises [Not_found]. *)

val env_find_opt : env -> string -> t option
val env_mem : env -> string -> bool
val env_names : env -> string list
val env_add : env -> t -> env
