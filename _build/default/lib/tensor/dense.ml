type t = { ty : Scalar.ty; shape : Shape.t; data : Scalar.value array }

let create ty shape =
  Shape.validate shape;
  { ty; shape; data = Array.make (Shape.num_elements shape) (Scalar.zero ty) }

let of_fn ty shape f =
  Shape.validate shape;
  let t = create ty shape in
  Shape.iter shape (fun idx -> t.data.(Shape.linearize shape idx) <- f idx);
  t

let scalar v = { ty = Scalar.type_of_value v; shape = [||]; data = [| v |] }

let ty t = t.ty
let shape t = t.shape
let num_elements t = Array.length t.data

let get t idx = t.data.(Shape.linearize t.shape idx)
let set t idx v = t.data.(Shape.linearize t.shape idx) <- v

let get_linear t i = t.data.(i)
let set_linear t i v = t.data.(i) <- v

let copy t = { t with data = Array.copy t.data }

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let iteri t f = Shape.iter t.shape (fun idx -> f idx t.data.(Shape.linearize t.shape idx))

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Dense.map2: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let equal a b =
  Shape.equal a.shape b.shape && Array.for_all2 Scalar.equal a.data b.data

let approx_equal ?rel ?abs a b =
  Shape.equal a.shape b.shape
  && Array.for_all2 (Scalar.approx_equal ?rel ?abs) a.data b.data

let slice t ~dim ~lo ~len =
  let rank = Shape.rank t.shape in
  if dim < 0 || dim >= rank then invalid_arg "Dense.slice: dimension out of range";
  if lo < 0 || len <= 0 || lo + len > t.shape.(dim) then
    invalid_arg "Dense.slice: range out of bounds";
  let out_shape = Shape.concat_extent t.shape ~dim len in
  let out = create t.ty out_shape in
  Shape.iter out_shape (fun idx ->
      let src = Array.copy idx in
      src.(dim) <- idx.(dim) + lo;
      set out idx (get t src));
  out

let concat ~dim a b =
  let rank = Shape.rank a.shape in
  if Shape.rank b.shape <> rank then invalid_arg "Dense.concat: rank mismatch";
  Array.iteri
    (fun d n ->
      if d <> dim && n <> b.shape.(d) then
        invalid_arg "Dense.concat: extents disagree off the concat dimension")
    a.shape;
  let out_shape = Shape.concat_extent a.shape ~dim (a.shape.(dim) + b.shape.(dim)) in
  let out = create a.ty out_shape in
  Shape.iter a.shape (fun idx -> set out idx (get a idx));
  Shape.iter b.shape (fun idx ->
      let dst = Array.copy idx in
      dst.(dim) <- idx.(dim) + a.shape.(dim);
      set out dst (get b idx));
  out

let outer_shape shape dim = Array.of_list (List.filteri (fun d _ -> d <> dim) (Array.to_list shape))

let with_dim idx dim i =
  let rank = Array.length idx + 1 in
  Array.init rank (fun d -> if d < dim then idx.(d) else if d = dim then i else idx.(d - 1))

let scan ~dim f t =
  let out = copy t in
  let outer = outer_shape t.shape dim in
  Shape.iter outer (fun oidx ->
      let acc = ref (get t (with_dim oidx dim 0)) in
      for i = 1 to t.shape.(dim) - 1 do
        acc := f !acc (get t (with_dim oidx dim i));
        set out (with_dim oidx dim i) !acc
      done);
  out

let reduce ~dim f t =
  let out_shape = Shape.concat_extent t.shape ~dim 1 in
  let out = create t.ty out_shape in
  let outer = outer_shape t.shape dim in
  Shape.iter outer (fun oidx ->
      let acc = ref (get t (with_dim oidx dim 0)) in
      for i = 1 to t.shape.(dim) - 1 do
        acc := f !acc (get t (with_dim oidx dim i))
      done;
      set out (with_dim oidx dim 0) !acc);
  out

let pp ppf t =
  Format.fprintf ppf "tensor %s %a [@[" (Shape.to_string t.shape) Scalar.pp_ty t.ty;
  let first = ref true in
  iteri t (fun _ v ->
      if !first then first := false else Format.pp_print_string ppf "; ";
      Scalar.pp_value ppf v);
  Format.fprintf ppf "@]]"
