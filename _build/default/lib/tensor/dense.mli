(** Dense multi-dimensional tensors of dynamically-typed scalar values.

    This is the generic value store used by the reference semantics, the
    directive interpreter and the plan simulator. Wall-clock benchmarks use
    the specialised float kernels in [Mdh_runtime] instead. *)

type t

val create : Scalar.ty -> Shape.t -> t
(** Allocated with the type's zero value. *)

val of_fn : Scalar.ty -> Shape.t -> (int array -> Scalar.value) -> t

val scalar : Scalar.value -> t
(** Rank-0 tensor holding one value. *)

val ty : t -> Scalar.ty
val shape : t -> Shape.t
val num_elements : t -> int

val get : t -> int array -> Scalar.value
val set : t -> int array -> Scalar.value -> unit

val get_linear : t -> int -> Scalar.value
val set_linear : t -> int -> Scalar.value -> unit

val copy : t -> t

val fill : t -> Scalar.value -> unit

val iteri : t -> (int array -> Scalar.value -> unit) -> unit
(** Row-major order; the index array is reused between calls. *)

val map2 : (Scalar.value -> Scalar.value -> Scalar.value) -> t -> t -> t
(** Element-wise; shapes must agree. *)

val equal : t -> t -> bool
val approx_equal : ?rel:float -> ?abs:float -> t -> t -> bool

val slice : t -> dim:int -> lo:int -> len:int -> t
(** Contiguous sub-tensor along [dim] (copying). *)

val concat : dim:int -> t -> t -> t
(** Concatenate along [dim]; all other extents must agree. *)

val scan : dim:int -> (Scalar.value -> Scalar.value -> Scalar.value) -> t -> t
(** Inclusive prefix scan along [dim]. *)

val reduce : dim:int -> (Scalar.value -> Scalar.value -> Scalar.value) -> t -> t
(** Fold along [dim], collapsing its extent to 1 (left fold in index order). *)

val pp : Format.formatter -> t -> unit
(** Debug rendering; intended for small tensors. *)
