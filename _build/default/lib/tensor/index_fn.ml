type coord = { coeffs : int array; offset : int }

type t =
  | Affine of { arity : int; coords : coord array }
  | Opaque of { arity : int; out_rank : int; fn : int array -> int array }

let arity = function Affine { arity; _ } -> arity | Opaque { arity; _ } -> arity

let out_rank = function
  | Affine { coords; _ } -> Array.length coords
  | Opaque { out_rank; _ } -> out_rank

let apply t point =
  if Array.length point <> arity t then
    invalid_arg
      (Printf.sprintf "Index_fn.apply: point rank %d, function arity %d"
         (Array.length point) (arity t));
  match t with
  | Affine { coords; _ } ->
    Array.map
      (fun { coeffs; offset } ->
        let acc = ref offset in
        Array.iteri (fun d c -> acc := !acc + (c * point.(d))) coeffs;
        !acc)
      coords
  | Opaque { fn; _ } -> fn point

let coord ~coeffs ~offset = { coeffs; offset }

let affine ~arity coords =
  List.iter
    (fun { coeffs; _ } ->
      if Array.length coeffs <> arity then
        invalid_arg "Index_fn.affine: coefficient vector rank mismatch")
    coords;
  Affine { arity; coords = Array.of_list coords }

let unit_coeffs arity d =
  let coeffs = Array.make arity 0 in
  coeffs.(d) <- 1;
  coeffs

let identity d =
  Affine
    { arity = d;
      coords = Array.init d (fun i -> { coeffs = unit_coeffs d i; offset = 0 }) }

let select ~arity dims =
  List.iter
    (fun d ->
      if d < 0 || d >= arity then invalid_arg "Index_fn.select: dimension out of range")
    dims;
  Affine
    { arity;
      coords =
        Array.of_list (List.map (fun d -> { coeffs = unit_coeffs arity d; offset = 0 }) dims)
    }

let shifted ~arity specs =
  Affine
    { arity;
      coords =
        Array.of_list
          (List.map (fun (d, o) -> { coeffs = unit_coeffs arity d; offset = o }) specs) }

let opaque ~arity ~out_rank fn = Opaque { arity; out_rank; fn }

let is_affine = function Affine _ -> true | Opaque _ -> false

(* Rank of an integer matrix over the rationals, by fraction-free Gaussian
   elimination on a float copy (coefficients in index functions are tiny, so
   floating point is exact enough here). Rows = coordinates, columns = dims. *)
let rank_of rows ncols =
  let m = Array.map (Array.map float_of_int) rows in
  let nrows = Array.length m in
  let rank = ref 0 in
  let row = ref 0 in
  for col = 0 to ncols - 1 do
    if !row < nrows then begin
      (* find pivot *)
      let pivot = ref (-1) in
      for r = !row to nrows - 1 do
        if !pivot = -1 && Float.abs m.(r).(col) > 1e-9 then pivot := r
      done;
      if !pivot >= 0 then begin
        let tmp = m.(!row) in
        m.(!row) <- m.(!pivot);
        m.(!pivot) <- tmp;
        for r = !row + 1 to nrows - 1 do
          let factor = m.(r).(col) /. m.(!row).(col) in
          for c = col to ncols - 1 do
            m.(r).(c) <- m.(r).(c) -. (factor *. m.(!row).(c))
          done
        done;
        incr rank;
        incr row
      end
    end
  done;
  !rank

let brute_force_threshold = 1 lsl 18

let brute_force_injective t space =
  let seen = Hashtbl.create 1024 in
  let result = ref true in
  Shape.iter space (fun point ->
      if !result then begin
        let out = apply t point in
        let key = Array.to_list out in
        if Hashtbl.mem seen key then result := false else Hashtbl.add seen key ()
      end);
  !result

(* Mixed-radix distinctness: a single linear form sum a_d i_d over a box is
   injective iff, sorting the participating dims by |a_d|, each coefficient
   strictly dominates the maximal reachable sum of the smaller ones. *)
let coord_injective coeffs_and_extents =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare (abs a) (abs b)) coeffs_and_extents
  in
  let rec loop reach = function
    | [] -> true
    | (a, n) :: rest ->
      if abs a < reach + 1 then false else loop (reach + (abs a * (n - 1))) rest
  in
  loop 0 sorted

let injective_on t space =
  match t with
  | Opaque _ -> None
  | Affine { arity; coords } ->
    if Array.length space <> arity then
      invalid_arg "Index_fn.injective_on: space rank mismatch";
    let active = ref [] in
    for d = arity - 1 downto 0 do
      if space.(d) > 1 then active := d :: !active
    done;
    let active = !active in
    if active = [] then Some true
    else begin
      let unused d = Array.for_all (fun { coeffs; _ } -> coeffs.(d) = 0) coords in
      if List.exists unused active then Some false
      else begin
        let rows =
          Array.map (fun { coeffs; _ } -> Array.of_list (List.map (Array.get coeffs) active)) coords
        in
        if rank_of rows (List.length active) = List.length active then Some true
        else if Shape.num_elements space <= brute_force_threshold then
          Some (brute_force_injective t space)
        else begin
          (* Rank-deficient on a large box: decide when active dims partition
             across coordinates; each coordinate must then be injective on its
             own dims. *)
          let dims_of_coord { coeffs; _ } = List.filter (fun d -> coeffs.(d) <> 0) active in
          let count_uses d =
            Array.fold_left
              (fun acc c -> if c.coeffs.(d) <> 0 then acc + 1 else acc)
              0 coords
          in
          if List.for_all (fun d -> count_uses d = 1) active then
            Some
              (Array.for_all
                 (fun c ->
                   coord_injective
                     (List.map (fun d -> (c.coeffs.(d), space.(d))) (dims_of_coord c)))
                 coords)
          else None
        end
      end
    end

let uses_dim t d =
  match t with
  | Opaque _ -> None
  | Affine { arity; coords } ->
    if d < 0 || d >= arity then invalid_arg "Index_fn.uses_dim: dimension out of range";
    Some (Array.exists (fun { coeffs; _ } -> coeffs.(d) <> 0) coords)

let coord_range { coeffs; offset } space =
  let lo = ref offset and hi = ref offset in
  Array.iteri
    (fun d c ->
      if c > 0 then hi := !hi + (c * (space.(d) - 1))
      else if c < 0 then lo := !lo + (c * (space.(d) - 1)))
    coeffs;
  (!lo, !hi)

let footprint t space =
  match t with
  | Opaque _ -> invalid_arg "Index_fn.footprint: opaque index function"
  | Affine { arity; coords } ->
    if Array.length space <> arity then
      invalid_arg "Index_fn.footprint: space rank mismatch";
    Array.fold_left
      (fun acc c ->
        let lo, hi = coord_range c space in
        acc * (hi - lo + 1))
      1 coords

let extreme_index which name t space =
  match t with
  | Opaque _ -> invalid_arg (Printf.sprintf "Index_fn.%s: opaque index function" name)
  | Affine { arity; coords } ->
    if Array.length space <> arity then
      invalid_arg (Printf.sprintf "Index_fn.%s: space rank mismatch" name);
    Array.map (fun c -> which (coord_range c space)) coords

let max_index t space = extreme_index snd "max_index" t space
let min_index t space = extreme_index fst "min_index" t space

let pp ppf = function
  | Opaque { arity; out_rank; _ } ->
    Format.fprintf ppf "<opaque %d->%d>" arity out_rank
  | Affine { arity; coords } ->
    let pp_coord ppf { coeffs; offset } =
      let first = ref true in
      let emit s =
        if !first then first := false else Format.pp_print_string ppf " + ";
        Format.pp_print_string ppf s
      in
      Array.iteri
        (fun d c ->
          if c = 1 then emit (Printf.sprintf "i%d" d)
          else if c <> 0 then emit (Printf.sprintf "%d*i%d" c d))
        coeffs;
      if offset <> 0 || !first then emit (string_of_int offset)
    in
    Format.fprintf ppf "(%a) -> (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_string)
      (List.init arity (Printf.sprintf "i%d"))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_coord)
      (Array.to_list coords)
