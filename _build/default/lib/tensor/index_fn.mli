(** Index functions: maps from iteration-space points to buffer indices.

    These implement the [IDX_FNC] nonterminal of the MDH directive and DSL
    (Listings 7 and 14): e.g. [(i,k) -> (i,k)] for the matrix of MatVec,
    [(i,k) -> (k)] for its vector, or [(i) -> (i+1)] for a stencil access.

    Affine index functions carry a symbolic representation — one coefficient
    per iteration dimension plus an offset, per output coordinate — enabling
    the injectivity analysis of Figure 3 and the footprint computation of the
    machine cost model. Non-affine maps are represented opaquely and only
    support application. *)

type coord = { coeffs : int array; offset : int }
(** One output coordinate: [sum_d coeffs.(d) * i_d + offset]. *)

type t =
  | Affine of { arity : int; coords : coord array }
      (** [arity] = iteration-space rank (number of [i_d]). *)
  | Opaque of { arity : int; out_rank : int; fn : int array -> int array }

val arity : t -> int
val out_rank : t -> int

val apply : t -> int array -> int array
(** Apply to an iteration point. Raises [Invalid_argument] on rank mismatch. *)

val identity : int -> t
(** [identity d]: [(i_1..i_d) -> (i_1..i_d)]. *)

val select : arity:int -> int list -> t
(** [select ~arity dims]: pick the listed iteration dimensions, e.g.
    [select ~arity:2 [1]] is [(i,k) -> (k)]. *)

val affine : arity:int -> coord list -> t

val coord : coeffs:int array -> offset:int -> coord

val shifted : arity:int -> (int * int) list -> t
(** [shifted ~arity [(d0,o0); ...]]: each output coordinate [j] is
    [i_{d_j} + o_j] — the common stencil/select-with-offset form. *)

val opaque : arity:int -> out_rank:int -> (int array -> int array) -> t

val is_affine : t -> bool

val injective_on : t -> Shape.t -> bool option
(** Whether the map is injective on the given iteration space.
    [Some b] for affine maps (decided by rank analysis with a brute-force
    fallback on small spaces); [None] for opaque maps. *)

val uses_dim : t -> int -> bool option
(** Whether output indices depend on iteration dimension [d].
    [None] for opaque maps. *)

val footprint : t -> Shape.t -> int
(** Number of distinct buffer elements touched when the map is applied to
    every point of the iteration (sub)space. Exact for affine maps with
    per-coordinate independent ranges (conservative product of coordinate
    range sizes otherwise); raises [Invalid_argument] on opaque maps. *)

val max_index : t -> Shape.t -> int array
(** Component-wise maximum buffer index reached over the iteration space
    (used for buffer-size inference, footnote 7 of the paper). Affine only. *)

val min_index : t -> Shape.t -> int array
(** Component-wise minimum buffer index reached over the iteration space.
    Affine only. *)

val pp : Format.formatter -> t -> unit
