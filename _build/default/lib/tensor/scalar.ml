type ty =
  | Fp32
  | Fp64
  | Int32
  | Int64
  | Bool
  | Char
  | Record of (string * ty) list

type value =
  | F32 of float
  | F64 of float
  | I32 of int32
  | I64 of int64
  | B of bool
  | C of char
  | R of (string * value) list

let rec pp_ty ppf = function
  | Fp32 -> Format.pp_print_string ppf "fp32"
  | Fp64 -> Format.pp_print_string ppf "fp64"
  | Int32 -> Format.pp_print_string ppf "int32"
  | Int64 -> Format.pp_print_string ppf "int64"
  | Bool -> Format.pp_print_string ppf "bool"
  | Char -> Format.pp_print_string ppf "char"
  | Record fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (name, ty) -> Format.fprintf ppf "%s:%a" name pp_ty ty))
      fields

let ty_to_string ty = Format.asprintf "%a" pp_ty ty

let rec pp_value ppf = function
  | F32 x -> Format.fprintf ppf "%gf" x
  | F64 x -> Format.fprintf ppf "%g" x
  | I32 x -> Format.fprintf ppf "%ldl" x
  | I64 x -> Format.fprintf ppf "%LdL" x
  | B b -> Format.pp_print_bool ppf b
  | C c -> Format.fprintf ppf "%C" c
  | R fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (name, v) -> Format.fprintf ppf "%s=%a" name pp_value v))
      fields

let value_to_string v = Format.asprintf "%a" pp_value v

let rec type_of_value = function
  | F32 _ -> Fp32
  | F64 _ -> Fp64
  | I32 _ -> Int32
  | I64 _ -> Int64
  | B _ -> Bool
  | C _ -> Char
  | R fields -> Record (List.map (fun (name, v) -> (name, type_of_value v)) fields)

let rec equal_ty a b =
  match (a, b) with
  | Fp32, Fp32 | Fp64, Fp64 | Int32, Int32 | Int64, Int64 | Bool, Bool | Char, Char
    -> true
  | Record fa, Record fb ->
    List.length fa = List.length fb
    && List.for_all2 (fun (na, ta) (nb, tb) -> String.equal na nb && equal_ty ta tb) fa fb
  | (Fp32 | Fp64 | Int32 | Int64 | Bool | Char | Record _), _ -> false

let rec size_bytes = function
  | Fp32 | Int32 -> 4
  | Fp64 | Int64 -> 8
  | Bool | Char -> 1
  | Record fields -> List.fold_left (fun acc (_, ty) -> acc + size_bytes ty) 0 fields

let rec zero = function
  | Fp32 -> F32 0.0
  | Fp64 -> F64 0.0
  | Int32 -> I32 0l
  | Int64 -> I64 0L
  | Bool -> B false
  | Char -> C '\000'
  | Record fields -> R (List.map (fun (name, ty) -> (name, zero ty)) fields)

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let f32 x = F32 (round_f32 x)
let f64 x = F64 x
let i32 x = I32 (Int32.of_int x)
let i64 x = I64 (Int64.of_int x)
let bool b = B b

let to_float = function
  | F32 x | F64 x -> x
  | I32 x -> Int32.to_float x
  | I64 x -> Int64.to_float x
  | B b -> if b then 1.0 else 0.0
  | C c -> float_of_int (Char.code c)
  | R _ -> invalid_arg "Scalar.to_float: record value"

let to_int = function
  | I32 x -> Int32.to_int x
  | I64 x -> Int64.to_int x
  | B b -> if b then 1 else 0
  | C c -> Char.code c
  | F32 _ | F64 _ | R _ -> invalid_arg "Scalar.to_int: non-integral value"

let field v name =
  match v with
  | R fields -> (
    match List.assoc_opt name fields with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Scalar.field: no field %S" name))
  | _ -> invalid_arg "Scalar.field: not a record"

let set_field v name x =
  match v with
  | R fields ->
    if not (List.mem_assoc name fields) then
      invalid_arg (Printf.sprintf "Scalar.set_field: no field %S" name);
    R (List.map (fun (n, old) -> if String.equal n name then (n, x) else (n, old)) fields)
  | _ -> invalid_arg "Scalar.set_field: not a record"

let rec equal a b =
  match (a, b) with
  | F32 x, F32 y | F64 x, F64 y -> Float.equal x y
  | I32 x, I32 y -> Int32.equal x y
  | I64 x, I64 y -> Int64.equal x y
  | B x, B y -> Bool.equal x y
  | C x, C y -> Char.equal x y
  | R fa, R fb ->
    List.length fa = List.length fb
    && List.for_all2 (fun (na, va) (nb, vb) -> String.equal na nb && equal va vb) fa fb
  | (F32 _ | F64 _ | I32 _ | I64 _ | B _ | C _ | R _), _ -> false

let rec approx_equal ?rel ?abs a b =
  match (a, b) with
  | F32 x, F32 y | F64 x, F64 y -> Mdh_support.Util.float_equal ?rel ?abs x y
  | R fa, R fb ->
    List.length fa = List.length fb
    && List.for_all2
         (fun (na, va) (nb, vb) -> String.equal na nb && approx_equal ?rel ?abs va vb)
         fa fb
  | _ -> equal a b

let type_mismatch op a b =
  invalid_arg
    (Printf.sprintf "Scalar.%s: type mismatch (%s, %s)" op (value_to_string a)
       (value_to_string b))

let arith op_name fi32 fi64 ff a b =
  match (a, b) with
  | F32 x, F32 y -> F32 (round_f32 (ff x y))
  | F64 x, F64 y -> F64 (ff x y)
  | I32 x, I32 y -> I32 (fi32 x y)
  | I64 x, I64 y -> I64 (fi64 x y)
  | _ -> type_mismatch op_name a b

let add = arith "add" Int32.add Int64.add ( +. )
let sub = arith "sub" Int32.sub Int64.sub ( -. )
let mul = arith "mul" Int32.mul Int64.mul ( *. )
let div = arith "div" Int32.div Int64.div ( /. )

let compare_num a b =
  match (a, b) with
  | F32 x, F32 y | F64 x, F64 y -> Float.compare x y
  | I32 x, I32 y -> Int32.compare x y
  | I64 x, I64 y -> Int64.compare x y
  | B x, B y -> Bool.compare x y
  | C x, C y -> Char.compare x y
  | _ -> type_mismatch "compare_num" a b

let min_v a b = if compare_num a b <= 0 then a else b
let max_v a b = if compare_num a b >= 0 then a else b

let neg = function
  | F32 x -> F32 (-.x)
  | F64 x -> F64 (-.x)
  | I32 x -> I32 (Int32.neg x)
  | I64 x -> I64 (Int64.neg x)
  | (B _ | C _ | R _) as v -> invalid_arg ("Scalar.neg: " ^ value_to_string v)
