(** Scalar (basic) types and dynamically-typed scalar values.

    These correspond to the [BSC_TYP] nonterminal of the MDH directive
    (Listing 14): [fp32], [fp64], [int32], [int64], [bool], [char], and
    record types such as the [db18] structure used by the PRL data-mining
    workload (Listing 11). *)

type ty =
  | Fp32
  | Fp64
  | Int32
  | Int64
  | Bool
  | Char
  | Record of (string * ty) list
      (** Named fields; field order is significant for layout. *)

type value =
  | F32 of float  (** stored rounded to single precision *)
  | F64 of float
  | I32 of int32
  | I64 of int64
  | B of bool
  | C of char
  | R of (string * value) list

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val pp_value : Format.formatter -> value -> unit
val value_to_string : value -> string

val type_of_value : value -> ty
val equal_ty : ty -> ty -> bool

val size_bytes : ty -> int
(** Storage size of one element; records are the sum of their fields. *)

val zero : ty -> value
(** Additive-identity-shaped default value of a type (0, 0.0, false, '\000',
    all-zero record). *)

val round_f32 : float -> float
(** Round a float to the nearest representable single-precision value, as
    fp32 arithmetic would. *)

val f32 : float -> value
val f64 : float -> value
val i32 : int -> value
val i64 : int -> value
val bool : bool -> value

val to_float : value -> float
(** Numeric values as float; raises [Invalid_argument] on records. *)

val to_int : value -> int
(** Integral values as int; raises [Invalid_argument] otherwise. *)

val field : value -> string -> value
(** Record field projection; raises [Invalid_argument] if absent. *)

val set_field : value -> string -> value -> value
(** Functional record field update. *)

val equal : value -> value -> bool
(** Structural equality; exact on floats. *)

val approx_equal : ?rel:float -> ?abs:float -> value -> value -> bool
(** Tolerant equality: floats compared with [Util.float_equal], other types
    structurally; records field-wise. *)

(* Type-directed arithmetic used by the expression evaluator. Integer
   operations wrap; fp32 operations round each intermediate result to single
   precision. All raise [Invalid_argument] on type mismatches. *)

val add : value -> value -> value
val sub : value -> value -> value
val mul : value -> value -> value
val div : value -> value -> value
val min_v : value -> value -> value
val max_v : value -> value -> value
val neg : value -> value
val compare_num : value -> value -> int
(** Numeric ordering; raises on records and mixed types. *)
