type t = int array

let validate shape =
  Array.iteri
    (fun d n ->
      if n <= 0 then
        invalid_arg (Printf.sprintf "Shape: extent %d of dimension %d is not positive" n d))
    shape

let rank = Array.length
let num_elements = Mdh_support.Util.product

let equal a b = a = b
let to_string = Mdh_support.Util.string_of_dims

let linearize shape idx =
  if Array.length idx <> Array.length shape then
    invalid_arg
      (Printf.sprintf "Shape.linearize: rank mismatch (index rank %d, shape rank %d)"
         (Array.length idx) (Array.length shape));
  let offset = ref 0 in
  for d = 0 to Array.length shape - 1 do
    let i = idx.(d) in
    if i < 0 || i >= shape.(d) then
      invalid_arg
        (Printf.sprintf "Shape.linearize: index %d out of bounds [0,%d) in dimension %d" i
           shape.(d) d);
    offset := (!offset * shape.(d)) + i
  done;
  !offset

let delinearize shape offset =
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let rest = ref offset in
  for d = rank - 1 downto 0 do
    idx.(d) <- !rest mod shape.(d);
    rest := !rest / shape.(d)
  done;
  idx

let in_bounds shape idx =
  Array.length idx = Array.length shape
  && Array.for_all2 (fun i n -> i >= 0 && i < n) idx shape

let iter shape f =
  let rank = Array.length shape in
  if Array.exists (fun n -> n <= 0) shape then ()
  else begin
    let idx = Array.make rank 0 in
    let rec loop d =
      if d = rank then f idx
      else
        for i = 0 to shape.(d) - 1 do
          idx.(d) <- i;
          loop (d + 1)
        done
    in
    loop 0
  end

let fold shape ~init ~f =
  let acc = ref init in
  iter shape (fun idx -> acc := f !acc idx);
  !acc

let concat_extent shape ~dim n =
  let out = Array.copy shape in
  out.(dim) <- n;
  out
