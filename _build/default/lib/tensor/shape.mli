(** Multi-dimensional extents and row-major index arithmetic. *)

type t = int array
(** Extent per dimension; every extent must be positive. The empty array is
    the shape of a scalar (one element). *)

val validate : t -> unit
(** Raises [Invalid_argument] if any extent is non-positive. *)

val rank : t -> int
val num_elements : t -> int

val equal : t -> t -> bool
val to_string : t -> string

val linearize : t -> int array -> int
(** Row-major linear offset of a multi-index; bounds-checked. *)

val delinearize : t -> int -> int array
(** Inverse of {!linearize}. *)

val in_bounds : t -> int array -> bool

val iter : t -> (int array -> unit) -> unit
(** Iterate over all multi-indices in lexicographic (row-major) order. The
    index array passed to the callback is reused between calls; copy it if
    retained. *)

val fold : t -> init:'a -> f:('a -> int array -> 'a) -> 'a

val concat_extent : t -> dim:int -> int -> t
(** [concat_extent shape ~dim n] replaces the extent of [dim] with [n]. *)
