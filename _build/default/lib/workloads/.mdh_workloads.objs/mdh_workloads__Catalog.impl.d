lib/workloads/catalog.ml: Ccsdt Deep_learning Linalg List Mbbs Prl Stencils String Workload
