lib/workloads/ccsdt.mli: Workload
