lib/workloads/deep_learning.ml: Array List Mdh_combine Mdh_directive Mdh_expr Mdh_support Mdh_tensor Workload
