lib/workloads/deep_learning.mli: Workload
