lib/workloads/linalg.mli: Workload
