lib/workloads/mbbs.mli: Workload
