lib/workloads/prl.mli: Mdh_combine Mdh_tensor Workload
