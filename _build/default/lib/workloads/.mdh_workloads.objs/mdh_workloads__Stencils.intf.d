lib/workloads/stencils.mli: Workload
