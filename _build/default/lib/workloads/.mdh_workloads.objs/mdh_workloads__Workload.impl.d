lib/workloads/workload.ml: List Mdh_core Mdh_directive Mdh_support Mdh_tensor Printf
