lib/workloads/workload.mli: Mdh_core Mdh_directive Mdh_support Mdh_tensor
