(** The full case-study catalogue. *)

val figure3 : Workload.t list
(** The eleven computations of Figure 3, in the figure's row order. *)

val all : Workload.t list
(** [figure3] plus MBBS. *)

val find : string -> Workload.t option
(** Case-insensitive lookup by [wl_name]. *)
