module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p
let fadd = Combine.add Scalar.Fp32

let dims = [ "h3"; "h2"; "h1"; "p6"; "p5"; "p4"; "h7" ]

let make params =
  let e name = p params name in
  let nest =
    List.fold_right
      (fun d acc -> D.for_ d (e d) acc)
      dims
      (D.body
         [ D.assign "out"
             Expr.[ idx "h3"; idx "h2"; idx "h1"; idx "p6"; idx "p5"; idx "p4" ]
             Expr.(
               read "t2" [ idx "h7"; idx "p4"; idx "p5"; idx "h1" ]
               * read "v2" [ idx "h3"; idx "h2"; idx "p6"; idx "h7" ]) ])
  in
  D.make ~name:"CCSD(T)"
    ~out:[ D.buffer "out" Scalar.Fp32 ]
    ~inp:[ D.buffer "t2" Scalar.Fp32; D.buffer "v2" Scalar.Fp32 ]
    ~combine_ops:
      [ Combine.cc; Combine.cc; Combine.cc; Combine.cc; Combine.cc; Combine.cc;
        Combine.pw fadd ]
    nest

let gen params ~seed =
  let e name = p params name in
  let rng = Rng.create seed in
  Buffer.env_of_list
    [ Workload.float_buffer "t2" rng [| e "h7"; e "p4"; e "p5"; e "h1" |];
      Workload.float_buffer "v2" rng [| e "h3"; e "h2"; e "p6"; e "h7" |] ]

let get_f env name idx =
  Scalar.to_float (Dense.get (Buffer.data (Buffer.env_find env name)) idx)

let reference params env =
  let e name = p params name in
  let out =
    Dense.of_fn Scalar.Fp32 [| e "h3"; e "h2"; e "h1"; e "p6"; e "p5"; e "p4" |]
      (fun idx ->
        let acc = ref 0.0 in
        for h7 = 0 to e "h7" - 1 do
          acc :=
            Scalar.round_f32
              (!acc
              +. Scalar.round_f32
                   (get_f env "t2" [| h7; idx.(5); idx.(4); idx.(2) |]
                   *. get_f env "v2" [| idx.(0); idx.(1); idx.(3); h7 |]))
        done;
        Scalar.f32 !acc)
  in
  Buffer.env_add env (Buffer.of_dense "out" out)

let ccsdt =
  { Workload.wl_name = "CCSD(T)"; domain = "Quantum Chem."; basic_type = "fp32"; make;
    paper_inputs =
      [ ("1",
         [ ("h3", 24); ("h2", 16); ("h1", 16); ("p6", 24); ("p5", 16); ("p4", 16);
           ("h7", 24) ]);
        ("2",
         [ ("h3", 24); ("h2", 16); ("h1", 16); ("p6", 24); ("p5", 24); ("p4", 16);
           ("h7", 16) ]) ];
    test_params =
      [ ("h3", 3); ("h2", 2); ("h1", 3); ("p6", 2); ("p5", 3); ("p4", 2); ("h7", 4) ];
    gen; reference = Some reference }
