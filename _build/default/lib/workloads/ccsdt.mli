(** CCSD(T) — the quantum-chemistry case study (Figure 3): one of the
    7-dimensional tensor contractions from the coupled-cluster triples
    correction (the sd_t_d1-style kernels of Kim et al., CGO '19 [23]):

    {v out[h3,h2,h1,p6,p5,p4] += t2[h7,p4,p5,h1] * v2[h3,h2,p6,h7] v}

    Six concatenation dimensions and one summed dimension (h7). This is the
    computation on which OpenACC is >150x slower than MDH without manual
    tiling (Section 5.2), because a 7D nest with one reduction needs
    aggressive tiling and full-device parallelisation to run well. For
    input 2, Figure 3's printed operand shapes (24x16x24x16 for both
    operands) force h7 = 16; the remaining extents follow the same kernel. *)

val ccsdt : Workload.t
