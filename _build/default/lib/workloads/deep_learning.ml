module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p
let fadd = Combine.add Scalar.Fp32

let mcc_out_extent ~img_extent ~flt_extent = ((img_extent - flt_extent) / 2) + 1

let get_f env name idx =
  Scalar.to_float (Dense.get (Buffer.data (Buffer.env_find env name)) idx)

(* --- MCC (Listing 12) --- *)

let mcc_img_shape params =
  let e name = p params name in
  (* the declared, "artificially enlarged" image buffer: [N, 2P+R-1, 2Q+S-1, C] *)
  [| e "N"; (2 * e "P") + e "R" - 1; (2 * e "Q") + e "S" - 1; e "C" |]

let mcc =
  let make params =
    let e name = p params name in
    let nest =
      List.fold_right
        (fun (d, extent) acc -> D.for_ d extent acc)
        [ ("n", e "N"); ("p", e "P"); ("q", e "Q"); ("k", e "K"); ("r", e "R");
          ("s", e "S"); ("c", e "C") ]
        (D.body
           [ D.assign "res"
               Expr.[ idx "n"; idx "p"; idx "q"; idx "k" ]
               Expr.(
                 read "img"
                   [ idx "n"; (int 2 * idx "p") + idx "r"; (int 2 * idx "q") + idx "s";
                     idx "c" ]
                 * read "flt" [ idx "k"; idx "r"; idx "s"; idx "c" ]) ])
    in
    D.make ~name:"MCC"
      ~out:[ D.buffer "res" Scalar.Fp32 ]
      ~inp:
        [ D.buffer ~shape:(mcc_img_shape params) "img" Scalar.Fp32;
          D.buffer "flt" Scalar.Fp32 ]
      ~combine_ops:
        [ Combine.cc; Combine.cc; Combine.cc; Combine.cc; Combine.pw fadd;
          Combine.pw fadd; Combine.pw fadd ]
      nest
  in
  let gen params ~seed =
    let e name = p params name in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "img" rng (mcc_img_shape params);
        Workload.float_buffer "flt" rng [| e "K"; e "R"; e "S"; e "C" |] ]
  in
  let reference params env =
    let e name = p params name in
    let out =
      Dense.of_fn Scalar.Fp32 [| e "N"; e "P"; e "Q"; e "K" |] (fun idx ->
          let acc = ref 0.0 in
          for r = 0 to e "R" - 1 do
            for s = 0 to e "S" - 1 do
              for c = 0 to e "C" - 1 do
                acc :=
                  !acc
                  +. (get_f env "img" [| idx.(0); (2 * idx.(1)) + r; (2 * idx.(2)) + s; c |]
                     *. get_f env "flt" [| idx.(3); r; s; c |])
              done
            done
          done;
          Scalar.f32 !acc)
    in
    Buffer.env_add env (Buffer.of_dense "res" out)
  in
  { Workload.wl_name = "MCC"; domain = "Deep Learning"; basic_type = "fp32"; make;
    paper_inputs =
      [ (* ResNet-50 late layer: 7x7x512 image, 512 3x3 filters, stride 2 *)
        ("1",
         [ ("N", 1); ("P", 3); ("Q", 3); ("K", 512); ("R", 3); ("S", 3); ("C", 512) ]);
        (* ResNet-50 first layer: 230x230x3 image, 64 7x7 filters, stride 2 *)
        ("2",
         [ ("N", 1); ("P", 112); ("Q", 112); ("K", 64); ("R", 7); ("S", 7); ("C", 3) ]) ];
    test_params =
      [ ("N", 2); ("P", 3); ("Q", 2); ("K", 3); ("R", 3); ("S", 2); ("C", 2) ];
    gen; reference = Some reference }

(* --- MCC_Caps --- *)

let caps_img_shape params =
  let e name = p params name in
  [| e "N"; (2 * e "P") + e "R" - 1; (2 * e "Q") + e "S" - 1; e "C"; e "M"; e "M" |]

let mcc_caps =
  let make params =
    let e name = p params name in
    let m = e "M" in
    let nest =
      List.fold_right
        (fun (d, extent) acc -> D.for_ d extent acc)
        [ ("n", e "N"); ("p", e "P"); ("q", e "Q"); ("k", e "K"); ("mi", m); ("mj", m);
          ("r", e "R"); ("s", e "S"); ("c", e "C"); ("mk", m) ]
        (D.body
           [ D.assign "res"
               Expr.[ idx "n"; idx "p"; idx "q"; idx "k"; idx "mi"; idx "mj" ]
               Expr.(
                 read "img"
                   [ idx "n"; (int 2 * idx "p") + idx "r"; (int 2 * idx "q") + idx "s";
                     idx "c"; idx "mi"; idx "mk" ]
                 * read "flt" [ idx "k"; idx "r"; idx "s"; idx "c"; idx "mk"; idx "mj" ]) ])
    in
    D.make ~name:"MCC_Caps"
      ~out:[ D.buffer "res" Scalar.Fp32 ]
      ~inp:
        [ D.buffer ~shape:(caps_img_shape params) "img" Scalar.Fp32;
          D.buffer "flt" Scalar.Fp32 ]
      ~combine_ops:
        [ Combine.cc; Combine.cc; Combine.cc; Combine.cc; Combine.cc; Combine.cc;
          Combine.pw fadd; Combine.pw fadd; Combine.pw fadd; Combine.pw fadd ]
      nest
  in
  let gen params ~seed =
    let e name = p params name in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "img" rng (caps_img_shape params);
        Workload.float_buffer "flt" rng
          [| e "K"; e "R"; e "S"; e "C"; e "M"; e "M" |] ]
  in
  let reference params env =
    let e name = p params name in
    let m = e "M" in
    let out =
      Dense.of_fn Scalar.Fp32 [| e "N"; e "P"; e "Q"; e "K"; m; m |] (fun idx ->
          let acc = ref 0.0 in
          for r = 0 to e "R" - 1 do
            for s = 0 to e "S" - 1 do
              for c = 0 to e "C" - 1 do
                for mk = 0 to m - 1 do
                  acc :=
                    !acc
                    +. (get_f env "img"
                          [| idx.(0); (2 * idx.(1)) + r; (2 * idx.(2)) + s; c; idx.(4); mk |]
                       *. get_f env "flt" [| idx.(3); r; s; c; mk; idx.(5) |])
                done
              done
            done
          done;
          Scalar.f32 !acc)
    in
    Buffer.env_add env (Buffer.of_dense "res" out)
  in
  { Workload.wl_name = "MCC_Caps"; domain = "Deep Learning"; basic_type = "fp32"; make;
    paper_inputs =
      [ ("1",
         [ ("N", 16); ("P", 112); ("Q", 112); ("K", 64); ("R", 7); ("S", 7); ("C", 3);
           ("M", 4) ]);
        ("2",
         [ ("N", 1); ("P", 112); ("Q", 112); ("K", 67); ("R", 7); ("S", 7); ("C", 3);
           ("M", 4) ]) ];
    test_params =
      [ ("N", 1); ("P", 2); ("Q", 2); ("K", 2); ("R", 2); ("S", 2); ("C", 2); ("M", 2) ];
    gen; reference = Some reference }
