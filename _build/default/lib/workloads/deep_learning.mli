(** Deep-learning case studies: Multi-Channel Convolution (MCC, Listing 12)
    and its capsule-network generalisation MCC_Caps (Figure 3) — the
    10-dimensional computation Barham & Isard single out as "particularly
    challenging to optimize" [6].

    MCC (stride 2, NHWC):
    {v res[n,p,q,k] += img[n, 2p+r, 2q+s, c] * flt[k,r,s,c] v}
    Four concatenation dimensions, three summed ([r], [s], [c]). The [img]
    buffer is declared larger than the accessed region (lines 4-5 of
    Listing 12 / footnote 7).

    MCC_Caps adds 4x4 matrix dimensions: each sliding-window element is a
    small matrix product,
    {v res[n,p,q,k,mi,mj] += img[n,2p+r,2q+s,c,mi,mk] * flt[k,r,s,c,mk,mj] v}
    with reductions over [r], [s], [c], [mk]. *)

val mcc : Workload.t
val mcc_caps : Workload.t

val mcc_out_extent : img_extent:int -> flt_extent:int -> int
(** [P] such that stride-2 accesses [2p+r] stay within the declared image
    extent: [(img - flt + 1) / 2] rounded up... see implementation. *)
