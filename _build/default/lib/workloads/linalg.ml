module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p
let fadd = Combine.add Scalar.Fp32

let get_f env name idx = Scalar.to_float (Dense.get (Buffer.data (Buffer.env_find env name)) idx)

let out_f32 name shape f =
  Buffer.of_dense name (Dense.of_fn Scalar.Fp32 shape (fun idx -> Scalar.f32 (f idx)))

(* --- Dot --- *)

let dot =
  let make params =
    let k = p params "K" in
    D.make ~name:"Dot"
      ~out:[ D.buffer "r" Scalar.Fp32 ]
      ~inp:[ D.buffer "x" Scalar.Fp32; D.buffer "y" Scalar.Fp32 ]
      ~combine_ops:[ Combine.pw fadd ]
      (D.for_ "k" k
         (D.body
            [ D.assign "r" [ Expr.int 0 ]
                Expr.(read "x" [ idx "k" ] * read "y" [ idx "k" ]) ]))
  in
  let gen params ~seed =
    let k = p params "K" in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "x" rng [| k |]; Workload.float_buffer "y" rng [| k |] ]
  in
  let reference params env =
    let k = p params "K" in
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := Scalar.round_f32 (!acc +. Scalar.round_f32 (get_f env "x" [| i |] *. get_f env "y" [| i |]))
    done;
    Buffer.env_add env (out_f32 "r" [| 1 |] (fun _ -> !acc))
  in
  { Workload.wl_name = "Dot"; domain = "Simulation"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("K", 1 lsl 24) ]); ("2", [ ("K", 10_000_000) ]) ];
    test_params = [ ("K", 37) ]; gen; reference = Some reference }

(* --- MatVec (Listing 8) --- *)

let matvec =
  let make params =
    let i = p params "I" and k = p params "K" in
    D.make ~name:"MatVec"
      ~out:[ D.buffer "w" Scalar.Fp32 ]
      ~inp:[ D.buffer "M" Scalar.Fp32; D.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw fadd ]
      (D.for_ "i" i
         (D.for_ "k" k
            (D.body
               [ D.assign "w" [ Expr.idx "i" ]
                   Expr.(read "M" [ idx "i"; idx "k" ] * read "v" [ idx "k" ]) ])))
  in
  let gen params ~seed =
    let i = p params "I" and k = p params "K" in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "M" rng [| i; k |]; Workload.float_buffer "v" rng [| k |] ]
  in
  let reference params env =
    let i = p params "I" and k = p params "K" in
    Buffer.env_add env
      (out_f32 "w" [| i |] (fun idx ->
           let acc = ref 0.0 in
           for c = 0 to k - 1 do
             acc :=
               Scalar.round_f32
                 (!acc +. Scalar.round_f32 (get_f env "M" [| idx.(0); c |] *. get_f env "v" [| c |]))
           done;
           !acc))
  in
  { Workload.wl_name = "MatVec"; domain = "Simulation"; basic_type = "fp32"; make;
    paper_inputs =
      [ ("1", [ ("I", 4096); ("K", 4096) ]); ("2", [ ("I", 8192); ("K", 8192) ]) ];
    test_params = [ ("I", 7); ("K", 9) ]; gen; reference = Some reference }

(* --- MatMul (Listing 9) --- *)

let matmul =
  let make params =
    let i = p params "I" and j = p params "J" and k = p params "K" in
    D.make ~name:"MatMul"
      ~out:[ D.buffer "C" Scalar.Fp32 ]
      ~inp:[ D.buffer "A" Scalar.Fp32; D.buffer "B" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.cc; Combine.pw fadd ]
      (D.for_ "i" i
         (D.for_ "j" j
            (D.for_ "k" k
               (D.body
                  [ D.assign "C" [ Expr.idx "i"; Expr.idx "j" ]
                      Expr.(read "A" [ idx "i"; idx "k" ] * read "B" [ idx "k"; idx "j" ]) ]))))
  in
  let gen params ~seed =
    let i = p params "I" and j = p params "J" and k = p params "K" in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "A" rng [| i; k |]; Workload.float_buffer "B" rng [| k; j |] ]
  in
  let reference params env =
    let j = p params "J" and k = p params "K" and i = p params "I" in
    Buffer.env_add env
      (out_f32 "C" [| i; j |] (fun idx ->
           let acc = ref 0.0 in
           for c = 0 to k - 1 do
             acc :=
               Scalar.round_f32
                 (!acc
                 +. Scalar.round_f32 (get_f env "A" [| idx.(0); c |] *. get_f env "B" [| c; idx.(1) |]))
           done;
           !acc))
  in
  { Workload.wl_name = "MatMul"; domain = "Simulation/Deep Learning"; basic_type = "fp32";
    make;
    paper_inputs =
      [ ("1", [ ("I", 1024); ("J", 1024); ("K", 1024) ]);
        ("2", [ ("I", 1); ("J", 1000); ("K", 2048) ]) ];
    test_params = [ ("I", 5); ("J", 6); ("K", 7) ]; gen; reference = Some reference }

(* --- MatMul^T --- *)

let matmul_t =
  let make params =
    let i = p params "I" and j = p params "J" and k = p params "K" in
    D.make ~name:"MatMul^T"
      ~out:[ D.buffer "C" Scalar.Fp32 ]
      ~inp:[ D.buffer "A" Scalar.Fp32; D.buffer "B" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.cc; Combine.pw fadd ]
      (D.for_ "i" i
         (D.for_ "j" j
            (D.for_ "k" k
               (D.body
                  [ D.assign "C" [ Expr.idx "i"; Expr.idx "j" ]
                      Expr.(read "A" [ idx "k"; idx "i" ] * read "B" [ idx "j"; idx "k" ]) ]))))
  in
  let gen params ~seed =
    let i = p params "I" and j = p params "J" and k = p params "K" in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "A" rng [| k; i |]; Workload.float_buffer "B" rng [| j; k |] ]
  in
  let reference params env =
    let j = p params "J" and k = p params "K" and i = p params "I" in
    Buffer.env_add env
      (out_f32 "C" [| i; j |] (fun idx ->
           let acc = ref 0.0 in
           for c = 0 to k - 1 do
             acc :=
               Scalar.round_f32
                 (!acc
                 +. Scalar.round_f32 (get_f env "A" [| c; idx.(0) |] *. get_f env "B" [| idx.(1); c |]))
           done;
           !acc))
  in
  { Workload.wl_name = "MatMul^T"; domain = "Deep Learning"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("I", 10); ("J", 500); ("K", 64) ]) ];
    test_params = [ ("I", 4); ("J", 5); ("K", 6) ]; gen; reference = Some reference }

(* --- bMatMul --- *)

let bmatmul =
  let make params =
    let b = p params "B" and i = p params "I" and j = p params "J" and k = p params "K" in
    D.make ~name:"bMatMul"
      ~out:[ D.buffer "C" Scalar.Fp32 ]
      ~inp:[ D.buffer "A" Scalar.Fp32; D.buffer "Bm" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.cc; Combine.cc; Combine.pw fadd ]
      (D.for_ "b" b
         (D.for_ "i" i
            (D.for_ "j" j
               (D.for_ "k" k
                  (D.body
                     [ D.assign "C" [ Expr.idx "b"; Expr.idx "i"; Expr.idx "j" ]
                         Expr.(
                           read "A" [ idx "b"; idx "i"; idx "k" ]
                           * read "Bm" [ idx "b"; idx "k"; idx "j" ]) ])))))
  in
  let gen params ~seed =
    let b = p params "B" and i = p params "I" and j = p params "J" and k = p params "K" in
    let rng = Rng.create seed in
    Buffer.env_of_list
      [ Workload.float_buffer "A" rng [| b; i; k |];
        Workload.float_buffer "Bm" rng [| b; k; j |] ]
  in
  let reference params env =
    let b = p params "B" and i = p params "I" and j = p params "J" and k = p params "K" in
    Buffer.env_add env
      (out_f32 "C" [| b; i; j |] (fun idx ->
           let acc = ref 0.0 in
           for c = 0 to k - 1 do
             acc :=
               Scalar.round_f32
                 (!acc
                 +. Scalar.round_f32
                      (get_f env "A" [| idx.(0); idx.(1); c |]
                      *. get_f env "Bm" [| idx.(0); c; idx.(2) |]))
           done;
           !acc))
  in
  { Workload.wl_name = "bMatMul"; domain = "Deep Learning"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("B", 16); ("I", 10); ("J", 500); ("K", 64) ]) ];
    test_params = [ ("B", 3); ("I", 4); ("J", 5); ("K", 6) ]; gen;
    reference = Some reference }
