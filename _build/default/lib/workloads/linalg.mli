(** Linear-algebra case studies: Dot, MatVec, MatMul, MatMul^T, bMatMul
    (Figure 3, "Simulation" and "Deep Learning" rows). *)

val dot : Workload.t
(** [r = sum_k x[k] * y[k]] — 1D, reduction-only: the computation PPCG
    cannot map to a GPU and polyhedral compilers cannot optimise
    (Section 5.2). *)

val matvec : Workload.t
(** Listing 8: [w[i] = sum_k M[i,k] * v[k]]. *)

val matmul : Workload.t
(** Listing 9: [C[i,j] = sum_k A[i,k] * B[k,j]]. *)

val matmul_t : Workload.t
(** Transposed-A variant from the deep-learning traces:
    [C[i,j] = sum_k A[k,i] * B[j,k]]. *)

val bmatmul : Workload.t
(** Batched: [C[b,i,j] = sum_k A[b,i,k] * B[b,k,j]]. *)
