module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p

let make params =
  let i = p params "I" and j = p params "J" in
  D.make ~name:"MBBS"
    ~out:[ D.buffer "b" Scalar.Fp32 ]
    ~inp:[ D.buffer "a" Scalar.Fp32 ]
    ~combine_ops:[ Combine.ps (Combine.add Scalar.Fp32); Combine.cc ]
    (D.for_ "i" i
       (D.for_ "j" j
          (D.body
             [ D.assign "b" [ Expr.idx "i"; Expr.idx "j" ]
                 (Expr.read "a" [ Expr.idx "i"; Expr.idx "j" ]) ])))

let gen params ~seed =
  let i = p params "I" and j = p params "J" in
  let rng = Rng.create seed in
  Buffer.env_of_list [ Workload.float_buffer "a" rng [| i; j |] ]

let reference params env =
  let i = p params "I" and j = p params "J" in
  let a = Buffer.data (Buffer.env_find env "a") in
  let out = Dense.create Scalar.Fp32 [| i; j |] in
  for col = 0 to j - 1 do
    let acc = ref 0.0 in
    for row = 0 to i - 1 do
      acc := Scalar.round_f32 (!acc +. Scalar.to_float (Dense.get a [| row; col |]));
      Dense.set out [| row; col |] (Scalar.f32 !acc)
    done
  done;
  Buffer.env_add env (Buffer.of_dense "b" out)

let mbbs =
  { Workload.wl_name = "MBBS"; domain = "Data Analytics"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("I", 4096); ("J", 4096) ]) ];
    test_params = [ ("I", 8); ("J", 5) ]; gen; reference = Some reference }
