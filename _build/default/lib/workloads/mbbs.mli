(** Maximum Bottom Box Sum (MBBS; Farzan & Nicolet, PLDI '19 [14] /
    Listing 13): prefix sums over accumulated column vectors of a matrix,
    the case study whose reduction operator is [ps] (prefix sum) rather
    than [cc]/[pw] — keeping the reduction dimension's extent instead of
    collapsing it.

    {v b[i,j] = sum over i' <= i of a[i',j] v}

    Not part of Figure 3/4; included as the expressiveness example that TVM
    rejects ("Invalid comm_reducer", Section 5.2) and exercised by the
    failure-matrix bench and the prefix-sum example. *)

val mbbs : Workload.t
