module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p

let get_f env name idx =
  Scalar.to_float (Dense.get (Buffer.data (Buffer.env_find env name)) idx)

let out_f32 name shape f =
  Buffer.of_dense name (Dense.of_fn Scalar.Fp32 shape (fun idx -> Scalar.f32 (f idx)))

(* --- Gaussian 2D: 3x3 blur with 1-2-1 weights --- *)

let gaussian_weight di dj =
  let w = function 0 -> 2.0 | _ -> 1.0 in
  w di *. w dj /. 16.0

let gaussian_2d =
  let make params =
    let n = p params "N" and m = p params "M" in
    let term di dj =
      let w = gaussian_weight (di - 1) (dj - 1) in
      Expr.(f32 w * read "img" [ idx "i" + int di; idx "j" + int dj ])
    in
    let sum =
      List.fold_left
        (fun acc (di, dj) -> Expr.(acc + term di dj))
        (term 0 0)
        [ (0, 1); (0, 2); (1, 0); (1, 1); (1, 2); (2, 0); (2, 1); (2, 2) ]
    in
    D.make ~name:"Gaussian_2D"
      ~out:[ D.buffer "blur" Scalar.Fp32 ]
      ~inp:[ D.buffer "img" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.cc ]
      (D.for_ "i" n
         (D.for_ "j" m (D.body [ D.assign "blur" [ Expr.idx "i"; Expr.idx "j" ] sum ])))
  in
  let gen params ~seed =
    let n = p params "N" and m = p params "M" in
    let rng = Rng.create seed in
    Buffer.env_of_list [ Workload.float_buffer "img" rng [| n + 2; m + 2 |] ]
  in
  let reference params env =
    let n = p params "N" and m = p params "M" in
    Buffer.env_add env
      (out_f32 "blur" [| n; m |] (fun idx ->
           let acc = ref 0.0 in
           for di = 0 to 2 do
             for dj = 0 to 2 do
               acc :=
                 !acc
                 +. (gaussian_weight (di - 1) (dj - 1)
                    *. get_f env "img" [| idx.(0) + di; idx.(1) + dj |])
             done
           done;
           !acc))
  in
  { Workload.wl_name = "Gaussian_2D"; domain = "Image Processing"; basic_type = "fp32";
    make;
    paper_inputs =
      [ ("1", [ ("N", 224); ("M", 224) ]); ("2", [ ("N", 4096); ("M", 4096) ]) ];
    test_params = [ ("N", 6); ("M", 5) ]; gen; reference = Some reference }

(* --- Jacobi 1D (Listing 10) --- *)

let jacobi_1d =
  let make params =
    let n = p params "N" in
    D.make ~name:"Jacobi1D"
      ~out:[ D.buffer "y" Scalar.Fp32 ]
      ~inp:[ D.buffer "x" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc ]
      (D.for_ "i" n
         (D.body
            [ D.assign "y" [ Expr.idx "i" ]
                Expr.(
                  f32 (1.0 /. 3.0)
                  * (read "x" [ idx "i" ] + read "x" [ idx "i" + int 1 ]
                    + read "x" [ idx "i" + int 2 ])) ]))
  in
  let gen params ~seed =
    let n = p params "N" in
    let rng = Rng.create seed in
    Buffer.env_of_list [ Workload.float_buffer "x" rng [| n + 2 |] ]
  in
  let reference params env =
    let n = p params "N" in
    Buffer.env_add env
      (out_f32 "y" [| n |] (fun idx ->
           let at o = get_f env "x" [| idx.(0) + o |] in
           1.0 /. 3.0 *. (at 0 +. at 1 +. at 2)))
  in
  { Workload.wl_name = "Jacobi1D"; domain = "Simulation"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("N", 100_000_000) ]) ];
    test_params = [ ("N", 11) ]; gen; reference = Some reference }

(* --- Jacobi 3D: 7-point sweep --- *)

let jacobi_3d =
  let make params =
    let n = p params "N" in
    let at di dj dk =
      Expr.(read "grid" [ idx "i" + int di; idx "j" + int dj; idx "k" + int dk ])
    in
    let sum =
      Expr.(
        at 1 1 1 + at 0 1 1 + at 2 1 1 + at 1 0 1 + at 1 2 1 + at 1 1 0 + at 1 1 2)
    in
    D.make ~name:"Jacobi_3D"
      ~out:[ D.buffer "next" Scalar.Fp32 ]
      ~inp:[ D.buffer "grid" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.cc; Combine.cc ]
      (D.for_ "i" n
         (D.for_ "j" n
            (D.for_ "k" n
               (D.body
                  [ D.assign "next"
                      [ Expr.idx "i"; Expr.idx "j"; Expr.idx "k" ]
                      Expr.(f32 (1.0 /. 7.0) * sum) ]))))
  in
  let gen params ~seed =
    let n = p params "N" in
    let rng = Rng.create seed in
    Buffer.env_of_list [ Workload.float_buffer "grid" rng [| n + 2; n + 2; n + 2 |] ]
  in
  let reference params env =
    let n = p params "N" in
    Buffer.env_add env
      (out_f32 "next" [| n; n; n |] (fun idx ->
           let at di dj dk =
             get_f env "grid" [| idx.(0) + di; idx.(1) + dj; idx.(2) + dk |]
           in
           Scalar.round_f32
             (Scalar.round_f32 (1.0 /. 7.0)
             *. (at 1 1 1 +. at 0 1 1 +. at 2 1 1 +. at 1 0 1 +. at 1 2 1 +. at 1 1 0
                +. at 1 1 2))))
  in
  { Workload.wl_name = "Jacobi_3D"; domain = "Simulation"; basic_type = "fp32"; make;
    paper_inputs = [ ("1", [ ("N", 254) ]); ("2", [ ("N", 510) ]) ];
    test_params = [ ("N", 5) ]; gen; reference = Some reference }
