(** Stencil case studies: Gaussian 2D and Jacobi 3D (Figure 3, "Image
    Processing" / "Simulation"). Both are reduction-free ([cc] on every
    dimension, blank "Red. Dim." cells in Figure 3): the stencil's weighted
    sum is unrolled inside the scalar function, with one textual access per
    stencil point (the #ACC counting of Listing 14). Inputs are padded by
    the stencil radius, following Listing 10. *)

val gaussian_2d : Workload.t
(** 3x3 Gaussian blur, weights 1-2-1 / 16. *)

val jacobi_3d : Workload.t
(** 7-point Jacobi sweep: mean of the six face neighbours and the centre. *)

val jacobi_1d : Workload.t
(** Listing 10 verbatim: [y[i] = 1/3 * (x[i] + x[i+1] + x[i+2])]. Not part
    of Figure 3 (the figure's stencils are Gaussian 2D and Jacobi 3D);
    kept as the paper's introductory stencil example. *)
