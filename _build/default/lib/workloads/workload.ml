module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Rng = Mdh_support.Rng

type params = (string * int) list

type t = {
  wl_name : string;
  domain : string;
  basic_type : string;
  make : params -> Mdh_directive.Directive.t;
  paper_inputs : (string * params) list;
  test_params : params;
  gen : params -> seed:int -> Buffer.env;
  reference : (params -> Buffer.env -> Buffer.env) option;
}

let p params name =
  match List.assoc_opt name params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "workload: missing parameter %S" name)

let to_md_hom t params = Mdh_directive.Transform.to_md_hom_exn (t.make params)

let float_buffer name rng shape =
  Buffer.of_dense name
    (Dense.of_fn Scalar.Fp32 shape (fun _ -> Scalar.f32 ((Rng.float rng 2.0) -. 1.0)))

let sizes_strings t params =
  let md = to_md_hom t params in
  List.map
    (fun (i : Mdh_core.Md_hom.input) -> Shape.to_string i.inp_shape)
    md.Mdh_core.Md_hom.inputs
