(** The case-study catalogue of Figure 3.

    A workload packages: a parametric MDH-directive program, the paper's two
    input-size configurations, a small configuration for correctness tests,
    a seeded input generator, and (where practical) an independent
    hand-written oracle. *)

type params = (string * int) list

type t = {
  wl_name : string;  (** Figure 3 "Computation" *)
  domain : string;  (** Figure 3 "Domain" *)
  basic_type : string;  (** Figure 3 "Basic Type" *)
  make : params -> Mdh_directive.Directive.t;
      (** Raises [Invalid_argument] on missing parameters. *)
  paper_inputs : (string * params) list;  (** Figure 3 "No." -> sizes *)
  test_params : params;  (** small sizes for correctness testing *)
  gen : params -> seed:int -> Mdh_tensor.Buffer.env;
      (** deterministic input buffers matching the directive's inp clause *)
  reference : (params -> Mdh_tensor.Buffer.env -> Mdh_tensor.Buffer.env) option;
      (** independent oracle extending the env with expected outputs *)
}

val p : params -> string -> int
(** Parameter lookup; raises [Invalid_argument] naming the parameter. *)

val to_md_hom : t -> params -> Mdh_core.Md_hom.t
(** Build, validate and transform the workload's directive. *)

val float_buffer :
  string -> Mdh_support.Rng.t -> Mdh_tensor.Shape.t -> Mdh_tensor.Buffer.t
(** fp32 buffer with uniform values in [-1, 1). *)

val sizes_strings : t -> params -> string list
(** The Figure 3 "Sizes" cells: one entry per input buffer. *)
