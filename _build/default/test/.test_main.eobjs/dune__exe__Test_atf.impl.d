test/test_atf.ml: Alcotest Fun List Mdh_atf Mdh_lowering Mdh_machine Mdh_support Mdh_workloads Option Param Search Space Tuner
