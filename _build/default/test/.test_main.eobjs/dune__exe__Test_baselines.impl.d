test/test_baselines.ml: Alcotest Array Common List Mdh_baselines Mdh_core Mdh_lowering Mdh_machine Mdh_workloads Numba Openacc Openmp Polyhedral Printf Registry Tvm Vendor
