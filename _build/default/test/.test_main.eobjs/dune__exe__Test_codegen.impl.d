test/test_codegen.ml: Alcotest Host Kernel List Mdh_codegen Mdh_lowering Mdh_machine Mdh_workloads Openmp_c Printf Str_replace String Test_util
