test/test_combine.ml: Alcotest Array Combine List Mdh_combine Mdh_tensor QCheck2 QCheck_alcotest Test_util
