test/test_core.ml: Alcotest Array List Md_hom Mdh_combine Mdh_core Mdh_directive Mdh_expr Mdh_support Mdh_tensor Option Printf QCheck2 QCheck_alcotest Semantics Test_util
