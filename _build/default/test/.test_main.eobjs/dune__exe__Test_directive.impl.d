test/test_directive.ml: Alcotest Directive Format List Mdh_combine Mdh_core Mdh_directive Mdh_expr Mdh_tensor Option Test_util Transform Validate
