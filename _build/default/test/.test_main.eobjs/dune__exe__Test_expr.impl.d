test/test_expr.ml: Alcotest Analysis Array Eval Expr List Mdh_expr Mdh_tensor QCheck2 QCheck_alcotest Result Test_util Typecheck
