test/test_lowering.ml: Alcotest Array Cost Footprint List Lower Mdh_combine Mdh_core Mdh_lowering Mdh_machine Mdh_tensor Mdh_workloads Plan Printf Result Schedule Simulate
