test/test_machine.ml: Alcotest Array Device List Mdh_machine Roofline
