test/test_model_props.ml: Array Float Fun List Mdh_atf Mdh_core Mdh_lowering Mdh_machine Mdh_support Mdh_workloads QCheck2 QCheck_alcotest Result
