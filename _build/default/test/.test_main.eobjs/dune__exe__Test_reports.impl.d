test/test_reports.ml: Alcotest Failures Figure3 Figure4 Lazy List Mdh_machine Mdh_reports Mdh_support Portability Printf Prl_study String Transfer_study
