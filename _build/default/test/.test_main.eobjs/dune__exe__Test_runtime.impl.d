test/test_runtime.ml: Alcotest Array Atomic Exec Format Kernels List Mdh_core Mdh_lowering Mdh_runtime Mdh_support Mdh_tensor Mdh_workloads Pool Printf String
