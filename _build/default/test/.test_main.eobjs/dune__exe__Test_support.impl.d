test/test_support.ml: Alcotest Array Fun List Mdh_support QCheck2 QCheck_alcotest Rng Stats Table Test_util Util
