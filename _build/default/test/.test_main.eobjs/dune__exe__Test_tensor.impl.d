test/test_tensor.ml: Alcotest Array Buffer Dense Hashtbl Index_fn List Mdh_support Mdh_tensor QCheck2 QCheck_alcotest Scalar Shape Test_util
