test/test_util.ml: Alcotest Mdh_tensor String
