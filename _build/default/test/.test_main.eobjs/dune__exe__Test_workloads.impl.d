test/test_workloads.ml: Alcotest Array List Mdh_combine Mdh_core Mdh_directive Mdh_support Mdh_tensor Mdh_workloads Test_util
