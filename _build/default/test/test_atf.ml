(* Tests for the ATF auto-tuner: parameter spaces, search strategies,
   schedule tuning. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
open Mdh_atf

let check = Alcotest.check

let cpu = Device.xeon6140_like

(* a small space with a genuine interdependence: y <= x *)
let dependent_space () =
  Space.make
    [ Param.independent "x" [ 1; 2; 3 ];
      Param.dependent "y" (fun config ->
          List.filter (fun v -> v <= Param.value config "x") [ 1; 2; 3 ]) ]

let test_enumerate_respects_constraints () =
  let configs = Space.enumerate (dependent_space ()) in
  check Alcotest.int "count" 6 (List.length configs);
  List.iter
    (fun c ->
      check Alcotest.bool "y <= x" true (Param.value c "y" <= Param.value c "x"))
    configs

let test_enumerate_cap () =
  let sp = Space.make [ Param.independent "x" (List.init 1000 Fun.id) ] in
  check Alcotest.int "capped" 10 (List.length (Space.enumerate ~cap:10 sp))

let test_duplicate_params_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Space.make: duplicate parameter names")
    (fun () -> ignore (Space.make [ Param.independent "x" [ 1 ]; Param.independent "x" [ 2 ] ]))

let test_sample_valid () =
  let sp = dependent_space () in
  let rng = Mdh_support.Rng.create 3 in
  for _ = 1 to 100 do
    match Space.sample sp rng with
    | None -> Alcotest.fail "dead end in a live space"
    | Some c -> check Alcotest.bool "valid" true (Param.value c "y" <= Param.value c "x")
  done

let test_sample_dead_end () =
  let sp =
    Space.make
      [ Param.independent "x" [ 1 ];
        Param.dependent "y" (fun _ -> []) ]
  in
  check Alcotest.bool "dead end" true (Space.sample sp (Mdh_support.Rng.create 1) = None)

let test_neighbour_stays_valid () =
  let sp = dependent_space () in
  let rng = Mdh_support.Rng.create 5 in
  let config = ref (Option.get (Space.sample sp rng)) in
  for _ = 1 to 200 do
    config := Space.neighbour sp rng !config;
    check Alcotest.bool "valid" true
      (Param.value !config "y" <= Param.value !config "x")
  done

(* quadratic bowl over the space: minimum at x=2,y=2 *)
let bowl config =
  let x = Param.value config "x" and y = Param.value config "y" in
  Some (float_of_int (((x - 2) * (x - 2)) + ((y - 2) * (y - 2))))

let test_exhaustive_finds_optimum () =
  match Search.exhaustive (dependent_space ()) ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r ->
    check (Alcotest.float 1e-9) "optimum" 0.0 r.Search.best_cost;
    check Alcotest.int "all evaluated" 6 r.Search.evaluations

let test_random_search_improves () =
  match Search.random_search (dependent_space ()) ~seed:7 ~budget:50 ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r ->
    check Alcotest.bool "found optimum in tiny space" true (r.Search.best_cost <= 1.0);
    check Alcotest.bool "trace monotone" true
      (let costs = List.map snd r.Search.trace in
       List.for_all2 (fun a b -> b <= a)
         (List.filteri (fun i _ -> i < List.length costs - 1) costs)
         (List.tl costs))

let test_annealing_finds_optimum () =
  match Search.simulated_annealing (dependent_space ()) ~seed:11 ~budget:100 ~cost:bowl with
  | None -> Alcotest.fail "no result"
  | Some r -> check (Alcotest.float 1e-9) "optimum" 0.0 r.Search.best_cost

let test_search_deterministic () =
  let run () =
    Option.get (Search.simulated_annealing (dependent_space ()) ~seed:13 ~budget:60 ~cost:bowl)
  in
  let a = run () and b = run () in
  check Alcotest.bool "same best" true (a.Search.best = b.Search.best);
  check Alcotest.int "same evals" a.Search.evaluations b.Search.evaluations

let test_search_skips_illegal () =
  let cost config = if Param.value config "x" = 2 then None else bowl config in
  match Search.exhaustive (dependent_space ()) ~cost with
  | None -> Alcotest.fail "no result"
  | Some r -> check Alcotest.bool "optimum avoids illegal" true (Param.value r.Search.best "x" <> 2)

let test_all_illegal_yields_none () =
  check Alcotest.bool "none" true
    (Search.exhaustive (dependent_space ()) ~cost:(fun _ -> None) = None)

(* --- tuning real workloads --- *)

let test_tune_improves_on_default () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", 1024); ("J", 1024); ("K", 1024) ] in
  let default_cost =
    match Cost.seconds md cpu Cost.tuned_codegen (Mdh_lowering.Lower.mdh_default md cpu) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Tuner.tune ~budget:200 md cpu Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check Alcotest.bool "tuned <= default" true (t.Tuner.estimated_s <= default_cost);
    check Alcotest.bool "legal" true (Schedule.legal md cpu t.Tuner.schedule = Ok ())

let test_tune_parallelises_reduction_for_dot () =
  let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 1 lsl 24) ] in
  match Tuner.tune ~budget:100 md Device.a100_like Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    (* the only way to use the GPU on dot is to parallelise the reduction *)
    check (Alcotest.list Alcotest.int) "reduction parallel" [ 0 ]
      t.Tuner.schedule.Schedule.parallel_dims

let test_tune_respects_parallel_options () =
  let md = W.to_md_hom Mdh_workloads.Linalg.dot [ ("K", 65536) ] in
  match Tuner.tune ~parallel_options:[ [] ] ~budget:50 md cpu Cost.tuned_codegen with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check (Alcotest.list Alcotest.int) "restricted" []
      t.Tuner.schedule.Schedule.parallel_dims

let test_tune_deterministic () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 4096); ("K", 4096) ] in
  let run () =
    match Tuner.tune ~budget:80 ~seed:3 md cpu Cost.tuned_codegen with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  check Alcotest.bool "same schedule" true (a.Tuner.schedule = b.Tuner.schedule)

let suite =
  let tc = Alcotest.test_case in
  ( "atf",
    [ tc "enumerate respects constraints" `Quick test_enumerate_respects_constraints;
      tc "enumerate cap" `Quick test_enumerate_cap;
      tc "duplicate params rejected" `Quick test_duplicate_params_rejected;
      tc "sample valid" `Quick test_sample_valid;
      tc "sample dead end" `Quick test_sample_dead_end;
      tc "neighbour stays valid" `Quick test_neighbour_stays_valid;
      tc "exhaustive optimum" `Quick test_exhaustive_finds_optimum;
      tc "random search improves" `Quick test_random_search_improves;
      tc "annealing optimum" `Quick test_annealing_finds_optimum;
      tc "search deterministic" `Quick test_search_deterministic;
      tc "search skips illegal" `Quick test_search_skips_illegal;
      tc "all illegal yields none" `Quick test_all_illegal_yields_none;
      tc "tune improves on default" `Quick test_tune_improves_on_default;
      tc "tune parallelises dot reduction" `Quick test_tune_parallelises_reduction_for_dot;
      tc "tune respects parallel options" `Quick test_tune_respects_parallel_options;
      tc "tune deterministic" `Quick test_tune_deterministic ] )
