(* Tests for the baseline system models: capability restrictions, typed
   failures matching Section 5.2, and the qualitative speedup shape of
   Figure 4. *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
open Mdh_baselines

let check = Alcotest.check

let cpu = Device.xeon6140_like
let gpu = Device.a100_like

let md_of w inp = W.to_md_hom w (List.assoc inp w.W.paper_inputs)

let compile_exn (sys : Common.system) ?(tuned = true) md dev =
  match sys.Common.compile ~tuned md dev with
  | Ok o -> o
  | Error f -> Alcotest.failf "%s: %s" sys.Common.sys_name (Common.failure_to_string f)

let seconds sys ?tuned md dev = Common.seconds (compile_exn sys ?tuned md dev)

(* --- device targeting --- *)

let test_wrong_device_rejected () =
  let md = md_of Mdh_workloads.Linalg.matvec "1" in
  (match Openmp.system.Common.compile ~tuned:false md gpu with
  | Error (Common.Wrong_device _) -> ()
  | _ -> Alcotest.fail "OpenMP must reject GPUs");
  match Openacc.system.Common.compile ~tuned:false md cpu with
  | Error (Common.Wrong_device _) -> ()
  | _ -> Alcotest.fail "OpenACC must reject CPUs"

(* --- the Section 5.2 failure matrix --- *)

let test_ppcg_fails_on_dot () =
  let md = md_of Mdh_workloads.Linalg.dot "1" in
  match Polyhedral.ppcg.Common.compile ~tuned:false md gpu with
  | Error (Common.No_parallel_dim _) -> ()
  | _ -> Alcotest.fail "PPCG must fail on Dot"

let test_ppcg_oor_on_deep_learning_untuned () =
  let md = md_of Mdh_workloads.Deep_learning.mcc_caps "1" in
  (match Polyhedral.ppcg.Common.compile ~tuned:false md gpu with
  | Error (Common.Out_of_resources _) -> ()
  | Ok _ -> Alcotest.fail "PPCG heuristic tiles must blow shared memory on MCC_Caps"
  | Error f -> Alcotest.failf "unexpected: %s" (Common.failure_to_string f));
  (* with ATF-tuned tiles it compiles *)
  match Polyhedral.ppcg.Common.compile ~tuned:true md gpu with
  | Ok _ -> ()
  | Error f ->
    Alcotest.failf "PPCG(ATF) must compile MCC_Caps: %s" (Common.failure_to_string f)

let test_ppcg_handles_matmul () =
  let md = md_of Mdh_workloads.Linalg.matmul "1" in
  ignore (compile_exn Polyhedral.ppcg ~tuned:false md gpu)

let test_pluto_fails_on_prl () =
  let md = md_of Mdh_workloads.Prl.prl "1" in
  match Polyhedral.pluto.Common.compile ~tuned:false md cpu with
  | Error (Common.Polyhedral_extraction_error _) -> ()
  | _ -> Alcotest.fail "Pluto must fail on PRL's data-dependent ifs"

let test_tvm_fails_on_custom_reducers () =
  let prl = md_of Mdh_workloads.Prl.prl "1" in
  (match Tvm.system.Common.compile ~tuned:true prl cpu with
  | Error (Common.Unsupported_reduction _) -> ()
  | _ -> Alcotest.fail "TVM must reject prl_best");
  let mbbs = md_of Mdh_workloads.Mbbs.mbbs "1" in
  match Tvm.system.Common.compile ~tuned:true mbbs cpu with
  | Error (Common.Unsupported_reduction _) -> ()
  | _ -> Alcotest.fail "TVM must reject prefix-sum reductions"

let test_openmp_accepts_prl_but_serialises_reduction () =
  let md = md_of Mdh_workloads.Prl.prl "1" in
  let o = compile_exn Openmp.system ~tuned:false md cpu in
  (* the custom reduction dimension (1) must not be parallelised *)
  check Alcotest.bool "reduction serialised" false
    (List.mem 1 o.Common.schedule.Schedule.parallel_dims)

let test_openmp_parallelises_builtin_reduction () =
  let md = md_of Mdh_workloads.Linalg.matvec "1" in
  let o = compile_exn Openmp.system ~tuned:false md cpu in
  check Alcotest.bool "add reduction allowed" true
    (List.mem 1 o.Common.schedule.Schedule.parallel_dims)

let test_numba_pranges_largest_loop () =
  (* MatMul Inp.2 has I=1: a user puts prange on the 1000-wide j loop *)
  let md = md_of Mdh_workloads.Linalg.matmul "2" in
  let o = compile_exn Numba.system ~tuned:false md cpu in
  check (Alcotest.list Alcotest.int) "prange on j" [ 1 ]
    o.Common.schedule.Schedule.parallel_dims

let test_openacc_manual_tiles_clamped () =
  let md = md_of Mdh_workloads.Ccsdt.ccsdt "1" in
  match Openacc.compile_with_tiles [| 999; 999; 999; 999; 999; 999; 999 |] md gpu with
  | Ok o ->
    check Alcotest.bool "tiles clamped to extents" true
      (Array.for_all2 ( = ) o.Common.schedule.Schedule.tile_sizes
         md.Mdh_core.Md_hom.sizes)
  | Error f -> Alcotest.failf "%s" (Common.failure_to_string f)

let test_vendor_efficiency_shape_dependent () =
  (* the same vendor model must be near-peak on 1024^3 and visibly worse on
     the skinny 1x1000x2048 GEMM relative to MDH *)
  let square = md_of Mdh_workloads.Linalg.matmul "1" in
  let skinny = md_of Mdh_workloads.Linalg.matmul "2" in
  let ratio md =
    seconds Vendor.system md cpu /. seconds Registry.mdh md cpu
  in
  check Alcotest.bool "skinny penalised" true (ratio skinny > 1.3 *. ratio square)

(* --- vendor classification --- *)

let test_vendor_classification () =
  let routine w inp = Vendor.classify (md_of w inp) in
  check Alcotest.bool "dot" true (routine Mdh_workloads.Linalg.dot "1" = Some Vendor.Dot);
  check Alcotest.bool "matvec" true
    (routine Mdh_workloads.Linalg.matvec "1" = Some Vendor.Gemv);
  check Alcotest.bool "matmul" true
    (routine Mdh_workloads.Linalg.matmul "1" = Some Vendor.Gemm);
  check Alcotest.bool "bmatmul" true
    (routine Mdh_workloads.Linalg.bmatmul "1" = Some Vendor.Gemm);
  check Alcotest.bool "mcc" true
    (routine Mdh_workloads.Deep_learning.mcc "2" = Some Vendor.Conv);
  check Alcotest.bool "prl unsupported" true (routine Mdh_workloads.Prl.prl "1" = None);
  check Alcotest.bool "stencil unsupported" true
    (routine Mdh_workloads.Stencils.jacobi_3d "1" = None);
  check Alcotest.bool "ccsdt unsupported" true
    (routine Mdh_workloads.Ccsdt.ccsdt "1" = None);
  check Alcotest.bool "mbbs unsupported" true (routine Mdh_workloads.Mbbs.mbbs "1" = None)

let test_vendor_names_by_device () =
  let md = md_of Mdh_workloads.Linalg.matmul "1" in
  check Alcotest.string "gpu" "cuBLAS" (compile_exn Vendor.system md gpu).Common.system;
  check Alcotest.string "cpu" "oneMKL" (compile_exn Vendor.system md cpu).Common.system;
  let conv = md_of Mdh_workloads.Deep_learning.mcc "2" in
  check Alcotest.string "gpu conv" "cuDNN" (compile_exn Vendor.system conv gpu).Common.system

(* --- Figure 4 qualitative shape --- *)

let mdh_seconds md dev = seconds Registry.mdh md dev

let test_mdh_beats_openacc_hugely_on_ccsdt () =
  let md = md_of Mdh_workloads.Ccsdt.ccsdt "1" in
  let speedup = seconds Openacc.system ~tuned:false md gpu /. mdh_seconds md gpu in
  (* paper: >150x *)
  check Alcotest.bool
    (Printf.sprintf "CCSD(T) OpenACC/MDH = %.0fx (expect > 50)" speedup)
    true (speedup > 50.0)

let test_mdh_beats_openmp_on_matmul () =
  let md = md_of Mdh_workloads.Linalg.matmul "1" in
  let speedup = seconds Openmp.system ~tuned:false md cpu /. mdh_seconds md cpu in
  check Alcotest.bool (Printf.sprintf "MatMul OpenMP/MDH = %.1fx (expect > 2)" speedup)
    true (speedup > 2.0)

let test_prl_inp1_vs_inp2_shape_gpu () =
  (* Section 5.2: OpenACC does fine on Inp.2 but poorly on Inp.1 *)
  let ratio inp =
    let md = md_of Mdh_workloads.Prl.prl inp in
    seconds Openacc.system ~tuned:false md gpu /. mdh_seconds md gpu
  in
  let r1 = ratio "1" and r2 = ratio "2" in
  check Alcotest.bool
    (Printf.sprintf "PRL gpu: Inp1 gap %.1fx much bigger than Inp2 gap %.1fx" r1 r2)
    true
    (r1 > 3.0 *. r2 && r2 < 4.0)

let test_vendor_competitive_on_square_matmul () =
  let md = md_of Mdh_workloads.Linalg.matmul "1" in
  List.iter
    (fun dev ->
      let ratio = seconds Vendor.system md dev /. mdh_seconds md dev in
      (* vendor library is at least competitive on its home turf *)
      check Alcotest.bool
        (Printf.sprintf "%s square matmul vendor/mdh = %.2f in [0.5, 1.3]"
           dev.Device.device_name ratio)
        true
        (ratio > 0.5 && ratio < 1.3))
    [ cpu; gpu ]

let test_mdh_beats_vendor_on_odd_shapes () =
  (* deep-learning shapes: MatMul^T and bMatMul (the up-to-5x CPU claim) *)
  List.iter
    (fun w ->
      let md = md_of w "1" in
      let ratio = seconds Vendor.system md cpu /. mdh_seconds md cpu in
      check Alcotest.bool
        (Printf.sprintf "%s vendor/mdh on cpu = %.1fx (expect > 1.5)"
           (md.Mdh_core.Md_hom.hom_name) ratio)
        true (ratio > 1.5))
    [ Mdh_workloads.Linalg.matmul_t; Mdh_workloads.Linalg.bmatmul ]

let test_mdh_wins_or_ties_everywhere () =
  (* MDH must never lose by more than a whisker to any baseline on any
     Figure 3 workload: the headline "consistently achieves higher
     performance" claim *)
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (inp, params) ->
          let md = W.to_md_hom w params in
          List.iter
            (fun dev ->
              let mdh = mdh_seconds md dev in
              List.iter
                (fun (sys : Common.system) ->
                  match sys.Common.compile ~tuned:true md dev with
                  | Error _ -> ()
                  | Ok o ->
                    let ratio = Common.seconds o /. mdh in
                    (* vendor libraries are allowed to win on their home
                       shapes ("competitive — and in some cases superior",
                       Section 1); every directive/compiler baseline must
                       not beat MDH *)
                    let floor = if sys == Vendor.system then 0.5 else 0.95 in
                    check Alcotest.bool
                      (Printf.sprintf "%s inp%s on %s vs %s: %.2fx >= %.2f"
                         w.W.wl_name inp dev.Device.device_name o.Common.system ratio
                         floor)
                      true (ratio >= floor))
                (Registry.baselines_for dev))
            [ cpu; gpu ])
        w.W.paper_inputs)
    Catalog.figure3

let suite =
  let tc = Alcotest.test_case in
  ( "baselines",
    [ tc "wrong device rejected" `Quick test_wrong_device_rejected;
      tc "PPCG fails on dot" `Quick test_ppcg_fails_on_dot;
      tc "PPCG OOR on DL untuned" `Quick test_ppcg_oor_on_deep_learning_untuned;
      tc "PPCG handles matmul" `Quick test_ppcg_handles_matmul;
      tc "Pluto fails on PRL" `Quick test_pluto_fails_on_prl;
      tc "TVM rejects custom reducers" `Quick test_tvm_fails_on_custom_reducers;
      tc "OpenMP serialises custom reduction" `Quick
        test_openmp_accepts_prl_but_serialises_reduction;
      tc "OpenMP parallelises builtin reduction" `Quick
        test_openmp_parallelises_builtin_reduction;
      tc "Numba pranges largest loop" `Quick test_numba_pranges_largest_loop;
      tc "OpenACC manual tiles clamped" `Quick test_openacc_manual_tiles_clamped;
      tc "vendor shape-dependent efficiency" `Quick test_vendor_efficiency_shape_dependent;
      tc "vendor classification" `Quick test_vendor_classification;
      tc "vendor names per device" `Quick test_vendor_names_by_device;
      tc "CCSD(T): MDH >> OpenACC" `Quick test_mdh_beats_openacc_hugely_on_ccsdt;
      tc "MatMul: MDH > OpenMP" `Quick test_mdh_beats_openmp_on_matmul;
      tc "PRL Inp1/Inp2 shape (gpu)" `Quick test_prl_inp1_vs_inp2_shape_gpu;
      tc "vendor competitive on square matmul" `Quick
        test_vendor_competitive_on_square_matmul;
      tc "MDH beats vendor on odd shapes" `Quick test_mdh_beats_vendor_on_odd_shapes;
      tc "MDH wins or ties everywhere" `Slow test_mdh_wins_or_ties_everywhere ] )
