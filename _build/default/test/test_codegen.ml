(* Structural tests for the CUDA/OpenCL kernel generators. The kernels
   cannot be compiled here (no CUDA/OpenCL toolchain), so the tests assert
   the structure the schedule mandates: index decomposition, tile loops,
   tree reductions, struct definitions, scan accumulators, and the
   generator's documented restrictions. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Lower = Mdh_lowering.Lower
module Schedule = Mdh_lowering.Schedule
open Mdh_codegen

let check = Alcotest.check
let gpu = Device.a100_like
let cpu = Device.xeon6140_like

let generate_exn dialect w params dev =
  let md = W.to_md_hom w params in
  let sched = Lower.mdh_default md dev in
  match Kernel.generate dialect md dev sched with
  | Ok src -> src
  | Error e -> Alcotest.failf "codegen: %a" Kernel.pp_error e

let assert_contains src fragments =
  List.iter
    (fun f ->
      check Alcotest.bool (Printf.sprintf "contains %S" f) true (Test_util.contains src f))
    fragments

let test_cuda_matvec_tree_reduction () =
  let src = generate_exn Kernel.cuda Mdh_workloads.Linalg.matvec [ ("I", 64); ("K", 32) ] gpu in
  assert_contains src
    [ "__global__ void mdh_matvec"; "blockIdx.x"; "threadIdx.x"; "__shared__";
      "__syncthreads();"; "mdh_s >>= 1"; "w[(i)] = mdh_sh_w[0];";
      "float *w, const float *M, const float *v" ]

let test_opencl_dialect_markers () =
  let src = generate_exn Kernel.opencl Mdh_workloads.Linalg.matvec [ ("I", 64); ("K", 32) ] cpu in
  assert_contains src
    [ "__kernel void mdh_matvec"; "get_group_id(0)"; "get_local_id(0)";
      "barrier(CLK_LOCAL_MEM_FENCE);"; "__global float *w" ];
  check Alcotest.bool "no cuda markers" false (Test_util.contains src "blockIdx")

let test_dot_single_group () =
  (* dot has no cc dims: one group, pure tree reduction *)
  let src = generate_exn Kernel.cuda Mdh_workloads.Linalg.dot [ ("K", 4096) ] gpu in
  assert_contains src [ "if (mdh_g >= 1) return;"; "r[(0)] = mdh_sh_r[0];" ]

let test_index_decomposition () =
  let src =
    generate_exn Kernel.opencl Mdh_workloads.Stencils.gaussian_2d
      [ ("N", 16); ("M", 16) ] cpu
  in
  (* 2D cc space linearised then decomposed by div/mod *)
  assert_contains src [ "mdh_g / 16"; "mdh_g % 16" ]

let test_stencil_is_pure_map () =
  let src =
    generate_exn Kernel.opencl Mdh_workloads.Stencils.jacobi_3d [ ("N", 8) ] cpu
  in
  check Alcotest.bool "no reduction machinery" false (Test_util.contains src "mdh_part");
  (* padded row-major addressing of the 10^3 input *)
  assert_contains src [ "* 10 +" ]

let test_prl_structs_and_custom_combiner () =
  let src = generate_exn Kernel.cuda Mdh_workloads.Prl.prl [ ("N", 16); ("I", 32) ] gpu in
  assert_contains src
    [ "struct mdh_rec_0 {"; "long long match_id;"; "double match_weight;";
      "mdh_combine_prl_best("; "user-defined customising function";
      "struct mdh_rec_1 *match" ]

let test_mbbs_scan () =
  let src = generate_exn Kernel.opencl Mdh_workloads.Mbbs.mbbs [ ("I", 16); ("J", 8) ] cpu in
  assert_contains src [ "/* inclusive scan */"; "(i == 0) ?" ];
  check Alcotest.bool "no tree reduction" false (Test_util.contains src "__local")

let test_sequential_schedule_tiles () =
  (* a sequential schedule with small tiles must show cache-tile loop pairs *)
  let md = W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", 64); ("J", 64); ("K", 64) ] in
  let sched =
    { Schedule.tile_sizes = [| 16; 16; 16 |]; parallel_dims = []; used_layers = [] }
  in
  match Kernel.generate Kernel.cuda md gpu sched with
  | Error e -> Alcotest.failf "codegen: %a" Kernel.pp_error e
  | Ok src ->
    assert_contains src
      [ "/* cache tile */"; "i_tile"; "j_tile"; "k_tile"; "mdh_min(i_tile + 16, 64)" ]

let test_all_workloads_generate () =
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      List.iter
        (fun (dialect, dev) ->
          let sched = Lower.mdh_default md dev in
          match Kernel.generate dialect md dev sched with
          | Ok src ->
            check Alcotest.bool (w.W.wl_name ^ " nonempty") true (String.length src > 200)
          | Error e -> Alcotest.failf "%s: %a" w.W.wl_name Kernel.pp_error e)
        [ (Kernel.cuda, gpu); (Kernel.opencl, cpu) ])
    Mdh_workloads.Catalog.all

let test_illegal_schedule_rejected () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 8); ("K", 8) ] in
  let bad = { Schedule.tile_sizes = [| 8 |]; parallel_dims = []; used_layers = [] } in
  match Kernel.generate Kernel.cuda md gpu bad with
  | Error (Kernel.Illegal_schedule _) -> ()
  | _ -> Alcotest.fail "expected Illegal_schedule"

let test_deterministic () =
  let gen () = generate_exn Kernel.cuda Mdh_workloads.Ccsdt.ccsdt
      Mdh_workloads.Ccsdt.ccsdt.W.test_params gpu
  in
  check Alcotest.string "same source" (gen ()) (gen ())

let test_schedule_in_header () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 64); ("K", 32) ] in
  let sched =
    { Schedule.tile_sizes = [| 16; 8 |]; parallel_dims = [ 0 ]; used_layers = [ 0; 1 ] }
  in
  match Kernel.generate Kernel.cuda md gpu sched with
  | Ok src -> assert_contains src [ "tiles=16x8 parallel=[0] layers=[0,1]" ]
  | Error e -> Alcotest.failf "codegen: %a" Kernel.pp_error e

(* --- host-program generation --- *)

let host_exn dialect w params dev =
  let md = W.to_md_hom w params in
  let sched = Lower.mdh_default md dev in
  match Host.generate dialect md dev sched with
  | Ok bundle -> bundle
  | Error e -> Alcotest.failf "host: %a" Kernel.pp_error e

let test_cuda_host_bundle () =
  let bundle = host_exn Kernel.cuda Mdh_workloads.Linalg.matvec [ ("I", 64); ("K", 32) ] gpu in
  check Alcotest.string "single .cu file" "mdh_matvec.cu" bundle.Host.host_file;
  assert_contains bundle.Host.host_source
    [ "int main(void)"; "cudaMalloc"; "cudaMemcpyHostToDevice"; "cudaMemcpyDeviceToHost";
      "mdh_matvec<<<64, 32>>>(d_w, d_M, d_v);"; "cudaEventElapsedTime"; "checksum";
      "__global__ void mdh_matvec" ]

let test_opencl_host_bundle () =
  let bundle = host_exn Kernel.opencl Mdh_workloads.Linalg.matmul
      [ ("I", 16); ("J", 16); ("K", 16) ] cpu
  in
  check Alcotest.string "kernel file" "mdh_matmul.cl" bundle.Host.kernel_file;
  check Alcotest.string "host file" "mdh_matmul_host.c" bundle.Host.host_file;
  assert_contains bundle.Host.host_source
    [ "clGetPlatformIDs"; "clCreateProgramWithSource"; "clEnqueueNDRangeKernel";
      "clSetKernelArg(kernel, 0, sizeof(cl_mem), &d_C)";
      "\"mdh_matmul.cl\""; "CL_PROFILING_COMMAND_END" ];
  (* the kernel itself stays in the separate .cl source *)
  check Alcotest.bool "host has no kernel body" false
    (Test_util.contains bundle.Host.host_source "__kernel void")

let test_host_record_buffers () =
  let bundle = host_exn Kernel.cuda Mdh_workloads.Prl.prl [ ("N", 8); ("I", 16) ] gpu in
  (* record buffers are allocated with their struct type and byte-filled *)
  assert_contains bundle.Host.host_source
    [ "struct mdh_rec_0 *h_newp"; "struct mdh_rec_1 *h_match"; "unsigned char *p" ]

let test_host_all_workloads () =
  List.iter
    (fun (w : W.t) ->
      let md = W.to_md_hom w w.W.test_params in
      List.iter
        (fun (dialect, dev) ->
          let sched = Lower.mdh_default md dev in
          match Host.generate dialect md dev sched with
          | Ok bundle ->
            check Alcotest.bool (w.W.wl_name ^ " host nonempty") true
              (String.length bundle.Host.host_source > 400)
          | Error e -> Alcotest.failf "%s: %a" w.W.wl_name Kernel.pp_error e)
        [ (Kernel.cuda, gpu); (Kernel.opencl, cpu) ])
    Mdh_workloads.Catalog.all

(* --- OpenMP-C emission (the Listing 2 shape, and its limits) --- *)

let test_openmp_c_matvec () =
  let md = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", 64); ("K", 32) ] in
  match Openmp_c.generate md with
  | Error e -> Alcotest.failf "openmp_c: %a" Kernel.pp_error e
  | Ok src ->
    assert_contains src
      [ "#pragma omp parallel for"; "float sum = 0;";
        "#pragma omp simd reduction(+:sum)"; "sum += "; "w[(i)] = sum;" ];
    check Alcotest.bool "no not-expressible note" false
      (Test_util.contains src "NOT EXPRESSIBLE")

let test_openmp_c_prl_inexpressible () =
  let md = W.to_md_hom Mdh_workloads.Prl.prl [ ("N", 8); ("I", 16) ] in
  match Openmp_c.generate md with
  | Error e -> Alcotest.failf "openmp_c: %a" Kernel.pp_error e
  | Ok src ->
    assert_contains src [ "NOT EXPRESSIBLE"; "prl_best"; "sequentially" ];
    check Alcotest.bool "no reduction clause" false
      (Test_util.contains src "reduction(")

let test_openmp_c_mbbs_scan_inexpressible () =
  let md = W.to_md_hom Mdh_workloads.Mbbs.mbbs [ ("I", 8); ("J", 4) ] in
  match Openmp_c.generate md with
  | Error e -> Alcotest.failf "openmp_c: %a" Kernel.pp_error e
  | Ok src -> assert_contains src [ "NOT EXPRESSIBLE"; "prefix-sum" ]

let test_openmp_c_stencil_plain () =
  let md = W.to_md_hom Mdh_workloads.Stencils.gaussian_2d [ ("N", 8); ("M", 8) ] in
  match Openmp_c.generate md with
  | Error e -> Alcotest.failf "openmp_c: %a" Kernel.pp_error e
  | Ok src ->
    assert_contains src [ "#pragma omp parallel for" ];
    check Alcotest.bool "no accumulator" false (Test_util.contains src "sum")

let test_openmp_c_rejects_multi_reduction () =
  let md = W.to_md_hom Mdh_workloads.Deep_learning.mcc
      Mdh_workloads.Deep_learning.mcc.W.test_params
  in
  match Openmp_c.generate md with
  | Error (Kernel.Unsupported _) -> ()
  | _ -> Alcotest.fail "expected Unsupported for the 3-reduction MCC"

let test_replace_word () =
  check Alcotest.string "word" "0 + ki" (Str_replace.replace_word "k + ki" "k" "0");
  check Alcotest.string "multiple" "(0)*(0)" (Str_replace.replace_word "(p)*(p)" "p" "0");
  check Alcotest.string "untouched" "alpha" (Str_replace.replace_word "alpha" "a" "0")

let suite =
  let tc = Alcotest.test_case in
  ( "codegen",
    [ tc "cuda matvec tree reduction" `Quick test_cuda_matvec_tree_reduction;
      tc "opencl dialect markers" `Quick test_opencl_dialect_markers;
      tc "dot single group" `Quick test_dot_single_group;
      tc "index decomposition" `Quick test_index_decomposition;
      tc "stencil pure map" `Quick test_stencil_is_pure_map;
      tc "prl structs and combiner" `Quick test_prl_structs_and_custom_combiner;
      tc "mbbs scan" `Quick test_mbbs_scan;
      tc "sequential schedule tiles" `Quick test_sequential_schedule_tiles;
      tc "all workloads generate" `Quick test_all_workloads_generate;
      tc "illegal schedule rejected" `Quick test_illegal_schedule_rejected;
      tc "deterministic" `Quick test_deterministic;
      tc "schedule in header" `Quick test_schedule_in_header;
      tc "cuda host bundle" `Quick test_cuda_host_bundle;
      tc "opencl host bundle" `Quick test_opencl_host_bundle;
      tc "host record buffers" `Quick test_host_record_buffers;
      tc "host for all workloads" `Quick test_host_all_workloads;
      tc "openmp-c matvec" `Quick test_openmp_c_matvec;
      tc "openmp-c PRL inexpressible" `Quick test_openmp_c_prl_inexpressible;
      tc "openmp-c MBBS scan inexpressible" `Quick test_openmp_c_mbbs_scan_inexpressible;
      tc "openmp-c stencil plain" `Quick test_openmp_c_stencil_plain;
      tc "openmp-c rejects multi-reduction" `Quick test_openmp_c_rejects_multi_reduction;
      tc "replace_word" `Quick test_replace_word ] )
