(* Tests for the MDH high-level representation and its three evaluators
   (reference, in-place exec, tiled decomposition). *)

module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Transform = Mdh_directive.Transform
open Mdh_core

let check = Alcotest.check

(* --- tiny workload builders (through the directive frontend) --- *)

let matvec_md ~i ~k =
  D.make ~name:"matvec"
    ~out:[ D.buffer "w" Scalar.Fp32 ]
    ~inp:[ D.buffer "M" Scalar.Fp32; D.buffer "v" Scalar.Fp32 ]
    ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
    (D.for_ "i" i
       (D.for_ "k" k
          (D.body
             [ D.assign "w" [ Expr.idx "i" ]
                 Expr.(read "M" [ idx "i"; idx "k" ] * read "v" [ idx "k" ]) ])))
  |> Transform.to_md_hom_exn

let dot_md ~k =
  D.make ~name:"dot"
    ~out:[ D.buffer "r" Scalar.Fp32 ]
    ~inp:[ D.buffer "x" Scalar.Fp32; D.buffer "y" Scalar.Fp32 ]
    ~combine_ops:[ Combine.pw (Combine.add Scalar.Fp32) ]
    (D.for_ "k" k
       (D.body
          [ D.assign "r" [ Expr.int 0 ]
              Expr.(read "x" [ idx "k" ] * read "y" [ idx "k" ]) ]))
  |> Transform.to_md_hom_exn

let mbbs_scan_md ~i ~j =
  (* prefix sums over columns: b[i,j] = sum_{i'<=i} a[i',j] *)
  D.make ~name:"col_scan"
    ~out:[ D.buffer "b" Scalar.Int32 ]
    ~inp:[ D.buffer "a" Scalar.Int32 ]
    ~combine_ops:[ Combine.ps (Combine.add Scalar.Int32); Combine.cc ]
    (D.for_ "i" i
       (D.for_ "j" j
          (D.body [ D.assign "b" [ Expr.idx "i"; Expr.idx "j" ] (Expr.read "a" [ Expr.idx "i"; Expr.idx "j" ]) ])))
  |> Transform.to_md_hom_exn

let stencil_md ~n =
  (* 3-point stencil over a padded input of size n+2 *)
  D.make ~name:"jacobi1d"
    ~out:[ D.buffer "y" Scalar.Fp32 ]
    ~inp:[ D.buffer "x" Scalar.Fp32 ]
    ~combine_ops:[ Combine.cc ]
    (D.for_ "i" n
       (D.body
          [ D.assign "y" [ Expr.idx "i" ]
              Expr.(
                f32 0.333
                * (read "x" [ idx "i" ] + read "x" [ idx "i" + int 1 ]
                  + read "x" [ idx "i" + int 2 ])) ]))
  |> Transform.to_md_hom_exn

let float_buffer name rng shape =
  Buffer.of_dense name
    (Dense.of_fn Scalar.Fp32 shape (fun _ ->
         Scalar.f32 (Mdh_support.Rng.float rng 2.0 -. 1.0)))

let int_buffer name rng shape =
  Buffer.of_dense name
    (Dense.of_fn Scalar.Int32 shape (fun _ -> Scalar.i32 (Mdh_support.Rng.int rng 20 - 10)))

(* --- structure --- *)

let test_matvec_structure () =
  let md = matvec_md ~i:4 ~k:3 in
  check Alcotest.int "rank" 2 (Md_hom.rank md);
  check (Alcotest.array Alcotest.int) "sizes" [| 4; 3 |] md.sizes;
  check (Alcotest.list Alcotest.int) "reduction dims" [ 1 ] (Md_hom.reduction_dims md);
  check (Alcotest.list Alcotest.int) "cc dims" [ 0 ] (Md_hom.cc_dims md);
  check (Alcotest.array Alcotest.int) "result shape" [| 4; 1 |] (Md_hom.result_shape md);
  let o = List.hd md.outputs in
  check (Alcotest.array Alcotest.int) "out shape inferred" [| 4 |] o.out_shape;
  let m = Option.get (Md_hom.find_input md "M") in
  check (Alcotest.array Alcotest.int) "M shape inferred" [| 4; 3 |] m.inp_shape;
  let v = Option.get (Md_hom.find_input md "v") in
  check (Alcotest.array Alcotest.int) "v shape inferred" [| 3 |] v.inp_shape

let test_matvec_characteristics () =
  let md = matvec_md ~i:4 ~k:3 in
  let c = Md_hom.characteristics md in
  check Alcotest.int "2D" 2 c.iter_space_rank;
  check Alcotest.int "1 reduction dim" 1 c.n_reduction_dims;
  (* MatVec is Non-Inj. in Figure 3 because of the vector access (i,k)->(k) *)
  check (Alcotest.option Alcotest.bool) "non-injective" (Some false) c.injective_accesses

let test_dot_characteristics () =
  let md = dot_md ~k:8 in
  let c = Md_hom.characteristics md in
  check Alcotest.int "1D" 1 c.iter_space_rank;
  (* Dot is Inj. in Figure 3: (k)->(k) accesses *)
  check (Alcotest.option Alcotest.bool) "injective" (Some true) c.injective_accesses

let test_stencil_characteristics () =
  let md = stencil_md ~n:8 in
  let c = Md_hom.characteristics md in
  check Alcotest.int "no reductions" 0 c.n_reduction_dims;
  let x = Option.get (Md_hom.find_input md "x") in
  check Alcotest.int "3 accesses" 3 (List.length x.accesses);
  check (Alcotest.array Alcotest.int) "padded input shape" [| 10 |] x.inp_shape

let test_flops_per_point () =
  let md = matvec_md ~i:4 ~k:3 in
  check Alcotest.int "one multiply" 1 (Md_hom.flops_per_point md);
  check Alcotest.int "points" 12 (Md_hom.total_points md)

(* --- semantics: reference vs hand-written oracle --- *)

let oracle_matvec m v ~i ~k =
  Array.init i (fun r ->
      let acc = ref 0.0 in
      for c = 0 to k - 1 do
        acc := Scalar.round_f32 (!acc +. Scalar.round_f32 (m.(r).(c) *. v.(c)))
      done;
      !acc)

let test_reference_matvec () =
  let i = 5 and k = 7 in
  let md = matvec_md ~i ~k in
  let rng = Mdh_support.Rng.create 1 in
  let m = Array.init i (fun _ -> Array.init k (fun _ -> Mdh_support.Rng.float rng 1.0)) in
  let v = Array.init k (fun _ -> Mdh_support.Rng.float rng 1.0) in
  let env =
    Buffer.env_of_list
      [ Buffer.of_dense "M" (Dense.of_fn Scalar.Fp32 [| i; k |] (fun ix -> Scalar.f32 m.(ix.(0)).(ix.(1))));
        Buffer.of_dense "v" (Dense.of_fn Scalar.Fp32 [| k |] (fun ix -> Scalar.f32 v.(ix.(0)))) ]
  in
  let out = Semantics.result_tensor md (Semantics.reference md env) "w" in
  let expect = oracle_matvec m v ~i ~k in
  let got = Array.init i (fun r -> Scalar.to_float (Dense.get out [| r |])) in
  Array.iteri
    (fun r e -> check (Alcotest.float 1e-4) (Printf.sprintf "w[%d]" r) e got.(r))
    expect

let test_reference_scan () =
  let md = mbbs_scan_md ~i:4 ~j:2 in
  let a = [| [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |]; [| 4; 40 |] |] in
  let env =
    Buffer.env_of_list
      [ Buffer.of_dense "a"
          (Dense.of_fn Scalar.Int32 [| 4; 2 |] (fun ix -> Scalar.i32 a.(ix.(0)).(ix.(1)))) ]
  in
  let out = Semantics.result_tensor md (Semantics.reference md env) "b" in
  check Test_util.scalar_value "b[3,0]" (Scalar.i32 10) (Dense.get out [| 3; 0 |]);
  check Test_util.scalar_value "b[2,1]" (Scalar.i32 60) (Dense.get out [| 2; 1 |]);
  check Test_util.scalar_value "b[0,0]" (Scalar.i32 1) (Dense.get out [| 0; 0 |])

let test_reference_stencil () =
  let md = stencil_md ~n:4 in
  let env =
    Buffer.env_of_list
      [ Buffer.of_dense "x" (Dense.of_fn Scalar.Fp32 [| 6 |] (fun ix -> Scalar.f32 (float_of_int ix.(0)))) ]
  in
  let out = Semantics.result_tensor md (Semantics.reference md env) "y" in
  check (Alcotest.float 1e-4) "y[0]" (0.333 *. 3.0) (Scalar.to_float (Dense.get out [| 0 |]));
  check (Alcotest.float 1e-4) "y[3]" (0.333 *. 12.0) (Scalar.to_float (Dense.get out [| 3 |]))

(* --- exec and eval_tiled agree with reference --- *)

let envs_equal md env_a env_b =
  List.for_all
    (fun (o : Md_hom.output) ->
      Dense.approx_equal ~rel:1e-4 ~abs:1e-5
        (Buffer.data (Buffer.env_find env_a o.out_name))
        (Buffer.data (Buffer.env_find env_b o.out_name)))
    md.Md_hom.outputs

let test_exec_matches_reference_matvec () =
  let md = matvec_md ~i:6 ~k:5 in
  let rng = Mdh_support.Rng.create 2 in
  let env =
    Buffer.env_of_list [ float_buffer "M" rng [| 6; 5 |]; float_buffer "v" rng [| 5 |] ]
  in
  check Alcotest.bool "exec = reference" true
    (envs_equal md (Semantics.reference md env) (Semantics.exec md env))

let test_exec_matches_reference_scan () =
  let md = mbbs_scan_md ~i:5 ~j:3 in
  let rng = Mdh_support.Rng.create 3 in
  let env = Buffer.env_of_list [ int_buffer "a" rng [| 5; 3 |] ] in
  check Alcotest.bool "exec = reference" true
    (envs_equal md (Semantics.reference md env) (Semantics.exec md env))

let test_tiled_matches_reference_various_tiles () =
  let md = matvec_md ~i:6 ~k:5 in
  let rng = Mdh_support.Rng.create 4 in
  let env =
    Buffer.env_of_list [ float_buffer "M" rng [| 6; 5 |]; float_buffer "v" rng [| 5 |] ]
  in
  let reference = Semantics.reference md env in
  List.iter
    (fun tiles ->
      check Alcotest.bool
        (Printf.sprintf "tiles %s" (Mdh_support.Util.string_of_dims tiles))
        true
        (envs_equal md reference (Semantics.eval_tiled md env ~tile_sizes:tiles)))
    [ [| 1; 1 |]; [| 2; 2 |]; [| 3; 5 |]; [| 6; 1 |]; [| 4; 3 |]; [| 100; 100 |] ]

let test_tiled_matches_reference_scan () =
  let md = mbbs_scan_md ~i:8 ~j:2 in
  let rng = Mdh_support.Rng.create 5 in
  let env = Buffer.env_of_list [ int_buffer "a" rng [| 8; 2 |] ] in
  let reference = Semantics.reference md env in
  List.iter
    (fun tiles ->
      check Alcotest.bool
        (Printf.sprintf "tiles %s" (Mdh_support.Util.string_of_dims tiles))
        true
        (envs_equal md reference (Semantics.eval_tiled md env ~tile_sizes:tiles)))
    [ [| 1; 1 |]; [| 3; 1 |]; [| 4; 2 |]; [| 8; 2 |]; [| 5; 2 |] ]

(* Decomposition law as a qcheck property: random matvec sizes and tile
   sizes, tiled evaluation equals reference. *)
let prop_decomposition_law =
  let gen =
    QCheck2.Gen.(
      let* i = int_range 1 8 in
      let* k = int_range 1 8 in
      let* ti = int_range 1 8 in
      let* tk = int_range 1 8 in
      let* seed = int_range 0 10000 in
      return (i, k, ti, tk, seed))
  in
  QCheck2.Test.make ~name:"MDH decomposition law (matvec)" ~count:60 gen
    (fun (i, k, ti, tk, seed) ->
      let md = matvec_md ~i ~k in
      let rng = Mdh_support.Rng.create seed in
      let env =
        Buffer.env_of_list [ float_buffer "M" rng [| i; k |]; float_buffer "v" rng [| k |] ]
      in
      envs_equal md (Semantics.reference md env)
        (Semantics.eval_tiled md env ~tile_sizes:[| ti; tk |]))

let prop_decomposition_law_scan =
  let gen =
    QCheck2.Gen.(
      let* i = int_range 1 10 in
      let* j = int_range 1 4 in
      let* ti = int_range 1 10 in
      let* seed = int_range 0 10000 in
      return (i, j, ti, seed))
  in
  QCheck2.Test.make ~name:"MDH decomposition law (column scan / ps)" ~count:60 gen
    (fun (i, j, ti, seed) ->
      let md = mbbs_scan_md ~i ~j in
      let rng = Mdh_support.Rng.create seed in
      let env = Buffer.env_of_list [ int_buffer "a" rng [| i; j |] ] in
      envs_equal md (Semantics.reference md env)
        (Semantics.eval_tiled md env ~tile_sizes:[| ti; j |]))

let test_exec_rejects_distinct_pw_ops () =
  (* the in-place executor cannot interleave two different pw operators;
     it must fail loudly and `reference` must still work *)
  let md = matvec_md ~i:3 ~k:3 in
  let md =
    { md with
      Md_hom.dims = [| "i"; "k" |];
      sizes = [| 3; 3 |];
      combine_ops =
        [| Combine.pw (Combine.max Scalar.Fp32); Combine.pw (Combine.add Scalar.Fp32) |];
      outputs =
        List.map
          (fun (o : Md_hom.output) ->
            { o with
              Md_hom.out_shape = [| 1 |];
              out_access =
                { Md_hom.fn = Mdh_tensor.Index_fn.affine ~arity:2
                      [ Mdh_tensor.Index_fn.coord ~coeffs:[| 0; 0 |] ~offset:0 ];
                  exprs = [ Expr.int 0 ] } })
          md.Md_hom.outputs }
  in
  let rng = Mdh_support.Rng.create 8 in
  let env =
    Buffer.env_of_list [ float_buffer "M" rng [| 3; 3 |]; float_buffer "v" rng [| 3 |] ]
  in
  check Alcotest.bool "exec raises" true
    (try ignore (Semantics.exec md env); false
     with Semantics.Semantic_error _ -> true);
  check Alcotest.bool "reference still works" true
    (try ignore (Semantics.reference md env); true
     with Semantics.Semantic_error _ -> false)

let test_missing_input_rejected () =
  let md = matvec_md ~i:2 ~k:2 in
  let rng = Mdh_support.Rng.create 6 in
  let env = Buffer.env_of_list [ float_buffer "M" rng [| 2; 2 |] ] in
  check Alcotest.bool "raises" true
    (try ignore (Semantics.reference md env); false
     with Semantics.Semantic_error _ -> true)

let test_wrong_shape_rejected () =
  let md = matvec_md ~i:2 ~k:2 in
  let rng = Mdh_support.Rng.create 7 in
  let env =
    Buffer.env_of_list [ float_buffer "M" rng [| 3; 2 |]; float_buffer "v" rng [| 2 |] ]
  in
  check Alcotest.bool "raises" true
    (try ignore (Semantics.reference md env); false
     with Semantics.Semantic_error _ -> true)

let suite =
  let tc = Alcotest.test_case in
  ( "core",
    [ tc "matvec structure" `Quick test_matvec_structure;
      tc "matvec characteristics" `Quick test_matvec_characteristics;
      tc "dot characteristics" `Quick test_dot_characteristics;
      tc "stencil characteristics" `Quick test_stencil_characteristics;
      tc "flops per point" `Quick test_flops_per_point;
      tc "reference matvec vs oracle" `Quick test_reference_matvec;
      tc "reference column scan" `Quick test_reference_scan;
      tc "reference stencil" `Quick test_reference_stencil;
      tc "exec = reference (matvec)" `Quick test_exec_matches_reference_matvec;
      tc "exec = reference (scan)" `Quick test_exec_matches_reference_scan;
      tc "tiled = reference (matvec)" `Quick test_tiled_matches_reference_various_tiles;
      tc "tiled = reference (scan)" `Quick test_tiled_matches_reference_scan;
      QCheck_alcotest.to_alcotest prop_decomposition_law;
      QCheck_alcotest.to_alcotest prop_decomposition_law_scan;
      tc "exec rejects distinct pw ops" `Quick test_exec_rejects_distinct_pw_ops;
      tc "missing input rejected" `Quick test_missing_input_rejected;
      tc "wrong shape rejected" `Quick test_wrong_shape_rejected ] )
