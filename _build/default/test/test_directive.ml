(* Tests for the MDH directive frontend: validation rules and the
   directive-to-DSL transformation (Section 4). *)

module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
open Mdh_directive

let check = Alcotest.check

let matvec_nest ?(assign_expr = Expr.(read "M" [ idx "i"; idx "k" ] * read "v" [ idx "k" ]))
    ?(target = "w") ?(target_idx = [ Expr.idx "i" ]) () =
  Directive.for_ "i" 4
    (Directive.for_ "k" 3 (Directive.body [ Directive.assign target target_idx assign_expr ]))

let matvec ?assign_expr ?target ?target_idx ?(combine_ops = [ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]) () =
  Directive.make ~name:"matvec"
    ~out:[ Directive.buffer "w" Scalar.Fp32 ]
    ~inp:[ Directive.buffer "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
    ~combine_ops
    (matvec_nest ?assign_expr ?target ?target_idx ())

let kind_of dir =
  match Validate.run dir with Ok () -> None | Error e -> Some e.kind

let expect_ok dir = check Alcotest.bool "valid" true (Validate.run dir = Ok ())

let test_valid_matvec () = expect_ok (matvec ())

let test_imperfect_nest_rejected () =
  let nest =
    Directive.for_ "i" 4
      (Directive.Seq
         [ Directive.body [ Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 0.0) ];
           Directive.for_ "k" 3 (Directive.body []) ])
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ] ~inp:[]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      nest
  in
  check Alcotest.bool "imperfect" true (kind_of dir = Some Validate.Imperfect_nest)

let test_duplicate_loop_var () =
  let nest =
    Directive.for_ "i" 4
      (Directive.for_ "i" 3 (Directive.body [ Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 0.0) ]))
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ] ~inp:[]
      ~combine_ops:[ Combine.cc; Combine.cc ] nest
  in
  check Alcotest.bool "dup var" true (kind_of dir = Some (Validate.Duplicate_loop_var "i"))

let test_nonpositive_extent () =
  let nest =
    Directive.for_ "i" 0 (Directive.body [ Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 0.0) ])
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ] ~inp:[]
      ~combine_ops:[ Combine.cc ] nest
  in
  check Alcotest.bool "extent" true (kind_of dir = Some (Validate.Nonpositive_extent "i"))

let test_combine_op_arity () =
  let dir = matvec ~combine_ops:[ Combine.cc ] () in
  check Alcotest.bool "arity" true
    (kind_of dir = Some (Validate.Combine_op_arity { dims = 2; ops = 1 }))

let test_mixed_pw_ps_rejected () =
  (* pw and ps do not satisfy the interchange law (max of scans is not the
     scan of maxes), so the combination is rejected — found by the fuzz
     harness, see test_fuzz.ml *)
  let nest =
    Directive.for_ "i" 3
      (Directive.for_ "j" 3
         (Directive.body
            [ Directive.assign "w" [ Expr.idx "j" ] (Expr.read "v" [ Expr.idx "i"; Expr.idx "j" ]) ]))
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:
        [ Combine.pw (Combine.max Scalar.Fp32); Combine.ps (Combine.add Scalar.Fp32) ]
      nest
  in
  check Alcotest.bool "mixed" true (kind_of dir = Some Validate.Mixed_reduction_kinds)

let test_duplicate_buffer () =
  let dir =
    Directive.make ~name:"bad"
      ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer "w" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (matvec_nest ())
  in
  check Alcotest.bool "dup buffer" true (kind_of dir = Some (Validate.Duplicate_buffer "w"))

let test_assign_to_input () =
  let dir = matvec ~target:"M" ~target_idx:[ Expr.idx "i"; Expr.idx "k" ] () in
  check Alcotest.bool "assign input" true (kind_of dir = Some (Validate.Assign_to_input "M"))

let test_assign_unknown () =
  let dir = matvec ~target:"nope" () in
  check Alcotest.bool "unknown" true (kind_of dir = Some (Validate.Unknown_buffer "nope"))

let test_read_of_output () =
  (* the paper's key rule: `=` not `+=` — reading the output is rejected *)
  let dir =
    matvec ~assign_expr:Expr.(read "w" [ idx "i" ] + read "M" [ idx "i"; idx "k" ]) ()
  in
  check Alcotest.bool "read output" true (kind_of dir = Some (Validate.Read_of_output "w"))

let test_multiple_assignment () =
  let nest =
    Directive.for_ "i" 4
      (Directive.for_ "k" 3
         (Directive.body
            [ Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 0.0);
              Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 1.0) ]))
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ] ~inp:[]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      nest
  in
  check Alcotest.bool "multi assign" true
    (kind_of dir = Some (Validate.Multiple_assignment "w"))

let test_missing_assignment () =
  let dir =
    Directive.make ~name:"bad"
      ~out:[ Directive.buffer "w" Scalar.Fp32; Directive.buffer "u" Scalar.Fp32 ]
      ~inp:[ Directive.buffer "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (matvec_nest ())
  in
  check Alcotest.bool "missing" true (kind_of dir = Some (Validate.Missing_assignment "u"))

let test_type_mismatch () =
  let dir =
    Directive.make ~name:"bad"
      ~out:[ Directive.buffer "w" Scalar.Fp64 ]
      ~inp:[ Directive.buffer "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp64) ]
      (matvec_nest ())
  in
  check Alcotest.bool "type" true
    (match kind_of dir with Some (Validate.Type_error _) -> true | _ -> false)

let test_declared_shape_too_small () =
  let dir =
    Directive.make ~name:"bad"
      ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer ~shape:[| 2; 3 |] "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (matvec_nest ())
  in
  check Alcotest.bool "shape" true
    (match kind_of dir with Some (Validate.Shape_error _) -> true | _ -> false)

let test_declared_shape_larger_ok () =
  (* Listing 12: buffers may be declared larger than the accessed region *)
  let dir =
    Directive.make ~name:"mcc_like"
      ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer ~shape:[| 10; 9 |] "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (matvec_nest ())
  in
  expect_ok dir;
  let md = Transform.to_md_hom_exn dir in
  let m = Option.get (Mdh_core.Md_hom.find_input md "M") in
  check (Alcotest.array Alcotest.int) "declared kept" [| 10; 9 |] m.inp_shape

let test_negative_access_rejected () =
  let dir =
    matvec ~assign_expr:Expr.(read "M" [ idx "i" - int 1; idx "k" ] * read "v" [ idx "k" ]) ()
  in
  check Alcotest.bool "negative" true
    (match kind_of dir with Some (Validate.Shape_error _) -> true | _ -> false)

let test_opaque_access_needs_shape () =
  let dir =
    matvec ~assign_expr:Expr.(read "M" [ idx "i" * idx "k"; idx "k" ] * read "v" [ idx "k" ]) ()
  in
  check Alcotest.bool "opaque" true
    (kind_of dir = Some (Validate.Opaque_access_needs_shape "M"));
  (* with a declared shape the same directive is accepted *)
  let dir_ok =
    Directive.make ~name:"ok"
      ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer ~shape:[| 16; 3 |] "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      (matvec_nest
         ~assign_expr:Expr.(read "M" [ idx "i" * idx "k"; idx "k" ] * read "v" [ idx "k" ]) ())
  in
  expect_ok dir_ok

let test_out_view_uses_collapsed_dim () =
  (* w indexed by the reduction dimension k: invalid *)
  let dir = matvec ~target_idx:[ Expr.idx "k" ] () in
  check Alcotest.bool "collapsed" true
    (kind_of dir = Some (Validate.Invalid_out_view "w"))

let test_out_view_not_injective () =
  (* two cc dims writing through (i) only: collisions *)
  let nest =
    Directive.for_ "i" 4
      (Directive.for_ "j" 3
         (Directive.body [ Directive.assign "w" [ Expr.idx "i" ] (Expr.f32 1.0) ]))
  in
  let dir =
    Directive.make ~name:"bad" ~out:[ Directive.buffer "w" Scalar.Fp32 ] ~inp:[]
      ~combine_ops:[ Combine.cc; Combine.cc ] nest
  in
  check Alcotest.bool "not injective" true
    (kind_of dir = Some (Validate.Invalid_out_view "w"))

let test_let_bindings_supported () =
  let nest =
    Directive.for_ "i" 4
      (Directive.for_ "k" 3
         (Directive.body
            [ Directive.let_stmt "t" Expr.(read "M" [ idx "i"; idx "k" ]);
              Directive.assign "w" [ Expr.idx "i" ] Expr.(var "t" * read "v" [ idx "k" ]) ]))
  in
  let dir =
    Directive.make ~name:"matvec_let"
      ~out:[ Directive.buffer "w" Scalar.Fp32 ]
      ~inp:[ Directive.buffer "M" Scalar.Fp32; Directive.buffer "v" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc; Combine.pw (Combine.add Scalar.Fp32) ]
      nest
  in
  expect_ok dir;
  let md = Transform.to_md_hom_exn dir in
  (* the let is folded into the output value; the access is still found *)
  let m = Option.get (Mdh_core.Md_hom.find_input md "M") in
  check Alcotest.int "access found through let" 1 (List.length m.accesses)

let test_transform_views () =
  let md = Transform.to_md_hom_exn (matvec ()) in
  let v = Option.get (Mdh_core.Md_hom.find_input md "v") in
  let access = List.hd v.accesses in
  (* inp_view for v: (i,k) -> (k), as in Listing 6 *)
  check (Alcotest.array Alcotest.int) "v view" [| 9 |]
    (Mdh_tensor.Index_fn.apply access.fn [| 5; 9 |]);
  let o = List.hd md.outputs in
  (* out_view for w: (i,k) -> (i) *)
  check (Alcotest.array Alcotest.int) "w view" [| 5 |]
    (Mdh_tensor.Index_fn.apply o.out_access.fn [| 5; 9 |])

let test_transform_dedupes_accesses () =
  (* the same textual access twice is one view entry; distinct offsets are
     distinct entries (stencil #ACC counting) *)
  let nest =
    Directive.for_ "i" 4
      (Directive.body
         [ Directive.assign "y" [ Expr.idx "i" ]
             Expr.(
               read "x" [ idx "i" ] + read "x" [ idx "i" ]
               + read "x" [ idx "i" + int 1 ]) ])
  in
  let dir =
    Directive.make ~name:"s" ~out:[ Directive.buffer "y" Scalar.Fp32 ]
      ~inp:[ Directive.buffer "x" Scalar.Fp32 ]
      ~combine_ops:[ Combine.cc ] nest
  in
  let md = Transform.to_md_hom_exn dir in
  let x = Option.get (Mdh_core.Md_hom.find_input md "x") in
  check Alcotest.int "two distinct accesses" 2 (List.length x.accesses)

let test_pp_roundtrips_names () =
  let s = Format.asprintf "%a" Directive.pp (matvec ()) in
  check Alcotest.bool "mentions combine ops" true
    (Test_util.contains s "combine_ops( cc, pw(add) )");
  check Alcotest.bool "mentions loop" true (Test_util.contains s "for i in range(4)")

let test_loops_accessor () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "loops" [ ("i", 4); ("k", 3) ]
    (Directive.loops (matvec ()))

let suite =
  let tc = Alcotest.test_case in
  ( "directive",
    [ tc "valid matvec" `Quick test_valid_matvec;
      tc "imperfect nest rejected" `Quick test_imperfect_nest_rejected;
      tc "duplicate loop var" `Quick test_duplicate_loop_var;
      tc "nonpositive extent" `Quick test_nonpositive_extent;
      tc "combine op arity" `Quick test_combine_op_arity;
      tc "mixed pw/ps rejected" `Quick test_mixed_pw_ps_rejected;
      tc "duplicate buffer" `Quick test_duplicate_buffer;
      tc "assign to input" `Quick test_assign_to_input;
      tc "assign unknown buffer" `Quick test_assign_unknown;
      tc "read of output rejected" `Quick test_read_of_output;
      tc "multiple assignment" `Quick test_multiple_assignment;
      tc "missing assignment" `Quick test_missing_assignment;
      tc "type mismatch" `Quick test_type_mismatch;
      tc "declared shape too small" `Quick test_declared_shape_too_small;
      tc "declared shape larger ok" `Quick test_declared_shape_larger_ok;
      tc "negative access rejected" `Quick test_negative_access_rejected;
      tc "opaque access needs shape" `Quick test_opaque_access_needs_shape;
      tc "out view uses collapsed dim" `Quick test_out_view_uses_collapsed_dim;
      tc "out view not injective" `Quick test_out_view_not_injective;
      tc "let bindings" `Quick test_let_bindings_supported;
      tc "transform views" `Quick test_transform_views;
      tc "transform dedupes accesses" `Quick test_transform_dedupes_accesses;
      tc "pretty printer" `Quick test_pp_roundtrips_names;
      tc "loops accessor" `Quick test_loops_accessor ] )
