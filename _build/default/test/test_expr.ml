(* Unit tests for Mdh_expr: AST, typecheck, eval, analysis. *)

open Mdh_expr
module Scalar = Mdh_tensor.Scalar

let check = Alcotest.check

let env_with ?(iter_vars = [ "i"; "k" ]) buffers =
  { Typecheck.iter_vars; buffer_ty = (fun name -> List.assoc_opt name buffers) }

let ok_ty = Alcotest.result (Alcotest.testable Scalar.pp_ty Scalar.equal_ty)
    (Alcotest.of_pp Typecheck.pp_error)

let matvec_body =
  Expr.(read "M" [ idx "i"; idx "k" ] * read "v" [ idx "k" ])

let test_infer_matvec () =
  let env = env_with [ ("M", Scalar.Fp32); ("v", Scalar.Fp32) ] in
  check ok_ty "fp32" (Ok Scalar.Fp32) (Typecheck.infer env matvec_body)

let test_infer_unknown_buffer () =
  let env = env_with [] in
  check Alcotest.bool "error" true (Result.is_error (Typecheck.infer env matvec_body))

let test_infer_unknown_iter_var () =
  let env = env_with ~iter_vars:[ "i" ] [ ("M", Scalar.Fp32); ("v", Scalar.Fp32) ] in
  check Alcotest.bool "error" true (Result.is_error (Typecheck.infer env matvec_body))

let test_infer_mixed_types () =
  let env = env_with [ ("M", Scalar.Fp32); ("v", Scalar.Fp64) ] in
  check Alcotest.bool "mismatch" true (Result.is_error (Typecheck.infer env matvec_body))

let test_infer_comparison () =
  let env = env_with [] in
  check ok_ty "bool" (Ok Scalar.Bool) (Typecheck.infer env Expr.(idx "i" < idx "k"))

let test_infer_if_branches () =
  let env = env_with [] in
  check ok_ty "if ok" (Ok Scalar.Int32)
    (Typecheck.infer env Expr.(if_ (idx "i" < idx "k") (int 1) (int 2)));
  check Alcotest.bool "branch mismatch" true
    (Result.is_error
       (Typecheck.infer env Expr.(if_ (idx "i" < idx "k") (int 1) (f32 2.0))))

let test_infer_let () =
  let env = env_with [ ("M", Scalar.Fp32); ("v", Scalar.Fp32) ] in
  check ok_ty "let" (Ok Scalar.Fp32)
    (Typecheck.infer env Expr.(let_ "t" matvec_body (var "t" + var "t")))

let test_infer_unbound_var () =
  let env = env_with [] in
  check Alcotest.bool "unbound" true (Result.is_error (Typecheck.infer env (Expr.var "t")))

let test_infer_record () =
  let rec_ty = Scalar.Record [ ("w", Scalar.Fp64); ("id", Scalar.Int32) ] in
  let env = env_with [ ("db", rec_ty) ] in
  check ok_ty "field" (Ok Scalar.Fp64)
    (Typecheck.infer env Expr.(field (read "db" [ idx "i" ]) "w"));
  check Alcotest.bool "bad field" true
    (Result.is_error (Typecheck.infer env Expr.(field (read "db" [ idx "i" ]) "nope")))

let test_infer_mkrecord () =
  let env = env_with [] in
  check ok_ty "mkrecord"
    (Ok (Scalar.Record [ ("a", Scalar.Int32); ("b", Scalar.Bool) ]))
    (Typecheck.infer env (Expr.MkRecord [ ("a", Expr.int 1); ("b", Expr.(int 1 < int 2)) ]))

let test_infer_bool_ops () =
  let env = env_with [] in
  check ok_ty "and" (Ok Scalar.Bool)
    (Typecheck.infer env Expr.((int 1 < int 2) && (int 3 < int 4)));
  check Alcotest.bool "and on ints" true
    (Result.is_error (Typecheck.infer env Expr.(int 1 && int 2)))

let test_infer_cast () =
  let env = env_with [] in
  check ok_ty "cast" (Ok Scalar.Fp32)
    (Typecheck.infer env Expr.(cast Scalar.Fp32 (idx "i")))

let test_infer_nonintegral_index () =
  let env = env_with [ ("v", Scalar.Fp32) ] in
  check Alcotest.bool "float index" true
    (Result.is_error (Typecheck.infer env Expr.(read "v" [ f32 1.0 ])))

(* --- eval --- *)

let mk_ctx ?(iter = [ ("i", 1); ("k", 2) ]) reads =
  { Eval.iter;
    read = (fun buf idx ->
        match List.assoc_opt (buf, Array.to_list idx) reads with
        | Some v -> v
        | None -> raise (Eval.Eval_error ("no data for " ^ buf))) }

let test_eval_matvec_point () =
  let ctx =
    mk_ctx [ (("M", [ 1; 2 ]), Scalar.f32 3.0); (("v", [ 2 ]), Scalar.f32 4.0) ]
  in
  check Test_util.scalar_value "product" (Scalar.f32 12.0) (Eval.eval ctx matvec_body)

let test_eval_let_shadowing () =
  let ctx = mk_ctx [] in
  let e = Expr.(let_ "x" (int 1) (let_ "x" (int 2) (var "x"))) in
  check Test_util.scalar_value "inner wins" (Scalar.i32 2) (Eval.eval ctx e)

let test_eval_if () =
  let ctx = mk_ctx [] in
  check Test_util.scalar_value "then" (Scalar.i32 10)
    (Eval.eval ctx Expr.(if_ (idx "i" < idx "k") (int 10) (int 20)));
  check Test_util.scalar_value "else" (Scalar.i32 20)
    (Eval.eval ctx Expr.(if_ (idx "k" < idx "i") (int 10) (int 20)))

let test_eval_short_circuit () =
  (* the right operand of && must not be evaluated when the left is false *)
  let ctx = mk_ctx [] in
  let exploding = Expr.(read "boom" [ int 0 ] > f32 0.0) in
  check Test_util.scalar_value "short-circuit and" (Scalar.B false)
    (Eval.eval ctx Expr.(int 2 < int 1 && exploding));
  check Test_util.scalar_value "short-circuit or" (Scalar.B true)
    (Eval.eval ctx Expr.(int 1 < int 2 || exploding))

let test_eval_index () =
  let ctx = mk_ctx [] in
  check Alcotest.int "2*i+k" 4 (Eval.eval_index ctx Expr.((int 2 * idx "i") + idx "k"))

let test_eval_record_roundtrip () =
  let ctx = mk_ctx [] in
  let e = Expr.(field (MkRecord [ ("a", int 7); ("b", f64 1.0) ]) "a") in
  check Test_util.scalar_value "field" (Scalar.i32 7) (Eval.eval ctx e)

let test_eval_cast () =
  let ctx = mk_ctx [] in
  check Test_util.scalar_value "i32 to f64" (Scalar.F64 3.0)
    (Eval.eval ctx Expr.(cast Scalar.Fp64 (int 3)))

let test_eval_unbound () =
  let ctx = mk_ctx [] in
  Alcotest.check_raises "unbound" (Eval.Eval_error "unbound local variable \"z\"")
    (fun () -> ignore (Eval.eval ctx (Expr.var "z")))

(* --- analysis --- *)

let dims = [| "i"; "k" |]

let test_affine_extraction_simple () =
  match Analysis.affine_of_index_exprs ~dims Expr.[ idx "i"; idx "k" ] with
  | Some fn ->
    check (Alcotest.array Alcotest.int) "apply" [| 3; 4 |]
      (Mdh_tensor.Index_fn.apply fn [| 3; 4 |])
  | None -> Alcotest.fail "expected affine"

let test_affine_extraction_strided () =
  match Analysis.affine_of_index_exprs ~dims Expr.[ (int 2 * idx "i") + idx "k" - int 1 ] with
  | Some fn ->
    check (Alcotest.array Alcotest.int) "2i+k-1" [| 9 |]
      (Mdh_tensor.Index_fn.apply fn [| 3; 4 |])
  | None -> Alcotest.fail "expected affine"

let test_affine_extraction_neg () =
  match Analysis.affine_of_index_exprs ~dims Expr.[ Unop (Neg, idx "i") + idx "k" ] with
  | Some fn ->
    check (Alcotest.array Alcotest.int) "-i+k" [| 1 |]
      (Mdh_tensor.Index_fn.apply fn [| 3; 4 |])
  | None -> Alcotest.fail "expected affine"

let test_affine_extraction_fails_on_product () =
  check Alcotest.bool "i*k not affine" true
    (Analysis.affine_of_index_exprs ~dims Expr.[ idx "i" * idx "k" ] = None)

let test_affine_extraction_fails_on_read () =
  check Alcotest.bool "read not affine" true
    (Analysis.affine_of_index_exprs ~dims Expr.[ read "perm" [ idx "i" ] ] = None)

let test_opaque_fallback_evaluates () =
  let fn = Analysis.index_fn_of_exprs ~dims Expr.[ idx "i" * idx "k" ] in
  check Alcotest.bool "opaque" true (not (Mdh_tensor.Index_fn.is_affine fn));
  check (Alcotest.array Alcotest.int) "apply" [| 12 |]
    (Mdh_tensor.Index_fn.apply fn [| 3; 4 |])

let test_reads_collection () =
  let e = Expr.(read "A" [ idx "i" ] + (read "A" [ idx "i" ] * read "B" [ idx "k" ])) in
  let rs = Analysis.reads e in
  check Alcotest.int "three textual reads" 3 (List.length rs);
  check (Alcotest.list Alcotest.string) "order" [ "A"; "A"; "B" ] (List.map fst rs)

let test_flops_counting () =
  check Alcotest.int "mul" 1 (Analysis.flops matvec_body);
  check Alcotest.int "fma" 2 (Analysis.flops Expr.(matvec_body + f32 1.0));
  (* conditional: worst-case branch *)
  check Alcotest.int "if" 3
    (Analysis.flops Expr.(if_ (idx "i" < int 1) (f32 1.0 + f32 2.0) (f32 0.0)))

let test_data_dependent_branch () =
  check Alcotest.bool "plain" false (Analysis.contains_data_dependent_branch matvec_body);
  let prl_like =
    Expr.(if_ (field (read "db" [ idx "i" ]) "m" = int 14) (int 1) (int 0))
  in
  check Alcotest.bool "direct" true (Analysis.contains_data_dependent_branch prl_like);
  let through_let =
    Expr.(let_ "t" (read "db" [ idx "i" ]) (if_ (field (var "t") "m" = int 14) (int 1) (int 0)))
  in
  check Alcotest.bool "via let" true (Analysis.contains_data_dependent_branch through_let);
  let iter_cond = Expr.(if_ (idx "i" < int 3) (read "db" [ idx "i" ]) (read "db" [ int 0 ])) in
  check Alcotest.bool "iteration-dependent only" false
    (Analysis.contains_data_dependent_branch iter_cond)

(* --- simplify --- *)

let test_simplify_units () =
  let open Expr in
  let checks =
    [ (idx "i" + int 0, idx "i");
      (int 0 + idx "i", idx "i");
      (idx "i" - int 0, idx "i");
      (int 1 * idx "i", idx "i");
      (idx "i" * int 1, idx "i");
      (int 2 + int 3, int 5);
      (int 4 * int 5, int 20);
      (Unop (Neg, Unop (Neg, idx "i")), idx "i");
      (if_ (Const (Scalar.B true)) (int 1) (int 2), int 1);
      (if_ (Const (Scalar.B false)) (int 1) (int 2), int 2);
      (let_ "t" (int 5) (idx "i"), idx "i");
      (Binop (And, Const (Scalar.B true), idx "i" < int 3), idx "i" < int 3) ]
  in
  List.iter
    (fun (input, expected) ->
      check Alcotest.string (Expr.to_string input) (Expr.to_string expected)
        (Expr.to_string (Analysis.simplify input)))
    checks

let test_simplify_keeps_used_lets () =
  let e = Expr.(let_ "t" (read "v" [ idx "i" ]) (var "t" + var "t")) in
  check Alcotest.string "kept" (Expr.to_string e) (Expr.to_string (Analysis.simplify e))

let test_simplify_preserves_floats () =
  (* float arithmetic must not be folded: rounding is semantics *)
  let e = Expr.(f32 0.1 + f32 0.2) in
  check Alcotest.string "unfolded" (Expr.to_string e) (Expr.to_string (Analysis.simplify e))

(* simplification is semantics-preserving on random integer expressions *)
let gen_int_expr =
  QCheck2.Gen.(
    let base =
      oneof
        [ map Expr.int (int_range (-5) 5);
          oneofl [ Expr.idx "i"; Expr.idx "k" ] ]
    in
    let rec build n =
      if n = 0 then base
      else
        let sub = build (n - 1) in
        oneof
          [ base;
            map2 (fun a b -> Expr.(a + b)) sub sub;
            map2 (fun a b -> Expr.(a - b)) sub sub;
            map2 (fun a b -> Expr.(a * b)) sub sub;
            map3 (fun c a b -> Expr.(if_ (c < int 2) a b)) sub sub sub;
            map (fun a -> Expr.Unop (Expr.Neg, a)) sub ]
    in
    build 4)

let prop_simplify_preserves_semantics =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:500
    QCheck2.Gen.(triple gen_int_expr (int_range (-3) 3) (int_range (-3) 3))
    (fun (e, i, k) ->
      let ctx =
        { Eval.iter = [ ("i", i); ("k", k) ];
          read = (fun _ _ -> raise (Eval.Eval_error "no buffers")) }
      in
      Scalar.equal (Eval.eval ctx e) (Eval.eval ctx (Analysis.simplify e)))

let test_free_idx_vars () =
  check (Alcotest.list Alcotest.string) "order" [ "i"; "k" ]
    (Expr.free_idx_vars matvec_body)

let suite =
  let tc = Alcotest.test_case in
  ( "expr",
    [ tc "infer matvec" `Quick test_infer_matvec;
      tc "infer unknown buffer" `Quick test_infer_unknown_buffer;
      tc "infer unknown iter var" `Quick test_infer_unknown_iter_var;
      tc "infer mixed types" `Quick test_infer_mixed_types;
      tc "infer comparison" `Quick test_infer_comparison;
      tc "infer if branches" `Quick test_infer_if_branches;
      tc "infer let" `Quick test_infer_let;
      tc "infer unbound var" `Quick test_infer_unbound_var;
      tc "infer record" `Quick test_infer_record;
      tc "infer mkrecord" `Quick test_infer_mkrecord;
      tc "infer bool ops" `Quick test_infer_bool_ops;
      tc "infer cast" `Quick test_infer_cast;
      tc "infer nonintegral index" `Quick test_infer_nonintegral_index;
      tc "eval matvec point" `Quick test_eval_matvec_point;
      tc "eval let shadowing" `Quick test_eval_let_shadowing;
      tc "eval if" `Quick test_eval_if;
      tc "eval short circuit" `Quick test_eval_short_circuit;
      tc "eval index" `Quick test_eval_index;
      tc "eval record" `Quick test_eval_record_roundtrip;
      tc "eval cast" `Quick test_eval_cast;
      tc "eval unbound" `Quick test_eval_unbound;
      tc "affine simple" `Quick test_affine_extraction_simple;
      tc "affine strided" `Quick test_affine_extraction_strided;
      tc "affine negation" `Quick test_affine_extraction_neg;
      tc "affine rejects product" `Quick test_affine_extraction_fails_on_product;
      tc "affine rejects read" `Quick test_affine_extraction_fails_on_read;
      tc "opaque fallback" `Quick test_opaque_fallback_evaluates;
      tc "reads collection" `Quick test_reads_collection;
      tc "flops counting" `Quick test_flops_counting;
      tc "data-dependent branch" `Quick test_data_dependent_branch;
      tc "simplify unit laws" `Quick test_simplify_units;
      tc "simplify keeps used lets" `Quick test_simplify_keeps_used_lets;
      tc "simplify preserves floats" `Quick test_simplify_preserves_floats;
      QCheck_alcotest.to_alcotest prop_simplify_preserves_semantics;
      tc "free idx vars" `Quick test_free_idx_vars ] )
