(* Tests for device descriptions and the roofline estimator. *)

open Mdh_machine

let check = Alcotest.check

let test_device_presets () =
  check Alcotest.string "gpu name" "a100_like" Device.a100_like.Device.device_name;
  check Alcotest.bool "gpu kind" true (Device.a100_like.Device.kind = Device.Gpu);
  check Alcotest.bool "cpu kind" true (Device.xeon6140_like.Device.kind = Device.Cpu);
  check Alcotest.bool "gpu much more parallel" true
    (Device.total_parallelism Device.a100_like
    > 100 * Device.total_parallelism Device.xeon6140_like);
  check Alcotest.bool "cpu has no link" true
    (Device.xeon6140_like.Device.link_gbs = None)

let test_mem_levels_ordered () =
  List.iter
    (fun dev ->
      let mem = dev.Device.mem in
      for i = 1 to Array.length mem - 1 do
        check Alcotest.bool "capacity shrinks inward" true
          (mem.(i).Device.capacity_bytes < mem.(i - 1).Device.capacity_bytes);
        check Alcotest.bool "bandwidth grows inward" true
          (mem.(i).Device.bandwidth_gbs > mem.(i - 1).Device.bandwidth_gbs)
      done)
    [ Device.a100_like; Device.xeon6140_like ]

let test_find_layer () =
  check Alcotest.int "threads" 1 (Device.find_layer Device.a100_like "threads");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Device.find_layer Device.a100_like "nope"))

let dev = Device.xeon6140_like
let n_levels = Array.length dev.Device.mem

let stats ?(flops = 0.0) ?(dram = 0.0) ?(link = 0.0) ?(launches = 0) ?(serial = 0.0) () =
  let level_bytes = Array.make n_levels 0.0 in
  if n_levels > 0 then level_bytes.(0) <- dram;
  { Roofline.flops; level_bytes; link_bytes = link; launches; serial_ops = serial }

let test_roofline_compute_bound () =
  let b = Roofline.estimate dev Roofline.ideal (stats ~flops:(dev.Device.peak_gflops *. 1e9) ()) in
  check (Alcotest.float 1e-6) "one second of peak flops" 1.0 b.Roofline.total_s

let test_roofline_memory_bound () =
  let dram_bw = dev.Device.mem.(0).Device.bandwidth_gbs *. 1e9 in
  let b = Roofline.estimate dev Roofline.ideal (stats ~dram:dram_bw ()) in
  check (Alcotest.float 1e-6) "one second of DRAM traffic" 1.0 b.Roofline.total_s

let test_roofline_max_not_sum () =
  let dram_bw = dev.Device.mem.(0).Device.bandwidth_gbs *. 1e9 in
  let b =
    Roofline.estimate dev Roofline.ideal
      (stats ~flops:(dev.Device.peak_gflops *. 1e9) ~dram:dram_bw ())
  in
  (* compute and memory overlap: the roof is the max *)
  check (Alcotest.float 1e-6) "overlapped" 1.0 b.Roofline.total_s

let test_roofline_efficiency_scales () =
  let s = stats ~flops:1e12 () in
  let full = Roofline.estimate dev Roofline.ideal s in
  let half =
    Roofline.estimate dev
      { Roofline.ideal with Roofline.parallel_fraction = 0.5 }
      s
  in
  check (Alcotest.float 1e-6) "half units, double time" (2.0 *. full.Roofline.total_s)
    half.Roofline.total_s

let test_roofline_overheads_add () =
  let b = Roofline.estimate dev Roofline.ideal (stats ~launches:10 ()) in
  check (Alcotest.float 1e-12) "launches" (10.0 *. dev.Device.launch_overhead_s)
    b.Roofline.total_s

let test_roofline_serial () =
  let single = dev.Device.peak_gflops /. float_of_int (Device.total_parallelism dev) in
  let b = Roofline.estimate dev Roofline.ideal (stats ~serial:(single *. 1e9) ()) in
  check (Alcotest.float 1e-6) "serial second" 1.0 b.Roofline.total_s

let test_roofline_link_gpu_only () =
  let gpu = Device.a100_like in
  let level_bytes = Array.make (Array.length gpu.Device.mem) 0.0 in
  let s =
    { Roofline.flops = 0.0; level_bytes; link_bytes = 16e9; launches = 0;
      serial_ops = 0.0 }
  in
  let b = Roofline.estimate gpu Roofline.ideal s in
  check (Alcotest.float 1e-6) "one second of PCIe" 1.0 b.Roofline.total_s;
  (* no link on the CPU: bytes ignored *)
  let b_cpu = Roofline.estimate dev Roofline.ideal (stats ~link:16e9 ()) in
  check (Alcotest.float 1e-12) "cpu ignores link" 0.0 b_cpu.Roofline.total_s

let test_roofline_rejects_bad_efficiency () =
  check Alcotest.bool "zero fraction rejected" true
    (try
       ignore
         (Roofline.estimate dev
            { Roofline.ideal with Roofline.parallel_fraction = 0.0 }
            (stats ()));
       false
     with Invalid_argument _ -> true)

let suite =
  let tc = Alcotest.test_case in
  ( "machine",
    [ tc "device presets" `Quick test_device_presets;
      tc "memory levels ordered" `Quick test_mem_levels_ordered;
      tc "find layer" `Quick test_find_layer;
      tc "roofline compute bound" `Quick test_roofline_compute_bound;
      tc "roofline memory bound" `Quick test_roofline_memory_bound;
      tc "roofline overlap (max)" `Quick test_roofline_max_not_sum;
      tc "roofline efficiency scales" `Quick test_roofline_efficiency_scales;
      tc "roofline overheads" `Quick test_roofline_overheads_add;
      tc "roofline serial" `Quick test_roofline_serial;
      tc "roofline link" `Quick test_roofline_link_gpu_only;
      tc "roofline validates efficiency" `Quick test_roofline_rejects_bad_efficiency ] )
