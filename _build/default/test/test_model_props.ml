(* Property tests for the performance-model layer: the cost model must be
   total, positive and finite over arbitrary legal schedules; footprints
   must grow monotonically with the tile box; transfers can only add time;
   clamping must not change the estimate. *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Footprint = Mdh_lowering.Footprint
module Lower = Mdh_lowering.Lower
module Rng = Mdh_support.Rng

let workloads = Array.of_list Catalog.all
let devices = [| Device.a100_like; Device.xeon6140_like |]

(* a random legal schedule for a given computation *)
let random_schedule rng md dev =
  let rank = Mdh_core.Md_hom.rank md in
  let tile_sizes =
    Array.init rank (fun d -> Rng.int_in rng 1 (md.Mdh_core.Md_hom.sizes.(d) + 3))
  in
  let candidates = Lower.parallelisable_dims md in
  let parallel_dims = List.filter (fun _ -> Rng.bool rng) candidates in
  let n_layers = Array.length dev.Device.layers in
  let used_layers =
    List.filter (fun _ -> Rng.bool rng) (List.init n_layers Fun.id)
  in
  { Schedule.tile_sizes; parallel_dims; used_layers }

let gen_case =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let w = workloads.(Rng.int rng (Array.length workloads)) in
      let dev = devices.(Rng.int rng 2) in
      let md = W.to_md_hom w w.W.test_params in
      (w.W.wl_name, md, dev, random_schedule rng md dev))
    QCheck2.Gen.(int_range 0 1_000_000_000)

let prop_cost_total_positive_finite =
  QCheck2.Test.make ~name:"cost model: total, positive, finite" ~count:300 gen_case
    (fun (_, md, dev, sched) ->
      match Cost.analyse md dev Cost.tuned_codegen sched with
      | Error _ -> true (* only illegal schedules may be rejected *)
      | Ok a ->
        let t = a.Cost.breakdown.Mdh_machine.Roofline.total_s in
        Float.is_finite t && t > 0.0)

let prop_legal_schedules_always_costed =
  QCheck2.Test.make ~name:"cost model: legal => costed" ~count:300 gen_case
    (fun (_, md, dev, sched) ->
      match Schedule.legal md dev sched with
      | Error _ -> true
      | Ok () -> Result.is_ok (Cost.analyse md dev Cost.tuned_codegen sched))

let prop_transfers_add_time =
  QCheck2.Test.make ~name:"cost model: transfers never reduce time" ~count:200 gen_case
    (fun (_, md, dev, sched) ->
      match
        ( Cost.seconds md dev Cost.tuned_codegen sched,
          Cost.seconds ~include_transfers:true md dev Cost.tuned_codegen sched )
      with
      | Ok without, Ok wth -> wth >= without
      | Error _, Error _ -> true
      | _ -> false)

let prop_clamp_invariant =
  QCheck2.Test.make ~name:"cost model: clamping tiles is a no-op" ~count:200 gen_case
    (fun (_, md, dev, sched) ->
      match
        ( Cost.seconds md dev Cost.tuned_codegen sched,
          Cost.seconds md dev Cost.tuned_codegen (Schedule.clamp md sched) )
      with
      | Ok a, Ok b -> Mdh_support.Util.float_equal a b
      | Error _, Error _ -> true
      | _ -> false)

let prop_footprint_monotone =
  QCheck2.Test.make ~name:"footprint: monotone in the tile box" ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000_000) (int_range 0 (Array.length workloads - 1)))
    (fun (seed, wi) ->
      let rng = Rng.create seed in
      let w = workloads.(wi) in
      let md = W.to_md_hom w w.W.test_params in
      let rank = Mdh_core.Md_hom.rank md in
      let small = Array.init rank (fun d -> Rng.int_in rng 1 md.Mdh_core.Md_hom.sizes.(d)) in
      let big = Array.mapi (fun d s -> min md.Mdh_core.Md_hom.sizes.(d) (s + Rng.int rng 3)) small in
      Footprint.tile_input_bytes md ~box:big >= Footprint.tile_input_bytes md ~box:small)

let prop_footprint_bounded_by_buffers =
  QCheck2.Test.make ~name:"footprint: never exceeds the buffers" ~count:300
    QCheck2.Gen.(int_range 0 (Array.length workloads - 1))
    (fun wi ->
      let w = workloads.(wi) in
      let md = W.to_md_hom w w.W.test_params in
      Footprint.tile_input_bytes md ~box:md.Mdh_core.Md_hom.sizes
      <= Mdh_core.Md_hom.input_bytes md)

let prop_tuner_never_worse_than_default =
  QCheck2.Test.make ~name:"tuner: never worse than the heuristic default" ~count:40
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 (Array.length workloads - 1)))
    (fun (seed, wi) ->
      let w = workloads.(wi) in
      let md = W.to_md_hom w w.W.test_params in
      List.for_all
        (fun dev ->
          let default = Lower.mdh_default md dev in
          match
            ( Cost.seconds md dev Cost.tuned_codegen default,
              Mdh_atf.Tuner.tune ~budget:120 ~seed md dev Cost.tuned_codegen )
          with
          | Ok default_s, Ok t ->
            (* the tuner floors its stochastic search at the heuristic *)
            t.Mdh_atf.Tuner.estimated_s <= default_s *. 1.001
          | _ -> false)
        (Array.to_list devices))

let suite =
  ( "model-props",
    [ QCheck_alcotest.to_alcotest prop_cost_total_positive_finite;
      QCheck_alcotest.to_alcotest prop_legal_schedules_always_costed;
      QCheck_alcotest.to_alcotest prop_transfers_add_time;
      QCheck_alcotest.to_alcotest prop_clamp_invariant;
      QCheck_alcotest.to_alcotest prop_footprint_monotone;
      QCheck_alcotest.to_alcotest prop_footprint_bounded_by_buffers;
      QCheck_alcotest.to_alcotest prop_tuner_never_worse_than_default ] )
