(* Unit and property tests for Mdh_tensor: scalar, shape, index_fn, dense,
   buffer. *)

open Mdh_tensor

let check = Alcotest.check

(* --- Scalar --- *)

let test_scalar_roundtrip_f32 () =
  let v = Scalar.f32 1.1 in
  check Alcotest.bool "f32 rounds" true
    (Scalar.to_float v <> 1.1 && Mdh_support.Util.float_equal ~rel:1e-6 (Scalar.to_float v) 1.1)

let test_scalar_zero () =
  check Test_util.scalar_value "fp32 zero" (Scalar.F32 0.0) (Scalar.zero Scalar.Fp32);
  check Test_util.scalar_value "record zero"
    (Scalar.R [ ("a", Scalar.I32 0l); ("b", Scalar.F64 0.0) ])
    (Scalar.zero (Scalar.Record [ ("a", Scalar.Int32); ("b", Scalar.Fp64) ]))

let test_scalar_size_bytes () =
  check Alcotest.int "fp32" 4 (Scalar.size_bytes Scalar.Fp32);
  check Alcotest.int "record" 13
    (Scalar.size_bytes
       (Scalar.Record [ ("a", Scalar.Int64); ("b", Scalar.Fp32); ("c", Scalar.Bool) ]))

let test_scalar_arith () =
  check Test_util.scalar_value "add f64" (Scalar.F64 3.5)
    (Scalar.add (Scalar.F64 1.5) (Scalar.F64 2.0));
  check Test_util.scalar_value "mul i32" (Scalar.i32 42)
    (Scalar.mul (Scalar.i32 6) (Scalar.i32 7));
  check Test_util.scalar_value "min" (Scalar.i64 2)
    (Scalar.min_v (Scalar.i64 5) (Scalar.i64 2));
  check Test_util.scalar_value "max" (Scalar.i64 5)
    (Scalar.max_v (Scalar.i64 5) (Scalar.i64 2));
  check Test_util.scalar_value "neg" (Scalar.F64 (-2.0)) (Scalar.neg (Scalar.F64 2.0))

let test_scalar_arith_mismatch () =
  Alcotest.check_raises "i32+f64"
    (Invalid_argument "Scalar.add: type mismatch (1l, 2)") (fun () ->
      ignore (Scalar.add (Scalar.i32 1) (Scalar.F64 2.0)))

let test_scalar_field () =
  let r = Scalar.R [ ("x", Scalar.i32 1); ("y", Scalar.F64 2.0) ] in
  check Test_util.scalar_value "get" (Scalar.i32 1) (Scalar.field r "x");
  let r' = Scalar.set_field r "y" (Scalar.F64 9.0) in
  check Test_util.scalar_value "set" (Scalar.F64 9.0) (Scalar.field r' "y");
  check Test_util.scalar_value "old intact" (Scalar.F64 2.0) (Scalar.field r "y")

let test_scalar_type_of_value () =
  check Alcotest.bool "record type" true
    (Scalar.equal_ty
       (Scalar.type_of_value (Scalar.R [ ("a", Scalar.f32 0.0) ]))
       (Scalar.Record [ ("a", Scalar.Fp32) ]))

let test_scalar_f32_rounding_in_arith () =
  (* fp32 addition must round intermediates: 1 + 2^-30 is 1 in fp32 *)
  let v = Scalar.add (Scalar.f32 1.0) (Scalar.f32 (2.0 ** -30.0)) in
  check Test_util.scalar_value "rounds to 1" (Scalar.f32 1.0) v

(* --- Shape --- *)

let test_shape_linearize_roundtrip () =
  let shape = [| 3; 4; 5 |] in
  Shape.iter shape (fun idx ->
      let lin = Shape.linearize shape idx in
      check (Alcotest.array Alcotest.int) "roundtrip" idx (Shape.delinearize shape lin))

let test_shape_linearize_rowmajor () =
  check Alcotest.int "row major" 7 (Shape.linearize [| 3; 5 |] [| 1; 2 |])

let test_shape_iter_order () =
  let acc = ref [] in
  Shape.iter [| 2; 2 |] (fun idx -> acc := Array.copy idx :: !acc);
  check
    (Alcotest.list (Alcotest.array Alcotest.int))
    "lexicographic"
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
    (List.rev !acc)

let test_shape_iter_count () =
  let n = ref 0 in
  Shape.iter [| 3; 4; 5 |] (fun _ -> incr n);
  check Alcotest.int "count" 60 !n

let test_shape_bounds () =
  Alcotest.check_raises "oob"
    (Invalid_argument "Shape.linearize: index 3 out of bounds [0,3) in dimension 0")
    (fun () -> ignore (Shape.linearize [| 3 |] [| 3 |]))

let test_shape_scalar () =
  check Alcotest.int "scalar elements" 1 (Shape.num_elements [||]);
  check Alcotest.int "scalar offset" 0 (Shape.linearize [||] [||])

(* --- Index_fn --- *)

let test_index_identity () =
  let fn = Index_fn.identity 3 in
  check (Alcotest.array Alcotest.int) "id" [| 1; 2; 3 |] (Index_fn.apply fn [| 1; 2; 3 |])

let test_index_select () =
  let fn = Index_fn.select ~arity:2 [ 1 ] in
  check (Alcotest.array Alcotest.int) "select k" [| 9 |] (Index_fn.apply fn [| 4; 9 |])

let test_index_shifted () =
  let fn = Index_fn.shifted ~arity:1 [ (0, -1); (0, 0); (0, 1) ] in
  check (Alcotest.array Alcotest.int) "stencil" [| 4; 5; 6 |] (Index_fn.apply fn [| 5 |])

let test_index_affine_strided () =
  (* (p, r) -> (2p + r), the MCC access pattern *)
  let fn =
    Index_fn.affine ~arity:2 [ Index_fn.coord ~coeffs:[| 2; 1 |] ~offset:0 ]
  in
  check (Alcotest.array Alcotest.int) "2p+r" [| 11 |] (Index_fn.apply fn [| 4; 3 |])

let test_injective_identity () =
  check (Alcotest.option Alcotest.bool) "id injective" (Some true)
    (Index_fn.injective_on (Index_fn.identity 2) [| 5; 7 |])

let test_injective_select_drops () =
  (* (i,k) -> (k) is not injective when I > 1: the "Non-Inj." MatVec entry *)
  check (Alcotest.option Alcotest.bool) "select non-injective" (Some false)
    (Index_fn.injective_on (Index_fn.select ~arity:2 [ 1 ]) [| 5; 7 |]);
  (* ... but injective when the dropped dimension has extent 1 *)
  check (Alcotest.option Alcotest.bool) "trivial dim" (Some true)
    (Index_fn.injective_on (Index_fn.select ~arity:2 [ 1 ]) [| 1; 7 |])

let test_injective_strided_overlap () =
  (* 2p+r with r in [0,3): overlapping windows, not injective *)
  let fn = Index_fn.affine ~arity:2 [ Index_fn.coord ~coeffs:[| 2; 1 |] ~offset:0 ] in
  check (Alcotest.option Alcotest.bool) "overlap" (Some false)
    (Index_fn.injective_on fn [| 10; 3 |]);
  (* 2p+r with r in [0,2): exact cover, injective *)
  check (Alcotest.option Alcotest.bool) "exact" (Some true)
    (Index_fn.injective_on fn [| 10; 2 |])

let test_injective_strided_output () =
  (* i -> 3i: strided output, injective *)
  let fn = Index_fn.affine ~arity:1 [ Index_fn.coord ~coeffs:[| 3 |] ~offset:0 ] in
  check (Alcotest.option Alcotest.bool) "strided" (Some true)
    (Index_fn.injective_on fn [| 100 |])

let test_injective_unimodular () =
  (* (i,j) -> (i+j, i+2j): determinant 1, injective on the lattice *)
  let fn =
    Index_fn.affine ~arity:2
      [ Index_fn.coord ~coeffs:[| 1; 1 |] ~offset:0;
        Index_fn.coord ~coeffs:[| 1; 2 |] ~offset:0 ]
  in
  check (Alcotest.option Alcotest.bool) "unimodular" (Some true)
    (Index_fn.injective_on fn [| 50; 50 |])

let test_injective_large_unused_dim () =
  (* large space, unused dim: decided without brute force *)
  let fn = Index_fn.select ~arity:2 [ 1 ] in
  check (Alcotest.option Alcotest.bool) "large non-inj" (Some false)
    (Index_fn.injective_on fn [| 100000; 100000 |])

let test_injective_large_overlap () =
  let fn = Index_fn.affine ~arity:2 [ Index_fn.coord ~coeffs:[| 2; 1 |] ~offset:0 ] in
  check (Alcotest.option Alcotest.bool) "large overlap" (Some false)
    (Index_fn.injective_on fn [| 1000000; 3 |])

let test_injective_opaque () =
  let fn = Index_fn.opaque ~arity:1 ~out_rank:1 (fun p -> [| p.(0) |]) in
  check (Alcotest.option Alcotest.bool) "opaque undecidable" None
    (Index_fn.injective_on fn [| 10 |])

let test_uses_dim () =
  let fn = Index_fn.select ~arity:3 [ 0; 2 ] in
  check (Alcotest.option Alcotest.bool) "uses 0" (Some true) (Index_fn.uses_dim fn 0);
  check (Alcotest.option Alcotest.bool) "skips 1" (Some false) (Index_fn.uses_dim fn 1);
  check (Alcotest.option Alcotest.bool) "uses 2" (Some true) (Index_fn.uses_dim fn 2)

let test_footprint () =
  (* MatVec matrix access touches I*K elements *)
  check Alcotest.int "matrix" 12 (Index_fn.footprint (Index_fn.identity 2) [| 3; 4 |]);
  (* vector access (i,k)->(k) touches K elements *)
  check Alcotest.int "vector" 4
    (Index_fn.footprint (Index_fn.select ~arity:2 [ 1 ]) [| 3; 4 |])

let test_max_min_index () =
  let fn = Index_fn.shifted ~arity:1 [ (0, -1); (0, 1) ] in
  check (Alcotest.array Alcotest.int) "max" [| 8; 10 |] (Index_fn.max_index fn [| 10 |]);
  check (Alcotest.array Alcotest.int) "min" [| -1; 1 |] (Index_fn.min_index fn [| 10 |])

(* brute-force injectivity oracle vs the analysis, on random affine maps *)
let prop_injectivity_matches_oracle =
  let gen =
    QCheck2.Gen.(
      let* arity = int_range 1 3 in
      let* out_rank = int_range 1 3 in
      let* coords =
        list_size (return out_rank)
          (list_size (return arity) (int_range (-2) 3))
      in
      let* extents = list_size (return arity) (int_range 1 5) in
      return (arity, coords, Array.of_list extents))
  in
  QCheck2.Test.make ~name:"injectivity analysis matches brute force" ~count:300 gen
    (fun (arity, coords, extents) ->
      let fn =
        Index_fn.affine ~arity
          (List.map
             (fun cs -> Index_fn.coord ~coeffs:(Array.of_list cs) ~offset:0)
             coords)
      in
      let analysed = Index_fn.injective_on fn extents in
      let seen = Hashtbl.create 64 in
      let brute = ref true in
      Shape.iter extents (fun p ->
          let out = Array.to_list (Index_fn.apply fn p) in
          if Hashtbl.mem seen out then brute := false else Hashtbl.add seen out ());
      match analysed with Some b -> b = !brute | None -> true)

(* --- Dense --- *)

let test_dense_get_set () =
  let t = Dense.create Scalar.Fp64 [| 2; 3 |] in
  Dense.set t [| 1; 2 |] (Scalar.F64 5.0);
  check Test_util.scalar_value "set/get" (Scalar.F64 5.0) (Dense.get t [| 1; 2 |]);
  check Test_util.scalar_value "zero elsewhere" (Scalar.F64 0.0) (Dense.get t [| 0; 0 |])

let test_dense_of_fn () =
  let t =
    Dense.of_fn Scalar.Int32 [| 2; 2 |] (fun idx -> Scalar.i32 ((10 * idx.(0)) + idx.(1)))
  in
  check Test_util.scalar_value "elt" (Scalar.i32 11) (Dense.get t [| 1; 1 |])

let test_dense_slice () =
  let t = Dense.of_fn Scalar.Int32 [| 4 |] (fun idx -> Scalar.i32 idx.(0)) in
  let s = Dense.slice t ~dim:0 ~lo:1 ~len:2 in
  check (Alcotest.array Alcotest.int) "shape" [| 2 |] (Dense.shape s);
  check Test_util.scalar_value "content" (Scalar.i32 2) (Dense.get s [| 1 |])

let test_dense_concat () =
  let a = Dense.of_fn Scalar.Int32 [| 2; 2 |] (fun i -> Scalar.i32 i.(1)) in
  let b = Dense.of_fn Scalar.Int32 [| 2; 1 |] (fun _ -> Scalar.i32 9) in
  let c = Dense.concat ~dim:1 a b in
  check (Alcotest.array Alcotest.int) "shape" [| 2; 3 |] (Dense.shape c);
  check Test_util.scalar_value "left" (Scalar.i32 1) (Dense.get c [| 0; 1 |]);
  check Test_util.scalar_value "right" (Scalar.i32 9) (Dense.get c [| 1; 2 |])

let test_dense_concat_mismatch () =
  let a = Dense.create Scalar.Int32 [| 2; 2 |] in
  let b = Dense.create Scalar.Int32 [| 3; 1 |] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Dense.concat: extents disagree off the concat dimension")
    (fun () -> ignore (Dense.concat ~dim:1 a b))

let test_dense_scan () =
  let t = Dense.of_fn Scalar.Int32 [| 4 |] (fun idx -> Scalar.i32 (idx.(0) + 1)) in
  let s = Dense.scan ~dim:0 Scalar.add t in
  let expect = Dense.of_fn Scalar.Int32 [| 4 |] (fun idx ->
      Scalar.i32 (List.fold_left ( + ) 0 (List.init (idx.(0) + 1) (fun i -> i + 1))))
  in
  check Test_util.dense "inclusive scan" expect s

let test_dense_scan_2d () =
  let t = Dense.of_fn Scalar.Int32 [| 2; 3 |] (fun i -> Scalar.i32 ((i.(0) * 3) + i.(1))) in
  let s = Dense.scan ~dim:1 Scalar.add t in
  check Test_util.scalar_value "row 0" (Scalar.i32 3) (Dense.get s [| 0; 2 |]);
  check Test_util.scalar_value "row 1" (Scalar.i32 12) (Dense.get s [| 1; 2 |])

let test_dense_reduce () =
  let t = Dense.of_fn Scalar.Int32 [| 2; 3 |] (fun i -> Scalar.i32 ((i.(0) * 3) + i.(1))) in
  let r = Dense.reduce ~dim:1 Scalar.add t in
  check (Alcotest.array Alcotest.int) "shape" [| 2; 1 |] (Dense.shape r);
  check Test_util.scalar_value "sum row 1" (Scalar.i32 12) (Dense.get r [| 1; 0 |])

let test_dense_map2 () =
  let a = Dense.of_fn Scalar.Int32 [| 3 |] (fun i -> Scalar.i32 i.(0)) in
  let b = Dense.of_fn Scalar.Int32 [| 3 |] (fun _ -> Scalar.i32 10) in
  let c = Dense.map2 Scalar.add a b in
  check Test_util.scalar_value "sum" (Scalar.i32 12) (Dense.get c [| 2 |])

let test_dense_copy_isolated () =
  let a = Dense.create Scalar.Int32 [| 2 |] in
  let b = Dense.copy a in
  Dense.set b [| 0 |] (Scalar.i32 9);
  check Test_util.scalar_value "original intact" (Scalar.i32 0) (Dense.get a [| 0 |])

(* --- Buffer --- *)

let test_buffer_env () =
  let a = Buffer.create "a" Scalar.Fp32 [| 2 |] in
  let b = Buffer.create "b" Scalar.Fp64 [| 3 |] in
  let env = Buffer.env_of_list [ a; b ] in
  check (Alcotest.list Alcotest.string) "names" [ "a"; "b" ] (Buffer.env_names env);
  check Alcotest.bool "mem" true (Buffer.env_mem env "a");
  check Alcotest.bool "not mem" false (Buffer.env_mem env "c")

let test_buffer_env_duplicate () =
  let a = Buffer.create "a" Scalar.Fp32 [| 2 |] in
  Alcotest.check_raises "dup"
    (Invalid_argument "Buffer.env_of_list: duplicate buffer \"a\"") (fun () ->
      ignore (Buffer.env_of_list [ a; a ]))

let test_buffer_size_bytes () =
  let b = Buffer.create "b" Scalar.Fp32 [| 10; 10 |] in
  check Alcotest.int "bytes" 400 (Buffer.size_bytes b)

let suite =
  let tc = Alcotest.test_case in
  ( "tensor",
    [ tc "scalar f32 rounding" `Quick test_scalar_roundtrip_f32;
      tc "scalar zero" `Quick test_scalar_zero;
      tc "scalar size_bytes" `Quick test_scalar_size_bytes;
      tc "scalar arith" `Quick test_scalar_arith;
      tc "scalar arith mismatch" `Quick test_scalar_arith_mismatch;
      tc "scalar record fields" `Quick test_scalar_field;
      tc "scalar type_of_value" `Quick test_scalar_type_of_value;
      tc "scalar f32 arith rounds" `Quick test_scalar_f32_rounding_in_arith;
      tc "shape linearize roundtrip" `Quick test_shape_linearize_roundtrip;
      tc "shape row major" `Quick test_shape_linearize_rowmajor;
      tc "shape iter order" `Quick test_shape_iter_order;
      tc "shape iter count" `Quick test_shape_iter_count;
      tc "shape bounds" `Quick test_shape_bounds;
      tc "shape scalar" `Quick test_shape_scalar;
      tc "index identity" `Quick test_index_identity;
      tc "index select" `Quick test_index_select;
      tc "index shifted" `Quick test_index_shifted;
      tc "index strided" `Quick test_index_affine_strided;
      tc "injective identity" `Quick test_injective_identity;
      tc "injective select drops" `Quick test_injective_select_drops;
      tc "injective strided overlap" `Quick test_injective_strided_overlap;
      tc "injective strided output" `Quick test_injective_strided_output;
      tc "injective unimodular" `Quick test_injective_unimodular;
      tc "injective large unused" `Quick test_injective_large_unused_dim;
      tc "injective large overlap" `Quick test_injective_large_overlap;
      tc "injective opaque" `Quick test_injective_opaque;
      tc "uses_dim" `Quick test_uses_dim;
      tc "footprint" `Quick test_footprint;
      tc "max/min index" `Quick test_max_min_index;
      QCheck_alcotest.to_alcotest prop_injectivity_matches_oracle;
      tc "dense get/set" `Quick test_dense_get_set;
      tc "dense of_fn" `Quick test_dense_of_fn;
      tc "dense slice" `Quick test_dense_slice;
      tc "dense concat" `Quick test_dense_concat;
      tc "dense concat mismatch" `Quick test_dense_concat_mismatch;
      tc "dense scan" `Quick test_dense_scan;
      tc "dense scan 2d" `Quick test_dense_scan_2d;
      tc "dense reduce" `Quick test_dense_reduce;
      tc "dense map2" `Quick test_dense_map2;
      tc "dense copy isolated" `Quick test_dense_copy_isolated;
      tc "buffer env" `Quick test_buffer_env;
      tc "buffer env duplicate" `Quick test_buffer_env_duplicate;
      tc "buffer size bytes" `Quick test_buffer_size_bytes ] )
