(* Tests for the workload catalogue: every case study validates, transforms,
   matches its Figure 3 characteristics, and computes its oracle's result. *)

module W = Mdh_workloads.Workload
module Catalog = Mdh_workloads.Catalog
module Md_hom = Mdh_core.Md_hom
module Buffer = Mdh_tensor.Buffer
module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense

let check = Alcotest.check

let test_all_validate_at_paper_sizes () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (inp, params) ->
          match Mdh_directive.Validate.run (w.W.make params) with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s inp %s: %s" w.W.wl_name inp
              (Mdh_directive.Validate.error_to_string e))
        ((w.W.test_params |> fun tp -> ("test", tp) :: w.W.paper_inputs)))
    Catalog.all

(* Figure 3 characteristics, workload by workload *)
let expect_characteristics w inp ~rank ~red ~inj =
  let md = W.to_md_hom w (List.assoc inp w.W.paper_inputs) in
  let c = Md_hom.characteristics md in
  check Alcotest.int (w.W.wl_name ^ " rank") rank c.Md_hom.iter_space_rank;
  check Alcotest.int (w.W.wl_name ^ " reduction dims") red c.Md_hom.n_reduction_dims;
  check (Alcotest.option Alcotest.bool) (w.W.wl_name ^ " injectivity") (Some inj)
    c.Md_hom.injective_accesses

let test_figure3_characteristics () =
  expect_characteristics Mdh_workloads.Linalg.dot "1" ~rank:1 ~red:1 ~inj:true;
  expect_characteristics Mdh_workloads.Linalg.matvec "1" ~rank:2 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Linalg.matmul "1" ~rank:3 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Linalg.matmul_t "1" ~rank:3 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Linalg.bmatmul "1" ~rank:4 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Stencils.gaussian_2d "1" ~rank:2 ~red:0 ~inj:false;
  expect_characteristics Mdh_workloads.Stencils.jacobi_3d "1" ~rank:3 ~red:0 ~inj:false;
  expect_characteristics Mdh_workloads.Prl.prl "1" ~rank:2 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Ccsdt.ccsdt "1" ~rank:7 ~red:1 ~inj:false;
  expect_characteristics Mdh_workloads.Deep_learning.mcc "1" ~rank:7 ~red:3 ~inj:false;
  expect_characteristics Mdh_workloads.Deep_learning.mcc_caps "1" ~rank:10 ~red:4
    ~inj:false

let test_figure3_sizes () =
  let sizes w inp = W.sizes_strings w (List.assoc inp w.W.paper_inputs) in
  check (Alcotest.list Alcotest.string) "matvec inp1" [ "4096x4096"; "4096" ]
    (sizes Mdh_workloads.Linalg.matvec "1");
  check (Alcotest.list Alcotest.string) "matmul inp2" [ "1x2048"; "2048x1000" ]
    (sizes Mdh_workloads.Linalg.matmul "2");
  check (Alcotest.list Alcotest.string) "matmul_t" [ "64x10"; "500x64" ]
    (sizes Mdh_workloads.Linalg.matmul_t "1");
  check (Alcotest.list Alcotest.string) "bmatmul" [ "16x10x64"; "16x64x500" ]
    (sizes Mdh_workloads.Linalg.bmatmul "1");
  check (Alcotest.list Alcotest.string) "ccsdt inp1"
    [ "24x16x16x16"; "24x16x24x24" ]
    (sizes Mdh_workloads.Ccsdt.ccsdt "1");
  check (Alcotest.list Alcotest.string) "mcc inp2"
    [ "1x230x230x3"; "64x7x7x3" ]
    (sizes Mdh_workloads.Deep_learning.mcc "2");
  check (Alcotest.list Alcotest.string) "mcc_caps inp1"
    [ "16x230x230x3x4x4"; "64x7x7x3x4x4" ]
    (sizes Mdh_workloads.Deep_learning.mcc_caps "1")

let test_gen_is_deterministic () =
  List.iter
    (fun (w : W.t) ->
      let a = w.W.gen w.W.test_params ~seed:5 in
      let b = w.W.gen w.W.test_params ~seed:5 in
      let c = w.W.gen w.W.test_params ~seed:6 in
      List.iter
        (fun name ->
          check Alcotest.bool (w.W.wl_name ^ " same seed") true
            (Dense.equal (Buffer.data (Buffer.env_find a name))
               (Buffer.data (Buffer.env_find b name))))
        (Buffer.env_names a);
      check Alcotest.bool (w.W.wl_name ^ " different seed") true
        (List.exists
           (fun name ->
             not
               (Dense.equal (Buffer.data (Buffer.env_find a name))
                  (Buffer.data (Buffer.env_find c name))))
           (Buffer.env_names a)))
    Catalog.all

let test_exec_matches_oracles () =
  List.iter
    (fun (w : W.t) ->
      match w.W.reference with
      | None -> ()
      | Some oracle ->
        let md = W.to_md_hom w w.W.test_params in
        let env = w.W.gen w.W.test_params ~seed:77 in
        let got = Mdh_core.Semantics.exec md env in
        let expected = oracle w.W.test_params env in
        List.iter
          (fun (o : Md_hom.output) ->
            check Alcotest.bool (w.W.wl_name ^ "/" ^ o.Md_hom.out_name) true
              (Dense.approx_equal ~rel:1e-3 ~abs:1e-4
                 (Buffer.data (Buffer.env_find got o.Md_hom.out_name))
                 (Buffer.data (Buffer.env_find expected o.Md_hom.out_name))))
          md.Md_hom.outputs)
    Catalog.all

let test_prl_finds_injected_duplicates () =
  (* a perfect duplicate in the registry must be found with the certain
     measure: build a db that contains the new record itself *)
  let params = [ ("N", 4); ("I", 10) ] in
  let env = Mdh_workloads.Prl.prl.W.gen params ~seed:3 in
  let db = Buffer.data (Buffer.env_find env "db") in
  let newp = Buffer.data (Buffer.env_find env "newp") in
  (* plant new record 0 as db record 7 *)
  Dense.set db [| 7 |] (Dense.get newp [| 0 |]);
  let md = W.to_md_hom Mdh_workloads.Prl.prl params in
  let out = Mdh_core.Semantics.exec md env in
  let matched = Dense.get (Buffer.data (Buffer.env_find out "match")) [| 0 |] in
  check Alcotest.int "certain measure" Mdh_workloads.Prl.certain_measure
    (Scalar.to_int (Scalar.field matched "id_measure"))

let test_prl_best_is_associative_on_samples () =
  let rng = Mdh_support.Rng.create 17 in
  let random_match () =
    Scalar.R
      [ ("match_id", Scalar.i64 (Mdh_support.Rng.int rng 100));
        ("match_weight", Scalar.F64 (float_of_int (Mdh_support.Rng.int rng 10)));
        ("id_measure", Scalar.i32 (Mdh_support.Rng.int rng 15)) ]
  in
  let f = Mdh_workloads.Prl.prl_best.Mdh_combine.Combine.apply in
  for _ = 1 to 500 do
    let a = random_match () and b = random_match () and c = random_match () in
    check Test_util.scalar_value "assoc" (f (f a b) c) (f a (f b c))
  done

let test_mbbs_scan_semantics () =
  let params = [ ("I", 6); ("J", 3) ] in
  let md = W.to_md_hom Mdh_workloads.Mbbs.mbbs params in
  check Alcotest.bool "has ps dim" true
    (Array.exists
       (function Mdh_combine.Combine.Ps _ -> true | _ -> false)
       md.Md_hom.combine_ops);
  (* output keeps full extent despite being a reduction *)
  check (Alcotest.array Alcotest.int) "result shape" [| 6; 3 |] (Md_hom.result_shape md)

let test_catalog_lookup () =
  check Alcotest.bool "finds" true (Catalog.find "matvec" <> None);
  check Alcotest.bool "case-insensitive" true (Catalog.find "MCC_CAPS" <> None);
  check Alcotest.bool "missing" true (Catalog.find "nope" = None);
  check Alcotest.int "figure3 has 11 rows" 11 (List.length Catalog.figure3)

let suite =
  let tc = Alcotest.test_case in
  ( "workloads",
    [ tc "all validate at paper sizes" `Quick test_all_validate_at_paper_sizes;
      tc "figure 3 characteristics" `Quick test_figure3_characteristics;
      tc "figure 3 sizes" `Quick test_figure3_sizes;
      tc "generators deterministic" `Quick test_gen_is_deterministic;
      tc "exec matches oracles" `Slow test_exec_matches_oracles;
      tc "PRL finds injected duplicate" `Quick test_prl_finds_injected_duplicates;
      tc "prl_best associative" `Quick test_prl_best_is_associative_on_samples;
      tc "MBBS scan semantics" `Quick test_mbbs_scan_semantics;
      tc "catalogue lookup" `Quick test_catalog_lookup ] )
