(* Model calibration: check the cost model's *qualitative* predictions
   against wall-clock measurements on the machine we actually have. The
   modelled devices (A100/Xeon-Gold) are unavailable, but the mechanisms
   the model credits — cache tiling, parallelisation — are measurable on
   the host with the specialised float kernels. For each mechanism we print
   the model-predicted ratio on a host-shaped device description next to
   the measured ratio; agreement in *direction and rough magnitude* is the
   claim (Hoefler-Belli CI-bounded measurement). *)

module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Kernels = Mdh_runtime.Kernels
module Pool = Mdh_runtime.Pool
module W = Mdh_workloads.Workload
module Stats = Mdh_support.Stats
module Table = Mdh_support.Table

(* a host-shaped device: this machine's core count, generic cache sizes *)
let host_device workers =
  { Device.device_name = "this-host";
    kind = Device.Cpu;
    layers = [| { layer_name = "cores"; max_units = workers } |];
    peak_gflops = 8.0 *. float_of_int workers;
    (* a few GFLOP/s per core for boxed-float OCaml loops *)
    mem =
      [| { level_name = "DRAM"; capacity_bytes = 8 * 1024 * 1024 * 1024; bandwidth_gbs = 12.0 };
         { level_name = "L2"; capacity_bytes = 1024 * 1024; bandwidth_gbs = 80.0 };
         { level_name = "L1"; capacity_bytes = 32 * 1024; bandwidth_gbs = 300.0 } |];
    link_gbs = None;
    launch_overhead_s = 1e-6;
    saturation_units = max 1 (workers / 2);
    min_bw_fraction = 0.5;
    compute_saturation_units = workers }

let measure f = (Stats.measure_until_ci ~rel_ci:0.1 ~max_samples:30 (fun () -> snd (Mdh_support.Util.time_it f))).Stats.mean

(* Fit the generic host description against two quick probes on this
   machine: a tiled sequential fp32 matmul for the per-core compute roof
   and a large-array sweep for effective DRAM bandwidth. The model-accuracy
   benchmark correlates predictions against this fitted device — ranking
   schedules against the fictional A100/Xeon numbers would conflate model
   error with machine mismatch. The shape (cache sizes, saturation) stays
   generic; only the two roofs are measured. *)
let fitted_host_device pool =
  let workers = Pool.num_workers pool in
  let base = host_device workers in
  let rng = Mdh_support.Rng.create 7 in
  let n = 160 in
  let a = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
  let b = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
  let t_mm = measure (fun () -> Kernels.matmul_tiled ~tile:32 ~m:n ~n ~k:n a b) in
  let gflops_core = 2.0 *. (float_of_int n ** 3.0) /. t_mm /. 1e9 in
  let m = 4 * 1024 * 1024 in
  let big = Array.init m (fun i -> float_of_int (i land 7)) in
  let t_bw =
    measure (fun () ->
        let s = ref 0.0 in
        for i = 0 to m - 1 do
          s := !s +. Array.unsafe_get big i
        done;
        Sys.opaque_identity !s)
  in
  let dram_gbs = float_of_int (8 * m) /. t_bw /. 1e9 in
  let mem = Array.copy base.Device.mem in
  mem.(0) <- { mem.(0) with Device.bandwidth_gbs = dram_gbs };
  { base with
    Device.device_name = "this-host-fitted";
    peak_gflops = gflops_core *. float_of_int workers;
    mem }

let run () =
  Mdh_reports.Report.section
    "Model calibration: predicted vs measured mechanism ratios on this host";
  Pool.with_pool (fun pool ->
      let workers = Pool.num_workers pool in
      let dev = host_device workers in
      let table =
        Table.create
          ~headers:[ "mechanism"; "workload"; "predicted ratio"; "measured ratio" ]
      in
      (* --- cache tiling: matmul naive vs 32-tiled, sequential --- *)
      let n = 320 in
      let md = W.to_md_hom Mdh_workloads.Linalg.matmul [ ("I", n); ("J", n); ("K", n) ] in
      let seq tiles =
        { Schedule.tile_sizes = tiles; parallel_dims = []; used_layers = [] }
      in
      let predicted =
        match
          ( Cost.seconds md dev Cost.plain_codegen (seq [| n; n; n |]),
            Cost.seconds md dev Cost.plain_codegen (seq [| 32; 32; 32 |]) )
        with
        | Ok untiled, Ok tiled -> untiled /. tiled
        | _ -> nan
      in
      let rng = Mdh_support.Rng.create 3 in
      let a = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let b = Array.init (n * n) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let t_naive = measure (fun () -> Kernels.matmul_seq ~m:n ~n ~k:n a b) in
      let t_tiled = measure (fun () -> Kernels.matmul_tiled ~tile:32 ~m:n ~n ~k:n a b) in
      Table.add_row table
        [ "cache tiling"; Printf.sprintf "matmul %d^3" n;
          Printf.sprintf "%.2fx" predicted;
          Printf.sprintf "%.2fx" (t_naive /. t_tiled) ];
      (* --- parallelisation: matvec across the pool --- *)
      let m = 2048 and k = 2048 in
      let mdv = W.to_md_hom Mdh_workloads.Linalg.matvec [ ("I", m); ("K", k) ] in
      let predicted_par =
        match
          ( Cost.seconds mdv dev Cost.plain_codegen (Schedule.sequential mdv),
            Cost.seconds mdv dev Cost.plain_codegen
              { Schedule.tile_sizes = [| m; k |]; parallel_dims = [ 0 ];
                used_layers = [ 0 ] } )
        with
        | Ok s, Ok p -> s /. p
        | _ -> nan
      in
      let mat = Array.init (m * k) (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let vec = Array.init k (fun _ -> Mdh_support.Rng.float rng 1.0) in
      let t_seq = measure (fun () -> Kernels.matvec_seq ~m ~k mat vec) in
      let t_par = measure (fun () -> Kernels.matvec_par pool ~m ~k mat vec) in
      Table.add_row table
        [ "parallel for"; Printf.sprintf "matvec %dx%d (%d workers)" m k workers;
          Printf.sprintf "%.2fx" predicted_par;
          Printf.sprintf "%.2fx" (t_seq /. t_par) ];
      Table.print table;
      print_newline ();
      print_endline
        "Direction and rough magnitude are the claim; the host device model\n\
         uses generic per-core numbers, not a calibrated fit.")
