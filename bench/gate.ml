(* CI perf-regression gate: hold fresh bench artifacts against the
   committed baselines with explicit tolerances.

     main.exe gate [BASELINES]        (default scripts/bench_baselines.json)

   Three artifacts are checked from the current directory:

   - BENCH_plan_exec.json: for every workload with a committed
     special_speedup, the fresh specializer speedup over the interp walker
     must reach baseline * speedup_tolerance. Speedups are ratios on the
     same machine and run, so they transfer across hosts where absolute
     seconds would not.
   - BENCH_model_acc.json: the mean Spearman correlation must reach
     min_mean_spearman, and no single workload may rank below
     min_workload_spearman (workloads whose correlation is null — fewer
     than two priced schedules — are skipped, not failed).
   - BENCH_serve.json: the mdhd load generator must have benched at
     least min_levels concurrency levels, and every level must hold a
     throughput floor, a shed-rate ceiling and an error cap (see
     check_serve below for why the bounds are structural, not absolute).

   Every violated bound prints one line; any violation exits 1. A missing
   artifact is a hard failure: the gate must never pass by not running. *)

module J = Mdh_support.Json_in

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "[gate] FAIL %s\n" msg)
    fmt

let load path =
  match J.of_file path with
  | j -> j
  | exception Sys_error _ ->
    Printf.eprintf
      "[gate] error: %s not found (run plan-exec / model-acc first)\n" path;
    exit 1
  | exception J.Parse_error e ->
    Printf.eprintf "[gate] error: %s: %s\n" path e;
    exit 1

let req what = function
  | Some v -> v
  | None ->
    Printf.eprintf "[gate] error: malformed baselines: missing %s\n" what;
    exit 1

let check_plan_exec baselines =
  let fresh = load "BENCH_plan_exec.json" in
  let tol = req "plan_exec.speedup_tolerance" (J.get_float baselines "speedup_tolerance") in
  let floors =
    match J.member "special_speedup" baselines with
    | Some (J.Obj kvs) -> kvs
    | _ -> req "plan_exec.special_speedup" None
  in
  let rows = Option.value ~default:[] (J.get_list fresh "workloads") in
  let speedup_of name =
    List.find_map
      (fun row ->
        if J.get_string row "name" = Some name then
          J.get_float row "special_speedup"
        else None)
      rows
  in
  List.iter
    (fun (name, committed) ->
      let committed = req ("special_speedup." ^ name) (J.to_float committed) in
      let floor = committed *. tol in
      match speedup_of name with
      | None ->
        fail "plan-exec %s: no fresh specializer speedup (was %.1fx)" name
          committed
      | Some fresh_speedup ->
        if fresh_speedup < floor then
          fail "plan-exec %s: specializer speedup %.2fx < floor %.2fx (committed %.1fx, tolerance %.2f)"
            name fresh_speedup floor committed tol
        else
          Printf.printf "[gate] ok   plan-exec %s: %.2fx >= %.2fx\n" name
            fresh_speedup floor)
    floors

let check_model_acc baselines =
  let fresh = load "BENCH_model_acc.json" in
  let min_mean = req "model_acc.min_mean_spearman" (J.get_float baselines "min_mean_spearman") in
  let min_each =
    req "model_acc.min_workload_spearman"
      (J.get_float baselines "min_workload_spearman")
  in
  (match J.get_float fresh "mean_spearman" with
  | None -> fail "model-acc: mean_spearman is null"
  | Some mean ->
    if mean < min_mean then
      fail "model-acc: mean spearman %+.3f < floor %+.3f" mean min_mean
    else Printf.printf "[gate] ok   model-acc mean spearman %+.3f >= %+.3f\n" mean min_mean);
  List.iter
    (fun row ->
      let name = Option.value ~default:"?" (J.get_string row "name") in
      match J.get_float row "spearman" with
      | None -> Printf.printf "[gate] skip model-acc %s: correlation undefined\n" name
      | Some s ->
        if s < min_each then
          fail "model-acc %s: spearman %+.2f < floor %+.2f" name s min_each)
    (Option.value ~default:[] (J.get_list fresh "workloads"))

(* The serve floors are deliberately loose (sized for a slow shared CI
   runner): they reject a daemon that stopped serving, started erroring,
   or sheds most of its load under mild concurrency — not one that got
   slower in absolute terms. *)
let check_serve baselines =
  let fresh = load "BENCH_serve.json" in
  let min_levels =
    int_of_float (req "serve.min_levels" (J.get_float baselines "min_levels"))
  in
  let min_rps = req "serve.min_throughput_rps" (J.get_float baselines "min_throughput_rps") in
  let max_shed = req "serve.max_shed_rate" (J.get_float baselines "max_shed_rate") in
  let max_errors =
    int_of_float (req "serve.max_errors" (J.get_float baselines "max_errors"))
  in
  let rows = Option.value ~default:[] (J.get_list fresh "levels") in
  if List.length rows < min_levels then
    fail "serve: %d concurrency level(s) benched < required %d"
      (List.length rows) min_levels;
  List.iter
    (fun row ->
      let c =
        int_of_float (Option.value ~default:0.0 (J.get_float row "concurrency"))
      in
      let rps = Option.value ~default:0.0 (J.get_float row "throughput_rps") in
      let shed = Option.value ~default:1.0 (J.get_float row "shed_rate") in
      let errors =
        int_of_float (Option.value ~default:1.0 (J.get_float row "errors"))
      in
      if rps < min_rps then
        fail "serve c=%d: throughput %.1f req/s < floor %.1f" c rps min_rps
      else if shed > max_shed then
        fail "serve c=%d: shed rate %.3f > ceiling %.3f" c shed max_shed
      else if errors > max_errors then
        fail "serve c=%d: %d error reply/transport failure(s) (max %d)" c
          errors max_errors
      else
        Printf.printf
          "[gate] ok   serve c=%d: %.1f req/s >= %.1f, shed %.3f <= %.3f\n" c
          rps min_rps shed max_shed)
    rows

let run baselines_path =
  let baselines = load baselines_path in
  (match J.get_string baselines "schema" with
  | Some "mdh-bench-baselines/1" -> ()
  | _ ->
    Printf.eprintf "[gate] error: %s: expected schema mdh-bench-baselines/1\n"
      baselines_path;
    exit 1);
  (match J.member "plan_exec" baselines with
  | Some b -> check_plan_exec b
  | None -> ());
  (match J.member "model_acc" baselines with
  | Some b -> check_model_acc b
  | None -> ());
  (match J.member "serve" baselines with
  | Some b -> check_serve b
  | None -> ());
  if !failures > 0 then begin
    Printf.printf "[gate] %d regression(s) against %s\n" !failures baselines_path;
    exit 1
  end;
  Printf.printf "[gate] green against %s\n" baselines_path
