(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) plus the ablations and the
   wall-clock micro-benchmarks.

     dune exec bench/main.exe                   -- everything
     dune exec bench/main.exe figure3           -- Figure 3 table
     dune exec bench/main.exe figure4 [gpu|cpu] -- Figure 4 speedups
     dune exec bench/main.exe failure-matrix    -- Section 5.2 failures
     dune exec bench/main.exe prl-study         -- PRL Inp.1/Inp.2 study
     dune exec bench/main.exe ablation-openacc-tiling
     dune exec bench/main.exe ablation-tiling
     dune exec bench/main.exe ablation-reduction-parallel
     dune exec bench/main.exe ablation-tuning-budget
     dune exec bench/main.exe micro             -- Bechamel kernels

   Tuning results are cached: cost-model verdicts in memory, tuned
   schedules persistently (default ~/.cache/mdh/tuning.db, or
   --tuning-db PATH / $MDH_TUNING_DB), so warm re-runs skip the schedule
   search entirely. --no-cache disables both and records nothing; the
   [tuning] trailer reports what the run actually evaluated. *)

let usage () =
  print_endline
    "usage: main.exe [--no-cache] [--tuning-db PATH]\n\
    \                [figure3|figure4 [gpu|cpu]|failure-matrix|prl-study|\n\
    \                 ablation-openacc-tiling|ablation-tiling|\n\
    \                 ablation-reduction-parallel|ablation-tuning-budget|micro]";
  exit 2

let everything () =
  Mdh_reports.Figure3.run ();
  Mdh_reports.Figure4.run `Both;
  Mdh_reports.Failures.run ();
  Mdh_reports.Prl_study.run ();
  Mdh_reports.Portability.run ();
  Mdh_reports.Transfer_study.run ();
  Mdh_reports.Ablations.run ();
  Calibrate.run ();
  Micro.run ()

(* strip the cache flags (position-independent) before command dispatch *)
let rec extract_cache_flags ~no_cache ~db_path = function
  | [] -> (no_cache, db_path, [])
  | "--no-cache" :: rest -> extract_cache_flags ~no_cache:true ~db_path rest
  | "--tuning-db" :: path :: rest -> extract_cache_flags ~no_cache ~db_path:(Some path) rest
  | "--tuning-db" :: [] -> usage ()
  | arg :: rest ->
    let no_cache, db_path, args = extract_cache_flags ~no_cache ~db_path rest in
    (no_cache, db_path, arg :: args)

let setup_cache ~no_cache ~db_path =
  if no_cache then Mdh_atf.Cost_cache.set_enabled false
  else
    let path =
      match db_path with
      | Some path -> path
      | None -> Mdh_atf.Tuning_db.default_path ()
    in
    Mdh_atf.Tuning_db.set_ambient (Some (Mdh_atf.Tuning_db.open_db path))

let print_tuning_stats elapsed =
  let cost = Mdh_atf.Cost_cache.stats () in
  Printf.printf
    "[tuning] cost-model evaluations: %d (in-memory cache hits: %d) in %.2fs\n"
    cost.Mdh_support.Memo.n_misses cost.Mdh_support.Memo.n_hits elapsed;
  match Mdh_atf.Tuning_db.ambient () with
  | None -> ()
  | Some db ->
    let stats = Mdh_atf.Tuning_db.stats db in
    Printf.printf "[tuning] db %s: %d/%d searches recalled (%d entries)\n"
      (Mdh_atf.Tuning_db.path db) stats.Mdh_atf.Tuning_db.n_hits
      stats.Mdh_atf.Tuning_db.n_lookups stats.Mdh_atf.Tuning_db.n_entries

let () =
  let no_cache, db_path, args =
    extract_cache_flags ~no_cache:false ~db_path:None (List.tl (Array.to_list Sys.argv))
  in
  setup_cache ~no_cache ~db_path;
  let run body =
    let (), elapsed = Mdh_support.Util.time_it body in
    print_tuning_stats elapsed
  in
  match args with
  | [] -> run everything
  | [ "figure3" ] -> run Mdh_reports.Figure3.run
  | [ "figure4" ] -> run (fun () -> Mdh_reports.Figure4.run `Both)
  | [ "figure4"; "gpu" ] | [ "figure4"; "--device"; "gpu" ] ->
    run (fun () -> Mdh_reports.Figure4.run `Gpu)
  | [ "figure4"; "cpu" ] | [ "figure4"; "--device"; "cpu" ] ->
    run (fun () -> Mdh_reports.Figure4.run `Cpu)
  | [ "failure-matrix" ] -> run Mdh_reports.Failures.run
  | [ "prl-study" ] -> run Mdh_reports.Prl_study.run
  | [ "portability" ] -> run Mdh_reports.Portability.run
  | [ "transfer-study" ] -> run Mdh_reports.Transfer_study.run
  | [ "ablation-openacc-tiling" ] -> run Mdh_reports.Ablations.openacc_tiling
  | [ "ablation-tiling" ] -> run Mdh_reports.Ablations.tiling
  | [ "ablation-reduction-parallel" ] -> run Mdh_reports.Ablations.reduction_parallel
  | [ "ablation-tuning-budget" ] -> run Mdh_reports.Ablations.tuning_budget
  | [ "micro" ] -> run Micro.run
  | [ "calibrate" ] -> run Calibrate.run
  | _ -> usage ()
