(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) plus the ablations and the
   wall-clock micro-benchmarks.

     dune exec bench/main.exe                   -- everything
     dune exec bench/main.exe figure3           -- Figure 3 table
     dune exec bench/main.exe figure4 [gpu|cpu] -- Figure 4 speedups
     dune exec bench/main.exe failure-matrix    -- Section 5.2 failures
     dune exec bench/main.exe prl-study         -- PRL Inp.1/Inp.2 study
     dune exec bench/main.exe ablation-openacc-tiling
     dune exec bench/main.exe ablation-tiling
     dune exec bench/main.exe ablation-reduction-parallel
     dune exec bench/main.exe ablation-tuning-budget
     dune exec bench/main.exe micro             -- Bechamel kernels

   Tuning results are cached: cost-model verdicts in memory, tuned
   schedules persistently (default ~/.cache/mdh/tuning.db, or
   --tuning-db PATH / $MDH_TUNING_DB), so warm re-runs skip the schedule
   search entirely. --no-cache disables both and records nothing; the
   [tuning] trailer reports what the run actually evaluated. *)

let usage () =
  print_endline
    "usage: main.exe [--no-cache] [--tuning-db PATH] [--metrics] [--trace FILE]\n\
    \                [figure3|figure4 [gpu|cpu]|failure-matrix|prl-study|\n\
    \                 ablation-openacc-tiling|ablation-tiling|\n\
    \                 ablation-reduction-parallel|ablation-tuning-budget|micro|\n\
    \                 plan-exec|model-acc|serve|gate [BASELINES]]\n\
    \n\
    \  --metrics     print the observability summary (pool utilization, per-\n\
    \                workload cache hit/miss) and write BENCH_obs.json\n\
    \  --trace FILE  write Chrome trace_event JSON of the run (Perfetto)";
  exit 2

let everything () =
  Mdh_reports.Figure3.run ();
  Mdh_reports.Figure4.run `Both;
  Mdh_reports.Failures.run ();
  Mdh_reports.Prl_study.run ();
  Mdh_reports.Portability.run ();
  Mdh_reports.Transfer_study.run ();
  Mdh_reports.Ablations.run ();
  Calibrate.run ();
  Micro.run ()

type flags = {
  no_cache : bool;
  db_path : string option;
  metrics : bool;
  trace : string option;
}

(* strip the option flags (position-independent) before command dispatch *)
let rec extract_flags acc = function
  | [] -> (acc, [])
  | "--no-cache" :: rest -> extract_flags { acc with no_cache = true } rest
  | "--tuning-db" :: path :: rest ->
    extract_flags { acc with db_path = Some path } rest
  | "--tuning-db" :: [] -> usage ()
  | "--metrics" :: rest -> extract_flags { acc with metrics = true } rest
  | "--trace" :: path :: rest -> extract_flags { acc with trace = Some path } rest
  | "--trace" :: [] -> usage ()
  | arg :: rest ->
    let acc, args = extract_flags acc rest in
    (acc, arg :: args)

let setup_cache ~no_cache ~db_path =
  if no_cache then Mdh_atf.Cost_cache.set_enabled false
  else
    let db =
      match db_path with
      | Some path -> Mdh_atf.Tuning_db.open_db path
      | None -> (
        match Mdh_atf.Tuning_db.default_path () with
        | Some path -> Mdh_atf.Tuning_db.open_db path
        | None -> Mdh_atf.Tuning_db.in_memory ())
    in
    Mdh_atf.Tuning_db.set_ambient (Some db)

let print_tuning_stats elapsed =
  let cost = Mdh_atf.Cost_cache.stats () in
  Printf.printf
    "[tuning] cost-model evaluations: %d (in-memory cache hits: %d) in %.2fs\n"
    cost.Mdh_atf.Cost_cache.n_misses cost.Mdh_atf.Cost_cache.n_hits elapsed;
  match Mdh_atf.Tuning_db.ambient () with
  | None -> ()
  | Some db ->
    let stats = Mdh_atf.Tuning_db.stats db in
    Printf.printf "[tuning] db %s: %d/%d searches recalled (%d entries)\n"
      (Option.value ~default:"(in-memory)" (Mdh_atf.Tuning_db.path db))
      stats.Mdh_atf.Tuning_db.n_hits stats.Mdh_atf.Tuning_db.n_lookups
      stats.Mdh_atf.Tuning_db.n_entries

let print_workload_obs () =
  match Mdh_reports.Report.workload_obs () with
  | [] -> ()
  | rows ->
    print_endline "[obs] cost cache per workload (hits/misses):";
    List.iter
      (fun (name, hits, misses, elapsed) ->
        Printf.printf "[obs]   %-16s %6d / %-6d  %.3fs\n" name hits misses elapsed)
      rows

let print_pool_obs () =
  let gauge name = Mdh_obs.Metrics.(gauge_value (gauge name)) in
  let workers = int_of_float (gauge "runtime.pool.workers") in
  if workers > 0 then begin
    let jobs = Mdh_obs.Metrics.(value (counter "runtime.pool.jobs")) in
    let capacity = gauge "runtime.pool.capacity_s" in
    if capacity > 0.0 then
      Printf.printf
        "[obs] pool: %d workers, %d jobs, %.2fs busy of %.2fs worker capacity \
         (utilization %.0f%%)\n"
        workers jobs (gauge "runtime.pool.busy_s") capacity
        (100.0 *. gauge "runtime.pool.utilization")
    else
      (* single-core host: the pool spawned no extra domains, so parallel
         loops ran inline in the caller and there is no capacity to meter *)
      Printf.printf "[obs] pool: caller only (no extra domains on this host), %d jobs\n"
        jobs
  end

(* machine-readable observability record, one per bench invocation, so
   later PRs have a perf trajectory to diff against *)
let write_bench_obs ~command ~elapsed path =
  let module J = Mdh_obs.Json in
  let workloads =
    J.arr
      (List.map
         (fun (name, hits, misses, elapsed) ->
           J.obj
             [ ("name", J.quote name);
               ("cost_cache_hits", string_of_int hits);
               ("cost_cache_misses", string_of_int misses);
               ("elapsed_s", J.number elapsed) ])
         (Mdh_reports.Report.workload_obs ()))
  in
  let json =
    J.obj
      [ ("schema", J.quote "mdh-bench-obs/1");
        ("command", J.quote command);
        ("elapsed_s", J.number elapsed);
        ("metrics", Mdh_obs.Metrics.to_json ());
        ("workloads", workloads) ]
  in
  Out_channel.with_open_text path (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "[obs] wrote %s\n" path

let () =
  let flags, args =
    extract_flags
      { no_cache = false; db_path = None; metrics = false; trace = None }
      (List.tl (Array.to_list Sys.argv))
  in
  setup_cache ~no_cache:flags.no_cache ~db_path:flags.db_path;
  if flags.trace <> None then Mdh_obs.Trace.set_enabled true;
  let command = match args with [] -> "everything" | args -> String.concat " " args in
  let run body =
    let (), elapsed = Mdh_support.Util.time_it body in
    print_tuning_stats elapsed;
    if flags.metrics then begin
      print_pool_obs ();
      print_workload_obs ();
      let summary = Mdh_obs.Metrics.summary () in
      if summary <> "" then print_string summary;
      write_bench_obs ~command ~elapsed "BENCH_obs.json"
    end;
    match flags.trace with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path Mdh_obs.Trace.write_chrome;
      Printf.printf "[obs] trace written to %s\n" path
  in
  match args with
  | [] -> run everything
  | [ "figure3" ] -> run Mdh_reports.Figure3.run
  | [ "figure4" ] -> run (fun () -> Mdh_reports.Figure4.run `Both)
  | [ "figure4"; "gpu" ] | [ "figure4"; "--device"; "gpu" ] ->
    run (fun () -> Mdh_reports.Figure4.run `Gpu)
  | [ "figure4"; "cpu" ] | [ "figure4"; "--device"; "cpu" ] ->
    run (fun () -> Mdh_reports.Figure4.run `Cpu)
  | [ "failure-matrix" ] -> run Mdh_reports.Failures.run
  | [ "prl-study" ] -> run Mdh_reports.Prl_study.run
  | [ "portability" ] -> run Mdh_reports.Portability.run
  | [ "transfer-study" ] -> run Mdh_reports.Transfer_study.run
  | [ "ablation-openacc-tiling" ] -> run Mdh_reports.Ablations.openacc_tiling
  | [ "ablation-tiling" ] -> run Mdh_reports.Ablations.tiling
  | [ "ablation-reduction-parallel" ] -> run Mdh_reports.Ablations.reduction_parallel
  | [ "ablation-tuning-budget" ] -> run Mdh_reports.Ablations.tuning_budget
  | [ "micro" ] -> run Micro.run
  | [ "plan-exec" ] -> run Plan_exec.run
  | [ "serve" ] -> run Serve_bench.run
  | [ "model-acc" ] -> run Model_acc.run
  | [ "gate" ] -> Gate.run "scripts/bench_baselines.json"
  | [ "gate"; baselines ] -> Gate.run baselines
  | [ "calibrate" ] -> run Calibrate.run
  | _ -> usage ()
