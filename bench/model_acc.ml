(* Cost-model accuracy over the catalogue: does the model *rank* schedules
   the way the machine does?

   For every workload (the plan-exec sizes), a pinned RNG draws legal
   schedules from the tuning space, the cost model prices each one on the
   calibrated host device (see Calibrate.fitted_host_device — correlating
   against the fictional A100 would conflate model error with machine
   mismatch), and the executor measures each one on the pool. Per workload
   we report Spearman and Kendall rank correlation between predicted and
   measured seconds plus the median multiplicative ratio error, and write
   BENCH_model_acc.json (schema mdh-model-acc/1) — the artifact the CI
   perf gate holds against committed correlation floors.

   The draws are pinned (seed 101 + workload index, duplicates dropped),
   so reruns rank the same schedule set. *)

module W = Mdh_workloads.Workload
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Pool = Mdh_runtime.Pool
module Exec = Mdh_runtime.Exec
module Space = Mdh_atf.Space
module Stats = Mdh_support.Stats
module Rng = Mdh_support.Rng
module J = Mdh_obs.Json

let samples_per_workload = 8
let runs_per_schedule = 3

(* larger than the plan-exec sizes: the ranking is only meaningful when
   the mechanisms the model prices (compute, traffic, parallel speedup)
   dominate the measurement, not per-box pool dispatch — at the plan-exec
   sizes a parallel schedule loses to dispatch overhead and every
   correlation inverts. Walker-bound workloads (record types, custom
   operators) stay moderate so the sweep finishes in tens of seconds. *)
let cases =
  [ ("dot", [ ("K", 2_000_000) ]);
    ("matvec", [ ("I", 1536); ("K", 1536) ]);
    ("matmul", [ ("I", 128); ("J", 128); ("K", 128) ]);
    ("matmul^t", [ ("I", 128); ("J", 128); ("K", 128) ]);
    ("bmatmul", [ ("B", 16); ("I", 48); ("J", 48); ("K", 48) ]);
    ("gaussian_2d", [ ("N", 384); ("M", 384) ]);
    ("jacobi_3d", [ ("N", 56) ]);
    ("prl", [ ("N", 64); ("I", 2048) ]);
    ("ccsd(t)",
     [ ("h3", 6); ("h2", 4); ("h1", 4); ("p6", 6); ("p5", 4); ("p4", 4);
       ("h7", 6) ]);
    ("mcc", [ ("N", 1); ("P", 6); ("Q", 6); ("K", 8); ("R", 3); ("S", 3); ("C", 8) ]);
    ("mcc_caps",
     [ ("N", 1); ("P", 4); ("Q", 4); ("K", 4); ("R", 3); ("S", 3); ("C", 4);
       ("M", 2) ]);
    ("mbbs", [ ("I", 512); ("J", 128) ]);
    ("jacobi1d", [ ("N", 1_000_000) ]) ]

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let _, t = Mdh_support.Util.time_it f in
    if t < !best then best := t
  done;
  !best

let num_or_null x = if Float.is_nan x then "null" else J.number x

(* Three quality anchors plus pinned-random draws. Purely random legal
   schedules cluster in the middle of the quality range (and the model
   prices many of them identically), so the rank correlation would be
   dominated by measurement noise; the anchors — fully sequential,
   deterministic tiled default, everything-parallel — span the range the
   model actually claims to order. *)
let draw_schedules md dev ~seed ~want =
  let space, decode = Mdh_atf.Tuner.space md dev in
  let rng = Rng.create seed in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let push sched =
    let key = Format.asprintf "%a" Schedule.pp sched in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := sched :: !out
    end
  in
  push (Schedule.sequential md);
  push (Mdh_lowering.Lower.mdh_default md dev);
  push
    { (Schedule.sequential md) with
      Schedule.parallel_dims = Mdh_lowering.Lower.parallelisable_dims md;
      used_layers = [ 0 ] };
  let attempts = ref 0 in
  while List.length !out < want && !attempts < want * 20 do
    incr attempts;
    match Space.sample space rng with
    | None -> attempts := want * 20
    | Some config -> push (decode config)
  done;
  List.rev !out

let bench_one pool dev idx (w : W.t) params =
  let md = W.to_md_hom w params in
  let env = w.W.gen params ~seed:17 in
  let name = String.lowercase_ascii w.W.wl_name in
  let scheds = draw_schedules md dev ~seed:(101 + idx) ~want:samples_per_workload in
  let pairs =
    List.filter_map
      (fun sched ->
        match Cost.seconds md dev Cost.tuned_codegen sched with
        | Error _ -> None
        | Ok predicted ->
          let run () =
            match Exec.run ~device:dev ~fastpath:false pool md sched env with
            | Ok e -> ignore e
            | Error e -> failwith (name ^ ": " ^ e)
          in
          let measured = best_of runs_per_schedule run in
          Some (sched, predicted, measured))
      scheds
  in
  let predicted = Array.of_list (List.map (fun (_, p, _) -> p) pairs) in
  let measured = Array.of_list (List.map (fun (_, _, m) -> m) pairs) in
  let spearman = Stats.spearman predicted measured in
  let kendall = Stats.kendall predicted measured in
  let median_ratio =
    if pairs = [] then nan
    else
      Stats.median
        (Array.map2
           (fun p m -> if p > m then p /. m else m /. p)
           predicted measured)
  in
  Printf.printf
    "%-11s %2d schedules  spearman %+.2f  kendall %+.2f  median ratio %.1fx\n%!"
    name (List.length pairs) spearman kendall median_ratio;
  let row =
    J.obj
      [ ("name", J.quote name);
        ("n_schedules", string_of_int (List.length pairs));
        ("spearman", num_or_null spearman);
        ("kendall", num_or_null kendall);
        ("median_ratio", num_or_null median_ratio);
        ("pairs",
         J.arr
           (List.map
              (fun (sched, p, m) ->
                J.obj
                  [ ("schedule", J.quote (Format.asprintf "%a" Schedule.pp sched));
                    ("predicted_s", J.number p);
                    ("measured_s", J.number m) ])
              pairs)) ]
  in
  (row, spearman)

let run () =
  print_endline
    "[model-acc] predicted-vs-measured schedule ranking on the calibrated host";
  Pool.with_pool (fun pool ->
      let dev = Calibrate.fitted_host_device pool in
      Printf.printf "[model-acc] fitted host: %.1f GFLOP/s peak, %.1f GB/s DRAM\n%!"
        dev.Mdh_machine.Device.peak_gflops
        dev.Mdh_machine.Device.mem.(0).Mdh_machine.Device.bandwidth_gbs;
      let rows, spearmans =
        List.split
          (List.mapi
             (fun idx (name, params) ->
               match Mdh_workloads.Catalog.find name with
               | Some w -> bench_one pool dev idx w params
               | None -> failwith ("unknown workload " ^ name))
             cases)
      in
      let valid = List.filter (fun s -> not (Float.is_nan s)) spearmans in
      let mean_spearman =
        if valid = [] then nan
        else List.fold_left ( +. ) 0.0 valid /. float_of_int (List.length valid)
      in
      Printf.printf "[model-acc] mean spearman over %d workloads: %+.3f\n"
        (List.length valid) mean_spearman;
      let json =
        J.obj
          [ ("schema", J.quote "mdh-model-acc/1");
            ("device", J.quote dev.Mdh_machine.Device.device_name);
            ("samples_per_workload", string_of_int samples_per_workload);
            ("mean_spearman", num_or_null mean_spearman);
            ("workloads", J.arr rows) ]
      in
      Out_channel.with_open_text "BENCH_model_acc.json" (fun oc ->
          output_string oc json;
          output_char oc '\n');
      print_endline "[model-acc] wrote BENCH_model_acc.json")
