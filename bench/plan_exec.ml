(* Three-backend executor benchmark over the whole catalogue: for every
   workload, the same tiled schedule runs through

   - interp:  the generic plan walker (fast path and specializer off) —
              boxed per-point interpretation, the semantic baseline;
   - special: the plan-compiled fp32 specializer, timed on its compiled
              closure (compilation is cached under Plan.digest and the
              warm runs are asserted to recompile nothing);
   - cc:      the generated OpenMP C, compiled once with gcc -O3 -fopenmp
              and timed per driver invocation (build time reported
              separately; skipped with a printed note when gcc is absent
              or the computation exceeds the Listing 2 C shape).

   Every backend's result is checked against Semantics.exec before it is
   timed: the specializer at the repository tolerance, the compiled C a
   decade looser (C float accumulation plus OpenMP reassociation).

   Results go to stdout and BENCH_plan_exec.json (best-of-N seconds plus
   speedups over interp); the JSON is a run artifact, not a source — CI
   uploads it, .gitignore excludes it. *)

module W = Mdh_workloads.Workload
module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Plan_cache = Mdh_lowering.Plan_cache
module Pool = Mdh_runtime.Pool
module Exec = Mdh_runtime.Exec
module Specializer = Mdh_runtime.Specializer
module Cc = Mdh_codegen.Cc
module J = Mdh_obs.Json
module Rewrite = Mdh_rewrite.Rewrite

let cpu = Mdh_machine.Device.xeon6140_like

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let _, t = Mdh_support.Util.time_it f in
    if t < !best then best := t
  done;
  !best

let tiled_schedule md =
  { (Lower.mdh_default md cpu) with Schedule.used_layers = [ 0 ] }

let check_result ~rel ~abs name md got expected =
  List.iter
    (fun (o : Md_hom.output) ->
      let data e = Buffer.data (Buffer.env_find e o.Md_hom.out_name) in
      if not (Dense.approx_equal ~rel ~abs (data got) (data expected)) then
        failwith (name ^ ": backend result mismatch"))
    md.Md_hom.outputs

(* moderate sizes: big enough that per-point interpretation overhead
   dominates, small enough that the full catalogue sweep stays in seconds *)
let cases =
  [ ("dot", [ ("K", 200_000) ]);
    ("matvec", [ ("I", 512); ("K", 512) ]);
    ("matmul", [ ("I", 48); ("J", 48); ("K", 48) ]);
    ("matmul^t", [ ("I", 48); ("J", 48); ("K", 48) ]);
    ("bmatmul", [ ("B", 8); ("I", 24); ("J", 24); ("K", 24) ]);
    ("gaussian_2d", [ ("N", 96); ("M", 96) ]);
    ("jacobi_3d", [ ("N", 30) ]);
    ("prl", [ ("N", 64); ("I", 1024) ]);
    ("ccsd(t)",
     [ ("h3", 6); ("h2", 4); ("h1", 4); ("p6", 6); ("p5", 4); ("p4", 4);
       ("h7", 6) ]);
    ("mcc", [ ("N", 1); ("P", 6); ("Q", 6); ("K", 8); ("R", 3); ("S", 3); ("C", 8) ]);
    ("mcc_caps",
     [ ("N", 1); ("P", 4); ("Q", 4); ("K", 4); ("R", 3); ("S", 3); ("C", 4);
       ("M", 2) ]);
    ("mbbs", [ ("I", 256); ("J", 64) ]);
    ("jacobi1d", [ ("N", 100_000) ]);
    ("kmeans", [ ("N", 512); ("K", 64) ]) ]

let bench_one pool (w : W.t) params =
  let md = W.to_md_hom w params in
  let env = w.W.gen params ~seed:17 in
  let name = String.lowercase_ascii w.W.wl_name in
  let size =
    String.concat "x" (Array.to_list (Array.map string_of_int md.Md_hom.sizes))
  in
  let sched = tiled_schedule md in
  let plan =
    match Plan_cache.build md cpu sched with
    | Ok p -> p
    | Error e -> failwith (name ^ ": plan build: " ^ e)
  in
  let expected = Semantics.exec md env in
  (* interp: the generic walker, every dispatch layer off *)
  let run_interp () =
    match Exec.run ~fastpath:false ~specialize:false pool md sched env with
    | Ok e -> e
    | Error e -> failwith (name ^ ": " ^ e)
  in
  check_result ~rel:1e-4 ~abs:1e-5 name md (run_interp ()) expected;
  let interp_s = best_of 3 run_interp in
  (* special: compiled closure; warm timed runs must never recompile *)
  let special_s =
    match Specializer.supported plan md with
    | Error reason ->
      Printf.printf "%-11s %-22s  specializer unsupported: %s\n%!" name size
        reason;
      None
    | Ok () ->
      let run_special () =
        match Specializer.try_run pool plan md env with
        | Some e -> e
        | None -> failwith (name ^ ": specializer refused a supported plan")
      in
      check_result ~rel:1e-4 ~abs:1e-5 name md (run_special ()) expected;
      let warm = (Specializer.stats ()).Specializer.compiles in
      let t = best_of 3 run_special in
      let after = (Specializer.stats ()).Specializer.compiles in
      if after <> warm then
        failwith (name ^ ": warm specializer runs recompiled the plan");
      Some t
  in
  (* cc: build once (reported separately), time the driver runs *)
  let cc_build_s, cc_s =
    if not (Cc.available ()) then (None, None)
    else
      match Mdh_support.Util.time_it (fun () -> Cc.build md) with
      | Error reason, _ ->
        Printf.printf "%-11s %-22s  %s\n%!" name size reason;
        (None, None)
      | Ok t, build_s ->
        let run_cc () =
          match Cc.run t env with
          | Ok e -> e
          | Error e -> failwith (name ^ ": " ^ e)
        in
        check_result ~rel:1e-3 ~abs:1e-4 name md (run_cc ()) expected;
        let s = best_of 3 run_cc in
        Cc.cleanup t;
        (Some build_s, Some s)
  in
  (* rewritten: the equality-saturated computation + plan through the
     same walker as interp, so the column isolates what `mdhc optimize`
     buys (fewer point flops) from backend dispatch effects *)
  let rewritten_s, rewrite_rules =
    match
      Rewrite.optimize ~oracle:(Mdh_analysis.Opcheck_oracle.oracle ()) md cpu
        Mdh_lowering.Cost.tuned_codegen sched
    with
    | Error e -> failwith (name ^ ": rewrite: " ^ e)
    | Ok r ->
      let run_rewritten () =
        match
          Exec.run_with_plan ~fastpath:false ~specialize:false pool
            r.Rewrite.r_plan r.Rewrite.r_md env
        with
        | Ok e -> e
        | Error e -> failwith (name ^ ": rewritten: " ^ e)
      in
      check_result ~rel:1e-4 ~abs:1e-5 name md (run_rewritten ()) expected;
      (best_of 3 run_rewritten, List.length r.Rewrite.r_applied)
  in
  let speedup = Option.map (fun s -> interp_s /. s) in
  let fmt_opt = function
    | Some s -> Printf.sprintf "%.4fs (%.1fx)" s (interp_s /. s)
    | None -> "-"
  in
  Printf.printf
    "%-11s %-22s  interp %.4fs  rewritten %.4fs (%.1fx, %d rules)  special \
     %-18s  cc %s\n\
     %!"
    name size interp_s rewritten_s (interp_s /. rewritten_s) rewrite_rules
    (fmt_opt special_s)
    (fmt_opt cc_s);
  let num_opt = function Some s -> J.number s | None -> "null" in
  J.obj
    [ ("name", J.quote name);
      ("size", J.quote size);
      ("interp_s", J.number interp_s);
      ("rewritten_s", J.number rewritten_s);
      ("rewrite_rules", string_of_int rewrite_rules);
      ("rewrite_speedup", J.number (interp_s /. rewritten_s));
      ("special_s", num_opt special_s);
      ("cc_s", num_opt cc_s);
      ("cc_build_s", num_opt cc_build_s);
      ("special_supported", if special_s = None then "false" else "true");
      ("cc_supported", if cc_s = None then "false" else "true");
      ("special_speedup", num_opt (speedup special_s));
      ("cc_speedup", num_opt (speedup cc_s)) ]

let run () =
  print_endline
    "[plan-exec] interp walker vs plan-compiled specializer vs compiled \
     OpenMP C (host pool)";
  if not (Cc.available ()) then
    print_endline "[plan-exec] gcc not on PATH: cc columns will be null";
  let rows =
    Pool.with_pool (fun pool ->
        List.map
          (fun (name, params) ->
            match Mdh_workloads.Catalog.find name with
            | Some w -> bench_one pool w params
            | None -> failwith ("unknown workload " ^ name))
          cases)
  in
  let json =
    J.obj [ ("schema", J.quote "mdh-bench-plan-exec/2"); ("workloads", J.arr rows) ]
  in
  Out_channel.with_open_text "BENCH_plan_exec.json" (fun oc ->
      output_string oc json;
      output_char oc '\n');
  print_endline "[plan-exec] wrote BENCH_plan_exec.json"
