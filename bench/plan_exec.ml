(* Plan-executor benchmark: the pre-refactor chunking strategy against the
   plan walker's multi-dimension decomposition and the flat-array fast
   path, on the workloads the fast path specialises.

   Three variants per workload, all through Exec.run on the same pool:
   - legacy:    untiled schedule, only the lowest-indexed parallelisable
                dimension distributed, fast path off — the shape of work
                the pre-refactor executor produced;
   - plan-tiled: cache-sized tiles and every parallelisable dimension
                distributed, fast path off — the plan walker's own gain;
   - fastpath:  the same schedule with kernel dispatch on.

   Results go to stdout and BENCH_plan_exec.json (per-variant best-of-N
   seconds plus speedups over legacy); the JSON is a run artifact, not a
   source — CI uploads it, .gitignore excludes it. *)

module W = Mdh_workloads.Workload
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Pool = Mdh_runtime.Pool
module Exec = Mdh_runtime.Exec
module J = Mdh_obs.Json

let cpu = Mdh_machine.Device.xeon6140_like

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let _, t = Mdh_support.Util.time_it f in
    if t < !best then best := t
  done;
  !best

let legacy_schedule md =
  match Lower.parallelisable_dims md with
  | [] -> Schedule.sequential md
  | d :: _ ->
    { (Schedule.sequential md) with
      Schedule.parallel_dims = [ d ];
      Schedule.used_layers = [ 0 ] }

let tiled_schedule md =
  { (Lower.mdh_default md cpu) with Schedule.used_layers = [ 0 ] }

let bench_one pool (w : W.t) params =
  let md = W.to_md_hom w params in
  let env = w.W.gen params ~seed:17 in
  let size =
    String.concat "x" (Array.to_list (Array.map string_of_int md.Mdh_core.Md_hom.sizes))
  in
  let time ?(fastpath = false) sched =
    let run () =
      match Exec.run ~fastpath pool md sched env with
      | Ok e -> e
      | Error e -> failwith (w.W.wl_name ^ ": " ^ e)
    in
    (* correctness first, then best-of-3 wall clock *)
    let got = run () in
    let expected = Mdh_core.Semantics.exec md env in
    List.iter
      (fun (o : Mdh_core.Md_hom.output) ->
        let data e =
          Mdh_tensor.Buffer.data
            (Mdh_tensor.Buffer.env_find e o.Mdh_core.Md_hom.out_name)
        in
        if
          not
            (Mdh_tensor.Dense.approx_equal ~rel:1e-4 ~abs:1e-5 (data got)
               (data expected))
        then failwith (w.W.wl_name ^ ": variant result mismatch"))
      md.Mdh_core.Md_hom.outputs;
    best_of 3 run
  in
  let legacy_s = time (legacy_schedule md) in
  let tiled_s = time (tiled_schedule md) in
  let fast_s = time ~fastpath:true (tiled_schedule md) in
  Printf.printf "%-8s %-12s  legacy %.4fs  plan-tiled %.4fs (%.2fx)  fastpath %.4fs (%.1fx)\n%!"
    (String.lowercase_ascii w.W.wl_name)
    size legacy_s tiled_s (legacy_s /. tiled_s) fast_s (legacy_s /. fast_s);
  J.obj
    [ ("name", J.quote (String.lowercase_ascii w.W.wl_name));
      ("size", J.quote size);
      ("legacy_s", J.number legacy_s);
      ("plan_tiled_s", J.number tiled_s);
      ("fastpath_s", J.number fast_s);
      ("plan_tiled_speedup", J.number (legacy_s /. tiled_s));
      ("fastpath_speedup", J.number (legacy_s /. fast_s)) ]

let run () =
  print_endline "[plan-exec] plan walker vs pre-refactor chunking (host pool)";
  let cases =
    [ ("matmul", [ ("I", 48); ("J", 48); ("K", 48) ]);
      ("matvec", [ ("I", 512); ("K", 512) ]);
      ("dot", [ ("K", 200_000) ]) ]
  in
  let rows =
    Pool.with_pool (fun pool ->
        List.map
          (fun (name, params) ->
            match Mdh_workloads.Catalog.find name with
            | Some w -> bench_one pool w params
            | None -> failwith ("unknown workload " ^ name))
          cases)
  in
  let json =
    J.obj [ ("schema", J.quote "mdh-bench-plan-exec/1"); ("workloads", J.arr rows) ]
  in
  Out_channel.with_open_text "BENCH_plan_exec.json" (fun oc ->
      output_string oc json;
      output_char oc '\n');
  print_endline "[plan-exec] wrote BENCH_plan_exec.json"
