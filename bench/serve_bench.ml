(* Load generator for the mdhd daemon: boots an in-process Server on its
   default config, then drives it with client threads at increasing
   concurrency levels over a fixed wall-time window each. Every request
   is a [plan] op (heavier than [health], but plan-cache-warm after the
   first hit, so the bench measures the serving path, not lowering).

   Per level it reports requests served, p50/p99 latency, throughput and
   the shed rate (structured [overloaded] replies / attempts) — the
   admission-control headline. Results go to stdout and
   BENCH_serve.json (schema mdh-serve/1), gated by
   scripts/bench_baselines.json ["serve"] via main.exe gate. The JSON is
   a run artifact, not a source: CI uploads it, .gitignore excludes
   it. *)

module Server = Mdh_serve.Server
module Client = Mdh_serve.Client
module J = Mdh_obs.Json

let levels = [ 1; 2; 4; 8 ]
let wall_s = 0.6

type tally = {
  mutable ok : int;
  mutable shed : int;
  mutable errors : int;
  mutable latencies : float list;  (* seconds, successful requests only *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let client_loop ~socket ~stop_at tally mu =
  let rec go () =
    if Unix.gettimeofday () < stop_at then begin
      let t0 = Unix.gettimeofday () in
      let reply =
        Client.request ~timeout_s:10.0 ~socket ~op:"plan"
          [ ("workload", J.quote "matvec"); ("device", J.quote "cpu") ]
      in
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock mu;
      (match reply with
      | Ok { Client.ok = true; _ } ->
        tally.ok <- tally.ok + 1;
        tally.latencies <- dt :: tally.latencies
      | Ok { Client.code = Some "overloaded"; retry_after_s; _ } ->
        tally.shed <- tally.shed + 1;
        Mutex.unlock mu;
        Thread.delay (Option.value ~default:0.01 retry_after_s);
        Mutex.lock mu
      | Ok _ | Error _ -> tally.errors <- tally.errors + 1);
      Mutex.unlock mu;
      go ()
    end
  in
  go ()

let bench_level ~socket concurrency =
  let tally = { ok = 0; shed = 0; errors = 0; latencies = [] } in
  let mu = Mutex.create () in
  let stop_at = Unix.gettimeofday () +. wall_s in
  let clients =
    List.init concurrency (fun _ ->
        Thread.create (fun () -> client_loop ~socket ~stop_at tally mu) ())
  in
  List.iter Thread.join clients;
  let attempts = tally.ok + tally.shed + tally.errors in
  let sorted = Array.of_list tally.latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
  let throughput = float_of_int tally.ok /. wall_s in
  let shed_rate =
    if attempts = 0 then 0.0 else float_of_int tally.shed /. float_of_int attempts
  in
  Printf.printf
    "[serve] c=%d  ok %5d  shed %4d  err %2d  p50 %6.2fms  p99 %6.2fms  %7.1f req/s  shed rate %.3f\n%!"
    concurrency tally.ok tally.shed tally.errors (p50 *. 1e3) (p99 *. 1e3)
    throughput shed_rate;
  J.obj
    [ ("concurrency", string_of_int concurrency);
      ("requests", string_of_int attempts);
      ("ok", string_of_int tally.ok);
      ("shed", string_of_int tally.shed);
      ("errors", string_of_int tally.errors);
      ("p50_ms", J.number (p50 *. 1e3));
      ("p99_ms", J.number (p99 *. 1e3));
      ("throughput_rps", J.number throughput);
      ("shed_rate", J.number shed_rate) ]

let run () =
  Mdh_atf.Tuning_db.set_ambient None;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdh-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    match Server.create (Server.default_config ~socket) with
    | Ok t -> t
    | Error e -> failwith ("serve bench: " ^ e)
  in
  let daemon = Thread.create Server.serve server in
  Fun.protect ~finally:(fun () ->
      Server.request_shutdown server;
      Thread.join daemon)
  @@ fun () ->
  Printf.printf "[serve] in-process mdhd on %s, %.1fs per level\n%!" socket
    wall_s;
  (* Warm the plan cache outside the timed windows so level 1 is not
     dominated by the one cold lowering. *)
  (match
     Client.request ~timeout_s:10.0 ~socket ~op:"plan"
       [ ("workload", J.quote "matvec"); ("device", J.quote "cpu") ]
   with
  | Ok { Client.ok = true; _ } -> ()
  | Ok { Client.error; _ } ->
    failwith
      ("serve bench: warmup failed: " ^ Option.value ~default:"?" error)
  | Error e -> failwith ("serve bench: warmup failed: " ^ e));
  let rows = List.map (fun c -> bench_level ~socket c) levels in
  let json =
    J.obj
      [ ("schema", J.quote "mdh-serve/1");
        ("op", J.quote "plan");
        ("wall_s_per_level", J.number wall_s);
        ("levels", J.arr rows) ]
  in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      output_string oc json;
      output_char oc '\n');
  print_endline "[serve] wrote BENCH_serve.json"
