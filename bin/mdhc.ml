(* mdhc — the MDH directive compiler driver.

   Inspect, validate, auto-tune, cost and execute the catalogue's
   directive programs:

     mdhc list
     mdhc devices
     mdhc show matvec
     mdhc tune matmul --device cpu --budget 400
     mdhc tune matmul --parallel --chains 4
     mdhc tune matmul --no-cache        (ignore + don't write the tuning db)
     mdhc tune matmul --tuning-db /tmp/t.db
     mdhc compare ccsd(t) --device gpu
     mdhc run prl --parallel
     mdhc tune matmul --trace /tmp/t.json --metrics   (observability)
     mdhc tune matmul --deadline 0.5     (suspend to a checkpoint, exit 3)
     mdhc tune matmul --resume           (continue bit-identically)
     mdhc tune matmul --inject 'cost.eval:raise@40'   (chaos testing)
     mdhc check                          (analyze the whole catalogue)
     mdhc check matvec --strict
     mdhc check --file examples/mcc.mdh -P N=1 ... --json
     mdhc optimize prl                   (verified equality-saturation pass)
     mdhc optimize prl --json --device gpu
     mdhc plan matvec --device cpu      (print the executable plan IR)
     mdhc plan --digest                 (stable structural fingerprints)
     mdhc profile matmul                (per-plan-level time breakdown)
     mdhc profile matmul --json --flame matmul.folded
     mdhc tune matmul --remote /tmp/mdh.sock   (via a running mdhd daemon)
     mdhc run prl --remote /tmp/mdh.sock *)

open Cmdliner

let version = "1.8.0"

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Common = Mdh_baselines.Common
module Buffer = Mdh_tensor.Buffer

let find_workload name =
  match Mdh_workloads.Catalog.find name with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %S; try: %s" name
         (String.concat ", "
            (List.map
               (fun (w : W.t) -> String.lowercase_ascii w.W.wl_name)
               Mdh_workloads.Catalog.all)))

let device_of_string = function
  | "gpu" -> Ok Device.a100_like
  | "cpu" -> Ok Device.xeon6140_like
  | s -> Error (Printf.sprintf "unknown device %S (gpu|cpu)" s)

let params_of (w : W.t) = function
  | "test" -> Ok w.W.test_params
  | inp -> (
    match List.assoc_opt inp w.W.paper_inputs with
    | Some params -> Ok params
    | None -> Error (Printf.sprintf "workload has no input set %S" inp))

let or_die = function
  | Ok x -> x
  | Error msg ->
    prerr_endline ("mdhc: " ^ msg);
    exit 1

(* --- remote mode (tuning-as-a-service, docs/SERVING.md) --- *)

module Client = Mdh_serve.Client
module Protocol = Mdh_serve.Protocol
module Js = Mdh_obs.Json
module Jin = Mdh_support.Json_in

let remote_arg =
  let doc =
    "Send this command to a running mdhd daemon at Unix socket $(docv) \
     instead of executing locally. The daemon's shared caches and tuning \
     database serve the request; output matches the local command. See \
     docs/SERVING.md for the protocol."
  in
  Arg.(value & opt (some string) None & info [ "remote" ] ~doc ~docv:"SOCK")

(* one request, one reply; protocol-level failures (shed, bad request,
   handler error) die with the daemon's stable error code so scripts can
   distinguish overload from misuse *)
let remote_call ~socket ~metrics ~op fields =
  match Client.request ~metrics ~socket ~op fields with
  | Error e -> or_die (Error e)
  | Ok r when not r.Client.ok ->
    let code = Option.value ~default:"error" r.Client.code in
    let msg = Option.value ~default:"request failed" r.Client.error in
    let hint =
      match r.Client.retry_after_s with
      | Some s -> Printf.sprintf " (retry after %.2gs)" s
      | None -> ""
    in
    or_die (Error (Printf.sprintf "mdhd: %s: %s%s" code msg hint))
  | Ok r -> r

let remote_result (r : Client.reply) =
  match r.Client.result with
  | Some body -> body
  | None -> or_die (Error "mdhd: malformed reply (no result object)")

let rstr body name =
  match Jin.get_string body name with
  | Some s -> s
  | None -> or_die (Error (Printf.sprintf "mdhd: reply is missing %S" name))

let rnum body name =
  match Jin.get_float body name with
  | Some f -> f
  | None -> or_die (Error (Printf.sprintf "mdhd: reply is missing %S" name))

let rint body name = int_of_float (Float.round (rnum body name))

(* --- arguments --- *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let device_arg =
  Arg.(value & opt string "cpu" & info [ "device"; "d" ] ~docv:"gpu|cpu")

let input_arg =
  Arg.(value & opt string "1" & info [ "input"; "i" ] ~docv:"1|2|test")

let budget_arg = Arg.(value & opt int 400 & info [ "budget"; "b" ] ~docv:"EVALS")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")
let parallel_arg = Arg.(value & flag & info [ "parallel"; "p" ])

let chains_arg =
  let doc =
    "Number of independent annealing chains (seeded SEED, SEED+1, ...) the \
     evaluation budget is split across; with --parallel they run on \
     separate domains. The chain count, not the pool, determines the \
     result."
  in
  Arg.(value & opt int 1 & info [ "chains" ] ~doc ~docv:"K")

let strategy_arg =
  let strategies =
    [ ("auto", Mdh_atf.Tuner.Auto); ("exhaustive", Mdh_atf.Tuner.Exhaustive);
      ("random", Mdh_atf.Tuner.Random); ("anneal", Mdh_atf.Tuner.Anneal) ]
  in
  let doc =
    "Search strategy: $(b,auto) (exhaustive when the space fits the budget, \
     annealing otherwise), $(b,exhaustive), $(b,random) or $(b,anneal). \
     Deadline suspension and $(b,--resume) apply to annealing strategies; \
     batch strategies stop at the deadline with their partial best."
  in
  Arg.(
    value
    & opt (enum strategies) Mdh_atf.Tuner.Auto
    & info [ "strategy" ] ~doc ~docv:"NAME")

let deadline_arg =
  let doc =
    "Wall-clock budget for the search, in seconds. An annealing search \
     that exceeds it suspends to a crash-safe checkpoint and exits with \
     code 3; rerunning with $(b,--resume) continues it bit-identically."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc ~docv:"SECS")

let checkpoint_arg =
  let doc =
    "Path of the tuning checkpoint file (default: derived from the tuning \
     request, next to the tuning database)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc ~docv:"PATH")

let checkpoint_every_arg =
  let doc = "Evaluations between checkpoint writes, per annealing chain." in
  Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~doc ~docv:"EVALS")

let resume_arg =
  let doc =
    "Continue a previously suspended (or killed) search from its \
     checkpoint. The resumed search replays the exact random draw \
     sequence, so the final schedule is bit-identical to an uninterrupted \
     run; without a matching checkpoint the search simply starts fresh."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let inject_arg =
  let doc =
    "Arm deterministic fault injection for this run (overrides \
     $(b,\\$MDH_FAULTS)). " ^ Mdh_fault.Fault.grammar
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~doc ~docv:"SPEC")

(* MDH_FAULTS is armed in the driver entry point for every command;
   --inject replaces it for one invocation *)
let setup_faults ~inject =
  match inject with
  | None -> ()
  | Some spec -> (
    match Mdh_fault.Fault.configure spec with
    | Ok () -> ()
    | Error msg -> or_die (Error ("--inject: " ^ msg)))

let no_cache_arg =
  let doc =
    "Disable both the persistent tuning database and the in-memory \
     cost-model cache: recompute every search from scratch and record \
     nothing."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let tuning_db_arg =
  let doc =
    "Path of the persistent tuning database (default: $(b,\\$MDH_TUNING_DB) \
     or $(b,~/.cache/mdh/tuning.db)). Warm runs recall tuned schedules \
     from it instead of searching."
  in
  Arg.(value & opt (some string) None & info [ "tuning-db" ] ~doc ~docv:"PATH")

let trace_arg =
  let doc =
    "Record hierarchical spans of the tune/search/execute pipeline and \
     write them to $(docv) as Chrome trace_event JSON (open in \
     chrome://tracing or https://ui.perfetto.dev). Tracing never changes \
     results: schedules and outputs are bit-identical with it on or off."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let metrics_arg =
  let doc =
    "After the command, print the observability metrics summary (cost-model \
     cache hits/misses, search evaluations, tuning-db traffic, pool worker \
     utilization) and, when tracing, a per-span timing table. The report \
     goes to stderr (or $(b,--metrics-out)) so it never interleaves with \
     machine-readable stdout."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc = "Write the $(b,--metrics) report to $(docv) instead of stderr." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

(* enable span collection before the command body runs; per-run counters
   (cost cache hit/miss) restart from zero so the report covers exactly
   this invocation's workload *)
let setup_obs ~trace =
  if trace <> None then Mdh_obs.Trace.set_enabled true;
  Mdh_atf.Cost_cache.reset_stats ();
  Mdh_lowering.Plan_cache.reset_stats ()

(* the registry dump goes to stderr (or a file), never stdout: several
   commands emit machine-readable stdout (SARIF, profile JSON, digests)
   that must stay bit-identical with --metrics on or off *)
let emit_metrics ~metrics ~metrics_out parts =
  if metrics then begin
    let body = String.concat "" (List.filter (fun s -> s <> "") parts) in
    match metrics_out with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc body)
    | None ->
      prerr_string body;
      flush stderr
  end

(* remote --metrics/--metrics-out: the daemon piggybacks its whole
   registry on the reply envelope (one-line JSON under "metrics", see
   Protocol) and the client writes it where the local report would go *)
let emit_remote_metrics ~metrics ~metrics_out (r : Client.reply) =
  if metrics || metrics_out <> None then
    match r.Client.metrics with
    | Some m ->
      emit_metrics ~metrics:true ~metrics_out [ Protocol.render m ^ "\n" ]
    | None -> ()

let want_remote_metrics ~metrics ~metrics_out = metrics || metrics_out <> None

let finish_obs ~trace ~metrics ~metrics_out =
  emit_metrics ~metrics ~metrics_out
    [ Mdh_obs.Metrics.summary (); Mdh_obs.Trace.summary () ];
  match trace with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path Mdh_obs.Trace.write_chrome;
    Printf.eprintf "trace written to %s\n%!" path

(* the tuner consults the ambient database (and the cost cache) from every
   internal call site — baselines included — so the flags configure both
   process-wide before the command body runs *)
let setup_cache ~no_cache ~tuning_db =
  if no_cache then begin
    Mdh_atf.Cost_cache.set_enabled false;
    Mdh_lowering.Plan_cache.set_enabled false;
    Mdh_atf.Tuning_db.set_ambient None
  end
  else
    let db =
      match tuning_db with
      | Some path -> Mdh_atf.Tuning_db.open_db path
      | None -> (
        match Mdh_atf.Tuning_db.default_path () with
        | Some path -> Mdh_atf.Tuning_db.open_db path
        | None ->
          (* no writable cache location (no XDG_CACHE_HOME/HOME): tune
             in memory rather than littering the cwd *)
          Mdh_atf.Tuning_db.in_memory ())
    in
    Mdh_atf.Tuning_db.set_ambient (Some db)

(* --- commands --- *)

let list_cmd =
  let doc = "List the workload catalogue (Figure 3 plus MBBS)." in
  let run () =
    List.iter
      (fun (w : W.t) ->
        Printf.printf "%-12s %-18s inputs: %s\n" w.W.wl_name w.W.domain
          (String.concat ", " (List.map fst w.W.paper_inputs)))
      Mdh_workloads.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let devices_cmd =
  let doc = "Describe the modelled devices." in
  let run () =
    Format.printf "%a@.%a@." Device.pp Device.a100_like Device.pp Device.xeon6140_like
  in
  Cmd.v (Cmd.info "devices" ~doc) Term.(const run $ const ())

let show_cmd =
  let doc = "Print a workload's directive, its transformation to the MDH DSL \
             representation, and its Figure 3 characteristics. With --plan, \
             also print the auto-tuned execution plan per device." in
  let plan_arg = Arg.(value & flag & info [ "plan" ]) in
  let run name input plan =
    let w = or_die (find_workload name) in
    let params = or_die (params_of w input) in
    let dir = w.W.make params in
    Format.printf "%a@.@." Mdh_directive.Directive.pp dir;
    let md = Mdh_directive.Transform.to_md_hom_exn dir in
    Format.printf "%a@." Mdh_core.Md_hom.pp md;
    let c = Mdh_core.Md_hom.characteristics md in
    Printf.printf
      "\ncharacteristics: %dD iteration space, %d reduction dim(s), accesses %s\n"
      c.Mdh_core.Md_hom.iter_space_rank c.Mdh_core.Md_hom.n_reduction_dims
      (match c.Mdh_core.Md_hom.injective_accesses with
      | Some true -> "injective"
      | Some false -> "non-injective"
      | None -> "undecided");
    if plan then
      List.iter
        (fun dev ->
          match Mdh_atf.Tuner.tune md dev Cost.tuned_codegen with
          | Error e -> or_die (Error e)
          | Ok t -> (
            match Mdh_lowering.Plan_cache.build md dev t.Mdh_atf.Tuner.schedule with
            | Error e -> or_die (Error e)
            | Ok plan ->
              Format.printf "@.execution plan on %s (parallelism %d):@.%a@."
                dev.Device.device_name
                (Mdh_lowering.Plan.parallelism plan)
                Mdh_lowering.Plan.pp plan))
        [ Device.a100_like; Device.xeon6140_like ]
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ workload_arg $ input_arg $ plan_arg)

let no_rewrite_arg =
  let doc =
    "Skip the verified equality-saturation pass: tune/optimize the \
     computation exactly as written, with no expression or plan rewrites."
  in
  Arg.(value & flag & info [ "no-rewrite" ] ~doc)

let tune_cmd =
  let doc = "Auto-tune a workload's schedule with ATF and report the result. \
             By default the verified rewrite pass saturates the computation \
             first and the search runs over the pruned space; disable with \
             --no-rewrite." in
  let remote_tune ~socket name device input budget seed chains strategy
      deadline resume no_rewrite metrics metrics_out =
    let strategy_name =
      match strategy with
      | Mdh_atf.Tuner.Auto -> "auto"
      | Mdh_atf.Tuner.Exhaustive -> "exhaustive"
      | Mdh_atf.Tuner.Random -> "random"
      | Mdh_atf.Tuner.Anneal -> "anneal"
    in
    let fields =
      [ ("workload", Js.quote name); ("device", Js.quote device);
        ("input", Js.quote input); ("budget", string_of_int budget);
        ("seed", string_of_int seed); ("chains", string_of_int chains);
        ("strategy", Js.quote strategy_name) ]
      @ (if no_rewrite then [ ("no_rewrite", "true") ] else [])
      @ (if resume then [ ("resume", "true") ] else [])
      @
      match deadline with
      | Some d -> [ ("deadline_s", Protocol.number d) ]
      | None -> []
    in
    let r =
      remote_call ~socket
        ~metrics:(want_remote_metrics ~metrics ~metrics_out)
        ~op:"tune" fields
    in
    let body = remote_result r in
    emit_remote_metrics ~metrics ~metrics_out r;
    match rstr body "status" with
    | "suspended" ->
      Printf.eprintf
        "mdhc: tune: the daemon suspended the search after %d evaluations \
         (token %s)\nmdhc: rerun with --resume to continue it\n%!"
        (rint body "evaluations") (rstr body "token");
      exit 3
    | _ ->
      (* reprint through the local pretty-printers so the output is
         byte-identical to a local `mdhc tune` of the same request *)
      let sched = or_die (Schedule.of_string (rstr body "schedule")) in
      Format.printf "best schedule: %a@." Schedule.pp sched;
      Printf.printf "estimated time: %s\n"
        (Format.asprintf "%.6gs" (rnum body "estimated_s"));
      if Jin.get_bool body "from_db" = Some true then
        Printf.printf "recalled from tuning db (0 evaluations)\n"
      else Printf.printf "evaluations: %d\n" (rint body "evaluations")
  in
  let run name device input budget seed chains strategy deadline checkpoint
      checkpoint_every resume parallel no_cache no_rewrite tuning_db inject
      trace metrics metrics_out remote =
    match remote with
    | Some socket ->
      remote_tune ~socket name device input budget seed chains strategy
        deadline resume no_rewrite metrics metrics_out
    | None ->
    setup_faults ~inject;
    setup_cache ~no_cache ~tuning_db;
    setup_obs ~trace;
    let w = or_die (find_workload name) in
    let dev = or_die (device_of_string device) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    let tune pool =
      Mdh_atf.Tuner.tune_resumable ~strategy ~budget ~seed ~chains ?pool
        ?deadline_s:deadline ?checkpoint ~checkpoint_every ~resume
        ~saturate:(not no_rewrite) md dev Cost.tuned_codegen
    in
    let result, elapsed =
      Mdh_support.Util.time_it (fun () ->
          if parallel then Mdh_runtime.Pool.with_pool (fun pool -> tune (Some pool))
          else tune None)
    in
    match result with
    | Error msg -> or_die (Error msg)
    | Ok (Mdh_atf.Tuner.Suspended { checkpoint; evaluations }) ->
      finish_obs ~trace ~metrics ~metrics_out;
      Printf.eprintf
        "mdhc: tune: deadline reached after %d evaluations; progress saved \
         to %s\nmdhc: rerun with --resume to continue the search\n%!"
        evaluations checkpoint;
      exit 3
    | Ok (Mdh_atf.Tuner.Tuned t) ->
      Format.printf "best schedule: %a@." Schedule.pp t.Mdh_atf.Tuner.schedule;
      Printf.printf "estimated time: %s\n"
        (Format.asprintf "%.6gs" t.Mdh_atf.Tuner.estimated_s);
      if t.Mdh_atf.Tuner.from_db then
        Printf.printf "recalled from tuning db (0 evaluations) in %.3gs\n" elapsed
      else begin
        Printf.printf "evaluations: %d, improvements: %d (%.3gs wall)\n"
          t.Mdh_atf.Tuner.search.Mdh_atf.Search.evaluations
          (List.length t.Mdh_atf.Tuner.search.Mdh_atf.Search.trace)
          elapsed;
        List.iter
          (fun (eval, cost) -> Printf.printf "  #%-5d -> %.6gs\n" eval cost)
          t.Mdh_atf.Tuner.search.Mdh_atf.Search.trace;
        let stats = Mdh_atf.Cost_cache.stats () in
        Printf.printf "cost model: %d evaluations, %d cache hits\n"
          stats.Mdh_atf.Cost_cache.n_misses stats.Mdh_atf.Cost_cache.n_hits
      end;
      finish_obs ~trace ~metrics ~metrics_out
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ workload_arg $ device_arg $ input_arg $ budget_arg $ seed_arg
      $ chains_arg $ strategy_arg $ deadline_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ parallel_arg $ no_cache_arg
      $ no_rewrite_arg $ tuning_db_arg $ inject_arg $ trace_arg $ metrics_arg
      $ metrics_out_arg $ remote_arg)

let compare_cmd =
  let doc = "Compare every system of the Figure 4 line-up on one workload." in
  let run name device input no_cache tuning_db inject trace metrics metrics_out =
    setup_faults ~inject;
    setup_cache ~no_cache ~tuning_db;
    setup_obs ~trace;
    let w = or_die (find_workload name) in
    let dev = or_die (device_of_string device) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    let systems =
      ("MDH", fun () -> Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md dev)
      :: List.map
           (fun (sys : Common.system) ->
             (sys.Common.sys_name, fun () -> sys.Common.compile ~tuned:true md dev))
           (Mdh_baselines.Registry.baselines_for dev)
    in
    (* baseline failures are expected paper results, but the MDH system
       itself failing to compile means the comparison is meaningless:
       report it through the exit code *)
    let mdh_failed = ref false in
    List.iter
      (fun (name, compile) ->
        match compile () with
        | Ok o ->
          Format.printf "%-10s %-14s %.6gs  (%a)@." name o.Common.system
            (Common.seconds o) Schedule.pp o.Common.schedule
        | Error f ->
          if name = "MDH" then mdh_failed := true;
          Format.printf "%-10s %a@." name Common.pp_failure f)
      systems;
    finish_obs ~trace ~metrics ~metrics_out;
    if !mdh_failed then or_die (Error "the MDH system failed on this workload")
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ workload_arg $ device_arg $ input_arg $ no_cache_arg
      $ tuning_db_arg $ inject_arg $ trace_arg $ metrics_arg $ metrics_out_arg)

let codegen_cmd =
  let doc = "Generate kernel source (CUDA for the GPU device, OpenCL for the \
             CPU device) from a workload's auto-tuned schedule. With --host, \
             emit the complete driver program(s) instead." in
  let host_arg = Arg.(value & flag & info [ "host" ]) in
  let openmp_arg = Arg.(value & flag & info [ "openmp" ]) in
  let run name device input budget host openmp =
    let w = or_die (find_workload name) in
    let dev = or_die (device_of_string device) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    if openmp then begin
      (match Mdh_codegen.Openmp_c.generate md with
      | Ok src -> print_string src
      | Error e -> or_die (Error (Format.asprintf "%a" Mdh_codegen.Kernel.pp_error e)));
      exit 0
    end;
    let schedule =
      match Mdh_atf.Tuner.tune ~budget md dev Cost.tuned_codegen with
      | Ok t -> t.Mdh_atf.Tuner.schedule
      | Error e -> or_die (Error e)
    in
    let dialect =
      match dev.Device.kind with
      | Device.Gpu -> Mdh_codegen.Kernel.cuda
      | Device.Cpu -> Mdh_codegen.Kernel.opencl
    in
    if host then
      match Mdh_codegen.Host.generate dialect md dev schedule with
      | Ok bundle ->
        if bundle.Mdh_codegen.Host.kernel_file <> bundle.Mdh_codegen.Host.host_file then begin
          Printf.printf "/* ===== %s ===== */\n" bundle.Mdh_codegen.Host.kernel_file;
          print_string bundle.Mdh_codegen.Host.kernel_source;
          Printf.printf "\n/* ===== %s ===== */\n" bundle.Mdh_codegen.Host.host_file
        end;
        print_string bundle.Mdh_codegen.Host.host_source
      | Error e -> or_die (Error (Format.asprintf "%a" Mdh_codegen.Kernel.pp_error e))
    else
      match Mdh_codegen.Kernel.generate dialect md dev schedule with
      | Ok src -> print_string src
      | Error e -> or_die (Error (Format.asprintf "%a" Mdh_codegen.Kernel.pp_error e))
  in
  Cmd.v (Cmd.info "codegen" ~doc)
    Term.(
      const run $ workload_arg $ device_arg $ input_arg $ budget_arg $ host_arg
      $ openmp_arg)

let compile_cmd =
  let doc = "Parse a textual #pragma mdh source file, validate it, and print \
             the transformed MDH representation. Parameters are given as \
             NAME=VALUE." in
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let params_arg =
    Arg.(value & opt_all (pair ~sep:'=' string int) [] & info [ "param"; "P" ] ~docv:"NAME=VALUE")
  in
  let run file params =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Mdh_pragma.Parser.parse ~name:(Filename.remove_extension (Filename.basename file)) ~params src with
    | Error e -> or_die (Error (Mdh_pragma.Parser.error_to_string e))
    | Ok dir -> (
      match Mdh_directive.Transform.to_md_hom dir with
      | Error e -> or_die (Error (Mdh_directive.Validate.error_to_string e))
      | Ok md ->
        Format.printf "%a@.@.%a@." Mdh_directive.Directive.pp dir Mdh_core.Md_hom.pp md)
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ file_arg $ params_arg)

let run_cmd =
  let doc = "Execute a workload (test sizes by default) on the host and check \
             the result against the reference semantics." in
  let backend_arg =
    let doc =
      "Execution backend: $(b,auto) (fastpath, then plan-compiled \
       specializer, then generic walker), $(b,interp) (generic box walker \
       only), $(b,special) (plan-compiled specializer, error if the \
       workload is not specializable), or $(b,cc) (generate the OpenMP C, \
       compile with gcc -O3 -fopenmp, and execute the binary)."
    in
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("interp", `Interp); ("special", `Special); ("cc", `Cc) ]) `Auto
      & info [ "backend" ] ~doc ~docv:"auto|interp|special|cc")
  in
  let no_specialize_arg =
    let doc = "Disable the plan-compiled specializer (auto backend only)." in
    Arg.(value & flag & info [ "no-specialize" ] ~doc)
  in
  let remote_run ~socket name input seed metrics metrics_out =
    let r =
      remote_call ~socket
        ~metrics:(want_remote_metrics ~metrics ~metrics_out)
        ~op:"exec"
        [ ("workload", Js.quote name); ("input", Js.quote input);
          ("seed", string_of_int seed) ]
    in
    let body = remote_result r in
    emit_remote_metrics ~metrics ~metrics_out r;
    Printf.printf "executed %s in %.4fs (remote)\n" (rstr body "workload")
      (rnum body "elapsed_s");
    match Jin.get_bool body "checked" with
    | Some true -> print_endline "result check: OK"
    | Some false ->
      (* the daemon replies exec_mismatch before this can happen, but a
         reply is data — never trust it blindly *)
      print_endline "result check: MISMATCH";
      exit 1
    | None -> print_endline "no independent oracle for this workload"
  in
  let run name input seed parallel backend no_specialize trace metrics
      metrics_out remote =
    (match remote with
    | Some socket ->
      if backend <> `Auto then
        or_die (Error "--backend is not available with --remote");
      remote_run ~socket name input seed metrics metrics_out;
      exit 0
    | None -> ());
    setup_obs ~trace;
    let w = or_die (find_workload name) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    let env = w.W.gen params ~seed in
    let parallel_sched () =
      { (Schedule.sequential md) with
        Schedule.parallel_dims = Mdh_lowering.Lower.parallelisable_dims md }
    in
    let in_pool f =
      Mdh_runtime.Pool.with_pool (fun pool ->
          let sched =
            if parallel then parallel_sched () else Schedule.sequential md
          in
          Mdh_support.Util.time_it (fun () -> f pool sched))
    in
    let (result_env, elapsed), mode =
      match backend with
      | `Auto ->
        ( in_pool (fun pool sched ->
              or_die
                (Mdh_runtime.Exec.run ~specialize:(not no_specialize) pool md
                   sched env)),
          if parallel then "parallel" else "sequential" )
      | `Interp ->
        ( in_pool (fun pool sched ->
              or_die
                (Mdh_runtime.Exec.run ~fastpath:false ~specialize:false pool
                   md sched env)),
          (if parallel then "parallel" else "sequential") ^ " interp" )
      | `Special ->
        ( in_pool (fun pool sched ->
              let dev = Mdh_runtime.Exec.host_device pool in
              let plan =
                or_die (Mdh_lowering.Plan_cache.build md dev sched)
              in
              match Mdh_runtime.Specializer.try_run pool plan md env with
              | Some env' -> env'
              | None ->
                or_die
                  (Error
                     (match Mdh_runtime.Specializer.supported plan md with
                     | Error e -> "specializer: " ^ e
                     | Ok () -> "specializer: input buffers do not match"))),
          (if parallel then "parallel" else "sequential") ^ " specializer" )
      | `Cc ->
        ( Mdh_support.Util.time_it (fun () ->
              or_die (Mdh_codegen.Cc.execute md env)),
          "compiled OpenMP C" )
    in
    Printf.printf "executed %s in %.4fs (%s)\n" md.Mdh_core.Md_hom.hom_name elapsed
      mode;
    (match w.W.reference with
    | None -> print_endline "no independent oracle for this workload"
    | Some oracle ->
      let expected = oracle params env in
      let ok =
        List.for_all
          (fun (o : Mdh_core.Md_hom.output) ->
            Mdh_tensor.Dense.approx_equal ~rel:1e-3 ~abs:1e-4
              (Buffer.data (Buffer.env_find result_env o.Mdh_core.Md_hom.out_name))
              (Buffer.data (Buffer.env_find expected o.Mdh_core.Md_hom.out_name)))
          md.Mdh_core.Md_hom.outputs
      in
      print_endline (if ok then "result check: OK" else "result check: MISMATCH");
      if not ok then begin
        finish_obs ~trace ~metrics ~metrics_out;
        exit 1
      end);
    finish_obs ~trace ~metrics ~metrics_out
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg
      $ Arg.(value & opt string "test" & info [ "input"; "i" ])
      $ seed_arg $ parallel_arg $ backend_arg $ no_specialize_arg $ trace_arg
      $ metrics_arg $ metrics_out_arg $ remote_arg)

let check_cmd =
  let doc =
    "Run the multi-pass static analyzer: directive validation with \
     accumulated diagnostics (stable MDH0xx codes), combine-operator \
     property verification, and access/locality lints. Targets the whole \
     workload catalogue (no arguments), one workload, or a #pragma mdh \
     source file (--file). Exit status is 1 when any error is reported — \
     or any warning under --strict; hints never fail the check."
  in
  let workload_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let file_arg =
    let doc = "Analyze a textual #pragma mdh source file instead of a catalogue workload." in
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~doc ~docv:"FILE")
  in
  let params_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "param"; "P" ] ~docv:"NAME=VALUE")
  in
  let json_arg =
    let doc = "Emit the diagnostics as SARIF 2.1.0 JSON on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as fatal: exit 1 when any warning is reported." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let remote_check ~socket workload strict metrics metrics_out =
    let fields =
      match workload with
      | Some name -> [ ("workload", Js.quote name) ]
      | None -> []
    in
    let r =
      remote_call ~socket
        ~metrics:(want_remote_metrics ~metrics ~metrics_out)
        ~op:"check" fields
    in
    let body = remote_result r in
    emit_remote_metrics ~metrics ~metrics_out r;
    (match Jin.member "diagnostics" body with
    | Some (Jin.Arr ds) ->
      List.iter
        (fun d ->
          let f n = Option.value ~default:"?" (Jin.get_string d n) in
          Printf.printf "%s: %s[%s]: %s\n" (f "target") (f "severity")
            (f "code") (f "message"))
        ds
    | _ -> ());
    let errors = rint body "errors" and warnings = rint body "warnings" in
    Printf.printf
      "checked %d target(s): %d error(s), %d warning(s), %d hint(s)\n"
      (rint body "targets") errors warnings (rint body "hints");
    exit (if errors > 0 || (strict && warnings > 0) then 1 else 0)
  in
  let run workload file params json strict metrics metrics_out remote =
    (match remote with
    | Some socket ->
      if file <> None then or_die (Error "--file is not available with --remote");
      if json then or_die (Error "--json is not available with --remote");
      remote_check ~socket workload strict metrics metrics_out
    | None -> ());
    let targets =
      match (file, workload) with
      | Some f, _ ->
        let src = In_channel.with_open_text f In_channel.input_all in
        let name = Filename.remove_extension (Filename.basename f) in
        [ (f, Mdh_analysis.Analyze.pragma ~name ~params src) ]
      | None, Some name ->
        let w = or_die (find_workload name) in
        [ ( "workload:" ^ w.W.wl_name,
            Mdh_analysis.Analyze.directive (w.W.make w.W.test_params) ) ]
      | None, None ->
        List.map
          (fun (w : W.t) ->
            ( "workload:" ^ w.W.wl_name,
              Mdh_analysis.Analyze.directive (w.W.make w.W.test_params) ))
          Mdh_workloads.Catalog.all
    in
    let all = List.concat_map snd targets in
    if json then
      print_endline (Mdh_analysis.Diagnostic.sarif ~tool_version:version targets)
    else begin
      List.iter
        (fun (uri, ds) ->
          if ds <> [] then begin
            Printf.printf "%s:\n" uri;
            print_endline (Mdh_analysis.Diagnostic.render ~file:uri ds)
          end)
        targets;
      Printf.printf "checked %d target(s): %d error(s), %d warning(s), %d hint(s)\n"
        (List.length targets)
        (Mdh_analysis.Diagnostic.error_count all)
        (Mdh_analysis.Diagnostic.warning_count all)
        (Mdh_analysis.Diagnostic.hint_count all)
    end;
    emit_metrics ~metrics ~metrics_out [ Mdh_obs.Metrics.summary () ];
    exit (Mdh_analysis.Diagnostic.exit_code ~strict all)
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ workload_opt_arg $ file_arg $ params_arg $ json_arg
      $ strict_arg $ metrics_arg $ metrics_out_arg $ remote_arg)

let optimize_cmd =
  let doc =
    "Run the verified equality-saturation pass over a workload: saturate \
     the combine bodies (CSE, constant folding, algebraic identities, \
     strength reduction — all bit-preserving) and the lowered plan \
     (unit-level elimination, Seq fusion, tile simplification, and \
     tree-reduce reassociation where the property verifier proved the \
     operator associative), then report every applied rule with its \
     justification and the cost-model delta. Rules are never justified by \
     declared-but-unverified operator annotations."
  in
  let json_arg =
    let doc = "Emit the report as JSON (schema mdh-optimize/1) on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let remote_optimize ~socket name device input metrics metrics_out =
    let r =
      remote_call ~socket
        ~metrics:(want_remote_metrics ~metrics ~metrics_out)
        ~op:"optimize"
        [ ("workload", Js.quote name); ("device", Js.quote device);
          ("input", Js.quote input) ]
    in
    let body = remote_result r in
    emit_remote_metrics ~metrics ~metrics_out r;
    Printf.printf "optimize %s on %s: %.6gs -> %.6gs (digest %s -> %s)\n"
      (String.lowercase_ascii name)
      device (rnum body "raw_seconds") (rnum body "seconds")
      (rstr body "raw_digest") (rstr body "digest");
    match Jin.member "applied" body with
    | Some (Jin.Arr rules) ->
      List.iter
        (fun rule ->
          let f n = Option.value ~default:"?" (Jin.get_string rule n) in
          Printf.printf "  [%s] %s @ %s (%s)\n" (f "tier") (f "rule")
            (f "site") (f "justification"))
        rules
    | _ -> ()
  in
  let run name device input no_rewrite json metrics metrics_out remote =
    (match remote with
    | Some socket ->
      if no_rewrite then
        or_die (Error "--no-rewrite is not available with --remote");
      if json then or_die (Error "--json is not available with --remote");
      remote_optimize ~socket name device input metrics metrics_out;
      exit 0
    | None -> ());
    let w = or_die (find_workload name) in
    let dev = or_die (device_of_string device) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    let wl = String.lowercase_ascii w.W.wl_name in
    let cg = Cost.tuned_codegen in
    let sched = Mdh_lowering.Lower.mdh_default md dev in
    Mdh_lowering.Plan_cache.reset_stats ();
    let report =
      if no_rewrite then
        (* escape hatch: the raw plan, untouched — same report shape so
           --json consumers need no special case *)
        let plan = or_die (Mdh_lowering.Plan_cache.build md dev sched) in
        let seconds = or_die (Cost.seconds md dev cg sched) in
        { Mdh_rewrite.Rewrite.r_md = md; r_raw_plan = plan; r_plan = plan;
          r_raw_seconds = seconds; r_seconds = seconds; r_applied = [] }
      else
        let oracle = Mdh_analysis.Opcheck_oracle.oracle () in
        or_die (Mdh_rewrite.Rewrite.optimize ~oracle md dev cg sched)
    in
    if json then
      print_endline
        (Mdh_rewrite.Rewrite.report_json ~name:wl
           ~device:dev.Device.device_name report)
    else
      Format.printf "%a@."
        (Mdh_rewrite.Rewrite.pp_report ~name:wl
           ~device:dev.Device.device_name)
        report;
    emit_metrics ~metrics ~metrics_out [ Mdh_obs.Metrics.summary () ]
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ workload_arg $ device_arg $ input_arg $ no_rewrite_arg
      $ json_arg $ metrics_arg $ metrics_out_arg $ remote_arg)

let plan_cmd =
  let doc =
    "Print the execution-plan IR — the single structure the executor, cost \
     model, simulator and code generators all consume — for one workload (or \
     the whole catalogue) on one device (or both). Schedules default to the \
     deterministic per-device lowering default, so the output is stable; \
     $(b,--schedule) plans an explicit schedule instead, and $(b,--digest) \
     prints one structural fingerprint per line (pinned by the repository's \
     plan-consistency check)."
  in
  let workload_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let device_opt_arg =
    Arg.(value & opt (some string) None & info [ "device"; "d" ] ~docv:"gpu|cpu")
  in
  let schedule_arg =
    let doc =
      "Plan this explicit schedule (the $(b,tiles=..)$(b, parallel=[..]) \
       $(b,layers=[..]) syntax that mdhc tune prints) instead of the \
       per-device default."
    in
    Arg.(value & opt (some string) None & info [ "schedule" ] ~doc ~docv:"SCHED")
  in
  let digest_arg =
    let doc = "Print only $(i,workload device digest) lines." in
    Arg.(value & flag & info [ "digest" ] ~doc)
  in
  let remote_plan ~socket workload device input digest metrics metrics_out =
    let name =
      match workload with
      | Some name -> name
      | None -> or_die (Error "--remote plan needs an explicit workload")
    in
    let tags = match device with Some d -> [ d ] | None -> [ "cpu"; "gpu" ] in
    List.iteri
      (fun i tag ->
        let r =
          remote_call ~socket
            ~metrics:(want_remote_metrics ~metrics ~metrics_out)
            ~op:"plan"
            [ ("workload", Js.quote name); ("device", Js.quote tag);
              ("input", Js.quote input) ]
        in
        let body = remote_result r in
        if i = 0 then emit_remote_metrics ~metrics ~metrics_out r;
        if digest then
          Printf.printf "%-12s %-4s %s\n" (String.lowercase_ascii name) tag
            (rstr body "digest")
        else
          Format.printf "%s on %s (parallelism %d, digest %s):@.%s@.@."
            (String.lowercase_ascii name)
            (rstr body "device") (rint body "parallelism") (rstr body "digest")
            (rstr body "plan"))
      tags
  in
  let run workload device input schedule digest no_cache metrics metrics_out
      remote =
    match remote with
    | Some socket ->
      if schedule <> None then
        or_die (Error "--schedule is not available with --remote");
      remote_plan ~socket workload device input digest metrics metrics_out
    | None ->
    if no_cache then Mdh_lowering.Plan_cache.set_enabled false;
    Mdh_lowering.Plan_cache.reset_stats ();
    let workloads =
      match workload with
      | Some name -> [ or_die (find_workload name) ]
      | None -> Mdh_workloads.Catalog.all
    in
    let devices =
      match device with
      | Some d -> [ or_die (device_of_string d) ]
      | None -> [ Device.xeon6140_like; Device.a100_like ]
    in
    List.iter
      (fun (w : W.t) ->
        let params = or_die (params_of w input) in
        let md = W.to_md_hom w params in
        List.iter
          (fun (dev : Device.t) ->
            let sched =
              match schedule with
              | Some s -> or_die (Schedule.of_string s)
              | None -> Mdh_lowering.Lower.mdh_default md dev
            in
            match Mdh_lowering.Plan_cache.build md dev sched with
            | Error e ->
              or_die
                (Error
                   (Printf.sprintf "%s on %s: %s"
                      (String.lowercase_ascii w.W.wl_name)
                      dev.Device.device_name e))
            | Ok plan ->
              let tag =
                match dev.Device.kind with Device.Gpu -> "gpu" | Device.Cpu -> "cpu"
              in
              if digest then
                Printf.printf "%-12s %-4s %s\n"
                  (String.lowercase_ascii w.W.wl_name)
                  tag
                  (Mdh_lowering.Plan.digest plan)
              else
                Format.printf "%s on %s (parallelism %d, digest %s):@.%a@.@."
                  (String.lowercase_ascii w.W.wl_name)
                  dev.Device.device_name
                  (Mdh_lowering.Plan.parallelism plan)
                  (Mdh_lowering.Plan.digest plan)
                  Mdh_lowering.Plan.pp plan)
          devices)
      workloads;
    emit_metrics ~metrics ~metrics_out [ Mdh_obs.Metrics.summary () ]
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const run $ workload_opt_arg $ device_opt_arg
      $ Arg.(value & opt string "test" & info [ "input"; "i" ] ~docv:"1|2|test")
      $ schedule_arg $ digest_arg $ no_cache_arg $ metrics_arg
      $ metrics_out_arg $ remote_arg)

let profile_cmd =
  let doc =
    "Execute a workload with the plan-level profiler enabled and report \
     where the wall time went: one row per plan level (addressed by its \
     position in the plan tree, outermost first), the point computation \
     and the write-back, each with its measured share of the enclosing \
     execution span next to the cost model's attribution for the same \
     level — so systematic model/machine disagreements are visible per \
     level, not just in the total. Backend phases (specializer compile \
     vs run, walker) are listed separately. $(b,--json) emits the \
     mdh-profile/1 document instead; $(b,--flame) additionally writes \
     collapsed stacks (one level chain per line, self time in \
     microseconds) for flamegraph.pl / speedscope."
  in
  let backend_arg =
    let doc =
      "Execution backend to profile: $(b,auto) (plan-compiled specializer \
       when the workload supports it, generic walker otherwise), \
       $(b,special) (error if not specializable) or $(b,interp). The \
       fastpath is disabled so the plan levels actually execute."
    in
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("interp", `Interp); ("special", `Special) ]) `Auto
      & info [ "backend" ] ~doc ~docv:"auto|special|interp")
  in
  let schedule_arg =
    let doc =
      "Profile this explicit schedule (mdhc tune's syntax) instead of the \
       default host schedule (the per-device lowering default restricted \
       to the pool's single layer — the same schedule the plan-execution \
       benchmark times)."
    in
    Arg.(value & opt (some string) None & info [ "schedule" ] ~doc ~docv:"SCHED")
  in
  let repeat_arg =
    let doc = "Number of profiled runs to accumulate (same plan digest)." in
    Arg.(value & opt int 3 & info [ "repeat"; "r" ] ~doc ~docv:"N")
  in
  let json_arg =
    let doc = "Emit the profile as JSON (schema mdh-profile/1) on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let flame_arg =
    let doc =
      "Write the per-level self times as collapsed flamegraph stacks to \
       $(docv) (workload;digest;L0;...;Lk self_microseconds)."
    in
    Arg.(value & opt (some string) None & info [ "flame" ] ~doc ~docv:"FILE")
  in
  let json_escape s =
    let b = Stdlib.Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Stdlib.Buffer.add_string b "\\\""
        | '\\' -> Stdlib.Buffer.add_string b "\\\\"
        | '\n' -> Stdlib.Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Stdlib.Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Stdlib.Buffer.add_char b c)
      s;
    Stdlib.Buffer.contents b
  in
  let run name input schedule backend repeat json flame seed trace metrics
      metrics_out =
    setup_obs ~trace;
    let w = or_die (find_workload name) in
    let params = or_die (params_of w input) in
    let md = W.to_md_hom w params in
    let wl = String.lowercase_ascii w.W.wl_name in
    let repeat = max 1 repeat in
    let env = w.W.gen params ~seed in
    Mdh_obs.Profile.set_enabled true;
    Mdh_runtime.Pool.with_pool @@ fun pool ->
    let dev = Mdh_runtime.Exec.host_device pool in
    let sched =
      match schedule with
      | Some s -> or_die (Schedule.of_string s)
      | None ->
        { (Mdh_lowering.Lower.mdh_default md Device.xeon6140_like) with
          Schedule.used_layers = [ 0 ] }
    in
    let plan = or_die (Mdh_lowering.Plan_cache.build md dev sched) in
    let digest = Mdh_lowering.Plan.digest plan in
    let backend_name =
      match backend with
      | `Special ->
        (match Mdh_runtime.Specializer.supported plan md with
        | Ok () -> "special"
        | Error e -> or_die (Error ("specializer: " ^ e)))
      | `Interp -> "interp"
      | `Auto -> (
        match Mdh_runtime.Specializer.supported plan md with
        | Ok () -> "special"
        | Error _ -> "interp")
    in
    let run_once () =
      if backend_name = "special" then
        match Mdh_runtime.Specializer.try_run pool plan md env with
        | Some _ -> ()
        | None ->
          or_die (Error "specializer: input buffers do not match the plan")
      else
        ignore
          (or_die
             (Mdh_runtime.Exec.run ~fastpath:false ~specialize:false pool md
                sched env))
    in
    let (), wall =
      Mdh_support.Util.time_it (fun () ->
          for _ = 1 to repeat do
            run_once ()
          done)
    in
    let entries = Mdh_obs.Profile.snapshot digest in
    let find p =
      List.find_opt (fun e -> e.Mdh_obs.Profile.path = p) entries
    in
    let exec_s =
      match find "exec" with
      | Some e -> e.Mdh_obs.Profile.total_s
      | None -> 0.0
    in
    let model = Cost.level_attribution plan in
    let model_paths = List.map (fun s -> s.Cost.ls_path) model in
    (* measured cells the model has no counterpart for: write-back,
       walker recombine, post-scan passes — shown with a blank model
       column *)
    let extras =
      List.filter
        (fun e ->
          let p = e.Mdh_obs.Profile.path in
          p <> "exec"
          && not (List.mem p model_paths)
          && not (String.length p > 6 && String.sub p 0 6 = "phase:"))
        entries
    in
    let phases =
      List.filter
        (fun e ->
          let p = e.Mdh_obs.Profile.path in
          String.length p > 6 && String.sub p 0 6 = "phase:")
        entries
    in
    let self_of p =
      match find p with
      | Some e -> (e.Mdh_obs.Profile.count, e.Mdh_obs.Profile.total_s)
      | None -> (0, 0.0)
    in
    let frac s = if exec_s > 0.0 then s /. exec_s else 0.0 in
    (match flame with
    | None -> ()
    | Some path ->
      (* collapsed stacks: plan levels are one nest, so level i's stack
         is the chain L0;..;Li; leaf sits under the full chain and
         unmodelled cells under the root *)
      Out_channel.with_open_text path (fun oc ->
          let clean s =
            String.map (fun c -> if c = ';' || c = '\n' then ',' else c) s
          in
          let chain = ref [ digest; wl ] in
          List.iter
            (fun (s : Cost.level_share) ->
              let frame =
                if s.Cost.ls_path = "leaf" then "leaf"
                else s.Cost.ls_path ^ " " ^ clean s.Cost.ls_label
              in
              chain := frame :: !chain;
              let _, self_s = self_of s.Cost.ls_path in
              let us = int_of_float (Float.round (self_s *. 1e6)) in
              if us > 0 then
                Printf.fprintf oc "%s %d\n"
                  (String.concat ";" (List.rev !chain))
                  us)
            model;
          List.iter
            (fun (e : Mdh_obs.Profile.entry) ->
              let us =
                int_of_float (Float.round (e.Mdh_obs.Profile.total_s *. 1e6))
              in
              if us > 0 then
                Printf.fprintf oc "%s;%s;%s %d\n" wl digest
                  (clean e.Mdh_obs.Profile.path)
                  us)
            extras);
      Printf.eprintf "flamegraph stacks written to %s\n%!" path);
    if json then begin
      let level_json (s : Cost.level_share) =
        let count, self_s = self_of s.Cost.ls_path in
        Printf.sprintf
          "    { \"path\": \"%s\", \"label\": \"%s\", \"count\": %d, \
           \"self_s\": %.9f, \"measured_fraction\": %.6f, \
           \"model_fraction\": %.6f }"
          (json_escape s.Cost.ls_path)
          (json_escape s.Cost.ls_label)
          count self_s (frac self_s) s.Cost.ls_fraction
      in
      let extra_json (e : Mdh_obs.Profile.entry) =
        Printf.sprintf
          "    { \"path\": \"%s\", \"label\": \"%s\", \"count\": %d, \
           \"self_s\": %.9f, \"measured_fraction\": %.6f }"
          (json_escape e.Mdh_obs.Profile.path)
          (json_escape e.Mdh_obs.Profile.path)
          e.Mdh_obs.Profile.count e.Mdh_obs.Profile.total_s
          (frac e.Mdh_obs.Profile.total_s)
      in
      let phase_json (e : Mdh_obs.Profile.entry) =
        Printf.sprintf
          "    { \"path\": \"%s\", \"count\": %d, \"seconds\": %.9f }"
          (json_escape e.Mdh_obs.Profile.path)
          e.Mdh_obs.Profile.count e.Mdh_obs.Profile.total_s
      in
      Printf.printf
        "{\n\
        \  \"schema\": \"mdh-profile/1\",\n\
        \  \"workload\": \"%s\",\n\
        \  \"input\": \"%s\",\n\
        \  \"digest\": \"%s\",\n\
        \  \"backend\": \"%s\",\n\
        \  \"runs\": %d,\n\
        \  \"wall_s\": %.9f,\n\
        \  \"exec_s\": %.9f,\n\
        \  \"levels\": [\n%s\n  ],\n\
        \  \"phases\": [\n%s\n  ]\n\
         }\n"
        (json_escape wl) (json_escape input) digest backend_name repeat wall
        exec_s
        (String.concat ",\n"
           (List.map level_json model @ List.map extra_json extras))
        (String.concat ",\n" (List.map phase_json phases))
    end
    else begin
      Printf.printf "%s (input %s) — digest %s, backend %s, %d run(s)\n" wl
        input digest backend_name repeat;
      let row path label count self_s mfrac =
        Printf.printf "  %-9s %-52s %10.3f ms %6.1f%% %s  (×%d)\n" path
          (if String.length label > 52 then String.sub label 0 52 else label)
          (self_s *. 1e3)
          (100.0 *. frac self_s)
          (match mfrac with
          | Some f -> Printf.sprintf "%6.1f%%" (100.0 *. f)
          | None -> "     —")
          count
      in
      Printf.printf "  %-9s %-52s %13s %7s %7s\n" "path" "plan level"
        "measured" "share" "model";
      List.iter
        (fun (s : Cost.level_share) ->
          let count, self_s = self_of s.Cost.ls_path in
          row s.Cost.ls_path s.Cost.ls_label count self_s
            (Some s.Cost.ls_fraction))
        model;
      List.iter
        (fun (e : Mdh_obs.Profile.entry) ->
          row e.Mdh_obs.Profile.path e.Mdh_obs.Profile.path
            e.Mdh_obs.Profile.count e.Mdh_obs.Profile.total_s None)
        extras;
      Printf.printf "  %-9s %-52s %10.3f ms %6.1f%%\n" "exec"
        "total (CPU time across workers)" (exec_s *. 1e3)
        (if exec_s > 0.0 then 100.0 else 0.0);
      Printf.printf "  wall: %.4fs over %d run(s)\n" wall repeat;
      if phases <> [] then begin
        print_endline "phases:";
        List.iter
          (fun (e : Mdh_obs.Profile.entry) ->
            Printf.printf "  %-26s %10.3f ms  (×%d)\n"
              (String.sub e.Mdh_obs.Profile.path 6
                 (String.length e.Mdh_obs.Profile.path - 6))
              (e.Mdh_obs.Profile.total_s *. 1e3)
              e.Mdh_obs.Profile.count)
          phases
      end
    end;
    finish_obs ~trace ~metrics ~metrics_out
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ workload_arg
      $ Arg.(value & opt string "test" & info [ "input"; "i" ] ~docv:"1|2|test")
      $ schedule_arg $ backend_arg $ repeat_arg $ json_arg $ flame_arg
      $ seed_arg $ trace_arg $ metrics_arg $ metrics_out_arg)

let () =
  (match Mdh_fault.Fault.arm_from_env () with
  | Ok _ -> ()
  | Error msg ->
    prerr_endline ("mdhc: MDH_FAULTS: " ^ msg);
    exit 1);
  let doc = "MDH directive compiler driver (paper reproduction)" in
  let info = Cmd.info "mdhc" ~version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; devices_cmd; show_cmd; plan_cmd; profile_cmd; tune_cmd;
            compare_cmd; run_cmd; compile_cmd; codegen_cmd; check_cmd;
            optimize_cmd ]))
