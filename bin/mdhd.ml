(* mdhd — the MDH tuning-as-a-service daemon.

   Serves the catalogue over a Unix-domain socket speaking
   newline-delimited JSON (docs/SERVING.md), sharing one process-wide
   plan/cost cache and tuning database across every client:

     mdhd --socket /tmp/mdh.sock
     mdhd --socket /tmp/mdh.sock --workers 8 --queue 32
     mdhd --socket /tmp/mdh.sock --max-deadline 30
     mdhd --socket /tmp/mdh.sock --inject 'serve.read:raise@3'

   Clients: any mdhc subcommand with --remote, or raw JSON lines:

     mdhc --remote /tmp/mdh.sock tune matmul ... (the mdhc man pages)
     printf '{"op":"health"}\n' | socat - UNIX-CONNECT:/tmp/mdh.sock

   SIGTERM/SIGINT drain gracefully: stop accepting, finish or suspend
   in-flight work (tunes checkpoint and can be resumed bit-identically),
   flush the tuning database, remove the socket, exit 0. *)

open Cmdliner
module Server = Mdh_serve.Server

let socket_arg =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(required & opt (some string) None & info [ "socket"; "s" ] ~doc ~docv:"PATH")

let workers_arg =
  let doc = "Handler threads: at most this many requests execute at once." in
  Arg.(value & opt int 4 & info [ "workers" ] ~doc ~docv:"N")

let queue_arg =
  let doc =
    "Admission queue depth. Connections beyond the busy workers plus this \
     backlog are shed with a structured $(b,overloaded) reply carrying a \
     $(b,retry_after_s) hint — the daemon never queues unboundedly."
  in
  Arg.(value & opt int 16 & info [ "queue" ] ~doc ~docv:"N")

let read_timeout_arg =
  let doc = "Per-connection idle read budget, seconds." in
  Arg.(value & opt float 10.0 & info [ "read-timeout" ] ~doc ~docv:"SECS")

let write_timeout_arg =
  let doc = "Per-reply write budget, seconds." in
  Arg.(value & opt float 10.0 & info [ "write-timeout" ] ~doc ~docv:"SECS")

let max_frame_arg =
  let doc = "Request line size cap, bytes; larger frames are refused." in
  Arg.(value & opt int (1 lsl 20) & info [ "max-frame" ] ~doc ~docv:"BYTES")

let max_deadline_arg =
  let doc =
    "Server-wide cap (seconds) on tune deadlines: requests asking for more \
     — or for none — get this much, then suspend to a resumable \
     checkpoint. Keeps one client from monopolising a worker."
  in
  Arg.(value & opt (some float) None & info [ "max-deadline" ] ~doc ~docv:"SECS")

let state_dir_arg =
  let doc = "Checkpoint directory for suspended tunes (default: SOCKET.state)." in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~doc ~docv:"DIR")

let tuning_db_arg =
  let doc =
    "Path of the persistent tuning database shared by every client \
     (default: $(b,\\$MDH_TUNING_DB) or $(b,~/.cache/mdh/tuning.db))."
  in
  Arg.(value & opt (some string) None & info [ "tuning-db" ] ~doc ~docv:"PATH")

let no_cache_arg =
  let doc = "Disable the tuning database and the in-memory cost/plan caches." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let inject_arg =
  let doc =
    "Arm deterministic fault injection (overrides $(b,\\$MDH_FAULTS)). "
    ^ Mdh_fault.Fault.grammar
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~doc ~docv:"SPEC")

let die msg =
  prerr_endline ("mdhd: " ^ msg);
  exit 1

let setup_cache ~no_cache ~tuning_db =
  if no_cache then begin
    Mdh_atf.Cost_cache.set_enabled false;
    Mdh_lowering.Plan_cache.set_enabled false;
    Mdh_atf.Tuning_db.set_ambient None
  end
  else
    let db =
      match tuning_db with
      | Some path -> Mdh_atf.Tuning_db.open_db path
      | None -> (
        match Mdh_atf.Tuning_db.default_path () with
        | Some path -> Mdh_atf.Tuning_db.open_db path
        | None -> Mdh_atf.Tuning_db.in_memory ())
    in
    Mdh_atf.Tuning_db.set_ambient (Some db)

let run socket workers queue read_timeout_s write_timeout_s max_frame
    max_deadline_s state_dir tuning_db no_cache inject =
  (match inject with
  | None -> ()
  | Some spec -> (
    match Mdh_fault.Fault.configure spec with
    | Ok () -> ()
    | Error msg -> die ("--inject: " ^ msg)));
  setup_cache ~no_cache ~tuning_db;
  if workers < 1 then die "--workers must be at least 1";
  if queue < 0 then die "--queue must not be negative";
  let config =
    { Server.socket; workers; max_queue = queue; read_timeout_s;
      write_timeout_s; max_frame; max_deadline_s; state_dir }
  in
  match Server.create config with
  | Error msg -> die msg
  | Ok t ->
    (* signal handlers only flip the drain atomic — every wake-up and
       join happens inside Server.serve, which then returns for a clean
       exit 0 *)
    let stop _ = Server.request_shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.eprintf "mdhd: serving on %s (%d worker(s), queue %d)\n%!" socket
      workers queue;
    Server.serve t;
    Printf.eprintf "mdhd: drained after %d request(s)\n%!" (Server.served t)

let () =
  (match Mdh_fault.Fault.arm_from_env () with
  | Ok _ -> ()
  | Error msg -> die ("MDH_FAULTS: " ^ msg));
  let doc = "MDH tuning-as-a-service daemon (see docs/SERVING.md)" in
  let info = Cmd.info "mdhd" ~version:"1.8.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ socket_arg $ workers_arg $ queue_arg
            $ read_timeout_arg $ write_timeout_arg $ max_frame_arg
            $ max_deadline_arg $ state_dir_arg $ tuning_db_arg $ no_cache_arg
            $ inject_arg)))
