module Scalar = Mdh_tensor.Scalar
module Index_fn = Mdh_tensor.Index_fn
module Expr = Mdh_expr.Expr
module Typecheck = Mdh_expr.Typecheck
module Ea = Mdh_expr.Analysis
module Combine = Mdh_combine.Combine
module D = Mdh_directive.Directive
module Validate = Mdh_directive.Validate
module Schedule = Mdh_lowering.Schedule
module Device = Mdh_machine.Device
module Parser = Mdh_pragma.Parser
module Token = Mdh_pragma.Token
module Lexer = Mdh_pragma.Lexer
module Metrics = Mdh_obs.Metrics
module Diag = Diagnostic

let c_directives = Metrics.counter "analysis.check.directives"

(* --- span lookup ------------------------------------------------------- *)

let span_of_pos { Token.line; col } = { Diag.line; col }

type span_env = {
  loop_span : string -> Diag.span option;
  buffer_span : string -> Diag.span option;
  op_span : int -> Diag.span option;
  stmt_span : int -> Diag.span option;
  pragma_span : Diag.span option;
}

let no_spans =
  { loop_span = (fun _ -> None);
    buffer_span = (fun _ -> None);
    op_span = (fun _ -> None);
    stmt_span = (fun _ -> None);
    pragma_span = None }

let span_env_of (s : Parser.spans) =
  { loop_span =
      (fun v -> Option.map span_of_pos (List.assoc_opt v s.Parser.loop_pos));
    buffer_span =
      (fun b -> Option.map span_of_pos (List.assoc_opt b s.Parser.buffer_pos));
    op_span =
      (fun i -> Option.map span_of_pos (List.nth_opt s.Parser.combine_op_pos i));
    stmt_span =
      (fun i -> Option.map span_of_pos (List.nth_opt s.Parser.stmt_pos i));
    pragma_span = Some (span_of_pos s.Parser.pragma_pos) }

(* --- pass 1: loop-nest structure (MDH001-MDH005) ----------------------- *)

let rec nest_is_perfect = function
  | D.For { body; _ } -> nest_is_perfect body
  | D.Body _ -> true
  | D.Seq _ -> false

let structure_pass b sp (dir : D.t) =
  let perfect = nest_is_perfect dir.D.nest in
  if not perfect then
    Diag.emit b ?span:sp.pragma_span Diag.Error "MDH001"
      "the loop nest is not perfect: statements or multiple loops at the same \
       level";
  let loops = D.loops dir in
  (* one MDH002 per variable with a duplicate, at its first occurrence *)
  let rec dups seen = function
    | [] -> ()
    | (var, _) :: rest ->
      if (not (List.mem var seen)) && List.mem_assoc var rest then
        Diag.emit b ?span:(sp.loop_span var) ~subject:var Diag.Error "MDH002"
          "loop variable %S bound twice" var;
      dups (var :: seen) rest
  in
  dups [] loops;
  List.iter
    (fun (var, extent) ->
      if extent <= 0 then
        Diag.emit b ?span:(sp.loop_span var) ~subject:var Diag.Error "MDH003"
          "loop %S has non-positive extent %d" var extent)
    loops;
  if perfect then begin
    let dims_n = List.length loops and ops_n = List.length dir.D.combine_ops in
    if dims_n <> ops_n then
      Diag.emit b ?span:(sp.op_span 0) Diag.Error "MDH004"
        "combine_ops has %d entries but the loop nest has depth %d" ops_n dims_n
  end;
  let has_kind pred = List.exists pred dir.D.combine_ops in
  if
    has_kind (function Combine.Pw _ -> true | _ -> false)
    && has_kind (function Combine.Ps _ -> true | _ -> false)
  then
    Diag.emit b ?span:(sp.op_span 0) Diag.Error "MDH005"
      "pw and ps combine operators cannot be mixed in one computation: their \
       nesting does not satisfy the interchange law the MDH decomposition \
       relies on";
  perfect

(* --- pass 2: buffer declarations (MDH006) ------------------------------ *)

let decl_pass b sp (dir : D.t) =
  let rec dups seen = function
    | [] -> ()
    | (d : D.buffer_decl) :: rest ->
      if
        (not (List.mem d.D.buf_name seen))
        && List.exists
             (fun (d' : D.buffer_decl) -> String.equal d'.D.buf_name d.D.buf_name)
             rest
      then
        Diag.emit b
          ?span:(sp.buffer_span d.D.buf_name)
          ~subject:d.D.buf_name Diag.Error "MDH006" "buffer %S declared twice"
          d.D.buf_name;
      dups (d.D.buf_name :: seen) rest
  in
  dups [] (dir.D.outs @ dir.D.inps)

(* --- pass 3: body discipline and typing (MDH007-MDH012) ----------------

   Mirrors Validate.walk_body statement by statement: within a statement the
   first failing check wins (and emits exactly one diagnostic), but analysis
   continues with the next statement, so the first emitted error agrees with
   the fail-fast validator while later statements still get reported. *)

let fold_lets lets value =
  List.fold_right (fun (name, e) acc -> Expr.Let (name, e, acc)) lets value

let rec uses_vars names = function
  | Expr.Var v -> List.mem v names
  | Const _ | Idx _ -> false
  | Read (_, idxs) -> List.exists (uses_vars names) idxs
  | Binop (_, a, b) -> uses_vars names a || uses_vars names b
  | Unop (_, a) | Field (a, _) | Cast (_, a) -> uses_vars names a
  | If (c, a, b) -> uses_vars names c || uses_vars names a || uses_vars names b
  | Let (n, a, b) -> uses_vars names a || uses_vars (List.filter (( <> ) n) names) b
  | MkRecord fields -> List.exists (fun (_, e) -> uses_vars names e) fields

let fold_lets_if_needed lets value =
  if uses_vars (List.map fst lets) value then fold_lets lets value else value

let find_decl decls name =
  List.find_opt (fun (d : D.buffer_decl) -> String.equal d.D.buf_name name) decls

(* first offending read of [e], as (code, subject, message) *)
let bad_read (dir : D.t) e =
  let bad = ref None in
  Expr.iter_reads e (fun buf _ ->
      if !bad = None then
        if find_decl dir.D.outs buf <> None then
          bad :=
            Some
              ( "MDH009",
                buf,
                Printf.sprintf
                  "output buffer %S is read in the body: the scalar function \
                   must be reduction-free (use `=`, not `+=`; reductions are \
                   expressed by combine_ops)"
                  buf )
        else if find_decl dir.D.inps buf = None then
          bad := Some ("MDH007", buf, Printf.sprintf "read of undeclared buffer %S" buf));
  !bad

let body_pass b sp (dir : D.t) loops stmts =
  let env =
    { Typecheck.iter_vars = List.map fst loops;
      buffer_ty =
        (fun name ->
          match find_decl dir.D.inps name with
          | Some d -> Some d.D.buf_ty
          | None -> None) }
  in
  let ( let* ) r k = match r with Ok v -> k v | Error () -> () in
  let emit_stmt i ?subject code fmt =
    Diag.emit b ?span:(sp.stmt_span i) ?subject Diag.Error code fmt
  in
  let check_reads i e =
    match bad_read dir e with
    | None -> Ok ()
    | Some (code, subject, msg) ->
      emit_stmt i ~subject code "%s" msg;
      Error ()
  in
  let typecheck i wrapped =
    match Typecheck.infer env wrapped with
    | Ok ty -> Ok ty
    | Error e ->
      emit_stmt i "MDH012" "%a" Typecheck.pp_error e;
      Error ()
  in
  let assigned = ref [] in
  List.iteri
    (fun i stmt ->
      let lets =
        (* let bindings preceding statement [i], in binding order *)
        List.filteri (fun j _ -> j < i) stmts
        |> List.filter_map (function
             | D.Let_stmt (n, e) -> Some (n, e)
             | D.Assign _ -> None)
      in
      match stmt with
      | D.Let_stmt (_, e) ->
        let wrapped = fold_lets lets e in
        let* () = check_reads i wrapped in
        let* _ty = typecheck i wrapped in
        ()
      | D.Assign { target; indices; value } ->
        let decl = find_decl dir.D.outs target in
        (* record the target even when a later check fails, so one broken
           assignment does not cascade into MDH010/MDH011 noise *)
        if decl <> None && not (List.mem target !assigned) then
          assigned := target :: !assigned;
        let* decl =
          match decl with
          | Some d -> Ok d
          | None ->
            if find_decl dir.D.inps target <> None then
              emit_stmt i ~subject:target "MDH008"
                "assignment to input buffer %S" target
            else
              emit_stmt i ~subject:target "MDH007"
                "assignment to undeclared buffer %S" target;
            Error ()
        in
        let* () =
          let earlier =
            List.filteri (fun j _ -> j < i) stmts
            |> List.exists (function
                 | D.Assign { target = t'; _ } -> String.equal t' target
                 | D.Let_stmt _ -> false)
          in
          if earlier then begin
            emit_stmt i ~subject:target "MDH010"
              "output buffer %S assigned more than once per iteration point"
              target;
            Error ()
          end
          else Ok ()
        in
        let wrapped_value = fold_lets_if_needed lets value in
        let wrapped_indices = List.map (fold_lets_if_needed lets) indices in
        let* () = check_reads i wrapped_value in
        let* () =
          List.fold_left
            (fun acc ie -> match acc with Error () -> acc | Ok () -> check_reads i ie)
            (Ok ()) wrapped_indices
        in
        let* vty = typecheck i wrapped_value in
        let* () =
          if Scalar.equal_ty vty decl.D.buf_ty then Ok ()
          else begin
            emit_stmt i ~subject:target "MDH012"
              "assignment to %S has type %s, buffer has type %s" target
              (Scalar.ty_to_string vty)
              (Scalar.ty_to_string decl.D.buf_ty);
            Error ()
          end
        in
        let* () =
          List.fold_left
            (fun acc ie ->
              match acc with
              | Error () -> acc
              | Ok () -> (
                match Typecheck.infer env ie with
                | Error e ->
                  emit_stmt i "MDH012" "%a" Typecheck.pp_error e;
                  Error ()
                | Ok (Scalar.Int32 | Int64) -> Ok ()
                | Ok ity ->
                  emit_stmt i ~subject:target "MDH012"
                    "index expression `%s` of %S has non-integral type %s"
                    (Expr.to_string ie) target (Scalar.ty_to_string ity);
                  Error ()))
            (Ok ()) wrapped_indices
        in
        ())
    stmts;
  List.iter
    (fun (d : D.buffer_decl) ->
      if not (List.mem d.D.buf_name !assigned) then
        Diag.emit b
          ?span:(sp.buffer_span d.D.buf_name)
          ~subject:d.D.buf_name Diag.Error "MDH011"
          "output buffer %S is never assigned" d.D.buf_name)
    dir.D.outs

(* --- pass 4: shapes and the out-view discipline (MDH013-MDH015) --------

   Run only on otherwise-clean directives (mirroring the program state in
   which Validate reaches these checks); unlike Validate the out-view pass
   reports every breaking dimension and, for injectivity failures, exhibits
   a concrete pair of colliding iteration points. *)

let iter_points shape ~cap f =
  (* visit up to [cap] points of [shape] in row-major order *)
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let total = Array.fold_left ( * ) 1 shape in
  let n = min total cap in
  let rec bump d =
    if d >= 0 then begin
      idx.(d) <- idx.(d) + 1;
      if idx.(d) >= shape.(d) then begin
        idx.(d) <- 0;
        bump (d - 1)
      end
    end
  in
  for _ = 1 to n do
    f (Array.copy idx);
    bump (rank - 1)
  done

let collision_witness fn subspace =
  let seen = Hashtbl.create 256 in
  let witness = ref None in
  iter_points subspace ~cap:4096 (fun pt ->
      if !witness = None then begin
        let image = Index_fn.apply fn pt in
        match Hashtbl.find_opt seen image with
        | Some prev -> witness := Some (prev, pt, image)
        | None -> Hashtbl.add seen image pt
      end);
  !witness

let string_of_point dims pt =
  String.concat ", "
    (Array.to_list (Array.mapi (fun d v -> Printf.sprintf "%s=%d" dims.(d) v) pt))

let out_view_pass b sp ~dims ~sizes ~combine_ops name fn =
  match fn with
  | Index_fn.Opaque _ ->
    Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error "MDH015"
      "output access of %S must be affine" name
  | Index_fn.Affine _ ->
    let rank = Array.length sizes in
    let breaking = ref [] in
    for d = 0 to rank - 1 do
      if Combine.collapses combine_ops.(d) && Index_fn.uses_dim fn d = Some true
      then begin
        breaking := d :: !breaking;
        Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error
          "MDH015"
          "output access of %S depends on dimension %d (loop %S), which is \
           collapsed by %s: the dimension's partial results all target the \
           same cells"
          name d dims.(d)
          (Combine.name combine_ops.(d))
      end
    done;
    if !breaking = [] then begin
      let subspace =
        Array.mapi (fun d n -> if Combine.collapses combine_ops.(d) then 1 else n) sizes
      in
      match Index_fn.injective_on fn subspace with
      | Some true -> ()
      | Some false -> (
        match collision_witness fn subspace with
        | Some (p1, p2, image) ->
          (* name the first dimension on which the colliding points differ *)
          let d =
            let rec first i = if p1.(i) <> p2.(i) then i else first (i + 1) in
            first 0
          in
          Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error
            "MDH015"
            "output access of %S is not injective on the non-collapsed \
             subspace: iteration points (%s) and (%s) — first differing in \
             dimension %d (loop %S) — both write %s[%s]"
            name (string_of_point dims p1) (string_of_point dims p2) d dims.(d)
            name
            (String.concat ", " (Array.to_list (Array.map string_of_int image)))
        | None ->
          Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error
            "MDH015"
            "output access of %S is not injective on the non-collapsed \
             subspace: combined results would overwrite each other"
            name)
      | None ->
        Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error
          "MDH015" "could not prove injectivity of output access of %S" name
    end

let shape_pass b sp ~what name ~declared ~sizes accesses =
  let emit code fmt =
    Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Error code fmt
  in
  let opaque = List.exists (fun (_, fn) -> not (Index_fn.is_affine fn)) accesses in
  if opaque then begin
    if declared = None then
      emit "MDH014"
        "%s buffer %S has a non-affine access; its size cannot be inferred \
         and must be declared"
        what name
  end
  else begin
    let ranks = List.map (fun (_, fn) -> Index_fn.out_rank fn) accesses in
    match ranks with
    | [] ->
      if declared = None then
        emit "MDH013" "%s buffer %S is never accessed" what name
    | r0 :: rest when List.for_all (( = ) r0) rest ->
      let mins = List.map (fun (_, fn) -> Index_fn.min_index fn sizes) accesses in
      let maxs = List.map (fun (_, fn) -> Index_fn.max_index fn sizes) accesses in
      if List.exists (Array.exists (fun x -> x < 0)) mins then
        emit "MDH013" "%s buffer %S is accessed at negative indices" what name
      else begin
        let inferred = Array.make r0 0 in
        List.iter
          (Array.iteri (fun d m -> if m + 1 > inferred.(d) then inferred.(d) <- m + 1))
          maxs;
        match declared with
        | None -> ()
        | Some shape ->
          if Array.length shape <> r0 then
            emit "MDH013" "%s buffer %S declared with rank %d but accessed with rank %d"
              what name (Array.length shape) r0
          else if Array.exists2 (fun s i -> s < i) shape inferred then
            emit "MDH013" "%s buffer %S declared as %s but accesses reach %s" what
              name
              (Mdh_tensor.Shape.to_string shape)
              (Mdh_tensor.Shape.to_string inferred)
      end
    | _ -> emit "MDH013" "%s buffer %S accessed with inconsistent ranks" what name
  end

let shapes_pass b sp (dir : D.t) loops stmts =
  let dims = Array.of_list (List.map fst loops) in
  let sizes = Array.of_list (List.map snd loops) in
  let combine_ops = Array.of_list dir.D.combine_ops in
  let lets_before i =
    List.filteri (fun j _ -> j < i) stmts
    |> List.filter_map (function
         | D.Let_stmt (n, e) -> Some (n, e)
         | D.Assign _ -> None)
  in
  let assigned =
    List.mapi (fun i stmt -> (i, stmt)) stmts
    |> List.filter_map (function
         | i, D.Assign { target; indices; value } ->
           find_decl dir.D.outs target
           |> Option.map (fun decl ->
                  ( target,
                    ( decl,
                      List.map (fold_lets_if_needed (lets_before i)) indices,
                      fold_lets_if_needed (lets_before i) value ) ))
         | _, D.Let_stmt _ -> None)
  in
  List.iter
    (fun (name, ((decl : D.buffer_decl), indices, _value)) ->
      let fn = Ea.index_fn_of_exprs ~dims indices in
      let before = Diag.error_count (Diag.contents b) in
      shape_pass b sp ~what:"output" name ~declared:decl.D.buf_shape ~sizes
        [ (indices, fn) ];
      if Diag.error_count (Diag.contents b) = before then
        out_view_pass b sp ~dims ~sizes ~combine_ops name fn)
    assigned;
  List.iter
    (fun (decl : D.buffer_decl) ->
      let name = decl.D.buf_name in
      let accesses = ref [] in
      List.iter
        (fun (_, (_, _, value)) ->
          Expr.iter_reads value (fun buf idxs ->
              if String.equal buf name && not (List.mem idxs !accesses) then
                accesses := idxs :: !accesses))
        assigned;
      let accesses =
        List.rev_map (fun idxs -> (idxs, Ea.index_fn_of_exprs ~dims idxs)) !accesses
      in
      shape_pass b sp ~what:"input" name ~declared:decl.D.buf_shape ~sizes accesses)
    dir.D.inps

(* --- pass 5: combine-operator property verification (MDH020-023, 112) -- *)

let opcheck_pass b sp (elab : Validate.elab) =
  let elem_ty =
    match elab.Validate.el_outs with
    | { Validate.eo_ty; _ } :: _ -> Some eo_ty
    | [] -> None
  in
  match elem_ty with
  | None -> ()
  | Some ty ->
    let seen = ref [] in
    Array.iteri
      (fun d op ->
        match Combine.custom_fn_of op with
        | None -> ()
        | Some fn when List.mem fn.Combine.fn_name !seen -> ()
        | Some fn -> (
          seen := fn.Combine.fn_name :: !seen;
          let report = Opcheck.verify ~ty fn in
          let span = sp.op_span d in
          List.iter
            (fun (property, witness) ->
              let code =
                match property with
                | "associativity" -> "MDH020"
                | "commutativity" -> "MDH021"
                | _ -> "MDH022"
              in
              Diag.emit b ?span ~subject:fn.Combine.fn_name Diag.Error code
                "combine operator %S declares %s but the verifier falsified \
                 it: %s"
                fn.Combine.fn_name property witness)
            (Opcheck.violations fn report);
          (match report.Opcheck.associativity with
          | Opcheck.Untestable msg ->
            Diag.emit b ?span ~subject:fn.Combine.fn_name Diag.Warning "MDH023"
              "combine operator %S could not be verified: %s" fn.Combine.fn_name
              msg
          | _ -> ());
          List.iter
            (fun property ->
              Diag.emit b ?span ~subject:fn.Combine.fn_name Diag.Hint "MDH112"
                "combine operator %S holds %s on every sample but does not \
                 declare it; declaring it unlocks parallelisation"
                fn.Combine.fn_name property)
            (Opcheck.unexploited fn report)))
      elab.Validate.el_combine_ops

(* --- pass 6: semantic lints (MDH101-103, MDH110-111) -------------------- *)

let lint_pass b sp (elab : Validate.elab) =
  let dims = elab.Validate.el_dims in
  let rank = Array.length dims in
  List.iter
    (fun (inp : Validate.einp) ->
      if inp.Validate.ei_accesses = [] then
        Diag.emit b
          ?span:(sp.buffer_span inp.Validate.ei_name)
          ~subject:inp.Validate.ei_name Diag.Warning "MDH101"
          "input buffer %S is never read by the body" inp.Validate.ei_name)
    elab.Validate.el_inps;
  let blocked = Schedule.unparallelisable elab.Validate.el_combine_ops in
  List.iter
    (fun (d, msg) ->
      Diag.emit b ?span:(sp.op_span d) ~subject:dims.(d) Diag.Warning "MDH102"
        "no schedule may parallelise loop %S: %s" dims.(d) msg)
    blocked;
  if rank > 0 && List.length blocked = rank then
    Diag.emit b ?span:(sp.op_span 0) Diag.Warning "MDH103"
      "no dimension of the computation is parallelisable: every combine \
       operator is a reduction with a non-associative customising function";
  Array.iteri
    (fun d var ->
      if elab.Validate.el_sizes.(d) = 1 then
        Diag.emit b ?span:(sp.loop_span var) ~subject:var Diag.Hint "MDH110"
          "loop %S has extent 1: the dimension is degenerate and could be \
           dropped from the nest"
          var)
    dims;
  (* locality: the innermost loop should drive the last (stride-1) buffer
     coordinate; an access that uses it only in an earlier coordinate walks
     the buffer with a large stride *)
  if rank > 0 then begin
    let innermost = rank - 1 in
    let strided fn =
      match fn with
      | Index_fn.Opaque _ -> false
      | Index_fn.Affine { coords; _ } ->
        let n = Array.length coords in
        n > 0
        && coords.(n - 1).Index_fn.coeffs.(innermost) = 0
        && Array.exists
             (fun (c : Index_fn.coord) -> c.Index_fn.coeffs.(innermost) <> 0)
             (Array.sub coords 0 (n - 1))
    in
    let hint name fn =
      if strided fn then
        Diag.emit b ?span:(sp.buffer_span name) ~subject:name Diag.Hint "MDH111"
          "access of %S uses the innermost loop %S only in a non-last \
           coordinate: consecutive iterations stride across the buffer; \
           consider interchanging loops so %S drives the stride-1 coordinate"
          name dims.(innermost) dims.(innermost)
    in
    List.iter (fun (o : Validate.eout) -> hint o.Validate.eo_name o.Validate.eo_fn)
      elab.Validate.el_outs;
    List.iter
      (fun (inp : Validate.einp) ->
        match
          List.find_opt (fun (_, fn) -> strided fn) inp.Validate.ei_accesses
        with
        | Some (_, fn) -> hint inp.Validate.ei_name fn
        | None -> ())
      elab.Validate.el_inps
  end

(* --- pass 7: plan-level lints (MDH113) ---------------------------------- *)

(* The PRL-study diagnosis (paper Section 5.2), read off the shared plan
   IR: when only the concatenation dimensions are parallelised — all an
   OpenMP-style [parallel for] annotation expresses — a reduction-heavy
   computation leaves most of a device idle. Compare the cc-only plan's
   parallelism with the plan the lowering actually picks on each modelled
   device; a large gap means reduction parallelisation carries the
   workload. *)
let plan_pass b sp (dir : D.t) =
  match Mdh_directive.Transform.to_md_hom dir with
  | Error _ -> ()
  | Ok md ->
    let hint_for dev =
      let full = Mdh_lowering.Lower.mdh_default md dev in
      let cc_only =
        { full with
          Schedule.parallel_dims =
            List.filter
              (fun d -> not (Combine.is_reduction md.Mdh_core.Md_hom.combine_ops.(d)))
              full.Schedule.parallel_dims }
      in
      match
        ( Mdh_lowering.Plan_cache.build md dev full,
          Mdh_lowering.Plan_cache.build md dev cc_only )
      with
      | Ok fp, Ok cp ->
        let fpar = Mdh_lowering.Plan.parallelism fp in
        let cpar = Mdh_lowering.Plan.parallelism cp in
        if fpar >= 4 * max 1 cpar then
          Option.map
            (fun (td, _, _) -> (dev, td, fpar, cpar))
            (Mdh_lowering.Plan.tree fp)
        else None
      | _ -> None
    in
    (match
       List.find_map hint_for [ Device.xeon6140_like; Device.a100_like ]
     with
    | Some (dev, td, fpar, cpar) ->
      let dims = md.Mdh_core.Md_hom.dims in
      Diag.emit b ?span:(sp.op_span td) ~subject:dims.(td) Diag.Hint "MDH113"
        "parallelising only the concatenation dimensions achieves %d-way \
         parallelism on %s, but the plan reaches %d-way by tree-reducing \
         loop %S: a directive-level [parallel for] annotation would leave \
         the device underused"
        cpar dev.Device.device_name fpar dims.(td)
    | None -> ())

(* --- pass 8: verified-rewrite hints (MDH120-121) -------------------------

   Read-only preview of what `mdhc optimize` would do: run the expression
   tier on each output body and the plan tier on the default plan of each
   modelled device, and report where a justified rewrite fires. The pass
   never changes the directive — it tells the author the optimizer has
   something to offer. *)

let rewrite_rules applied =
  (* distinct rule ids in application order *)
  List.fold_left
    (fun acc (a : Mdh_rewrite.Rewrite.applied) ->
      if List.mem a.Mdh_rewrite.Rewrite.ap_rule acc then acc
      else acc @ [ a.Mdh_rewrite.Rewrite.ap_rule ])
    [] applied

let rewrite_pass b sp ~verify_ops (dir : D.t) =
  match Mdh_directive.Transform.to_md_hom dir with
  | Error _ -> ()
  | Ok md ->
    let module Rw = Mdh_rewrite.Rewrite in
    let module Md_hom = Mdh_core.Md_hom in
    List.iter
      (fun (o : Md_hom.output) ->
        let value', applied = Rw.saturate_expr ~site:o.Md_hom.out_name o.Md_hom.value in
        if applied <> [] then
          Diag.emit b
            ?span:(sp.buffer_span o.Md_hom.out_name)
            ~subject:o.Md_hom.out_name Diag.Hint "MDH120"
            "the body of %S admits %d verified rewrite%s (%s) reducing its \
             modelled flops from %d to %d: `mdhc optimize` applies them"
            o.Md_hom.out_name (List.length applied)
            (if List.length applied = 1 then "" else "s")
            (String.concat ", " (rewrite_rules applied))
            (Ea.flops o.Md_hom.value) (Ea.flops value'))
      md.Md_hom.outputs;
    let oracle =
      if verify_ops then Opcheck_oracle.oracle () else Rw.pure_oracle
    in
    let hint_for dev =
      let sched = Mdh_lowering.Lower.mdh_default md dev in
      match Mdh_lowering.Plan_cache.build md dev sched with
      | Error _ -> None
      | Ok plan -> (
        match Rw.saturate_plan ~oracle md dev Mdh_lowering.Cost.tuned_codegen plan with
        | _, [] -> None
        | _, applied -> Some (dev, applied))
    in
    (match List.find_map hint_for [ Device.xeon6140_like; Device.a100_like ] with
    | Some (dev, applied) ->
      Diag.emit b ?span:sp.pragma_span Diag.Hint "MDH121"
        "the default plan for %s admits %d structural rewrite%s (%s): `mdhc \
         optimize` applies them and reports the cost-model delta"
        dev.Device.device_name (List.length applied)
        (if List.length applied = 1 then "" else "s")
        (String.concat ", " (rewrite_rules applied))
    | None -> ())

(* --- driver ------------------------------------------------------------- *)

let of_validate_error sp (e : Validate.error) =
  let subject = Validate.error_subject e.Validate.kind in
  let span =
    match subject with
    | Some s -> (
      match sp.loop_span s with Some sp' -> Some sp' | None -> sp.buffer_span s)
    | None -> sp.pragma_span
  in
  { Diag.code = Validate.error_code e.Validate.kind;
    severity = Diag.Error;
    span;
    subject;
    message = e.Validate.message }

let directive ?spans ?(verify_ops = true) (dir : D.t) =
  Metrics.incr c_directives;
  let sp = match spans with Some s -> span_env_of s | None -> no_spans in
  let b = Diag.create () in
  let perfect = structure_pass b sp dir in
  decl_pass b sp dir;
  if perfect then begin
    let loops = D.loops dir in
    let stmts = D.stmts dir in
    body_pass b sp dir loops stmts;
    if Diag.error_count (Diag.contents b) = 0 then
      shapes_pass b sp dir loops stmts
  end;
  match Validate.elaborate dir with
  | Ok elab ->
    if verify_ops then opcheck_pass b sp elab;
    lint_pass b sp elab;
    plan_pass b sp dir;
    rewrite_pass b sp ~verify_ops dir;
    Diag.contents b
  | Error e -> (
    (* the analyzer's passes mirror Validate's checks, so its first error
       should agree with the fail-fast validator; if a pass missed the
       problem, surface Validate's own error first rather than under-report *)
    let ds = Diag.contents b in
    let code = Validate.error_code e.Validate.kind in
    match List.find_opt (fun d -> d.Diag.severity = Diag.Error) ds with
    | Some first when String.equal first.Diag.code code -> ds
    | _ -> of_validate_error sp e :: ds)

let pragma ?name ?(params = []) ?verify_ops src =
  match Lexer.tokenize src with
  | Error { Lexer.pos; message } ->
    let b = Diag.create () in
    Diag.emit b ~span:(span_of_pos pos) Diag.Error "MDH017" "%s" message;
    Diag.contents b
  | Ok _ -> (
    match Parser.parse_with_spans ?name ~params src with
    | Error { Parser.pos; message } ->
      let b = Diag.create () in
      Diag.emit b ~span:(span_of_pos pos) Diag.Error "MDH016" "%s" message;
      Diag.contents b
    | Ok (dir, spans) -> directive ~spans ?verify_ops dir)
