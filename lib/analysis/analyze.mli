(** The multi-pass static analyzer behind [mdhc check].

    Where [Mdh_directive.Validate] is fail-fast — the first violation wins,
    which is what [Transform.to_md_hom] needs — this module runs the same
    checks as accumulating passes and keeps going, so one invocation reports
    every problem it can see. The pass order mirrors [Validate.elaborate]'s
    check order, which makes the first error-severity diagnostic agree with
    [Validate.check]'s verdict (the suite's fuzz harness cross-checks this
    on random directives):

    + structure — perfect nest, loop variables, extents, combine_ops arity,
      pw/ps mixing (MDH001–MDH005);
    + declarations — duplicate buffers (MDH006);
    + body — purity, assignment discipline, typing, one diagnostic per
      offending statement (MDH007–MDH012);
    + shapes and output views — run only on otherwise-clean directives,
      mirroring the state in which [Validate] reaches them; the out-view
      pass names every breaking dimension and exhibits a concrete pair of
      colliding iteration points when an output access is not injective
      (MDH013–MDH015);
    + combine-operator verification ({!Opcheck}) — falsified declarations
      are errors (MDH020–MDH022), operators that raise on samples are
      warnings (MDH023), verified-but-undeclared properties are hints
      (MDH112);
    + semantic lints on the elaborated directive — unused inputs (MDH101),
      schedule pre-checks shared with [Mdh_lowering.Schedule]
      (MDH102/MDH103), degenerate extent-1 dimensions (MDH110), and
      stride/locality interchange hints (MDH111).

    When the directive came from the pragma frontend, pass the parser's
    clause {!Mdh_pragma.Parser.spans} so diagnostics point at the offending
    clause. *)

val directive :
  ?spans:Mdh_pragma.Parser.spans ->
  ?verify_ops:bool ->
  Mdh_directive.Directive.t ->
  Diagnostic.t list
(** Analyze a directive. [verify_ops] (default [true]) controls the
    combine-operator property verification, which evaluates the operators'
    customising functions a few hundred times. Diagnostics come back in
    emission order; [Diagnostic.error_count] and friends summarise. *)

val pragma :
  ?name:string ->
  ?params:(string * int) list ->
  ?verify_ops:bool ->
  string ->
  Diagnostic.t list
(** Analyze pragma source text: lexical errors are reported as MDH017 and
    syntax errors as MDH016 (both carry the source span); otherwise the
    parsed directive is analyzed with clause spans attached. *)
