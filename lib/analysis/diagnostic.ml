module Json = Mdh_obs.Json
module Metrics = Mdh_obs.Metrics

type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

type span = { line : int; col : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  subject : string option;
  message : string;
}

(* Stable code registry. Append-only: a released code never changes its
   meaning (test_analysis pins the table). MDH0xx are errors, MDH1xx
   warnings, MDH12x/MDH11x-style advisory entries are hints. *)
let code_table =
  [ ("MDH001", Error, "loop nest is not perfect");
    ("MDH002", Error, "loop variable bound twice");
    ("MDH003", Error, "loop extent is not positive");
    ("MDH004", Error, "combine_ops arity differs from the nest depth");
    ("MDH005", Error, "pw and ps combine operators mixed in one computation");
    ("MDH006", Error, "buffer declared twice");
    ("MDH007", Error, "reference to an undeclared buffer");
    ("MDH008", Error, "assignment to an input buffer");
    ("MDH009", Error, "output buffer read in the body");
    ("MDH010", Error, "output buffer assigned more than once per point");
    ("MDH011", Error, "output buffer never assigned");
    ("MDH012", Error, "expression does not type-check");
    ("MDH013", Error, "buffer shape inconsistent with its accesses");
    ("MDH014", Error, "non-affine access needs a declared shape");
    ("MDH015", Error, "output access violates the out-view discipline");
    ("MDH016", Error, "pragma syntax error");
    ("MDH017", Error, "pragma lexical error");
    ("MDH020", Error, "combine operator declared associative but is not");
    ("MDH021", Error, "combine operator declared commutative but is not");
    ("MDH022", Error, "declared identity element is not an identity");
    ("MDH023", Warning, "combine operator raised on sample inputs");
    ("MDH101", Warning, "input buffer is never read");
    ("MDH102", Warning, "reduction dimension cannot be parallelised");
    ("MDH103", Warning, "no dimension of the computation is parallelisable");
    ("MDH110", Hint, "loop dimension has extent 1");
    ("MDH111", Hint, "innermost loop is not the stride-1 dimension");
    ("MDH112", Hint, "verified operator property is not declared");
    ("MDH113", Hint, "device parallelism relies on reduction parallelisation");
    ("MDH120", Hint, "a verified rewrite would simplify the combine body");
    ("MDH121", Hint, "a verified rewrite would simplify the lowered plan") ]

let describe_code code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    code_table

(* --- accumulation --- *)

type buffer = t list ref

let create () : buffer = ref []

let c_errors = Metrics.counter "analysis.check.errors"
let c_warnings = Metrics.counter "analysis.check.warnings"
let c_hints = Metrics.counter "analysis.check.hints"

let count_metric = function
  | Error -> Metrics.incr c_errors
  | Warning -> Metrics.incr c_warnings
  | Hint -> Metrics.incr c_hints

let emit (b : buffer) ?span ?subject severity code fmt =
  Format.kasprintf
    (fun message ->
      count_metric severity;
      b := { code; severity; span; subject; message } :: !b)
    fmt

let contents (b : buffer) = List.rev !b

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let error_count = count Error
let warning_count = count Warning
let hint_count = count Hint

let exit_code ?(strict = false) ds =
  if error_count ds > 0 then 1
  else if strict && warning_count ds > 0 then 1
  else 0

(* --- rendering --- *)

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_to_string d.severity) d.code;
  (match d.span with
  | Some { line; col } -> Format.fprintf ppf " at %d:%d" line col
  | None -> ());
  (match d.subject with
  | Some s -> Format.fprintf ppf " (%s)" s
  | None -> ());
  Format.fprintf ppf ": %s" d.message

let to_string d = Format.asprintf "%a" pp d

let render ?file ds =
  let line d =
    match (file, d.span) with
    | Some f, Some { line; col } ->
      Printf.sprintf "%s:%d:%d: %s[%s]: %s" f line col
        (severity_to_string d.severity) d.code d.message
    | _ -> to_string d
  in
  String.concat "\n" (List.map line ds)

(* --- SARIF (2.1.0) --- *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "note"

let sarif ~tool_version targets =
  let rules =
    Json.arr
      (List.map
         (fun (code, sev, descr) ->
           Json.obj
             [ ("id", Json.quote code);
               ("shortDescription", Json.obj [ ("text", Json.quote descr) ]);
               ( "defaultConfiguration",
                 Json.obj [ ("level", Json.quote (sarif_level sev)) ] ) ])
         code_table)
  in
  let result uri d =
    let location =
      let physical =
        ("artifactLocation", Json.obj [ ("uri", Json.quote uri) ])
        ::
        (match d.span with
        | Some { line; col } ->
          [ ( "region",
              Json.obj
                [ ("startLine", string_of_int line);
                  ("startColumn", string_of_int col) ] ) ]
        | None -> [])
      in
      Json.obj [ ("physicalLocation", Json.obj physical) ]
    in
    Json.obj
      ([ ("ruleId", Json.quote d.code);
         ("level", Json.quote (sarif_level d.severity));
         ("message", Json.obj [ ("text", Json.quote d.message) ]);
         ("locations", Json.arr [ location ]) ]
      @
      match d.subject with
      | Some s ->
        [ ("properties", Json.obj [ ("subject", Json.quote s) ]) ]
      | None -> [])
  in
  let results =
    Json.arr
      (List.concat_map (fun (uri, ds) -> List.map (result uri) ds) targets)
  in
  let run =
    Json.obj
      [ ( "tool",
          Json.obj
            [ ( "driver",
                Json.obj
                  [ ("name", Json.quote "mdhc");
                    ("version", Json.quote tool_version);
                    ("rules", rules) ] ) ] );
        ("results", results) ]
  in
  Json.obj
    [ ("version", Json.quote "2.1.0");
      ( "$schema",
        Json.quote
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("runs", Json.arr [ run ]) ]
