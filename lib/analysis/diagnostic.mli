(** The diagnostics engine: stable error codes, severities, source spans,
    accumulation, and human / SARIF-shaped JSON renderers.

    Every finding of the static analyzer ({!Analyze}) and the operator
    property verifier ({!Opcheck}) is a [t]: a stable [MDH0xx] code, a
    severity, an optional source span (populated when the directive came
    from the [#pragma mdh] textual frontend, whose parser records clause
    positions), an optional subject (the buffer, loop variable or
    combine-operator the finding is about), and a message.

    Severity policy (see docs/DIAGNOSTICS.md):
    - [Error]: the directive is rejected — [Validate.check] fails, or a
      combine operator's declared algebraic property was falsified.
      Errors always fail [mdhc check].
    - [Warning]: the directive is accepted but something will bite later
      (an input buffer never read, a reduction dimension that no schedule
      may parallelise). Warnings fail [mdhc check --strict].
    - [Hint]: advisory only (locality/loop-interchange suggestions,
      verified-but-undeclared operator properties). Hints never fail.

    Emission increments the process-wide metrics counters
    [analysis.check.errors|warnings|hints] so [--metrics] covers analyzer
    runs. *)

type severity = Error | Warning | Hint

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

type span = { line : int; col : int }
(** 1-based source position of the offending clause/token. *)

type t = {
  code : string;  (** stable, e.g. ["MDH002"] — see {!code_table} *)
  severity : severity;
  span : span option;
  subject : string option;
      (** what the finding is about: a buffer or loop-variable name, or
          ["combine_ops\[i\]"] for the i-th combine operator *)
  message : string;
}

val code_table : (string * severity * string) list
(** Every code the analyzer can emit, with its default severity and a
    one-line description. The table is append-only: codes are stable
    across releases (pinned by test_analysis). *)

val describe_code : string -> string option
(** Short description from {!code_table}. *)

(** {1 Accumulation} *)

type buffer

val create : unit -> buffer

val emit :
  buffer ->
  ?span:span ->
  ?subject:string ->
  severity ->
  string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** [emit b sev code fmt ...] appends a diagnostic; emission order is
    preserved by {!contents}. Also bumps the per-severity metrics
    counter. *)

val contents : buffer -> t list
(** Diagnostics in emission order. *)

val error_count : t list -> int
val warning_count : t list -> int
val hint_count : t list -> int

val exit_code : ?strict:bool -> t list -> int
(** 1 when any error; with [~strict:true], also when any warning. Hints
    never affect the exit code. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** [error[MDH002] at 3:7 (i): loop variable "i" bound twice] — the span
    and subject are included when present. *)

val to_string : t -> string

val render : ?file:string -> t list -> string
(** One line per diagnostic, [file:line:col: severity[CODE]: message]
    when both a file and a span are known (the standard compiler format
    editors understand). *)

val sarif : tool_version:string -> (string * t list) list -> string
(** SARIF-shaped JSON (version 2.1.0, one run): the association list maps
    artifact URIs — a pragma file path, or [workload:<name>] for
    catalogue directives — to their diagnostics. The tool's rules array
    is {!code_table}. *)
