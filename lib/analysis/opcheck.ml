module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Rng = Mdh_support.Rng
module Metrics = Mdh_obs.Metrics

type outcome =
  | Verified of int
  | Counterexample of string
  | Untestable of string

type report = {
  op_name : string;
  evaluations : int;
  associativity : outcome;
  commutativity : outcome;
  identity : outcome option;
}

let c_evaluations = Metrics.counter "analysis.opcheck.evaluations"
let c_operators = Metrics.counter "analysis.opcheck.operators"

(* --- sample domains ---

   Exactness matters: comparisons are Scalar.equal (IEEE equality), so
   every sample is chosen such that the builtin arithmetic stays exact
   over triple-deep combinations — small integers, and dyadic rationals
   with magnitude <= 2^20 for floats: a sum of three such values needs at
   most 24 mantissa bits and a product at most a few, so even fp32 never
   rounds on the domain. The float domain also carries both signed zeros
   and the +/-2^20 extremes; the verdicts it produces are therefore
   statements about this exact domain, not about floating point at large
   (reassociating float reductions still changes rounding on general
   data — which is why Mdh_rewrite refuses float reassociation). *)

(* sample identity is bitwise for floats so that -0.0 survives dedup next
   to 0.0 (Scalar.equal follows IEEE and conflates the two) *)
let same_sample a b =
  match (a, b) with
  | Scalar.F32 x, Scalar.F32 y | Scalar.F64 x, Scalar.F64 y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Scalar.equal a b

let dedup vs =
  List.fold_left
    (fun acc v -> if List.exists (same_sample v) acc then acc else acc @ [ v ])
    [] vs

let rec samples ?(seed = 42) ty =
  let rng = Rng.create seed in
  let ints mk =
    List.map mk [ -2; -1; 0; 1; 2 ]
    @ List.init 3 (fun _ -> mk (Rng.int_in rng (-40) 40))
  in
  let floats mk =
    List.map mk
      [ -2.0; -1.0; -0.5; -0.0; 0.0; 0.5; 1.0; 2.5; -1048576.0; 1048576.0 ]
    @ List.init 3 (fun _ -> mk (float_of_int (Rng.int_in rng (-8) 8) /. 4.0))
  in
  let base =
    match ty with
    | Scalar.Int32 -> ints Scalar.i32
    | Scalar.Int64 -> ints Scalar.i64
    | Scalar.Fp32 -> floats Scalar.f32
    | Scalar.Fp64 -> floats Scalar.f64
    | Scalar.Bool -> [ Scalar.B false; Scalar.B true ]
    | Scalar.Char -> [ Scalar.C '\000'; Scalar.C 'a'; Scalar.C 'z' ]
    | Scalar.Record fields ->
      (* field-wise: record i picks the (i * (field_index + 1))-th sample
         of each field, cycling — deterministic and diverse *)
      let per_field =
        List.map (fun (name, fty) -> (name, samples ~seed:(seed + 1) fty)) fields
      in
      List.init 6 (fun i ->
          Scalar.R
            (List.mapi
               (fun fi (name, vs) ->
                 (name, List.nth vs (i * (fi + 1) mod List.length vs)))
               per_field))
  in
  dedup base

(* --- property checks --- *)

exception Op_raised of string

let check_property apply_counted pairs_or_triples check render =
  (* first falsifying tuple wins; Untestable if the operator raises *)
  let rec go n = function
    | [] -> Verified n
    | tup :: rest -> (
      match check tup with
      | true -> go (n + 1) rest
      | false -> Counterexample (render tup)
      | exception Op_raised msg -> Untestable msg)
  in
  ignore apply_counted;
  go 0 pairs_or_triples

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let verify ?(seed = 42) ~ty (fn : Combine.custom_fn) =
  Metrics.incr c_operators;
  let vs = samples ~seed ty in
  let n_evals = ref 0 in
  let apply a b =
    incr n_evals;
    try fn.Combine.apply a b
    with e ->
      raise
        (Op_raised
           (Printf.sprintf "%s applied to %s and %s raised: %s" fn.Combine.fn_name
              (Scalar.value_to_string a) (Scalar.value_to_string b)
              (Printexc.to_string e)))
  in
  let s = Scalar.value_to_string in
  (* associativity: exhaustive over a small head of the domain, plus
     seeded random triples over the full domain *)
  let head = take 6 vs in
  let exhaustive_triples =
    List.concat_map
      (fun a -> List.concat_map (fun b -> List.map (fun c -> (a, b, c)) head) head)
      head
  in
  let rng = Rng.create (seed + 7) in
  let pick () = List.nth vs (Rng.int rng (List.length vs)) in
  let random_triples = List.init 30 (fun _ -> (pick (), pick (), pick ())) in
  let associativity =
    check_property apply
      (exhaustive_triples @ random_triples)
      (fun (a, b, c) -> Scalar.equal (apply (apply a b) c) (apply a (apply b c)))
      (fun (a, b, c) ->
        Printf.sprintf "(%s %s %s) %s %s <> %s %s (%s %s %s) with a=%s b=%s c=%s"
          (s a) fn.Combine.fn_name (s b) fn.Combine.fn_name (s c) (s a)
          fn.Combine.fn_name (s b) fn.Combine.fn_name (s c) (s a) (s b) (s c))
  in
  let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) vs) vs in
  let commutativity =
    check_property apply pairs
      (fun (a, b) -> Scalar.equal (apply a b) (apply b a))
      (fun (a, b) ->
        Printf.sprintf "%s %s %s <> %s %s %s" (s a) fn.Combine.fn_name (s b) (s b)
          fn.Combine.fn_name (s a))
  in
  let identity =
    match fn.Combine.identity with
    | None -> None
    | Some e ->
      Some
        (check_property apply vs
           (fun v -> Scalar.equal (apply e v) v && Scalar.equal (apply v e) v)
           (fun v ->
             Printf.sprintf "declared identity %s does not fix %s" (s e) (s v)))
  in
  Metrics.add c_evaluations !n_evals;
  { op_name = fn.Combine.fn_name; evaluations = !n_evals; associativity;
    commutativity; identity }

(* --- interpreting a report against the declaration --- *)

let falsified = function Counterexample w -> Some w | Verified _ | Untestable _ -> None

let violations (fn : Combine.custom_fn) report =
  List.filter_map
    (fun (declared, property, outcome) ->
      if declared then
        Option.map (fun w -> (property, w)) (falsified outcome)
      else None)
    [ (fn.Combine.associative, "associativity", report.associativity);
      (fn.Combine.commutative, "commutativity", report.commutativity);
      ( fn.Combine.identity <> None,
        "identity",
        Option.value report.identity ~default:(Verified 0) ) ]

let unexploited (fn : Combine.custom_fn) report =
  List.filter_map
    (fun (declared, property, outcome) ->
      match outcome with
      | Verified _ when not declared -> Some property
      | _ -> None)
    [ (fn.Combine.associative, "associativity", report.associativity);
      (fn.Combine.commutative, "commutativity", report.commutativity) ]

let demote (fn : Combine.custom_fn) report =
  let bad outcome = falsified outcome <> None in
  Combine.with_declared
    ?associative:(if bad report.associativity then Some false else None)
    ?commutative:(if bad report.commutativity then Some false else None)
    ?identity:
      (match report.identity with
      | Some o when bad o -> Some None
      | _ -> None)
    fn
