(** Combine-operator property verification.

    Customising functions ({!Mdh_combine.Combine.custom_fn}) carry
    author-declared algebraic metadata — [associative], [commutative],
    [identity] — and the lowering trusts it: a mis-declared associative
    flag silently legalises parallel schedules the MDH decomposition does
    not permit. This module machine-checks the declarations by
    bounded-exhaustive evaluation over a small, exactly-representable
    scalar domain plus seeded randomized samples.

    Domains are chosen so that the arithmetic of the builtin operators is
    exact (small integers; dyadic-rational floats), which makes the check
    decide the {e algebraic} property of the declared operator rather
    than floating-point rounding behaviour: [add] on fp32 is
    associative as an algebraic declaration even though large-magnitude
    fp32 addition rounds. See docs/DIAGNOSTICS.md.

    Verification is deterministic for a given [seed] and counts its
    operator applications on the [analysis.opcheck.evaluations] metrics
    counter. *)

module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine

type outcome =
  | Verified of int  (** held on this many checks *)
  | Counterexample of string  (** rendered witness, e.g. [(a op b) op c <> a op (b op c)] *)
  | Untestable of string  (** the operator raised; the message names the inputs *)

type report = {
  op_name : string;
  evaluations : int;  (** operator applications performed *)
  associativity : outcome;
  commutativity : outcome;
  identity : outcome option;  (** [None] when no identity is declared *)
}

val samples : ?seed:int -> Scalar.ty -> Scalar.value list
(** The verification domain for a type: a bounded-exhaustive base set
    plus a few seeded random values; record samples are built field-wise.
    All values are exactly representable, and float domains include both
    signed zeros and the [+/-2^20] magnitude extremes (the largest dyadic
    values whose triple sums still avoid fp32 rounding). Deduplication is
    bitwise for floats, so [-0.0] and [0.0] are distinct samples. *)

val verify : ?seed:int -> ty:Scalar.ty -> Combine.custom_fn -> report
(** Check all three properties on [samples ty], regardless of what is
    declared ({!violations} / {!unexploited} interpret the result against
    the declaration). [ty] is the element type the operator combines —
    for a directive, the output buffer's type. *)

val violations : Combine.custom_fn -> report -> (string * string) list
(** Declared properties that were falsified: [(property, witness)] pairs
    — the operator author's metadata is wrong and the operator must be
    fixed or demoted. *)

val unexploited : Combine.custom_fn -> report -> string list
(** Properties that held on every sample but are not declared — the
    declaration is sound but leaves parallelisation on the table. *)

val demote : Combine.custom_fn -> report -> Combine.custom_fn
(** Clear every falsified declaration (associative/commutative flags,
    identity), producing an operator the lowering treats conservatively
    but correctly. *)
