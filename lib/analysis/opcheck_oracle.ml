module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Rewrite = Mdh_rewrite.Rewrite

(* memoized per (seed, type, operator name): the report describes the
   implementation (declarations are judged elsewhere), and operators are
   deduplicated by name exactly like the analyzer's opcheck pass *)
let memo : (string, Opcheck.report) Hashtbl.t = Hashtbl.create 16

let report ~seed ~ty fn =
  let key =
    Printf.sprintf "%d/%s/%s" seed (Scalar.ty_to_string ty) fn.Combine.fn_name
  in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
    let r = Opcheck.verify ~seed ~ty fn in
    Hashtbl.add memo key r;
    r

let verdict_of_outcome ~evaluations = function
  | Opcheck.Verified _ -> Rewrite.Proved { evaluations }
  | Opcheck.Counterexample w -> Rewrite.Refuted { witness = w }
  | Opcheck.Untestable msg -> Rewrite.Unknown msg

let oracle ?(seed = 42) () =
  { Rewrite.oracle_name = Printf.sprintf "opcheck-%d" seed;
    prove =
      (fun ty fn prop ->
        let r = report ~seed ~ty fn in
        let evaluations = r.Opcheck.evaluations in
        match prop with
        | Rewrite.Associative -> verdict_of_outcome ~evaluations r.Opcheck.associativity
        | Rewrite.Commutative -> verdict_of_outcome ~evaluations r.Opcheck.commutativity)
  }
