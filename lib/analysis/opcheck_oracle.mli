(** The {!Opcheck}-backed justification oracle for {!Mdh_rewrite.Rewrite}.

    Bridges the property verifier to the rewrite engine: a [prove] call
    runs (memoized) {!Opcheck.verify} on the operator and maps the
    machine-checked outcome to a rewrite verdict. This is the only path
    by which algebra-gated rewrite rules obtain evidence — declared
    metadata never reaches the engine as proof. *)

val oracle : ?seed:int -> unit -> Mdh_rewrite.Rewrite.oracle
(** Verification reports are memoized per (type, operator-name) — the
    same dedup key the analyzer's operator pass uses — so repeated
    rewrites of one workload verify each operator once per process. *)
