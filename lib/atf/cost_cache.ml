module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
module Memo = Mdh_support.Memo

type ctx = {
  md : Md_hom.t;
  dev : Device.t;
  cg : Cost.codegen;
  include_transfers : bool option;
  prefix : string;
}

let cache : (float, string) result Memo.t = Memo.create ()

let context ?include_transfers md dev cg =
  let prefix =
    Memo.key
      [ Format.asprintf "%a" Md_hom.pp md;
        dev.Device.device_name;
        cg.Cost.cg_name;
        Printf.sprintf "%h" cg.Cost.base_compute_eff;
        Printf.sprintf "%h" cg.Cost.base_bw_eff;
        (match include_transfers with
        | None -> "default-transfers"
        | Some b -> string_of_bool b) ]
  in
  { md; dev; cg; include_transfers; prefix }

let context_key ctx = ctx.prefix

let schedule_key ctx schedule = Memo.key [ ctx.prefix; Schedule.to_string schedule ]

let seconds ctx schedule =
  Memo.find_or_add cache (schedule_key ctx schedule) (fun () ->
      Cost.seconds ?include_transfers:ctx.include_transfers ctx.md ctx.dev ctx.cg
        schedule)

let set_enabled enabled = Memo.set_enabled cache enabled
let enabled () = Memo.enabled cache
let stats () = Memo.stats cache
let reset_stats () = Memo.reset_stats cache
let clear () = Memo.clear cache
