module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
module Memo = Mdh_support.Memo

type ctx = {
  md : Md_hom.t;
  dev : Device.t;
  cg : Cost.codegen;
  include_transfers : bool option;
  prefix : string;
}

let cache : (float, string) result Memo.t = Memo.create ()

(* the registry is the source of truth for hit/miss accounting: unlike
   the Memo-internal counters it is resettable per tuning run, so front
   ends can report per-run (not process-cumulative) numbers *)
let m_hits = Mdh_obs.Metrics.counter "atf.cost_cache.hits"
let m_misses = Mdh_obs.Metrics.counter "atf.cost_cache.misses"

let record ~hit = Mdh_obs.Metrics.incr (if hit then m_hits else m_misses)

let context ?include_transfers md dev cg =
  let prefix =
    Memo.key
      [ Format.asprintf "%a" Md_hom.pp md;
        dev.Device.device_name;
        cg.Cost.cg_name;
        Printf.sprintf "%h" cg.Cost.base_compute_eff;
        Printf.sprintf "%h" cg.Cost.base_bw_eff;
        (match include_transfers with
        | None -> "default-transfers"
        | Some b -> string_of_bool b) ]
  in
  { md; dev; cg; include_transfers; prefix }

let context_key ctx = ctx.prefix

let schedule_key ctx schedule = Memo.key [ ctx.prefix; Schedule.to_string schedule ]

let seconds ctx schedule =
  (* chaos hook: lets the fault layer model a cost evaluation that dies or
     stalls mid-search (fires per call, cached or not, so trigger counts
     are independent of the cache state) *)
  Mdh_fault.Fault.hit "cost.eval";
  Memo.find_or_add ~record cache (schedule_key ctx schedule) (fun () ->
      Cost.seconds ?include_transfers:ctx.include_transfers ctx.md ctx.dev ctx.cg
        schedule)

let set_enabled enabled = Memo.set_enabled cache enabled
let enabled () = Memo.enabled cache

type stats = { n_hits : int; n_misses : int; n_entries : int }

let stats () =
  { n_hits = Mdh_obs.Metrics.value m_hits;
    n_misses = Mdh_obs.Metrics.value m_misses;
    n_entries = (Memo.stats cache).Memo.n_entries }

let reset_stats () =
  Mdh_obs.Metrics.reset_counter m_hits;
  Mdh_obs.Metrics.reset_counter m_misses;
  Memo.reset_stats cache

let clear () =
  Memo.clear cache;
  Mdh_obs.Metrics.reset_counter m_hits;
  Mdh_obs.Metrics.reset_counter m_misses
