(** Process-wide memoization of the analytic cost model.

    Tuning evaluates the same [(md_hom, device, codegen, schedule)] points
    over and over — annealing revisits neighbours, the baselines re-tune
    the same workloads, and `bench` sweeps the whole catalogue — so every
    [Cost.seconds] verdict (including the "illegal schedule" errors) is
    cached under a canonical key. The key digests the full printed MDH
    representation plus the device name and codegen profile; the device
    name is assumed to identify the device model.

    The table is safe to consult from multiple domains, and the hit/miss
    counters let benchmarks assert how many real cost-model evaluations a
    run performed (the acceptance check for warm tuning-database runs). *)

type ctx
(** Everything but the schedule, pre-digested once per tuning run. *)

val context :
  ?include_transfers:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Cost.codegen ->
  ctx

val context_key : ctx -> string
(** The canonical digest of [(md_hom, device, codegen, transfers)] — the
    tuning database builds its keys on top of this. *)

val schedule_key : ctx -> Mdh_lowering.Schedule.t -> string

val seconds : ctx -> Mdh_lowering.Schedule.t -> (float, string) result
(** Memoized [Cost.seconds]. *)

val set_enabled : bool -> unit
(** Toggle the cache globally ([--no-cache]); disabled calls still count as
    misses so evaluation counting stays meaningful. *)

val enabled : unit -> bool

type stats = { n_hits : int; n_misses : int; n_entries : int }

val stats : unit -> stats
(** [n_misses] = real cost-model evaluations since the last reset. The
    counts live on the [Mdh_obs.Metrics] registry ([atf.cost_cache.hits] /
    [atf.cost_cache.misses]), so they appear in metrics reports and are
    resettable per tuning run — front ends reset them so successive
    workloads don't report each other's accumulated counts. *)

val reset_stats : unit -> unit
(** Zero the hit/miss counters (registry and in-table); cached entries
    are kept. *)

val clear : unit -> unit
