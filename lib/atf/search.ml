module Rng = Mdh_support.Rng
module Pool = Mdh_runtime.Pool
module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics

(* evaluation accounting lives on the registry (cheap atomic increments,
   always on); the best-so-far trajectory is a trace counter track,
   emitted only while tracing — neither influences the search itself, so
   results are bit-identical with observability on or off *)
let m_evals = Metrics.counter "atf.search.evaluations"
let m_improvements = Metrics.counter "atf.search.improvements"
let m_degraded = Metrics.counter "runtime.pool.degraded"

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
  trace : (int * float) list;
}

type state = {
  mutable s_best : Param.config option;
  mutable s_best_cost : float;
  mutable s_evals : int;
  mutable s_trace : (int * float) list;
}

let fresh () = { s_best = None; s_best_cost = infinity; s_evals = 0; s_trace = [] }

let record st config cost =
  st.s_evals <- st.s_evals + 1;
  Metrics.incr m_evals;
  match cost with
  | None -> None
  | Some c ->
    if c < st.s_best_cost then begin
      st.s_best <- Some config;
      st.s_best_cost <- c;
      st.s_trace <- (st.s_evals, c) :: st.s_trace;
      Metrics.incr m_improvements;
      Trace.counter_event ~cat:"atf" "search.best_cost_s" c
    end;
    Some c

let evaluate st cost config = record st config (cost config)

let finish st =
  match st.s_best with
  | None -> None
  | Some best ->
    Some
      { best; best_cost = st.s_best_cost; evaluations = st.s_evals;
        trace = List.rev st.s_trace }

(* graceful pool degradation: a failed or timed-out parallel fan-out is
   retried sequentially in the caller instead of aborting the tuning run.
   Deterministic searches make the retry exact — the same candidates are
   re-evaluated in the same order (and a one-shot injected fault has
   already fired). A fault that also fires sequentially still propagates. *)
let degraded_once = Atomic.make false

let note_degraded what exn =
  Metrics.incr m_degraded;
  if not (Atomic.exchange degraded_once true) then
    Printf.eprintf
      "mdh: pool: %s failed (%s); degrading to sequential execution\n%!" what
      (Printexc.to_string exn)

let evaluate_batch ?pool ~cost configs =
  let n = Array.length configs in
  let sequentially () = Array.map cost configs in
  match pool with
  | None -> sequentially ()
  | Some pool -> (
    (* pool-managed evaluation is fault-tolerant whatever the worker
       count: on a single-core host the pool has no extra domains and the
       batch runs sequentially, but a failed attempt is still retried
       (the cost memo makes the replay cheap and deterministic) *)
    let attempt () =
      if n > 1 && Pool.num_workers pool > 1 && not (Pool.degraded pool) then begin
        let costs = Array.make n None in
        Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> costs.(i) <- cost configs.(i));
        costs
      end
      else sequentially ()
    in
    try attempt ()
    with exn ->
      note_degraded "cost-evaluation batch" exn;
      sequentially ())

(* evaluating a batch out-of-order is only observable through the state
   updates, so fan the cost calls out and absorb them in index order: the
   best/trace/evaluation bookkeeping is bit-identical to a sequential
   loop. Absorption proceeds in bounded chunks so a deadline can stop
   the search between chunks (partial results stay well-defined). *)
let absorb_chunk = 64

let absorb_batch ?pool ?(should_stop = fun () -> false) st ~cost configs =
  let n = Array.length configs in
  let i = ref 0 in
  while !i < n && not (should_stop ()) do
    let stop = min n (!i + absorb_chunk) in
    let chunk = Array.sub configs !i (stop - !i) in
    let costs = evaluate_batch ?pool ~cost chunk in
    Array.iteri (fun j config -> ignore (record st config costs.(j))) chunk;
    i := stop
  done

let exhaustive ?pool ?should_stop space ~cost =
  Trace.with_span ~cat:"atf" "search.exhaustive" @@ fun () ->
  let st = fresh () in
  absorb_batch ?pool ?should_stop st ~cost (Array.of_list (Space.enumerate space));
  finish st

let random_search ?pool ?should_stop space ~seed ~budget ~cost =
  Trace.with_span ~cat:"atf" "search.random"
    ~args:[ ("seed", string_of_int seed) ]
  @@ fun () ->
  let st = fresh () in
  let rng = Rng.create seed in
  (* sampling never depends on the costs, so draw the full candidate list
     up front (sequential rng) and evaluate it as one batch; the attempt
     cap bounds the draw over spaces where most samples dead-end *)
  let candidates = ref [] in
  let drawn = ref 0 and attempts = ref 0 in
  while !drawn < budget && !attempts < budget * 10 do
    incr attempts;
    match Space.sample space rng with
    | None -> ()
    | Some config ->
      candidates := config :: !candidates;
      incr drawn
  done;
  absorb_batch ?pool ?should_stop st ~cost (Array.of_list (List.rev !candidates));
  finish st

(* --- simulated annealing as an explicit, checkpointable chain state ---

   The complete progress of one annealing chain is a small first-order
   value: the rng state (one int64), the evaluation count, the best /
   current points and the cooling scale. Running a chain is a pure step
   function over that state, which is what makes deadline suspension and
   crash-safe resume bit-identical to an uninterrupted run: resuming
   from a snapshot replays the exact rng draw sequence the uninterrupted
   chain would have made. *)

type chain_state = {
  cs_seed : int;
  cs_rng : int64;
  cs_evals : int;
  cs_best : Param.config option;
  cs_best_cost : float;
  cs_trace : (int * float) list; (* newest improvement first, like [state] *)
  cs_current : (Param.config * float) option; (* None until init succeeds *)
  cs_t0 : float; (* cooling scale, fixed by the initial point *)
  cs_done : bool;
}

let chain_start ~seed =
  { cs_seed = seed; cs_rng = Rng.state (Rng.create seed); cs_evals = 0;
    cs_best = None; cs_best_cost = infinity; cs_trace = []; cs_current = None;
    cs_t0 = 0.0; cs_done = false }

let chain_result state =
  match state.cs_best with
  | None -> None
  | Some best ->
    Some
      { best; best_cost = state.cs_best_cost; evaluations = state.cs_evals;
        trace = List.rev state.cs_trace }

let anneal_chain ?(should_stop = fun () -> false) ?on_progress
    ?(progress_every = 64) space ~budget ~cost state =
  if state.cs_done then state
  else
    Trace.with_span ~cat:"atf" "search.anneal"
      ~args:[ ("seed", string_of_int state.cs_seed) ]
    @@ fun () ->
    let progress_every = max 1 progress_every in
    let st =
      { s_best = state.cs_best; s_best_cost = state.cs_best_cost;
        s_evals = state.cs_evals; s_trace = state.cs_trace }
    in
    let rng = Rng.of_state state.cs_rng in
    let snapshot ~current ~t0 ~done_ =
      { state with cs_rng = Rng.state rng; cs_evals = st.s_evals;
        cs_best = st.s_best; cs_best_cost = st.s_best_cost;
        cs_trace = st.s_trace; cs_current = current; cs_t0 = t0;
        cs_done = done_ }
    in
    let init =
      match state.cs_current with
      | Some (current, current_cost) -> Some (current, current_cost, state.cs_t0)
      | None ->
        (* the initial point is found in one uninterruptible burst (at
           most 100 draws), so a checkpointed chain is always either
           un-started or past initialization *)
        let rec initial tries =
          if tries = 0 then None
          else
            match Space.sample space rng with
            | None -> initial (tries - 1)
            | Some config -> (
              match evaluate st cost config with
              | Some c -> Some (config, c)
              | None -> initial (tries - 1))
        in
        Option.map
          (fun (start, start_cost) ->
            (start, start_cost, Float.max 1e-30 (start_cost *. 0.5)))
          (initial 100)
    in
    match init with
    | None -> snapshot ~current:None ~t0:0.0 ~done_:true
    | Some (start, start_cost, t0) ->
      let current = ref start and current_cost = ref start_cost in
      let notify done_ =
        match on_progress with
        | None -> ()
        | Some f ->
          f (snapshot ~current:(Some (!current, !current_cost)) ~t0 ~done_)
      in
      let paused = ref false in
      while st.s_evals < budget && not !paused do
        if should_stop () then paused := true
        else begin
          let progress = float_of_int st.s_evals /. float_of_int budget in
          let temp = t0 *. exp (-5.0 *. progress) in
          let candidate = Space.neighbour space rng !current in
          (match evaluate st cost candidate with
          | None -> ()
          | Some c ->
            let accept =
              c < !current_cost
              || Rng.float rng 1.0 < exp ((!current_cost -. c) /. Float.max 1e-30 temp)
            in
            if accept then begin
              current := candidate;
              current_cost := c
            end);
          if st.s_evals mod progress_every = 0 then notify false
        end
      done;
      let final =
        snapshot ~current:(Some (!current, !current_cost)) ~t0
          ~done_:(st.s_evals >= budget)
      in
      if final.cs_done then notify true;
      final

let simulated_annealing ?should_stop space ~seed ~budget ~cost =
  chain_result (anneal_chain ?should_stop space ~budget ~cost (chain_start ~seed))

(* combine chain results: keep the best chain; ties go to the earliest
   seed in the list, so the winner is a function of the seed list alone,
   parallel or sequential; evaluations sum over every chain that
   produced a result *)
let combine_chain_results chains =
  let evaluations =
    Array.fold_left
      (fun acc -> function Some r -> acc + r.evaluations | None -> acc)
      0 chains
  in
  let winner =
    Array.fold_left
      (fun acc chain ->
        match (acc, chain) with
        | None, c -> c
        | (Some _ as a), None -> a
        | Some a, Some c -> if c.best_cost < a.best_cost then chain else acc)
      None chains
  in
  Option.map (fun r -> { r with evaluations }) winner

type portfolio_outcome =
  | Portfolio_done of result option
  | Portfolio_paused of chain_state array

let anneal_portfolio ?pool ?should_stop ?on_progress ?progress_every space
    ~chains ~budget ~cost =
  let run i state () =
    anneal_chain ?should_stop
      ?on_progress:(Option.map (fun f s -> f i s) on_progress)
      ?progress_every space ~budget ~cost state
  in
  let thunks = Array.mapi run chains in
  let sequentially () = Array.map (fun thunk -> thunk ()) thunks in
  let states =
    match pool with
    | None -> sequentially ()
    | Some pool -> (
      let attempt () =
        if
          Array.length thunks > 1
          && Pool.num_workers pool > 1
          && not (Pool.degraded pool)
        then Pool.run_in_parallel pool thunks
        else sequentially ()
      in
      (* rerun every chain sequentially from its given (immutable)
         starting state: deterministic, so the fallback result is the
         one the failed attempt would have produced. This holds on a
         single-core host too, where the pool has no extra domains and
         even the first attempt runs sequentially. *)
      try attempt ()
      with exn ->
        note_degraded "annealing portfolio" exn;
        sequentially ())
  in
  if Array.exists (fun s -> not s.cs_done) states then Portfolio_paused states
  else Portfolio_done (combine_chain_results (Array.map chain_result states))

let simulated_annealing_portfolio ?pool space ~seeds ~budget ~cost =
  match seeds with
  | [] -> None
  | seeds -> (
    let chains =
      Array.of_list (List.map (fun seed -> chain_start ~seed) seeds)
    in
    match anneal_portfolio ?pool space ~chains ~budget ~cost with
    | Portfolio_done r -> r
    | Portfolio_paused _ -> assert false (* no should_stop was supplied *))
