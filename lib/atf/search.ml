module Rng = Mdh_support.Rng
module Pool = Mdh_runtime.Pool
module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics

(* evaluation accounting lives on the registry (cheap atomic increments,
   always on); the best-so-far trajectory is a trace counter track,
   emitted only while tracing — neither influences the search itself, so
   results are bit-identical with observability on or off *)
let m_evals = Metrics.counter "atf.search.evaluations"
let m_improvements = Metrics.counter "atf.search.improvements"

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
  trace : (int * float) list;
}

type state = {
  mutable s_best : Param.config option;
  mutable s_best_cost : float;
  mutable s_evals : int;
  mutable s_trace : (int * float) list;
}

let fresh () = { s_best = None; s_best_cost = infinity; s_evals = 0; s_trace = [] }

let record st config cost =
  st.s_evals <- st.s_evals + 1;
  Metrics.incr m_evals;
  match cost with
  | None -> None
  | Some c ->
    if c < st.s_best_cost then begin
      st.s_best <- Some config;
      st.s_best_cost <- c;
      st.s_trace <- (st.s_evals, c) :: st.s_trace;
      Metrics.incr m_improvements;
      Trace.counter_event ~cat:"atf" "search.best_cost_s" c
    end;
    Some c

let evaluate st cost config = record st config (cost config)

let finish st =
  match st.s_best with
  | None -> None
  | Some best ->
    Some
      { best; best_cost = st.s_best_cost; evaluations = st.s_evals;
        trace = List.rev st.s_trace }

let evaluate_batch ?pool ~cost configs =
  let n = Array.length configs in
  match pool with
  | Some pool when n > 1 && Pool.num_workers pool > 1 ->
    let costs = Array.make n None in
    Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> costs.(i) <- cost configs.(i));
    costs
  | _ -> Array.map cost configs

(* evaluating a batch out-of-order is only observable through the state
   updates, so fan the cost calls out and absorb them in index order: the
   best/trace/evaluation bookkeeping is bit-identical to a sequential loop *)
let absorb_batch ?pool st ~cost configs =
  let costs = evaluate_batch ?pool ~cost configs in
  Array.iteri (fun i config -> ignore (record st config costs.(i))) configs

let exhaustive ?pool space ~cost =
  Trace.with_span ~cat:"atf" "search.exhaustive" @@ fun () ->
  let st = fresh () in
  absorb_batch ?pool st ~cost (Array.of_list (Space.enumerate space));
  finish st

let random_search ?pool space ~seed ~budget ~cost =
  Trace.with_span ~cat:"atf" "search.random"
    ~args:[ ("seed", string_of_int seed) ]
  @@ fun () ->
  let st = fresh () in
  let rng = Rng.create seed in
  (* sampling never depends on the costs, so draw the full candidate list
     up front (sequential rng) and evaluate it as one batch; the attempt
     cap bounds the draw over spaces where most samples dead-end *)
  let candidates = ref [] in
  let drawn = ref 0 and attempts = ref 0 in
  while !drawn < budget && !attempts < budget * 10 do
    incr attempts;
    match Space.sample space rng with
    | None -> ()
    | Some config ->
      candidates := config :: !candidates;
      incr drawn
  done;
  absorb_batch ?pool st ~cost (Array.of_list (List.rev !candidates));
  finish st

let simulated_annealing space ~seed ~budget ~cost =
  (* one span per chain: under a portfolio these run on pool worker
     domains, exercising the per-domain trace buffers *)
  Trace.with_span ~cat:"atf" "search.anneal"
    ~args:[ ("seed", string_of_int seed) ]
  @@ fun () ->
  let st = fresh () in
  let rng = Rng.create seed in
  let rec initial tries =
    if tries = 0 then None
    else
      match Space.sample space rng with
      | None -> initial (tries - 1)
      | Some config -> (
        match evaluate st cost config with
        | Some c -> Some (config, c)
        | None -> initial (tries - 1))
  in
  (match initial 100 with
  | None -> ()
  | Some (start, start_cost) ->
    let current = ref start and current_cost = ref start_cost in
    let t0 = Float.max 1e-30 (start_cost *. 0.5) in
    while st.s_evals < budget do
      let progress = float_of_int st.s_evals /. float_of_int budget in
      let temp = t0 *. exp (-5.0 *. progress) in
      let candidate = Space.neighbour space rng !current in
      match evaluate st cost candidate with
      | None -> ()
      | Some c ->
        let accept =
          c < !current_cost
          || Rng.float rng 1.0 < exp ((!current_cost -. c) /. Float.max 1e-30 temp)
        in
        if accept then begin
          current := candidate;
          current_cost := c
        end
    done);
  finish st

let simulated_annealing_portfolio ?pool space ~seeds ~budget ~cost =
  match seeds with
  | [] -> None
  | [ seed ] -> simulated_annealing space ~seed ~budget ~cost
  | seeds ->
    let seeds = Array.of_list seeds in
    let chains =
      let run seed () = simulated_annealing space ~seed ~budget ~cost in
      match pool with
      | Some pool when Pool.num_workers pool > 1 ->
        Pool.run_in_parallel pool (Array.map run seeds)
      | _ -> Array.map (fun seed -> run seed ()) seeds
    in
    let evaluations =
      Array.fold_left
        (fun acc -> function Some r -> acc + r.evaluations | None -> acc)
        0 chains
    in
    (* keep the best chain; ties go to the earliest seed in the list, so
       the winner is a function of the seed list alone, parallel or not *)
    let winner =
      Array.fold_left
        (fun acc chain ->
          match (acc, chain) with
          | None, c -> c
          | (Some _ as a), None -> a
          | Some a, Some c -> if c.best_cost < a.best_cost then chain else acc)
        None chains
    in
    Option.map (fun r -> { r with evaluations }) winner
