(** Search strategies over a tuning space. The cost function returns [None]
    for configurations the cost model rejects (illegal schedules); all
    strategies skip them. The budget counts cost evaluations — the
    reproduction's stand-in for the paper's 12-hour wall-clock tuning
    budget.

    Every strategy is deterministic in its seed(s), with or without a
    worker pool: parallelism only changes who computes each cost, never
    which candidates are drawn or how ties are resolved. The cost function
    must be pure and safe to call from multiple domains.

    Robustness: a parallel fan-out that fails or times out (worker fault,
    watchdog) is retried sequentially in the caller — counted as
    [runtime.pool.degraded] — instead of aborting the search; determinism
    makes the retry produce the identical result. Annealing additionally
    exposes its complete per-chain progress as a {!chain_state} value, so
    a deadline ([should_stop]) can suspend a search and a later process
    can resume it bit-identically. *)

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
      (** Cost-model evaluations this search performed; [0] marks a result
          recalled from the tuning database without searching. *)
  trace : (int * float) list;
      (** (evaluation index, best-so-far) at every improvement *)
}

val evaluate_batch :
  ?pool:Mdh_runtime.Pool.t ->
  cost:(Param.config -> float option) ->
  Param.config array ->
  float option array
(** Cost every configuration, fanning the evaluations across the pool when
    one is given (order of results always matches the input order). Falls
    back to a sequential pass when the pool fan-out raises or times out. *)

val exhaustive :
  ?pool:Mdh_runtime.Pool.t ->
  ?should_stop:(unit -> bool) ->
  Space.t -> cost:(Param.config -> float option) ->
  result option
(** Evaluate every configuration (capped at 100k); [None] when the space has
    no valid configuration. [should_stop] is polled between evaluation
    chunks; stopping early returns the best of what was evaluated. *)

val random_search :
  ?pool:Mdh_runtime.Pool.t ->
  ?should_stop:(unit -> bool) ->
  Space.t -> seed:int -> budget:int ->
  cost:(Param.config -> float option) -> result option
(** Uniform sampling. Sampling is rng-only (costs never steer it), so the
    candidate list is drawn sequentially and costed as one batch; at most
    [10 x budget] draw attempts guard against spaces where most samples
    dead-end. [should_stop] as in {!exhaustive}. *)

(** {1 Checkpointable simulated annealing} *)

type chain_state = {
  cs_seed : int;
  cs_rng : int64;  (** complete rng state ({!Mdh_support.Rng.state}) *)
  cs_evals : int;
  cs_best : Param.config option;
  cs_best_cost : float;
  cs_trace : (int * float) list;  (** newest improvement first *)
  cs_current : (Param.config * float) option;  (** [None] until init *)
  cs_t0 : float;  (** cooling scale, fixed by the initial point *)
  cs_done : bool;
}
(** The complete progress of one annealing chain. Resuming a chain from a
    snapshot replays the exact rng draw sequence of an uninterrupted run,
    so the final result is bit-identical however often the chain was
    suspended in between. *)

val chain_start : seed:int -> chain_state

val chain_result : chain_state -> result option
(** The chain's result so far; [None] when no legal point was found. *)

val anneal_chain :
  ?should_stop:(unit -> bool) ->
  ?on_progress:(chain_state -> unit) ->
  ?progress_every:int ->
  Space.t -> budget:int -> cost:(Param.config -> float option) ->
  chain_state -> chain_state
(** Advance one chain until its budget is consumed, no legal start is
    found, or [should_stop] fires between evaluations. [on_progress] is
    invoked with a resumable snapshot every [progress_every] (default 64)
    evaluations and once on completion — the checkpoint hook. *)

val simulated_annealing :
  ?should_stop:(unit -> bool) ->
  Space.t -> seed:int -> budget:int -> cost:(Param.config -> float option) ->
  result option
(** Random restart + neighbourhood walk with exponential cooling. A single
    chain is inherently sequential; for parallelism use
    {!simulated_annealing_portfolio}. *)

type portfolio_outcome =
  | Portfolio_done of result option
  | Portfolio_paused of chain_state array
      (** At least one chain was suspended by [should_stop]; the array
          holds every chain's resumable state (index-aligned with the
          input). *)

val anneal_portfolio :
  ?pool:Mdh_runtime.Pool.t ->
  ?should_stop:(unit -> bool) ->
  ?on_progress:(int -> chain_state -> unit) ->
  ?progress_every:int ->
  Space.t -> chains:chain_state array -> budget:int ->
  cost:(Param.config -> float option) ->
  portfolio_outcome
(** Run (or resume) a portfolio of chains, one per state, each to the given
    per-chain budget; chains run across the pool when one is given.
    [on_progress] receives the chain index alongside each snapshot.
    Combination is deterministic in the chain list (ties to the earliest),
    with [evaluations] summed over chains that produced a result. *)

val simulated_annealing_portfolio :
  ?pool:Mdh_runtime.Pool.t -> Space.t -> seeds:int list -> budget:int ->
  cost:(Param.config -> float option) -> result option
(** K independent fresh annealing chains, one per seed — deterministic
    given the seed list, parallel or sequential. *)
