(** Search strategies over a tuning space. The cost function returns [None]
    for configurations the cost model rejects (illegal schedules); all
    strategies skip them. The budget counts cost evaluations — the
    reproduction's stand-in for the paper's 12-hour wall-clock tuning
    budget.

    Every strategy is deterministic in its seed(s), with or without a
    worker pool: parallelism only changes who computes each cost, never
    which candidates are drawn or how ties are resolved. The cost function
    must be pure and safe to call from multiple domains. *)

type result = {
  best : Param.config;
  best_cost : float;
  evaluations : int;
      (** Cost-model evaluations this search performed; [0] marks a result
          recalled from the tuning database without searching. *)
  trace : (int * float) list;
      (** (evaluation index, best-so-far) at every improvement *)
}

val evaluate_batch :
  ?pool:Mdh_runtime.Pool.t ->
  cost:(Param.config -> float option) ->
  Param.config array ->
  float option array
(** Cost every configuration, fanning the evaluations across the pool when
    one is given (order of results always matches the input order). *)

val exhaustive :
  ?pool:Mdh_runtime.Pool.t -> Space.t -> cost:(Param.config -> float option) ->
  result option
(** Evaluate every configuration (capped at 100k); [None] when the space has
    no valid configuration. *)

val random_search :
  ?pool:Mdh_runtime.Pool.t -> Space.t -> seed:int -> budget:int ->
  cost:(Param.config -> float option) -> result option
(** Uniform sampling. Sampling is rng-only (costs never steer it), so the
    candidate list is drawn sequentially and costed as one batch; at most
    [10 x budget] draw attempts guard against spaces where most samples
    dead-end. *)

val simulated_annealing :
  Space.t -> seed:int -> budget:int -> cost:(Param.config -> float option) ->
  result option
(** Random restart + neighbourhood walk with exponential cooling. A single
    chain is inherently sequential; for parallelism use
    {!simulated_annealing_portfolio}. *)

val simulated_annealing_portfolio :
  ?pool:Mdh_runtime.Pool.t -> Space.t -> seeds:int list -> budget:int ->
  cost:(Param.config -> float option) -> result option
(** K independent annealing chains, one per seed, each with the given
    per-chain budget; chains run across the pool when one is given. Keeps
    the best chain's result (ties resolved to the earliest seed in the
    list) with [evaluations] summed over all chains — deterministic given
    the seed list, parallel or sequential. *)
