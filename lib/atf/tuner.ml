module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Cost = Mdh_lowering.Cost

module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics
module Clock = Mdh_obs.Clock

let m_runs = Metrics.counter "atf.tuner.runs"
let m_db_recalls = Metrics.counter "atf.tuner.db_recalls"
let m_tune_s = Metrics.histogram "atf.tuner.tune_s"

type strategy = Exhaustive | Random | Anneal | Auto

type tuning = {
  schedule : Schedule.t;
  estimated_s : float;
  search : Search.result;
  from_db : bool;
}

let tile_param_name d = Printf.sprintf "tile_%d" d

let space ?parallel_options (md : Md_hom.t) (dev : Device.t) =
  let rank = Md_hom.rank md in
  let bytes_per_point = max 4 (Md_hom.bytes_read_per_point md) in
  (* interdependence: the points covered by a tile must fit a generous
     multiple of the mid-level cache, pruning hopeless tile combinations *)
  let budget_points =
    let mid =
      if Array.length dev.Device.mem > 1 then dev.Device.mem.(1) else Device.top_level dev
    in
    max 4 (8 * mid.Device.capacity_bytes / bytes_per_point)
  in
  let tile_params =
    List.init rank (fun d ->
        Param.dependent (tile_param_name d) (fun config ->
            let used =
              List.fold_left
                (fun acc (name, v) ->
                  if String.length name >= 5 && String.sub name 0 5 = "tile_" then acc * v
                  else acc)
                1 config
            in
            List.filter
              (fun t -> t = 1 || t * used <= budget_points)
              (Lower.tile_options md ~dim:d)))
  in
  let par_options =
    Array.of_list
      (match parallel_options with
      | Some options -> options
      | None -> Lower.parallel_dim_options md)
  in
  let par_param = Param.independent "par" (List.init (Array.length par_options) Fun.id) in
  let decode config =
    let tiles = Array.init rank (fun d -> Param.value config (tile_param_name d)) in
    let par = par_options.(Param.value config "par") in
    { Schedule.tile_sizes = tiles; parallel_dims = par;
      used_layers = List.init (Array.length dev.Device.layers) Fun.id }
  in
  (Space.make (tile_params @ [ par_param ]), decode)

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Random -> "random"
  | Anneal -> "anneal"
  | Auto -> "auto"

let db_key ~ctx ~strategy ~budget ~seed ~chains ~parallel_options =
  Mdh_support.Memo.key
    [ "tune-v1";
      Cost_cache.context_key ctx;
      strategy_name strategy;
      string_of_int budget;
      string_of_int seed;
      string_of_int chains;
      (match parallel_options with
      | None -> "default-par"
      | Some options ->
        String.concat ";"
          (List.map
             (fun dims -> String.concat "," (List.map string_of_int dims))
             options)) ]

let db_hit_result estimated_s =
  { Search.best = []; best_cost = estimated_s; evaluations = 0; trace = [] }

let tune ?(strategy = Auto) ?(budget = 400) ?(seed = 1) ?(chains = 1) ?pool
    ?include_transfers ?parallel_options ?db md dev cg =
  let chains = max 1 chains in
  Metrics.incr m_runs;
  let t_start = Clock.now_ns () in
  let result =
    Trace.with_span ~cat:"atf" "tuner.tune"
      ~args:
        [ ("workload", md.Md_hom.hom_name);
          ("device", dev.Device.device_name);
          ("strategy", strategy_name strategy);
          ("budget", string_of_int budget) ]
    @@ fun () ->
    let ctx = Cost_cache.context ?include_transfers md dev cg in
    let db = match db with Some _ as d -> d | None -> Tuning_db.ambient () in
    let key = db_key ~ctx ~strategy ~budget ~seed ~chains ~parallel_options in
    let recalled =
      Trace.with_span ~cat:"atf" "tuner.db_lookup" (fun () ->
          Option.bind db (fun d -> Tuning_db.find d key))
    in
    match recalled with
    | Some (schedule, estimated_s) ->
      Metrics.incr m_db_recalls;
      Ok { schedule; estimated_s; search = db_hit_result estimated_s; from_db = true }
    | None -> (
      let sp, decode =
        Trace.with_span ~cat:"atf" "tuner.space_build" (fun () ->
            space ?parallel_options md dev)
      in
      let cost config =
        match Cost_cache.seconds ctx (decode config) with
        | Ok s -> Some s
        | Error _ -> None
      in
      let anneal () =
        (* K independent chains splitting the budget; the seed list depends
           only on (seed, chains), so the outcome is identical with or
           without a pool *)
        Search.simulated_annealing_portfolio ?pool sp
          ~seeds:(List.init chains (fun i -> seed + i))
          ~budget:(max 1 (budget / chains))
          ~cost
      in
      let search_result =
        Trace.with_span ~cat:"atf" "tuner.search" (fun () ->
            match strategy with
            | Exhaustive -> Search.exhaustive ?pool sp ~cost
            | Random -> Search.random_search ?pool sp ~seed ~budget ~cost
            | Anneal -> anneal ()
            | Auto ->
              if Space.size ~cap:(budget + 1) sp <= budget then
                Search.exhaustive ?pool sp ~cost
              else anneal ())
      in
      match search_result with
      | None -> Error "tuning found no legal schedule"
      | Some search ->
        (* floor the stochastic search at the heuristic starting point: the
           default tiles with the first (largest) allowed parallel set *)
        let searched = decode search.Search.best in
        let floor_schedule =
          { (Lower.mdh_default md dev) with
            Schedule.parallel_dims =
              (match parallel_options with
              | Some (first :: _) -> first
              | Some [] | None -> Lower.parallelisable_dims md) }
        in
        let schedule, estimated_s =
          match Cost_cache.seconds ctx floor_schedule with
          | Ok floor_s when floor_s < search.Search.best_cost -> (floor_schedule, floor_s)
          | _ -> (searched, search.Search.best_cost)
        in
        Option.iter (fun d -> Tuning_db.store d key schedule estimated_s) db;
        Ok { schedule; estimated_s; search; from_db = false })
  in
  Metrics.observe m_tune_s (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t_start));
  result
