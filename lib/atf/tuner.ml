module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Lower = Mdh_lowering.Lower
module Cost = Mdh_lowering.Cost

module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics
module Clock = Mdh_obs.Clock
module Crc32 = Mdh_support.Crc32
module Fault = Mdh_fault.Fault

let m_runs = Metrics.counter "atf.tuner.runs"
let m_db_recalls = Metrics.counter "atf.tuner.db_recalls"
let m_tune_s = Metrics.histogram "atf.tuner.tune_s"
let m_ckpt_writes = Metrics.counter "atf.checkpoint.writes"
let m_ckpt_resumes = Metrics.counter "atf.checkpoint.resumes"
let m_ckpt_corrupt = Metrics.counter "atf.checkpoint.corrupt"

type strategy = Exhaustive | Random | Anneal | Auto

type tuning = {
  schedule : Schedule.t;
  estimated_s : float;
  search : Search.result;
  from_db : bool;
}

let tile_param_name d = Printf.sprintf "tile_%d" d

let space ?parallel_options ?(saturate = false) (md : Md_hom.t) (dev : Device.t) =
  let rank = Md_hom.rank md in
  let bytes_per_point = max 4 (Md_hom.bytes_read_per_point md) in
  (* interdependence: the points covered by a tile must fit a generous
     multiple of the mid-level cache, pruning hopeless tile combinations *)
  let budget_points =
    let mid =
      if Array.length dev.Device.mem > 1 then dev.Device.mem.(1) else Device.top_level dev
    in
    max 4 (8 * mid.Device.capacity_bytes / bytes_per_point)
  in
  let tile_params =
    List.init rank (fun d ->
        (* rewrite-aware pruning: on a dimension of extent > 1, tile size 1
           plans the same sequential sweep as the full extent but cut into
           unit tiles — exactly the structure the plan rewriter's unit-tile
           elimination removes — so the saturated space need not search it *)
        let base =
          let all = Lower.tile_options md ~dim:d in
          if saturate && md.Md_hom.sizes.(d) > 1 then
            match List.filter (fun t -> t <> 1) all with
            | [] -> all
            | pruned -> pruned
          else all
        in
        Param.dependent (tile_param_name d) (fun config ->
            let used =
              List.fold_left
                (fun acc (name, v) ->
                  if String.length name >= 5 && String.sub name 0 5 = "tile_" then acc * v
                  else acc)
                1 config
            in
            match List.filter (fun t -> t = 1 || t * used <= budget_points) base with
            | [] ->
              (* tile 1 was pruned and every remaining tile busts the cache
                 budget: keep the smallest so the dimension stays legal *)
              [ List.fold_left min max_int base ]
            | options -> options))
  in
  let par_options =
    Array.of_list
      (match parallel_options with
      | Some options -> options
      | None -> Lower.parallel_dim_options md)
  in
  let par_param = Param.independent "par" (List.init (Array.length par_options) Fun.id) in
  let decode config =
    let tiles = Array.init rank (fun d -> Param.value config (tile_param_name d)) in
    let par = par_options.(Param.value config "par") in
    { Schedule.tile_sizes = tiles; parallel_dims = par;
      used_layers = List.init (Array.length dev.Device.layers) Fun.id }
  in
  (Space.make (tile_params @ [ par_param ]), decode)

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Random -> "random"
  | Anneal -> "anneal"
  | Auto -> "auto"

let db_key ~ctx ~strategy ~budget ~seed ~chains ~parallel_options ~saturate =
  Mdh_support.Memo.key
    ([ "tune-v1";
       Cost_cache.context_key ctx;
       strategy_name strategy;
       string_of_int budget;
       string_of_int seed;
       string_of_int chains;
       (match parallel_options with
       | None -> "default-par"
       | Some options ->
         String.concat ";"
           (List.map
              (fun dims -> String.concat "," (List.map string_of_int dims))
              options)) ]
    (* appended only when rewriting, so pre-existing database entries for
       raw searches keep their keys *)
    @ if saturate then [ "+rewrite" ] else [])

let db_hit_result estimated_s =
  { Search.best = []; best_cost = estimated_s; evaluations = 0; trace = [] }

(* --- crash-safe annealing checkpoints ---

   A checkpoint is a small text file: one CRC-framed header naming the
   tuning request (its database key plus the portfolio shape) and one
   CRC-framed line per annealing chain holding that chain's complete
   {!Search.chain_state}. Floats are serialized with [%h] and the rng
   state with [%Lx], so every value round-trips exactly — which is what
   makes a resumed search bit-identical to an uninterrupted one. The file
   is replaced atomically (tmp + rename); a torn or corrupt checkpoint is
   therefore only possible through outside interference, and is answered
   by starting the search afresh, never by aborting. *)

let ckpt_magic = "mdh-ckpt-v1"

let config_to_string = function
  | [] -> "."
  | config ->
    String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) config)

let config_of_string = function
  | "." -> Some []
  | s ->
    let binding b =
      match String.index_opt b '=' with
      | None -> None
      | Some i ->
        Option.map
          (fun v -> (String.sub b 0 i, v))
          (int_of_string_opt (String.sub b (i + 1) (String.length b - i - 1)))
    in
    List.fold_right
      (fun b acc ->
        match (binding b, acc) with Some kv, Some l -> Some (kv :: l) | _ -> None)
      (String.split_on_char ',' s) (Some [])

let trace_to_string = function
  | [] -> "."
  | trace ->
    String.concat ";"
      (List.map (fun (i, c) -> Printf.sprintf "%d:%h" i c) trace)

let trace_of_string = function
  | "." -> Some []
  | s ->
    let entry e =
      match String.index_opt e ':' with
      | None -> None
      | Some i -> (
        match
          ( int_of_string_opt (String.sub e 0 i),
            float_of_string_opt (String.sub e (i + 1) (String.length e - i - 1)) )
        with
        | Some idx, Some c -> Some (idx, c)
        | _ -> None)
    in
    List.fold_right
      (fun e acc ->
        match (entry e, acc) with Some ic, Some l -> Some (ic :: l) | _ -> None)
      (String.split_on_char ';' s) (Some [])

let framed body = Printf.sprintf "%s\t%s" body (Crc32.to_hex (Crc32.string body))

(* [Some body] iff the line's trailing CRC matches *)
let unframed line =
  match String.rindex_opt line '\t' with
  | None -> None
  | Some i ->
    let body = String.sub line 0 i in
    let crc = String.sub line (i + 1) (String.length line - i - 1) in
    if Crc32.of_hex crc = Some (Crc32.string body) then Some body else None

let chain_to_line (s : Search.chain_state) =
  framed
    (String.concat "\t"
       [ string_of_int s.Search.cs_seed;
         Printf.sprintf "%Lx" s.Search.cs_rng;
         string_of_int s.Search.cs_evals;
         (match s.Search.cs_best with None -> "-" | Some c -> config_to_string c);
         Printf.sprintf "%h" s.Search.cs_best_cost;
         trace_to_string s.Search.cs_trace;
         (match s.Search.cs_current with
         | None -> "-"
         | Some (c, _) -> config_to_string c);
         (match s.Search.cs_current with
         | None -> "-"
         | Some (_, c) -> Printf.sprintf "%h" c);
         Printf.sprintf "%h" s.Search.cs_t0;
         (if s.Search.cs_done then "1" else "0") ])

let chain_of_line line =
  Option.bind (unframed line) @@ fun body ->
  match String.split_on_char '\t' body with
  | [ seed; rng; evals; best; best_cost; trace; cur_cfg; cur_cost; t0; done_ ]
    -> (
    let int = int_of_string_opt and fl = float_of_string_opt in
    let rng =
      try Some (Int64.of_string ("0x" ^ rng)) with Failure _ -> None
    in
    let best =
      match best with "-" -> Some None | c -> Option.map Option.some (config_of_string c)
    in
    let current =
      match (cur_cfg, cur_cost) with
      | "-", "-" -> Some None
      | c, f -> (
        match (config_of_string c, fl f) with
        | Some c, Some f -> Some (Some (c, f))
        | _ -> None)
    in
    match
      ( int seed, rng, int evals, best, fl best_cost, trace_of_string trace,
        current, fl t0, done_ )
    with
    | ( Some cs_seed, Some cs_rng, Some cs_evals, Some cs_best,
        Some cs_best_cost, Some cs_trace, Some cs_current, Some cs_t0,
        ("0" | "1") ) ->
      Some
        { Search.cs_seed; cs_rng; cs_evals; cs_best; cs_best_cost; cs_trace;
          cs_current; cs_t0; cs_done = done_ = "1" }
    | _ -> None)
  | _ -> None

let default_checkpoint_path ~db key =
  let dir =
    match Option.bind db Tuning_db.path with
    | Some db_path -> Filename.dirname db_path
    | None -> Filename.get_temp_dir_name ()
  in
  Filename.concat dir (Printf.sprintf "mdh-%s.ckpt" key)

let ckpt_warned = Atomic.make false

let write_checkpoint ~path ~key ~budget ~chains ~seed slots =
  let header =
    framed
      (String.concat "\t"
         [ ckpt_magic; key; string_of_int budget; string_of_int chains;
           string_of_int seed ])
  in
  let lines = header :: List.map chain_to_line (Array.to_list slots) in
  let data = String.concat "\n" lines ^ "\n" in
  try
    Fault.hit "db.write";
    let data = Fault.mangle "db.write" data in
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
    Fault.hit "db.rename";
    Sys.rename tmp path;
    Metrics.incr m_ckpt_writes
  with Sys_error _ | Unix.Unix_error _ | Fault.Injected _ ->
    (* a failing checkpoint write never fails the tuning run — it only
       costs crash-safety, which is worth one warning *)
    if not (Atomic.exchange ckpt_warned true) then
      Printf.eprintf
        "mdh: warning: cannot write checkpoint %s; continuing without \
         crash-safety\n%!"
        path

type ckpt_read =
  | Ck_missing
  | Ck_corrupt
  | Ck_stale  (** well-formed, but for a different tuning request *)
  | Ck_ok of Search.chain_state array

let read_checkpoint ~path ~key ~chains =
  match
    (try
       Fault.hit "db.read";
       Some (In_channel.with_open_bin path In_channel.input_lines)
     with
    | Sys_error _ -> None
    | Fault.Injected _ | Unix.Unix_error _ -> Some [])
  with
  | None -> Ck_missing
  | Some [] -> Ck_corrupt
  | Some (header :: rest) -> (
    match Option.map (String.split_on_char '\t') (unframed header) with
    | Some [ magic; k; _budget; n; _seed ] when magic = ckpt_magic ->
      if k <> key || n <> string_of_int chains then Ck_stale
      else
        let states = List.filter_map chain_of_line rest in
        if List.length states = chains && List.length rest = chains then
          Ck_ok (Array.of_list states)
        else Ck_corrupt
    | _ -> Ck_corrupt)

let remove_checkpoint path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; path ^ ".tmp" ]

type outcome =
  | Tuned of tuning
  | Suspended of { checkpoint : string; evaluations : int }

let tune_resumable ?(strategy = Auto) ?(budget = 400) ?(seed = 1) ?(chains = 1)
    ?pool ?include_transfers ?parallel_options ?db ?deadline_s ?checkpoint
    ?(checkpoint_every = 64) ?(resume = false) ?should_stop ?(saturate = false)
    md dev cg =
  let chains = max 1 chains in
  (* tier-1 saturation first: the searched computation is the one that will
     execute, and its (possibly lower) flops_per_point feeds the cost model *)
  let md =
    if saturate then fst (Mdh_rewrite.Rewrite.saturate_outputs md) else md
  in
  Metrics.incr m_runs;
  let t_start = Clock.now_ns () in
  let result =
    Trace.with_span ~cat:"atf" "tuner.tune"
      ~args:
        [ ("workload", md.Md_hom.hom_name);
          ("device", dev.Device.device_name);
          ("strategy", strategy_name strategy);
          ("budget", string_of_int budget) ]
    @@ fun () ->
    let ctx = Cost_cache.context ?include_transfers md dev cg in
    let db = match db with Some _ as d -> d | None -> Tuning_db.ambient () in
    let key =
      db_key ~ctx ~strategy ~budget ~seed ~chains ~parallel_options ~saturate
    in
    let recalled =
      Trace.with_span ~cat:"atf" "tuner.db_lookup" (fun () ->
          Option.bind db (fun d -> Tuning_db.find d key))
    in
    match recalled with
    | Some (schedule, estimated_s) ->
      Metrics.incr m_db_recalls;
      Ok
        (Tuned
           { schedule; estimated_s; search = db_hit_result estimated_s;
             from_db = true })
    | None -> (
      let sp, decode =
        Trace.with_span ~cat:"atf" "tuner.space_build" (fun () ->
            space ?parallel_options ~saturate md dev)
      in
      let cost config =
        match Cost_cache.seconds ctx (decode config) with
        | Ok s -> Some s
        | Error _ -> None
      in
      let deadline_stop =
        Option.map
          (fun limit ->
            let t0 = Clock.now_ns () in
            fun () -> Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0) >= limit)
          deadline_s
      in
      let stop =
        match (deadline_stop, should_stop) with
        | None, None -> None
        | (Some _ as s), None | None, (Some _ as s) -> s
        | Some f, Some g -> Some (fun () -> f () || g ())
      in
      (* with neither a deadline, a stop predicate, an explicit checkpoint
         path nor a resume request, the search takes the historic
         no-checkpoint path: zero extra i/o, bit-identical output *)
      let checkpointing = resume || Option.is_some stop || Option.is_some checkpoint in
      (* batch strategies stop between evaluation chunks: the partial best
         is a valid (if under-searched) result, but is not recorded in the
         database, where it would shadow the full search forever *)
      let ran_to_completion () =
        match stop with Some f -> not (f ()) | None -> true
      in
      let per_budget = max 1 (budget / chains) in
      let fresh_chains () =
        Array.init chains (fun i -> Search.chain_start ~seed:(seed + i))
      in
      let anneal () =
        (* K independent chains splitting the budget; the seed list depends
           only on (seed, chains), so the outcome is identical with or
           without a pool *)
        if not checkpointing then
          `Done
            ( Search.simulated_annealing_portfolio ?pool sp
                ~seeds:(List.init chains (fun i -> seed + i))
                ~budget:per_budget ~cost,
              true )
        else begin
          let ckpt_path =
            match checkpoint with
            | Some p -> p
            | None -> default_checkpoint_path ~db key
          in
          let initial =
            if not resume then fresh_chains ()
            else
              match read_checkpoint ~path:ckpt_path ~key ~chains with
              | Ck_ok states ->
                Metrics.incr m_ckpt_resumes;
                states
              | Ck_missing -> fresh_chains ()
              | Ck_stale ->
                Printf.eprintf
                  "mdh: checkpoint %s belongs to a different tuning request; \
                   starting fresh\n%!"
                  ckpt_path;
                fresh_chains ()
              | Ck_corrupt ->
                Metrics.incr m_ckpt_corrupt;
                Printf.eprintf "mdh: checkpoint %s is corrupt; starting fresh\n%!"
                  ckpt_path;
                fresh_chains ()
          in
          let slots = Array.copy initial in
          let slots_mutex = Mutex.create () in
          let save () =
            write_checkpoint ~path:ckpt_path ~key ~budget:per_budget ~chains
              ~seed slots
          in
          let on_progress i s =
            Mutex.protect slots_mutex (fun () ->
                slots.(i) <- s;
                save ())
          in
          match
            Search.anneal_portfolio ?pool ?should_stop:stop ~on_progress
              ~progress_every:checkpoint_every sp ~chains:initial
              ~budget:per_budget ~cost
          with
          | Search.Portfolio_done r ->
            remove_checkpoint ckpt_path;
            `Done (r, true)
          | Search.Portfolio_paused states ->
            Array.blit states 0 slots 0 chains;
            save ();
            `Paused
              ( ckpt_path,
                Array.fold_left (fun acc s -> acc + s.Search.cs_evals) 0 states )
        end
      in
      let batch r = `Done (r, ran_to_completion ()) in
      let search_result =
        Trace.with_span ~cat:"atf" "tuner.search" (fun () ->
            match strategy with
            | Exhaustive -> batch (Search.exhaustive ?pool ?should_stop:stop sp ~cost)
            | Random ->
              batch (Search.random_search ?pool ?should_stop:stop sp ~seed ~budget ~cost)
            | Anneal -> anneal ()
            | Auto ->
              if Space.size ~cap:(budget + 1) sp <= budget then
                batch (Search.exhaustive ?pool ?should_stop:stop sp ~cost)
              else anneal ())
      in
      match search_result with
      | `Paused (checkpoint, evaluations) ->
        Ok (Suspended { checkpoint; evaluations })
      | `Done (None, _) -> Error "tuning found no legal schedule"
      | `Done (Some search, complete) ->
        (* floor the stochastic search at the heuristic starting point: the
           default tiles with the first (largest) allowed parallel set *)
        let searched = decode search.Search.best in
        let floor_schedule =
          { (Lower.mdh_default md dev) with
            Schedule.parallel_dims =
              (match parallel_options with
              | Some (first :: _) -> first
              | Some [] | None -> Lower.parallelisable_dims md) }
        in
        let schedule, estimated_s =
          match Cost_cache.seconds ctx floor_schedule with
          | Ok floor_s when floor_s < search.Search.best_cost -> (floor_schedule, floor_s)
          | _ -> (searched, search.Search.best_cost)
        in
        if complete then
          Option.iter (fun d -> Tuning_db.store d key schedule estimated_s) db;
        Ok (Tuned { schedule; estimated_s; search; from_db = false }))
  in
  Metrics.observe m_tune_s (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t_start));
  result

let tune ?strategy ?budget ?seed ?chains ?pool ?include_transfers
    ?parallel_options ?db ?saturate md dev cg =
  match
    tune_resumable ?strategy ?budget ?seed ?chains ?pool ?include_transfers
      ?parallel_options ?db ?saturate md dev cg
  with
  | Ok (Tuned t) -> Ok t
  | Ok (Suspended _) -> assert false (* no deadline or stop was supplied *)
  | Error e -> Error e
