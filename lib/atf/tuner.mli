(** Auto-tuning of MDH schedules: builds the ATF parameter space for a
    computation on a device (per-dimension tile sizes with a cache-budget
    interdependence, and the parallel-dimension subset) and searches it
    against the analytic cost model.

    This is the reproduction of the paper's "fully automatic auto-tuning for
    both GPU and CPU code using ATF" (Section 5): the 12-hour wall-clock
    budget becomes an evaluation budget against the cost model.

    The engine is parallel and memoizing: batch strategies fan cost
    evaluations across a {!Mdh_runtime.Pool}, annealing runs a seeded
    portfolio of chains, every cost verdict goes through {!Cost_cache}, and
    finished results are recorded in a {!Tuning_db} so warm runs skip the
    search entirely. Determinism contract: the same seed (and chains)
    produces the same schedule, with or without a pool. *)

type strategy = Exhaustive | Random | Anneal | Auto
(** [Auto] (the default) enumerates exhaustively when the space is within
    the budget and anneals otherwise. *)

type tuning = {
  schedule : Mdh_lowering.Schedule.t;
  estimated_s : float;
  search : Search.result;
      (** On a tuning-database hit this is synthetic: [evaluations = 0],
          empty trace, empty best configuration. *)
  from_db : bool;  (** The schedule was recalled, not searched. *)
}

val space :
  ?parallel_options:int list list ->
  ?saturate:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Space.t * (Param.config -> Mdh_lowering.Schedule.t)
(** The tuning space and the decoder from configurations to schedules.
    [parallel_options] restricts the parallel-dimension subsets that may be
    chosen (default: every parallelisable subset) — used to tune systems
    whose compilers cannot parallelise reductions. [saturate] (default
    false) prunes tile size 1 on dimensions of extent > 1: unit tiling is
    the structure {!Mdh_rewrite.Rewrite.saturate_plan}'s unit-tile
    elimination removes, so the rewrite-aware search space need not
    contain it. *)

val tune :
  ?strategy:strategy ->
  ?budget:int ->
  ?seed:int ->
  ?chains:int ->
  ?pool:Mdh_runtime.Pool.t ->
  ?include_transfers:bool ->
  ?parallel_options:int list list ->
  ?db:Tuning_db.t ->
  ?saturate:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Cost.codegen ->
  (tuning, string) Stdlib.result
(** Default budget 400 evaluations, seed 1, a single annealing chain, no
    pool. [chains > 1] splits the budget across that many independent
    annealing chains seeded [seed, seed+1, ...] and keeps the best — the
    chain count (not the pool) determines the result. [db] overrides the
    ambient tuning database ({!Tuning_db.set_ambient}); when one is in
    effect the search is skipped on a key hit and recorded on a miss.
    [saturate] (default false) tunes the rewrite-saturated computation
    ({!Mdh_rewrite.Rewrite.saturate_outputs}) over the pruned {!space} —
    returned schedules then belong to the saturated computation, and
    database entries carry a distinct ["+rewrite"] key component so raw
    and saturated results never shadow each other. [Error] when no legal
    schedule exists (cannot happen for well-formed computations: the
    sequential schedule is always legal). *)

(** {1 Deadlines and crash-safe resume} *)

type outcome =
  | Tuned of tuning
  | Suspended of { checkpoint : string; evaluations : int }
      (** The deadline (or stop predicate) fired mid-anneal; the complete
          portfolio state is on disk at [checkpoint], and a later
          [tune_resumable ~resume:true] with the same request continues
          from it. [evaluations] counts the work done so far. *)

val tune_resumable :
  ?strategy:strategy ->
  ?budget:int ->
  ?seed:int ->
  ?chains:int ->
  ?pool:Mdh_runtime.Pool.t ->
  ?include_transfers:bool ->
  ?parallel_options:int list list ->
  ?db:Tuning_db.t ->
  ?deadline_s:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?saturate:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Cost.codegen ->
  (outcome, string) Stdlib.result
(** {!tune} with a wall-clock budget and crash-safe suspension.
    [deadline_s] bounds the search; [should_stop] is an additional
    caller-supplied stop predicate (tests use it to suspend after an exact
    evaluation count). When either fires, annealing strategies suspend to
    a checkpoint file and return [Suspended]; batch strategies
    ([Exhaustive]/[Random], including [Auto] resolving to exhaustive) stop
    between evaluation chunks and return the partial best as [Tuned]
    without recording it in the tuning database.

    While a deadline, stop predicate, checkpoint path or resume request is
    in effect, annealing writes a CRC-framed checkpoint (atomic tmp +
    rename) every [checkpoint_every] (default 64) evaluations per chain —
    to [checkpoint], defaulting to [mdh-<db key>.ckpt] next to the tuning
    database (or in the temp dir for in-memory databases). [resume]
    restores the portfolio from that file: the resumed search replays the
    exact rng draw sequence, so its result is bit-identical to an
    uninterrupted run — however often it was suspended or killed in
    between. A corrupt checkpoint warns on stderr, counts
    [atf.checkpoint.corrupt], and starts afresh; one for a different
    request (key mismatch) is ignored; completion deletes it. Checkpoint
    activity is visible as [atf.checkpoint.writes] / [.resumes] /
    [.corrupt]. Without any of those four options the behaviour (and
    stdout) is exactly {!tune}'s. *)
