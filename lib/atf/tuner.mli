(** Auto-tuning of MDH schedules: builds the ATF parameter space for a
    computation on a device (per-dimension tile sizes with a cache-budget
    interdependence, and the parallel-dimension subset) and searches it
    against the analytic cost model.

    This is the reproduction of the paper's "fully automatic auto-tuning for
    both GPU and CPU code using ATF" (Section 5): the 12-hour wall-clock
    budget becomes an evaluation budget against the cost model.

    The engine is parallel and memoizing: batch strategies fan cost
    evaluations across a {!Mdh_runtime.Pool}, annealing runs a seeded
    portfolio of chains, every cost verdict goes through {!Cost_cache}, and
    finished results are recorded in a {!Tuning_db} so warm runs skip the
    search entirely. Determinism contract: the same seed (and chains)
    produces the same schedule, with or without a pool. *)

type strategy = Exhaustive | Random | Anneal | Auto
(** [Auto] (the default) enumerates exhaustively when the space is within
    the budget and anneals otherwise. *)

type tuning = {
  schedule : Mdh_lowering.Schedule.t;
  estimated_s : float;
  search : Search.result;
      (** On a tuning-database hit this is synthetic: [evaluations = 0],
          empty trace, empty best configuration. *)
  from_db : bool;  (** The schedule was recalled, not searched. *)
}

val space :
  ?parallel_options:int list list ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Space.t * (Param.config -> Mdh_lowering.Schedule.t)
(** The tuning space and the decoder from configurations to schedules.
    [parallel_options] restricts the parallel-dimension subsets that may be
    chosen (default: every parallelisable subset) — used to tune systems
    whose compilers cannot parallelise reductions. *)

val tune :
  ?strategy:strategy ->
  ?budget:int ->
  ?seed:int ->
  ?chains:int ->
  ?pool:Mdh_runtime.Pool.t ->
  ?include_transfers:bool ->
  ?parallel_options:int list list ->
  ?db:Tuning_db.t ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Cost.codegen ->
  (tuning, string) Stdlib.result
(** Default budget 400 evaluations, seed 1, a single annealing chain, no
    pool. [chains > 1] splits the budget across that many independent
    annealing chains seeded [seed, seed+1, ...] and keeps the best — the
    chain count (not the pool) determines the result. [db] overrides the
    ambient tuning database ({!Tuning_db.set_ambient}); when one is in
    effect the search is skipped on a key hit and recorded on a miss.
    [Error] when no legal schedule exists (cannot happen for well-formed
    computations: the sequential schedule is always legal). *)
