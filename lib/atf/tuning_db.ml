module Schedule = Mdh_lowering.Schedule

type t = {
  path : string;
  entries : (string, Schedule.t * float) Hashtbl.t;
  mutex : Mutex.t;
  hits : int Atomic.t;
  lookups : int Atomic.t;
}

let default_path () =
  match Sys.getenv_opt "MDH_TUNING_DB" with
  | Some path when path <> "" -> path
  | _ ->
    let cache_root =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some dir when dir <> "" -> dir
      | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some home when home <> "" -> Filename.concat home ".cache"
        | _ -> Filename.current_dir_name)
    in
    Filename.concat (Filename.concat cache_root "mdh") "tuning.db"

(* one entry per line: key TAB estimated-seconds TAB schedule. Later lines
   win, so appending an updated entry supersedes the old one on reload. *)
let parse_line line =
  match String.split_on_char '\t' line with
  | [ key; cost; schedule ] -> (
    match (float_of_string_opt cost, Schedule.of_string schedule) with
    | Some cost, Ok schedule -> Some (key, (schedule, cost))
    | _ -> None)
  | _ -> None

let load path entries =
  if Sys.file_exists path then
    In_channel.with_open_text path (fun ic ->
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
            (match parse_line line with
            | Some (key, entry) -> Hashtbl.replace entries key entry
            | None -> ());
            loop ()
        in
        loop ())

let open_db path =
  let entries = Hashtbl.create 64 in
  (try load path entries with Sys_error _ -> ());
  { path; entries; mutex = Mutex.create (); hits = Atomic.make 0;
    lookups = Atomic.make 0 }

let path t = t.path
let size t = Hashtbl.length t.entries

(* process-wide registry mirrors of the per-db counters, so db traffic
   shows up in --metrics reports alongside everything else *)
let m_lookups = Mdh_obs.Metrics.counter "atf.tuning_db.lookups"
let m_hits = Mdh_obs.Metrics.counter "atf.tuning_db.hits"
let m_stores = Mdh_obs.Metrics.counter "atf.tuning_db.stores"

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  Atomic.incr t.lookups;
  Mdh_obs.Metrics.incr m_lookups;
  match with_lock t (fun () -> Hashtbl.find_opt t.entries key) with
  | Some _ as hit ->
    Atomic.incr t.hits;
    Mdh_obs.Metrics.incr m_hits;
    hit
  | None -> None

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append_line t key schedule cost =
  try
    mkdir_p (Filename.dirname t.path);
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_text ] 0o644 t.path (fun oc ->
        Printf.fprintf oc "%s\t%.17g\t%s\n" key cost (Schedule.to_string schedule))
  with Sys_error _ | Unix.Unix_error _ -> ()
(* persistence is best-effort: an unwritable cache directory must never
   fail a tuning run *)

let store t key schedule cost =
  let fresh =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some (old_schedule, old_cost) when old_schedule = schedule && old_cost = cost
          -> false
        | _ ->
          Hashtbl.replace t.entries key (schedule, cost);
          true)
  in
  if fresh then begin
    Mdh_obs.Metrics.incr m_stores;
    append_line t key schedule cost
  end

let clear t =
  with_lock t (fun () -> Hashtbl.reset t.entries);
  if Sys.file_exists t.path then try Sys.remove t.path with Sys_error _ -> ()

type stats = { n_hits : int; n_lookups : int; n_entries : int }

let stats t =
  { n_hits = Atomic.get t.hits; n_lookups = Atomic.get t.lookups;
    n_entries = size t }

let ambient_db : t option ref = ref None
let set_ambient db = ambient_db := db
let ambient () = !ambient_db
