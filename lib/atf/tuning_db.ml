module Schedule = Mdh_lowering.Schedule
module Crc32 = Mdh_support.Crc32
module Fault = Mdh_fault.Fault

type t = {
  path : string option; (* None = in-memory only, nothing ever persisted *)
  entries : (string, Schedule.t * float) Hashtbl.t;
  mutex : Mutex.t;
  io_mutex : Mutex.t;
      (* serialises this handle's file operations against each other.
         [Unix.lockf] locks are held per-process, so two threads (or
         domains) of one process both "acquire" the advisory lock at
         once: without this mutex an append racing a compaction can
         write its line to the pre-rename inode (losing the entry), and
         two compactions can clobber each other's temp file. Ordering:
         io_mutex is always taken OUTSIDE [mutex] (never while holding
         it). *)
  hits : int Atomic.t;
  lookups : int Atomic.t;
  mutable persist : bool; (* flips off on EACCES/EROFS-style failures *)
  mutable warned : bool; (* one warning per database, not per write *)
}

let default_path () =
  match Sys.getenv_opt "MDH_TUNING_DB" with
  | Some path when path <> "" -> Some path
  | _ ->
    let cache_root =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some dir when dir <> "" -> Some dir
      | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some home when home <> "" -> Some (Filename.concat home ".cache")
        | _ -> None)
    in
    (* no cache root at all (both XDG_CACHE_HOME and HOME unset): never
       scatter tuning.db into whatever the cwd happens to be — the
       caller should fall back to an in-memory database *)
    Option.map
      (fun root -> Filename.concat (Filename.concat root "mdh") "tuning.db")
      cache_root

(* process-wide registry mirrors of the per-db counters, so db traffic
   and recovery events show up in --metrics reports *)
let m_lookups = Mdh_obs.Metrics.counter "atf.tuning_db.lookups"
let m_hits = Mdh_obs.Metrics.counter "atf.tuning_db.hits"
let m_stores = Mdh_obs.Metrics.counter "atf.tuning_db.stores"
let m_corrupt = Mdh_obs.Metrics.counter "atf.tuning_db.corrupt_lines"
let m_quarantined = Mdh_obs.Metrics.counter "atf.tuning_db.quarantined"
let m_memory_only = Mdh_obs.Metrics.counter "atf.tuning_db.memory_only"

let warn t fmt =
  Printf.ksprintf
    (fun msg ->
      if not t.warned then begin
        t.warned <- true;
        Printf.eprintf "mdh: tuning db: %s\n%!" msg
      end)
    fmt

(* one entry per line:
     key TAB estimated-seconds TAB schedule TAB crc32(preceding fields)
   Later lines win, so appending an updated entry supersedes the old one
   on reload. The checksum frames each journal append: a torn or
   bit-flipped record fails to verify and is quarantined instead of
   silently (mis)trusted. Legacy three-field lines (pre-checksum
   databases) are still accepted. *)
let line_body key schedule cost =
  Printf.sprintf "%s\t%.17g\t%s" key cost (Schedule.to_string schedule)

let format_line key schedule cost =
  let body = line_body key schedule cost in
  Printf.sprintf "%s\t%s\n" body (Crc32.to_hex (Crc32.string body))

let parse_fields key cost schedule =
  match (float_of_string_opt cost, Schedule.of_string schedule) with
  | Some cost, Ok schedule -> Some (key, (schedule, cost))
  | _ -> None

let parse_line line =
  match String.split_on_char '\t' line with
  | [ key; cost; schedule; crc ] ->
    if Crc32.of_hex crc = Some (Crc32.string (String.concat "\t" [ key; cost; schedule ]))
    then parse_fields key cost schedule
    else None
  | [ key; cost; schedule ] -> parse_fields key cost schedule
  | _ -> None

(* --- file plumbing: advisory locking and atomic replacement --- *)

let lock_path path = path ^ ".lock"
let quarantine_path path = path ^ ".corrupt"

(* cross-process safety: every writer (append, rebuild, compact) and the
   initial load hold an advisory lock on a sidecar file, so concurrent
   mdhc/bench invocations never interleave partial writes. The sidecar —
   not the db file itself — is locked because the db file is replaced by
   rename during rebuilds. *)
let with_file_lock path f =
  let fd =
    Unix.openfile (lock_path path) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* atomic replace: write everything to a temp file in the same directory,
   then rename over the target — readers see the old or the new file,
   never a half-written one *)
let replace_with path write_body =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_gen
    [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp write_body;
  Fault.hit "db.rename";
  Sys.rename tmp path

let write_entries oc entries =
  Hashtbl.iter
    (fun key (schedule, cost) -> Out_channel.output_string oc (format_line key schedule cost))
    entries

(* --- loading, with quarantine-and-rebuild recovery --- *)

let load_lines path entries =
  let corrupt = ref 0 in
  In_channel.with_open_bin path (fun ic ->
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          (if String.trim line <> "" then
             match parse_line line with
             | Some (key, entry) -> Hashtbl.replace entries key entry
             | None -> incr corrupt);
          loop ()
      in
      loop ());
  !corrupt

let quarantine_and_rebuild t path =
  (* keep the evidence: the damaged file is moved aside (latest wins) and
     a clean file is rebuilt from the entries that verified *)
  Mdh_obs.Metrics.incr m_quarantined;
  Fault.hit "db.rename";
  Sys.rename path (quarantine_path path);
  replace_with path (fun oc -> write_entries oc t.entries)

let load t path =
  if Sys.file_exists path then begin
    Fault.hit "db.read";
    with_file_lock path (fun () ->
        if Sys.file_exists path then begin
          let corrupt = load_lines path t.entries in
          if corrupt > 0 then begin
            Mdh_obs.Metrics.add m_corrupt corrupt;
            warn t
              "%s: %d corrupt line(s) dropped; file quarantined to %s and rebuilt"
              path corrupt (quarantine_path path);
            quarantine_and_rebuild t path
          end
        end)
  end

let make path =
  { path; entries = Hashtbl.create 64; mutex = Mutex.create ();
    io_mutex = Mutex.create ();
    hits = Atomic.make 0; lookups = Atomic.make 0;
    persist = path <> None; warned = false }

let open_db path =
  let t = make (Some path) in
  (* an unreadable or fault-injected file must never abort the run: the
     database is a cache, so degrade to an empty one *)
  (try load t path with
  | Sys_error _ | Unix.Unix_error _ | Fault.Injected _ ->
    warn t "%s: unreadable; continuing with an empty database" path);
  t

let in_memory () =
  Mdh_obs.Metrics.incr m_memory_only;
  make None

let path t = t.path
let size t = Hashtbl.length t.entries

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let with_io_lock t f =
  Mutex.lock t.io_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.io_mutex) f

let find t key =
  Atomic.incr t.lookups;
  Mdh_obs.Metrics.incr m_lookups;
  match with_lock t (fun () -> Hashtbl.find_opt t.entries key) with
  | Some _ as hit ->
    Atomic.incr t.hits;
    Mdh_obs.Metrics.incr m_hits;
    hit
  | None -> None

(* persistence is best-effort: an unwritable cache location (read-only
   filesystem, EACCES, missing home) must never fail a tuning run — the
   database degrades to in-memory for the rest of the process, with one
   warning and a metrics trace *)
let disable_persistence t reason =
  t.persist <- false;
  Mdh_obs.Metrics.incr m_memory_only;
  warn t "%s; continuing in-memory only" reason

let append_line t key schedule cost =
  match t.path with
  | None -> ()
  | Some path when t.persist -> (
    try
      mkdir_p (Filename.dirname path);
      with_io_lock t @@ fun () ->
      with_file_lock path (fun () ->
          Fault.hit "db.write";
          let line = Fault.mangle "db.write" (format_line key schedule cost) in
          (* O_APPEND + a single write(2): concurrent appenders (under the
             advisory lock, belt and braces) never interleave bytes, and a
             crash tears at most this one checksummed line *)
          let fd =
            Unix.openfile path
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
          in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              ignore (Unix.write_substring fd line 0 (String.length line))))
    with
    | Unix.Unix_error ((EACCES | EROFS | EPERM | ENOENT | ENOTDIR), _, _)
    | Sys_error _ ->
      disable_persistence t (path ^ " is not writable")
    | Fault.Injected _ -> () (* injected write failure: entry stays in memory *))
  | Some _ -> ()

let store t key schedule cost =
  let fresh =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some (old_schedule, old_cost) when old_schedule = schedule && old_cost = cost
          -> false
        | _ ->
          Hashtbl.replace t.entries key (schedule, cost);
          true)
  in
  if fresh then begin
    Mdh_obs.Metrics.incr m_stores;
    append_line t key schedule cost
  end

let compact t =
  match t.path with
  | None -> ()
  | Some path when t.persist -> (
    try
      mkdir_p (Filename.dirname path);
      (* snapshot under the table mutex, write under the io mutex — the
         io mutex is what keeps a concurrent [append_line] from hitting
         the pre-rename inode (lockf cannot: it is per-process) *)
      let snapshot = with_lock t (fun () -> Hashtbl.copy t.entries) in
      with_io_lock t @@ fun () ->
      with_file_lock path (fun () ->
          replace_with path (fun oc -> write_entries oc snapshot))
    with
    | Unix.Unix_error _ | Sys_error _ ->
      disable_persistence t (path ^ " is not writable")
    | Fault.Injected _ -> ())
  | Some _ -> ()

let remove_if_exists path =
  if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()

let clear t =
  with_lock t (fun () -> Hashtbl.reset t.entries);
  match t.path with
  | None -> ()
  | Some path ->
    with_io_lock t (fun () ->
        List.iter remove_if_exists
          [ path; path ^ ".tmp"; quarantine_path path; lock_path path ])

type stats = { n_hits : int; n_lookups : int; n_entries : int }

let stats t =
  { n_hits = Atomic.get t.hits; n_lookups = Atomic.get t.lookups;
    n_entries = size t }

let persistent t = t.persist && t.path <> None

let ambient_db : t option ref = ref None
let set_ambient db = ambient_db := db
let ambient () = !ambient_db
