(** Persistent key → (schedule, estimated seconds) tuning database.

    Warm runs of `mdhc tune`/`mdhc compare` and `bench/main.exe figure4`
    skip the schedule search entirely: {!Tuner.tune} consults the database
    under a key that digests the computation, device, codegen profile and
    every search-relevant knob (strategy, budget, seed, chains, restricted
    parallel options), so a hit is exactly the schedule the same search
    would have re-derived.

    The on-disk format is one [key TAB cost TAB schedule] line per entry
    (latest line wins), appended on every new result; loading tolerates
    unreadable files and malformed lines, and persistence is best-effort —
    an unwritable path never fails tuning. *)

type t

val default_path : unit -> string
(** [$MDH_TUNING_DB], else [$XDG_CACHE_HOME/mdh/tuning.db], else
    [$HOME/.cache/mdh/tuning.db]. *)

val open_db : string -> t
(** Load (or lazily create at first store) the database at the path. *)

val path : t -> string
val size : t -> int

val find : t -> string -> (Mdh_lowering.Schedule.t * float) option
val store : t -> string -> Mdh_lowering.Schedule.t -> float -> unit
(** Record in memory and append to the file (no-op if the key already holds
    the same entry). *)

val clear : t -> unit
(** Drop all entries and delete the backing file. *)

type stats = { n_hits : int; n_lookups : int; n_entries : int }

val stats : t -> stats

val set_ambient : t option -> unit
(** The process-wide default database {!Tuner.tune} consults when not given
    one explicitly. [None] (the initial state) disables persistent caching,
    keeping library users and tests side-effect free; the CLIs opt in. *)

val ambient : unit -> t option
