(** Persistent key → (schedule, estimated seconds) tuning database,
    hardened against crashes, corruption and contention.

    Warm runs of `mdhc tune`/`mdhc compare` and `bench/main.exe figure4`
    skip the schedule search entirely: {!Tuner.tune} consults the database
    under a key that digests the computation, device, codegen profile and
    every search-relevant knob (strategy, budget, seed, chains, restricted
    parallel options), so a hit is exactly the schedule the same search
    would have re-derived.

    Durability contract:
    - every on-disk line is [key TAB cost TAB schedule TAB crc32] (latest
      line wins); appends are one [O_APPEND] write(2) of one checksummed
      line, so a crash tears at most the final line;
    - loading verifies each checksum; any corrupt line is dropped and
      counted ([atf.tuning_db.corrupt_lines]), the damaged file is
      quarantined to [PATH.corrupt] and a clean file is rebuilt atomically
      (temp file + rename, [atf.tuning_db.quarantined]);
    - writers and the loader hold an advisory [Unix.lockf] lock on
      [PATH.lock], so concurrent processes never interleave writes;
      [lockf] locks are per-process, so a handle additionally serialises
      its own file operations behind an in-process mutex — threads or
      domains sharing the handle (the mdhd daemon does) can append and
      compact concurrently without losing journal lines to the
      compaction's rename;
    - persistence is best-effort: unreadable or unwritable paths degrade
      to an in-memory database with a single warning
      ([atf.tuning_db.memory_only]) and never fail the tuning run. *)

type t

val default_path : unit -> string option
(** [$MDH_TUNING_DB], else [$XDG_CACHE_HOME/mdh/tuning.db], else
    [$HOME/.cache/mdh/tuning.db]; [None] when no cache root exists (both
    [XDG_CACHE_HOME] and [HOME] unset) — callers should then use
    {!in_memory} rather than scattering [tuning.db] into the cwd. *)

val open_db : string -> t
(** Load (or lazily create at first store) the database at the path,
    recovering from corruption as described above. *)

val in_memory : unit -> t
(** A database that never touches the filesystem (counted on the registry
    as [atf.tuning_db.memory_only]). *)

val path : t -> string option
(** [None] for in-memory databases. *)

val size : t -> int

val persistent : t -> bool
(** Whether stores still reach the disk (false for in-memory databases
    and after degradation on a write failure). *)

val find : t -> string -> (Mdh_lowering.Schedule.t * float) option

val store : t -> string -> Mdh_lowering.Schedule.t -> float -> unit
(** Record in memory and append a checksummed line to the file (no-op if
    the key already holds the same entry). *)

val compact : t -> unit
(** Atomically rewrite the file with one line per live entry, dropping
    superseded journal appends. *)

val clear : t -> unit
(** Drop all entries and delete the backing file (and its lock,
    quarantine and temp siblings). *)

type stats = { n_hits : int; n_lookups : int; n_entries : int }

val stats : t -> stats

val set_ambient : t option -> unit
(** The process-wide default database {!Tuner.tune} consults when not given
    one explicitly. [None] (the initial state) disables persistent caching,
    keeping library users and tests side-effect free; the CLIs opt in. *)

val ambient : unit -> t option
