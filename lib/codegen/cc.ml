module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Combine = Mdh_combine.Combine
module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics

(* gcc invocation vs driver execution: the two phases a compiled-C run
   spends its wall time in, visible on the registry and in Chrome traces *)
let h_build = Metrics.histogram "codegen.cc.build_s"
let h_run = Metrics.histogram "codegen.cc.run_s"

let observed h f =
  let t0 = Mdh_obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.observe h
        (Mdh_obs.Clock.ns_to_s
           (Int64.sub (Mdh_obs.Clock.now_ns ()) t0)))
    f

type t = {
  md : Md_hom.t;
  src_path : string;
  exe_path : string;
  log_path : string;
  source : string;
}

let source t = t.source

(* gcc availability is a property of the process environment: probe once *)
let gcc_probe = ref None

let available () =
  match !gcc_probe with
  | Some b -> b
  | None ->
    let b = Sys.command "command -v gcc > /dev/null 2>&1" = 0 in
    gcc_probe := Some b;
    b

(* The driver feeds raw little-endian fp32 through files, so every buffer
   must be fp32 and every reduction a builtin operator the generated C
   implements without a host-supplied combiner. *)
let eligible (md : Md_hom.t) =
  let non_f32 ty = not (Scalar.equal_ty ty Scalar.Fp32) in
  if List.exists (fun (i : Md_hom.input) -> non_f32 i.inp_ty) md.inputs then
    Error "compiled-C backend: non-fp32 input buffer"
  else if List.exists (fun (o : Md_hom.output) -> non_f32 o.out_ty) md.outputs
  then Error "compiled-C backend: non-fp32 output buffer"
  else if
    Array.exists
      (fun op ->
        match Combine.custom_fn_of op with
        | Some fn -> not fn.Combine.builtin
        | None -> false)
      md.combine_ops
  then Error "compiled-C backend: non-builtin reduction operator"
  else Ok ()

let driver_source (md : Md_hom.t) kernel_src =
  let b = Stdlib.Buffer.create 4096 in
  let line fmt =
    Format.kasprintf
      (fun s ->
        Stdlib.Buffer.add_string b s;
        Stdlib.Buffer.add_char b '\n')
      fmt
  in
  let output = List.hd md.outputs in
  let out_n = Shape.num_elements output.Md_hom.out_shape in
  line "/* Standalone driver for the generated OpenMP C kernel: reads each";
  line "   input buffer as raw fp32 from the argv paths, runs the kernel,";
  line "   writes the output buffer as raw fp32 to the last path. */";
  line "#include <stdio.h>";
  line "#include <stdlib.h>";
  line "#include <math.h>";
  line "%s" C_like.min_max_prelude;
  line "";
  line "%s" kernel_src;
  line "static float *mdh_read_f32(const char *path, size_t n)";
  line "{";
  line "  FILE *f = fopen(path, \"rb\");";
  line "  float *buf = (float *)malloc(n * sizeof(float));";
  line "  if (!f || !buf || fread(buf, sizeof(float), n, f) != n) {";
  line "    fprintf(stderr, \"mdh driver: cannot read %%zu floats from %%s\\n\", n, path);";
  line "    exit(2);";
  line "  }";
  line "  fclose(f);";
  line "  return buf;";
  line "}";
  line "";
  line "int main(int argc, char **argv)";
  line "{";
  line "  if (argc != %d) {" (List.length md.inputs + 2);
  line "    fprintf(stderr, \"usage: %%s %s OUT\\n\", argv[0]);"
    (String.concat " "
       (List.map (fun (i : Md_hom.input) -> i.inp_name) md.inputs));
  line "    return 2;";
  line "  }";
  List.iteri
    (fun pos (i : Md_hom.input) ->
      line "  float *%s = mdh_read_f32(argv[%d], %d);" i.inp_name (pos + 1)
        (Shape.num_elements i.inp_shape))
    md.inputs;
  line "  float *%s = (float *)calloc(%d, sizeof(float));"
    output.Md_hom.out_name out_n;
  line "  %s_openmp(%s);" (Kernel.kernel_name md)
    (String.concat ", "
       (output.Md_hom.out_name
       :: List.map (fun (i : Md_hom.input) -> i.inp_name) md.inputs));
  (* the stream variable shares scope with buffers named by the user
     (CCSD(T)'s output is literally "out"), so it must be namespaced *)
  line "  FILE *mdh_out_stream = fopen(argv[%d], \"wb\");"
    (List.length md.inputs + 1);
  line "  if (!mdh_out_stream || fwrite(%s, sizeof(float), %d, mdh_out_stream) != %d) {"
    output.Md_hom.out_name out_n out_n;
  line "    fprintf(stderr, \"mdh driver: cannot write output\\n\");";
  line "    return 2;";
  line "  }";
  line "  fclose(mdh_out_stream);";
  line "  return 0;";
  line "}";
  Stdlib.Buffer.contents b

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all with Sys_error _ -> ""

let build (md : Md_hom.t) =
  if not (available ()) then Error "compiled-C backend: gcc not found on PATH"
  else
    observed h_build @@ fun () ->
    Trace.with_span ~cat:"codegen" "cc.build"
      ~args:[ ("hom", md.Md_hom.hom_name) ]
    @@ fun () ->
    match eligible md with
    | Error _ as e -> e
    | Ok () -> (
      match Openmp_c.generate md with
      | Error e ->
        Error
          (Format.asprintf "compiled-C backend: %a" Kernel.pp_error e)
      | Ok kernel_src ->
        let src_path = Filename.temp_file "mdh_cc_" ".c" in
        let exe_path = Filename.temp_file "mdh_cc_" ".bin" in
        let log_path = Filename.temp_file "mdh_cc_" ".log" in
        let source = driver_source md kernel_src in
        write_file src_path source;
        let cmd =
          Filename.quote_command "gcc" ~stdout:log_path ~stderr:log_path
            [ "-O3"; "-fopenmp"; "-o"; exe_path; src_path; "-lm" ]
        in
        if Sys.command cmd <> 0 then
          Error ("compiled-C backend: gcc failed:\n" ^ read_file log_path)
        else Ok { md; src_path; exe_path; log_path; source })

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let cleanup t =
  List.iter remove_quiet [ t.src_path; t.exe_path; t.log_path ]

let write_f32_file path (d : Dense.t) =
  let n = Dense.num_elements d in
  let b = Bytes.create (4 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le b (4 * i)
      (Int32.bits_of_float (Scalar.to_float (Dense.get_linear d i)))
  done;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let read_f32_file path n =
  In_channel.with_open_bin path (fun ic ->
      match In_channel.really_input_string ic (4 * n) with
      | None -> Error "compiled-C backend: short output read"
      | Some s ->
        Ok
          (Array.init n (fun i ->
               Int32.float_of_bits (String.get_int32_le s (4 * i)))))

let run t env =
  observed h_run @@ fun () ->
  Trace.with_span ~cat:"codegen" "cc.run"
    ~args:[ ("hom", t.md.Md_hom.hom_name) ]
  @@ fun () ->
  let md = t.md in
  match Semantics.alloc_outputs md env with
  | exception Semantics.Semantic_error e -> Error e
  | env' ->
    let in_paths =
      List.map
        (fun (i : Md_hom.input) ->
          let path = Filename.temp_file "mdh_cc_in_" ".f32" in
          write_f32_file path (Buffer.data (Buffer.env_find env i.inp_name));
          path)
        md.inputs
    in
    let out_path = Filename.temp_file "mdh_cc_out_" ".f32" in
    let cmd = Filename.quote_command t.exe_path (in_paths @ [ out_path ]) in
    let rc = Sys.command cmd in
    let finish r =
      List.iter remove_quiet (out_path :: in_paths);
      r
    in
    if rc <> 0 then
      finish (Error (Printf.sprintf "compiled-C backend: driver exited %d" rc))
    else
      let output = List.hd md.outputs in
      let out = Buffer.data (Buffer.env_find env' output.Md_hom.out_name) in
      let n = Dense.num_elements out in
      match read_f32_file out_path n with
      | Error _ as e -> finish e
      | Ok values ->
        Array.iteri (fun i v -> Dense.set_linear out i (Scalar.f32 v)) values;
        finish (Ok env')

let execute md env =
  match build md with
  | Error _ as e -> e
  | Ok t ->
    let r = run t env in
    cleanup t;
    r
