(** Compile-and-run harness for the {!Openmp_c} backend: the first
    end-to-end proof that the C we generate computes the right answer.

    When [gcc] is on PATH, the generated kernel is wrapped in a small
    driver translation unit (raw-fp32 file I/O for every buffer), built
    with [-O3 -fopenmp] into a temp-dir binary, and executed against the
    caller's buffers — so the compiled C can be differentially checked
    against {!Mdh_core.Semantics.exec} (tolerance-equal: the kernel
    accumulates in C [float] with OpenMP's reduction reassociation, the
    interpreter rounds per operation).

    Eligibility mirrors what the generated C can express standalone: one
    fp32 output, fp32 inputs, at most one reduction loop ({!Openmp_c}'s
    Listing 2 shape), builtin reduction operators only (a custom operator
    would need a host-supplied combiner to link). *)

type t
(** A built driver binary (plus its temp files) for one computation. *)

val available : unit -> bool
(** Whether [gcc] is on PATH (probed once per process). *)

val build : Mdh_core.Md_hom.t -> (t, string) result
(** Generate, emit and compile. Fails when gcc is missing, the computation
    is ineligible, or compilation fails (with the compiler log). *)

val run : t -> Mdh_tensor.Buffer.env -> (Mdh_tensor.Buffer.env, string) result
(** Execute the built binary on the environment's input buffers; returns
    the environment extended with the computed output. Reusable: one build
    may run many times. *)

val cleanup : t -> unit
(** Remove the temp source/binary/log files. *)

val execute :
  Mdh_core.Md_hom.t ->
  Mdh_tensor.Buffer.env ->
  (Mdh_tensor.Buffer.env, string) result
(** [build] + [run] + [cleanup] in one step. *)

val source : t -> string
(** The full driver translation unit (kernel included), for inspection. *)
