(** Kernel source generation from a scheduled MDH computation — the
    reproduction of the MDH pipeline's final stage, which emits "CUDA code
    for GPUs and OpenCL code for CPUs" (Sections 3 and 5). The generated
    source cannot be run in this environment (no GPU, no OpenCL runtime);
    it is the faithful *artifact*: the schedule's decisions appear directly
    in the code and are covered by structural tests.

    Mapping scheme:
    - the parallel concatenation subspace is linearised over work-groups x
      work-items and decomposed back with div/mod index arithmetic;
    - when the schedule parallelises a [pw] reduction dimension, work-items
      stride over it and recombine with a barrier-synchronised tree in
      local/shared memory (the first such dimension; further parallel
      reduction dimensions run sequentially per item, with a note);
    - sequential dimensions appear as cache-tiled loop pairs when the
      schedule's tile is smaller than the extent;
    - a [ps] dimension is emitted as a sequential running scan
      (restriction: at most one [ps] dimension and no [pw] dimensions in
      the same computation — which covers the paper's workloads).

    Built-in customising functions inline; user-defined ones become calls
    to [mdh_combine_<name>], declared for the host to supply. *)

type dialect

val cuda : dialect
val opencl : dialect

type error =
  | Unsupported of string
  | Illegal_schedule of string

val pp_error : Format.formatter -> error -> unit

val generate :
  dialect ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Mdh_lowering.Schedule.t ->
  (string, error) result
(** Complete translation unit: prelude, struct definitions, the kernel, and
    a launch-configuration comment. *)

val kernel_name : Mdh_core.Md_hom.t -> string
(** The emitted kernel's function name. *)

val launch_config : Mdh_lowering.Plan.t -> int * int
(** (work-groups, work-items per group) for the generated kernel: the
    plan's distributed points over its tree-reduce cooperating items. *)

type dim_kind =
  | Par_cc  (** parallel concatenation: decomposed from the hardware id *)
  | Par_red_tree  (** the tree-reduced pw dimension *)
  | Seq_cc  (** sequential concatenation: tiled loops *)
  | Seq_red of Mdh_combine.Combine.custom_fn  (** sequential pw: accumulate *)
  | Seq_scan of Mdh_combine.Combine.custom_fn  (** ps: running scan *)

val classify : Mdh_core.Md_hom.t -> Mdh_lowering.Plan.t -> dim_kind array
(** Per-dimension execution kind, read off the plan's level roles. *)
