module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Plan = Mdh_lowering.Plan

let reduction_clause_op (fn : Combine.custom_fn) =
  if fn.Combine.builtin then
    match fn.Combine.fn_name with
    | "add" -> Some "+"
    | "mul" -> Some "*"
    | "min" -> Some "min"
    | "max" -> Some "max"
    | _ -> None
  else None

let generate (md : Md_hom.t) =
  match md.outputs with
  | [] | _ :: _ :: _ ->
    Error (Kernel.Unsupported "the Listing 2 shape has exactly one output buffer")
  | [ output ] ->
    (* loop structure comes from the (device-free, all-sequential) plan:
       the same IR the kernel backends and the executor consume *)
    let plan = Plan.sequential md in
    let rank = Md_hom.rank md in
    let reductions =
      List.filter
        (fun d ->
          match Plan.role plan d with
          | Plan.Role_accumulate | Plan.Role_scan -> true
          | _ -> false)
        (List.init rank Fun.id)
    in
    if List.length reductions > 1 then
      Error (Kernel.Unsupported "the Listing 2 shape has at most one reduction loop")
    else begin
      let ctx = C_like.prepare md in
      let b = Buffer.create 2048 in
      let line fmt =
        Format.kasprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
      in
      line "/* OpenMP-annotated C equivalent of the %s directive (the paper's" md.hom_name;
      line "   Listing 2 shape), generated for comparison. */";
      let struct_defs = C_like.struct_defs ctx in
      if struct_defs <> "" then line "%s" struct_defs;
      let params =
        C_like.buffer_param ctx ~const:false output.Md_hom.out_name output.Md_hom.out_ty
        :: List.map
             (fun (i : Md_hom.input) -> C_like.buffer_param ctx i.inp_name i.inp_ty)
             md.inputs
      in
      line "void %s_openmp(%s)" (Kernel.kernel_name md) (String.concat ", " params);
      line "{";
      let fresh_counter = ref 0 in
      let fresh () = incr fresh_counter; Printf.sprintf "t%d" !fresh_counter in
      let depth = ref 1 in
      let emit fmt =
        Format.kasprintf
          (fun s ->
            Buffer.add_string b (String.make (2 * !depth) ' ');
            Buffer.add_string b s;
            Buffer.add_char b '\n')
          fmt
      in
      let red = match reductions with [ d ] -> Some d | _ -> None in
      let acc_ty = C_like.c_type ctx output.Md_hom.out_ty in
      let value =
        C_like.emit_expr ctx ~fresh ~index_of:(fun v -> v) output.Md_hom.value
      in
      let out_idx =
        List.map
          (fun e -> (C_like.emit_expr ctx ~fresh ~index_of:(fun v -> v) e).C_like.expr)
          output.Md_hom.out_access.exprs
      in
      let write expr =
        emit "%s = %s;"
          (C_like.linearize output.Md_hom.out_name output.Md_hom.out_shape out_idx)
          expr
      in
      let open_loop d =
        emit "for (int %s = 0; %s < %d; %s++) {" md.dims.(d) md.dims.(d) md.sizes.(d)
          md.dims.(d);
        incr depth
      in
      let close () = decr depth; emit "}" in
      (* outer cc loops, the first annotated *)
      let cc =
        List.filter
          (fun d -> Plan.role plan d = Plan.Role_seq)
          (List.init rank Fun.id)
      in
      List.iteri
        (fun i d ->
          if i = 0 then emit "#pragma omp parallel for";
          open_loop d)
        cc;
      (match red with
      | None ->
        List.iter (fun d -> emit "%s" d) value.C_like.decls;
        write value.C_like.expr
      | Some d ->
        let fn =
          match Combine.custom_fn_of md.combine_ops.(d) with
          | Some fn -> fn
          | None -> assert false
        in
        (match md.combine_ops.(d) with
        | Combine.Ps _ ->
          emit "/* NOT EXPRESSIBLE: ps(%s) is a prefix-sum reduction; OpenMP's"
            fn.Combine.fn_name;
          emit "   reduction clause has no scan form for this shape - the loop runs";
          emit "   sequentially (cf. Section 2 of the paper). */";
          emit "%s acc;" acc_ty;
          open_loop d;
          List.iter (fun s -> emit "%s" s) value.C_like.decls;
          emit "acc = (%s == 0) ? %s : %s; /* scan */" md.dims.(d)
            value.C_like.expr
            (C_like.combine_exprs fn "acc" value.C_like.expr);
          write "acc";
          close ()
        | Combine.Pw _ -> (
          match reduction_clause_op fn with
          | Some op ->
            (* Listing 2: the sum temporary the MDH directive avoids,
               initialised to the operator's identity — `0` is only right
               for `+` (a `*`/min/max reduction seeded with 0 is absorbed) *)
            let init =
              match op with
              | "+" -> "0"
              | "*" -> "1"
              | "min" -> "INFINITY"
              | "max" -> "-INFINITY"
              | _ -> assert false
            in
            emit "%s sum = %s;" acc_ty init;
            emit "#pragma omp simd reduction(%s:sum)" op;
            open_loop d;
            List.iter (fun s -> emit "%s" s) value.C_like.decls;
            (if op = "+" || op = "*" then
               emit "sum %s= %s;" op value.C_like.expr
             else emit "sum = %s;" (C_like.combine_exprs fn "sum" value.C_like.expr));
            close ();
            write "sum"
          | None ->
            emit "/* NOT EXPRESSIBLE: pw(%s) is a user-defined reduction operator;"
              fn.Combine.fn_name;
            emit "   it cannot appear in an OpenMP reduction clause, so the loop runs";
            emit "   sequentially and unvectorised (cf. PRL, Section 5.2). */";
            emit "%s best;" acc_ty;
            emit "int has = 0;";
            open_loop d;
            List.iter (fun s -> emit "%s" s) value.C_like.decls;
            emit "best = has ? %s_combine_%s(best, %s) : %s; has = 1;" "mdh"
              fn.Combine.fn_name value.C_like.expr value.C_like.expr;
            close ();
            write "best")
        | Combine.Cc -> assert false));
      List.iter (fun _ -> close ()) cc;
      line "}";
      Ok (Buffer.contents b)
    end
