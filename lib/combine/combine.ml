module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Shape = Mdh_tensor.Shape

type custom_fn = {
  fn_name : string;
  apply : Scalar.value -> Scalar.value -> Scalar.value;
  associative : bool;
  commutative : bool;
  identity : Scalar.value option;
  builtin : bool;
}

type t =
  | Cc
  | Pw of custom_fn
  | Ps of custom_fn

let cc = Cc
let pw f = Pw f
let ps f = Ps f

let name = function
  | Cc -> "cc"
  | Pw f -> Printf.sprintf "pw(%s)" f.fn_name
  | Ps f -> Printf.sprintf "ps(%s)" f.fn_name

let pp ppf t = Format.pp_print_string ppf (name t)

let is_reduction = function Cc -> false | Pw _ | Ps _ -> true
let collapses = function Pw _ -> true | Cc | Ps _ -> false
let result_extent t n = if collapses t then 1 else n

let parallelisable = function
  | Cc -> true
  | Pw f | Ps f -> f.associative

let custom_fn_of = function Cc -> None | Pw f | Ps f -> Some f

let builtin fn_name identity apply =
  { fn_name; apply; associative = true; commutative = true; identity; builtin = true }

let add ty =
  let identity = Some (Scalar.zero ty) in
  builtin "add" identity Scalar.add

let mul ty =
  let one =
    match ty with
    | Scalar.Fp32 -> Some (Scalar.f32 1.0)
    | Fp64 -> Some (Scalar.F64 1.0)
    | Int32 -> Some (Scalar.i32 1)
    | Int64 -> Some (Scalar.i64 1)
    | Bool | Char | Record _ -> None
  in
  builtin "mul" one Scalar.mul

let max _ty = builtin "max" None Scalar.max_v
let min _ty = builtin "min" None Scalar.min_v

let custom ~name ?(associative = true) ?(commutative = false) ?identity apply =
  { fn_name = name; apply; associative; commutative; identity; builtin = false }

(* bitwise-or reduction over integer elements; declared associative only —
   commutativity is left for the property verifier to discover (MDH112) *)
let bor ty =
  let apply a b =
    match (a, b) with
    | Scalar.I32 x, Scalar.I32 y -> Scalar.I32 (Int32.logor x y)
    | Scalar.I64 x, Scalar.I64 y -> Scalar.I64 (Int64.logor x y)
    | _ -> invalid_arg "Combine.bor: integer values required"
  in
  let identity =
    match ty with
    | Scalar.Int32 -> Some (Scalar.i32 0)
    | Scalar.Int64 -> Some (Scalar.i64 0)
    | Scalar.Fp32 | Scalar.Fp64 | Scalar.Bool | Scalar.Char | Scalar.Record _ -> None
  in
  custom ~name:"bor" ~associative:true ~commutative:false ?identity apply

let with_declared ?associative ?commutative ?identity fn =
  { fn with
    associative = Option.value associative ~default:fn.associative;
    commutative = Option.value commutative ~default:fn.commutative;
    identity = Option.value identity ~default:fn.identity }

let combine_partials t ~dim lhs rhs =
  let rank = Shape.rank (Dense.shape lhs) in
  if dim < 0 || dim >= rank then invalid_arg "Combine.combine_partials: bad dimension";
  match t with
  | Cc -> Dense.concat ~dim lhs rhs
  | Pw f ->
    if (Dense.shape lhs).(dim) <> 1 || (Dense.shape rhs).(dim) <> 1 then
      invalid_arg "Combine.combine_partials: pw operands must have extent 1";
    Dense.map2 f.apply lhs rhs
  | Ps f ->
    (* Listing 17: the rhs partial's elements each absorb the last element of
       the lhs partial along [dim]; then the halves are concatenated. *)
    let last = (Dense.shape lhs).(dim) - 1 in
    let carry = Dense.slice lhs ~dim ~lo:last ~len:1 in
    let shifted =
      Dense.of_fn (Dense.ty rhs) (Dense.shape rhs) (fun idx ->
          let cidx = Array.copy idx in
          cidx.(dim) <- 0;
          f.apply (Dense.get carry cidx) (Dense.get rhs idx))
    in
    Dense.concat ~dim lhs shifted
