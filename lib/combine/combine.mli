(** Combine operators (the [CO] nonterminal of Listings 7 and 14; the paper's
    Appendix A gives reference implementations).

    Every loop dimension of an MDH computation is associated with one combine
    operator, which states how partial results computed over sub-ranges of
    that dimension are recombined:

    - [cc] — concatenation: partial results occupy disjoint index ranges and
      are juxtaposed. Dimensions combined with [cc] are trivially parallel.
    - [pw f] — point-wise reduction with customising function [f]: the
      dimension collapses to a single element ([index_set_function I = {0}]
      in Listing 16). Parallelisable by tree combination when [f] is
      associative.
    - [ps f] — prefix sum with customising function [f]: the dimension keeps
      its extent; element [i] holds the fold of elements [0..i]
      (Listing 17). Parallelisable with a two-phase scan.

    Customising functions carry algebraic metadata that the lowering uses to
    decide parallelisation legality — exactly the semantic information that
    the paper argues OpenMP/OpenACC-style [reduction(+:x)] clauses cannot
    express for user-defined operators. *)

type custom_fn = {
  fn_name : string;
  apply : Mdh_tensor.Scalar.value -> Mdh_tensor.Scalar.value -> Mdh_tensor.Scalar.value;
  associative : bool;
      (** Declared by the operator author; checked by property tests. *)
  commutative : bool;
  identity : Mdh_tensor.Scalar.value option;
  builtin : bool;
      (** True for operators expressible in OpenMP/OpenACC reduction clauses
          (add, mul, min, max); custom operators like PRL's [prl_max] are
          not. *)
}

type t =
  | Cc
  | Pw of custom_fn
  | Ps of custom_fn

val cc : t
val pw : custom_fn -> t
val ps : custom_fn -> t

val name : t -> string
val pp : Format.formatter -> t -> unit

val is_reduction : t -> bool
(** [true] for [Pw] and [Ps] — the dimension carries a reduction. *)

val collapses : t -> bool
(** [true] iff the result extent along the dimension is 1 ([Pw]). *)

val result_extent : t -> int -> int
(** Result extent along the dimension given its iteration extent. *)

val parallelisable : t -> bool
(** Whether the lowering may split this dimension across parallel units:
    always for [Cc]; for [Pw]/[Ps] iff the customising function is
    associative. *)

val custom_fn_of : t -> custom_fn option

(* Pre-implemented customising functions (paper Appendix A pre-implements
   cc/pw/ps; add/mul/max/min are the builtin reduction operators of
   OpenMP/OpenACC). Each is specialised to an element type. *)

val add : Mdh_tensor.Scalar.ty -> custom_fn
val mul : Mdh_tensor.Scalar.ty -> custom_fn
val max : Mdh_tensor.Scalar.ty -> custom_fn
val min : Mdh_tensor.Scalar.ty -> custom_fn

val bor : Mdh_tensor.Scalar.ty -> custom_fn
(** Bitwise-or reduction over integer elements ([Int32]/[Int64]; other
    types raise on application). Deliberately declared associative but
    {e not} commutative, although the implementation is both — the
    property verifier reports the undeclared commutativity ([MDH112]),
    making this the frontend's witness for verified-but-undeclared
    metadata. Custom-style ([builtin = false]). *)

val custom :
  name:string ->
  ?associative:bool ->
  ?commutative:bool ->
  ?identity:Mdh_tensor.Scalar.value ->
  (Mdh_tensor.Scalar.value -> Mdh_tensor.Scalar.value -> Mdh_tensor.Scalar.value) ->
  custom_fn
(** A user-defined customising function (the paper's [@pw_custom_func], e.g.
    [prl_max] in Listing 11). [associative] defaults to [true],
    [commutative] to [false]. *)

val with_declared :
  ?associative:bool ->
  ?commutative:bool ->
  ?identity:Mdh_tensor.Scalar.value option ->
  custom_fn ->
  custom_fn
(** Override parts of an operator's declared algebraic metadata, keeping the
    implementation. Used by the property verifier to demote operators whose
    declarations were falsified ([~identity:None] withdraws a declared
    identity). Omitted arguments keep the current declaration. *)

val combine_partials : t -> dim:int -> Mdh_tensor.Dense.t -> Mdh_tensor.Dense.t -> Mdh_tensor.Dense.t
(** [combine_partials op ~dim lhs rhs] recombines two partial-result tensors
    along [dim], implementing Appendix A's operator semantics: [Cc]
    concatenates; [Pw] applies the customising function point-wise (both
    operands have extent 1 along [dim]); [Ps] concatenates after adding
    [lhs]'s last hyperplane into every hyperplane of [rhs]. *)
