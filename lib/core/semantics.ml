module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Combine = Mdh_combine.Combine
module Eval = Mdh_expr.Eval

exception Semantic_error of string

let err fmt = Format.kasprintf (fun m -> raise (Semantic_error m)) fmt

let check_inputs (md : Md_hom.t) env =
  List.iter
    (fun (i : Md_hom.input) ->
      match Buffer.env_find_opt env i.inp_name with
      | None -> err "input buffer %S not supplied" i.inp_name
      | Some buf ->
        if not (Scalar.equal_ty (Buffer.ty buf) i.inp_ty) then
          err "input buffer %S has type %s, expected %s" i.inp_name
            (Scalar.ty_to_string (Buffer.ty buf))
            (Scalar.ty_to_string i.inp_ty);
        if not (Shape.equal (Buffer.shape buf) i.inp_shape) then
          err "input buffer %S has shape %s, expected %s" i.inp_name
            (Shape.to_string (Buffer.shape buf))
            (Shape.to_string i.inp_shape))
    md.inputs

let alloc_outputs (md : Md_hom.t) env =
  check_inputs md env;
  List.fold_left
    (fun env (o : Md_hom.output) ->
      Buffer.env_add env (Buffer.create o.out_name o.out_ty o.out_shape))
    env md.outputs

let mk_read env buf idx =
  match Buffer.env_find_opt env buf with
  | Some b -> Dense.get (Buffer.data b) idx
  | None -> err "read of unknown buffer %S" buf

let eval_at (md : Md_hom.t) env (o : Md_hom.output) point =
  let iter = List.init (Md_hom.rank md) (fun d -> (md.dims.(d), point.(d))) in
  Eval.eval { Eval.iter; read = mk_read env } o.value

(* Write a fully-combined result tensor (shape = per-dim result extents of
   the evaluated box) into the output buffer through the out_view. [lo] is
   the global origin of the box; collapsed (pw) dimensions index the view at
   their origin. *)
let write_output env (md : Md_hom.t) (o : Md_hom.output) ?(lo = Array.make (Md_hom.rank md) 0)
    tensor =
  let out_buf = Buffer.env_find env o.out_name in
  Dense.iteri tensor (fun t v ->
      let point = Array.mapi (fun d td -> lo.(d) + td) t in
      let out_idx = Index_fn.apply o.out_access.fn point in
      Dense.set (Buffer.data out_buf) out_idx v)

(* Pointwise tensor over a box, reduced axis by axis (innermost first)
   according to the combine operators. *)
let eval_box (md : Md_hom.t) env (o : Md_hom.output) ~lo ~sz =
  let point = Array.make (Md_hom.rank md) 0 in
  let pointwise =
    Dense.of_fn o.out_ty sz (fun local ->
        Array.iteri (fun d l -> point.(d) <- lo.(d) + l) local;
        eval_at md env o point)
  in
  let result = ref pointwise in
  for d = Md_hom.rank md - 1 downto 0 do
    match md.combine_ops.(d) with
    | Combine.Cc -> ()
    | Pw f -> result := Dense.reduce ~dim:d f.apply !result
    | Ps f -> result := Dense.scan ~dim:d f.apply !result
  done;
  !result

let reference (md : Md_hom.t) env =
  let env = alloc_outputs md env in
  let lo = Array.make (Md_hom.rank md) 0 in
  List.iter
    (fun (o : Md_hom.output) ->
      let tensor = eval_box md env o ~lo ~sz:md.sizes in
      write_output env md o tensor)
    md.outputs;
  env

(* In-place execution: accumulate pw dimensions while sweeping the iteration
   space in row-major order, then post-scan ps dimensions. Requires all pw
   operators to coincide when there is more than one pw dimension (the
   accumulation order interleaves them). *)
let exec (md : Md_hom.t) env =
  let env = alloc_outputs md env in
  let rank = Md_hom.rank md in
  let pw_dims =
    List.filter_map
      (fun d ->
        match md.combine_ops.(d) with Combine.Pw f -> Some (d, f) | Cc | Ps _ -> None)
      (List.init rank Fun.id)
  in
  (match pw_dims with
  | [] | [ _ ] -> ()
  | (_, f0) :: rest ->
    if not (List.for_all (fun (_, f) -> String.equal f.Combine.fn_name f0.Combine.fn_name) rest)
    then
      err "exec: multiple pw dimensions with distinct operators (%s); use `reference`"
        (String.concat ", " (List.map (fun (_, f) -> f.Combine.fn_name) pw_dims)));
  let pw_fn = match pw_dims with [] -> None | (_, f) :: _ -> Some f in
  let is_pw = Array.make rank false in
  List.iter (fun (d, _) -> is_pw.(d) <- true) pw_dims;
  let acc_shape = Md_hom.result_shape md in
  List.iter
    (fun (o : Md_hom.output) ->
      let acc = Dense.create o.out_ty acc_shape in
      let visited = Bytes.make (Shape.num_elements acc_shape) '\000' in
      let target = Array.make rank 0 in
      Shape.iter md.sizes (fun point ->
          let v = eval_at md env o point in
          Array.iteri (fun d p -> target.(d) <- (if is_pw.(d) then 0 else p)) point;
          let lin = Shape.linearize acc_shape target in
          if Bytes.get visited lin = '\000' then begin
            Bytes.set visited lin '\001';
            Dense.set_linear acc lin v
          end
          else
            match pw_fn with
            | Some f -> Dense.set_linear acc lin (f.apply (Dense.get_linear acc lin) v)
            | None -> err "exec: repeated write to output cell without a pw operator");
      let acc = ref acc in
      for d = rank - 1 downto 0 do
        match md.combine_ops.(d) with
        | Combine.Ps f -> acc := Dense.scan ~dim:d f.apply !acc
        | Cc | Pw _ -> ()
      done;
      write_output env md o !acc)
    md.outputs;
  env

(* The MDH decomposition law over one box: split each dimension of the box
   into tiles, evaluate sub-boxes, recombine with the dimension's combine
   operator. The returned tensor covers the whole box (cc dims keep their
   box extent, pw dims collapse, ps dims keep extent); the caller writes it
   through [write_output ~lo]. *)
let eval_box_tiled (md : Md_hom.t) env (o : Md_hom.output) ~lo ~sz ~tile_sizes =
  let rank = Md_hom.rank md in
  if Array.length tile_sizes <> rank then
    err "eval_box_tiled: %d tile sizes for rank-%d computation"
      (Array.length tile_sizes) rank;
  Array.iteri
    (fun d t ->
      if t <= 0 then err "eval_box_tiled: non-positive tile size in dimension %d" d)
    tile_sizes;
  let rec go lo sz d =
    if d = rank then eval_box md env o ~lo ~sz
    else begin
      let tile = min tile_sizes.(d) sz.(d) in
      let combined = ref None in
      let pos = ref 0 in
      while !pos < sz.(d) do
        let chunk = min tile (sz.(d) - !pos) in
        let lo' = Array.copy lo and sz' = Array.copy sz in
        lo'.(d) <- lo.(d) + !pos;
        sz'.(d) <- chunk;
        let partial = go lo' sz' (d + 1) in
        (combined :=
           match !combined with
           | None -> Some partial
           | Some acc ->
             Some (Combine.combine_partials md.combine_ops.(d) ~dim:d acc partial));
        pos := !pos + chunk
      done;
      Option.get !combined
    end
  in
  go (Array.copy lo) (Array.copy sz) 0

(* The same law over the whole iteration space. *)
let eval_tiled (md : Md_hom.t) env ~tile_sizes =
  let rank = Md_hom.rank md in
  let env = alloc_outputs md env in
  List.iter
    (fun (o : Md_hom.output) ->
      let tensor =
        eval_box_tiled md env o ~lo:(Array.make rank 0) ~sz:md.sizes ~tile_sizes
      in
      write_output env md o tensor)
    md.outputs;
  env

let result_tensor _md env name = Buffer.data (Buffer.env_find env name)
