(** Executable semantics of the MDH high-level representation.

    Three interchangeable evaluators, used to cross-validate each other:

    - {!reference}: the paper's equation
      [⊗_1 ... ⊗_D f(a[i_1..i_D])] materialised directly — a pointwise
      tensor over the whole iteration space, reduced axis by axis
      (innermost first). Memory-hungry; the executable definition.
    - {!exec}: an in-place sequential executor — accumulates [pw] dimensions
      during iteration and post-scans [ps] dimensions. Linear memory;
      agrees with {!reference} for associative customising functions
      (property-tested).
    - {!eval_tiled}: evaluates the computation tile by tile and recombines
      partial results with {!Mdh_combine.Combine.combine_partials} — the MDH
      decomposition law that justifies every tiling the lowering performs.
      Agrees with {!reference} for any tile sizes (property-tested). *)

module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense

exception Semantic_error of string

val alloc_outputs : Md_hom.t -> Buffer.env -> Buffer.env
(** Extend an input environment with freshly-allocated (zeroed) output
    buffers. Raises [Semantic_error] if an input buffer is missing or its
    shape/type disagrees with the representation. *)

val reference : Md_hom.t -> Buffer.env -> Buffer.env
(** Evaluate by the definitional semantics; returns the environment extended
    with the computed outputs. Intended for small iteration spaces. *)

val exec : Md_hom.t -> Buffer.env -> Buffer.env
(** In-place sequential execution; linear in output size. *)

val eval_tiled : Md_hom.t -> Buffer.env -> tile_sizes:int array -> Buffer.env
(** Evaluate tile-wise with partial-result recombination. [tile_sizes] gives
    the tile extent per dimension (clamped to the extents; every positive
    value is legal). *)

val result_tensor : Md_hom.t -> Buffer.env -> string -> Dense.t
(** Convenience: the data of a named output buffer in a result env. *)

val eval_box :
  Md_hom.t -> Buffer.env -> Md_hom.output -> lo:int array -> sz:int array -> Dense.t
(** Partial result of one output over the box [\[lo, lo+sz)]: the pointwise
    tensor over the box reduced per the combine operators (extent 1 on [pw]
    dimensions, [sz] otherwise). Partial results combine with
    {!Mdh_combine.Combine.combine_partials} — the primitive that parallel
    executors build on. *)

val eval_box_tiled :
  Md_hom.t ->
  Buffer.env ->
  Md_hom.output ->
  lo:int array ->
  sz:int array ->
  tile_sizes:int array ->
  Dense.t
(** {!eval_box} with the decomposition law applied inside the box: the box
    is split per-dimension into [tile_sizes]-sized sub-boxes, evaluated,
    and recombined with the dimension's combine operator. Equal to
    {!eval_box} for any tile sizes; the plan-driven executor uses it to
    honor cache tiles inside each distributed box. The box must be
    non-empty. *)

val write_output :
  Buffer.env -> Md_hom.t -> Md_hom.output -> ?lo:int array -> Dense.t -> unit
(** Write a combined result tensor into the output buffer through the
    out_view. [lo] (default all-zero) is the box origin the tensor was
    evaluated at. *)
