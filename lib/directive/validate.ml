module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn
module Expr = Mdh_expr.Expr
module Typecheck = Mdh_expr.Typecheck
module Analysis = Mdh_expr.Analysis
module Combine = Mdh_combine.Combine

type error_kind =
  | Imperfect_nest
  | Duplicate_loop_var of string
  | Nonpositive_extent of string
  | Combine_op_arity of { dims : int; ops : int }
  | Mixed_reduction_kinds
  | Duplicate_buffer of string
  | Unknown_buffer of string
  | Assign_to_input of string
  | Read_of_output of string
  | Multiple_assignment of string
  | Missing_assignment of string
  | Type_error of string
  | Shape_error of string
  | Opaque_access_needs_shape of string
  | Invalid_out_view of string

type error = { kind : error_kind; message : string }

let pp_error ppf { message; _ } = Format.fprintf ppf "directive error: %s" message
let error_to_string e = Format.asprintf "%a" pp_error e

let fail kind fmt = Format.kasprintf (fun message -> Error { kind; message }) fmt

type eout = {
  eo_name : string;
  eo_ty : Scalar.ty;
  eo_shape : Shape.t;
  eo_indices : Expr.t list;
  eo_fn : Index_fn.t;
  eo_value : Expr.t;
}

type einp = {
  ei_name : string;
  ei_ty : Scalar.ty;
  ei_shape : Shape.t;
  ei_accesses : (Expr.t list * Index_fn.t) list;
}

type elab = {
  el_dims : string array;
  el_sizes : Shape.t;
  el_combine_ops : Combine.t array;
  el_outs : eout list;
  el_inps : einp list;
}

let ( let* ) = Result.bind

(* --- loop-nest extraction --- *)

let extract_loops nest =
  let rec go acc = function
    | Directive.For { var; extent; body } -> go ((var, extent) :: acc) body
    | Body stmts -> Ok (List.rev acc, stmts)
    | Seq _ ->
      fail Imperfect_nest
        "the loop nest is not perfect: statements or multiple loops at the same level"
  in
  go [] nest

let check_loops loops =
  let rec distinct = function
    | [] -> Ok ()
    | (var, _) :: rest ->
      if List.mem_assoc var rest then
        fail (Duplicate_loop_var var) "loop variable %S bound twice" var
      else distinct rest
  in
  let* () = distinct loops in
  let rec positive = function
    | [] -> Ok ()
    | (var, extent) :: rest ->
      if extent <= 0 then
        fail (Nonpositive_extent var) "loop %S has non-positive extent %d" var extent
      else positive rest
  in
  positive loops

(* --- buffer declarations --- *)

let check_decl_names (dir : Directive.t) =
  let rec distinct seen = function
    | [] -> Ok ()
    | (d : Directive.buffer_decl) :: rest ->
      if List.mem d.buf_name seen then
        fail (Duplicate_buffer d.buf_name) "buffer %S declared twice" d.buf_name
      else distinct (d.buf_name :: seen) rest
  in
  distinct [] (dir.outs @ dir.inps)

(* --- body walk: purity, assignment discipline, typing --- *)

let fold_lets lets value =
  List.fold_right (fun (name, e) acc -> Expr.Let (name, e, acc)) lets value

(* Wrap an expression in the preceding lets only when it actually uses one of
   the bound names; index expressions that do not depend on local bindings
   stay raw, keeping them amenable to affine extraction. *)
let rec uses_vars names = function
  | Expr.Var v -> List.mem v names
  | Const _ | Idx _ -> false
  | Read (_, idxs) -> List.exists (uses_vars names) idxs
  | Binop (_, a, b) -> uses_vars names a || uses_vars names b
  | Unop (_, a) | Field (a, _) | Cast (_, a) -> uses_vars names a
  | If (c, a, b) -> uses_vars names c || uses_vars names a || uses_vars names b
  | Let (n, a, b) -> uses_vars names a || uses_vars (List.filter (( <> ) n) names) b
  | MkRecord fields -> List.exists (fun (_, e) -> uses_vars names e) fields

let fold_lets_if_needed lets value =
  if uses_vars (List.map fst lets) value then fold_lets lets value else value

let find_decl decls name =
  List.find_opt (fun (d : Directive.buffer_decl) -> String.equal d.buf_name name) decls

let check_reads (dir : Directive.t) e =
  let bad = ref None in
  Expr.iter_reads e (fun buf _ ->
      if !bad = None then
        if find_decl dir.outs buf <> None then
          bad := Some { kind = Read_of_output buf;
                        message =
                          Printf.sprintf
                            "output buffer %S is read in the body: the scalar function \
                             must be reduction-free (use `=`, not `+=`; reductions are \
                             expressed by combine_ops)"
                            buf }
        else if find_decl dir.inps buf = None then
          bad := Some { kind = Unknown_buffer buf;
                        message = Printf.sprintf "read of undeclared buffer %S" buf });
  match !bad with Some e -> Error e | None -> Ok ()

let typecheck_env (dir : Directive.t) loops =
  { Typecheck.iter_vars = List.map fst loops;
    buffer_ty =
      (fun name ->
        match find_decl dir.inps name with
        | Some d -> Some d.buf_ty
        | None -> None) }

let walk_body (dir : Directive.t) loops stmts =
  let env = typecheck_env dir loops in
  let typecheck wrapped =
    match Typecheck.infer env wrapped with
    | Ok ty -> Ok ty
    | Error e ->
      let msg = Format.asprintf "%a" Typecheck.pp_error e in
      fail (Type_error msg) "%s" msg
  in
  let rec go lets assigned = function
    | [] -> Ok (List.rev assigned)
    | Directive.Let_stmt (name, e) :: rest ->
      let wrapped = fold_lets (List.rev lets) e in
      let* () = check_reads dir wrapped in
      let* _ty = typecheck wrapped in
      go ((name, e) :: lets) assigned rest
    | Assign { target; indices; value } :: rest ->
      let* decl =
        match find_decl dir.outs target with
        | Some d -> Ok d
        | None ->
          if find_decl dir.inps target <> None then
            fail (Assign_to_input target) "assignment to input buffer %S" target
          else fail (Unknown_buffer target) "assignment to undeclared buffer %S" target
      in
      let* () =
        if List.mem_assoc target assigned then
          fail (Multiple_assignment target)
            "output buffer %S assigned more than once per iteration point" target
        else Ok ()
      in
      let wrapped_value = fold_lets_if_needed (List.rev lets) value in
      let wrapped_indices = List.map (fold_lets_if_needed (List.rev lets)) indices in
      let* () = check_reads dir wrapped_value in
      let* () =
        Mdh_support.Util.list_result_all (List.map (check_reads dir) wrapped_indices)
        |> Result.map ignore
      in
      let* vty = typecheck wrapped_value in
      let* () =
        if Scalar.equal_ty vty decl.buf_ty then Ok ()
        else
          fail
            (Type_error
               (Printf.sprintf "assignment to %S: value type mismatch" target))
            "assignment to %S has type %s, buffer has type %s" target
            (Scalar.ty_to_string vty) (Scalar.ty_to_string decl.buf_ty)
      in
      let* () =
        let rec all_integral = function
          | [] -> Ok ()
          | ie :: more -> (
            let* ity = typecheck ie in
            match ity with
            | Scalar.Int32 | Int64 -> all_integral more
            | _ ->
              fail (Type_error "non-integral index")
                "index expression `%s` of %S has non-integral type %s" (Expr.to_string ie)
                target (Scalar.ty_to_string ity))
        in
        all_integral wrapped_indices
      in
      go lets ((target, (decl, wrapped_indices, wrapped_value)) :: assigned) rest
  in
  let* assigned = go [] [] stmts in
  let* () =
    let rec all_assigned = function
      | [] -> Ok ()
      | (d : Directive.buffer_decl) :: rest ->
        if List.mem_assoc d.buf_name assigned then all_assigned rest
        else
          fail (Missing_assignment d.buf_name) "output buffer %S is never assigned"
            d.buf_name
    in
    all_assigned dir.outs
  in
  Ok assigned

(* --- shape inference and checking (footnote 7) --- *)

let infer_shape ~what ~name ~declared ~sizes accesses =
  (* [accesses]: (index exprs, index fn) pairs for one buffer *)
  let opaque = List.exists (fun (_, fn) -> not (Index_fn.is_affine fn)) accesses in
  if opaque then
    match declared with
    | Some shape -> Ok shape
    | None ->
      fail (Opaque_access_needs_shape name)
        "%s buffer %S has a non-affine access; its size cannot be inferred and must be \
         declared"
        what name
  else begin
    let ranks = List.map (fun (_, fn) -> Index_fn.out_rank fn) accesses in
    match ranks with
    | [] -> (
      match declared with
      | Some shape -> Ok shape
      | None -> fail (Shape_error name) "%s buffer %S is never accessed" what name)
    | r0 :: rest when List.for_all (( = ) r0) rest ->
      let mins = List.map (fun (_, fn) -> Index_fn.min_index fn sizes) accesses in
      let maxs = List.map (fun (_, fn) -> Index_fn.max_index fn sizes) accesses in
      let neg = List.exists (Array.exists (fun x -> x < 0)) mins in
      if neg then
        fail (Shape_error name) "%s buffer %S is accessed at negative indices" what name
      else begin
        let inferred = Array.make r0 0 in
        List.iter
          (Array.iteri (fun d m -> if m + 1 > inferred.(d) then inferred.(d) <- m + 1))
          maxs;
        match declared with
        | None -> Ok inferred
        | Some shape ->
          if Array.length shape <> r0 then
            fail (Shape_error name)
              "%s buffer %S declared with rank %d but accessed with rank %d" what name
              (Array.length shape) r0
          else if Array.exists2 (fun s i -> s < i) shape inferred then
            fail (Shape_error name)
              "%s buffer %S declared as %s but accesses reach %s" what name
              (Shape.to_string shape) (Shape.to_string inferred)
          else Ok shape
      end
    | _ ->
      fail (Shape_error name) "%s buffer %S accessed with inconsistent ranks" what name
  end

(* --- output-view discipline --- *)

let check_out_view ~sizes ~combine_ops name fn =
  match fn with
  | Index_fn.Opaque _ ->
    fail (Invalid_out_view name) "output access of %S must be affine" name
  | Index_fn.Affine _ ->
    let rank = Array.length sizes in
    let rec check_dims d =
      if d = rank then Ok ()
      else if
        Combine.collapses combine_ops.(d)
        && Index_fn.uses_dim fn d = Some true
      then
        fail (Invalid_out_view name)
          "output access of %S depends on dimension %d, which is collapsed by %s" name d
          (Combine.name combine_ops.(d))
      else check_dims (d + 1)
    in
    let* () = check_dims 0 in
    let subspace =
      Array.mapi (fun d n -> if Combine.collapses combine_ops.(d) then 1 else n) sizes
    in
    (match Index_fn.injective_on fn subspace with
    | Some true -> Ok ()
    | Some false ->
      fail (Invalid_out_view name)
        "output access of %S is not injective on the non-collapsed subspace: combined \
         results would overwrite each other"
        name
    | None ->
      fail (Invalid_out_view name) "could not prove injectivity of output access of %S"
        name)

(* --- top level --- *)

let elaborate (dir : Directive.t) =
  let* loops, stmts = extract_loops dir.nest in
  let* () = check_loops loops in
  let dims = Array.of_list (List.map fst loops) in
  let sizes = Array.of_list (List.map snd loops) in
  let* () =
    let dims_n = Array.length dims and ops_n = List.length dir.combine_ops in
    if dims_n = ops_n then Ok ()
    else
      fail
        (Combine_op_arity { dims = dims_n; ops = ops_n })
        "combine_ops has %d entries but the loop nest has depth %d" ops_n dims_n
  in
  let combine_ops = Array.of_list dir.combine_ops in
  let* () =
    let has_pw = Array.exists (function Combine.Pw _ -> true | _ -> false) combine_ops in
    let has_ps = Array.exists (function Combine.Ps _ -> true | _ -> false) combine_ops in
    if has_pw && has_ps then
      fail Mixed_reduction_kinds
        "pw and ps combine operators cannot be mixed in one computation: their \
         nesting does not satisfy the interchange law the MDH decomposition relies on"
    else Ok ()
  in
  let* () = check_decl_names dir in
  let* assigned = walk_body dir loops stmts in
  (* outputs *)
  let* outs =
    Mdh_support.Util.list_result_all
      (List.map
         (fun (name, ((decl : Directive.buffer_decl), indices, value)) ->
           let fn = Analysis.index_fn_of_exprs ~dims indices in
           let* shape =
             infer_shape ~what:"output" ~name ~declared:decl.buf_shape ~sizes
               [ (indices, fn) ]
           in
           let* () = check_out_view ~sizes ~combine_ops name fn in
           Ok { eo_name = name; eo_ty = decl.buf_ty; eo_shape = shape;
                eo_indices = indices; eo_fn = fn; eo_value = value })
         assigned)
  in
  (* inputs: distinct textual accesses over all assigned values *)
  let* inps =
    Mdh_support.Util.list_result_all
      (List.map
         (fun (decl : Directive.buffer_decl) ->
           let name = decl.buf_name in
           let accesses = ref [] in
           List.iter
             (fun (_, (_, _, value)) ->
               Expr.iter_reads value (fun buf idxs ->
                   if String.equal buf name && not (List.mem idxs !accesses) then
                     accesses := idxs :: !accesses))
             assigned;
           let accesses =
             List.rev_map (fun idxs -> (idxs, Analysis.index_fn_of_exprs ~dims idxs))
               !accesses
           in
           let* shape =
             infer_shape ~what:"input" ~name ~declared:decl.buf_shape ~sizes accesses
           in
           Ok { ei_name = name; ei_ty = decl.buf_ty; ei_shape = shape;
                ei_accesses = accesses })
         dir.inps)
  in
  Ok { el_dims = dims; el_sizes = sizes; el_combine_ops = combine_ops;
       el_outs = outs; el_inps = inps }

let run dir = Result.map ignore (elaborate dir)
let check = run

(* Stable diagnostic codes, shared with Mdh_analysis.Diagnostic.code_table —
   both sides are pinned by tests, so a mismatch fails the suite. *)
let error_code = function
  | Imperfect_nest -> "MDH001"
  | Duplicate_loop_var _ -> "MDH002"
  | Nonpositive_extent _ -> "MDH003"
  | Combine_op_arity _ -> "MDH004"
  | Mixed_reduction_kinds -> "MDH005"
  | Duplicate_buffer _ -> "MDH006"
  | Unknown_buffer _ -> "MDH007"
  | Assign_to_input _ -> "MDH008"
  | Read_of_output _ -> "MDH009"
  | Multiple_assignment _ -> "MDH010"
  | Missing_assignment _ -> "MDH011"
  | Type_error _ -> "MDH012"
  | Shape_error _ -> "MDH013"
  | Opaque_access_needs_shape _ -> "MDH014"
  | Invalid_out_view _ -> "MDH015"

let error_subject = function
  | Imperfect_nest | Mixed_reduction_kinds | Combine_op_arity _
  | Type_error _ | Shape_error _ | Invalid_out_view _ -> None
  | Duplicate_loop_var s | Nonpositive_extent s | Duplicate_buffer s
  | Unknown_buffer s | Assign_to_input s | Read_of_output s
  | Multiple_assignment s | Missing_assignment s
  | Opaque_access_needs_shape s -> Some s
