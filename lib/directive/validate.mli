(** Static validation and elaboration of MDH directives (Section 4.2).

    A directive is well-formed when:
    - the loop nest is perfect (no statements or sequencing between loops);
    - loop variables are distinct and extents positive;
    - exactly one combine operator is given per loop dimension, and [pw]
      and [ps] operators are not mixed in one computation (their nesting
      does not satisfy the interchange law the MDH decomposition relies
      on — reducing then scanning differs from scanning then reducing);
    - every assignment targets a declared output buffer, each output buffer
      is assigned exactly once per iteration point, and no statement reads an
      output buffer or writes an input buffer (the body is a pure scalar
      function computing a single point; reductions are expressed only
      through combine operators);
    - all expressions type-check; index expressions are integral;
    - buffer shapes are consistent: inferred access bounds must fit declared
      shapes, accesses must not reach negative indices, and buffers with
      non-affine (opaque) accesses must declare shapes (footnote 7);
    - every output access is affine, independent of [pw]-collapsed
      dimensions, and injective on the remaining subspace, so combined
      partial results occupy disjoint cells. *)

module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn

type error_kind =
  | Imperfect_nest
  | Duplicate_loop_var of string
  | Nonpositive_extent of string
  | Combine_op_arity of { dims : int; ops : int }
  | Mixed_reduction_kinds
  | Duplicate_buffer of string
  | Unknown_buffer of string
  | Assign_to_input of string
  | Read_of_output of string
  | Multiple_assignment of string
  | Missing_assignment of string
  | Type_error of string
  | Shape_error of string
  | Opaque_access_needs_shape of string
  | Invalid_out_view of string

type error = { kind : error_kind; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Elaborated directive: everything the transformation to the MDH DSL needs,
    with local [let] bindings folded into the assigned values and buffer
    shapes resolved. *)

type eout = {
  eo_name : string;
  eo_ty : Scalar.ty;
  eo_shape : Shape.t;
  eo_indices : Mdh_expr.Expr.t list;
  eo_fn : Index_fn.t;
  eo_value : Mdh_expr.Expr.t;
}

type einp = {
  ei_name : string;
  ei_ty : Scalar.ty;
  ei_shape : Shape.t;
  ei_accesses : (Mdh_expr.Expr.t list * Index_fn.t) list;
      (** distinct textual accesses — the #ACC of Listing 14 *)
}

type elab = {
  el_dims : string array;
  el_sizes : Shape.t;
  el_combine_ops : Mdh_combine.Combine.t array;
  el_outs : eout list;
  el_inps : einp list;
}

val elaborate : Directive.t -> (elab, error) result
(** Full validation; the first violation (checked roughly in the order of
    the list above) wins. *)

val run : Directive.t -> (unit, error) result

val check : Directive.t -> (unit, error) result
(** Alias of {!run}; the fail-fast counterpart of the accumulating analyzer
    in [Mdh_analysis] — a directive passes [check] iff the analyzer reports
    no error-severity diagnostic for codes MDH001–MDH015. *)

val error_code : error_kind -> string
(** The stable diagnostic code ([MDH001]..[MDH015]) for an error kind, as
    listed in [Mdh_analysis.Diagnostic.code_table] and docs/DIAGNOSTICS.md. *)

val error_subject : error_kind -> string option
(** The buffer or loop-variable name the error is about, when it carries
    one. *)
