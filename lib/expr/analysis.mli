(** Static analyses of scalar functions used by the directive-to-DSL
    transformation (Section 4.3, Figures 1 and 2) and by the machine cost
    model: affine extraction of index expressions, access collection, and
    operation counting. *)

val affine_of_index_exprs :
  dims:string array -> Expr.t list -> Mdh_tensor.Index_fn.t option
(** Extract a symbolic affine index function from index expressions over the
    iteration variables [dims] (e.g. [[i; 2*p + r]]). [None] when any
    coordinate is not affine (contains reads, conditionals, division, ...). *)

val index_fn_of_exprs :
  dims:string array -> Expr.t list -> Mdh_tensor.Index_fn.t
(** Like {!affine_of_index_exprs} but falls back to an opaque index function
    backed by the evaluator. *)

val reads : Expr.t -> (string * Expr.t list) list
(** All buffer accesses in the expression, in syntactic order, with
    duplicates preserved (one entry per textual access — the #ACC counts of
    Listing 14). *)

val flops : Expr.t -> int
(** Arithmetic/comparison operation count of one evaluation: worst case over
    conditional branches. *)

val is_int_const : int -> Expr.t -> bool
(** The expression is an integer constant (either width) with this value. *)

val int_consts : Expr.t -> Expr.t -> (int * int * (int -> Expr.t)) option
(** Both expressions are integer constants of the same width: their values
    plus a constructor rebuilding a constant of that width. *)

val uses_var : string -> Expr.t -> bool
(** A free [Var] occurrence of the name exists (respects [Let] shadowing). *)

val simplify : Expr.t -> Expr.t
(** Semantics-preserving clean-up: constant folding on integer arithmetic
    and booleans, and the unit/absorbing laws [e + 0], [0 + e], [e * 1],
    [1 * e], [e * 0] (integers only), [e - 0], double negation, conditional
    with a constant condition, and [let]s whose body ignores the binding
    (the binding is pure by construction). Floating-point expressions are
    left untouched except for exact structural no-ops, so rounding
    behaviour is preserved. Property-tested against the evaluator. *)

val contains_data_dependent_branch : Expr.t -> bool
(** True when an [If] condition reads a buffer element (directly or through
    a local binding) — the pattern that makes Pluto's polyhedral extraction
    fail on PRL (Section 5.2). *)
