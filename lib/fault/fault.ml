(* Deterministic fault injection for the tuning/execution runtime.

   Faults are armed from a textual spec (MDH_FAULTS, or `mdhc --inject`)
   and fire at named sites threaded through the runtime. Every trigger
   is a pure function of its per-trigger hit counter (plus a seed for
   corruption byte choice), so a chaos run is exactly reproducible.

   When disarmed — the default — every entry point is a single atomic
   load, mirroring the Mdh_obs contract: instrumentation stays in the
   hot path permanently at zero cost. *)

exception Injected of string

type action =
  | Raise
  | Delay of float
  | Truncate of int
  | Corrupt of int (* seed for the deterministic byte flip *)

type trigger = {
  site : string;
  action : action;
  at : int; (* 1-based hit index of the first firing *)
  every : int option; (* None = one-shot; Some k = re-fire every k hits *)
  hits : int Atomic.t;
}

let sites =
  [ "pool.job"; "kernel.run"; "cost.eval"; "db.read"; "db.write"; "db.rename";
    "serve.accept"; "serve.read"; "serve.write"; "serve.handle" ]

let armed_flag = Atomic.make false
let triggers : trigger list ref = ref []
let mutex = Mutex.create ()

let m_injected = Mdh_obs.Metrics.counter "fault.injected"

let m_site site =
  (* per-site registration is idempotent, so looking the counter up on
     the (rare) injection path is fine *)
  Mdh_obs.Metrics.counter ("fault.injected." ^ site)

let action_name = function
  | Raise -> "raise"
  | Delay s -> Printf.sprintf "delay=%g" (s *. 1e3)
  | Truncate n -> Printf.sprintf "truncate=%d" n
  | Corrupt seed -> Printf.sprintf "corrupt=%d" seed

let trigger_to_string t =
  Printf.sprintf "%s:%s@%d%s" t.site (action_name t.action) t.at
    (match t.every with None -> "" | Some k -> Printf.sprintf "/%d" k)

let grammar =
  "SPEC     := CLAUSE (',' CLAUSE)*\n\
   CLAUSE   := SITE ':' ACTION ['@' N] ['/' EVERY]\n\
   SITE     := pool.job | kernel.run | cost.eval | db.read | db.write\n\
  \          | db.rename | serve.accept | serve.read | serve.write | serve.handle\n\
   ACTION   := raise              (raise Mdh_fault.Fault.Injected)\n\
  \          | delay=MILLIS       (sleep before proceeding)\n\
  \          | truncate=N         (keep only N bytes of the payload)\n\
  \          | corrupt=SEED       (flip one seeded byte of the payload)\n\
   '@ N'    fires on the N-th hit of the site (default 1);\n\
   '/EVERY' re-fires every EVERY hits after that (default: one-shot)."

let parse_action s =
  match String.index_opt s '=' with
  | None -> if s = "raise" then Ok Raise else Error ("unknown action " ^ s)
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match (name, int_of_string_opt arg) with
    | "delay", Some ms when ms >= 0 -> Ok (Delay (float_of_int ms /. 1e3))
    | "truncate", Some n when n >= 0 -> Ok (Truncate n)
    | "corrupt", Some seed -> Ok (Corrupt seed)
    | ("delay" | "truncate" | "corrupt"), _ ->
      Error (Printf.sprintf "bad argument in %S" s)
    | _ -> Error ("unknown action " ^ name))

let parse_clause clause =
  let clause = String.trim clause in
  match String.split_on_char ':' clause with
  | [ site; rest ] -> (
    if not (List.mem site sites) then
      Error
        (Printf.sprintf "unknown site %S (known: %s)" site
           (String.concat ", " sites))
    else
      let rest, every =
        match String.index_opt rest '/' with
        | None -> (rest, Ok None)
        | Some i ->
          ( String.sub rest 0 i,
            match
              int_of_string_opt
                (String.sub rest (i + 1) (String.length rest - i - 1))
            with
            | Some k when k >= 1 -> Ok (Some k)
            | _ -> Error (Printf.sprintf "bad repeat count in %S" clause) )
      in
      let rest, at =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1)
        | Some i -> (
          ( String.sub rest 0 i,
            match
              int_of_string_opt
                (String.sub rest (i + 1) (String.length rest - i - 1))
            with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (Printf.sprintf "bad hit index in %S" clause) ))
      in
      match (parse_action rest, at, every) with
      | Ok action, Ok at, Ok every ->
        Ok { site; action; at; every; hits = Atomic.make 0 }
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "clause %S is not SITE:ACTION" clause)

let parse spec =
  let clauses =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
  in
  if clauses = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc clause ->
        match (acc, parse_clause clause) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok ts, Ok t -> Ok (ts @ [ t ]))
      (Ok []) clauses

let arm ts =
  Mutex.lock mutex;
  triggers := ts;
  Atomic.set armed_flag (ts <> []);
  Mutex.unlock mutex

let disarm () = arm []
let armed () = Atomic.get armed_flag

let configure spec = Result.map arm (parse spec)

let arm_from_env () =
  match Sys.getenv_opt "MDH_FAULTS" with
  | None | Some "" -> Ok false
  | Some spec -> Result.map (fun () -> true) (configure spec)

(* a trigger fires on hit [at], then every [every] hits after it *)
let fires t n =
  n = t.at
  || (match t.every with
     | Some k -> n > t.at && (n - t.at) mod k = 0
     | None -> false)

let record_injection site =
  Mdh_obs.Metrics.incr m_injected;
  Mdh_obs.Metrics.incr (m_site site)

(* deterministic byte corruption: splitmix-style mix of the seed picks
   the offset and the xor mask, so a given spec always tears the same
   byte the same way *)
let corrupt_payload seed payload =
  if String.length payload = 0 then payload
  else begin
    let z = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let mixed = Int64.to_int (Int64.shift_right_logical z 8) in
    let off = abs mixed mod String.length payload in
    let mask = 1 + (abs (mixed lsr 16) mod 255) in
    let b = Bytes.of_string payload in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
    Bytes.to_string b
  end

(* [hit] drives the control actions (raise, delay) and [mangle] the
   payload actions (truncate, corrupt); each trigger's hit counter is
   touched by exactly one of the two, so a site that calls both — e.g.
   db.write — never double-counts a trigger *)
let slow_hit site =
  List.iter
    (fun t ->
      match t.action with
      | (Raise | Delay _) when t.site = site ->
        let n = 1 + Atomic.fetch_and_add t.hits 1 in
        if fires t n then begin
          record_injection site;
          match t.action with
          | Raise -> raise (Injected site)
          | Delay s -> Unix.sleepf s
          | Truncate _ | Corrupt _ -> assert false
        end
      | _ -> ())
    !triggers

let hit site = if Atomic.get armed_flag then slow_hit site

let slow_mangle site payload =
  List.fold_left
    (fun payload t ->
      match t.action with
      | (Truncate _ | Corrupt _) when t.site = site ->
        let n = 1 + Atomic.fetch_and_add t.hits 1 in
        if not (fires t n) then payload
        else begin
          record_injection site;
          match t.action with
          | Truncate keep -> String.sub payload 0 (min keep (String.length payload))
          | Corrupt seed -> corrupt_payload seed payload
          | Raise | Delay _ -> assert false
        end
      | _ -> payload)
    payload !triggers

let mangle site payload =
  if Atomic.get armed_flag then slow_mangle site payload else payload
