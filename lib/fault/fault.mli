(** Deterministic, seeded fault injection for the tuning runtime.

    The runtime threads named {e sites} through its failure-prone
    operations — worker job start, cost-model evaluation, tuning-store
    I/O — and this module decides, from an armed spec, whether each hit
    of a site misbehaves. Triggers fire on exact hit counts (optionally
    repeating), and payload corruption is seeded, so every chaos run is
    bit-for-bit reproducible.

    Disarmed (the default), {!hit} and {!mangle} cost one atomic load:
    the hooks stay in production code paths permanently, like
    [Mdh_obs]. Arm via [MDH_FAULTS] ({!arm_from_env}), [mdhc --inject],
    or {!configure}.

    Spec grammar (see also {!grammar}):
    {v
    SPEC   := CLAUSE (',' CLAUSE)*
    CLAUSE := SITE ':' ACTION ['@' N] ['/' EVERY]
    SITE   := pool.job | kernel.run | cost.eval | db.read | db.write
            | db.rename | serve.accept | serve.read | serve.write | serve.handle
    ACTION := raise | delay=MILLIS | truncate=N | corrupt=SEED
    v}
    e.g. [cost.eval:raise@40] raises on the 40th cost evaluation;
    [db.write:truncate=5] tears the first journal append after 5 bytes;
    [pool.job:delay=300/2] stalls every second worker job start 300 ms. *)

exception Injected of string
(** Raised by a [raise]-action trigger; the payload is the site name. *)

type action =
  | Raise
  | Delay of float  (** seconds *)
  | Truncate of int  (** keep at most N payload bytes *)
  | Corrupt of int  (** seed choosing which payload byte to flip, and how *)

type trigger = {
  site : string;
  action : action;
  at : int;  (** 1-based hit index of the first firing *)
  every : int option;  (** [None] = one-shot *)
  hits : int Atomic.t;
}

val sites : string list
(** The site names the runtime instruments. *)

val grammar : string
(** Human-readable spec grammar, for [--inject] help and error text. *)

val parse : string -> (trigger list, string) result

val arm : trigger list -> unit
val disarm : unit -> unit
val armed : unit -> bool

val configure : string -> (unit, string) result
(** Parse a spec and arm it. *)

val arm_from_env : unit -> (bool, string) result
(** Arm from [MDH_FAULTS] if set and non-empty; [Ok true] when armed,
    [Ok false] when the variable is absent, [Error] on a bad spec. *)

val hit : string -> unit
(** Control-action sites: may raise {!Injected} or sleep. Counted on
    the registry as [fault.injected] / [fault.injected.<site>]. *)

val mangle : string -> string -> string
(** Payload-action sites: returns the (possibly truncated or seeded-
    corrupted) payload a write should persist instead of the intent. *)

val trigger_to_string : trigger -> string
