module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Index_fn = Mdh_tensor.Index_fn
module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Device = Mdh_machine.Device
module Roofline = Mdh_machine.Roofline
module Util = Mdh_support.Util

type codegen = {
  cg_name : string;
  base_compute_eff : float;
  base_bw_eff : float;
}

let tuned_codegen = { cg_name = "tuned"; base_compute_eff = 0.80; base_bw_eff = 0.90 }
let good_codegen = { cg_name = "good"; base_compute_eff = 0.65; base_bw_eff = 0.80 }
let plain_codegen = { cg_name = "plain"; base_compute_eff = 0.55; base_bw_eff = 0.75 }
let jit_codegen = { cg_name = "jit"; base_compute_eff = 0.45; base_bw_eff = 0.65 }

type analysis = {
  stats : Roofline.stats;
  efficiency : Roofline.efficiency;
  breakdown : Roofline.breakdown;
  achieved_units : int;
  tile_working_set_bytes : int;
  n_tiles : int;
}

(* An input access has unit stride in dimension [d] when some affine access's
   last (fastest-varying) coordinate carries coefficient 1 on [d]. *)
let unit_stride_access (md : Md_hom.t) d =
  List.exists
    (fun (i : Md_hom.input) ->
      List.exists
        (fun (a : Md_hom.access) ->
          match a.fn with
          | Index_fn.Affine { coords; _ } when Array.length coords > 0 ->
            (coords.(Array.length coords - 1)).Index_fn.coeffs.(d) = 1
          | _ -> false)
        i.accesses)
    md.inputs

let clamp_frac x = Float.min 1.0 (Float.max 1e-4 x)

let analyse_plan ?(include_transfers = false) (md : Md_hom.t) (dev : Device.t) cg
    (plan : Plan.t) =
    let rank = Md_hom.rank md in
    let points = float_of_int (Md_hom.total_points md) in
    (* every iteration point also feeds one combine application per
       reduction dimension (the fold the directive abstracts away) *)
    let fold_ops =
      Array.fold_left
        (fun acc op -> if Combine.is_reduction op then acc + 1 else acc)
        0 md.combine_ops
    in
    let base_flops =
      points *. float_of_int (max 1 (Md_hom.flops_per_point md) + fold_ops)
    in

    (* --- parallelism: the plan already did the counting --- *)
    let parallel_dims = plan.Plan.parallel_dims in
    let used_layers = plan.Plan.used_layers in
    let achieved_units = Plan.parallelism plan in
    let parallel_fraction =
      clamp_frac
        (float_of_int achieved_units /. float_of_int dev.Device.compute_saturation_units)
    in

    (* --- vectorisation quality --- *)
    let innermost_layer = Array.length dev.Device.layers - 1 in
    let innermost_parallel_dim =
      List.fold_left
        (fun acc d -> match acc with Some m when m > d -> acc | _ -> Some d)
        None parallel_dims
    in
    let vector_eff =
      if not (List.mem innermost_layer used_layers) then 1.0
      else
        match innermost_parallel_dim with
        | None -> 1.0
        | Some vd ->
          let reduction_penalty =
            if Combine.is_reduction md.combine_ops.(vd) then 0.6 else 1.0
          in
          let stride_penalty = if unit_stride_access md vd then 1.0 else 0.4 in
          reduction_penalty *. stride_penalty
    in

    (* --- reduction parallelisation costs --- *)
    let cc_par_iters =
      List.fold_left
        (fun acc d ->
          if Combine.is_reduction md.combine_ops.(d) then acc else acc * md.sizes.(d))
        1 parallel_dims
    in
    let par_reduction_dims =
      List.filter (fun d -> Combine.is_reduction md.combine_ops.(d)) parallel_dims
    in
    let result_cells = float_of_int (Shape.num_elements (Md_hom.result_shape md)) in
    let out_elem_bytes =
      List.fold_left (fun acc (o : Md_hom.output) -> acc + Scalar.size_bytes o.out_ty) 0
        md.outputs
    in
    let leftover_units =
      max 1 (achieved_units / max 1 (min cc_par_iters achieved_units))
    in
    let n_par_red = List.length par_reduction_dims in
    let split_per_red_dim =
      if n_par_red = 0 then 1
      else
        max 2
          (int_of_float
             (Float.round
                (float_of_int leftover_units ** (1.0 /. float_of_int n_par_red))))
    in
    let combine_flops = ref 0.0 in
    let combine_cache_bytes = ref 0.0 in
    let extra_launches = ref 0 in
    let scan_factor = ref 1.0 in
    List.iter
      (fun d ->
        let s = min md.sizes.(d) split_per_red_dim in
        match md.combine_ops.(d) with
        | Combine.Pw _ ->
          (* record-typed operators combine several fields; approximate the
             combine cost by the output element width *)
          let cf_ops = float_of_int (max 1 (out_elem_bytes / 4)) in
          combine_flops := !combine_flops +. (result_cells *. float_of_int (s - 1) *. cf_ops);
          combine_cache_bytes :=
            !combine_cache_bytes
            +. (result_cells *. float_of_int (out_elem_bytes * s) *. 2.0);
          (* the tree combine runs hierarchically inside the kernel; one
             extra pass finalises cross-block partials *)
          if dev.Device.kind = Device.Gpu then extra_launches := !extra_launches + 1
        | Combine.Ps _ ->
          (* two-phase parallel scan roughly doubles the work of that pass *)
          scan_factor := 2.0
        | Combine.Cc -> ())
      par_reduction_dims;
    let flops = (base_flops *. !scan_factor) +. !combine_flops in

    (* --- memory traffic --- *)
    let box = plan.Plan.tile_sizes in
    let n_tiles =
      let acc = ref 1 in
      for d = 0 to rank - 1 do
        acc := !acc * Util.ceil_div md.sizes.(d) box.(d)
      done;
      !acc
    in
    let in_tile = Footprint.tile_input_bytes md ~box in
    let out_tile = Footprint.tile_output_bytes md ~box in
    let working_set = in_tile + out_tile in
    let tiled_read_traffic = float_of_int n_tiles *. float_of_int in_tile in
    let naive_read = Footprint.naive_read_bytes md in
    let compulsory_read = float_of_int (Md_hom.input_bytes md) in
    let out_bytes = float_of_int (Md_hom.bytes_written md) in
    let n_levels = Array.length dev.Device.mem in
    let level_bytes = Array.make n_levels 0.0 in
    for i = 0 to n_levels - 1 do
      let reads =
        if i = n_levels - 1 then naive_read
        else if working_set <= dev.Device.mem.(i + 1).Device.capacity_bytes then
          Float.min naive_read (Float.max compulsory_read tiled_read_traffic)
        else naive_read
      in
      (* traffic cannot shrink moving inward *)
      let reads = if i > 0 then Float.max reads (level_bytes.(i - 1)) else reads in
      level_bytes.(i) <- reads
    done;
    (* write traffic: outputs stream through every level; parallel-reduction
       partials stay in cache *)
    for i = 0 to n_levels - 1 do
      level_bytes.(i) <- level_bytes.(i) +. out_bytes
    done;
    if n_levels > 1 then
      level_bytes.(n_levels - 1) <- level_bytes.(n_levels - 1) +. !combine_cache_bytes;

    (* --- bandwidth saturation: few concurrent units cannot fill DRAM --- *)
    let saturation =
      clamp_frac
        (Float.max dev.Device.min_bw_fraction
           (float_of_int achieved_units /. float_of_int dev.Device.saturation_units))
    in
    let efficiency =
      { Roofline.parallel_fraction;
        compute_efficiency = clamp_frac (cg.base_compute_eff *. vector_eff);
        bandwidth_efficiency = clamp_frac (cg.base_bw_eff *. saturation) }
    in
    let link_bytes =
      if include_transfers then float_of_int (Md_hom.input_bytes md) +. out_bytes else 0.0
    in
    let stats =
      { Roofline.flops;
        level_bytes;
        link_bytes;
        launches = 1 + !extra_launches;
        serial_ops = 0.0 }
    in
    let breakdown = Roofline.estimate dev efficiency stats in
    { stats; efficiency; breakdown; achieved_units;
      tile_working_set_bytes = working_set; n_tiles }

(* --- per-level attribution -------------------------------------------- *)

type level_share = {
  ls_path : string;
  ls_label : string;
  ls_fraction : float;
}

let level_attribution (plan : Plan.t) =
  (* iteration count a level contributes at its own depth *)
  let iters = function
    | Plan.Distribute { extents; _ } -> List.fold_left ( * ) 1 extents
    | Plan.Tree_reduce { extent; _ } -> extent
    | Plan.Tile { tile; extent; _ } -> Util.ceil_div extent tile
    | Plan.Seq { extent; _ } -> extent
    | Plan.Accumulate { extent; _ } -> extent
    | Plan.Scan { extent; _ } -> extent
  in
  (* weight of a level = how many times its loop body is entered (the
     running product of enclosing iteration counts); the leaf additionally
     carries the scalar-function cost per point. This is the model-side
     counterpart of the profiler's per-level self time: loop control is
     priced per entry, point work per flop. *)
  let entered = ref 1.0 in
  let weights =
    List.mapi
      (fun i lvl ->
        let w = !entered *. float_of_int (max 1 (iters lvl)) in
        entered := w;
        (i, lvl, w))
      plan.Plan.levels
  in
  let leaf_w = !entered *. float_of_int (max 1 plan.Plan.point_flops) in
  let total =
    leaf_w +. List.fold_left (fun a (_, _, w) -> a +. w) 0.0 weights
  in
  List.map
    (fun (i, lvl, w) ->
      { ls_path = "L" ^ string_of_int i;
        ls_label = Format.asprintf "%a" Plan.pp_level lvl;
        ls_fraction = w /. total })
    weights
  @ [ { ls_path = "leaf";
        ls_label =
          Printf.sprintf "point: scalar function (%d ops)"
            plan.Plan.point_flops;
        ls_fraction = leaf_w /. total } ]

let analyse ?include_transfers (md : Md_hom.t) (dev : Device.t) cg sched =
  Result.map
    (fun plan -> analyse_plan ?include_transfers md dev cg plan)
    (Plan_cache.build md dev sched)

let seconds ?include_transfers md dev cg sched =
  Result.map
    (fun a -> a.breakdown.Roofline.total_s)
    (analyse ?include_transfers md dev cg sched)
