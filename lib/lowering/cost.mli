(** Analytic execution-cost model: an MDH computation under a schedule on a
    device.

    The model charges (i) scalar work against the device's compute roof
    scaled by achieved parallel utilisation, vectorisation quality and a
    code-generation efficiency profile; (ii) memory traffic per hierarchy
    level, derived from tile working sets (a tile whose working set fits a
    level streams its footprint once across that level's boundary; one that
    does not pays the untiled per-access traffic); (iii) partial-result
    combination for parallelised reduction dimensions (tree combine for
    [pw], two-phase scan for [ps]); and (iv) launch overheads and — when
    requested — host-link transfers.

    All relative effects in Figure 4 (tiling wins, reduction-parallelisation
    wins, under-utilisation collapses, shape sensitivity) emerge from (i)-(iii);
    the codegen profile only sets each system's baseline quality. *)

type codegen = {
  cg_name : string;
  base_compute_eff : float;  (** inner-loop pipeline quality, in (0,1] *)
  base_bw_eff : float;  (** achieved fraction of peak bandwidth, in (0,1] *)
}

val tuned_codegen : codegen
(** Auto-tuned generated code (MDH after ATF search, Section 5: 12h budget). *)

val good_codegen : codegen
(** Solid static compiler output (polyhedral compilers, TVM). *)

val plain_codegen : codegen
(** Straightforward OpenMP/OpenACC-style compiler output. *)

val jit_codegen : codegen
(** JIT output with Python-driven glue (Numba). *)

type analysis = {
  stats : Mdh_machine.Roofline.stats;
  efficiency : Mdh_machine.Roofline.efficiency;
  breakdown : Mdh_machine.Roofline.breakdown;
  achieved_units : int;  (** concurrent units actually kept busy *)
  tile_working_set_bytes : int;
  n_tiles : int;
}

val analyse_plan :
  ?include_transfers:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  codegen ->
  Plan.t ->
  analysis
(** Price an already-built plan: the plan carries the achieved parallelism,
    clamped tile sizes and layer occupancy, so the cost model no longer
    re-derives structure from the raw schedule. [achieved_units] equals
    {!Plan.parallelism} by construction. [include_transfers] (default
    false) adds host-link traffic for all input and output buffers. *)

val analyse :
  ?include_transfers:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  codegen ->
  Schedule.t ->
  (analysis, string) result
(** [analyse_plan] over the schedule's plan (built through {!Plan_cache});
    [Error] iff the schedule is illegal for the computation. *)

type level_share = {
  ls_path : string;  (** profiler path of the level: ["L0"].. or ["leaf"] *)
  ls_label : string;  (** human label, {!Plan.pp_level}'s rendering *)
  ls_fraction : float;  (** model-attributed share of the run, in [0,1] *)
}

val level_attribution : Plan.t -> level_share list
(** The model's time attribution across a plan's levels: each level is
    charged one unit per entry of its loop body (the running product of
    enclosing iteration counts), the leaf additionally carries the
    scalar-function flops per point. Fractions sum to 1; one entry per
    plan level, outermost first, the leaf last — paths match the
    profiler's, so measured and modelled shares line up row by row. *)

val seconds :
  ?include_transfers:bool ->
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  codegen ->
  Schedule.t ->
  (float, string) result
(** Estimated wall-clock seconds ([analyse] total). *)
