module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device
module Metrics = Mdh_obs.Metrics
module Trace = Mdh_obs.Trace
module Crc32 = Mdh_support.Crc32

type level =
  | Distribute of {
      dims : int list;
      extents : int list;
      over : string;
      units : int;
      points : int;
    }
  | Tree_reduce of { dim : int; op : string; items : int; extent : int }
  | Tile of { dim : int; tile : int; extent : int }
  | Seq of { dim : int; extent : int }
  | Accumulate of { dim : int; op : string; extent : int }
  | Scan of { dim : int; op : string; extent : int }

type t = {
  levels : level list;
  point_flops : int;
  tile_sizes : int array;
  parallel_dims : int list;
  used_layers : int list;
  usable_units : int;
  par_iters : int;
  device_name : string;
  hom_name : string;
}

type role = Role_distribute | Role_tree | Role_seq | Role_accumulate | Role_scan

let m_builds = Metrics.counter "lowering.plan.builds"

(* The level structure shared by [build] and [sequential]: [par_cc] and
   [tree_dim] are empty/None for the sequential plan. *)
let levels_of (md : Md_hom.t) ~par_cc ~tree_dim ~layer_names ~units ~tile_sizes =
  let rank = Md_hom.rank md in
  let distribute =
    if par_cc = [] then []
    else
      [ Distribute
          { dims = par_cc;
            extents = List.map (fun d -> md.sizes.(d)) par_cc;
            over = layer_names;
            units;
            points = List.fold_left (fun acc d -> acc * md.sizes.(d)) 1 par_cc } ]
  in
  let tree =
    match tree_dim with
    | Some d ->
      [ Tree_reduce
          { dim = d; op = Combine.name md.combine_ops.(d);
            items = min 256 md.sizes.(d); extent = md.sizes.(d) } ]
    | None -> []
  in
  let sequential =
    List.concat_map
      (fun d ->
        if List.mem d par_cc || Some d = tree_dim then []
        else
          let extent = md.sizes.(d) in
          let tile = tile_sizes.(d) in
          match md.combine_ops.(d) with
          | Combine.Cc ->
            if tile < extent then
              [ Tile { dim = d; tile; extent }; Seq { dim = d; extent = tile } ]
            else [ Seq { dim = d; extent } ]
          | Combine.Pw fn ->
            [ Accumulate { dim = d; op = "pw(" ^ fn.Combine.fn_name ^ ")"; extent } ]
          | Combine.Ps fn ->
            [ Scan { dim = d; op = "ps(" ^ fn.Combine.fn_name ^ ")"; extent } ])
      (List.init rank Fun.id)
  in
  distribute @ tree @ sequential

let build (md : Md_hom.t) (dev : Device.t) sched =
  Trace.with_span ~cat:"lowering" "plan.build"
    ~args:[ ("hom", md.Md_hom.hom_name); ("device", dev.Device.device_name) ]
  @@ fun () ->
  match Schedule.legal md dev sched with
  | Error _ as e -> e
  | Ok () ->
    Metrics.incr m_builds;
    let sched = Schedule.clamp md sched in
    let rank = Md_hom.rank md in
    let parallel d = List.mem d sched.Schedule.parallel_dims in
    let par_cc =
      List.filter
        (fun d -> parallel d && not (Combine.is_reduction md.combine_ops.(d)))
        (List.init rank Fun.id)
    in
    let layer_names =
      match sched.Schedule.used_layers with
      | [] -> "host"
      | layers ->
        String.concat "+"
          (List.map (fun l -> dev.Device.layers.(l).Device.layer_name) layers)
    in
    let units =
      List.fold_left
        (fun acc l -> acc * dev.Device.layers.(l).Device.max_units)
        1 sched.Schedule.used_layers
    in
    let tree_dim =
      List.find_opt
        (fun d ->
          parallel d
          && match md.combine_ops.(d) with Combine.Pw _ -> true | _ -> false)
        (List.init rank Fun.id)
    in
    Ok
      { levels =
          levels_of md ~par_cc ~tree_dim ~layer_names ~units
            ~tile_sizes:sched.Schedule.tile_sizes;
        point_flops = Md_hom.flops_per_point md;
        tile_sizes = Array.copy sched.Schedule.tile_sizes;
        parallel_dims = sched.Schedule.parallel_dims;
        used_layers = sched.Schedule.used_layers;
        usable_units = units;
        par_iters = Schedule.parallel_iterations md sched;
        device_name = dev.Device.device_name;
        hom_name = md.Md_hom.hom_name }

let sequential (md : Md_hom.t) =
  { levels =
      levels_of md ~par_cc:[] ~tree_dim:None ~layer_names:"host" ~units:1
        ~tile_sizes:(Array.copy md.Md_hom.sizes);
    point_flops = Md_hom.flops_per_point md;
    tile_sizes = Array.copy md.Md_hom.sizes;
    parallel_dims = [];
    used_layers = [];
    usable_units = 1;
    par_iters = 1;
    device_name = "none";
    hom_name = md.Md_hom.hom_name }

let role t d =
  let owns = function
    | Distribute { dims; _ } when List.mem d dims -> Some Role_distribute
    | Tree_reduce { dim; _ } when dim = d -> Some Role_tree
    | Tile { dim; _ } | Seq { dim; _ } when dim = d -> Some Role_seq
    | Accumulate { dim; _ } when dim = d -> Some Role_accumulate
    | Scan { dim; _ } when dim = d -> Some Role_scan
    | _ -> None
  in
  match List.find_map owns t.levels with
  | Some r -> r
  | None -> Role_seq

let distributed t =
  List.concat_map
    (function
      | Distribute { dims; extents; _ } -> List.combine dims extents
      | _ -> [])
    t.levels

let tree t =
  List.find_map
    (function
      | Tree_reduce { dim; extent; items; _ } -> Some (dim, extent, items)
      | _ -> None)
    t.levels

let tiled t =
  List.filter_map
    (function Tile { dim; tile; _ } -> Some (dim, tile) | _ -> None)
    t.levels

let pp_level ppf level =
  match level with
  | Distribute { dims; over; units; points; _ } ->
    Format.fprintf ppf "distribute dims [%s] (%d points) over %s (%d units)"
      (String.concat "," (List.map string_of_int dims))
      points over units
  | Tree_reduce { dim; op; items; _ } ->
    Format.fprintf ppf "tree-reduce dim %d with %s (%d cooperating items)" dim op items
  | Tile { dim; tile; extent } ->
    Format.fprintf ppf "tile dim %d: %d-element cache blocks of %d" dim tile extent
  | Seq { dim; extent } -> Format.fprintf ppf "for dim %d in 0..%d" dim extent
  | Accumulate { dim; op; extent } ->
    Format.fprintf ppf "accumulate dim %d with %s over %d" dim op extent
  | Scan { dim; op; extent } ->
    Format.fprintf ppf "scan dim %d with %s over %d" dim op extent

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i level ->
      Format.fprintf ppf "%s%a@," (String.make (2 * i) ' ') pp_level level)
    t.levels;
  Format.fprintf ppf "%spoint: scalar function (%d ops)@]"
    (String.make (2 * List.length t.levels) ' ')
    t.point_flops

let parallelism t =
  if t.par_iters = 0 || t.usable_units = 1 then 1
  else
    let chunks = (t.par_iters + t.usable_units - 1) / t.usable_units in
    max 1 (t.par_iters / chunks)

let depth t = List.length t.levels + 1

let digest t =
  let b = Stdlib.Buffer.create 256 in
  Stdlib.Buffer.add_string b t.hom_name;
  Stdlib.Buffer.add_char b '\n';
  Stdlib.Buffer.add_string b t.device_name;
  Stdlib.Buffer.add_char b '\n';
  Stdlib.Buffer.add_string b (Format.asprintf "%a" pp t);
  Stdlib.Buffer.add_char b '\n';
  Array.iter (fun s -> Stdlib.Buffer.add_string b (string_of_int s); Stdlib.Buffer.add_char b 'x') t.tile_sizes;
  Stdlib.Buffer.add_char b '\n';
  List.iter (fun d -> Stdlib.Buffer.add_string b (string_of_int d); Stdlib.Buffer.add_char b ',') t.parallel_dims;
  Stdlib.Buffer.add_char b '\n';
  List.iter (fun l -> Stdlib.Buffer.add_string b (string_of_int l); Stdlib.Buffer.add_char b ',') t.used_layers;
  Stdlib.Buffer.add_char b '\n';
  Stdlib.Buffer.add_string b (string_of_int t.usable_units);
  Stdlib.Buffer.add_char b ':';
  Stdlib.Buffer.add_string b (string_of_int t.par_iters);
  Stdlib.Buffer.add_char b ':';
  Stdlib.Buffer.add_string b (string_of_int t.point_flops);
  Crc32.to_hex (Crc32.string (Stdlib.Buffer.contents b))
