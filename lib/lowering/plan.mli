(** The low-level execution plan: the single executable IR every downstream
    consumer shares — the reproduction's counterpart of the MDH formalism's
    *low-level program representation* (paper footnote 5), which records the
    de/re-composition structure the lowering chose.

    The plan is a nest of levels, outermost first: parallel distribution of
    concatenation dimensions over device layers, cooperative tree reduction
    for a parallelised [pw] dimension, cache-tiled or plain sequential
    loops, accumulation for sequential reductions, running scans for [ps],
    and the point computation at the leaf.

    One plan, four consumers: [Exec.run] walks it to decompose the iteration
    space into boxes, [Cost.analyse_plan] prices it, [Simulate.run] replays
    it on the in-repo interpreter, and the codegen backends emit loop nests
    from it — so interpreter, cost model, and emitted C cannot disagree
    about loop structure by construction. *)

type level =
  | Distribute of {
      dims : int list;  (** cc dims linearised across a device layer *)
      extents : int list;  (** per-dim extents, aligned with [dims] *)
      over : string;
      units : int;
      points : int;
    }
  | Tree_reduce of { dim : int; op : string; items : int; extent : int }
      (** cooperative tree reduction over work items *)
  | Tile of { dim : int; tile : int; extent : int }
      (** cache-tile loop pair *)
  | Seq of { dim : int; extent : int }
      (** plain sequential loop *)
  | Accumulate of { dim : int; op : string; extent : int }
      (** sequential reduction fold *)
  | Scan of { dim : int; op : string; extent : int }
      (** running prefix scan *)

type t = {
  levels : level list;  (** outermost first *)
  point_flops : int;  (** scalar-function cost at the leaf *)
  tile_sizes : int array;  (** clamped to the extents — never larger *)
  parallel_dims : int list;  (** as given by the schedule *)
  used_layers : int list;  (** device layers the schedule occupies *)
  usable_units : int;  (** product of [max_units] over [used_layers] *)
  par_iters : int;  (** parallel iterations the schedule exposes *)
  device_name : string;
  hom_name : string;
}

(** How a dimension is executed, derived from the level that owns it. *)
type role =
  | Role_distribute  (** split across parallel units *)
  | Role_tree  (** parallel tree reduction *)
  | Role_seq  (** sequential (possibly tiled) concatenation loop *)
  | Role_accumulate  (** sequential reduction fold *)
  | Role_scan  (** sequential prefix scan *)

val build : Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> Schedule.t -> (t, string) result
(** Fails iff the schedule is illegal. Counts under [lowering.plan.builds];
    go through {!Plan_cache.build} to avoid rebuilding in hot loops. *)

val sequential : Mdh_core.Md_hom.t -> t
(** The device-free all-sequential plan: every cc dim a [Seq] level, every
    reduction an [Accumulate]/[Scan]. Used by backends that emit portable
    sequential loop nests (e.g. the OpenMP C backend's loop skeleton). *)

val role : t -> int -> role
(** [role t d] is how dimension [d] executes under this plan. *)

val distributed : t -> (int * int) list
(** [(dim, extent)] pairs of the [Distribute] level, in dimension order;
    [[]] when nothing is distributed. *)

val tree : t -> (int * int * int) option
(** [(dim, extent, items)] of the [Tree_reduce] level, if any. *)

val tiled : t -> (int * int) list
(** [(dim, tile)] pairs of the [Tile] levels, in level order; a dimension
    appears iff the plan cache-tiles it ([tile < extent]). *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering. *)

val pp_level : Format.formatter -> level -> unit
(** One level of {!pp}'s rendering, without indentation — the label the
    profiler's tree view puts next to a level's measured time. *)

val parallelism : t -> int
(** Units of parallel work the plan actually achieves on its device:
    [par_iters] split evenly over [usable_units]. By construction this is
    the same number as [Cost.analyse]'s [achieved_units] for the same
    schedule (pinned by tests). *)

val depth : t -> int

val digest : t -> string
(** Stable structural fingerprint (CRC-32 hex of the canonical rendering).
    Changes iff the plan's structure changes; pinned by the
    plan-consistency stage in [scripts/check.sh]. *)
