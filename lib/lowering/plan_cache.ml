module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Memo = Mdh_support.Memo

let cache : (Plan.t, string) result Memo.t = Memo.create ()

(* the registry is the source of truth for hit/miss accounting: unlike
   the Memo-internal counters it is resettable per run, so front ends can
   report per-run (not process-cumulative) numbers *)
let m_hits = Mdh_obs.Metrics.counter "lowering.plan_cache.hits"
let m_misses = Mdh_obs.Metrics.counter "lowering.plan_cache.misses"

let record ~hit = Mdh_obs.Metrics.incr (if hit then m_hits else m_misses)

let plan_key md dev sched =
  Memo.key
    [ Format.asprintf "%a" Md_hom.pp md;
      dev.Device.device_name;
      Schedule.to_string sched ]

let build md dev sched =
  Memo.find_or_add ~record cache (plan_key md dev sched) (fun () ->
      Plan.build md dev sched)

let set_enabled enabled = Memo.set_enabled cache enabled
let enabled () = Memo.enabled cache

type stats = { n_hits : int; n_misses : int; n_entries : int }

let stats () =
  { n_hits = Mdh_obs.Metrics.value m_hits;
    n_misses = Mdh_obs.Metrics.value m_misses;
    n_entries = (Memo.stats cache).Memo.n_entries }

let reset_stats () =
  Mdh_obs.Metrics.reset_counter m_hits;
  Mdh_obs.Metrics.reset_counter m_misses;
  Memo.reset_stats cache

let clear () =
  Memo.clear cache;
  Mdh_obs.Metrics.reset_counter m_hits;
  Mdh_obs.Metrics.reset_counter m_misses
