(** Process-wide memoized plan construction.

    Every downstream consumer of {!Plan.t} — the executor, the cost model,
    the simulator, and the code generators — obtains plans through this
    cache, keyed on (hom, device, schedule), so the tuner's inner loop
    stops rebuilding identical plans. Hit/miss counters live in the
    {!Mdh_obs.Metrics} registry under [lowering.plan_cache.*] and show up
    in every [--metrics] summary. *)

val build :
  Mdh_core.Md_hom.t ->
  Mdh_machine.Device.t ->
  Schedule.t ->
  (Plan.t, string) result
(** {!Plan.build} through the cache. Illegal-schedule errors are cached
    too: re-probing a rejected schedule is also a hit. *)

val plan_key : Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> Schedule.t -> string
(** The cache key (exposed for tests). *)

val set_enabled : bool -> unit
(** [set_enabled false] makes every call rebuild ([--no-cache]). *)

val enabled : unit -> bool

type stats = { n_hits : int; n_misses : int; n_entries : int }

val stats : unit -> stats
val reset_stats : unit -> unit
val clear : unit -> unit
