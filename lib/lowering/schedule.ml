module Md_hom = Mdh_core.Md_hom
module Combine = Mdh_combine.Combine
module Device = Mdh_machine.Device

type t = {
  tile_sizes : int array;
  parallel_dims : int list;
  used_layers : int list;
}

let sequential (md : Md_hom.t) =
  { tile_sizes = Array.copy md.sizes; parallel_dims = []; used_layers = [] }

let unparallelisable combine_ops =
  Array.to_list combine_ops
  |> List.mapi (fun d op -> (d, op))
  |> List.filter_map (fun (d, op) ->
         if Combine.parallelisable op then None
         else
           Some
             ( d,
               Printf.sprintf
                 "dimension %d is combined with %s, whose customising function is \
                  not associative: it cannot be parallelised"
                 d (Combine.name op) ))

let legal (md : Md_hom.t) (dev : Device.t) t =
  let rank = Md_hom.rank md in
  if Array.length t.tile_sizes <> rank then
    Error
      (Printf.sprintf "schedule has %d tile sizes for a rank-%d computation"
         (Array.length t.tile_sizes) rank)
  else if Array.exists (fun s -> s <= 0) t.tile_sizes then
    Error "tile sizes must be positive"
  else if List.exists (fun d -> d < 0 || d >= rank) t.parallel_dims then
    Error "parallel dimension out of range"
  else if List.length (List.sort_uniq compare t.parallel_dims) <> List.length t.parallel_dims
  then Error "duplicate parallel dimension"
  else if
    List.exists (fun l -> l < 0 || l >= Array.length dev.Device.layers) t.used_layers
  then Error "device layer out of range"
  else begin
    let blocked = unparallelisable md.combine_ops in
    match
      List.find_map (fun d -> List.assoc_opt d blocked) t.parallel_dims
    with
    | Some message -> Error message
    | None -> Ok ()
  end

let clamp (md : Md_hom.t) t =
  { t with tile_sizes = Array.mapi (fun d s -> min s md.sizes.(d)) t.tile_sizes }

let parallel_iterations (md : Md_hom.t) t =
  List.fold_left (fun acc d -> acc * md.sizes.(d)) 1 t.parallel_dims

let innermost_parallel_dim t =
  List.fold_left (fun acc d -> match acc with Some m when m > d -> acc | _ -> Some d)
    None t.parallel_dims

let pp ppf t =
  Format.fprintf ppf "tiles=%s parallel=[%s] layers=[%s]"
    (Mdh_support.Util.string_of_dims t.tile_sizes)
    (String.concat "," (List.map string_of_int t.parallel_dims))
    (String.concat "," (List.map string_of_int t.used_layers))

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let parse_ints ~sep str =
    if String.trim str = "" then Ok []
    else
      String.split_on_char sep str
      |> List.map (fun part ->
             match int_of_string_opt (String.trim part) with
             | Some n -> Ok n
             | None -> Error (Printf.sprintf "not an integer: %S" part))
      |> Mdh_support.Util.list_result_all
  in
  let field str ~key =
    (* the rendering is space-separated key=value fields *)
    let prefix = key ^ "=" in
    let parts = String.split_on_char ' ' str in
    match
      List.find_opt
        (fun p ->
          String.length p >= String.length prefix
          && String.sub p 0 (String.length prefix) = prefix)
        parts
    with
    | Some p ->
      Ok (String.sub p (String.length prefix) (String.length p - String.length prefix))
    | None -> Error (Printf.sprintf "missing field %S" key)
  in
  let strip_brackets v =
    if String.length v >= 2 && v.[0] = '[' && v.[String.length v - 1] = ']' then
      String.sub v 1 (String.length v - 2)
    else v
  in
  let ( let* ) = Result.bind in
  let* tiles_s = field s ~key:"tiles" in
  let* parallel_s = field s ~key:"parallel" in
  let* layers_s = field s ~key:"layers" in
  let* tiles = parse_ints ~sep:'x' tiles_s in
  let* parallel_dims = parse_ints ~sep:',' (strip_brackets parallel_s) in
  let* used_layers = parse_ints ~sep:',' (strip_brackets layers_s) in
  Ok { tile_sizes = Array.of_list tiles; parallel_dims; used_layers }
