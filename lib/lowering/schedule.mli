(** Execution schedules for MDH computations.

    The MDH lowering (Rasch, TOPLAS 2024 — footnote 5 of the paper) maps a
    high-level [md_hom] onto a device by de/re-composing the iteration space:
    tiling for the memory hierarchy, distributing dimensions over the
    device's parallel layers, and inserting partial-result combination steps
    for parallelised reduction dimensions. A {!t} records those decisions:

    - [tile_sizes]: cache-blocking tile extent per dimension;
    - [parallel_dims]: the dimensions whose tiles execute concurrently,
      distributed over [used_layers] of the device;
    - [used_layers]: which device layers the schedule harnesses.

    Legality: a reduction dimension may appear in [parallel_dims] only when
    its combine operator is parallelisable (associative customising
    function) — this is exactly the information the MDH directive carries
    and generic directives lack. *)

type t = {
  tile_sizes : int array;
  parallel_dims : int list;
  used_layers : int list;
}

val sequential : Mdh_core.Md_hom.t -> t
(** No tiling (whole extents), no parallel dims. *)

val unparallelisable : Mdh_combine.Combine.t array -> (int * string) list
(** The dimensions no legal schedule may parallelise — reduction dimensions
    whose customising function is not (declared) associative — with the
    explanatory message {!legal} would produce. Shared with the static
    analyzer's schedule pre-check ([MDH102]), so [mdhc check] predicts
    exactly what the lowering will later reject. *)

val legal :
  Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> t -> (unit, string) result
(** Checks arity, tile positivity, layer indices, and reduction-dimension
    parallelisability. *)

val clamp : Mdh_core.Md_hom.t -> t -> t
(** Clamp tile sizes to the iteration extents. *)

val parallel_iterations : Mdh_core.Md_hom.t -> t -> int
(** Product of the extents of the parallel dimensions. *)

val innermost_parallel_dim : t -> int option
(** Highest-index parallel dimension — the one a vectorising backend would
    map to lanes. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Compact textual form, identical to {!pp}'s rendering, parseable by
    {!of_string} — used to persist tuned schedules (the artifact practice
    of caching auto-tuning results). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)
