module Semantics = Mdh_core.Semantics
module Roofline = Mdh_machine.Roofline

type run = {
  env : Mdh_tensor.Buffer.env;
  estimated_s : float;
  analysis : Cost.analysis;
}

let run ?include_transfers md dev cg sched env =
  match Plan_cache.build md dev sched with
  | Error _ as e -> e
  | Ok plan ->
    let analysis = Cost.analyse_plan ?include_transfers md dev cg plan in
    let env = Semantics.eval_tiled md env ~tile_sizes:plan.Plan.tile_sizes in
    Ok { env; estimated_s = analysis.breakdown.Roofline.total_s; analysis }
