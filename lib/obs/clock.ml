let t0 = Unix.gettimeofday ()

(* the last timestamp handed out, shared by all domains: reads that race
   an NTP step (or coarse-clock jitter) are clamped so the sequence of
   observed timestamps is monotone non-decreasing process-wide *)
let last = Atomic.make 0L

let now_ns () =
  let t = Int64.of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last in
    if Int64.compare t prev <= 0 then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()

let ns_to_s ns = Int64.to_float ns *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
