(** Process-wide monotonic clock for the observability layer.

    Timestamps are nanoseconds since the process loaded this module.
    Successive reads never decrease, across all domains: wall-clock
    steps backwards (NTP, VM migration) are clamped to the last value
    handed out, so span durations are always >= 0 and trace events sort
    consistently. *)

val now_ns : unit -> int64
(** Nanoseconds since module initialisation; monotone non-decreasing
    process-wide. *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the Chrome trace_event unit). *)
