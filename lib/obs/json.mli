(** Minimal JSON emission helpers shared by the exporters (no external
    dependency; emission only, never parsing). *)

val escape : string -> string
(** [escape s] is [s] with JSON string escaping applied (no quotes added). *)

val quote : string -> string
(** [quote s] is [s] escaped and wrapped in double quotes. *)

val number : float -> string
(** A valid JSON number literal for [f]. Non-finite values (which JSON
    cannot represent) are emitted as [0]. *)

val obj : (string * string) list -> string
(** [obj fields] renders an object from already-rendered value strings. *)

val arr : string list -> string
(** [arr items] renders an array from already-rendered item strings. *)
