type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

let n_buckets = 64
let lowest_edge = 1e-9

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  min_v : float Atomic.t;
  max_v : float Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

(* registration is rare and mutex-protected; updates to a registered
   metric are lock-free atomics *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []
let reg_mutex = Mutex.create ()

let with_reg f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make select =
  with_reg (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match select m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Mdh_obs.Metrics: %S is already a %s" name
               (kind_name m)))
      | None ->
        let m = make () in
        Hashtbl.add registry name m;
        order := name :: !order;
        (match select m with Some v -> v | None -> assert false))

(* atomic float accumulate: CAS on the exact boxed value we read, so the
   compare is physical equality on that box and the loop is ABA-safe *)
let rec atomic_update a f =
  let v = Atomic.get a in
  let v' = f v in
  if v' != v && not (Atomic.compare_and_set a v v') then atomic_update a f

(* --- counters --- *)

let counter name =
  register name
    (fun () -> C { c_name = name; c_value = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value
let reset_counter c = Atomic.set c.c_value 0

(* --- gauges --- *)

let gauge name =
  register name
    (fun () -> G { g_name = name; g_value = Atomic.make 0.0 })
    (function G g -> Some g | _ -> None)

let set g v = Atomic.set g.g_value v
let add_gauge g d = atomic_update g.g_value (fun v -> v +. d)
let gauge_value g = Atomic.get g.g_value

(* --- histograms --- *)

let bucket_index v =
  if not (v > lowest_edge) (* catches <=, nan *) then 0
  else begin
    let i = ref 0 and edge = ref lowest_edge in
    while !i < n_buckets - 1 && v > !edge do
      i := !i + 1;
      (* doubling is exact binary scaling, so the edges match bucket_upper *)
      edge := !edge *. 2.0
    done;
    !i
  end

let bucket_upper i =
  if i >= n_buckets - 1 then infinity else Float.ldexp lowest_edge i

let histogram name =
  register name
    (fun () ->
      H
        { h_name = name;
          buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          count = Atomic.make 0;
          sum = Atomic.make 0.0;
          min_v = Atomic.make infinity;
          max_v = Atomic.make neg_infinity })
    (function H h -> Some h | _ -> None)

let observe h v =
  Atomic.incr h.buckets.(bucket_index v);
  Atomic.incr h.count;
  atomic_update h.sum (fun s -> s +. v);
  atomic_update h.min_v (fun m -> if v < m then v else m);
  atomic_update h.max_v (fun m -> if v > m then v else m)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (int * int) list;
}

let histogram_value h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let n = Atomic.get h.buckets.(i) in
    if n > 0 then buckets := (i, n) :: !buckets
  done;
  { h_count = Atomic.get h.count;
    h_sum = Atomic.get h.sum;
    h_min = Atomic.get h.min_v;
    h_max = Atomic.get h.max_v;
    h_buckets = !buckets }

(* --- registry-wide views --- *)

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

let dump () =
  let names = with_reg (fun () -> List.rev !order) in
  List.filter_map
    (fun name ->
      match with_reg (fun () -> Hashtbl.find_opt registry name) with
      | Some (C c) -> Some (name, Counter_v (value c))
      | Some (G g) -> Some (name, Gauge_v (gauge_value g))
      | Some (H h) -> Some (name, Histogram_v (histogram_value h))
      | None -> None)
    names

let reset () =
  let metrics = with_reg (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.iter
    (function
      | C c -> reset_counter c
      | G g -> set g 0.0
      | H h ->
        Array.iter (fun b -> Atomic.set b 0) h.buckets;
        Atomic.set h.count 0;
        Atomic.set h.sum 0.0;
        Atomic.set h.min_v infinity;
        Atomic.set h.max_v neg_infinity)
    metrics

let fmt_seconds s =
  if Float.abs s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if Float.abs s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if Float.abs s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s

let fmt_value name = function
  | Counter_v n -> string_of_int n
  | Gauge_v v ->
    (* the _s suffix convention marks seconds-valued metrics *)
    if String.length name >= 2 && String.sub name (String.length name - 2) 2 = "_s"
    then fmt_seconds v
    else Printf.sprintf "%.4g" v
  | Histogram_v h ->
    if h.h_count = 0 then "empty"
    else
      Printf.sprintf "n=%d sum=%s min=%s max=%s mean=%s" h.h_count
        (fmt_seconds h.h_sum) (fmt_seconds h.h_min) (fmt_seconds h.h_max)
        (fmt_seconds (h.h_sum /. float_of_int h.h_count))

let summary () =
  let entries =
    List.filter
      (fun (_, v) ->
        match v with
        | Counter_v 0 -> false
        | Gauge_v 0.0 -> false
        | Histogram_v h -> h.h_count > 0
        | _ -> true)
      (dump ())
  in
  if entries = [] then ""
  else begin
    let width =
      List.fold_left (fun w (name, _) -> max w (String.length name)) 0 entries
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "[metrics]\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s  %s\n" width name (fmt_value name v)))
      entries;
    Buffer.contents buf
  end

let to_json () =
  let field (name, v) =
    ( name,
      match v with
      | Counter_v n -> string_of_int n
      | Gauge_v v -> Json.number v
      | Histogram_v h ->
        Json.obj
          [ ("count", string_of_int h.h_count);
            ("sum", Json.number h.h_sum);
            ("min", Json.number (if h.h_count = 0 then 0.0 else h.h_min));
            ("max", Json.number (if h.h_count = 0 then 0.0 else h.h_max));
            ("buckets",
             Json.arr
               (List.map
                  (fun (i, n) ->
                    Json.obj
                      [ ("le", Json.number (bucket_upper i));
                        ("count", string_of_int n) ])
                  h.h_buckets)) ] )
  in
  Json.obj (List.map field (dump ()))
