(** Process-wide metrics registry: named counters, gauges and
    histograms, shared by every domain.

    Handles are obtained by name (find-or-register, idempotent); updates
    are single atomic operations, safe from pool worker domains, and are
    always on — the registry is the source of truth for cheap counts
    (cache hits, evaluations) whether or not the user asked for a
    metrics report. Anything that needs clock reads lives in {!Trace}
    and is gated behind its enabled flag.

    Naming convention (see docs/OBSERVABILITY.md):
    [<layer>.<component>.<what>[_<unit>]], e.g. [atf.cost_cache.hits],
    [runtime.pool.busy_s]. *)

type counter
type gauge
type histogram

(** {1 Counters} — monotone integers (resettable) *)

val counter : string -> counter
(** Find or register the counter with this name. Raises
    [Invalid_argument] if the name is registered as a different metric
    kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_counter : counter -> unit

(** {1 Gauges} — last-written floats, with atomic accumulate *)

val gauge : string -> gauge
val set : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — fixed log-scale (power-of-two) buckets

    Bucket [i] counts observations [v] with
    [bucket_upper (i-1) < v <= bucket_upper i]; bucket 0 absorbs
    everything at or below the lowest edge and the last bucket is
    unbounded above. Designed for durations in seconds: the edges run
    from 1 ns ([bucket_upper 0 = 1e-9]) up by doubling. *)

val n_buckets : int
val bucket_index : float -> int
(** The bucket an observation falls into; total function (negative and
    non-finite values land in bucket 0 / the last bucket). *)

val bucket_upper : int -> float
(** Inclusive upper edge of bucket [i]; [infinity] for the last bucket. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [infinity] when empty *)
  h_max : float;  (** [neg_infinity] when empty *)
  h_buckets : (int * int) list;  (** (bucket index, count), non-empty buckets only *)
}

val histogram_value : histogram -> histogram_snapshot

(** {1 Registry-wide views} *)

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

val dump : unit -> (string * snapshot) list
(** All registered metrics in registration order. *)

val reset : unit -> unit
(** Zero every counter, gauge and histogram; registrations are kept. *)

val summary : unit -> string
(** Human-readable summary table of the whole registry (empty string
    when nothing was recorded). *)

val to_json : unit -> string
(** The registry as one JSON object: counters as integers, gauges as
    numbers, histograms as [{"count","sum","min","max","buckets"}]. *)
