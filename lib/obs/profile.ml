(* Plan-level execution profiler: wall time attributed to (plan digest,
   level path) cells. The runtime reports level-addressed samples while a
   profiled run executes; the CLI snapshots per digest and renders them
   against the cost model's attribution.

   Same concurrency discipline as Metrics: cell registration is rare and
   mutex-protected, accumulation into a registered cell is lock-free
   atomics (the float CAS loop compares the exact box it read, so the
   retry is ABA-safe). When profiling is off every entry point is a
   single atomic load — runs are unaffected and no cells appear. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type cell = {
  p_digest : string;
  p_path : string;
  p_count : int Atomic.t;
  p_total : float Atomic.t; (* seconds *)
}

let registry : (string * string, cell) Hashtbl.t = Hashtbl.create 64
let order : (string * string) list ref = ref []
let reg_mutex = Mutex.create ()

let with_reg f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let cell ~digest ~path =
  let key = (digest, path) in
  match Hashtbl.find_opt registry key with
  | Some c -> c
  | None ->
    with_reg (fun () ->
        (* re-check under the lock: another domain may have registered it
           between our lock-free miss and taking the mutex *)
        match Hashtbl.find_opt registry key with
        | Some c -> c
        | None ->
          let c =
            { p_digest = digest;
              p_path = path;
              p_count = Atomic.make 0;
              p_total = Atomic.make 0.0 }
          in
          Hashtbl.add registry key c;
          order := key :: !order;
          c)

let rec atomic_update a f =
  let v = Atomic.get a in
  let v' = f v in
  if v' != v && not (Atomic.compare_and_set a v v') then atomic_update a f

let add ~digest ~path seconds =
  if Atomic.get enabled_flag then begin
    let c = cell ~digest ~path in
    Atomic.incr c.p_count;
    atomic_update c.p_total (fun t -> t +. seconds)
  end

let add_n ~digest ~path ~count seconds =
  if Atomic.get enabled_flag && count > 0 then begin
    let c = cell ~digest ~path in
    ignore (Atomic.fetch_and_add c.p_count count);
    atomic_update c.p_total (fun t -> t +. seconds)
  end

let time ~digest ~path f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0) in
        add ~digest ~path dt)
      f
  end

type entry = { path : string; count : int; total_s : float }

let snapshot digest =
  let keys = with_reg (fun () -> List.rev !order) in
  List.filter_map
    (fun ((d, _) as key) ->
      if not (String.equal d digest) then None
      else
        match with_reg (fun () -> Hashtbl.find_opt registry key) with
        | None -> None
        | Some c ->
          Some
            { path = c.p_path;
              count = Atomic.get c.p_count;
              total_s = Atomic.get c.p_total })
    keys

let digests () =
  let keys = with_reg (fun () -> List.rev !order) in
  List.fold_left
    (fun acc (d, _) -> if List.mem d acc then acc else acc @ [ d ])
    [] keys

let reset () =
  with_reg (fun () ->
      Hashtbl.reset registry;
      order := [])
