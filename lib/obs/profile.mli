(** Plan-level execution profiler.

    Wall time is attributed to [(plan digest, level path)] cells: the
    runtime reports samples addressed by a level's position in the plan
    tree (["L0"], ["L1"], … outermost-first, ["leaf"] for the point
    computation) or by backend phase (["phase:fastpath"],
    ["phase:specializer.compile"], ["phase:specializer.run"],
    ["phase:cc.build"], ["phase:cc.run"], ["phase:walker"]), plus an
    enclosing ["exec"] cell per run. Keys are plain strings so this
    module has no dependency on the lowering layer — callers pass
    [Plan.digest].

    Disabled (the default) every entry point is one atomic load and no
    cells are ever created, so instrumented code paths stay bit-identical
    in output and effectively free. Accumulation is per-domain-safe:
    registration is mutex-protected, updates are lock-free atomics. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val add : digest:string -> path:string -> float -> unit
(** [add ~digest ~path seconds] accumulates one sample. No-op when
    disabled. *)

val add_n : digest:string -> path:string -> count:int -> float -> unit
(** Accumulate a pre-aggregated batch: [count] samples totalling the
    given seconds (one atomic round-trip instead of [count]). No-op when
    disabled or [count <= 0]. *)

val time : digest:string -> path:string -> (unit -> 'a) -> 'a
(** Run the thunk and attribute its wall time; exceptions still record
    the elapsed time. When disabled this is exactly [f ()] after one
    atomic load. *)

type entry = { path : string; count : int; total_s : float }

val snapshot : string -> entry list
(** All cells recorded under a digest, in first-registration order. *)

val digests : unit -> string list
(** Digests with at least one cell, in first-registration order. *)

val reset : unit -> unit
(** Drop every cell (the enabled flag is untouched). *)
