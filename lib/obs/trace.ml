type phase = Complete of int64 | Instant | Counter of float

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int64;
  ev_tid : int;
  ev_ph : phase;
  ev_args : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* one buffer per domain, found through DLS so emission never contends;
   the global list keeps buffers of dead worker domains reachable for
   export *)
type buffer = { b_mutex : Mutex.t; mutable b_events : event list }

let buffers_mutex = Mutex.create ()
let buffers : buffer list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { b_mutex = Mutex.create (); b_events = [] } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let emit ev =
  let b = Domain.DLS.get buffer_key in
  (* the per-domain mutex is uncontended except against a concurrent
     export; it makes drain-while-emitting well-defined *)
  Mutex.lock b.b_mutex;
  b.b_events <- ev :: b.b_events;
  Mutex.unlock b.b_mutex

let tid () = (Domain.self () :> int)

let with_span ?(cat = "mdh") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        emit
          { ev_name = name; ev_cat = cat; ev_ts_ns = t0; ev_tid = tid ();
            ev_ph = Complete (Int64.sub t1 t0); ev_args = args })
      f
  end

let instant ?(cat = "mdh") ?(args = []) name =
  if Atomic.get enabled_flag then
    emit
      { ev_name = name; ev_cat = cat; ev_ts_ns = Clock.now_ns ();
        ev_tid = tid (); ev_ph = Instant; ev_args = args }

let counter_event ?(cat = "mdh") name v =
  if Atomic.get enabled_flag then
    emit
      { ev_name = name; ev_cat = cat; ev_ts_ns = Clock.now_ns ();
        ev_tid = tid (); ev_ph = Counter v; ev_args = [] }

let events () =
  let bufs =
    Mutex.lock buffers_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock buffers_mutex) (fun () -> !buffers)
  in
  let all =
    List.concat_map
      (fun b ->
        Mutex.lock b.b_mutex;
        Fun.protect ~finally:(fun () -> Mutex.unlock b.b_mutex) (fun () -> b.b_events))
      bufs
  in
  (* earliest first; at equal timestamps put the longer (enclosing) span
     first so parents precede their children *)
  let dur = function Complete d -> d | Instant | Counter _ -> 0L in
  List.sort
    (fun a b ->
      match Int64.compare a.ev_ts_ns b.ev_ts_ns with
      | 0 -> Int64.compare (dur b.ev_ph) (dur a.ev_ph)
      | c -> c)
    all

let clear () =
  let bufs =
    Mutex.lock buffers_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock buffers_mutex) (fun () -> !buffers)
  in
  List.iter
    (fun b ->
      Mutex.lock b.b_mutex;
      b.b_events <- [];
      Mutex.unlock b.b_mutex)
    bufs

let chrome_event ev =
  let common =
    [ ("name", Json.quote ev.ev_name);
      ("cat", Json.quote ev.ev_cat);
      ("ts", Json.number (Clock.ns_to_us ev.ev_ts_ns));
      ("pid", "1");
      ("tid", string_of_int ev.ev_tid) ]
  in
  let args_obj args =
    Json.obj (List.map (fun (k, v) -> (k, Json.quote v)) args)
  in
  match ev.ev_ph with
  | Complete dur ->
    Json.obj
      (common
      @ [ ("ph", {|"X"|}); ("dur", Json.number (Clock.ns_to_us dur)) ]
      @ if ev.ev_args = [] then [] else [ ("args", args_obj ev.ev_args) ])
  | Instant ->
    Json.obj
      (common
      @ [ ("ph", {|"i"|}); ("s", {|"t"|}) ]
      @ if ev.ev_args = [] then [] else [ ("args", args_obj ev.ev_args) ])
  | Counter v ->
    Json.obj
      (common @ [ ("ph", {|"C"|}); ("args", Json.obj [ ("value", Json.number v) ]) ])

let write_chrome oc =
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun ev ->
      if not !first then output_string oc ",\n";
      first := false;
      output_string oc (chrome_event ev))
    (events ());
  output_string oc "\n],\"displayTimeUnit\":\"ms\",\"otherData\":";
  output_string oc (Json.obj [ ("generator", Json.quote "mdh_obs") ]);
  output_string oc "}\n"

let summary () =
  let tbl : (string, int ref * int64 ref * int64 ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev.ev_ph with
      | Complete dur ->
        let count, total, longest =
          match Hashtbl.find_opt tbl ev.ev_name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0L, ref 0L) in
            Hashtbl.add tbl ev.ev_name cell;
            order := ev.ev_name :: !order;
            cell
        in
        count := !count + 1;
        total := Int64.add !total dur;
        if Int64.compare dur !longest > 0 then longest := dur
      | Instant | Counter _ -> ())
    (events ());
  let names = List.rev !order in
  if names = [] then ""
  else begin
    let width = List.fold_left (fun w n -> max w (String.length n)) 4 names in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "[trace] %-*s %8s %12s %12s %12s\n" width "span" "count"
         "total" "mean" "max");
    List.iter
      (fun name ->
        let count, total, longest = Hashtbl.find tbl name in
        let ms ns = Clock.ns_to_s ns *. 1e3 in
        Buffer.add_string buf
          (Printf.sprintf "[trace] %-*s %8d %9.3f ms %9.3f ms %9.3f ms\n" width
             name !count (ms !total)
             (ms !total /. float_of_int !count)
             (ms !longest)))
      names;
    Buffer.contents buf
  end
