(** Hierarchical tracing: timed spans, instant markers and counter
    tracks, exported as a human summary or Chrome [trace_event] JSON
    (open in [chrome://tracing] or https://ui.perfetto.dev).

    Off by default. When disabled every entry point is a single atomic
    load and an immediate return, so instrumentation can stay in the hot
    path permanently; deterministic outputs (tuned schedules, report
    tables) are bit-identical with tracing on or off because spans never
    influence control flow.

    Events are appended to a per-domain buffer (created on first use,
    registered globally), so emission from pool worker domains is safe
    and contention-free; buffers are drained and merged at export. *)

type phase =
  | Complete of int64  (** a span; payload is the duration in ns *)
  | Instant
  | Counter of float   (** a sampled value, e.g. best-cost-so-far *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int64;  (** start timestamp, {!Clock.now_ns} domain *)
  ev_tid : int;      (** numeric id of the emitting domain *)
  ev_ph : phase;
  ev_args : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled, emits a
    Complete event covering its execution (also when [f] raises). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

val counter_event : ?cat:string -> string -> float -> unit
(** A Chrome counter-track sample (rendered as a stepped graph). *)

val events : unit -> event list
(** Drain-free snapshot of all buffered events, merged across domains
    and sorted by (timestamp, longest-span-first). *)

val clear : unit -> unit
(** Drop all buffered events (buffers stay registered). *)

val write_chrome : out_channel -> unit
(** Write the buffered events as Chrome trace JSON: an object with a
    [traceEvents] array of [X]/[i]/[C] events (timestamps in µs). *)

val summary : unit -> string
(** Per-span-name aggregation (count, total, mean, max) of the buffered
    Complete events; empty string when nothing was traced. *)
