module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive

type error = { pos : Token.pos; message : string }

let pp_error ppf { pos; message } =
  Format.fprintf ppf "parse error at %a: %s" Token.pp_pos pos message

let error_to_string e = Format.asprintf "%a" pp_error e

exception Fail of error

type spans = {
  pragma_pos : Token.pos;
  buffer_pos : (string * Token.pos) list;
  combine_op_pos : Token.pos list;
  loop_pos : (string * Token.pos) list;
  stmt_pos : Token.pos list;
}

type state = {
  mutable tokens : Token.spanned list;
  params : (string * int) list;
  mutable buffers : D.buffer_decl list;  (** outs @ inps once the pragma is read *)
  mutable float_ty : Scalar.ty;  (** type given to float literals *)
  (* span accumulators, reverse order; harvested by [parse_with_spans] *)
  mutable rec_pragma : Token.pos;
  mutable rec_buffers : (string * Token.pos) list;
  mutable rec_ops : Token.pos list;
  mutable rec_loops : (string * Token.pos) list;
  mutable rec_stmts : Token.pos list;
}

let fail_at pos fmt =
  Format.kasprintf (fun message -> raise (Fail { pos; message })) fmt

let here st =
  match st.tokens with
  | { Token.pos; _ } :: _ -> pos
  | [] -> { Token.line = 0; col = 0 }

let peek st =
  match st.tokens with { Token.token; _ } :: _ -> token | [] -> Token.Eof

let peek2 st =
  match st.tokens with _ :: { Token.token; _ } :: _ -> token | _ -> Token.Eof

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else fail_at (here st) "expected %s but found %s" (Token.describe tok)
      (Token.describe (peek st))

let expect_ident st what =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | other -> fail_at (here st) "expected %s but found %s" what (Token.describe other)

(* --- pragma clauses --- *)

let scalar_ty_of_name pos = function
  | "fp32" -> Scalar.Fp32
  | "fp64" -> Scalar.Fp64
  | "int32" -> Scalar.Int32
  | "int64" -> Scalar.Int64
  | "bool" -> Scalar.Bool
  | "char" -> Scalar.Char
  | other -> fail_at pos "unknown basic type %S" other

let parse_buffer_decl st =
  let decl_pos = here st in
  let name = expect_ident st "a buffer name" in
  st.rec_buffers <- (name, decl_pos) :: st.rec_buffers;
  expect st Token.Colon;
  let ty_pos = here st in
  let ty = scalar_ty_of_name ty_pos (expect_ident st "a basic type") in
  let shape =
    if peek st = Token.Lbracket then begin
      advance st;
      let dims = ref [] in
      let rec loop () =
        (match peek st with
        | Token.Int_lit n ->
          advance st;
          dims := n :: !dims
        | other -> fail_at (here st) "expected an extent, found %s" (Token.describe other));
        if peek st = Token.Comma then begin
          advance st;
          loop ()
        end
      in
      loop ();
      expect st Token.Rbracket;
      Some (Array.of_list (List.rev !dims))
    end
    else None
  in
  D.buffer ?shape name ty

let parse_decl_list st =
  expect st Token.Lparen;
  let decls = ref [] in
  if peek st <> Token.Rparen then begin
    let rec loop () =
      decls := parse_buffer_decl st :: !decls;
      if peek st = Token.Comma then begin
        advance st;
        loop ()
      end
    in
    loop ()
  end;
  expect st Token.Rparen;
  List.rev !decls

let builtin_custom_fn pos ty = function
  | "add" -> Combine.add ty
  | "mul" -> Combine.mul ty
  | "max" -> Combine.max ty
  | "min" -> Combine.min ty
  | "bor" -> Combine.bor ty
  | other ->
    fail_at pos
      "unknown customising function %S (the pragma frontend provides add, mul, min, \
       max, bor; user-defined operators need the embedded API)"
      other

let parse_combine_op st ~elem_ty =
  let pos = here st in
  st.rec_ops <- pos :: st.rec_ops;
  match expect_ident st "a combine operator" with
  | "cc" -> Combine.cc
  | ("pw" | "ps") as kind ->
    expect st Token.Lparen;
    let fn_pos = here st in
    let fn = builtin_custom_fn fn_pos elem_ty (expect_ident st "a customising function") in
    expect st Token.Rparen;
    if kind = "pw" then Combine.pw fn else Combine.ps fn
  | other -> fail_at pos "unknown combine operator %S (cc, pw(f), ps(f))" other

let base_scalar_ty decls =
  (* float literals are fp32 when every declared buffer is fp32 *)
  if
    decls <> []
    && List.for_all
         (fun (d : D.buffer_decl) -> Scalar.equal_ty d.D.buf_ty Scalar.Fp32)
         decls
  then Scalar.Fp32
  else Scalar.Fp64

let parse_pragma st =
  st.rec_pragma <- here st;
  expect st Token.Pragma_mdh;
  let outs = ref None and inps = ref None and ops = ref None in
  let rec clauses () =
    match peek st with
    | Token.Ident "out" ->
      advance st;
      if !outs <> None then fail_at (here st) "duplicate out(...) clause";
      outs := Some (parse_decl_list st);
      clauses ()
    | Token.Ident "inp" ->
      advance st;
      if !inps <> None then fail_at (here st) "duplicate inp(...) clause";
      inps := Some (parse_decl_list st);
      clauses ()
    | Token.Ident "combine_ops" ->
      advance st;
      if !ops <> None then fail_at (here st) "duplicate combine_ops(...) clause";
      let elem_ty =
        match !outs with
        | Some ({ D.buf_ty; _ } :: _) -> buf_ty
        | _ -> Scalar.Fp32
      in
      expect st Token.Lparen;
      let acc = ref [] in
      let rec loop () =
        acc := parse_combine_op st ~elem_ty :: !acc;
        if peek st = Token.Comma then begin
          advance st;
          loop ()
        end
      in
      loop ();
      expect st Token.Rparen;
      ops := Some (List.rev !acc);
      clauses ()
    | _ -> ()
  in
  clauses ();
  let outs =
    match !outs with
    | Some o -> o
    | None -> fail_at (here st) "the pragma needs an out(...) clause"
  in
  let inps = Option.value ~default:[] !inps in
  let ops =
    match !ops with
    | Some o -> o
    | None -> fail_at (here st) "the pragma needs a combine_ops(...) clause"
  in
  st.buffers <- outs @ inps;
  st.float_ty <- base_scalar_ty (outs @ inps);
  (outs, inps, ops)

(* --- expressions --- *)

let is_buffer st name =
  List.exists (fun (d : D.buffer_decl) -> String.equal d.D.buf_name name) st.buffers

let resolve_ident st ~loop_vars ~lets pos name =
  if List.mem name loop_vars then Expr.Idx name
  else if List.mem name lets then Expr.Var name
  else
    match List.assoc_opt name st.params with
    | Some v -> Expr.int v
    | None ->
      fail_at pos
        "unknown identifier %S (not a loop variable, let binding or parameter)" name

let is_type_name = function
  | "fp32" | "fp64" | "int32" | "int64" -> true
  | _ -> false

let rec parse_expr st ~loop_vars ~lets = parse_ternary st ~loop_vars ~lets

and parse_ternary st ~loop_vars ~lets =
  let cond = parse_or st ~loop_vars ~lets in
  if peek st = Token.Question then begin
    advance st;
    let then_e = parse_expr st ~loop_vars ~lets in
    expect st Token.Colon;
    let else_e = parse_expr st ~loop_vars ~lets in
    Expr.If (cond, then_e, else_e)
  end
  else cond

and parse_or st ~loop_vars ~lets =
  let lhs = ref (parse_and st ~loop_vars ~lets) in
  while peek st = Token.Pipe_pipe do
    advance st;
    lhs := Expr.Binop (Expr.Or, !lhs, parse_and st ~loop_vars ~lets)
  done;
  !lhs

and parse_and st ~loop_vars ~lets =
  let lhs = ref (parse_cmp st ~loop_vars ~lets) in
  while peek st = Token.Amp_amp do
    advance st;
    lhs := Expr.Binop (Expr.And, !lhs, parse_cmp st ~loop_vars ~lets)
  done;
  !lhs

and parse_cmp st ~loop_vars ~lets =
  let lhs = parse_add st ~loop_vars ~lets in
  let op =
    match peek st with
    | Token.Lt -> Some Expr.Lt
    | Token.Le -> Some Expr.Le
    | Token.Gt -> Some Expr.Gt
    | Token.Ge -> Some Expr.Ge
    | Token.Eq_eq -> Some Expr.Eq
    | Token.Bang_eq -> Some Expr.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Expr.Binop (op, lhs, parse_add st ~loop_vars ~lets)

and parse_add st ~loop_vars ~lets =
  let lhs = ref (parse_mul st ~loop_vars ~lets) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Plus ->
      advance st;
      lhs := Expr.Binop (Expr.Add, !lhs, parse_mul st ~loop_vars ~lets)
    | Token.Minus ->
      advance st;
      lhs := Expr.Binop (Expr.Sub, !lhs, parse_mul st ~loop_vars ~lets)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st ~loop_vars ~lets =
  let lhs = ref (parse_unary st ~loop_vars ~lets) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Star ->
      advance st;
      lhs := Expr.Binop (Expr.Mul, !lhs, parse_unary st ~loop_vars ~lets)
    | Token.Slash ->
      advance st;
      lhs := Expr.Binop (Expr.Div, !lhs, parse_unary st ~loop_vars ~lets)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st ~loop_vars ~lets =
  match peek st with
  | Token.Minus ->
    advance st;
    Expr.Unop (Expr.Neg, parse_unary st ~loop_vars ~lets)
  | Token.Bang ->
    advance st;
    Expr.Unop (Expr.Not, parse_unary st ~loop_vars ~lets)
  | _ -> parse_postfix st ~loop_vars ~lets

and parse_postfix st ~loop_vars ~lets =
  let e = ref (parse_primary st ~loop_vars ~lets) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Dot ->
      advance st;
      let field = expect_ident st "a record field name" in
      e := Expr.Field (!e, field)
    | _ -> continue := false
  done;
  !e

and parse_index_list st ~loop_vars ~lets =
  expect st Token.Lbracket;
  let idxs = ref [] in
  let rec loop () =
    idxs := parse_expr st ~loop_vars ~lets :: !idxs;
    if peek st = Token.Comma then begin
      advance st;
      loop ()
    end
  in
  loop ();
  expect st Token.Rbracket;
  List.rev !idxs

and parse_primary st ~loop_vars ~lets =
  let pos = here st in
  match peek st with
  | Token.Int_lit n ->
    advance st;
    Expr.int n
  | Token.Float_lit x ->
    advance st;
    if Scalar.equal_ty st.float_ty Scalar.Fp32 then Expr.f32 x else Expr.f64 x
  | Token.Kw_true ->
    advance st;
    Expr.Const (Scalar.B true)
  | Token.Kw_false ->
    advance st;
    Expr.Const (Scalar.B false)
  | Token.Ident (("min" | "max") as fn) when peek2 st = Token.Lparen ->
    advance st;
    advance st;
    let a = parse_expr st ~loop_vars ~lets in
    expect st Token.Comma;
    let b = parse_expr st ~loop_vars ~lets in
    expect st Token.Rparen;
    Expr.Binop ((if fn = "min" then Expr.Min else Expr.Max), a, b)
  | Token.Ident name ->
    advance st;
    if peek st = Token.Lbracket then begin
      if not (is_buffer st name) then
        fail_at pos "%S is indexed like a buffer but is not declared" name;
      Expr.Read (name, parse_index_list st ~loop_vars ~lets)
    end
    else resolve_ident st ~loop_vars ~lets pos name
  | Token.Lparen -> (
    match (peek2 st, st.tokens) with
    | Token.Ident ty_name, _ :: _ :: { Token.token = Token.Rparen; _ } :: _
      when is_type_name ty_name ->
      (* C-style cast: (fp32) expr *)
      advance st;
      advance st;
      advance st;
      let ty = scalar_ty_of_name pos ty_name in
      Expr.Cast (ty, parse_unary st ~loop_vars ~lets)
    | _ ->
      advance st;
      let e = parse_expr st ~loop_vars ~lets in
      expect st Token.Rparen;
      e)
  | other -> fail_at pos "expected an expression, found %s" (Token.describe other)

(* --- statements and loop nests --- *)

let parse_loop_bound st =
  let pos = here st in
  match peek st with
  | Token.Int_lit n ->
    advance st;
    n
  | Token.Ident name -> (
    advance st;
    match List.assoc_opt name st.params with
    | Some v -> v
    | None -> fail_at pos "loop bound %S is not a known parameter" name)
  | other -> fail_at pos "expected a loop bound, found %s" (Token.describe other)

let parse_stmt st ~loop_vars ~lets =
  st.rec_stmts <- here st :: st.rec_stmts;
  match peek st with
  | Token.Kw_let ->
    advance st;
    let name = expect_ident st "a binding name" in
    expect st Token.Assign;
    let e = parse_expr st ~loop_vars ~lets in
    expect st Token.Semicolon;
    (D.let_stmt name e, name :: lets)
  | _ ->
    let pos = here st in
    let target = expect_ident st "an output buffer name" in
    if peek st <> Token.Lbracket then
      fail_at pos "expected %S to be assigned through indices" target;
    let indices = parse_index_list st ~loop_vars ~lets in
    expect st Token.Assign;
    let value = parse_expr st ~loop_vars ~lets in
    expect st Token.Semicolon;
    (D.assign target indices value, lets)

let rec parse_nest st ~loop_vars =
  match peek st with
  | Token.Kw_for ->
    let for_pos = here st in
    advance st;
    expect st Token.Lparen;
    let var = expect_ident st "a loop variable" in
    st.rec_loops <- (var, for_pos) :: st.rec_loops;
    expect st Token.Assign;
    (match peek st with
    | Token.Int_lit 0 -> advance st
    | other ->
      fail_at (here st) "loops must start at 0, found %s" (Token.describe other));
    expect st Token.Semicolon;
    let var2 = expect_ident st "the loop variable" in
    if var2 <> var then
      fail_at (here st) "loop condition tests %S, expected %S" var2 var;
    expect st Token.Lt;
    let extent = parse_loop_bound st in
    expect st Token.Semicolon;
    let var3 = expect_ident st "the loop variable" in
    if var3 <> var then
      fail_at (here st) "loop increment updates %S, expected %S" var3 var;
    expect st Token.Plus_plus;
    expect st Token.Rparen;
    let body = parse_body st ~loop_vars:(loop_vars @ [ var ]) in
    D.for_ var extent body
  | other -> fail_at (here st) "expected 'for', found %s" (Token.describe other)

and parse_body st ~loop_vars =
  match peek st with
  | Token.Kw_for -> parse_nest st ~loop_vars
  | Token.Lbrace ->
    advance st;
    let items = ref [] in
    let lets = ref [] in
    while peek st <> Token.Rbrace do
      match peek st with
      | Token.Kw_for -> items := `Nest (parse_nest st ~loop_vars) :: !items
      | _ ->
        let stmt, lets' = parse_stmt st ~loop_vars ~lets:!lets in
        lets := lets';
        items := `Stmt stmt :: !items
    done;
    expect st Token.Rbrace;
    let items = List.rev !items in
    let all_stmts =
      List.for_all (function `Stmt _ -> true | `Nest _ -> false) items
    in
    if all_stmts then
      D.body (List.map (function `Stmt s -> s | `Nest _ -> assert false) items)
    else if List.length items = 1 then
      (match items with [ `Nest n ] -> n | _ -> assert false)
    else
      (* statements mixed with loops, or several loops: representable as a
         Seq, rejected by validation as an imperfect nest *)
      D.Seq
        (List.map
           (function `Nest n -> n | `Stmt s -> D.body [ s ])
           items)
  | _ ->
    let stmt, _ = parse_stmt st ~loop_vars ~lets:[] in
    D.body [ stmt ]

let parse_with_spans ?(name = "pragma_mdh") ?(params = []) src =
  match Lexer.tokenize src with
  | Error { Lexer.pos; message } -> Error { pos; message }
  | Ok tokens -> (
    let st =
      { tokens; params; buffers = []; float_ty = Scalar.Fp64;
        rec_pragma = { Token.line = 1; col = 1 }; rec_buffers = [];
        rec_ops = []; rec_loops = []; rec_stmts = [] }
    in
    try
      let outs, inps, ops = parse_pragma st in
      let nest = parse_nest st ~loop_vars:[] in
      expect st Token.Eof;
      let spans =
        { pragma_pos = st.rec_pragma;
          buffer_pos = List.rev st.rec_buffers;
          combine_op_pos = List.rev st.rec_ops;
          loop_pos = List.rev st.rec_loops;
          stmt_pos = List.rev st.rec_stmts }
      in
      Ok (D.make ~name ~out:outs ~inp:inps ~combine_ops:ops nest, spans)
    with Fail e -> Error e)

let parse ?name ?params src =
  Result.map fst (parse_with_spans ?name ?params src)
