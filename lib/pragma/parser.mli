(** Recursive-descent parser for the [#pragma mdh] surface language,
    producing an (unvalidated) MDH directive. The grammar is the Section 8
    vision — the paper's directive over C-style loop nests:

    {v
    #pragma mdh out(w : fp32) inp(M : fp32, v : fp32) \
                combine_ops(cc, pw(add))
    for (i = 0; i < 4096; i++)
      for (k = 0; k < 4096; k++)
        w[i] = M[i, k] * v[k];
    v}

    Supported constructs: buffer declarations with optional explicit sizes
    ([img : fp32[1, 230, 230, 3]]); [cc], [pw(op)] and [ps(op)] combine
    operators with the built-in customising functions [add], [mul], [min],
    [max]; canonical [for (v = 0; v < N; v++)] loops whose bound is an
    integer literal or a named parameter; single-point assignments and
    [let] bindings; arithmetic, comparisons, [&&]/[||], [!], the C ternary
    [c ? a : b], [min]/[max] calls, and C-style casts [(fp32) e].

    Loop bounds may reference parameters supplied via [params]; float
    literals take the type fp32 when every declared buffer is fp32, fp64
    otherwise. Identifiers in expressions resolve (in order) to loop
    variables, [let] bindings, then parameters.

    Validation (perfect-nest discipline, typing, shape inference) is the
    job of [Mdh_directive.Validate], exactly as for directives built with
    the embedded API — imperfect nests parse (as [Seq]) and are rejected
    there. *)

type error = { pos : Token.pos; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type spans = {
  pragma_pos : Token.pos;  (** position of [#pragma mdh] *)
  buffer_pos : (string * Token.pos) list;
      (** each buffer declaration, in declaration order (outs then inps) *)
  combine_op_pos : Token.pos list;  (** the i-th combine operator's clause *)
  loop_pos : (string * Token.pos) list;
      (** each [for] keyword, keyed by its loop variable, outermost first *)
  stmt_pos : Token.pos list;  (** body statements in source order *)
}
(** Source positions of the directive's clauses, recorded during parsing so
    the static analyzer ([Mdh_analysis]) can point diagnostics at the
    offending clause rather than at the whole pragma. *)

val parse :
  ?name:string ->
  ?params:(string * int) list ->
  string ->
  (Mdh_directive.Directive.t, error) result
(** [name] is the directive name (default ["pragma_mdh"]). *)

val parse_with_spans :
  ?name:string ->
  ?params:(string * int) list ->
  string ->
  (Mdh_directive.Directive.t * spans, error) result
(** Like {!parse}, also returning the clause positions. *)
