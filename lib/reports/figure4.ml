(* Regenerates Figure 4: speedup of the MDH-directive-generated code over
   each state-of-the-art system, per workload and input size, on the
   GPU-like and CPU-like devices. Baseline failures appear as the typed
   failure the paper reports (PPCG on Dot, Pluto on PRL, TVM on custom
   reducers, ...). *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Baselines = Mdh_baselines
module Table = Mdh_support.Table

type column = { col_name : string; compile : Mdh_core.Md_hom.t -> Device.t -> (Common.outcome, Common.failure) result }

let columns (dev : Device.t) =
  match dev.Device.kind with
  | Device.Gpu ->
    [ { col_name = "OpenACC"; compile = Baselines.Openacc.system.Common.compile ~tuned:false };
      { col_name = "PPCG"; compile = Baselines.Polyhedral.ppcg.Common.compile ~tuned:false };
      { col_name = "PPCG(ATF)"; compile = Baselines.Polyhedral.ppcg.Common.compile ~tuned:true };
      { col_name = "TVM"; compile = Baselines.Tvm.system.Common.compile ~tuned:true };
      { col_name = "cuBLAS/cuDNN"; compile = Baselines.Vendor.system.Common.compile ~tuned:false } ]
  | Device.Cpu ->
    [ { col_name = "OpenMP"; compile = Baselines.Openmp.system.Common.compile ~tuned:false };
      { col_name = "Pluto"; compile = Baselines.Polyhedral.pluto.Common.compile ~tuned:false };
      { col_name = "Pluto(ATF)"; compile = Baselines.Polyhedral.pluto.Common.compile ~tuned:true };
      { col_name = "Numba"; compile = Baselines.Numba.system.Common.compile ~tuned:false };
      { col_name = "TVM"; compile = Baselines.Tvm.system.Common.compile ~tuned:true };
      { col_name = "oneMKL/oneDNN"; compile = Baselines.Vendor.system.Common.compile ~tuned:false } ]

let table (dev : Device.t) =
  let cols = columns dev in
  let table =
    Table.create
      ~headers:
        ("Computation" :: "Inp." :: "MDH time"
        :: List.map (fun c -> c.col_name) cols)
  in
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (inp, params) ->
          Report.observe_workload (w.W.wl_name ^ "/" ^ inp) @@ fun () ->
          let md = W.to_md_hom w params in
          let mdh = Report.mdh_seconds md dev in
          let cells =
            List.map
              (fun c ->
                match c.compile md dev with
                | Ok o -> Report.speedup_str (Common.seconds o /. mdh)
                | Error f -> Report.short_failure f)
              cols
          in
          Table.add_row table (w.W.wl_name :: inp :: Report.time_str mdh :: cells))
        w.W.paper_inputs)
    Mdh_workloads.Catalog.figure3;
  table

let run_device (dev : Device.t) =
  Report.section
    (Printf.sprintf "Figure 4 (%s): speedup of MDH-generated code (x = t_other / t_MDH)"
       (match dev.Device.kind with Device.Gpu -> "GPU" | Device.Cpu -> "CPU"));
  Table.print (table dev);
  print_newline ()

let run which =
  (match which with
  | `Gpu -> run_device Device.a100_like
  | `Cpu -> run_device Device.xeon6140_like
  | `Both ->
    run_device Device.a100_like;
    run_device Device.xeon6140_like)
