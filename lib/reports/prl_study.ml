(* The PRL input-size study of Section 5.2: why OpenMP/OpenACC do well on
   Inp.2 (2^15 x 2^15) but poorly on Inp.1 (2^10 new patients x 2^15
   registry entries), and how the MDH directive's custom reduction operator
   avoids the collapse. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Cost = Mdh_lowering.Cost
module Table = Mdh_support.Table

let table () =
  let table =
    Table.create
      ~headers:
        [ "Inp."; "N (new)"; "I (registry)"; "Device"; "System"; "time";
          "vs MDH"; "parallel units kept busy" ]
  in
  List.iter
    (fun (inp, params) ->
      Report.observe_workload ("prl/" ^ inp) @@ fun () ->
      let md = W.to_md_hom Mdh_workloads.Prl.prl params in
      let n = W.p params "N" and i = W.p params "I" in
      List.iter
        (fun (dev, directive_system) ->
          let mdh_outcome =
            match Mdh_baselines.Registry.mdh.Common.compile ~tuned:true md dev with
            | Ok o -> o
            | Error f -> failwith (Common.failure_to_string f)
          in
          let mdh = Common.seconds mdh_outcome in
          let add (o : Common.outcome) =
            Table.add_row table
              [ inp; string_of_int n; string_of_int i; dev.Device.device_name;
                o.Common.system; Report.time_str (Common.seconds o);
                Report.speedup_str (Common.seconds o /. mdh);
                string_of_int o.Common.analysis.Cost.achieved_units ]
          in
          add mdh_outcome;
          (match (directive_system : Common.system).Common.compile ~tuned:false md dev with
          | Ok o -> add o
          | Error f ->
            Table.add_row table
              [ inp; string_of_int n; string_of_int i; dev.Device.device_name;
                directive_system.Common.sys_name; Report.short_failure f; "-"; "-" ]))
        [ (Device.a100_like, Mdh_baselines.Openacc.system);
          (Device.xeon6140_like, Mdh_baselines.Openmp.system) ];
      Table.add_separator table)
    Mdh_workloads.Prl.prl.W.paper_inputs;
  table

let run () =
  Report.section "PRL study (Section 5.2): custom reduction and the Inp.1/Inp.2 shape";
  Table.print (table ());
  print_newline ();
  print_endline
    "OpenMP/OpenACC cannot name prl_best in a reduction clause, so only the\n\
     outer (new-patients) loop is parallel. For Inp.1 that loop has 2^10\n\
     iterations - far too few to keep the device busy - while MDH also\n\
     parallelises the 2^15-wide reduction through its combine operator."
