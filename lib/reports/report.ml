(* Shared helpers for the benchmark reports. *)

module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Common = Mdh_baselines.Common
module Registry = Mdh_baselines.Registry

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let time_str s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let speedup_str x =
  if x >= 100.0 then Printf.sprintf "%.0fx" x
  else if x >= 10.0 then Printf.sprintf "%.1fx" x
  else Printf.sprintf "%.2fx" x

let short_failure = function
  | Common.Unsupported_reduction _ -> "FAIL:reducer"
  | Common.Polyhedral_extraction_error _ -> "FAIL:polyhedra"
  | Common.No_parallel_dim _ -> "FAIL:no-par"
  | Common.Out_of_resources _ -> "FAIL:resources"
  | Common.Wrong_device _ -> "n/a"
  | Common.Not_supported _ -> "n/a"

let md_of (w : W.t) inp = W.to_md_hom w (List.assoc inp w.W.paper_inputs)

let mdh_seconds md dev =
  match Registry.mdh.Common.compile ~tuned:true md dev with
  | Ok o -> Common.seconds o
  | Error f -> failwith ("MDH failed to compile: " ^ Common.failure_to_string f)

(* --- per-workload observability ledger ---

   The reports loop over the catalogue internally, so the bench driver
   cannot see per-workload cache behaviour from outside; the table
   builders wrap each workload's row in [observe_workload], which spans
   it in the trace and accumulates the cost-cache hit/miss delta under
   the workload's name (merged across devices and repeat visits). *)

type workload_obs = {
  mutable wo_hits : int;
  mutable wo_misses : int;
  mutable wo_elapsed_s : float;
  mutable wo_visits : int;
}

let workload_tbl : (string, workload_obs) Hashtbl.t = Hashtbl.create 64
let workload_order : string list ref = ref []

let observe_workload name f =
  let before = Mdh_atf.Cost_cache.stats () in
  let result, elapsed =
    Mdh_support.Util.time_it (fun () ->
        Mdh_obs.Trace.with_span ~cat:"report" "report.workload"
          ~args:[ ("workload", name) ] f)
  in
  let after = Mdh_atf.Cost_cache.stats () in
  let entry =
    match Hashtbl.find_opt workload_tbl name with
    | Some e -> e
    | None ->
      let e = { wo_hits = 0; wo_misses = 0; wo_elapsed_s = 0.0; wo_visits = 0 } in
      Hashtbl.add workload_tbl name e;
      workload_order := name :: !workload_order;
      e
  in
  entry.wo_hits <- entry.wo_hits + (after.Mdh_atf.Cost_cache.n_hits - before.Mdh_atf.Cost_cache.n_hits);
  entry.wo_misses <-
    entry.wo_misses + (after.Mdh_atf.Cost_cache.n_misses - before.Mdh_atf.Cost_cache.n_misses);
  entry.wo_elapsed_s <- entry.wo_elapsed_s +. elapsed;
  entry.wo_visits <- entry.wo_visits + 1;
  result

let workload_obs () =
  List.rev_map
    (fun name ->
      let e = Hashtbl.find workload_tbl name in
      (name, e.wo_hits, e.wo_misses, e.wo_elapsed_s))
    !workload_order

let reset_workload_obs () =
  Hashtbl.reset workload_tbl;
  workload_order := []
