(** Shared helpers for the evaluation reports: section headers, time and
    speedup formatting, failure abbreviations, and MDH compilation. *)

val section : string -> unit
val time_str : float -> string
val speedup_str : float -> string

val short_failure : Mdh_baselines.Common.failure -> string
(** The abbreviated failure cell used in the tables: ["FAIL:no-par"],
    ["FAIL:resources"], ["FAIL:polyhedra"], ["FAIL:reducer"], ["n/a"]. *)

val md_of : Mdh_workloads.Workload.t -> string -> Mdh_core.Md_hom.t
(** Transform a workload at one of its paper input sizes ("1" or "2"). *)

val mdh_seconds : Mdh_core.Md_hom.t -> Mdh_machine.Device.t -> float
(** Auto-tuned MDH time estimate; raises [Failure] if compilation fails
    (it cannot, for well-formed computations). *)

val observe_workload : string -> (unit -> 'a) -> 'a
(** Run a report's per-workload body under a trace span and account the
    cost-cache hit/miss delta (and wall time) to [name] in the ledger,
    accumulating across devices and repeat visits. *)

val workload_obs : unit -> (string * int * int * float) list
(** The ledger in first-visit order: (name, cost-cache hits, misses,
    wall seconds). *)

val reset_workload_obs : unit -> unit
