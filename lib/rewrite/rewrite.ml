module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module Eanalysis = Mdh_expr.Analysis
module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Roofline = Mdh_machine.Roofline
module Plan = Mdh_lowering.Plan
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule
module Plan_cache = Mdh_lowering.Plan_cache
module Memo = Mdh_support.Memo
module Metrics = Mdh_obs.Metrics
module Json = Mdh_obs.Json

type property = Associative | Commutative

type verdict =
  | Proved of { evaluations : int }
  | Refuted of { witness : string }
  | Unknown of string

type oracle = {
  oracle_name : string;
  prove : Scalar.ty -> Combine.custom_fn -> property -> verdict;
}

let pure_oracle =
  { oracle_name = "pure";
    prove = (fun _ _ _ -> Unknown "no verification oracle attached") }

let property_name = function
  | Associative -> "associative"
  | Commutative -> "commutative"

type justification =
  | Pure of string
  | Algebra of { alg_op : string; alg_property : property; alg_evaluations : int }

type applied = {
  ap_tier : [ `Expr | `Plan ];
  ap_rule : string;
  ap_site : string;
  ap_detail : string;
  ap_just : justification;
}

let justification_to_string = function
  | Pure why -> "pure identity: " ^ why
  | Algebra { alg_op; alg_property; alg_evaluations } ->
    Printf.sprintf "verified property: %s is %s (oracle held on %d evaluations)"
      alg_op (property_name alg_property) alg_evaluations

let rec exact_scalar_domain = function
  | Scalar.Int32 | Scalar.Int64 | Scalar.Bool | Scalar.Char -> true
  | Scalar.Fp32 | Scalar.Fp64 -> false
  | Scalar.Record fields -> List.for_all (fun (_, ty) -> exact_scalar_domain ty) fields

(* --- tier 1: expression saturation ------------------------------------ *)

(* An expression is total when no evaluation can raise. Integer division
   is the one partial scalar operation the language exposes ([Read]s are
   in-bounds by directive validation), so rules that drop or unconditionally
   evaluate a subexpression require this. *)
let rec total = function
  | Expr.Binop (Expr.Div, _, _) -> false
  | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> true
  | Expr.Read (_, idxs) -> List.for_all total idxs
  | Expr.Binop (_, a, b) -> total a && total b
  | Expr.Unop (_, a) | Expr.Field (a, _) | Expr.Cast (_, a) -> total a
  | Expr.If (c, a, b) -> total c && total a && total b
  | Expr.Let (_, a, b) -> total a && total b
  | Expr.MkRecord fields -> List.for_all (fun (_, e) -> total e) fields

let shorten s =
  if String.length s <= 64 then s else String.sub s 0 61 ^ "..."

let estr e = shorten (Expr.to_string e)

let is_fp_const x = function
  | Expr.Const (Scalar.F32 v) | Expr.Const (Scalar.F64 v) -> Float.equal v x
  | _ -> false

(* strength reduction duplicates its operand, so restrict it to leaves:
   no recomputed flops, no duplicated memory reads *)
let leafy = function
  | Expr.Idx _ | Expr.Var _ | Expr.Const _ -> true
  | _ -> false

type emitter = rule:string -> detail:string -> just:justification -> unit

let rw_binop (emit : emitter) op a b =
  let default = Expr.Binop (op, a, b) in
  let fire rule why e' =
    emit ~rule
      ~detail:(Printf.sprintf "%s -> %s" (estr default) (estr e'))
      ~just:(Pure why);
    e'
  in
  let fold mk n why = fire "const-fold" why (mk n) in
  match op with
  | Expr.Add -> (
    if Eanalysis.is_int_const 0 a then
      fire "add-zero" "adding integer zero is the identity" b
    else if Eanalysis.is_int_const 0 b then
      fire "add-zero" "adding integer zero is the identity" a
    else
      match Eanalysis.int_consts a b with
      | Some (x, y, mk) -> fold mk (x + y) "integer addition of constants"
      | None -> default)
  | Expr.Sub -> (
    if Eanalysis.is_int_const 0 b then
      fire "sub-zero" "subtracting integer zero is the identity" a
    else
      match Eanalysis.int_consts a b with
      | Some (x, y, mk) -> fold mk (x - y) "integer subtraction of constants"
      | None -> default)
  | Expr.Mul -> (
    if Eanalysis.is_int_const 1 a then
      fire "mul-one" "multiplying by integer one is the identity" b
    else if Eanalysis.is_int_const 1 b then
      fire "mul-one" "multiplying by integer one is the identity" a
    else if is_fp_const 1.0 a then
      fire "mul-one" "IEEE-754 multiplication by one is exact for every value" b
    else if is_fp_const 1.0 b then
      fire "mul-one" "IEEE-754 multiplication by one is exact for every value" a
    else if Eanalysis.is_int_const 0 a && total b then
      fire "mul-zero" "integer multiplication by zero absorbs (dropped operand is total)" a
    else if Eanalysis.is_int_const 0 b && total a then
      fire "mul-zero" "integer multiplication by zero absorbs (dropped operand is total)" b
    else
      match Eanalysis.int_consts a b with
      | Some (x, y, mk) -> fold mk (x * y) "integer multiplication of constants"
      | None ->
        if (Eanalysis.is_int_const 2 a || is_fp_const 2.0 a) && leafy b then
          fire "strength-reduce"
            "x + x computes 2*x exactly (wrap-around and IEEE-754 included)"
            (Expr.Binop (Expr.Add, b, b))
        else if (Eanalysis.is_int_const 2 b || is_fp_const 2.0 b) && leafy a then
          fire "strength-reduce"
            "x + x computes 2*x exactly (wrap-around and IEEE-754 included)"
            (Expr.Binop (Expr.Add, a, a))
        else default)
  | Expr.Div -> (
    if Eanalysis.is_int_const 1 b then
      fire "div-one" "integer division by one is the identity" a
    else if is_fp_const 1.0 b then
      fire "div-one" "IEEE-754 division by one is exact for every value" a
    else
      match Eanalysis.int_consts a b with
      | Some (x, y, mk) when y <> 0 ->
        fold mk (x / y) "integer division of constants (non-zero divisor)"
      | _ -> default)
  | Expr.Min | Expr.Max ->
    if Stdlib.( = ) a b then
      fire "minmax-absorb"
        "min/max of an expression with itself is that expression" a
    else default
  | Expr.And -> (
    match (a, b) with
    | Expr.Const (Scalar.B true), other | other, Expr.Const (Scalar.B true) ->
      fire "bool-identity" "conjunction with true is the identity" other
    | (Expr.Const (Scalar.B false) as f), other when total other ->
      fire "bool-absorb" "conjunction with false absorbs (dropped operand is total)" f
    | other, (Expr.Const (Scalar.B false) as f) when total other ->
      fire "bool-absorb" "conjunction with false absorbs (dropped operand is total)" f
    | _ -> default)
  | Expr.Or -> (
    match (a, b) with
    | Expr.Const (Scalar.B false), other | other, Expr.Const (Scalar.B false) ->
      fire "bool-identity" "disjunction with false is the identity" other
    | (Expr.Const (Scalar.B true) as t), other when total other ->
      fire "bool-absorb" "disjunction with true absorbs (dropped operand is total)" t
    | other, (Expr.Const (Scalar.B true) as t) when total other ->
      fire "bool-absorb" "disjunction with true absorbs (dropped operand is total)" t
    | _ -> default)
  | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> default

let rw_unop (emit : emitter) op a =
  let default = Expr.Unop (op, a) in
  let fire rule why e' =
    emit ~rule
      ~detail:(Printf.sprintf "%s -> %s" (estr default) (estr e'))
      ~just:(Pure why);
    e'
  in
  match (op, a) with
  | Expr.Neg, Expr.Unop (Expr.Neg, inner) ->
    fire "involution" "negation is an involution" inner
  | ( Expr.Neg,
      Expr.Const ((Scalar.F32 _ | Scalar.F64 _ | Scalar.I32 _ | Scalar.I64 _) as v) )
    ->
    fire "const-fold" "negation of a numeric constant" (Expr.Const (Scalar.neg v))
  | Expr.Not, Expr.Unop (Expr.Not, inner) ->
    fire "involution" "logical not is an involution" inner
  | Expr.Not, Expr.Const (Scalar.B b) ->
    fire "const-fold" "negation of a boolean constant" (Expr.Const (Scalar.B (not b)))
  | _ -> default

let rw_if (emit : emitter) c a b =
  let default = Expr.If (c, a, b) in
  let fire rule why e' =
    emit ~rule
      ~detail:(Printf.sprintf "%s -> %s" (estr default) (estr e'))
      ~just:(Pure why);
    e'
  in
  match c with
  | Expr.Const (Scalar.B true) ->
    fire "if-const" "condition is constant true" a
  | Expr.Const (Scalar.B false) ->
    fire "if-const" "condition is constant false" b
  | _ ->
    if Stdlib.( = ) a b && total c then
      fire "if-same" "both branches are the same expression and the condition is total" a
    else default

let rw_let (emit : emitter) name value body =
  let default = Expr.Let (name, value, body) in
  if (not (Eanalysis.uses_var name body)) && total value then (
    emit ~rule:"dead-let"
      ~detail:(Printf.sprintf "let %s = %s dropped (unused, total)" name (estr value))
      ~just:(Pure "the binding is unused and its value cannot raise");
    body)
  else default

let rec pass emit e =
  match e with
  | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> e
  | Expr.Read (buf, idxs) -> Expr.Read (buf, List.map (pass emit) idxs)
  | Expr.Binop (op, a, b) -> rw_binop emit op (pass emit a) (pass emit b)
  | Expr.Unop (op, a) -> rw_unop emit op (pass emit a)
  | Expr.If (c, a, b) -> rw_if emit (pass emit c) (pass emit a) (pass emit b)
  | Expr.Let (n, v, body) -> rw_let emit n (pass emit v) (pass emit body)
  | Expr.Field (a, f) -> Expr.Field (pass emit a, f)
  | Expr.MkRecord fields ->
    Expr.MkRecord (List.map (fun (n, fe) -> (n, pass emit fe)) fields)
  | Expr.Cast (ty, a) -> Expr.Cast (ty, pass emit a)

(* --- common-subexpression elimination --- *)

let rec esize = function
  | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> 1
  | Expr.Read (_, idxs) -> List.fold_left (fun a i -> a + esize i) 1 idxs
  | Expr.Binop (_, a, b) -> 1 + esize a + esize b
  | Expr.Unop (_, a) | Expr.Field (a, _) | Expr.Cast (_, a) -> 1 + esize a
  | Expr.If (c, a, b) -> 1 + esize c + esize a + esize b
  | Expr.Let (_, a, b) -> 1 + esize a + esize b
  | Expr.MkRecord fields -> List.fold_left (fun a (_, e) -> a + esize e) 1 fields

let rec contains p e =
  p e
  ||
  match e with
  | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> false
  | Expr.Read (_, idxs) -> List.exists (contains p) idxs
  | Expr.Binop (_, a, b) -> contains p a || contains p b
  | Expr.Unop (_, a) | Expr.Field (a, _) | Expr.Cast (_, a) -> contains p a
  | Expr.If (c, a, b) -> contains p c || contains p a || contains p b
  | Expr.Let (_, a, b) -> contains p a || contains p b
  | Expr.MkRecord fields -> List.exists (fun (_, fe) -> contains p fe) fields

let contains_var = contains (function Expr.Var _ -> true | _ -> false)
let contains_let = contains (function Expr.Let _ -> true | _ -> false)
let contains_read = contains (function Expr.Read _ -> true | _ -> false)

let subtree_counts root =
  let tbl = Hashtbl.create 64 in
  let rec go e =
    (match e with
    | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> ()
    | _ ->
      Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e)));
    match e with
    | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> ()
    | Expr.Read (_, idxs) -> List.iter go idxs
    | Expr.Binop (_, a, b) -> go a; go b
    | Expr.Unop (_, a) | Expr.Field (a, _) | Expr.Cast (_, a) -> go a
    | Expr.If (c, a, b) -> go c; go a; go b
    | Expr.Let (_, a, b) -> go a; go b
    | Expr.MkRecord fields -> List.iter (fun (_, fe) -> go fe) fields
  in
  go root;
  tbl

let used_names root =
  let tbl = Hashtbl.create 16 in
  let add n = Hashtbl.replace tbl n () in
  let rec go = function
    | Expr.Const _ -> ()
    | Expr.Idx n | Expr.Var n -> add n
    | Expr.Read (buf, idxs) -> add buf; List.iter go idxs
    | Expr.Binop (_, a, b) -> go a; go b
    | Expr.Unop (_, a) | Expr.Field (a, _) | Expr.Cast (_, a) -> go a
    | Expr.If (c, a, b) -> go c; go a; go b
    | Expr.Let (n, a, b) -> add n; go a; go b
    | Expr.MkRecord fields -> List.iter (fun (_, fe) -> go fe) fields
  in
  go root;
  tbl

let fresh_name used =
  let rec go k =
    let name = "_r" ^ string_of_int k in
    if Hashtbl.mem used name then go (k + 1) else name
  in
  go 0

let rec subst ~target ~name e =
  if Stdlib.( = ) e target then Expr.Var name
  else
    match e with
    | Expr.Const _ | Expr.Idx _ | Expr.Var _ -> e
    | Expr.Read (buf, idxs) -> Expr.Read (buf, List.map (subst ~target ~name) idxs)
    | Expr.Binop (op, a, b) ->
      Expr.Binop (op, subst ~target ~name a, subst ~target ~name b)
    | Expr.Unop (op, a) -> Expr.Unop (op, subst ~target ~name a)
    | Expr.If (c, a, b) ->
      Expr.If (subst ~target ~name c, subst ~target ~name a, subst ~target ~name b)
    | Expr.Let (n, a, b) -> Expr.Let (n, subst ~target ~name a, subst ~target ~name b)
    | Expr.Field (a, f) -> Expr.Field (subst ~target ~name a, f)
    | Expr.MkRecord fields ->
      Expr.MkRecord (List.map (fun (n, fe) -> (n, subst ~target ~name fe)) fields)
    | Expr.Cast (ty, a) -> Expr.Cast (ty, subst ~target ~name a)

(* One CSE hoist: pick the most valuable repeated total subtree, bind it
   once at the outermost scope, replace every occurrence with the binding.
   Candidates carry no [Var] (an enclosing-let reference would escape its
   binder) and no [Let] (keeps the hoist closed); they are total, so
   evaluating them unconditionally — even occurrences that sat under an
   [If] branch — cannot raise, and the bound value is bit-identical at
   every former occurrence site. *)
let cse_step (emit : emitter) root =
  let counts = subtree_counts root in
  let candidates =
    Hashtbl.fold
      (fun e n acc ->
        if
          n >= 2 && total e
          && (not (contains_var e))
          && (not (contains_let e))
          && (contains_read e || Eanalysis.flops e >= 1)
        then (e, n) :: acc
        else acc)
      counts []
    |> List.sort (fun (a, _) (b, _) ->
           match compare (Eanalysis.flops b) (Eanalysis.flops a) with
           | 0 -> (
             match compare (esize b) (esize a) with
             | 0 -> compare (Expr.to_string a) (Expr.to_string b)
             | c -> c)
           | c -> c)
  in
  let flops0 = Eanalysis.flops root in
  let try_candidate (sub, n) =
    let used = used_names root in
    let name = fresh_name used in
    let hoisted = Expr.Let (name, sub, subst ~target:sub ~name root) in
    (* [If] charges max over its branches, so a hoist out of the cold
       branch could raise the modelled flops: keep only non-worsening *)
    if Eanalysis.flops hoisted <= flops0 then Some (hoisted, sub, n) else None
  in
  match List.find_map try_candidate candidates with
  | None -> None
  | Some (hoisted, sub, n) ->
    emit ~rule:"cse"
      ~detail:
        (Printf.sprintf "%d occurrences of %s hoisted into a let (%d -> %d flops)"
           n (estr sub) flops0 (Eanalysis.flops hoisted))
      ~just:
        (Pure
           "the shared subexpression is total; a let-binding evaluates it once \
            and every occurrence reads the identical value");
    Some hoisted

let saturate_expr ?(site = "expr") e0 =
  let log = ref [] in
  let emit ~rule ~detail ~just =
    log :=
      { ap_tier = `Expr; ap_rule = rule; ap_site = site; ap_detail = detail;
        ap_just = just }
      :: !log
  in
  let rec fix n e =
    if n = 0 then e
    else
      let e' = pass emit e in
      if Stdlib.( = ) e' e then e else fix (n - 1) e'
  in
  let e1 = fix 8 e0 in
  let rec cse n e =
    if n = 0 then e
    else match cse_step emit e with Some e' -> cse (n - 1) e' | None -> e
  in
  let e2 = cse 8 e1 in
  (e2, List.rev !log)

let saturate_outputs (md : Md_hom.t) =
  let log = ref [] in
  let outputs =
    List.map
      (fun (o : Md_hom.output) ->
        let v', applied =
          saturate_expr ~site:(o.Md_hom.out_name ^ ".value") o.Md_hom.value
        in
        log := !log @ applied;
        { o with Md_hom.value = v' })
      md.Md_hom.outputs
  in
  ({ md with Md_hom.outputs }, !log)

(* --- tier 2: plan saturation ------------------------------------------- *)

let plan_seconds md dev cg plan =
  (Cost.analyse_plan md dev cg plan).Cost.breakdown.Roofline.total_s

let replace_levels plan levels = { plan with Plan.levels }

let set_tile plan d v =
  let tile_sizes = Array.copy plan.Plan.tile_sizes in
  tile_sizes.(d) <- v;
  { plan with Plan.tile_sizes }

(* a candidate single-step rewrite: the rewritten plan plus provenance;
   [gated] candidates are kept only when the cost model does not worsen *)
type plan_step = {
  ps_plan : Plan.t;
  ps_rule : string;
  ps_site : string;
  ps_detail : string;
  ps_just : justification;
  ps_gated : bool;
}

let find_pair p levels =
  let rec go i before = function
    | a :: b :: rest -> (
      match p a b with
      | Some r -> Some (i, List.rev before, r, rest)
      | None -> go (i + 1) (a :: before) (b :: rest))
    | _ -> None
  in
  go 0 [] levels

let try_seq_fuse plan =
  find_pair
    (fun a b ->
      match (a, b) with
      | Plan.Seq { dim = d1; extent = e1 }, Plan.Seq { dim = d2; extent = e2 }
        when d1 = d2 ->
        Some (d1, e1, e2)
      | _ -> None)
    plan.Plan.levels
  |> Option.map (fun (i, before, (d, e1, e2), rest) ->
         { ps_plan =
             replace_levels plan (before @ (Plan.Seq { dim = d; extent = e1 * e2 } :: rest));
           ps_rule = "seq-fuse";
           ps_site = Printf.sprintf "L%d" i;
           ps_detail =
             Printf.sprintf "dim %d: adjacent loops of %d and %d fused into %d" d e1
               e2 (e1 * e2);
           ps_just =
             Pure "adjacent loops over the same dimension iterate its extent exactly once";
           ps_gated = false })

let try_seq_drop plan =
  let rec go i before prev = function
    | (Plan.Seq { dim; extent = 1 }) :: rest
      when match prev with
           | Some (Plan.Tile { dim = td; _ }) -> td <> dim
           | _ -> true ->
      Some
        { ps_plan = replace_levels plan (List.rev before @ rest);
          ps_rule = "seq-drop-unit";
          ps_site = Printf.sprintf "L%d" i;
          ps_detail = Printf.sprintf "dim %d: loop of one iteration removed" dim;
          ps_just = Pure "a loop of one iteration is its body";
          ps_gated = false }
    | l :: rest -> go (i + 1) (l :: before) (Some l) rest
    | [] -> None
  in
  go 0 [] None plan.Plan.levels

let try_tile_elim plan =
  find_pair
    (fun a b ->
      match (a, b) with
      | Plan.Tile { dim; tile = 1; extent }, Plan.Seq { dim = d2; extent = 1 }
        when d2 = dim ->
        Some (dim, extent)
      | _ -> None)
    plan.Plan.levels
  |> Option.map (fun (i, before, (d, extent), rest) ->
         { ps_plan =
             set_tile
               (replace_levels plan (before @ (Plan.Seq { dim = d; extent } :: rest)))
               d extent;
           ps_rule = "tile-elim-unit";
           ps_site = Printf.sprintf "L%d" i;
           ps_detail =
             Printf.sprintf "dim %d: unit tile eliminated (tile 1 -> %d)" d extent;
           ps_just = Pure "a tile of one element per block is the untiled loop";
           ps_gated = true })

let try_tile_merge plan =
  find_pair
    (fun a b ->
      match (a, b) with
      | Plan.Tile { dim; tile; extent }, Plan.Seq { dim = d2; extent = e2 }
        when d2 = dim && e2 = tile && tile > 1 && extent mod tile = 0 ->
        Some (dim, tile, extent)
      | _ -> None)
    plan.Plan.levels
  |> Option.map (fun (i, before, (d, tile, extent), rest) ->
         { ps_plan =
             set_tile
               (replace_levels plan (before @ (Plan.Seq { dim = d; extent } :: rest)))
               d extent;
           ps_rule = "tile-merge-divisible";
           ps_site = Printf.sprintf "L%d" i;
           ps_detail =
             Printf.sprintf
               "dim %d: %d-element tile merged into the %d-iteration loop" d tile
               extent;
           ps_just =
             Pure
               "the tile extent divides the dimension extent; merging tile and \
                intra-tile loops is the identity";
           ps_gated = true })

let declared_refuted oracle ty fn =
  let bad declared prop =
    declared
    &&
    match oracle.prove ty fn prop with Refuted _ -> true | Proved _ | Unknown _ -> false
  in
  bad fn.Combine.associative Associative || bad fn.Combine.commutative Commutative

(* Reassociating a reduction is sound only when (i) the oracle proved the
   operator associative, (ii) no declared property was refuted — a wrong
   declaration poisons the operator's metadata wholesale — and (iii) the
   proof transfers from the sample domain to the full domain: exact
   scalars, or builtin min/max (selection never rounds). The declared
   [associative]/[commutative] flags alone never justify anything here. *)
let reassociation_justification oracle ty fn =
  match oracle.prove ty fn Associative with
  | Proved { evaluations }
    when (not (declared_refuted oracle ty fn))
         && (exact_scalar_domain ty
            || fn.Combine.builtin
               && (String.equal fn.Combine.fn_name "min"
                  || String.equal fn.Combine.fn_name "max")) ->
    Some
      (Algebra
         { alg_op = fn.Combine.fn_name; alg_property = Associative;
           alg_evaluations = evaluations })
  | _ -> None

let floor_pow2 n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n < 1 then 1 else go 1

let try_tree_balance oracle (md : Md_hom.t) plan =
  let rec go i before = function
    | (Plan.Tree_reduce { dim; op; items; extent }) :: rest
      when items > 1 && items land (items - 1) <> 0 -> (
      let fn = Combine.custom_fn_of md.Md_hom.combine_ops.(dim) in
      let ty =
        match md.Md_hom.outputs with
        | o :: _ -> Some o.Md_hom.out_ty
        | [] -> None
      in
      match (fn, ty) with
      | Some fn, Some ty -> (
        match reassociation_justification oracle ty fn with
        | Some just ->
          let items' = floor_pow2 items in
          Some
            { ps_plan =
                replace_levels plan
                  (List.rev before
                  @ (Plan.Tree_reduce { dim; op; items = items'; extent } :: rest));
              ps_rule = "tree-balance";
              ps_site = Printf.sprintf "L%d" i;
              ps_detail =
                Printf.sprintf
                  "dim %d: tree-reduce rebalanced from %d to %d cooperating items"
                  dim items items';
              ps_just = just;
              ps_gated = false }
        | None -> go (i + 1) (Plan.Tree_reduce { dim; op; items; extent } :: before) rest)
      | _ -> go (i + 1) (Plan.Tree_reduce { dim; op; items; extent } :: before) rest)
    | l :: rest -> go (i + 1) (l :: before) rest
    | [] -> None
  in
  go 0 [] plan.Plan.levels

let saturate_plan ~oracle (md : Md_hom.t) dev cg plan0 =
  let log = ref [] in
  let emit ps =
    log :=
      { ap_tier = `Plan; ap_rule = ps.ps_rule; ap_site = ps.ps_site;
        ap_detail = ps.ps_detail; ap_just = ps.ps_just }
      :: !log
  in
  let seconds p = plan_seconds md dev cg p in
  let gens =
    [ try_seq_fuse; try_seq_drop; try_tile_elim; try_tile_merge;
      try_tree_balance oracle md ]
  in
  let step plan =
    List.find_map
      (fun gen ->
        match gen plan with
        | Some ps
          when (not ps.ps_gated)
               || seconds ps.ps_plan <= seconds plan *. (1. +. 1e-9) ->
          Some ps
        | _ -> None)
      gens
  in
  let rec loop n plan =
    if n = 0 then plan
    else
      match step plan with
      | Some ps ->
        emit ps;
        loop (n - 1) ps.ps_plan
      | None -> plan
  in
  let plan' = loop 16 plan0 in
  (plan', List.rev !log)

(* --- the optimize driver ----------------------------------------------- *)

type report = {
  r_md : Md_hom.t;
  r_raw_plan : Plan.t;
  r_plan : Plan.t;
  r_raw_seconds : float;
  r_seconds : float;
  r_applied : applied list;
}

let optimize ?(oracle = pure_oracle) (md : Md_hom.t) dev cg sched =
  match Plan_cache.build md dev sched with
  | Error e -> Error e
  | Ok raw_plan -> (
    let md', expr_applied = saturate_outputs md in
    match Plan_cache.build md' dev sched with
    | Error e -> Error e
    | Ok plan0 ->
      let plan', plan_applied = saturate_plan ~oracle md' dev cg plan0 in
      Ok
        { r_md = md';
          r_raw_plan = raw_plan;
          r_plan = plan';
          r_raw_seconds = plan_seconds md dev cg raw_plan;
          r_seconds = plan_seconds md' dev cg plan';
          r_applied = expr_applied @ plan_applied })

(* --- memoized lowering-phase entry point --- *)

let cache : (report, string) result Memo.t = Memo.create ()
let m_hits = Metrics.counter "rewrite.cache.hits"
let m_misses = Metrics.counter "rewrite.cache.misses"
let record ~hit = Metrics.incr (if hit then m_hits else m_misses)

let optimize_cached ?(oracle = pure_oracle) md dev cg sched =
  let key =
    Memo.key
      [ "rewrite-v1"; oracle.oracle_name;
        Format.asprintf "%a" Md_hom.pp md;
        dev.Device.device_name; cg.Cost.cg_name; Schedule.to_string sched ]
  in
  Memo.find_or_add ~record cache key (fun () -> optimize ~oracle md dev cg sched)

type cache_stats = { n_hits : int; n_misses : int; n_entries : int }

let cache_stats () =
  { n_hits = Metrics.value m_hits;
    n_misses = Metrics.value m_misses;
    n_entries = (Memo.stats cache).Memo.n_entries }

let reset_cache_stats () =
  Metrics.reset_counter m_hits;
  Metrics.reset_counter m_misses;
  Memo.reset_stats cache

let set_cache_enabled enabled = Memo.set_enabled cache enabled

(* --- report rendering --------------------------------------------------- *)

let improvement r =
  if r.r_raw_seconds > 0.0 then (r.r_raw_seconds -. r.r_seconds) /. r.r_raw_seconds
  else 0.0

let tier_name = function `Expr -> "expr" | `Plan -> "plan"

let report_json ~name ~device r =
  let applied =
    List.map
      (fun a ->
        Json.obj
          [ ("tier", Json.quote (tier_name a.ap_tier));
            ("rule", Json.quote a.ap_rule);
            ("site", Json.quote a.ap_site);
            ("detail", Json.quote a.ap_detail);
            ( "kind",
              Json.quote
                (match a.ap_just with Pure _ -> "pure" | Algebra _ -> "verified") );
            ("justification", Json.quote (justification_to_string a.ap_just)) ])
      r.r_applied
  in
  Json.obj
    [ ("schema", Json.quote "mdh-optimize/1");
      ("workload", Json.quote name);
      ("device", Json.quote device);
      ("raw_digest", Json.quote (Plan.digest r.r_raw_plan));
      ("digest", Json.quote (Plan.digest r.r_plan));
      ("point_flops_raw", string_of_int r.r_raw_plan.Plan.point_flops);
      ("point_flops", string_of_int r.r_plan.Plan.point_flops);
      ("raw_model_seconds", Json.number r.r_raw_seconds);
      ("model_seconds", Json.number r.r_seconds);
      ("improvement", Json.number (improvement r));
      ("n_applied", string_of_int (List.length r.r_applied));
      ("applied", Json.arr applied) ]

let pp_report ~name ~device ppf r =
  Format.fprintf ppf "@[<v>optimize %s on %s@," name device;
  Format.fprintf ppf "raw plan:       digest %s, %d point flops, model %.3e s@,"
    (Plan.digest r.r_raw_plan) r.r_raw_plan.Plan.point_flops r.r_raw_seconds;
  if r.r_applied = [] then Format.fprintf ppf "no rewrites applied@,"
  else
    List.iter
      (fun a ->
        Format.fprintf ppf "[%s] %s @@ %s: %s@,    justification: %s@,"
          (tier_name a.ap_tier) a.ap_rule a.ap_site a.ap_detail
          (justification_to_string a.ap_just))
      r.r_applied;
  Format.fprintf ppf "saturated plan: digest %s, %d point flops, model %.3e s@,"
    (Plan.digest r.r_plan) r.r_plan.Plan.point_flops r.r_seconds;
  Format.fprintf ppf "cost-model delta: %+.2f%% (%.3e s -> %.3e s)@]"
    (-100.0 *. improvement r)
    r.r_raw_seconds r.r_seconds
