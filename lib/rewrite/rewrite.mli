(** Verified equality-saturation over scalar expressions and plans.

    A bounded rewrite-to-fixpoint engine with two tiers. Tier 1 saturates
    the combine body ({!Mdh_expr.Expr.t}): constant folding, algebraic
    identities (x+0, x*1, min/max absorption), strength reduction, and
    common-subexpression elimination that hoists shared [Read]s and
    subtrees into [Let]s. Tier 2 rewrites {!Mdh_lowering.Plan.t}
    structure: unit-extent level elimination, adjacent-[Seq] fusion,
    tile-extent simplification, and reassociation of [Tree_reduce]
    shapes.

    Every applied rule carries a {!justification}: either [Pure] — the
    identity preserves semantics for all operators, bit-for-bit — or
    [Algebra] — the rule is sound only under an operator property that a
    {!oracle} machine-proved. Rules are never gated on declared-but-
    unverified annotations; a declared property the oracle refutes
    poisons the operator and blocks every algebra-gated rule on it.
    Floating-point reassociation is refused even for a proved-associative
    operator unless the scalar domain is exact (the proof is algebraic,
    not a statement about rounding); builtin min/max are exempt because
    selection never rounds. *)

module Scalar = Mdh_tensor.Scalar
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module Md_hom = Mdh_core.Md_hom
module Device = Mdh_machine.Device
module Plan = Mdh_lowering.Plan
module Cost = Mdh_lowering.Cost
module Schedule = Mdh_lowering.Schedule

(** {1 The justification oracle} *)

type property = Associative | Commutative

type verdict =
  | Proved of { evaluations : int }  (** held on this many operator applications *)
  | Refuted of { witness : string }  (** rendered counterexample *)
  | Unknown of string  (** the oracle could not decide *)

type oracle = {
  oracle_name : string;  (** stable id, part of the rewrite-cache key *)
  prove : Scalar.ty -> Combine.custom_fn -> property -> verdict;
}

val pure_oracle : oracle
(** Proves nothing: every [prove] answers [Unknown]. With this oracle only
    [Pure]-justified rules can fire. *)

val property_name : property -> string
(** ["associative"] / ["commutative"]. *)

(** {1 Applied-rule provenance} *)

type justification =
  | Pure of string
      (** semantics-preserving for all operators; the payload says why *)
  | Algebra of {
      alg_op : string;  (** operator the rule reassociated *)
      alg_property : property;
      alg_evaluations : int;  (** oracle evidence size *)
    }

type applied = {
  ap_tier : [ `Expr | `Plan ];
  ap_rule : string;  (** stable rule id, e.g. ["cse"], ["tree-balance"] *)
  ap_site : string;  (** where it fired: output name or plan level *)
  ap_detail : string;  (** human rendering of the change *)
  ap_just : justification;
}

val justification_to_string : justification -> string

val exact_scalar_domain : Scalar.ty -> bool
(** Types whose arithmetic never rounds: integers, bool, char, and
    records of such. Floats are inexact — reassociation changes results. *)

(** {1 Tier 1: expression saturation} *)

val saturate_expr : ?site:string -> Expr.t -> Expr.t * applied list
(** Bounded rewrite-to-fixpoint (identities, folding, strength reduction)
    followed by CSE hoisting. Every rule applied is [Pure]; the result is
    bit-identical to the input under evaluation. [site] labels the
    provenance records. *)

val saturate_outputs : Md_hom.t -> Md_hom.t * applied list
(** [saturate_expr] over every output's combine body. The returned
    computation has the same iteration space, combine operators and
    accesses — only the bodies (and hence [flops_per_point]) change. *)

(** {1 Tier 2: plan saturation} *)

val saturate_plan :
  oracle:oracle ->
  Md_hom.t ->
  Device.t ->
  Cost.codegen ->
  Plan.t ->
  Plan.t * applied list
(** Structural plan rewrites: unit-extent [Seq] elimination and
    adjacent same-dimension [Seq] fusion (pure identities); unit-tile
    elimination and divisible-extent tile merging (pure identities,
    kept only when the cost model does not worsen); [Tree_reduce]
    rebalancing to a power-of-two shape (algebra-gated: requires the
    oracle to prove associativity, no poisoned declaration, and an
    exact scalar domain or builtin min/max). *)

(** {1 The optimize driver} *)

type report = {
  r_md : Md_hom.t;  (** saturated computation (tier 1 applied) *)
  r_raw_plan : Plan.t;
  r_plan : Plan.t;  (** saturated plan (tier 2 applied over [r_md]) *)
  r_raw_seconds : float;  (** cost model on the raw computation + plan *)
  r_seconds : float;  (** cost model on the saturated pair *)
  r_applied : applied list;  (** in application order *)
}

val optimize :
  ?oracle:oracle ->
  Md_hom.t ->
  Device.t ->
  Cost.codegen ->
  Schedule.t ->
  (report, string) result
(** Saturate both tiers under one schedule and price the before/after
    pair with the cost model. [Error] iff the schedule is illegal. *)

val optimize_cached :
  ?oracle:oracle ->
  Md_hom.t ->
  Device.t ->
  Cost.codegen ->
  Schedule.t ->
  (report, string) result
(** [optimize] memoized under (oracle, computation, device, codegen,
    schedule) — the lowering-phase entry point, so repeated lowerings of
    the same workload reuse the saturated plan (cached under its new
    digest). Hits/misses are mirrored to the [rewrite.cache.hits] /
    [rewrite.cache.misses] metrics counters. *)

type cache_stats = { n_hits : int; n_misses : int; n_entries : int }

val cache_stats : unit -> cache_stats
val reset_cache_stats : unit -> unit
val set_cache_enabled : bool -> unit

(** {1 Report rendering} *)

val report_json : name:string -> device:string -> report -> string
(** Schema [mdh-optimize/1]: workload, device, raw/saturated plan digests
    and model seconds, and one record per applied rule ([tier], [rule],
    [site], [detail], [justification]). *)

val pp_report :
  name:string -> device:string -> Format.formatter -> report -> unit
(** Human rendering: each applied rule with its justification, then the
    before/after cost-model delta. *)
