module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Schedule = Mdh_lowering.Schedule

let host_device pool =
  { Mdh_machine.Device.device_name = "host";
    kind = Mdh_machine.Device.Cpu;
    layers = [| { layer_name = "workers"; max_units = Pool.num_workers pool } |];
    peak_gflops = 1.0;
    mem = [| { level_name = "RAM"; capacity_bytes = max_int; bandwidth_gbs = 1.0 } |];
    link_gbs = None;
    launch_overhead_s = 0.0;
    saturation_units = 1;
    min_bw_fraction = 1.0;
    compute_saturation_units = 1 }

module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics

let m_runs = Metrics.counter "runtime.exec.runs"
let m_boxes = Metrics.counter "runtime.exec.boxes"

let run_seq md env =
  Trace.with_span ~cat:"runtime" "exec.seq"
    ~args:[ ("hom", md.Md_hom.hom_name) ]
    (fun () -> Semantics.exec md env)

let run pool (md : Md_hom.t) sched env =
  match Schedule.legal md (host_device pool) { sched with Schedule.used_layers = [] } with
  | Error _ as e -> e
  | Ok () ->
    Metrics.incr m_runs;
    Trace.with_span ~cat:"runtime" "exec.run"
      ~args:[ ("hom", md.Md_hom.hom_name) ]
      (fun () ->
        let sched = Schedule.clamp md sched in
        match sched.Schedule.parallel_dims with
        | [] -> Ok (run_seq md env)
        | pd ->
          (* split the outermost parallel dimension into per-worker boxes *)
          let d = List.fold_left min (List.hd pd) pd in
          let extent = md.sizes.(d) in
          let workers = Pool.num_workers pool in
          let n_chunks = min extent (workers * 2) in
          let chunk = (extent + n_chunks - 1) / n_chunks in
          let env = Semantics.alloc_outputs md env in
          let rank = Md_hom.rank md in
          List.iter
            (fun (o : Md_hom.output) ->
              let thunks =
                Array.init n_chunks (fun c ->
                    fun () ->
                      let lo = Array.make rank 0 in
                      let sz = Array.copy md.sizes in
                      lo.(d) <- c * chunk;
                      sz.(d) <- min chunk (extent - (c * chunk));
                      if sz.(d) <= 0 then None
                      else begin
                        Metrics.incr m_boxes;
                        Trace.with_span ~cat:"runtime" "exec.box"
                          ~args:
                            [ ("output", o.Md_hom.out_name);
                              ("chunk", string_of_int c) ]
                          (fun () -> Some (Semantics.eval_box md env o ~lo ~sz))
                      end)
              in
              let partials = Pool.run_in_parallel pool thunks in
              let combined =
                Trace.with_span ~cat:"runtime" "exec.recombine"
                  ~args:[ ("output", o.Md_hom.out_name) ]
                  (fun () ->
                    Array.fold_left
                      (fun acc partial ->
                        match (acc, partial) with
                        | None, p -> p
                        | Some a, Some p ->
                          Some (Combine.combine_partials md.combine_ops.(d) ~dim:d a p)
                        | Some _, None -> acc)
                      None partials)
              in
              match combined with
              | Some tensor -> Semantics.write_output env md o tensor
              | None -> ())
            md.outputs;
          Ok env)
