module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Plan = Mdh_lowering.Plan
module Plan_cache = Mdh_lowering.Plan_cache

let host_device pool =
  let workers = Pool.num_workers pool in
  { Mdh_machine.Device.device_name = Printf.sprintf "host:%dw" workers;
    kind = Mdh_machine.Device.Cpu;
    layers = [| { layer_name = "workers"; max_units = workers } |];
    peak_gflops = 1.0;
    mem = [| { level_name = "RAM"; capacity_bytes = max_int; bandwidth_gbs = 1.0 } |];
    link_gbs = None;
    launch_overhead_s = 0.0;
    saturation_units = 1;
    min_bw_fraction = 1.0;
    compute_saturation_units = 1 }

module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics
module Clock = Mdh_obs.Clock
module Profile = Mdh_obs.Profile

let m_runs = Metrics.counter "runtime.exec.runs"
let m_boxes = Metrics.counter "runtime.exec.boxes"

(* time a backend attempt and attribute it to a profile phase cell when it
   actually handled the run; a refused attempt (None) is matcher overhead,
   far below profiling resolution *)
let timed_phase ~digest ~path f =
  if not (Profile.enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let r = f () in
    (match r with
    | Some _ ->
      Profile.add ~digest ~path
        (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0))
    | None -> ());
    r
  end

(* plan-level indices of the parallel levels, for attributing the box
   walker's per-job time back to the plan tree *)
let parallel_level_indices plan =
  let rec go i dist tree = function
    | [] -> (dist, tree)
    | Plan.Distribute _ :: rest -> go (i + 1) i tree rest
    | Plan.Tree_reduce _ :: rest -> go (i + 1) dist i rest
    | _ :: rest -> go (i + 1) dist tree rest
  in
  go 0 (-1) (-1) plan.Plan.levels

let run_seq md env =
  Trace.with_span ~cat:"runtime" "exec.seq"
    ~args:[ ("hom", md.Md_hom.hom_name) ]
    (fun () -> Semantics.exec md env)

let default_chunks_per_worker = 2

(* [lo, lo+extent) cut into at most [pieces] equal chunks (the last may be
   short); empty chunks are dropped. *)
let split_range ~extent ~pieces =
  let n = max 1 (min extent pieces) in
  let chunk = (extent + n - 1) / n in
  List.init n (fun c -> (c * chunk, min chunk (extent - (c * chunk))))
  |> List.filter (fun (_, sz) -> sz > 0)

(* Spend the chunk budget on the plan's parallel levels: distributed (cc)
   dimensions first, in dimension order, then the tree-reduce dimension
   with whatever budget remains. *)
let decompose plan ~target =
  let remaining = ref (max 1 target) in
  let cc =
    List.map
      (fun (d, extent) ->
        let pieces = max 1 (min extent !remaining) in
        remaining := max 1 (!remaining / pieces);
        (d, split_range ~extent ~pieces))
      (Plan.distributed plan)
  in
  let tree =
    match Plan.tree plan with
    | Some (d, extent, _items) when !remaining > 1 ->
      Some (d, split_range ~extent ~pieces:!remaining)
    | _ -> None
  in
  (cc, tree)

(* All combinations of per-dimension ranges, outer dimension major. Each
   box is a [(dim, (lo, sz))] list. *)
let cross cc =
  List.fold_left
    (fun boxes (d, ranges) ->
      List.concat_map (fun box -> List.map (fun r -> box @ [ (d, r) ]) ranges) boxes)
    [ [] ] cc

(* Tile sizes the box walker passes to [eval_box_tiled]: only dimensions
   the plan tiles (sequential cc dims with tile < extent) are split below
   the box level; everything else keeps its full extent so distributed and
   reduction dimensions are not re-decomposed inside a box. *)
let box_tiles (md : Md_hom.t) plan =
  let tiles = Array.copy md.sizes in
  List.iter (fun (dim, tile) -> tiles.(dim) <- tile) (Plan.tiled plan);
  tiles

let run_with_plan ?(chunks_per_worker = default_chunks_per_worker)
    ?(fastpath = true) ?(specialize = true) pool plan (md : Md_hom.t) env =
  if Array.exists (fun s -> s = 0) md.Md_hom.sizes then
    (* an empty dimension means zero jobs after decomposition, which would
       leave allocated outputs unwritten; parallel execution is pinned to
       the sequential semantics for empty iteration spaces (the plan is
       irrelevant — there is no work to distribute) *)
    Ok (run_seq md env)
  else begin
    Metrics.incr m_runs;
    let digest = if Profile.enabled () then Plan.digest plan else "" in
    Trace.with_span ~cat:"runtime" "exec.run"
      ~args:[ ("hom", md.Md_hom.hom_name) ]
      (fun () ->
        match
          match
            timed_phase ~digest ~path:"phase:fastpath" (fun () ->
                if fastpath then Fastpath.try_run pool plan md env else None)
          with
          | Some env -> Some env
          | None ->
            (* the specializer attributes its own compile/run phases *)
            if specialize then Specializer.try_run pool plan md env else None
        with
        | Some env -> Ok env
        | None ->
          let target = Pool.num_workers pool * chunks_per_worker in
          let cc, tree = decompose plan ~target in
          if cc = [] && tree = None then Ok (run_seq md env)
          else begin
            (* profiled walker attribution is coarse by nature: the box
               walker interprets per point, so measured time lands on the
               parallel plan levels driving the boxes (plus recombine);
               levels inside a box are not individually metered *)
            let profiling = Profile.enabled () in
            let walker_t0 = Clock.now_ns () in
            let dist_lvl, tree_lvl = parallel_level_indices plan in
            let box_path treepart =
              if treepart <> None && tree_lvl >= 0 then
                "L" ^ string_of_int tree_lvl
              else if dist_lvl >= 0 then "L" ^ string_of_int dist_lvl
              else if tree_lvl >= 0 then "L" ^ string_of_int tree_lvl
              else "boxes"
            in
            let profile_add path dt =
              Profile.add ~digest ~path dt;
              Profile.add ~digest ~path:"exec" dt
            in
            let env = Semantics.alloc_outputs md env in
            let rank = Md_hom.rank md in
            let tiles = box_tiles md plan in
            let cc_boxes = cross cc in
            let tree_ranges =
              match tree with Some (_, rs) -> rs | None -> []
            in
            let n_tree = max 1 (List.length tree_ranges) in
            List.iter
              (fun (o : Md_hom.output) ->
                (* one job per (cc box × tree range), cc-box major so job
                   group [g] owns partials [g*n_tree .. (g+1)*n_tree) *)
                let jobs =
                  List.concat_map
                    (fun box ->
                      match tree with
                      | None -> [ (box, None) ]
                      | Some (td, rs) ->
                        List.map (fun r -> (box, Some (td, r))) rs)
                    cc_boxes
                in
                let thunks =
                  Array.of_list
                    (List.mapi
                       (fun j (box, treepart) ->
                         fun () ->
                           let lo = Array.make rank 0 in
                           let sz = Array.copy md.sizes in
                           List.iter
                             (fun (d, (l, s)) ->
                               lo.(d) <- l;
                               sz.(d) <- s)
                             box;
                           (match treepart with
                           | Some (td, (l, s)) ->
                             lo.(td) <- l;
                             sz.(td) <- s
                           | None -> ());
                           Metrics.incr m_boxes;
                           let t0 = if profiling then Clock.now_ns () else 0L in
                           let r =
                             Trace.with_span ~cat:"runtime" "exec.box"
                               ~args:
                                 [ ("output", o.Md_hom.out_name);
                                   ("box", string_of_int j) ]
                               (fun () ->
                                 Semantics.eval_box_tiled md env o ~lo ~sz
                                   ~tile_sizes:tiles)
                           in
                           if profiling then
                             profile_add (box_path treepart)
                               (Clock.ns_to_s
                                  (Int64.sub (Clock.now_ns ()) t0));
                           r)
                       jobs)
                in
                let partials = Pool.run_in_parallel pool thunks in
                let box_lo box =
                  let lo = Array.make rank 0 in
                  List.iter (fun (d, (l, _)) -> lo.(d) <- l) box;
                  lo
                in
                match tree with
                | None ->
                  (* pure concatenation: every box lands in a disjoint slab
                     of the output — write in place, no combine fold *)
                  List.iteri
                    (fun j (box, _) ->
                      Semantics.write_output env md o ~lo:(box_lo box) partials.(j))
                    jobs
                | Some (td, _) ->
                  let op = md.combine_ops.(td) in
                  List.iteri
                    (fun g box ->
                      let t0 = if profiling then Clock.now_ns () else 0L in
                      let combined =
                        Trace.with_span ~cat:"runtime" "exec.recombine"
                          ~args:[ ("output", o.Md_hom.out_name) ]
                          (fun () ->
                            let acc = ref None in
                            for j = g * n_tree to ((g + 1) * n_tree) - 1 do
                              acc :=
                                match !acc with
                                | None -> Some partials.(j)
                                | Some a ->
                                  Some
                                    (Combine.combine_partials op ~dim:td a
                                       partials.(j))
                            done;
                            !acc)
                      in
                      if profiling then
                        profile_add
                          (if tree_lvl >= 0 then "L" ^ string_of_int tree_lvl
                           else "recombine")
                          (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0));
                      match combined with
                      | Some tensor ->
                        Semantics.write_output env md o ~lo:(box_lo box) tensor
                      | None -> ())
                    cc_boxes)
              md.outputs;
            if profiling then
              Profile.add ~digest ~path:"phase:walker"
                (Clock.ns_to_s (Int64.sub (Clock.now_ns ()) walker_t0));
            Ok env
          end)
  end

let run ?device ?chunks_per_worker ?fastpath ?specialize pool (md : Md_hom.t)
    sched env =
  if Array.exists (fun s -> s = 0) md.Md_hom.sizes then Ok (run_seq md env)
  else
    let dev = match device with Some d -> d | None -> host_device pool in
    match Plan_cache.build md dev sched with
    | Error _ as e -> e
    | Ok plan -> run_with_plan ?chunks_per_worker ?fastpath ?specialize pool plan md env
