(** Plan-driven parallel execution of scheduled MDH computations on the
    host, using the domain pool.

    The executor walks the same {!Mdh_lowering.Plan.t} the cost model,
    simulator, and code generators consume. The plan's [Distribute] level
    splits *all* parallel concatenation dimensions into boxes (not just
    one), the [Tree_reduce] level splits the parallelised reduction
    dimension with the leftover chunk budget, each box is evaluated
    independently with the plan's cache tiles honored inside the box
    ({!Mdh_core.Semantics.eval_box_tiled}), and partial results are
    recombined in index order with the dimension's combine operator —
    so associative (not necessarily commutative) operators yield the
    sequential result. Pure-concatenation decompositions skip the combine
    fold entirely and write each box in place.

    Dispatch order: when the computation structurally matches one of the
    flat-array kernels (dot/matvec/matmul, see {!Fastpath}), the
    interpreter is bypassed; otherwise any fp32 plan is compiled once to a
    flat-array closure and executed (see {!Specializer}); the generic box
    walker is the fallback for everything else. Both accelerated paths
    accumulate in double and are tolerance-equal to the interpreter —
    disable with [~fastpath:false ~specialize:false] where bit-identity
    with the sequential interpreter matters. *)

val run :
  ?device:Mdh_machine.Device.t ->
  ?chunks_per_worker:int ->
  ?fastpath:bool ->
  ?specialize:bool ->
  Pool.t ->
  Mdh_core.Md_hom.t ->
  Mdh_lowering.Schedule.t ->
  Mdh_tensor.Buffer.env ->
  (Mdh_tensor.Buffer.env, string) result
(** Fails iff the schedule is illegal for [device] (default: a single-layer
    description of the pool, one unit per worker — a schedule whose
    [used_layers] do not fit is rejected, not silently accepted; pass the
    device the schedule was tuned for to run it). [chunks_per_worker]
    (default 2) scales the chunk budget: the decomposition targets
    [workers * chunks_per_worker] boxes. [fastpath] (default true) allows
    kernel dispatch; [specialize] (default true) allows plan-compiled
    execution. When the plan exposes no parallel level, runs sequentially.
    A zero-extent dimension short-circuits to {!run_seq} — parallel
    execution of an empty iteration space is defined to be the sequential
    semantics. *)

val run_with_plan :
  ?chunks_per_worker:int ->
  ?fastpath:bool ->
  ?specialize:bool ->
  Pool.t ->
  Mdh_lowering.Plan.t ->
  Mdh_core.Md_hom.t ->
  Mdh_tensor.Buffer.env ->
  (Mdh_tensor.Buffer.env, string) result
(** Execute an already-built plan directly, bypassing schedule legality
    checks and the plan cache. This is how rewritten plans — which have no
    originating schedule — are run: {!run} is [Plan_cache.build] followed
    by this function. The plan must belong to [md] (same dimensions and
    extents); options as in {!run}. *)

val run_seq : Mdh_core.Md_hom.t -> Mdh_tensor.Buffer.env -> Mdh_tensor.Buffer.env
(** Sequential in-place execution (alias for [Semantics.exec]), the
    baseline the parallel path is checked against. *)

val host_device : Pool.t -> Mdh_machine.Device.t
(** The default execution device: one layer ([workers]) with one unit per
    pool worker. *)
