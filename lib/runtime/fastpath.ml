module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module Plan = Mdh_lowering.Plan
module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics

let m_hits = Metrics.counter "runtime.kernels.fastpath_hits"
let m_errors = Metrics.counter "runtime.kernels.fastpath_errors"

(* A kernel may only replace the interpreter when the combine operator is
   the builtin fp32 addition it hard-codes. *)
let is_fadd = function
  | Combine.Pw fn -> fn.Combine.builtin && String.equal fn.Combine.fn_name "add"
  | _ -> false

let is_cc = function Combine.Cc -> true | _ -> false

let idx name = Expr.Idx name

(* Multiplication commutes: a matcher must accept [x * y] written either
   way round, so offer both operand orders and let the pattern pick. *)
let mul_read_pairs = function
  | Expr.Binop (Expr.Mul, (Expr.Read _ as x), (Expr.Read _ as y)) ->
    [ (x, y); (y, x) ]
  | _ -> []

(* The input exists under the matched name with exactly the fp32 type and
   shape the kernel assumes, both as declared and as supplied. *)
let f32_input (md : Md_hom.t) env name shape =
  List.exists
    (fun (i : Md_hom.input) ->
      String.equal i.inp_name name
      && Scalar.equal_ty i.inp_ty Scalar.Fp32
      && Shape.equal i.inp_shape shape)
    md.inputs
  &&
  match Buffer.env_find_opt env name with
  | Some b -> Scalar.equal_ty (Buffer.ty b) Scalar.Fp32 && Shape.equal (Buffer.shape b) shape
  | None -> false

let f32_output (o : Md_hom.output) shape =
  Scalar.equal_ty o.out_ty Scalar.Fp32 && Shape.equal o.out_shape shape

let floats env name =
  let d = Buffer.data (Buffer.env_find env name) in
  Array.init (Dense.num_elements d) (fun i -> Scalar.to_float (Dense.get_linear d i))

(* Write a flat kernel result into the (freshly allocated) output buffer,
   rounding to single precision once per element — kernels accumulate in
   double, so fast-path results are tolerance-equal, not bit-equal, to the
   per-op-rounding interpreter. *)
let commit md env (o : Md_hom.output) result =
  let env = Semantics.alloc_outputs md env in
  let out = Buffer.data (Buffer.env_find env o.out_name) in
  Array.iteri (fun i v -> Dense.set_linear out i (Scalar.f32 v)) result;
  env

type matched = {
  kernel : string;
  compute : parallel:bool -> float array;
  output : Md_hom.output;
}

let match_dot pool (md : Md_hom.t) env =
  match (md.combine_ops, md.outputs) with
  | [| op |], [ o ]
    when is_fadd op && f32_output o [| 1 |]
         && Index_fn.apply o.out_access.fn [| 0 |] = [| 0 |] -> (
    let k = md.sizes.(0) in
    let matched =
      List.find_map
        (function
          | Expr.Read (x, [ xi ]), Expr.Read (y, [ yi ])
            when xi = idx md.dims.(0) && yi = idx md.dims.(0)
                 && f32_input md env x [| k |] && f32_input md env y [| k |] ->
            Some (x, y)
          | _ -> None)
        (mul_read_pairs o.value)
    in
    match matched with
    | Some (x, y) ->
      Some
        { kernel = "dot";
          output = o;
          compute =
            (fun ~parallel ->
              let xv = floats env x and yv = floats env y in
              [| (if parallel then Kernels.dot_par pool xv yv else Kernels.dot_seq xv yv) |]) }
    | None -> None)
  | _ -> None

let match_matvec pool (md : Md_hom.t) env =
  match (md.combine_ops, md.outputs) with
  | [| cc; pw |], [ o ]
    when is_cc cc && is_fadd pw
         && f32_output o [| md.sizes.(0) |]
         && o.out_access.exprs = [ idx md.dims.(0) ] -> (
    let m = md.sizes.(0) and k = md.sizes.(1) in
    let i = md.dims.(0) and kd = md.dims.(1) in
    let matched =
      List.find_map
        (function
          | Expr.Read (mat, [ mi; mk ]), Expr.Read (v, [ vk ])
            when mi = idx i && mk = idx kd && vk = idx kd
                 && f32_input md env mat [| m; k |] && f32_input md env v [| k |] ->
            Some (mat, v)
          | _ -> None)
        (mul_read_pairs o.value)
    in
    match matched with
    | Some (mat, v) ->
      Some
        { kernel = "matvec";
          output = o;
          compute =
            (fun ~parallel ->
              let mv = floats env mat and vv = floats env v in
              if parallel then Kernels.matvec_par pool ~m ~k mv vv
              else Kernels.matvec_seq ~m ~k mv vv) }
    | None -> None)
  | _ -> None

let match_matmul pool (md : Md_hom.t) env ~tile =
  match (md.combine_ops, md.outputs) with
  | [| cc0; cc1; pw |], [ o ]
    when is_cc cc0 && is_cc cc1 && is_fadd pw
         && f32_output o [| md.sizes.(0); md.sizes.(1) |]
         && o.out_access.exprs = [ idx md.dims.(0); idx md.dims.(1) ] -> (
    let m = md.sizes.(0) and n = md.sizes.(1) and k = md.sizes.(2) in
    let i = md.dims.(0) and j = md.dims.(1) and kd = md.dims.(2) in
    let matched =
      List.find_map
        (function
          | Expr.Read (a, [ ai; ak ]), Expr.Read (b, [ bk; bj ])
            when ai = idx i && ak = idx kd && bk = idx kd && bj = idx j
                 && f32_input md env a [| m; k |] && f32_input md env b [| k; n |] ->
            Some (a, b)
          | _ -> None)
        (mul_read_pairs o.value)
    in
    match matched with
    | Some (a, b) ->
      Some
        { kernel = "matmul";
          output = o;
          compute =
            (fun ~parallel ->
              let av = floats env a and bv = floats env b in
              if parallel then Kernels.matmul_par pool ~tile ~m ~n ~k av bv
              else Kernels.matmul_tiled ~tile ~m ~n ~k av bv) }
    | None -> None)
  | _ -> None

let try_run pool (plan : Plan.t) (md : Md_hom.t) env =
  if Array.exists (fun s -> s = 0) md.sizes then None
  else begin
    (* reuse the plan's innermost cache tile for the blocked matmul kernel *)
    let tile =
      let r = Array.length plan.Plan.tile_sizes in
      if r = 0 then 32 else max 4 (min 256 plan.Plan.tile_sizes.(r - 1))
    in
    let matched =
      match match_dot pool md env with
      | Some m -> Some m
      | None -> (
        match match_matvec pool md env with
        | Some m -> Some m
        | None -> match_matmul pool md env ~tile)
    in
    match matched with
    | None -> None
    | Some { kernel; compute; output } ->
      let parallel =
        Pool.num_workers pool > 1
        && (Plan.distributed plan <> [] || Plan.tree plan <> None)
      in
      (* a hit is a kernel that *completed*: a raising kernel (degraded
         pool, injected fault) is counted separately and the caller falls
         back to the generic walker instead of aborting the run *)
      match
        Trace.with_span ~cat:"runtime" "exec.fastpath"
          ~args:[ ("kernel", kernel); ("hom", md.Md_hom.hom_name) ]
          (fun () ->
            Mdh_fault.Fault.hit "kernel.run";
            commit md env output (compute ~parallel))
      with
      | env' ->
        Metrics.incr m_hits;
        Some env'
      | exception _ ->
        Metrics.incr m_errors;
        None
  end
