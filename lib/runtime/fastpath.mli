(** Dispatch from the plan to the unboxed flat-array kernels.

    When an MDH computation is structurally one of the linear-algebra
    workloads {!Kernels} hand-specialises — dot product, matrix-vector,
    matrix-matrix, all fp32 with builtin [+] reduction — the executor can
    skip the boxed interpreter entirely. The matchers are conservative:
    exact rank, combine operators, scalar-function shape, access patterns,
    types and extents must line up (multiplication operands in either
    order), otherwise the generic plan walker runs. Completed kernel runs
    count under [runtime.kernels.fastpath_hits]; a kernel that raises
    (degraded pool, injected fault) counts under
    [runtime.kernels.fastpath_errors] and the dispatch returns [None] so
    the caller falls back to the generic walker.

    Kernels accumulate in double precision and round to fp32 once per
    element, so fast-path results agree with the per-op-rounding
    interpreter to float tolerance, not bit-exactly; [Exec.run
    ~fastpath:false] disables dispatch where bit-identity matters. *)

val try_run :
  Pool.t ->
  Mdh_lowering.Plan.t ->
  Mdh_core.Md_hom.t ->
  Mdh_tensor.Buffer.env ->
  Mdh_tensor.Buffer.env option
(** [try_run pool plan md env] is [Some env'] iff a kernel matched and ran
    (parallel when the plan distributes work and the pool has more than one
    worker). [None] means no kernel applies — including when an input
    buffer is missing or mistyped, so the generic path can report the
    error. *)
