type t = {
  mutable domains : unit Domain.t array;
  mutex : Mutex.t;
  job_ready : Condition.t;
  job_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable stopped : bool;
  in_job : bool Atomic.t;
      (* nested submission from inside a job would deadlock the pool; detect
         it and fail loudly instead *)
}

let worker pool () =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mutex;
    while (not pool.stop) && (pool.generation = !seen || pool.job = None) do
      Condition.wait pool.job_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      continue := false
    end
    else begin
      seen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      (* [run_job] hands workers a wrapper that funnels exceptions into the
         job's error channel; the catch-all here only protects pool
         liveness (a dead worker domain would deadlock the barrier) *)
      (try job () with _ -> ());
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.job_done;
      Mutex.unlock pool.mutex
    end
  done

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    { domains = [||]; mutex = Mutex.create (); job_ready = Condition.create ();
      job_done = Condition.create (); job = None; generation = 0; active = 0;
      stop = false; stopped = false; in_job = Atomic.make false }
  in
  pool.domains <- Array.init n (fun _ -> Domain.spawn (worker pool));
  pool

let num_workers t = Array.length t.domains + 1

let run_job t job =
  if Array.length t.domains = 0 then job ()
  else if not (Atomic.compare_and_set t.in_job false true) then
    invalid_arg
      "Pool: nested parallel submission from inside a running job (would deadlock); \
       run nested work sequentially or use a second pool"
  else begin
    (* every executing domain (workers and the caller) routes its failure
       into this channel; the first one wins and is re-raised in the caller
       once all domains have finished *)
    let error = Atomic.make None in
    let wrapped () =
      try job ()
      with e -> ignore (Atomic.compare_and_set error None (Some e))
    in
    Mutex.lock t.mutex;
    t.job <- Some wrapped;
    t.generation <- t.generation + 1;
    t.active <- Array.length t.domains;
    Condition.broadcast t.job_ready;
    Mutex.unlock t.mutex;
    (* even if the caller's share raises (or an async exception lands), the
       pool must wait for its workers and reset its state — otherwise the
       stale [job]/[in_job] poison every later submission *)
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.mutex;
        while t.active > 0 do
          Condition.wait t.job_done t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex;
        Atomic.set t.in_job false)
      wrapped;
    match Atomic.get error with Some e -> raise e | None -> ()
  end

let parallel_for t ?grain ~lo ~hi body =
  if hi > lo then begin
    let n = hi - lo in
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 (n / (8 * num_workers t))
    in
    if n <= grain || num_workers t = 1 then
      for i = lo to hi - 1 do body i done
    else begin
      let next = Atomic.make lo in
      let error = Atomic.make None in
      let job () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next grain in
          if start >= hi then continue := false
          else begin
            let stop = min hi (start + grain) in
            try
              for i = start to stop - 1 do body i done
            with e ->
              ignore (Atomic.compare_and_set error None (Some e));
              continue := false
          end
        done
      in
      run_job t job;
      match Atomic.get error with Some e -> raise e | None -> ()
    end
  end

let parallel_reduce t ?grain ~lo ~hi ~map ~combine seed =
  if hi <= lo then seed
  else begin
    let n = hi - lo in
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 (n / (8 * num_workers t))
    in
    let n_chunks = (n + grain - 1) / grain in
    let partials = Array.make n_chunks None in
    parallel_for t ~grain:1 ~lo:0 ~hi:n_chunks (fun c ->
        let start = lo + (c * grain) in
        let stop = min hi (start + grain) in
        let acc = ref (map start) in
        for i = start + 1 to stop - 1 do
          acc := combine !acc (map i)
        done;
        partials.(c) <- Some !acc);
    Array.fold_left
      (fun acc p -> match p with Some v -> combine acc v | None -> acc)
      seed partials
  end

let scan_sequential f xs =
  let n = Array.length xs in
  let out = Array.make n xs.(0) in
  for i = 1 to n - 1 do
    out.(i) <- f out.(i - 1) xs.(i)
  done;
  out

let scan_inclusive t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if num_workers t = 1 then scan_sequential f xs
  else begin
    let workers = num_workers t in
    let n_blocks = min n (workers * 4) in
    let block_size = (n + n_blocks - 1) / n_blocks in
    let out = Array.make n xs.(0) in
    (* phase 1: scan each block independently *)
    parallel_for t ~grain:1 ~lo:0 ~hi:n_blocks (fun b ->
        let start = b * block_size in
        let stop = min n (start + block_size) in
        if start < stop then begin
          out.(start) <- xs.(start);
          for i = start + 1 to stop - 1 do
            out.(i) <- f out.(i - 1) xs.(i)
          done
        end);
    (* phase 2: exclusive scan of block totals, sequential (n_blocks is tiny) *)
    let carries = Array.make n_blocks None in
    let carry = ref None in
    for b = 0 to n_blocks - 1 do
      carries.(b) <- !carry;
      let start = b * block_size in
      let stop = min n (start + block_size) in
      if start < stop then begin
        let total = out.(stop - 1) in
        carry := Some (match !carry with None -> total | Some c -> f c total)
      end
    done;
    (* phase 3: apply carries in parallel *)
    parallel_for t ~grain:1 ~lo:0 ~hi:n_blocks (fun b ->
        match carries.(b) with
        | None -> ()
        | Some c ->
          let start = b * block_size in
          let stop = min n (start + block_size) in
          for i = start to stop - 1 do
            out.(i) <- f c out.(i)
          done);
    out
  end

let run_in_parallel t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ~grain:1 ~lo:0 ~hi:n (fun i -> results.(i) <- Some (thunks.(i) ()));
    Array.map Option.get results
  end

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.job_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains
  end

let with_pool ?num_domains f =
  let pool = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
