module Clock = Mdh_obs.Clock
module Metrics = Mdh_obs.Metrics
module Trace = Mdh_obs.Trace

type t = {
  mutable domains : unit Domain.t array;
  mutex : Mutex.t;
  job_ready : Condition.t;
  job_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable stopped : bool;
  in_job : bool Atomic.t;
      (* nested submission from inside a job would deadlock the pool; detect
         it and fail loudly instead *)
  busy_ns : int64 array;
      (* per-domain busy time: slot 0 is the submitting caller's share,
         slot i+1 is worker i. Single writer per slot. *)
  jobs : int Atomic.t;
  created_ns : int64;
  watchdog_s : float option;
      (* per-job barrier timeout; None waits forever (the original
         behaviour, and the default) *)
  is_degraded : bool Atomic.t;
      (* set when the watchdog expires: the pool may still be wedged
         behind a stuck worker, so every later job runs sequentially in
         the caller instead of aborting the run *)
  pub_mutex : Mutex.t;
  mutable pub_jobs : int;
  mutable pub_busy_s : float;
  mutable pub_capacity_s : float;
      (* totals already pushed onto the registry, so [publish_metrics] can
         run any number of times mid-flight and only add the delta *)
}

exception Watchdog_timeout

(* process-wide accumulators, published when pools shut down, so the
   front ends can report utilization after [with_pool] has closed *)
let m_jobs = Metrics.counter "runtime.pool.jobs"
let m_busy = Metrics.gauge "runtime.pool.busy_s"
let m_capacity = Metrics.gauge "runtime.pool.capacity_s"
let m_utilization = Metrics.gauge "runtime.pool.utilization"
let m_workers = Metrics.gauge "runtime.pool.workers"
let m_degraded = Metrics.counter "runtime.pool.degraded"

let worker pool i () =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mutex;
    while (not pool.stop) && (pool.generation = !seen || pool.job = None) do
      Condition.wait pool.job_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      continue := false
    end
    else begin
      seen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      (* [run_job] hands workers a wrapper that funnels exceptions into the
         job's error channel; the catch-all here only protects pool
         liveness (a dead worker domain would deadlock the barrier). The
         fault site fires before the job body, modelling a worker that
         dies or stalls at job pickup. *)
      let t0 = Clock.now_ns () in
      Trace.with_span ~cat:"runtime" "pool.worker_job" (fun () ->
          try
            Mdh_fault.Fault.hit "pool.job";
            job ()
          with _ -> ());
      pool.busy_ns.(i + 1) <-
        Int64.add pool.busy_ns.(i + 1) (Int64.sub (Clock.now_ns ()) t0);
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.job_done;
      Mutex.unlock pool.mutex
    end
  done

let create ?num_domains ?watchdog_s () =
  let n =
    match num_domains with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    { domains = [||]; mutex = Mutex.create (); job_ready = Condition.create ();
      job_done = Condition.create (); job = None; generation = 0; active = 0;
      stop = false; stopped = false; in_job = Atomic.make false;
      busy_ns = Array.make (n + 1) 0L; jobs = Atomic.make 0;
      created_ns = Clock.now_ns (); watchdog_s; is_degraded = Atomic.make false;
      pub_mutex = Mutex.create (); pub_jobs = 0; pub_busy_s = 0.0;
      pub_capacity_s = 0.0 }
  in
  pool.domains <- Array.init n (fun i -> Domain.spawn (worker pool i));
  pool

let num_workers t = Array.length t.domains + 1
let degraded t = Atomic.get t.is_degraded

let mark_degraded t why =
  if not (Atomic.exchange t.is_degraded true) then begin
    Metrics.incr m_degraded;
    Printf.eprintf
      "mdh: pool: %s; degrading to sequential execution for the rest of \
       this pool's lifetime\n%!"
      why
  end

(* barrier wait for the workers; caller holds [t.mutex]. With a watchdog,
   a polling wait (stdlib [Condition] has no timed wait) bounds how long
   a stuck or stalled worker can wedge the whole run; [false] = expired. *)
let wait_workers t =
  match t.watchdog_s with
  | None ->
    while t.active > 0 do
      Condition.wait t.job_done t.mutex
    done;
    true
  | Some limit ->
    let deadline =
      Int64.add (Clock.now_ns ()) (Int64.of_float (limit *. 1e9))
    in
    let alive = ref true in
    while t.active > 0 && !alive do
      if Int64.compare (Clock.now_ns ()) deadline > 0 then alive := false
      else begin
        Mutex.unlock t.mutex;
        Unix.sleepf 0.002;
        Mutex.lock t.mutex
      end
    done;
    !alive

(* time the caller's own share of a job into slot 0 (waiting at the
   barrier is excluded: only the execution of [share] counts as busy) *)
let timed_caller_share t share =
  let t0 = Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      t.busy_ns.(0) <- Int64.add t.busy_ns.(0) (Int64.sub (Clock.now_ns ()) t0))
    share

let run_job t job =
  Atomic.incr t.jobs;
  if Array.length t.domains = 0 || degraded t then timed_caller_share t job
  else if not (Atomic.compare_and_set t.in_job false true) then
    invalid_arg
      "Pool: nested parallel submission from inside a running job (would deadlock); \
       run nested work sequentially or use a second pool"
  else begin
    (* every executing domain (workers and the caller) routes its failure
       into this channel; the first one wins and is re-raised in the caller
       once all domains have finished *)
    let error = Atomic.make None in
    let wrapped () =
      try job ()
      with e -> ignore (Atomic.compare_and_set error None (Some e))
    in
    Trace.with_span ~cat:"runtime" "pool.job" (fun () ->
        Mutex.lock t.mutex;
        t.job <- Some wrapped;
        t.generation <- t.generation + 1;
        t.active <- Array.length t.domains;
        Condition.broadcast t.job_ready;
        Mutex.unlock t.mutex;
        (* even if the caller's share raises (or an async exception lands), the
           pool must wait for its workers and reset its state — otherwise the
           stale [job]/[in_job] poison every later submission *)
        let share_exn =
          match timed_caller_share t wrapped with
          | () -> None
          | exception e -> Some e
        in
        Mutex.lock t.mutex;
        let finished = wait_workers t in
        if finished then begin
          t.job <- None;
          Mutex.unlock t.mutex;
          Atomic.set t.in_job false
        end
        else begin
          Mutex.unlock t.mutex;
          (* the barrier was abandoned with a worker still out there, so
             the pool state ([job], [in_job], [active]) must stay frozen
             for it; the degraded flag routes every later job around the
             wedged machinery *)
          mark_degraded t
            (Printf.sprintf "worker watchdog expired after %.3gs"
               (Option.get t.watchdog_s));
          raise Watchdog_timeout
        end;
        match share_exn with Some e -> raise e | None -> ());
    match Atomic.get error with Some e -> raise e | None -> ()
  end

let parallel_for t ?grain ~lo ~hi body =
  if hi > lo then begin
    let n = hi - lo in
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 (n / (8 * num_workers t))
    in
    if n <= grain || num_workers t = 1 then
      for i = lo to hi - 1 do body i done
    else begin
      let next = Atomic.make lo in
      let error = Atomic.make None in
      let job () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next grain in
          if start >= hi then continue := false
          else begin
            let stop = min hi (start + grain) in
            try
              for i = start to stop - 1 do body i done
            with e ->
              ignore (Atomic.compare_and_set error None (Some e));
              continue := false
          end
        done
      in
      run_job t job;
      match Atomic.get error with Some e -> raise e | None -> ()
    end
  end

let parallel_reduce t ?grain ~lo ~hi ~map ~combine seed =
  if hi <= lo then seed
  else begin
    let n = hi - lo in
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 (n / (8 * num_workers t))
    in
    let n_chunks = (n + grain - 1) / grain in
    let partials = Array.make n_chunks None in
    parallel_for t ~grain:1 ~lo:0 ~hi:n_chunks (fun c ->
        let start = lo + (c * grain) in
        let stop = min hi (start + grain) in
        let acc = ref (map start) in
        for i = start + 1 to stop - 1 do
          acc := combine !acc (map i)
        done;
        partials.(c) <- Some !acc);
    Array.fold_left
      (fun acc p -> match p with Some v -> combine acc v | None -> acc)
      seed partials
  end

let scan_sequential f xs =
  let n = Array.length xs in
  let out = Array.make n xs.(0) in
  for i = 1 to n - 1 do
    out.(i) <- f out.(i - 1) xs.(i)
  done;
  out

let scan_inclusive t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if num_workers t = 1 then scan_sequential f xs
  else begin
    let workers = num_workers t in
    let n_blocks = min n (workers * 4) in
    let block_size = (n + n_blocks - 1) / n_blocks in
    let out = Array.make n xs.(0) in
    (* phase 1: scan each block independently *)
    parallel_for t ~grain:1 ~lo:0 ~hi:n_blocks (fun b ->
        let start = b * block_size in
        let stop = min n (start + block_size) in
        if start < stop then begin
          out.(start) <- xs.(start);
          for i = start + 1 to stop - 1 do
            out.(i) <- f out.(i - 1) xs.(i)
          done
        end);
    (* phase 2: exclusive scan of block totals, sequential (n_blocks is tiny) *)
    let carries = Array.make n_blocks None in
    let carry = ref None in
    for b = 0 to n_blocks - 1 do
      carries.(b) <- !carry;
      let start = b * block_size in
      let stop = min n (start + block_size) in
      if start < stop then begin
        let total = out.(stop - 1) in
        carry := Some (match !carry with None -> total | Some c -> f c total)
      end
    done;
    (* phase 3: apply carries in parallel *)
    parallel_for t ~grain:1 ~lo:0 ~hi:n_blocks (fun b ->
        match carries.(b) with
        | None -> ()
        | Some c ->
          let start = b * block_size in
          let stop = min n (start + block_size) in
          for i = start to stop - 1 do
            out.(i) <- f c out.(i)
          done);
    out
  end

let run_in_parallel t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ~grain:1 ~lo:0 ~hi:n (fun i -> results.(i) <- Some (thunks.(i) ()));
    Array.map Option.get results
  end

type stats = {
  workers : int;
  jobs_run : int;
  busy_s : float array;
  wall_s : float;
  utilization : float;
}

let stats t =
  let wall_s = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t.created_ns) in
  let busy_s = Array.map Clock.ns_to_s t.busy_ns in
  let n_domains = Array.length t.domains in
  let utilization =
    (* fraction of the worker domains' lifetime spent running jobs; the
       caller's share (slot 0) is excluded because the caller is busy with
       its own sequential work between jobs *)
    if n_domains = 0 || wall_s <= 0.0 then 0.0
    else
      Array.fold_left ( +. ) 0.0 (Array.sub busy_s 1 n_domains)
      /. (wall_s *. float_of_int n_domains)
  in
  { workers = num_workers t; jobs_run = Atomic.get t.jobs; busy_s; wall_s;
    utilization }

let publish_metrics t =
  (* delta-publish so a live pool can be scraped any number of times
     before shutdown without double-counting its history *)
  Mutex.lock t.pub_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.pub_mutex)
    (fun () ->
      let s = stats t in
      let n_domains = Array.length t.domains in
      Metrics.add m_jobs (s.jobs_run - t.pub_jobs);
      t.pub_jobs <- s.jobs_run;
      Metrics.set m_workers (float_of_int s.workers);
      if n_domains > 0 then begin
        (* busy and capacity cover the worker domains only, mirroring
           [stats]: cumulative across every pool this process has retired *)
        let busy = Array.fold_left ( +. ) 0.0 (Array.sub s.busy_s 1 n_domains) in
        let capacity_now = s.wall_s *. float_of_int n_domains in
        Metrics.add_gauge m_busy (busy -. t.pub_busy_s);
        Metrics.add_gauge m_capacity (capacity_now -. t.pub_capacity_s);
        t.pub_busy_s <- busy;
        t.pub_capacity_s <- capacity_now;
        let capacity = Metrics.gauge_value m_capacity in
        if capacity > 0.0 then
          Metrics.set m_utilization (Metrics.gauge_value m_busy /. capacity)
      end)

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.job_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    publish_metrics t
  end

let with_pool ?num_domains ?watchdog_s f =
  let pool = create ?num_domains ?watchdog_s () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
