(** A reusable pool of OCaml 5 domains with chunked work distribution.

    OCaml 5.1 ships multicore support but no task library in the stdlib, so
    this module provides the parallel substrate the reproduction executes
    lowered plans on: a fixed set of worker domains that repeatedly pick up
    jobs; each job drains a shared atomic chunk counter, giving dynamic load
    balancing without work stealing. *)

type t

exception Watchdog_timeout
(** Raised in the caller when a job's barrier wait exceeds the pool's
    watchdog budget; the pool is degraded (see {!degraded}) instead of
    left wedged. *)

val create : ?num_domains:int -> ?watchdog_s:float -> unit -> t
(** [num_domains] counts workers in addition to the caller; defaults to
    [Domain.recommended_domain_count () - 1], at least 0. [watchdog_s]
    bounds how long any single job may keep the caller at the barrier
    after the caller's own share is done (default: unbounded) — see
    {!run_job}. *)

val num_workers : t -> int
(** Total parallelism including the calling domain (>= 1). *)

val degraded : t -> bool
(** True once a watchdog expiry has flipped the pool to graceful
    degradation: every later job runs sequentially in the caller (the
    worker set may still be wedged behind a stuck job). Recorded on the
    registry as [runtime.pool.degraded]. *)

val run_job : t -> (unit -> unit) -> unit
(** Run one job on every domain of the pool at once (the caller included):
    the building block of the chunked primitives below, exposed for jobs
    that do their own work distribution (e.g. draining a shared atomic
    counter). Blocks until every domain has finished. If any domain's run
    of the job raises, the first exception is re-raised in the caller after
    the barrier — never swallowed — and the pool remains usable. Nested
    submission from inside a job raises [Invalid_argument].

    With a watchdog configured, a barrier wait longer than [watchdog_s]
    raises {!Watchdog_timeout} and permanently degrades the pool to
    sequential execution rather than hanging the run; work the stuck
    worker had claimed may be incomplete, so callers needing the job's
    effects must re-run it (sequentially, the pool now guarantees that). *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** Apply the body to every index in [\[lo, hi)], distributing chunks of
    [grain] (default: range / (8 x workers), at least 1) across the pool.
    The body must be safe to run concurrently on distinct indices.
    Exceptions in the body are re-raised in the caller (first one wins).
    Nested parallel submission from inside a body is detected and raises
    [Invalid_argument] (it would deadlock the fixed worker set). *)

val parallel_reduce :
  t -> ?grain:int -> lo:int -> hi:int -> map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) -> 'a -> 'a
(** Tree-style reduction: map each index, combine within chunks left to
    right, then combine chunk partials in index order — so an associative
    (not necessarily commutative) [combine] gives the sequential result.
    The final fold starts from the given seed. *)

val scan_inclusive : t -> ('a -> 'a -> 'a) -> 'a array -> 'a array
(** Two-phase parallel inclusive prefix scan (associative operator):
    per-block scans, a sequential block-total scan, then a parallel carry
    pass. *)

val run_in_parallel : t -> (unit -> 'a) array -> 'a array
(** Execute independent thunks across the pool, returning their results in
    order. *)

type stats = {
  workers : int;        (** total parallelism, caller included *)
  jobs_run : int;       (** jobs submitted through {!run_job} *)
  busy_s : float array; (** seconds spent executing jobs: slot 0 is the
                            caller's share, slot [i+1] worker [i] *)
  wall_s : float;       (** seconds since the pool was created *)
  utilization : float;  (** worker busy time / (wall x worker domains);
                            0 for a pool with no worker domains *)
}

val stats : t -> stats
(** Instantaneous observability snapshot; cheap and safe while jobs run. *)

val publish_metrics : t -> unit
(** Push the pool's utilization onto the [Mdh_obs.Metrics] registry
    ([runtime.pool.jobs], [runtime.pool.busy_s], [runtime.pool.capacity_s],
    [runtime.pool.utilization], [runtime.pool.workers]) without waiting
    for {!shutdown}: a long-running process can be scraped mid-flight.
    Publishes only the delta since the previous call on this pool, so
    repeated snapshots (and the final one at shutdown) never double-count.
    Safe to call concurrently and while jobs are running. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards.
    Idempotent. Publishes the pool's lifetime totals onto the
    [Mdh_obs.Metrics] registry ([runtime.pool.jobs], [runtime.pool.busy_s],
    [runtime.pool.capacity_s], [runtime.pool.utilization],
    [runtime.pool.workers]), accumulating across pools. Blocks on a
    degraded pool until its stuck worker finishes its current job. *)

val with_pool : ?num_domains:int -> ?watchdog_s:float -> (t -> 'a) -> 'a
(** Create, run, and always shut down. *)
