module Md_hom = Mdh_core.Md_hom
module Semantics = Mdh_core.Semantics
module Buffer = Mdh_tensor.Buffer
module Dense = Mdh_tensor.Dense
module Scalar = Mdh_tensor.Scalar
module Shape = Mdh_tensor.Shape
module Index_fn = Mdh_tensor.Index_fn
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module Plan = Mdh_lowering.Plan
module Memo = Mdh_support.Memo
module Trace = Mdh_obs.Trace
module Metrics = Mdh_obs.Metrics
module Clock = Mdh_obs.Clock
module Profile = Mdh_obs.Profile

let m_hits = Metrics.counter "runtime.specializer.hits"
let m_misses = Metrics.counter "runtime.specializer.misses"
let m_compiles = Metrics.counter "runtime.specializer.compiles"

(* per-phase latency: compilation (cache misses only) vs execution of the
   compiled closure — hit/miss counters alone leave compiled-plan time
   invisible in traces *)
let h_compile = Metrics.histogram "runtime.specializer.compile_s"
let h_run = Metrics.histogram "runtime.specializer.run_s"

exception Unsupported of string

let unsup fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* --- per-job evaluation state ---------------------------------------- *)

(* Compilation happens once per plan digest; instantiation happens once per
   job. A compiled expression is a two-stage closure: applied to a [state]
   it resolves buffers and local-variable cells, returning the per-point
   thunk the loop nest calls — no boxing, no environment lookups, no index
   tensors on the hot path. *)
type state = {
  bufs : float array array;  (** one flat array per input, in [md.inputs] order *)
  point : int array;  (** current iteration point, length = rank *)
  base : int array;  (** cache-tile block origins, one slot per Tile level *)
  fcells : float array;  (** [Let]-bound float locals *)
  icells : int array;  (** [Let]-bound integer locals *)
  bcells : bool array;  (** [Let]-bound boolean locals *)
}

type 'a inst = state -> unit -> 'a

type builder = BF of float inst | BI of int inst | BB of bool inst

type slots = { mutable nf : int; mutable ni : int; mutable nb : int }

type binding = Slot_f of int | Slot_i of int | Slot_b of int

(* --- expression compilation ------------------------------------------ *)

let row_major_strides shape =
  let r = Array.length shape in
  let s = Array.make r 1 in
  for d = r - 2 downto 0 do
    s.(d) <- s.(d + 1) * shape.(d + 1)
  done;
  s

let lift_f = function
  | BF f -> f
  | BI f -> fun st -> let g = f st in fun () -> float_of_int (g ())
  | BB _ -> unsup "boolean used where a number is required"

let as_i = function BI f -> f | _ -> unsup "non-integer index expression"
let as_b = function BB f -> f | _ -> unsup "non-boolean condition"

(* Run [pre] (a cell store) before the body thunk, preserving its kind. *)
let with_pre pre = function
  | BF f -> BF (fun st -> let p = pre st and g = f st in fun () -> p (); g ())
  | BI f -> BI (fun st -> let p = pre st and g = f st in fun () -> p (); g ())
  | BB f -> BB (fun st -> let p = pre st and g = f st in fun () -> p (); g ())

let compile_expr (md : Md_hom.t) e =
  let dim_pos name =
    let rec go d =
      if d >= Array.length md.dims then unsup "unknown iteration variable %s" name
      else if String.equal md.dims.(d) name then d
      else go (d + 1)
    in
    go 0
  in
  let input_pos name =
    let rec go pos = function
      | [] -> None
      | (i : Md_hom.input) :: rest ->
        if String.equal i.inp_name name then Some (pos, i) else go (pos + 1) rest
    in
    go 0 md.inputs
  in
  let slots = { nf = 0; ni = 0; nb = 0 } in
  let rec comp env e =
    match e with
    | Expr.Const (Scalar.F32 x) ->
      let x = Scalar.round_f32 x in
      BF (fun _ () -> x)
    | Expr.Const (Scalar.F64 x) -> BF (fun _ () -> x)
    | Expr.Const (Scalar.I32 x) ->
      let x = Int32.to_int x in
      BI (fun _ () -> x)
    | Expr.Const (Scalar.I64 x) ->
      let x = Int64.to_int x in
      BI (fun _ () -> x)
    | Expr.Const (Scalar.B x) -> BB (fun _ () -> x)
    | Expr.Const (Scalar.C _ | Scalar.R _) -> unsup "char/record constant"
    | Expr.Idx name ->
      let d = dim_pos name in
      BI (fun st () -> st.point.(d))
    | Expr.Var name -> (
      match List.assoc_opt name env with
      | Some (Slot_f s) -> BF (fun st () -> st.fcells.(s))
      | Some (Slot_i s) -> BI (fun st () -> st.icells.(s))
      | Some (Slot_b s) -> BB (fun st () -> st.bcells.(s))
      | None -> unsup "unbound local %s" name)
    | Expr.Read (buf, idxs) ->
      let pos, addr = read_addr env buf idxs in
      BF
        (fun st ->
          let a = addr st and data = st.bufs.(pos) in
          fun () -> data.(a ()))
    | Expr.Binop (op, a, b) -> comp_binop env op a b
    | Expr.Unop (Expr.Neg, a) -> (
      match comp env a with
      | BF f -> BF (fun st -> let g = f st in fun () -> -.g ())
      | BI f -> BI (fun st -> let g = f st in fun () -> -g ())
      | BB _ -> unsup "negation of a boolean")
    | Expr.Unop (Expr.Not, a) ->
      let f = as_b (comp env a) in
      BB (fun st -> let g = f st in fun () -> not (g ()))
    | Expr.If (c, t, f) -> (
      let fc = as_b (comp env c) in
      match (comp env t, comp env f) with
      | BF ft, BF ff ->
        BF
          (fun st ->
            let c = fc st and t = ft st and f = ff st in
            fun () -> if c () then t () else f ())
      | BI ft, BI ff ->
        BI
          (fun st ->
            let c = fc st and t = ft st and f = ff st in
            fun () -> if c () then t () else f ())
      | BB ft, BB ff ->
        BB
          (fun st ->
            let c = fc st and t = ft st and f = ff st in
            fun () -> if c () then t () else f ())
      | _ -> unsup "if branches of different types")
    | Expr.Let (name, v, body) -> (
      match comp env v with
      | BF vf ->
        let s = slots.nf in
        slots.nf <- s + 1;
        with_pre
          (fun st -> let g = vf st in fun () -> st.fcells.(s) <- g ())
          (comp ((name, Slot_f s) :: env) body)
      | BI vf ->
        let s = slots.ni in
        slots.ni <- s + 1;
        with_pre
          (fun st -> let g = vf st in fun () -> st.icells.(s) <- g ())
          (comp ((name, Slot_i s) :: env) body)
      | BB vf ->
        let s = slots.nb in
        slots.nb <- s + 1;
        with_pre
          (fun st -> let g = vf st in fun () -> st.bcells.(s) <- g ())
          (comp ((name, Slot_b s) :: env) body))
    | Expr.Field _ | Expr.MkRecord _ -> unsup "record expression"
    | Expr.Cast (Scalar.Fp32, a) -> (
      match comp env a with
      | BF f -> BF (fun st -> let g = f st in fun () -> Scalar.round_f32 (g ()))
      | BI f -> BF (fun st -> let g = f st in fun () -> float_of_int (g ()))
      | BB _ -> unsup "cast of a boolean")
    | Expr.Cast ((Scalar.Int32 | Scalar.Int64), a) -> (
      match comp env a with
      | BI f -> BI f
      | BF f -> BI (fun st -> let g = f st in fun () -> int_of_float (g ()))
      | BB _ -> unsup "cast of a boolean")
    | Expr.Cast _ -> unsup "unsupported cast target"
  (* a read as (input position, linearized-address thunk): the address
     thunks return immediate ints, so fusing the float load into the
     consumer avoids a closure boundary (and its boxed float) per read *)
  and read_addr env buf idxs =
    match input_pos buf with
    | None -> unsup "read of non-input buffer %s" buf
    | Some (_, i) when not (Scalar.equal_ty i.inp_ty Scalar.Fp32) ->
      unsup "non-fp32 input %s" buf
    | Some (pos, i) ->
      if List.length idxs <> Array.length i.inp_shape then
        unsup "rank mismatch reading %s" buf;
      let str = row_major_strides i.inp_shape in
      let ib = List.map (fun ix -> as_i (comp env ix)) idxs in
      let addr =
        match ib with
        | [ i0 ] -> i0
        | [ i0; i1 ] ->
          let s0 = str.(0) in
          fun st ->
            let f0 = i0 st and f1 = i1 st in
            fun () -> (f0 () * s0) + f1 ()
        | _ ->
          let fs = Array.of_list ib in
          fun st ->
            let gs = Array.map (fun f -> f st) fs in
            fun () ->
              let lin = ref 0 in
              Array.iteri (fun d g -> lin := !lin + (str.(d) * g ())) gs;
              !lin
      in
      (pos, addr)
  and comp_binop env op a b =
    (* the hot shape of every catalogue reduction is [read ⊛ read]: fuse
       both loads into one thunk so the per-point cost is a single closure
       call instead of three *)
    match (op, a, b) with
    | ( (Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max),
        Expr.Read (n1, i1),
        Expr.Read (n2, i2) ) ->
      let p1, a1 = read_addr env n1 i1 in
      let p2, a2 = read_addr env n2 i2 in
      let fuse mk =
        BF
          (fun st ->
            let f1 = a1 st and d1 = st.bufs.(p1) in
            let f2 = a2 st and d2 = st.bufs.(p2) in
            mk d1 f1 d2 f2)
      in
      (match op with
      | Expr.Add -> fuse (fun d1 f1 d2 f2 () -> d1.(f1 ()) +. d2.(f2 ()))
      | Expr.Sub -> fuse (fun d1 f1 d2 f2 () -> d1.(f1 ()) -. d2.(f2 ()))
      | Expr.Mul -> fuse (fun d1 f1 d2 f2 () -> d1.(f1 ()) *. d2.(f2 ()))
      | Expr.Div -> fuse (fun d1 f1 d2 f2 () -> d1.(f1 ()) /. d2.(f2 ()))
      | Expr.Min -> fuse (fun d1 f1 d2 f2 () -> Float.min d1.(f1 ()) d2.(f2 ()))
      | Expr.Max -> fuse (fun d1 f1 d2 f2 () -> Float.max d1.(f1 ()) d2.(f2 ()))
      | _ -> assert false)
    | _ -> comp_binop_generic env op a b
  and comp_binop_generic env op a b =
    let ba = comp env a and bb = comp env b in
    let ff mk = BF (let fa = lift_f ba and fb = lift_f bb in
                    fun st -> mk (fa st) (fb st)) in
    match op with
    | Expr.And ->
      let fa = as_b ba and fb = as_b bb in
      BB (fun st -> let a = fa st and b = fb st in fun () -> a () && b ())
    | Expr.Or ->
      let fa = as_b ba and fb = as_b bb in
      BB (fun st -> let a = fa st and b = fb st in fun () -> a () || b ())
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max -> (
      match (ba, bb) with
      | BI fa, BI fb ->
        let mk =
          match op with
          | Expr.Add -> ( + )
          | Expr.Sub -> ( - )
          | Expr.Mul -> ( * )
          | Expr.Div -> ( / )
          | Expr.Min -> min
          | Expr.Max -> max
          | _ -> assert false
        in
        BI (fun st -> let a = fa st and b = fb st in fun () -> mk (a ()) (b ()))
      | _ ->
        let mk =
          match op with
          | Expr.Add -> ( +. )
          | Expr.Sub -> ( -. )
          | Expr.Mul -> ( *. )
          | Expr.Div -> ( /. )
          | Expr.Min -> Float.min
          | Expr.Max -> Float.max
          | _ -> assert false
        in
        ff (fun a b () -> mk (a ()) (b ())))
    | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> (
      match (ba, bb) with
      | BI fa, BI fb ->
        let mk : int -> int -> bool =
          match op with
          | Expr.Eq -> ( = )
          | Expr.Ne -> ( <> )
          | Expr.Lt -> ( < )
          | Expr.Le -> ( <= )
          | Expr.Gt -> ( > )
          | Expr.Ge -> ( >= )
          | _ -> assert false
        in
        BB (fun st -> let a = fa st and b = fb st in fun () -> mk (a ()) (b ()))
      | _ ->
        let fa = lift_f ba and fb = lift_f bb in
        let mk : float -> float -> bool =
          match op with
          | Expr.Eq -> ( = )
          | Expr.Ne -> ( <> )
          | Expr.Lt -> ( < )
          | Expr.Le -> ( <= )
          | Expr.Gt -> ( > )
          | Expr.Ge -> ( >= )
          | _ -> assert false
        in
        BB (fun st -> let a = fa st and b = fb st in fun () -> mk (a ()) (b ())))
  in
  match comp [] e with
  | BF f -> (f, slots)
  | BI f ->
    ((fun st -> let g = f st in fun () -> float_of_int (g ())), slots)
  | BB _ -> unsup "output value is boolean"

(* --- loop-nest compilation ------------------------------------------- *)

type nest_step =
  | S_loop of { dim : int; extent : int }
  | S_tile_outer of { tile : int; extent : int; slot : int }
  | S_tile_inner of { dim : int; tile : int; extent : int; slot : int }

type out_plan = {
  out : Md_hom.output;
  build_point : state -> unit -> float;
  direct_write : bool;  (** out_view is the identity on the result shape *)
}

type compiled = {
  digest : string;  (** [Plan.digest] of the source plan, the profile key *)
  rank : int;
  nest : nest_step array;  (** the plan's sequential levels, outermost first *)
  nest_levels : int array;
      (** plan-level index ([Plan.levels] position) of each nest step *)
  dist : (int * int) array;  (** distributed (dim, extent), outer first *)
  dist_level : int;  (** plan-level index of the [Distribute] level, or -1 *)
  tree : (int * int) option;  (** tree-reduce (dim, extent) *)
  tree_level : int;  (** plan-level index of the [Tree_reduce] level, or -1 *)
  acc_shape : int array;  (** [Md_hom.result_shape] *)
  acc_size : int;
  astride : int array;  (** accumulator stride per iteration dim; 0 on pw dims *)
  pw : (float * (float -> float -> float)) option;
      (** identity and combiner of the (single) pw operator *)
  scans : (int * (float -> float -> float)) array;
      (** ps dims with their combiners, innermost first *)
  scan_levels : int array;
      (** plan-level index of each [scans] entry's [Scan] level, or -1 *)
  n_base : int;
  slots : slots;
  outs : out_plan list;
}

let builtin_double_op (fn : Combine.custom_fn) =
  if not fn.Combine.builtin then None
  else
    match fn.Combine.fn_name with
    | "add" -> Some (0.0, ( +. ))
    | "mul" -> Some (1.0, ( *. ))
    | "min" -> Some (infinity, Float.min)
    | "max" -> Some (neg_infinity, Float.max)
    | _ -> None

let compile (plan : Plan.t) (md : Md_hom.t) =
  try
    let rank = Md_hom.rank md in
    (* one pw operator, builtin: the accumulator folds every pw dimension
       with the same double-precision combiner (the reference executor
       enforces the same single-operator restriction) *)
    let pw =
      let ops =
        List.filter_map
          (fun d ->
            match md.combine_ops.(d) with
            | Combine.Pw fn -> Some fn
            | _ -> None)
          (List.init rank Fun.id)
      in
      match ops with
      | [] -> None
      | fn :: rest ->
        if List.exists (fun f -> not (String.equal f.Combine.fn_name fn.Combine.fn_name)) rest
        then unsup "multiple distinct pw operators";
        (match builtin_double_op fn with
        | Some p -> Some p
        | None -> unsup "non-builtin pw operator %s" fn.Combine.fn_name)
    in
    let scans =
      Array.of_list
        (List.filter_map
           (fun d ->
             (* innermost first: iterate dims from last to first *)
             let d = rank - 1 - d in
             match md.combine_ops.(d) with
             | Combine.Ps fn -> (
               match builtin_double_op fn with
               | Some (_, op) -> Some (d, op)
               | None -> unsup "non-builtin ps operator %s" fn.Combine.fn_name)
             | _ -> None)
           (List.init rank Fun.id))
    in
    let acc_shape = Md_hom.result_shape md in
    let acc_size = Shape.num_elements acc_shape in
    let astride =
      let s = row_major_strides acc_shape in
      Array.mapi
        (fun d s -> if Combine.collapses md.combine_ops.(d) then 0 else s)
        s
    in
    (* loop nest from the plan's sequential levels, in level order;
       distributed and tree dims are driven by the executor above it.
       Each step keeps its position in [plan.levels] so the profiler can
       address measured time back to the plan tree. *)
    let tiles = Hashtbl.create 4 in
    let n_base = ref 0 in
    let nest =
      List.filter_map
        (fun (lvl_idx, level) ->
          match level with
          | Plan.Tile { dim; tile; extent } ->
            let slot = !n_base in
            incr n_base;
            Hashtbl.replace tiles dim (tile, extent, slot);
            Some (lvl_idx, S_tile_outer { tile; extent; slot })
          | Plan.Seq { dim; extent } -> (
            match Hashtbl.find_opt tiles dim with
            | Some (tile, full, slot) ->
              Some (lvl_idx, S_tile_inner { dim; tile; extent = full; slot })
            | None -> Some (lvl_idx, S_loop { dim; extent }))
          | Plan.Accumulate { dim; extent; _ } | Plan.Scan { dim; extent; _ } ->
            Some (lvl_idx, S_loop { dim; extent })
          | Plan.Distribute _ | Plan.Tree_reduce _ -> None)
        (List.mapi (fun i l -> (i, l)) plan.Plan.levels)
    in
    let level_index pred =
      let rec go i = function
        | [] -> -1
        | l :: rest -> if pred l then i else go (i + 1) rest
      in
      go 0 plan.Plan.levels
    in
    let dist_level =
      level_index (function Plan.Distribute _ -> true | _ -> false)
    in
    let tree_level =
      level_index (function Plan.Tree_reduce _ -> true | _ -> false)
    in
    let dist = Array.of_list (Plan.distributed plan) in
    let tree = Option.map (fun (d, extent, _) -> (d, extent)) (Plan.tree plan) in
    let slots = { nf = 0; ni = 0; nb = 0 } in
    let outs =
      List.map
        (fun (o : Md_hom.output) ->
          if not (Scalar.equal_ty o.out_ty Scalar.Fp32) then
            unsup "non-fp32 output %s" o.out_name;
          let build_point, s = compile_expr md o.value in
          slots.nf <- max slots.nf s.nf;
          slots.ni <- max slots.ni s.ni;
          slots.nb <- max slots.nb s.nb;
          let direct_write =
            Shape.equal o.out_shape acc_shape
            &&
            match o.out_access.fn with
            | Index_fn.Affine { arity; coords } ->
              arity = Array.length acc_shape
              && Array.length coords = arity
              && Array.for_all Fun.id
                   (Array.mapi
                      (fun j (c : Index_fn.coord) ->
                        c.offset = 0
                        && Array.for_all Fun.id
                             (Array.mapi
                                (fun d x -> x = if d = j then 1 else 0)
                                c.coeffs))
                      coords)
            | Index_fn.Opaque _ -> false
          in
          { out = o; build_point; direct_write })
        md.outputs
    in
    let scan_levels =
      Array.map
        (fun (d, _) ->
          level_index (function
            | Plan.Scan { dim; _ } -> dim = d
            | _ -> false))
        scans
    in
    Ok
      { digest = Plan.digest plan; rank;
        nest = Array.of_list (List.map snd nest);
        nest_levels = Array.of_list (List.map fst nest);
        dist; dist_level; tree; tree_level; acc_shape; acc_size;
        astride; pw; scans; scan_levels; n_base = !n_base; slots; outs }
  with Unsupported msg -> Error msg

(* --- execution -------------------------------------------------------- *)

let mk_state c bufs =
  { bufs;
    point = Array.make (max 1 c.rank) 0;
    base = Array.make (max 1 c.n_base) 0;
    fcells = Array.make (max 1 c.slots.nf) 0.0;
    icells = Array.make (max 1 c.slots.ni) 0;
    bcells = Array.make (max 1 c.slots.nb) false }

(* Run the sequential nest with the state's current outer coordinates,
   accumulating into [acc]. *)
let run_nest c st pf acc =
  let nest = c.nest in
  let n = Array.length nest in
  let astride = c.astride and rank = c.rank in
  let point = st.point in
  let body =
    match c.pw with
    | Some (_, op) ->
      fun () ->
        let ai = ref 0 in
        for d = 0 to rank - 1 do
          ai := !ai + (astride.(d) * point.(d))
        done;
        acc.(!ai) <- op acc.(!ai) (pf ())
    | None ->
      fun () ->
        let ai = ref 0 in
        for d = 0 to rank - 1 do
          ai := !ai + (astride.(d) * point.(d))
        done;
        acc.(!ai) <- pf ()
  in
  let rec go l =
    if l = n then body ()
    else
      match nest.(l) with
      | S_loop { dim; extent } ->
        for x = 0 to extent - 1 do
          point.(dim) <- x;
          go (l + 1)
        done
      | S_tile_outer { tile; extent; slot } ->
        let b = ref 0 in
        while !b < extent do
          st.base.(slot) <- !b;
          go (l + 1);
          b := !b + tile
        done
      | S_tile_inner { dim; tile; extent; slot } ->
        let b = st.base.(slot) in
        let hi = min (b + tile) extent in
        for x = b to hi - 1 do
          point.(dim) <- x;
          go (l + 1)
        done
  in
  go 0

(* --- per-level profiling ---------------------------------------------- *)

(* [run_nest] with a clock around every level entry: [tot.(l)] accumulates
   the inclusive wall time of nest step [l] (deeper levels included), so
   self time telescopes exactly — self(l) = tot(l) - tot(l+1), and slot
   [n] is the point computation itself. Clock reads at a child's boundary
   land in the parent's self time; the totals still telescope, which is
   what keeps the per-level sum equal to the in-nest time. Only used when
   profiling is on: the overhead (two clock reads per level entry, the
   innermost per point) is the documented price of a profiled run. *)
let run_nest_timed c st pf acc tot cnt =
  let nest = c.nest in
  let n = Array.length nest in
  let astride = c.astride and rank = c.rank in
  let point = st.point in
  let body =
    match c.pw with
    | Some (_, op) ->
      fun () ->
        let ai = ref 0 in
        for d = 0 to rank - 1 do
          ai := !ai + (astride.(d) * point.(d))
        done;
        acc.(!ai) <- op acc.(!ai) (pf ())
    | None ->
      fun () ->
        let ai = ref 0 in
        for d = 0 to rank - 1 do
          ai := !ai + (astride.(d) * point.(d))
        done;
        acc.(!ai) <- pf ()
  in
  let rec go l =
    let t0 = Clock.now_ns () in
    (if l = n then body ()
     else
       match nest.(l) with
       | S_loop { dim; extent } ->
         for x = 0 to extent - 1 do
           point.(dim) <- x;
           go (l + 1)
         done
       | S_tile_outer { tile; extent; slot } ->
         let b = ref 0 in
         while !b < extent do
           st.base.(slot) <- !b;
           go (l + 1);
           b := !b + tile
         done
       | S_tile_inner { dim; tile; extent; slot } ->
         let b = st.base.(slot) in
         let hi = min (b + tile) extent in
         for x = b to hi - 1 do
           point.(dim) <- x;
           go (l + 1)
         done);
    tot.(l) <- tot.(l) +. Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0);
    cnt.(l) <- cnt.(l) + 1
  in
  go 0

let level_path l = "L" ^ string_of_int l

(* The plan level a job's own loop driving (distribute/tree decode, state
   setup) is attributed to: the innermost parallel level when one exists,
   else the outermost nest step. *)
let driver_level c =
  if c.tree_level >= 0 then c.tree_level
  else if c.dist_level >= 0 then c.dist_level
  else if Array.length c.nest_levels > 0 then c.nest_levels.(0)
  else -1

(* Flush one job's accumulated per-level times: self times for the nest
   steps, the point computation under "leaf", the job's loop-control
   residue under the driving parallel level, and the job wall under the
   enclosing "exec" cell — so the per-level times of a run sum to its
   exec cell by construction, which the tests pin. *)
let flush_profile c ~wall tot cnt =
  let digest = c.digest in
  let n = Array.length c.nest in
  for l = 0 to n - 1 do
    Profile.add_n ~digest ~path:(level_path c.nest_levels.(l)) ~count:cnt.(l)
      (tot.(l) -. tot.(l + 1))
  done;
  Profile.add_n ~digest ~path:"leaf" ~count:cnt.(n) tot.(n);
  let residue = wall -. tot.(0) in
  let dl = driver_level c in
  if dl >= 0 then Profile.add ~digest ~path:(level_path dl) residue
  else Profile.add ~digest ~path:"leaf" residue;
  Profile.add ~digest ~path:"exec" wall

(* Attribute a coordinator-side segment (partial combine, post-scan,
   write-back) to a level path and to the enclosing exec cell. *)
let profile_segment c path f =
  let t0 = Clock.now_ns () in
  let r = f () in
  let dt = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0) in
  Profile.add ~digest:c.digest ~path dt;
  Profile.add ~digest:c.digest ~path:"exec" dt;
  r

let decode_dist dist point lin =
  let rest = ref lin in
  for d = Array.length dist - 1 downto 0 do
    let dim, extent = dist.(d) in
    point.(dim) <- !rest mod extent;
    rest := !rest / extent
  done

let split_range ~extent ~pieces =
  let n = max 1 (min extent pieces) in
  let chunk = (extent + n - 1) / n in
  List.init n (fun c -> (c * chunk, min chunk (extent - (c * chunk))))
  |> List.filter (fun (_, sz) -> sz > 0)

let exec_output c pool bufs op =
  (* sampled once per output: the unprofiled paths below are byte-for-byte
     the previous hot loops, so a disabled profiler costs one atomic load *)
  let profiling = Profile.enabled () in
  let nest_n = Array.length c.nest in
  let acc = Array.make c.acc_size (match c.pw with Some (id, _) -> id | None -> 0.0) in
  let pf = op.build_point in
  let dist_points =
    Array.fold_left (fun a (_, extent) -> a * extent) 1 c.dist
  in
  let workers = Pool.num_workers pool in
  let parallel = workers > 1 && (Array.length c.dist > 0 || c.tree <> None) in
  (match (parallel, c.tree) with
  | true, Some (td, extent) ->
    (* tree reduction: per-chunk private accumulators over the whole
       result, combined in chunk order so associativity suffices *)
    let _, combine = Option.get c.pw in
    let ranges = Array.of_list (split_range ~extent ~pieces:(workers * 2)) in
    let partials =
      Pool.run_in_parallel pool
        (Array.map
           (fun (lo, sz) () ->
             let part =
               Array.make c.acc_size
                 (match c.pw with Some (id, _) -> id | None -> 0.0)
             in
             let st = mk_state c bufs in
             let pt = pf st in
             if profiling then begin
               let t0 = Clock.now_ns () in
               let tot = Array.make (nest_n + 1) 0.0 in
               let cnt = Array.make (nest_n + 1) 0 in
               for i = 0 to dist_points - 1 do
                 decode_dist c.dist st.point i;
                 for x = lo to lo + sz - 1 do
                   st.point.(td) <- x;
                   run_nest_timed c st pt part tot cnt
                 done
               done;
               flush_profile c
                 ~wall:(Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0))
                 tot cnt
             end
             else
               for i = 0 to dist_points - 1 do
                 decode_dist c.dist st.point i;
                 for x = lo to lo + sz - 1 do
                   st.point.(td) <- x;
                   run_nest c st pt part
                 done
               done;
             part)
           ranges)
    in
    let combine_partials () =
      Array.iter
        (fun part ->
          for i = 0 to c.acc_size - 1 do
            acc.(i) <- combine acc.(i) part.(i)
          done)
        partials
    in
    if profiling then
      profile_segment c (level_path c.tree_level) combine_partials
    else combine_partials ()
  | true, None ->
    (* distributed cc dims: disjoint accumulator slabs, shared array *)
    let ranges =
      Array.of_list (split_range ~extent:dist_points ~pieces:(workers * 2))
    in
    let jobs =
      Array.map
        (fun (lo, sz) () ->
          let st = mk_state c bufs in
          let pt = pf st in
          if profiling then begin
            let t0 = Clock.now_ns () in
            let tot = Array.make (nest_n + 1) 0.0 in
            let cnt = Array.make (nest_n + 1) 0 in
            for i = lo to lo + sz - 1 do
              decode_dist c.dist st.point i;
              run_nest_timed c st pt acc tot cnt
            done;
            flush_profile c
              ~wall:(Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0))
              tot cnt
          end
          else
            for i = lo to lo + sz - 1 do
              decode_dist c.dist st.point i;
              run_nest c st pt acc
            done)
        ranges
    in
    ignore (Pool.run_in_parallel pool jobs)
  | false, _ ->
    let st = mk_state c bufs in
    let pt = pf st in
    let tree_loop k =
      match c.tree with
      | Some (td, extent) ->
        for x = 0 to extent - 1 do
          st.point.(td) <- x;
          k ()
        done
      | None -> k ()
    in
    if profiling then begin
      let t0 = Clock.now_ns () in
      let tot = Array.make (nest_n + 1) 0.0 in
      let cnt = Array.make (nest_n + 1) 0 in
      for i = 0 to dist_points - 1 do
        decode_dist c.dist st.point i;
        tree_loop (fun () -> run_nest_timed c st pt acc tot cnt)
      done;
      flush_profile c
        ~wall:(Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0))
        tot cnt
    end
    else
      for i = 0 to dist_points - 1 do
        decode_dist c.dist st.point i;
        tree_loop (fun () -> run_nest c st pt acc)
      done);
  (* post-scan ps dimensions, innermost first, over the accumulator *)
  let sstride = row_major_strides c.acc_shape in
  Array.iteri
    (fun k (d, op) ->
      let stride = sstride.(d) and extent = c.acc_shape.(d) in
      if extent > 1 then begin
        let pass () =
          for lin = 0 to c.acc_size - 1 do
            if lin / stride mod extent > 0 then
              acc.(lin) <- op acc.(lin - stride) acc.(lin)
          done
        in
        if profiling then
          let path =
            if c.scan_levels.(k) >= 0 then level_path c.scan_levels.(k)
            else "scan"
          in
          profile_segment c path pass
        else pass ()
      end)
    c.scans;
  acc

let write_back c env op acc =
  let out = Buffer.data (Buffer.env_find env op.out.Md_hom.out_name) in
  if op.direct_write then
    Array.iteri (fun i v -> Dense.set_linear out i (Scalar.f32 v)) acc
  else begin
    let lin = ref 0 in
    Shape.iter c.acc_shape (fun pt ->
        Dense.set out (Index_fn.apply op.out.Md_hom.out_access.fn pt)
          (Scalar.f32 acc.(!lin));
        incr lin)
  end

(* --- the digest-keyed compile cache ----------------------------------- *)

let cache : (compiled, string) result Memo.t = Memo.create ()
let record ~hit = Metrics.incr (if hit then m_hits else m_misses)

let cache_key plan md =
  Memo.key [ Plan.digest plan; Format.asprintf "%a" Md_hom.pp md ]

let compiled plan md =
  Memo.find_or_add ~record cache (cache_key plan md) (fun () ->
      let t0 = Clock.now_ns () in
      let result =
        Trace.with_span ~cat:"runtime" "specializer.compile"
          ~args:[ ("hom", md.Md_hom.hom_name); ("digest", Plan.digest plan) ]
          (fun () -> compile plan md)
      in
      let dt = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0) in
      Metrics.observe h_compile dt;
      Profile.add ~digest:(Plan.digest plan) ~path:"phase:specializer.compile"
        dt;
      match result with
      | Ok c ->
        Metrics.incr m_compiles;
        Ok c
      | Error _ as e -> e)

let supported plan md =
  match compiled plan md with Ok _ -> Ok () | Error e -> Error e

type stats = { hits : int; misses : int; compiles : int }

let stats () =
  { hits = Metrics.value m_hits;
    misses = Metrics.value m_misses;
    compiles = Metrics.value m_compiles }

let reset_stats () =
  Metrics.reset_counter m_hits;
  Metrics.reset_counter m_misses;
  Metrics.reset_counter m_compiles;
  Memo.reset_stats cache

let clear () = Memo.clear cache

(* --- dispatch entry point --------------------------------------------- *)

let bind (md : Md_hom.t) env =
  try
    Some
      (Array.of_list
         (List.map
            (fun (i : Md_hom.input) ->
              match Buffer.env_find_opt env i.inp_name with
              | Some b
                when Scalar.equal_ty (Buffer.ty b) Scalar.Fp32
                     && Shape.equal (Buffer.shape b) i.inp_shape ->
                let d = Buffer.data b in
                Array.init (Dense.num_elements d) (fun k ->
                    Scalar.to_float (Dense.get_linear d k))
              | _ -> raise Exit)
            md.inputs))
  with Exit -> None

let try_run pool (plan : Plan.t) (md : Md_hom.t) env =
  if Array.exists (fun s -> s = 0) md.sizes then None
  else
    match compiled plan md with
    | Error _ -> None
    | Ok c -> (
      match bind md env with
      | None -> None
      | Some bufs ->
        Trace.with_span ~cat:"runtime" "exec.specialized"
          ~args:[ ("hom", md.Md_hom.hom_name); ("digest", Plan.digest plan) ]
          (fun () ->
            let t0 = Clock.now_ns () in
            let env = Semantics.alloc_outputs md env in
            List.iter
              (fun op ->
                let acc = exec_output c pool bufs op in
                if Profile.enabled () then
                  profile_segment c "writeback" (fun () ->
                      write_back c env op acc)
                else write_back c env op acc)
              c.outs;
            let dt = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) t0) in
            Metrics.observe h_run dt;
            Profile.add ~digest:c.digest ~path:"phase:specializer.run" dt;
            Some env))
