(** Plan-compiled fp32 execution: the generic counterpart of the
    hand-written {!Fastpath} kernels.

    [compile] turns any fp32 [Plan.t] into a closure once — the loop nest
    is driven by the plan's Distribute/Tile/Seq/Accumulate/Scan levels,
    buffer reads go through precomputed row-major strides into flat
    [float array]s, and the point expression is staged into unboxed
    thunks — so executing a plan costs no per-point tensor boxing or
    environment lookups. Compiled plans are memoized process-wide under
    {!Mdh_lowering.Plan.digest} (plus a fingerprint of the computation),
    with cache traffic on [runtime.specializer.hits|misses|compiles].

    Eligibility: all inputs read and all outputs are [fp32]; every
    reduction operator ([pw]/[ps]) is one builtin ([add]/[mul]/[min]/[max]),
    with a single pw operator across dimensions (the same restriction the
    reference executor enforces); the value expression uses no
    record types. Everything else falls back to the generic box walker.

    Accumulation happens in double precision with one rounding per output
    element, so results are tolerance-equal — not bit-equal — to the
    per-op-rounding interpreter, exactly like the fast-path kernels. *)

type compiled

val compile :
  Mdh_lowering.Plan.t -> Mdh_core.Md_hom.t -> (compiled, string) result
(** Compile without consulting the cache. The error is the reason the
    computation is not specializable. *)

val supported :
  Mdh_lowering.Plan.t -> Mdh_core.Md_hom.t -> (unit, string) result
(** Cached eligibility check: [Ok ()] iff {!try_run} would execute this
    plan (buffer bindings aside). *)

val try_run :
  Pool.t ->
  Mdh_lowering.Plan.t ->
  Mdh_core.Md_hom.t ->
  Mdh_tensor.Buffer.env ->
  Mdh_tensor.Buffer.env option
(** [Some env'] iff the plan compiled (possibly from cache) and the
    supplied buffers match the declared fp32 shapes; parallel over the
    plan's Distribute/Tree_reduce levels when the pool has more than one
    worker. [None] means the generic walker should run — unsupported
    computation, zero-extent iteration space, or mismatched buffers. *)

type stats = { hits : int; misses : int; compiles : int }

val stats : unit -> stats
(** Current values of the [runtime.specializer.*] counters. *)

val reset_stats : unit -> unit
val clear : unit -> unit
(** Drop every compiled plan (the counters are reset separately). *)
