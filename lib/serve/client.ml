module Jin = Mdh_support.Json_in
module J = Mdh_obs.Json

type reply = {
  ok : bool;
  code : string option;
  error : string option;
  retry_after_s : float option;
  result : Jin.t option;
  metrics : Jin.t option;
}

let parse_reply line =
  match Jin.parse line with
  | exception Jin.Parse_error e -> Error ("malformed reply: " ^ e)
  | body ->
    let ok = match Jin.get_bool body "ok" with Some b -> b | None -> false in
    Ok
      { ok;
        code = Jin.get_string body "code";
        error = Jin.get_string body "error";
        retry_after_s = Jin.get_float body "retry_after_s";
        result = Jin.member "result" body;
        metrics = Jin.member "metrics" body }

let recv_reply fd deadline =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> Ok (String.sub (Buffer.contents buf) 0 i)
    | None ->
      let remain = deadline -. Unix.gettimeofday () in
      if remain <= 0.0 then Error "timed out waiting for reply"
      else begin
        match Unix.select [ fd ] [] [] remain with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | [], _, _ -> Error "timed out waiting for reply"
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            if Buffer.length buf = 0 then
              Error "connection closed before any reply"
            else Ok (Buffer.contents buf)
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (err, _, _) ->
            Error
              (Printf.sprintf "connection lost before a reply (%s)"
                 (Unix.error_message err)))
      end
  in
  go ()

let rpc ?(timeout_s = 60.0) ~socket line =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  match
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    Unix.connect fd (Unix.ADDR_UNIX socket)
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "%s: cannot reach mdhd (%s) — is the daemon running?"
         socket (Unix.error_message err))
  | () -> (
    let data = line ^ "\n" in
    match
      let rec w off =
        if off < String.length data then
          w (off + Unix.write_substring fd data off (String.length data - off))
      in
      w 0
    with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "%s: send failed (%s)" socket (Unix.error_message err))
    | () -> (
      match recv_reply fd deadline with
      | Error _ as e -> e
      | Ok reply_line -> parse_reply reply_line))

let request ?timeout_s ?(metrics = false) ~socket ~op fields =
  let body =
    J.obj
      ((("op", J.quote op) :: fields)
      @ if metrics then [ ("metrics", "true") ] else [])
  in
  rpc ?timeout_s ~socket body
