(** Client side of the mdhd protocol — what [mdhc --remote SOCK] uses.

    One call = connect, send one request line, read one reply line,
    close. The transport is deliberately stateless per request: mdhd's
    connections are cheap (Unix-domain), and a fresh connection per
    request means a shed or crashed request never poisons a later one. *)

type reply = {
  ok : bool;
  code : string option;  (** machine error code when [ok = false] *)
  error : string option;  (** human message when [ok = false] *)
  retry_after_s : float option;  (** shedding back-off hint *)
  result : Mdh_support.Json_in.t option;  (** the [result] object *)
  metrics : Mdh_support.Json_in.t option;
      (** the server registry dump, present when the request asked for
          ["metrics": true] — remote [--metrics-out] writes
          {!Protocol.render} of this *)
}

val rpc :
  ?timeout_s:float -> socket:string -> string -> (reply, string) result
(** [rpc ~socket line] sends [line] (one JSON request, no trailing
    newline needed) and parses the reply envelope. [Error] covers
    transport problems — daemon not running, connect refused, timeout
    ([timeout_s] default 60, bounding connect + send + receive), reply
    not valid JSON. Protocol-level failures (shed, bad request, handler
    error) come back as [Ok { ok = false; ... }]. *)

val request :
  ?timeout_s:float ->
  ?metrics:bool ->
  socket:string ->
  op:string ->
  (string * string) list ->
  (reply, string) result
(** Build the request object from already-rendered JSON fields (name,
    value) plus ["op"] and send it via {!rpc}. *)
