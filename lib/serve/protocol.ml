(* Wire protocol for mdhd: one JSON object per LF-terminated line, in
   both directions. Parsing goes through Mdh_support.Json_in (the repo's
   own artifact reader) and emission through Mdh_obs.Json, so the
   protocol adds no dependency beyond what the repo already ships. *)

module Jin = Mdh_support.Json_in
module J = Mdh_obs.Json

type request = {
  req_id : Jin.t option;
  req_op : string;
  req_body : Jin.t;
}

let parse_request line =
  match Jin.parse line with
  | exception Jin.Parse_error e -> Error ("malformed JSON: " ^ e)
  | Jin.Obj _ as body -> (
    match Jin.member "op" body with
    | Some (Jin.Str op) ->
      Ok { req_id = Jin.member "id" body; req_op = op; req_body = body }
    | Some _ -> Error "request \"op\" is not a string"
    | None -> Error "request has no \"op\" field")
  | _ -> Error "request is not a JSON object"

let str_field req name = Jin.get_string req.req_body name
let num_field req name = Jin.get_float req.req_body name

let int_field req name =
  Option.map (fun f -> int_of_float (Float.round f)) (num_field req name)

let bool_field req name = Jin.get_bool req.req_body name

(* exact number rendering: estimated costs must survive the
   server→client round trip bitwise, so replies use %.17g (with a
   compact integer form when exact) rather than Mdh_obs.Json's display
   precision *)
let number f =
  if not (Float.is_finite f) then "0" (* JSON cannot carry nan/inf *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec render = function
  | Jin.Null -> "null"
  | Jin.Bool b -> if b then "true" else "false"
  | Jin.Num f -> number f
  | Jin.Str s -> J.quote s
  | Jin.Arr xs -> J.arr (List.map render xs)
  | Jin.Obj kvs -> J.obj (List.map (fun (k, v) -> (k, render v)) kvs)

let id_field = function
  | Some { req_id = Some id; _ } -> render id
  | _ -> "null"

let ok_reply ?metrics request ~op fields =
  J.obj
    ([ ("id", id_field request); ("ok", "true"); ("op", J.quote op);
       ("result", J.obj fields) ]
    @ match metrics with None -> [] | Some m -> [ ("metrics", m) ])

let error_reply ?retry_after_s ?request ~code msg =
  J.obj
    ([ ("id", id_field request); ("ok", "false"); ("code", J.quote code);
       ("error", J.quote msg) ]
    @
    match retry_after_s with
    | None -> []
    | Some s -> [ ("retry_after_s", number s) ])
