(** The mdhd wire protocol: newline-delimited JSON over a Unix-domain
    socket.

    Every request and every reply is exactly one JSON object on one
    line (LF-terminated). Requests carry an ["op"] selecting the
    handler plus op-specific fields; replies are an envelope:

    {v
    {"id":<echoed>,"ok":true,"op":"tune","result":{...}}
    {"id":<echoed>,"ok":false,"code":"overloaded","error":"...","retry_after_s":0.1}
    v}

    [id] is whatever the client sent (string, number, or null when
    absent) — echoed verbatim so clients can correlate replies. When a
    request sets ["metrics": true], the success envelope additionally
    carries a ["metrics"] object: the server's whole
    {!Mdh_obs.Metrics} registry as one-line JSON, which remote clients
    write to their [--metrics-out] file. Parsing reuses
    {!Mdh_support.Json_in}; emission reuses {!Mdh_obs.Json}. *)

type request = {
  req_id : Mdh_support.Json_in.t option;  (** echoed verbatim in replies *)
  req_op : string;
  req_body : Mdh_support.Json_in.t;  (** the whole request object *)
}

val parse_request : string -> (request, string) result
(** One line → request. [Error] on malformed JSON, a non-object, or a
    missing/non-string ["op"]. *)

(** {1 Request field accessors} (absent and wrongly-typed are both [None]) *)

val str_field : request -> string -> string option
val num_field : request -> string -> float option
val int_field : request -> string -> int option
val bool_field : request -> string -> bool option

(** {1 Reply envelopes} — fields are (name, already-rendered JSON value) *)

val ok_reply :
  ?metrics:string -> request option -> op:string ->
  (string * string) list -> string
(** Success envelope around a [result] object. [metrics] is an
    already-rendered JSON object (the registry dump). *)

val error_reply :
  ?retry_after_s:float -> ?request:request -> code:string -> string -> string
(** Failure envelope: [code] is a stable machine identifier
    ([overloaded], [bad_request], [frame_too_large], [unknown_op],
    [internal], ...) and the payload a human message. [retry_after_s]
    carries the shedding back-off hint. *)

val render : Mdh_support.Json_in.t -> string
(** Render a parsed value back to JSON text (used to echo [id]s and to
    extract the [metrics] object on the client side). *)

val number : float -> string
(** Round-trip-exact JSON number rendering ([%.17g], integers without a
    fraction) — unlike {!Mdh_obs.Json.number}, which favours brevity. *)
