(* mdhd core: bounded-admission, deadline-aware, crash-contained serving
   of tune/plan/check/optimize/exec/metrics/health over a Unix socket.

   Threading model: the caller of [serve] runs the accept loop (select
   with a short tick so drain requests and signals are noticed);
   [workers] systhreads pull admitted connections from a bounded queue
   and run the handlers. Handlers hold no global locks — the shared
   state they touch (Plan_cache, Cost_cache, rewrite cache, Tuning_db,
   the metrics registry) is already safe for concurrent domains, and
   the Tuning_db compaction race for in-process writers is closed by
   its own io mutex (see tuning_db.ml).

   Every failure mode has a structured story:
     queue full            -> one `overloaded` reply + close (shed)
     oversized frame       -> one `frame_too_large` reply + close
     stalled client        -> connection closed after read_timeout_s
     handler raised        -> one `internal` reply, daemon keeps serving
     SIGTERM / SIGINT      -> drain: finish/suspend in-flight, flush db,
                              unlink socket, serve() returns (exit 0) *)

module Fault = Mdh_fault.Fault
module Metrics = Mdh_obs.Metrics
module J = Mdh_obs.Json
module Jin = Mdh_support.Json_in
module Crc32 = Mdh_support.Crc32
module W = Mdh_workloads.Workload
module Device = Mdh_machine.Device
module Schedule = Mdh_lowering.Schedule
module Cost = Mdh_lowering.Cost
module Tuner = Mdh_atf.Tuner
module P = Protocol

type config = {
  socket : string;
  workers : int;
  max_queue : int;
  read_timeout_s : float;
  write_timeout_s : float;
  max_frame : int;
  max_deadline_s : float option;
  state_dir : string option;
}

let default_config ~socket =
  { socket; workers = 4; max_queue = 16; read_timeout_s = 10.0;
    write_timeout_s = 10.0; max_frame = 1 lsl 20; max_deadline_s = None;
    state_dir = None }

(* --- serve.* observability (ISSUE: accepted, shed, timed out,
   in-flight gauge, per-request latency) --- *)
let m_accepted = Metrics.counter "serve.accepted"
let m_shed = Metrics.counter "serve.shed"
let m_timed_out = Metrics.counter "serve.timed_out"
let m_requests = Metrics.counter "serve.requests"
let m_errors = Metrics.counter "serve.errors"
let m_faults_absorbed = Metrics.counter "serve.faults_absorbed"
let m_suspended = Metrics.counter "serve.suspended"
let g_in_flight = Metrics.gauge "serve.in_flight"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let h_request_s = Metrics.histogram "serve.request_s"

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  st_dir : string;
  queue : Unix.file_descr Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  in_flight : int Atomic.t;
  n_served : int Atomic.t;
  drain_flag : bool Atomic.t;
  started : float;
  mutable threads : Thread.t list;
}

let draining t = Atomic.get t.drain_flag
let request_shutdown t = Atomic.set t.drain_flag true
let served t = Atomic.get t.n_served
let state_dir t = t.st_dir

let with_mutex m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- request helpers (no exits: handlers return structured errors) --- *)

type herror = string * string (* code, message *)

let ( let* ) r f = match r with Ok v -> f v | Error (_ : herror) as e -> e

let find_workload name =
  match Mdh_workloads.Catalog.find name with
  | Some w -> Ok w
  | None -> Error ("bad_request", Printf.sprintf "unknown workload %S" name)

let device_of req =
  match Option.value ~default:"cpu" (P.str_field req "device") with
  | "gpu" -> Ok Device.a100_like
  | "cpu" -> Ok Device.xeon6140_like
  | s -> Error ("bad_request", Printf.sprintf "unknown device %S (gpu|cpu)" s)

let params_of (w : W.t) req =
  match Option.value ~default:"test" (P.str_field req "input") with
  | "test" -> Ok w.W.test_params
  | inp -> (
    match List.assoc_opt inp w.W.paper_inputs with
    | Some params -> Ok params
    | None ->
      Error ("bad_request", Printf.sprintf "workload has no input set %S" inp))

let workload_of req =
  match P.str_field req "workload" with
  | Some name -> find_workload name
  | None -> Error ("bad_request", "request has no \"workload\" field")

let strategy_of req =
  match Option.value ~default:"auto" (P.str_field req "strategy") with
  | "auto" -> Ok Tuner.Auto
  | "exhaustive" -> Ok Tuner.Exhaustive
  | "random" -> Ok Tuner.Random
  | "anneal" -> Ok Tuner.Anneal
  | s -> Error ("bad_request", Printf.sprintf "unknown strategy %S" s)

(* --- resume tokens ---

   The checkpoint file name is a pure function of every search-relevant
   request knob, so a client that re-sends the same tune request with
   ["resume": true] finds its own checkpoint without bookkeeping — and
   the token survives daemon restarts because it lives in state_dir, not
   in memory. Explicit tokens (["resume": "tune-....ckpt"]) are accepted
   for clients that stored the reply, but never one that escapes
   state_dir. *)

let token_ok token =
  token <> "" && String.length token <= 128
  && token.[0] <> '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '.' || c = '_' || c = '-')
       token

let derive_token ~wl ~dev ~input ~budget ~seed ~chains ~strategy ~saturate =
  let key =
    String.concat "|"
      [ wl; dev; input; string_of_int budget; string_of_int seed;
        string_of_int chains; strategy; string_of_bool saturate ]
  in
  "tune-" ^ Crc32.to_hex (Crc32.string key) ^ ".ckpt"

(* --- handlers --- *)

let tune_handler t req =
  let* w = workload_of req in
  let* dev = device_of req in
  let* params = params_of w req in
  let* strategy = strategy_of req in
  let budget = Option.value ~default:400 (P.int_field req "budget") in
  let seed = Option.value ~default:1 (P.int_field req "seed") in
  let chains = Option.value ~default:1 (P.int_field req "chains") in
  let saturate = not (Option.value ~default:false (P.bool_field req "no_rewrite")) in
  let deadline_s =
    match (P.num_field req "deadline_s", t.config.max_deadline_s) with
    | Some d, Some cap -> Some (Float.min d cap)
    | Some d, None -> Some d
    | None, cap -> cap
  in
  let input = Option.value ~default:"test" (P.str_field req "input") in
  let strategy_name =
    Option.value ~default:"auto" (P.str_field req "strategy")
  in
  let token =
    derive_token
      ~wl:(String.lowercase_ascii w.W.wl_name)
      ~dev:dev.Device.device_name ~input ~budget ~seed ~chains
      ~strategy:strategy_name ~saturate
  in
  let* resume, token =
    match Jin.member "resume" req.P.req_body with
    | None | Some (Jin.Bool false) -> Ok (false, token)
    | Some (Jin.Bool true) -> Ok (true, token)
    | Some (Jin.Str explicit) ->
      if token_ok explicit then Ok (true, explicit)
      else Error ("bad_request", "malformed resume token")
    | Some _ -> Error ("bad_request", "\"resume\" must be a boolean or a token")
  in
  let checkpoint = Filename.concat t.st_dir token in
  let md = W.to_md_hom w params in
  match
    Tuner.tune_resumable ~strategy ~budget ~seed ~chains ?deadline_s
      ~checkpoint ~resume
      ~should_stop:(fun () -> draining t)
      ~saturate md dev Cost.tuned_codegen
  with
  | Error e -> Error ("tune_failed", e)
  | Ok (Tuner.Suspended { evaluations; _ }) ->
    Metrics.incr m_suspended;
    Ok
      [ ("status", J.quote "suspended"); ("token", J.quote token);
        ("evaluations", string_of_int evaluations) ]
  | Ok (Tuner.Tuned tu) ->
    Ok
      [ ("status", J.quote "tuned");
        ("schedule", J.quote (Schedule.to_string tu.Tuner.schedule));
        ("estimated_s", P.number tu.Tuner.estimated_s);
        ("evaluations",
         string_of_int tu.Tuner.search.Mdh_atf.Search.evaluations);
        ("from_db", if tu.Tuner.from_db then "true" else "false") ]

let plan_handler req =
  let* w = workload_of req in
  let* dev = device_of req in
  let* params = params_of w req in
  let md = W.to_md_hom w params in
  let sched = Mdh_lowering.Lower.mdh_default md dev in
  match Mdh_lowering.Plan_cache.build md dev sched with
  | Error e -> Error ("plan_failed", e)
  | Ok plan ->
    Ok
      [ ("digest", J.quote (Mdh_lowering.Plan.digest plan));
        ("parallelism",
         string_of_int (Mdh_lowering.Plan.parallelism plan));
        ("device", J.quote dev.Device.device_name);
        ("plan", J.quote (Format.asprintf "%a" Mdh_lowering.Plan.pp plan)) ]

let check_handler req =
  let* targets =
    match P.str_field req "workload" with
    | Some name ->
      let* w = find_workload name in
      Ok [ w ]
    | None -> Ok Mdh_workloads.Catalog.all
  in
  let module D = Mdh_analysis.Diagnostic in
  let per_target =
    List.map
      (fun (w : W.t) ->
        ( "workload:" ^ String.lowercase_ascii w.W.wl_name,
          Mdh_analysis.Analyze.directive (w.W.make w.W.test_params) ))
      targets
  in
  let all = List.concat_map snd per_target in
  let diag_json (target, (d : D.t)) =
    J.obj
      ([ ("target", J.quote target); ("code", J.quote d.D.code);
         ("severity", J.quote (D.severity_to_string d.D.severity));
         ("message", J.quote d.D.message) ]
      @
      match d.D.span with
      | None -> []
      | Some s ->
        [ ("line", string_of_int s.D.line); ("col", string_of_int s.D.col) ])
  in
  Ok
    [ ("targets", string_of_int (List.length per_target));
      ("errors", string_of_int (D.error_count all));
      ("warnings", string_of_int (D.warning_count all));
      ("hints", string_of_int (D.hint_count all));
      ("diagnostics",
       J.arr
         (List.concat_map
            (fun (target, ds) ->
              List.map (fun d -> diag_json (target, d)) ds)
            per_target)) ]

let optimize_handler req =
  let* w = workload_of req in
  let* dev = device_of req in
  let* params = params_of w req in
  let md = W.to_md_hom w params in
  let sched = Mdh_lowering.Lower.mdh_default md dev in
  let oracle = Mdh_analysis.Opcheck_oracle.oracle () in
  match
    Mdh_rewrite.Rewrite.optimize ~oracle md dev Cost.tuned_codegen sched
  with
  | Error e -> Error ("optimize_failed", e)
  | Ok r ->
    let module R = Mdh_rewrite.Rewrite in
    let rule_json (a : R.applied) =
      J.obj
        [ ("tier", J.quote (match a.R.ap_tier with `Expr -> "expr" | `Plan -> "plan"));
          ("rule", J.quote a.R.ap_rule); ("site", J.quote a.R.ap_site);
          ("justification", J.quote (R.justification_to_string a.R.ap_just)) ]
    in
    Ok
      [ ("raw_digest", J.quote (Mdh_lowering.Plan.digest r.R.r_raw_plan));
        ("digest", J.quote (Mdh_lowering.Plan.digest r.R.r_plan));
        ("raw_seconds", P.number r.R.r_raw_seconds);
        ("seconds", P.number r.R.r_seconds);
        ("applied", J.arr (List.map rule_json r.R.r_applied)) ]

let exec_handler req =
  let* w = workload_of req in
  let* params = params_of w req in
  let seed = Option.value ~default:1 (P.int_field req "seed") in
  let md = W.to_md_hom w params in
  let env = w.W.gen params ~seed in
  (* a zero-domain pool keeps concurrent exec handlers independent: no
     shared worker set to contend for or poison, and Exec still gets the
     host device it expects *)
  let pool = Mdh_runtime.Pool.create ~num_domains:0 () in
  Fun.protect ~finally:(fun () -> Mdh_runtime.Pool.shutdown pool)
  @@ fun () ->
  let sched = Schedule.sequential md in
  let result, elapsed =
    Mdh_support.Util.time_it (fun () ->
        Mdh_runtime.Exec.run pool md sched env)
  in
  match result with
  | Error e -> Error ("exec_failed", e)
  | Ok out_env ->
    let checked =
      match w.W.reference with
      | None -> "null"
      | Some oracle ->
        let expected = oracle params env in
        let ok =
          List.for_all
            (fun (o : Mdh_core.Md_hom.output) ->
              Mdh_tensor.Dense.approx_equal ~rel:1e-3 ~abs:1e-4
                (Mdh_tensor.Buffer.data
                   (Mdh_tensor.Buffer.env_find out_env o.Mdh_core.Md_hom.out_name))
                (Mdh_tensor.Buffer.data
                   (Mdh_tensor.Buffer.env_find expected o.Mdh_core.Md_hom.out_name)))
            md.Mdh_core.Md_hom.outputs
        in
        if ok then "true" else "false"
    in
    if checked = "false" then Error ("exec_mismatch", "result check failed")
    else
      Ok
        [ ("workload", J.quote md.Mdh_core.Md_hom.hom_name);
          ("elapsed_s", P.number elapsed); ("checked", checked) ]

let health_handler t =
  Ok
    [ ("status", J.quote (if draining t then "draining" else "ok"));
      ("uptime_s", P.number (Unix.gettimeofday () -. t.started));
      ("in_flight", string_of_int (Atomic.get t.in_flight));
      ("queue_depth",
       string_of_int (with_mutex t.qmutex (fun () -> Queue.length t.queue)));
      ("workers", string_of_int t.config.workers);
      ("max_queue", string_of_int t.config.max_queue);
      ("served", string_of_int (served t));
      ("pid", string_of_int (Unix.getpid ())) ]

let dispatch t req =
  Atomic.incr t.n_served;
  Metrics.incr m_requests;
  let result =
    match req.P.req_op with
    | "health" -> health_handler t
    | "metrics" -> Ok [ ("registry", Metrics.to_json ()) ]
    | "tune" -> tune_handler t req
    | "plan" -> plan_handler req
    | "check" -> check_handler req
    | "optimize" -> optimize_handler req
    | "exec" -> exec_handler req
    | op -> Error ("unknown_op", Printf.sprintf "unknown op %S" op)
  in
  let metrics =
    if Option.value ~default:false (P.bool_field req "metrics") then
      Some (Metrics.to_json ())
    else None
  in
  match result with
  | Ok fields -> P.ok_reply ?metrics (Some req) ~op:req.P.req_op fields
  | Error (code, msg) ->
    Metrics.incr m_errors;
    P.error_reply ~request:req ~code msg

(* --- connection I/O --- *)

(* bounded, drain-aware line reader: select in short ticks so a drain
   request interrupts an idle keep-alive connection instead of waiting
   out the full read timeout *)
type read_outcome =
  [ `Line of string | `Eof | `Timeout | `Too_long | `Read_fault | `Drain ]

let take_line leftover =
  let s = Buffer.contents leftover in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear leftover;
    Buffer.add_string leftover (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.trim (String.sub s 0 i))

let recv_line t fd leftover : read_outcome =
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. t.config.read_timeout_s in
  let rec go () =
    match take_line leftover with
    | Some line ->
      (* a complete line can still be oversized: the cap is on the frame,
         not just on unterminated garbage *)
      if String.length line > t.config.max_frame then `Too_long
      else `Line line
    | None ->
      if Buffer.length leftover > t.config.max_frame then `Too_long
      else if draining t then `Drain
      else begin
        let remain = deadline -. Unix.gettimeofday () in
        if remain <= 0.0 then `Timeout
        else begin
          match Unix.select [ fd ] [] [] (Float.min 0.25 remain) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ -> (
            match
              Fault.hit "serve.read";
              Unix.read fd chunk 0 (Bytes.length chunk)
            with
            | 0 -> if Buffer.length leftover = 0 then `Eof else `Timeout
            | n ->
              Buffer.add_subbytes leftover chunk 0 n;
              go ()
            | exception Fault.Injected _ ->
              Metrics.incr m_faults_absorbed;
              `Read_fault
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go ()
            | exception Unix.Unix_error _ -> `Eof)
        end
      end
  in
  go ()

let send_line t fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  try
    Fault.hit "serve.write";
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.write_timeout_s;
    let rec w off =
      if off < len then w (off + Unix.write_substring fd data off (len - off))
    in
    w 0;
    true
  with
  | Fault.Injected _ ->
    Metrics.incr m_faults_absorbed;
    false
  | Unix.Unix_error _ | Sys_error _ ->
    Metrics.incr m_errors;
    false

let handle_conn t fd =
  Atomic.incr t.in_flight;
  Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight));
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.in_flight;
      Metrics.set g_in_flight (float_of_int (Atomic.get t.in_flight));
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let leftover = Buffer.create 512 in
  let rec go () =
    match recv_line t fd leftover with
    | `Eof | `Drain | `Read_fault -> ()
    | `Timeout -> Metrics.incr m_timed_out
    | `Too_long ->
      (* the guard replies once, then drops the connection: the rest of
         the oversized frame is never buffered *)
      ignore
        (send_line t fd
           (P.error_reply ~code:"frame_too_large"
              (Printf.sprintf "request exceeds %d bytes" t.config.max_frame)))
    | `Line "" -> go ()
    | `Line line ->
      let reply =
        match P.parse_request line with
        | Error e -> P.error_reply ~code:"bad_request" e
        | Ok req -> (
          let t0 = Unix.gettimeofday () in
          let reply =
            (* crash containment: anything a handler raises — injected
               serve.handle faults included — becomes one structured
               error reply; the daemon and the connection survive *)
            match
              Fault.hit "serve.handle";
              dispatch t req
            with
            | reply -> reply
            | exception Fault.Injected site ->
              Metrics.incr m_faults_absorbed;
              P.error_reply ~request:req ~code:"internal"
                ("injected fault at " ^ site)
            | exception e ->
              Metrics.incr m_errors;
              P.error_reply ~request:req ~code:"internal"
                (Printexc.to_string e)
          in
          Metrics.observe h_request_s (Unix.gettimeofday () -. t0);
          reply)
      in
      if send_line t fd reply && not (draining t) then go ()
  in
  go ()

(* --- admission and lifecycle --- *)

let queue_depth t = with_mutex t.qmutex (fun () -> Queue.length t.queue)

let shed t fd =
  Metrics.incr m_shed;
  (* back-off hint proportional to the backlog the shed client would
     have joined *)
  let retry_after_s =
    0.05 *. float_of_int (1 + queue_depth t + Atomic.get t.in_flight)
  in
  ignore
    (send_line t fd
       (P.error_reply ~retry_after_s ~code:"overloaded"
          "admission queue full"));
  try Unix.close fd with Unix.Unix_error _ -> ()

let enqueue t fd =
  with_mutex t.qmutex (fun () ->
      Queue.push fd t.queue;
      Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
      Condition.signal t.qcond)

let next_conn t =
  with_mutex t.qmutex (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then begin
          let fd = Queue.pop t.queue in
          Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
          Some fd
        end
        else if draining t then None
        else begin
          Condition.wait t.qcond t.qmutex;
          wait ()
        end
      in
      wait ())

let rec worker t =
  match next_conn t with
  | None -> () (* draining and nothing left to serve *)
  | Some fd ->
    handle_conn t fd;
    worker t

let accept_one t =
  match
    Fault.hit "serve.accept";
    Unix.accept t.listen_fd
  with
  | exception Fault.Injected _ -> Metrics.incr m_faults_absorbed
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> Metrics.incr m_errors
  | fd, _ ->
    Metrics.incr m_accepted;
    (* load-shedding admission: capacity is busy workers + the bounded
       queue; one past it gets a structured refusal, never a silent
       unbounded backlog *)
    if queue_depth t + Atomic.get t.in_flight
       >= t.config.workers + t.config.max_queue
    then shed t fd
    else enqueue t fd

let create config =
  (* a write to a dead peer must be a unix error on the write, not a
     process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let st_dir =
    match config.state_dir with
    | Some d -> d
    | None -> config.socket ^ ".state"
  in
  mkdir_p st_dir;
  mkdir_p (Filename.dirname config.socket);
  let stale_socket path =
    (* a socket file nothing accepts on is a crashed daemon's leftovers *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close probe with _ -> ())
    @@ fun () ->
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () -> false
    | exception Unix.Unix_error _ -> true
  in
  if Sys.file_exists config.socket then begin
    if stale_socket config.socket then
      (try Sys.remove config.socket with Sys_error _ -> ())
  end;
  if Sys.file_exists config.socket then
    Error (Printf.sprintf "%s: a daemon is already serving" config.socket)
  else
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind listen_fd (Unix.ADDR_UNIX config.socket);
      Unix.listen listen_fd 64
    with
    | () ->
      Ok
        { config; listen_fd; st_dir; queue = Queue.create ();
          qmutex = Mutex.create (); qcond = Condition.create ();
          in_flight = Atomic.make 0; n_served = Atomic.make 0;
          drain_flag = Atomic.make false;
          started = Unix.gettimeofday (); threads = [] }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close listen_fd with _ -> ());
      Error
        (Printf.sprintf "%s: cannot bind (%s)" config.socket
           (Unix.error_message err))

let serve t =
  t.threads <- List.init t.config.workers (fun _ -> Thread.create worker t);
  let rec loop () =
    if not (draining t) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> accept_one t);
      loop ()
    end
  in
  loop ();
  (* drain: no new admissions (loop exited); wake idle workers so they
     serve the already-admitted queue and exit; in-flight tunes see the
     drain flag through their should_stop and suspend to checkpoints *)
  with_mutex t.qmutex (fun () -> Condition.broadcast t.qcond);
  List.iter Thread.join t.threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.config.socket with Sys_error _ -> ());
  (* flush shared state: superseded journal appends are compacted away
     while we still can; ambient db is how bin/mdhd wires the cache *)
  (match Mdh_atf.Tuning_db.ambient () with
  | Some db -> Mdh_atf.Tuning_db.compact db
  | None -> ());
  (* leave no empty state dir behind — checkpoints of suspended tunes
     stay (they are the resume contract), an unused dir does not *)
  match Sys.readdir t.st_dir with
  | [||] -> ( try Unix.rmdir t.st_dir with Unix.Unix_error _ -> ())
  | _ | (exception Sys_error _) -> ()
