(** mdhd — the fault-tolerant tuning-as-a-service daemon core.

    A long-running Unix-domain-socket server speaking the newline-
    delimited JSON protocol of {!Protocol}, sharing one process-wide
    {!Mdh_lowering.Plan_cache} / {!Mdh_atf.Cost_cache} / rewrite cache
    and one ambient {!Mdh_atf.Tuning_db} across every client. The
    robustness contract (pinned by test_serve and the check.sh serve
    stage):

    - {b Admission control}: the accept loop admits at most
      [workers + max_queue] connections; beyond that it sheds with a
      structured [overloaded] reply carrying a [retry_after_s] hint and
      closes — it never queues unboundedly and never blocks on a slow
      client ([serve.shed] counter).
    - {b Deadlines}: [tune] requests run through
      {!Mdh_atf.Tuner.tune_resumable} with the request's [deadline_s]
      (clamped to [max_deadline_s]); an expired annealing search
      suspends to a crash-safe checkpoint under [state_dir] and replies
      [status="suspended"] with a resume token instead of hogging a
      worker slot.
    - {b Stall containment}: per-connection read/write timeouts and a
      [max_frame] guard bound what any single client can consume; a
      stalled or oversized frame costs one worker slot for at most
      [read_timeout_s], never the accept loop.
    - {b Crash containment}: a handler raising (including
      [serve.handle] injected faults) produces one [internal] error
      reply on that connection and the daemon keeps serving.
    - {b Graceful drain}: {!request_shutdown} (wired to SIGTERM/SIGINT
      by bin/mdhd) stops accepting, lets in-flight work finish or
      suspend (tune handlers poll the drain flag as their
      [should_stop]), flushes the ambient tuning database, removes the
      socket file, and {!serve} returns — the daemon then exits 0.

    Fault sites [serve.accept], [serve.read], [serve.write] and
    [serve.handle] thread the whole path through {!Mdh_fault.Fault} for
    deterministic chaos testing. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  workers : int;  (** handler threads (default 4) *)
  max_queue : int;  (** admitted-but-unserved connections beyond the
                        busy workers; above it the accept loop sheds *)
  read_timeout_s : float;  (** per-connection idle read budget *)
  write_timeout_s : float;  (** per-reply write budget *)
  max_frame : int;  (** request line size cap, bytes *)
  max_deadline_s : float option;
      (** server-wide cap on per-request tune deadlines; [None] = only
          client-supplied deadlines apply *)
  state_dir : string option;
      (** checkpoint-token directory; default [socket ^ ".state"] *)
}

val default_config : socket:string -> config
(** workers 4, queue 16, 10 s read/write timeouts, 1 MiB frames, no
    deadline cap. *)

type t

val create : config -> (t, string) result
(** Bind and listen. A stale socket file left by a crashed daemon is
    detected (nothing accepts on it) and replaced; a live one is
    [Error "... already serving"]. Creates [state_dir]. *)

val serve : t -> unit
(** Run the accept loop and handler threads until {!request_shutdown},
    then drain as described above and return. Call from the thread that
    should own the daemon's lifetime (bin/mdhd calls it from [main]
    with signal handlers installed around it). *)

val request_shutdown : t -> unit
(** Begin graceful drain; safe to call from a signal handler or any
    thread (it only flips an atomic — all wake-ups happen in
    {!serve}). Idempotent. *)

val draining : t -> bool

val served : t -> int
(** Requests dispatched over the daemon's lifetime. *)

val state_dir : t -> string
