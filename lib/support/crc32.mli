(** CRC-32 checksums (IEEE 802.3 polynomial) for framing crash-safe
    on-disk records: a torn append or corrupted byte changes the
    checksum, so loaders can reject the record instead of trusting it. *)

val string : string -> int
(** Checksum of a whole string (in [0, 0xFFFFFFFF]). *)

val update : int -> string -> int
(** Continue a running checksum with more bytes ([string s] =
    [update 0 s]). *)

val to_hex : int -> string
(** Fixed-width 8-digit lowercase hex. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] on malformed input. *)
