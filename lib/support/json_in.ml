(* Minimal recursive-descent JSON reader: just enough to load the bench
   artifacts (BENCH_plan_exec.json, BENCH_model_acc.json) and the gate
   baseline file without an external dependency. Strict where it matters
   (structure, numbers), lenient where it does not (\u escapes are kept
   verbatim — the artifacts never emit them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end of input" in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then fail "expected %c at offset %d" c !pos;
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          Buffer.add_string buf ("\\u" ^ String.sub s (!pos + 1) 4);
          pos := !pos + 4
        | c -> fail "bad escape \\%c" c);
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "empty number at offset %d" start;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number at offset %d" start
  in
  let parse_lit lit v =
    let ln = String.length lit in
    if !pos + ln <= n && String.sub s !pos ln = lit then begin
      pos := !pos + ln;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | c -> fail "expected , or } (got %c) at offset %d" c !pos
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | c -> fail "expected , or ] (got %c) at offset %d" c !pos
        in
        Arr (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> parse_lit "true" (Bool true)
    | 'f' -> parse_lit "false" (Bool false)
    | 'n' -> parse_lit "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let of_file path = parse (In_channel.with_open_text path In_channel.input_all)
let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Num f -> Some f
  | Bool _ | Null | Str _ | Arr _ | Obj _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let get_float j key = Option.bind (member key j) to_float
let get_string j key = Option.bind (member key j) to_string
let get_bool j key = Option.bind (member key j) to_bool
let get_list j key = Option.bind (member key j) to_list
