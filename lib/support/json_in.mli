(** Minimal JSON reader for the repo's own artifacts (bench JSON, gate
    baselines). Not a general-purpose parser: [\u] escapes are preserved
    verbatim rather than decoded, and numbers are always floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input (including trailing
    garbage). *)

val of_file : string -> t
(** [parse] over a whole file; file errors propagate as [Sys_error]. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val get_float : t -> string -> float option
(** [get_float j key] = [member key j] narrowed to a number; the other
    [get_*] accessors follow the same shape. *)

val get_string : t -> string -> string option
val get_bool : t -> string -> bool option
val get_list : t -> string -> t list option
