type 'a t = {
  table : (string, 'a) Hashtbl.t;
  mutex : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  mutable enabled : bool;
}

type stats = { n_hits : int; n_misses : int; n_entries : int }

let create ?(enabled = true) () =
  { table = Hashtbl.create 256; mutex = Mutex.create ();
    hits = Atomic.make 0; misses = Atomic.make 0; enabled }

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_add ?record t k compute =
  let note hit = match record with Some f -> f ~hit | None -> () in
  if not t.enabled then begin
    Atomic.incr t.misses;
    note false;
    compute ()
  end
  else
    match with_lock t (fun () -> Hashtbl.find_opt t.table k) with
    | Some v ->
      Atomic.incr t.hits;
      note true;
      v
    | None ->
      (* compute outside the lock: concurrent domains may duplicate work on
         the same key, but they never block each other on a long compute *)
      Atomic.incr t.misses;
      note false;
      let v = compute () in
      with_lock t (fun () ->
          if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k v);
      v

let set_enabled t enabled = t.enabled <- enabled
let enabled t = t.enabled

let stats t =
  { n_hits = Atomic.get t.hits; n_misses = Atomic.get t.misses;
    n_entries = with_lock t (fun () -> Hashtbl.length t.table) }

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0

let clear t =
  with_lock t (fun () -> Hashtbl.reset t.table);
  reset_stats t
