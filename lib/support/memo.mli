(** Thread-safe string-keyed memoization tables with hit/miss accounting.

    The substrate of the tuning engine's cost cache: values are memoized
    under canonical string keys (use {!key} to digest the key parts), the
    table is safe to consult from multiple domains, and the counters let
    benchmarks assert how many real computations a run performed. *)

type 'a t

type stats = { n_hits : int; n_misses : int; n_entries : int }

val create : ?enabled:bool -> unit -> 'a t
(** A fresh empty table ([enabled] defaults to [true]). *)

val key : string list -> string
(** Canonical digest of the key components (order-sensitive, collision
    resistant for our purposes: an MD5 over the NUL-joined parts). *)

val find_or_add : ?record:(hit:bool -> unit) -> 'a t -> string -> (unit -> 'a) -> 'a
(** Return the cached value for the key, computing and caching it on a
    miss. The compute function runs outside the table lock, so it may run
    more than once under concurrent misses of the same key; it must be
    pure. When the table is disabled, every call computes (and counts as a
    miss). [record] is invoked once per call with the hit/miss verdict —
    the hook callers use to mirror the outcome into an external metrics
    registry. *)

val set_enabled : 'a t -> bool -> unit
(** Toggle caching; existing entries are kept but not consulted while
    disabled. *)

val enabled : 'a t -> bool

val stats : 'a t -> stats
(** [n_misses] counts real computations, [n_hits] avoided ones. *)

val reset_stats : 'a t -> unit
val clear : 'a t -> unit
(** Drop all entries and reset the counters. *)
