type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* the full generator state is one int64, so checkpoint/resume of any
   stochastic search can round-trip it exactly *)
let state t = t.state
let of_state state = { state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let child_seed = next_int64 t in
  { state = child_seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, uniform in [0,1) *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
