(** Deterministic pseudo-random number generation (splitmix64).

    All stochastic components of the reproduction (input generators, random
    search, simulated annealing) draw from this module so that every
    experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] creates an independent generator. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** The complete internal state, for exact checkpointing. *)

val of_state : int64 -> t
(** A generator that continues exactly where {!state} was captured. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; used to give sub-components their own streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
