let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end

let min xs = Array.fold_left Stdlib.min infinity xs
let max xs = Array.fold_left Stdlib.max neg_infinity xs

let z99 = 2.576

let ci99_halfwidth xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else z99 *. stddev xs /. sqrt (float_of_int n)

(* fractional (mid-) ranks: ties share the average of the positions they
   occupy, so both correlations below are tie-aware *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do incr j done;
    (* positions !i..!j (0-based) hold equal values; 1-based mid-rank *)
    let rank = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- rank
    done;
    i := !j + 1
  done;
  r

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then nan
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then nan
    else !sxy /. sqrt (!sxx *. !syy)
  end

let spearman xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.spearman: length mismatch";
  pearson (ranks xs) (ranks ys)

let kendall xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.kendall: length mismatch";
  if n < 2 then nan
  else begin
    (* tau-b: concordant minus discordant over the geometric mean of the
       non-tied pair counts in each variable *)
    let concordant = ref 0 and discordant = ref 0 in
    let ties_x = ref 0 and ties_y = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let dx = compare xs.(i) xs.(j) and dy = compare ys.(i) ys.(j) in
        if dx = 0 && dy = 0 then begin incr ties_x; incr ties_y end
        else if dx = 0 then incr ties_x
        else if dy = 0 then incr ties_y
        else if dx * dy > 0 then incr concordant
        else incr discordant
      done
    done;
    let pairs = n * (n - 1) / 2 in
    let nx = float_of_int (pairs - !ties_x)
    and ny = float_of_int (pairs - !ties_y) in
    if nx = 0.0 || ny = 0.0 then nan
    else float_of_int (!concordant - !discordant) /. sqrt (nx *. ny)
  end

type measurement = {
  mean : float;
  stddev : float;
  ci99 : float;
  samples : int;
}

let pp_measurement ppf m =
  Format.fprintf ppf "%.6g ± %.2g (99%% CI, n=%d)" m.mean m.ci99 m.samples

let measure_until_ci ?(rel_ci = 0.05) ?(min_samples = 5) ?(max_samples = 1000) f =
  let samples = ref [] in
  let count = ref 0 in
  let converged () =
    let xs = Array.of_list !samples in
    let m = mean xs in
    !count >= min_samples && (m = 0.0 || ci99_halfwidth xs <= rel_ci *. Float.abs m)
  in
  while !count < max_samples && not (converged ()) do
    samples := f () :: !samples;
    incr count
  done;
  let xs = Array.of_list !samples in
  { mean = mean xs; stddev = stddev xs; ci99 = ci99_halfwidth xs; samples = !count }
