(** Descriptive statistics and confidence-interval-driven measurement,
    following Hoefler & Belli, "Scientific Benchmarking of Parallel Computing
    Systems" (SC '15), as cited in Section 5.1 of the paper: measurements are
    collected until the 99% confidence interval is within a target fraction
    of the mean. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float
val median : float array -> float
val min : float array -> float
val max : float array -> float

val ci99_halfwidth : float array -> float
(** Half-width of the 99% confidence interval of the mean, using the normal
    approximation (z = 2.576); 0 for fewer than two samples. *)

val ranks : float array -> float array
(** Fractional (mid-) ranks, 1-based; ties share the average of the
    positions they occupy. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; [nan] for fewer than two samples or
    when either variable is constant. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson over tie-aware ranks): 1 when the
    two variables rank identically, -1 when inversely; [nan] when a
    variable is constant. *)

val kendall : float array -> float array -> float
(** Kendall tau-b rank correlation (tie-corrected). *)

type measurement = {
  mean : float;
  stddev : float;
  ci99 : float;  (** half-width *)
  samples : int;
}

val pp_measurement : Format.formatter -> measurement -> unit

val measure_until_ci :
  ?rel_ci:float -> ?min_samples:int -> ?max_samples:int -> (unit -> float) ->
  measurement
(** [measure_until_ci f] repeatedly evaluates [f] (each call returning one
    sample, e.g. a runtime in seconds) until the 99% CI half-width is within
    [rel_ci] (default 0.05) of the running mean, bounded by [min_samples]
    (default 5) and [max_samples] (default 1000). *)
