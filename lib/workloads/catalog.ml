let figure3 =
  [ Linalg.dot; Linalg.matvec; Linalg.matmul; Linalg.matmul_t; Linalg.bmatmul;
    Stencils.gaussian_2d; Stencils.jacobi_3d; Prl.prl; Ccsdt.ccsdt;
    Deep_learning.mcc; Deep_learning.mcc_caps ]

let all = figure3 @ [ Mbbs.mbbs; Stencils.jacobi_1d; Kmeans.kmeans ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt
    (fun (w : Workload.t) -> String.lowercase_ascii w.Workload.wl_name = lname)
    all
