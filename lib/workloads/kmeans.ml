module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p

let features = [ "f0"; "f1"; "f2"; "f3" ]
let scale_w = [ 0.5; 2.0; 1.25; 0.75 ]

let point_ty = Scalar.Record (List.map (fun f -> (f, Scalar.Fp64)) features)

let assign_record_ty =
  Scalar.Record
    [ ("cluster_id", Scalar.Int64); ("score", Scalar.Fp64);
      ("dist", Scalar.Fp64) ]

(* selection of the minimum under a strict total order: scaled score, then
   raw distance, then lower cluster id. Every record field participates in
   the order, so a tie means the operands are equal — the selection is
   associative AND commutative, like {!Prl.prl_best}. *)
let nearest =
  Combine.custom ~name:"kmeans_nearest" ~associative:true ~commutative:true
    (fun lhs rhs ->
      let s v = Scalar.to_float (Scalar.field v "score") in
      let d v = Scalar.to_float (Scalar.field v "dist") in
      let id v = Scalar.to_int (Scalar.field v "cluster_id") in
      if s lhs < s rhs then lhs
      else if s lhs > s rhs then rhs
      else if d lhs < d rhs then lhs
      else if d lhs > d rhs then rhs
      else if id lhs <= id rhs then lhs
      else rhs)

let distance_exprs () =
  (* dist = sum of squared per-feature differences; score = the same sum
     with inverse-variance feature scaling. Written naively — each squared
     difference spells out its subtraction twice, and the two sums repeat
     the squares — which is exactly the redundancy `mdhc optimize`'s
     common-subexpression rule is expected to eliminate. *)
  let diff f =
    Expr.(field (read "pts" [ idx "n" ]) f - field (read "ctr" [ idx "k" ]) f)
  in
  let sq f = Expr.(diff f * diff f) in
  let dist =
    List.fold_left (fun acc f -> Expr.(acc + sq f)) (Expr.f64 0.0) features
  in
  let score =
    List.fold_left2
      (fun acc f w -> Expr.(acc + (f64 w * sq f)))
      (Expr.f64 0.0) features scale_w
  in
  (dist, score)

let make params =
  let n = p params "N" and k = p params "K" in
  let dist, score = distance_exprs () in
  D.make ~name:"KMeans"
    ~out:[ D.buffer "assign" assign_record_ty ]
    ~inp:[ D.buffer "pts" point_ty; D.buffer "ctr" point_ty ]
    ~combine_ops:[ Combine.cc; Combine.pw nearest ]
    (D.for_ "n" n
       (D.for_ "k" k
          (D.body
             [ D.let_stmt "d" dist;
               D.let_stmt "s" score;
               D.assign "assign" [ Expr.idx "n" ]
                 (Expr.MkRecord
                    [ ("cluster_id", Expr.(cast Scalar.Int64 (idx "k")));
                      ("score", Expr.var "s");
                      ("dist", Expr.var "d") ]) ])))

let random_point rng =
  Scalar.R (List.map (fun f -> (f, Scalar.F64 (Rng.float rng 2.0 -. 1.0))) features)

let gen params ~seed =
  let n = p params "N" and k = p params "K" in
  let rng = Rng.create seed in
  let pts = Dense.of_fn point_ty [| n |] (fun _ -> random_point rng) in
  let ctr = Dense.of_fn point_ty [| k |] (fun _ -> random_point rng) in
  Buffer.env_of_list [ Buffer.of_dense "pts" pts; Buffer.of_dense "ctr" ctr ]

(* same operation order as the directive body, so fp64 results are
   bit-identical to the interpreter's *)
let score_point pt c =
  let diff f = Scalar.to_float (Scalar.field pt f) -. Scalar.to_float (Scalar.field c f) in
  let dist =
    List.fold_left (fun acc f -> let d = diff f in acc +. (d *. d)) 0.0 features
  in
  let score =
    List.fold_left2
      (fun acc f w -> let d = diff f in acc +. (w *. (d *. d)))
      0.0 features scale_w
  in
  (dist, score)

let reference params env =
  let n = p params "N" and k = p params "K" in
  let pts = Buffer.data (Buffer.env_find env "pts") in
  let ctr = Buffer.data (Buffer.env_find env "ctr") in
  let out =
    Dense.of_fn assign_record_ty [| n |] (fun idx ->
        let pt = Dense.get pts [| idx.(0) |] in
        let best = ref None in
        for c = 0 to k - 1 do
          let dist, score = score_point pt (Dense.get ctr [| c |]) in
          let candidate =
            Scalar.R
              [ ("cluster_id", Scalar.i64 c); ("score", Scalar.F64 score);
                ("dist", Scalar.F64 dist) ]
          in
          match !best with
          | None -> best := Some candidate
          | Some b -> best := Some (nearest.Combine.apply b candidate)
        done;
        Option.get !best)
  in
  Buffer.env_add env (Buffer.of_dense "assign" out)

let kmeans =
  { Workload.wl_name = "KMeans"; domain = "Data Mining";
    basic_type = "{int64, fp64, fp64}"; make;
    paper_inputs =
      [ ("1", [ ("N", 1 lsl 17); ("K", 1 lsl 8) ]);
        ("2", [ ("N", 1 lsl 15); ("K", 1 lsl 10) ]) ];
    test_params = [ ("N", 7); ("K", 5) ]; gen; reference = Some reference }
