(** K-means cluster assignment (nearest scaled centroid) — a data-mining
    catalogue extension beyond Figure 3.

    Each point is assigned the centroid minimising an inverse-variance
    scaled squared distance; ties fall back to the raw distance, then the
    lower cluster id, so the per-point reduction is a selection under a
    strict total order — associative and commutative, like {!Prl.prl_best},
    and equally inexpressible as a builtin OpenMP [reduction] operator.

    The body intentionally spells out its squared differences naively (each
    subtraction appears twice per square, and the scaled and unscaled sums
    repeat the squares): the workload is compute-bound under the cost
    model, so the common-subexpression elimination performed by
    [mdhc optimize] yields a modelled speed-up — this is one of the
    catalogue's pinned rewrite-improvement witnesses. *)

val assign_record_ty : Mdh_tensor.Scalar.ty
(** [{cluster_id:int64; score:fp64; dist:fp64}] *)

val nearest : Mdh_combine.Combine.custom_fn

val kmeans : Workload.t
