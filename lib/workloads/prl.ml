module Scalar = Mdh_tensor.Scalar
module Dense = Mdh_tensor.Dense
module Buffer = Mdh_tensor.Buffer
module Combine = Mdh_combine.Combine
module Expr = Mdh_expr.Expr
module D = Mdh_directive.Directive
module Rng = Mdh_support.Rng

let p = Workload.p

let certain_measure = 14

let attrs = [ "name"; "birth"; "sex"; "postal" ]
let agree_w = [ 3.0; 2.5; 0.7; 2.0 ]
let disagree_w = [ -1.5; -1.0; -0.3; -0.8 ]

let person_ty = Scalar.Record (List.map (fun a -> (a, Scalar.Int32)) attrs)

let match_record_ty =
  Scalar.Record
    [ ("match_id", Scalar.Int64); ("match_weight", Scalar.Fp64);
      ("id_measure", Scalar.Int32) ]

(* selection of the maximum under a strict total order: weight, then
   certainty, then lower id. Every record field participates in the order, so
   a tie means the operands are equal — the selection is associative AND
   commutative (the property verifier in Mdh_analysis.Opcheck confirms both) *)
let prl_best =
  Combine.custom ~name:"prl_best" ~associative:true ~commutative:true
    (fun lhs rhs ->
      let w v = Scalar.to_float (Scalar.field v "match_weight") in
      let m v = Scalar.to_int (Scalar.field v "id_measure") in
      let id v = Scalar.to_int (Scalar.field v "match_id") in
      if w lhs > w rhs then lhs
      else if w lhs < w rhs then rhs
      else if m lhs > m rhs then lhs
      else if m lhs < m rhs then rhs
      else if id lhs <= id rhs then lhs
      else rhs)

let scoring_exprs () =
  (* weight = sum of per-attribute log-weights; agreements = #equal fields *)
  let agree a = Expr.(field (read "newp" [ idx "n" ]) a = field (read "db" [ idx "i" ]) a) in
  let weight =
    List.fold_left2
      (fun acc a (wa, wd) -> Expr.(acc + if_ (agree a) (f64 wa) (f64 wd)))
      (Expr.f64 0.0) attrs
      (List.combine agree_w disagree_w)
  in
  let agreements =
    List.fold_left
      (fun acc a -> Expr.(acc + if_ (agree a) (int 1) (int 0)))
      (Expr.int 0) attrs
  in
  (weight, agreements)

let make params =
  let n = p params "N" and i = p params "I" in
  let weight, agreements = scoring_exprs () in
  D.make ~name:"PRL"
    ~out:[ D.buffer "match" match_record_ty ]
    ~inp:[ D.buffer "newp" person_ty; D.buffer "db" person_ty ]
    ~combine_ops:[ Combine.cc; Combine.pw prl_best ]
    (D.for_ "n" n
       (D.for_ "i" i
          (D.body
             [ D.let_stmt "w" weight;
               D.let_stmt "agr" agreements;
               D.assign "match" [ Expr.idx "n" ]
                 (Expr.MkRecord
                    [ ("match_id", Expr.(cast Scalar.Int64 (idx "i")));
                      ("match_weight", Expr.var "w");
                      ("id_measure",
                       Expr.(
                         if_ (var "agr" = int (List.length attrs))
                           (int certain_measure) (var "agr"))) ]) ])))

let random_person rng =
  Scalar.R
    [ ("name", Scalar.i32 (Rng.int rng 5000));
      ("birth", Scalar.i32 (Rng.int_in rng 1920 2010));
      ("sex", Scalar.i32 (Rng.int rng 2));
      ("postal", Scalar.i32 (Rng.int rng 10000)) ]

let corrupt rng person =
  List.fold_left
    (fun acc a ->
      if Rng.float rng 1.0 < 0.1 then
        Scalar.set_field acc a (Scalar.i32 (Rng.int rng 5000))
      else acc)
    person attrs

let gen params ~seed =
  let n = p params "N" and i = p params "I" in
  let rng = Rng.create seed in
  let db = Dense.of_fn person_ty [| i |] (fun _ -> random_person rng) in
  (* ~30% of the new records are noisy duplicates of registry entries *)
  let newp =
    Dense.of_fn person_ty [| n |] (fun _ ->
        if Rng.float rng 1.0 < 0.3 then corrupt rng (Dense.get db [| Rng.int rng i |])
        else random_person rng)
  in
  Buffer.env_of_list [ Buffer.of_dense "newp" newp; Buffer.of_dense "db" db ]

let score_pair newp db =
  let agree a = Scalar.equal (Scalar.field newp a) (Scalar.field db a) in
  let weight =
    List.fold_left2
      (fun acc a (wa, wd) -> acc +. (if agree a then wa else wd))
      0.0 attrs
      (List.combine agree_w disagree_w)
  in
  let agreements = List.length (List.filter agree attrs) in
  (weight, if agreements = List.length attrs then certain_measure else agreements)

let reference params env =
  let n = p params "N" and i = p params "I" in
  let newp = Buffer.data (Buffer.env_find env "newp") in
  let db = Buffer.data (Buffer.env_find env "db") in
  let out =
    Dense.of_fn match_record_ty [| n |] (fun idx ->
        let np = Dense.get newp [| idx.(0) |] in
        let best = ref None in
        for r = 0 to i - 1 do
          let weight, measure = score_pair np (Dense.get db [| r |]) in
          let candidate =
            Scalar.R
              [ ("match_id", Scalar.i64 r); ("match_weight", Scalar.F64 weight);
                ("id_measure", Scalar.i32 measure) ]
          in
          match !best with
          | None -> best := Some candidate
          | Some b -> best := Some (prl_best.Combine.apply b candidate)
        done;
        Option.get !best)
  in
  Buffer.env_add env (Buffer.of_dense "match" out)

let prl =
  { Workload.wl_name = "PRL"; domain = "Data Mining";
    basic_type = "{int64, fp64, int32, ...}"; make;
    paper_inputs =
      [ ("1", [ ("N", 1 lsl 10); ("I", 1 lsl 15) ]);
        ("2", [ ("N", 1 lsl 15); ("I", 1 lsl 15) ]) ];
    test_params = [ ("N", 9); ("I", 17) ]; gen; reference = Some reference }
