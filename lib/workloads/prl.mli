(** Probabilistic Record Linkage (PRL) — the data-mining case study
    (Listing 11; Rasch et al., SAC '19), which finds, for each new record,
    its best match among the existing entries of a cancer registry.

    Reproduction notes:

    - The paper uses real data from the German EKR cancer registry [19],
      which is not redistributable; {!Workload.t.gen} synthesises a registry
      with the same structure — per-record attribute codes (name, birth
      year, sex, postal region) — and injects noisy duplicates, so the
      custom-reduction code path and the dimension ratios of Figure 3
      (2^10/2^15 new x 2^15 existing) are exercised faithfully.
    - The paper's Listing 11 returns three flat output buffers (match_id,
      match_weight, id_measure) combined atomically by [prl_max]; this
      implementation returns one record-typed buffer with the same three
      fields, which is the same object without the flattening.
    - [prl_best], the customising function, selects the better match by
      (weight, certainty measure, lower id) — a strict total order over all
      record fields, hence associative and commutative — but crucially not
      expressible as an OpenMP/OpenACC [reduction] clause (those only know
      builtin scalar operators): the capability gap Section 5.2's PRL
      discussion rests on. *)

val match_record_ty : Mdh_tensor.Scalar.ty
(** [{match_id:int64; match_weight:fp64; id_measure:int32}] *)

val prl_best : Mdh_combine.Combine.custom_fn

val certain_measure : int
(** The id_measure code for an all-attributes match (the paper's 14). *)

val prl : Workload.t
