#!/bin/sh
# CI perf-regression gate: regenerate the three bench artifacts and hold
# them against the committed baselines (scripts/bench_baselines.json).
#
#   ./scripts/bench_gate.sh
#
# Exits non-zero when
#   - the specializer's speedup over the interp walker drops below
#     committed * speedup_tolerance on any gated workload, or
#   - the cost-model accuracy report is missing, or its rank correlation
#     collapses below the committed floors, or
#   - the mdhd serving bench misses its throughput floor, sheds more than
#     the committed ceiling, or sees error replies at any concurrency
#     level.
#
# Deliberately not part of check.sh (tier-1 stays fast and timing-free);
# CI runs it as its own step after the test suite.
set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe
dune exec bench/main.exe -- plan-exec
dune exec bench/main.exe -- model-acc
dune exec bench/main.exe -- serve
dune exec bench/main.exe -- gate scripts/bench_baselines.json
